#!/usr/bin/env bash
# Full verification: build + test the release config, then build + test the
# ThreadSanitizer config (the concurrency CI gate for the parallel ingest
# pipeline) and the AddressSanitizer config (the memory gate for the
# fault/transport/chaos paths). Run from anywhere; builds land in build/,
# build-tsan/ and build-asan/.
#
#   scripts/check.sh            # all configs
#   scripts/check.sh release    # release only
#   scripts/check.sh tsan       # tsan only (thread-pool, ring,
#                               # parallel/query/persistence/batch-equivalence
#                               # + chaos/metrics/storage-tier/federation/
#                               # interner/span-batch suites and
#                               # bench_fig15_query_delay/bench_storage/
#                               # bench_federation/bench_ingest_scaling/
#                               # bench_streaming --quick smokes)
#   scripts/check.sh ubsan      # ubsan only (undefined-behaviour gate over
#                               # the same suite matrix as asan, plus the
#                               # bench_overload --quick smoke)
#   scripts/check.sh asan       # asan only (fault/transport/chaos/metrics/
#                               # federation suites, the segment corruption/
#                               # recovery sweeps, and bench_fault_recovery/
#                               # bench_storage/bench_federation --quick
#                               # smokes)
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
what="${1:-all}"

run_release() {
  echo "== release: configure + build =="
  cmake --preset release -S "$root"
  cmake --build --preset release -j "$jobs"
  echo "== release: ctest =="
  (cd "$root" && ctest --preset release -j "$jobs")
}

run_tsan() {
  echo "== tsan: configure + build =="
  cmake --preset tsan -S "$root"
  cmake --build --preset tsan -j "$jobs"
  echo "== tsan: ctest (concurrency suites) =="
  # The whole suite passes under TSan but takes a long time single-threaded;
  # gate on the suites that exercise the parallel ingest pipeline.
  (cd "$root/build-tsan" && TSAN_OPTIONS="halt_on_error=1" ctest \
    --output-on-failure -j "$jobs" \
    -R 'ThreadPool|MpscRingArray|SpscRing|ParallelEquivalence|QueryEquivalence|Chaos|SpanTransport|FaultInjector|Metrics|SegmentStoreTier|PersistenceEquivalence|Federation|HashRing|StringInterner|Arena|SpanBatch|BatchEquivalence|Governor|Overload|Streaming')
  echo "== tsan: bench_fig15_query_delay --quick smoke =="
  # Shared-mutex readers + batch assembly under TSan on a tiny workload:
  # catches query-path races the unit suites cannot reach.
  cmake --build --preset tsan -j "$jobs" --target bench_fig15_query_delay
  TSAN_OPTIONS="halt_on_error=1" \
    "$root/build-tsan/bench/bench_fig15_query_delay" --quick
  echo "== tsan: bench_metrics_overhead --quick smoke =="
  # The aggregator's striped maps + name cache under genuinely concurrent
  # multi-threaded ingest — the bench drives both drain workers and raw
  # transport threads through record_span/record_flow.
  cmake --build --preset tsan -j "$jobs" --target bench_metrics_overhead
  TSAN_OPTIONS="halt_on_error=1" \
    "$root/build-tsan/bench/bench_metrics_overhead" --quick
  echo "== tsan: bench_storage --quick smoke =="
  # Inline sealing on the insert path plus the background flush thread and
  # warm-tier promotion under shared locks.
  cmake --build --preset tsan -j "$jobs" --target bench_storage
  TSAN_OPTIONS="halt_on_error=1" \
    "$root/build-tsan/bench/bench_storage" --quick
  echo "== tsan: bench_federation --quick smoke =="
  # The federated ingest fan-out — replication, heartbeats, kill/rejoin
  # catch-up and scatter-gather queries — under TSan on a tiny workload.
  cmake --build --preset tsan -j "$jobs" --target bench_federation
  TSAN_OPTIONS="halt_on_error=1" \
    "$root/build-tsan/bench/bench_federation" --quick
  echo "== tsan: bench_ingest_scaling --quick smoke =="
  # The columnar hot path end to end under TSan: multi-threaded store
  # ingest plus the multi-worker agent drain shipping SpanBatches through
  # the shared interner into batch dedup/metrics/store.
  cmake --build --preset tsan -j "$jobs" --target bench_ingest_scaling
  TSAN_OPTIONS="halt_on_error=1" \
    "$root/build-tsan/bench/bench_ingest_scaling" --quick
  echo "== tsan: bench_streaming --quick smoke =="
  # The streaming assembler's grouper lock, finalizer worker pool and the
  # shared completed-trace index under concurrent close/query traffic.
  cmake --build --preset tsan -j "$jobs" --target bench_streaming
  TSAN_OPTIONS="halt_on_error=1" \
    "$root/build-tsan/bench/bench_streaming" --quick
  echo "== tsan: bench_overload --quick smoke =="
  # The governor's atomics and ladder mutex under the refusal/retry loop.
  cmake --build --preset tsan -j "$jobs" --target bench_overload
  TSAN_OPTIONS="halt_on_error=1" \
    "$root/build-tsan/bench/bench_overload" --quick
}

run_asan() {
  echo "== asan: configure + build =="
  cmake --preset asan -S "$root"
  cmake --build --preset asan -j "$jobs"
  echo "== asan: ctest (fault/transport/chaos suites) =="
  # The fault paths move spans through queues, retries and dedup sets —
  # exactly where lifetime bugs would hide; gate them under ASan. The
  # metrics suites ride along: the aggregator owns per-key histograms and
  # rings behind striped locks on the same ingest path.
  (cd "$root/build-asan" && ASAN_OPTIONS="halt_on_error=1 detect_leaks=1" \
    ctest --output-on-failure -j "$jobs" \
    -R 'Chaos|SpanTransport|FaultInjector|Metrics|Segment|PersistenceEquivalence|Federation|HashRing|StringInterner|Arena|SpanBatch|BatchEquivalence|Governor|Overload|Streaming')
  echo "== asan: bench_fault_recovery --quick smoke =="
  cmake --build --preset asan -j "$jobs" --target bench_fault_recovery
  ASAN_OPTIONS="halt_on_error=1 detect_leaks=1" \
    "$root/build-asan/bench/bench_fault_recovery" --quick
  echo "== asan: bench_storage --quick smoke =="
  # The mmap'd read path, segment decode and warm promotion under ASan.
  cmake --build --preset asan -j "$jobs" --target bench_storage
  ASAN_OPTIONS="halt_on_error=1 detect_leaks=1" \
    "$root/build-asan/bench/bench_storage" --quick
  echo "== asan: bench_federation --quick smoke =="
  # Node kill/restart moves servers, journals and aggregators through
  # teardown and catch-up replay — the lifetime-bug hot path.
  cmake --build --preset asan -j "$jobs" --target bench_federation
  ASAN_OPTIONS="halt_on_error=1 detect_leaks=1" \
    "$root/build-asan/bench/bench_federation" --quick
  echo "== asan: bench_overload --quick smoke =="
  # Refused batches live on in the transport queue and get re-offered —
  # span lifetimes across the refusal/retry boundary under ASan.
  cmake --build --preset asan -j "$jobs" --target bench_overload
  ASAN_OPTIONS="halt_on_error=1 detect_leaks=1" \
    "$root/build-asan/bench/bench_overload" --quick
}

run_ubsan() {
  echo "== ubsan: configure + build =="
  cmake --preset ubsan -S "$root"
  cmake --build --preset ubsan -j "$jobs"
  echo "== ubsan: ctest (UB gate) =="
  # Same matrix as the ASan gate: the queue/retry/dedup/governor paths do
  # the pointer and integer arithmetic where UB would hide.
  (cd "$root/build-ubsan" && UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
    ctest --output-on-failure -j "$jobs" \
    -R 'Chaos|SpanTransport|FaultInjector|Metrics|Segment|PersistenceEquivalence|Federation|HashRing|StringInterner|Arena|SpanBatch|BatchEquivalence|Governor|Overload|Streaming')
  echo "== ubsan: bench_overload --quick smoke =="
  cmake --build --preset ubsan -j "$jobs" --target bench_overload
  UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
    "$root/build-ubsan/bench/bench_overload" --quick
}

case "$what" in
  release) run_release ;;
  tsan) run_tsan ;;
  asan) run_asan ;;
  ubsan) run_ubsan ;;
  all)
    run_release
    run_tsan
    run_asan
    run_ubsan
    ;;
  *)
    echo "usage: $0 [release|tsan|asan|ubsan|all]" >&2
    exit 2
    ;;
esac
echo "== all checks passed =="
