#!/usr/bin/env bash
# Full verification: build + test the release config, then build + test the
# ThreadSanitizer config (the concurrency CI gate for the parallel ingest
# pipeline). Run from anywhere; builds land in build/ and build-tsan/.
#
#   scripts/check.sh            # both configs
#   scripts/check.sh release    # release only
#   scripts/check.sh tsan       # tsan only (thread-pool, ring,
#                               # parallel/query-equivalence suites and a
#                               # bench_fig15_query_delay --quick smoke)
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
what="${1:-all}"

run_release() {
  echo "== release: configure + build =="
  cmake --preset release -S "$root"
  cmake --build --preset release -j "$jobs"
  echo "== release: ctest =="
  (cd "$root" && ctest --preset release -j "$jobs")
}

run_tsan() {
  echo "== tsan: configure + build =="
  cmake --preset tsan -S "$root"
  cmake --build --preset tsan -j "$jobs"
  echo "== tsan: ctest (concurrency suites) =="
  # The whole suite passes under TSan but takes a long time single-threaded;
  # gate on the suites that exercise the parallel ingest pipeline.
  (cd "$root/build-tsan" && TSAN_OPTIONS="halt_on_error=1" ctest \
    --output-on-failure -j "$jobs" \
    -R 'ThreadPool|MpscRingArray|SpscRing|ParallelEquivalence|QueryEquivalence')
  echo "== tsan: bench_fig15_query_delay --quick smoke =="
  # Shared-mutex readers + batch assembly under TSan on a tiny workload:
  # catches query-path races the unit suites cannot reach.
  cmake --build --preset tsan -j "$jobs" --target bench_fig15_query_delay
  TSAN_OPTIONS="halt_on_error=1" \
    "$root/build-tsan/bench/bench_fig15_query_delay" --quick
}

case "$what" in
  release) run_release ;;
  tsan) run_tsan ;;
  all)
    run_release
    run_tsan
    ;;
  *)
    echo "usage: $0 [release|tsan|all]" >&2
    exit 2
    ;;
esac
echo "== all checks passed =="
