#!/usr/bin/env bash
# Full verification: build + test the release config, then build + test the
# ThreadSanitizer config (the concurrency CI gate for the parallel ingest
# pipeline). Run from anywhere; builds land in build/ and build-tsan/.
#
#   scripts/check.sh            # both configs
#   scripts/check.sh release    # release only
#   scripts/check.sh tsan       # tsan only (thread-pool, ring and
#                               # parallel-equivalence suites)
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
what="${1:-all}"

run_release() {
  echo "== release: configure + build =="
  cmake --preset release -S "$root"
  cmake --build --preset release -j "$jobs"
  echo "== release: ctest =="
  (cd "$root" && ctest --preset release -j "$jobs")
}

run_tsan() {
  echo "== tsan: configure + build =="
  cmake --preset tsan -S "$root"
  cmake --build --preset tsan -j "$jobs"
  echo "== tsan: ctest (concurrency suites) =="
  # The whole suite passes under TSan but takes a long time single-threaded;
  # gate on the suites that exercise the parallel ingest pipeline.
  (cd "$root/build-tsan" && TSAN_OPTIONS="halt_on_error=1" ctest \
    --output-on-failure -j "$jobs" \
    -R 'ThreadPool|MpscRingArray|SpscRing|ParallelEquivalence')
}

case "$what" in
  release) run_release ;;
  tsan) run_tsan ;;
  all)
    run_release
    run_tsan
    ;;
  *)
    echo "usage: $0 [release|tsan|all]" >&2
    exit 2
    ;;
esac
echo "== all checks passed =="
