#!/usr/bin/env bash
# Run every benchmark in quick mode and write one BENCH_<name>.json per
# bench at the repo root — the perf trajectory snapshot that accumulates
# across PRs. Each run also appends one line per bench to BENCH_HISTORY.jsonl
# (same metrics, flattened, stamped with git SHA + timestamp), so regressions
# are visible as a time series instead of only as the latest snapshot.
# Uses the release build (configures it if missing).
#
#   scripts/bench_all.sh          # all benches, --quick, BENCH_*.json
#   scripts/bench_all.sh --full   # full workloads (slow; same JSON files)
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
mode="--quick"
if [[ "${1:-}" == "--full" ]]; then
  mode=""
elif [[ -n "${1:-}" ]]; then
  echo "usage: $0 [--full]" >&2
  exit 2
fi

echo "== bench_all: configure + build release =="
cmake --preset release -S "$root" >/dev/null
cmake --build --preset release -j "$jobs" >/dev/null

# Provenance stamp for every BENCH_*.json: which commit produced the numbers
# and when — without it the accumulated perf trajectory is unattributable.
git_sha="$(git -C "$root" rev-parse --short HEAD 2>/dev/null || echo unknown)"
if [[ -n "$(git -C "$root" status --porcelain 2>/dev/null)" ]]; then
  git_sha="${git_sha}-dirty"
fi
stamp_json() {
  local json="$1"
  local ts
  # A few benches are console-table only and ignore --json; nothing to stamp.
  [[ -f "$json" ]] || return 0
  ts="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  # Insert the string fields right after the opening brace (the benches
  # themselves only emit numeric metrics).
  sed -i "0,/^{/s//{\n  \"git_sha\": \"${git_sha}\",\n  \"generated_at\": \"${ts}\",/" \
    "$json"
}

# One compact line per bench per run, appended to the shared history file.
history_append() {
  local name="$1" json="$2"
  [[ -f "$json" ]] || return 0
  python3 - "$name" "$json" "$root/BENCH_HISTORY.jsonl" <<'PY'
import json, sys
name, src, hist = sys.argv[1:4]
with open(src) as f:
    row = json.load(f)
with open(hist, "a") as f:
    f.write(json.dumps({"bench": name, **row}, sort_keys=True) + "\n")
PY
}

failed=()
for bench in "$root"/bench/bench_*.cpp; do
  name="$(basename "$bench" .cpp)"
  binary="$root/build/bench/$name"
  if [[ ! -x "$binary" ]]; then
    echo "-- $name: binary missing, skipping" >&2
    failed+=("$name")
    continue
  fi
  json="$root/BENCH_${name#bench_}.json"
  echo "== $name ${mode:-(full)} -> $(basename "$json") =="
  # shellcheck disable=SC2086
  if "$binary" --json "$json" $mode; then
    stamp_json "$json"
    history_append "$name" "$json"
  else
    echo "-- $name FAILED" >&2
    failed+=("$name")
  fi
done

if ((${#failed[@]} > 0)); then
  echo "== bench_all: FAILURES: ${failed[*]} =="
  exit 1
fi
echo "== bench_all: all benches wrote BENCH_*.json =="
