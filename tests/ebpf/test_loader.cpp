#include "ebpf/loader.h"

#include <gtest/gtest.h>

namespace deepflow::ebpf {
namespace {

class LoaderTest : public ::testing::Test {
 protected:
  LoaderTest() : kernel_(loop_, "host", nullptr), loader_(&kernel_) {}

  Program hook_program(ProgramType type) {
    Program p;
    p.spec.name = "prog";
    p.spec.type = type;
    p.spec.instruction_count = 64;
    p.spec.stack_bytes = 64;
    p.on_hook = [this](const kernelsim::HookContext&) { ++fired_; };
    return p;
  }

  EventLoop loop_;
  kernelsim::Kernel kernel_;
  Loader loader_;
  int fired_ = 0;
};

TEST_F(LoaderTest, LoadAttachesToKernelHook) {
  const LoadResult result = loader_.load_syscall(
      hook_program(ProgramType::kKprobe), kernelsim::SyscallAbi::kRead);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(kernel_.hooks().syscall_hooked(kernelsim::SyscallAbi::kRead));
  kernelsim::HookContext ctx;
  kernel_.hooks().fire_syscall_enter(kernelsim::SyscallAbi::kRead, ctx);
  EXPECT_EQ(fired_, 1);
}

TEST_F(LoaderTest, VerifierRejectionBlocksAttachment) {
  Program bad = hook_program(ProgramType::kKprobe);
  bad.spec.loops_bounded = false;
  const LoadResult result =
      loader_.load_syscall(std::move(bad), kernelsim::SyscallAbi::kRead);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
  EXPECT_FALSE(kernel_.hooks().syscall_hooked(kernelsim::SyscallAbi::kRead));
  EXPECT_EQ(loader_.attached_count(), 0u);
}

TEST_F(LoaderTest, UnloadDetaches) {
  const LoadResult result = loader_.load_syscall(
      hook_program(ProgramType::kKretprobe), kernelsim::SyscallAbi::kWrite);
  ASSERT_TRUE(result.ok);
  loader_.unload(result.link);
  kernelsim::HookContext ctx;
  kernel_.hooks().fire_syscall_exit(kernelsim::SyscallAbi::kWrite, ctx);
  EXPECT_EQ(fired_, 0);
  EXPECT_EQ(loader_.attached_count(), 0u);
}

TEST_F(LoaderTest, UprobeAttachesToSymbol) {
  const LoadResult result =
      loader_.load_uprobe(hook_program(ProgramType::kUprobe), "SSL_read");
  ASSERT_TRUE(result.ok);
  kernelsim::HookContext ctx;
  kernel_.hooks().fire_uprobe("SSL_read", ctx);
  kernel_.hooks().fire_uprobe("SSL_write", ctx);
  EXPECT_EQ(fired_, 1);
}

TEST_F(LoaderTest, TypeMismatchesRejected) {
  // A uprobe program cannot attach to a syscall and vice versa.
  EXPECT_FALSE(loader_
                   .load_syscall(hook_program(ProgramType::kUprobe),
                                 kernelsim::SyscallAbi::kRead)
                   .ok);
  EXPECT_FALSE(
      loader_.load_uprobe(hook_program(ProgramType::kKprobe), "SSL_read").ok);
}

TEST_F(LoaderTest, SocketFilterAttachesToDeviceTap) {
  netsim::Device device;
  device.id = 1;
  device.kind = netsim::DeviceKind::kPhysicalNic;
  device.name = "pnic";
  int packets = 0;
  Program p;
  p.spec.name = "filter";
  p.spec.type = ProgramType::kSocketFilter;
  p.spec.instruction_count = 32;
  p.spec.helpers = {Helper::kSkbLoadBytes};
  p.on_packet = [&packets](const netsim::TapContext&) { ++packets; };
  const LoadResult result = loader_.load_socket_filter(std::move(p), &device);
  ASSERT_TRUE(result.ok) << result.error;
  netsim::TapContext ctx;
  device.fire_taps(ctx);
  EXPECT_EQ(packets, 1);
}

TEST_F(LoaderTest, SocketFilterNeedsDevice) {
  Program p;
  p.spec.name = "filter";
  p.spec.type = ProgramType::kSocketFilter;
  p.spec.instruction_count = 32;
  p.on_packet = [](const netsim::TapContext&) {};
  EXPECT_FALSE(loader_.load_socket_filter(std::move(p), nullptr).ok);
}

TEST_F(LoaderTest, InFlightAttachDetachWhileTrafficRuns) {
  // Zero-code deployment: attach and detach around live syscalls with no
  // coordination with the "application".
  const Pid pid = kernel_.tasks().create_process("app");
  const Tid tid = kernel_.tasks().create_thread(pid);
  const SocketId sock = kernel_.open_socket(
      pid, FiveTuple{Ipv4{1}, Ipv4{2}, 1, 2, L4Proto::kTcp});

  kernel_.sys_send(tid, sock, "before", kernelsim::SyscallAbi::kWrite, 0);
  EXPECT_EQ(fired_, 0);

  const LoadResult result = loader_.load_syscall(
      hook_program(ProgramType::kKprobe), kernelsim::SyscallAbi::kWrite);
  ASSERT_TRUE(result.ok);
  kernel_.sys_send(tid, sock, "during", kernelsim::SyscallAbi::kWrite, 100);
  EXPECT_EQ(fired_, 1);

  loader_.unload(result.link);
  kernel_.sys_send(tid, sock, "after", kernelsim::SyscallAbi::kWrite, 200);
  EXPECT_EQ(fired_, 1);
}

}  // namespace
}  // namespace deepflow::ebpf
