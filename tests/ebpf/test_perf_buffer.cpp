#include "ebpf/perf_buffer.h"

#include <gtest/gtest.h>

#include <vector>

namespace deepflow::ebpf {
namespace {

TEST(PerfBuffer, PerCpuOrderPreserved) {
  PerfBuffer<int> buffer(1, 64);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(buffer.submit(0, i));
  std::vector<int> drained;
  buffer.drain(100, [&](int&& v) { drained.push_back(v); });
  for (int i = 0; i < 10; ++i) EXPECT_EQ(drained[static_cast<size_t>(i)], i);
}

TEST(PerfBuffer, DrainInterleavesCpus) {
  // The global-order scrambling the time-window machinery exists for.
  PerfBuffer<int> buffer(2, 64);
  buffer.submit(0, 1);
  buffer.submit(0, 2);
  buffer.submit(1, 100);
  buffer.submit(1, 200);
  std::vector<int> drained;
  buffer.drain(100, [&](int&& v) { drained.push_back(v); });
  EXPECT_EQ(drained, (std::vector<int>{1, 100, 2, 200}));
}

TEST(PerfBuffer, BudgetLimitsDrain) {
  PerfBuffer<int> buffer(1, 64);
  for (int i = 0; i < 10; ++i) buffer.submit(0, i);
  std::vector<int> drained;
  EXPECT_EQ(buffer.drain(3, [&](int&& v) { drained.push_back(v); }), 3u);
  EXPECT_EQ(buffer.pending(), 7u);
}

TEST(PerfBuffer, OverflowCountsAsLost) {
  PerfBuffer<int> buffer(1, 4);
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (buffer.submit(0, i)) ++accepted;
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(buffer.lost(), 6u);
}

TEST(PerfBuffer, CpuIndexWraps) {
  PerfBuffer<int> buffer(2, 8);
  EXPECT_TRUE(buffer.submit(5, 42));  // 5 % 2 == 1
  std::vector<int> drained;
  buffer.drain(10, [&](int&& v) { drained.push_back(v); });
  EXPECT_EQ(drained, std::vector<int>{42});
}

TEST(PerfBuffer, DrainOnEmptyReturnsZero) {
  PerfBuffer<int> buffer(4, 8);
  EXPECT_EQ(buffer.drain(10, [](int&&) {}), 0u);
}

}  // namespace
}  // namespace deepflow::ebpf
