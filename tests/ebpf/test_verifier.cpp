#include "ebpf/verifier.h"

#include <gtest/gtest.h>

namespace deepflow::ebpf {
namespace {

Program valid_kprobe() {
  Program p;
  p.spec.name = "ok";
  p.spec.type = ProgramType::kKprobe;
  p.spec.instruction_count = 100;
  p.spec.stack_bytes = 128;
  p.spec.helpers = {Helper::kGetCurrentPidTgid, Helper::kMapUpdate,
                    Helper::kPerfEventOutput};
  p.on_hook = [](const kernelsim::HookContext&) {};
  return p;
}

TEST(Verifier, AcceptsWellFormedProgram) {
  Verifier verifier;
  const VerifyResult result = verifier.verify(valid_kprobe());
  EXPECT_TRUE(result.ok) << result.reason;
  EXPECT_EQ(verifier.verified_count(), 1u);
}

TEST(Verifier, RejectsEmptyProgram) {
  Verifier verifier;
  Program p = valid_kprobe();
  p.spec.instruction_count = 0;
  const VerifyResult result = verifier.verify(p);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.reason.find("zero instructions"), std::string::npos);
}

TEST(Verifier, RejectsOversizedProgram) {
  Verifier verifier;
  Program p = valid_kprobe();
  p.spec.instruction_count = 5'000;
  EXPECT_FALSE(verifier.verify(p).ok);
  EXPECT_EQ(verifier.rejected_count(), 1u);
}

TEST(Verifier, RejectsStackOverflow) {
  Verifier verifier;
  Program p = valid_kprobe();
  p.spec.stack_bytes = 1'024;
  const VerifyResult result = verifier.verify(p);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.reason.find("stack"), std::string::npos);
}

TEST(Verifier, RejectsUnboundedLoops) {
  // The property that guarantees DeepFlow cannot hang the kernel.
  Verifier verifier;
  Program p = valid_kprobe();
  p.spec.loops_bounded = false;
  const VerifyResult result = verifier.verify(p);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.reason.find("bound"), std::string::npos);
}

TEST(Verifier, RejectsProcessHelpersInSocketFilters) {
  // bpf_get_current_pid_tgid is meaningless in softirq context; the real
  // verifier rejects it for socket filters, and so do we.
  Verifier verifier;
  Program p;
  p.spec.name = "filter";
  p.spec.type = ProgramType::kSocketFilter;
  p.spec.instruction_count = 64;
  p.spec.stack_bytes = 64;
  p.spec.helpers = {Helper::kGetCurrentPidTgid};
  p.on_packet = [](const netsim::TapContext&) {};
  EXPECT_FALSE(verifier.verify(p).ok);
}

TEST(Verifier, RejectsSkbHelpersInKprobes) {
  Verifier verifier;
  Program p = valid_kprobe();
  p.spec.helpers = {Helper::kSkbLoadBytes};
  EXPECT_FALSE(verifier.verify(p).ok);
}

TEST(Verifier, AcceptsSkbHelpersInSocketFilters) {
  Verifier verifier;
  Program p;
  p.spec.name = "filter";
  p.spec.type = ProgramType::kSocketFilter;
  p.spec.instruction_count = 64;
  p.spec.stack_bytes = 64;
  p.spec.helpers = {Helper::kSkbLoadBytes, Helper::kPerfEventOutput};
  p.on_packet = [](const netsim::TapContext&) {};
  EXPECT_TRUE(verifier.verify(p).ok);
}

TEST(Verifier, RejectsMissingHandler) {
  Verifier verifier;
  Program p = valid_kprobe();
  p.on_hook = nullptr;
  EXPECT_FALSE(verifier.verify(p).ok);

  Program filter;
  filter.spec.name = "filter";
  filter.spec.type = ProgramType::kSocketFilter;
  filter.spec.instruction_count = 10;
  filter.on_packet = nullptr;
  EXPECT_FALSE(verifier.verify(filter).ok);
}

TEST(Verifier, CustomLimitsRespected) {
  Verifier strict(VerifierLimits{.max_instructions = 50, .max_stack_bytes = 64});
  Program p = valid_kprobe();  // 100 insns
  EXPECT_FALSE(strict.verify(p).ok);
  p.spec.instruction_count = 50;
  p.spec.stack_bytes = 64;
  EXPECT_TRUE(strict.verify(p).ok);
}

// Every probe-family program type accepts the probe helper set.
class VerifierTypeTest : public ::testing::TestWithParam<ProgramType> {};

TEST_P(VerifierTypeTest, ProbeHelpersAllowed) {
  Verifier verifier;
  Program p = valid_kprobe();
  p.spec.type = GetParam();
  p.spec.helpers = {Helper::kProbeRead, Helper::kKtimeGetNs,
                    Helper::kGetCurrentComm};
  EXPECT_TRUE(verifier.verify(p).ok);
}

INSTANTIATE_TEST_SUITE_P(ProbeTypes, VerifierTypeTest,
                         ::testing::Values(ProgramType::kKprobe,
                                           ProgramType::kKretprobe,
                                           ProgramType::kTracepoint,
                                           ProgramType::kTracepointExit,
                                           ProgramType::kUprobe,
                                           ProgramType::kUretprobe));

}  // namespace
}  // namespace deepflow::ebpf
