#include "ebpf/map.h"

#include <gtest/gtest.h>

#include <string>

namespace deepflow::ebpf {
namespace {

TEST(BpfHashMap, UpdateLookupDelete) {
  BpfHashMap<u64, std::string> map(8);
  EXPECT_TRUE(map.update(1, "a"));
  ASSERT_TRUE(map.lookup(1).has_value());
  EXPECT_EQ(*map.lookup(1), "a");
  EXPECT_TRUE(map.erase(1));
  EXPECT_FALSE(map.lookup(1).has_value());
  EXPECT_FALSE(map.erase(1));
}

TEST(BpfHashMap, UpdateOverwritesInPlace) {
  BpfHashMap<u64, int> map(1);
  EXPECT_TRUE(map.update(1, 10));
  EXPECT_TRUE(map.update(1, 20));  // full map, existing key: allowed
  EXPECT_EQ(*map.lookup(1), 20);
  EXPECT_EQ(map.size(), 1u);
}

TEST(BpfHashMap, FullMapRejectsNewKeys) {
  BpfHashMap<u64, int> map(2);
  EXPECT_TRUE(map.update(1, 1));
  EXPECT_TRUE(map.update(2, 2));
  EXPECT_FALSE(map.update(3, 3));
  EXPECT_EQ(map.stats().full_failures, 1u);
  // Deleting frees a slot.
  map.erase(1);
  EXPECT_TRUE(map.update(3, 3));
}

TEST(BpfHashMap, LookupAndDeleteConsumes) {
  // The enter/exit merge pattern: exit consumes the staged enter.
  BpfHashMap<u64, int> map(4);
  map.update(7, 99);
  const auto v = map.lookup_and_delete(7);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 99);
  EXPECT_FALSE(map.lookup_and_delete(7).has_value());
  EXPECT_EQ(map.size(), 0u);
}

TEST(BpfHashMap, StatsCountOperations) {
  BpfHashMap<u64, int> map(4);
  map.update(1, 1);
  map.lookup(1);
  map.lookup(2);
  EXPECT_EQ(map.stats().updates, 1u);
  EXPECT_EQ(map.stats().lookups, 2u);
  EXPECT_EQ(map.stats().hits, 1u);
}

TEST(BpfArrayMap, ZeroInitializedAndBounded) {
  BpfArrayMap<u64> map(4);
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_NE(map.lookup(i), nullptr);
    EXPECT_EQ(*map.lookup(i), 0u);
  }
  EXPECT_EQ(map.lookup(4), nullptr);
  EXPECT_EQ(map.lookup(1000), nullptr);
}

TEST(BpfArrayMap, InPlaceMutation) {
  BpfArrayMap<u64> map(2);
  *map.lookup(0) += 5;
  *map.lookup(0) += 5;
  EXPECT_EQ(*map.lookup(0), 10u);
}

}  // namespace
}  // namespace deepflow::ebpf
