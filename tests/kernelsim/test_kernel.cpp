#include "kernelsim/kernel.h"

#include <gtest/gtest.h>

#include <vector>

namespace deepflow::kernelsim {
namespace {

/// Captures transmissions for inspection.
class RecordingBackend : public NetworkBackend {
 public:
  void transmit(Kernel&, const Socket&, WireMessage message) override {
    messages.push_back(std::move(message));
  }
  std::vector<WireMessage> messages;
};

class KernelTest : public ::testing::Test {
 protected:
  KernelTest() : kernel_(loop_, "host-a", &backend_) {
    pid_ = kernel_.tasks().create_process("svc");
    tid_ = kernel_.tasks().create_thread(pid_);
    tuple_ = FiveTuple{Ipv4::parse("10.0.0.1"), Ipv4::parse("10.0.0.2"),
                       40000, 80, L4Proto::kTcp};
    sock_ = kernel_.open_socket(pid_, tuple_);
  }

  EventLoop loop_;
  RecordingBackend backend_;
  Kernel kernel_;
  Pid pid_ = 0;
  Tid tid_ = 0;
  FiveTuple tuple_;
  SocketId sock_ = 0;
};

TEST_F(KernelTest, SocketIdsGloballyUnique) {
  Kernel other(loop_, "host-b", nullptr);
  const Pid pid = other.tasks().create_process("x");
  const SocketId a = kernel_.open_socket(pid_, tuple_);
  const SocketId b = other.open_socket(pid, tuple_);
  EXPECT_NE(a, b);
  EXPECT_NE(a, sock_);
}

TEST_F(KernelTest, SendAdvancesSequenceByBytes) {
  const TcpSeq initial = kernel_.socket(sock_)->send_seq;
  const SyscallOutcome first =
      kernel_.sys_send(tid_, sock_, "hello", SyscallAbi::kWrite, 100);
  EXPECT_EQ(first.tcp_seq, initial);
  const SyscallOutcome second =
      kernel_.sys_send(tid_, sock_, "world!", SyscallAbi::kWrite, 200);
  EXPECT_EQ(second.tcp_seq, initial + 5);
  EXPECT_EQ(kernel_.socket(sock_)->send_seq, initial + 11);
}

TEST_F(KernelTest, SyscallTimingIncludesBaseCost) {
  const SyscallOutcome out =
      kernel_.sys_send(tid_, sock_, "x", SyscallAbi::kWrite, 1'000);
  EXPECT_EQ(out.enter_ts, 1'000u);
  EXPECT_EQ(out.exit_ts, 1'000u + kernel_.config().syscall_base_ns);
}

TEST_F(KernelTest, InstrumentationAddsLatencyOnlyWhenHooked) {
  EXPECT_EQ(kernel_.instrumentation_latency(SyscallAbi::kWrite), 0u);
  kernel_.hooks().attach_syscall(HookType::kKprobe, SyscallAbi::kWrite,
                                 [](const HookContext&) {});
  kernel_.hooks().attach_syscall(HookType::kKretprobe, SyscallAbi::kWrite,
                                 [](const HookContext&) {});
  const DurationNs instr = kernel_.instrumentation_latency(SyscallAbi::kWrite);
  EXPECT_GT(instr, 0u);
  const SyscallOutcome out =
      kernel_.sys_send(tid_, sock_, "x", SyscallAbi::kWrite, 0);
  EXPECT_EQ(out.exit_ts, kernel_.config().syscall_base_ns + instr);
  EXPECT_EQ(kernel_.instrumentation_cpu_total(), instr);
}

TEST_F(KernelTest, HookContextCarriesAllFourInfoCategories) {
  // HookContext views (payload, comm) are only valid during the hook call,
  // as with real BPF contexts — copy what must outlive it.
  HookContext seen;
  std::string payload_copy;
  kernel_.hooks().attach_syscall(
      HookType::kKprobe, SyscallAbi::kSendTo,
      [&](const HookContext& ctx) {
        seen = ctx;
        payload_copy = std::string(ctx.payload);
      });
  kernel_.sys_send(tid_, sock_, "payload-bytes", SyscallAbi::kSendTo, 777);
  EXPECT_EQ(seen.pid, pid_);                       // program info
  EXPECT_EQ(seen.tid, tid_);
  EXPECT_EQ(seen.comm, "svc");
  EXPECT_EQ(seen.socket_id, sock_);                // network info
  EXPECT_EQ(seen.tuple, tuple_);
  EXPECT_EQ(seen.timestamp, 777u);                 // tracing info
  EXPECT_EQ(seen.direction, Direction::kEgress);
  EXPECT_EQ(seen.abi, SyscallAbi::kSendTo);        // syscall info
  EXPECT_EQ(seen.total_bytes, 13u);
  EXPECT_EQ(payload_copy, "payload-bytes");
}

TEST_F(KernelTest, RecvTupleIsReversedToSenderPerspective) {
  HookContext seen;
  kernel_.hooks().attach_syscall(
      HookType::kKprobe, SyscallAbi::kRead,
      [&](const HookContext& ctx) { seen = ctx; });
  WireMessage msg;
  msg.tuple = tuple_.reversed();  // inbound: peer -> us
  msg.tcp_seq = 42;
  msg.payload = "req";
  msg.app_payload = "req";
  msg.total_bytes = 3;
  kernel_.sys_recv(tid_, sock_, msg, SyscallAbi::kRead, 10);
  // Ingress hook context shows the flow from the sender's perspective.
  EXPECT_EQ(seen.tuple, tuple_.reversed());
  EXPECT_EQ(seen.tcp_seq, 42u);
  EXPECT_EQ(seen.direction, Direction::kIngress);
}

TEST_F(KernelTest, PayloadSnapshotIsBounded) {
  HookContext seen;
  kernel_.hooks().attach_syscall(
      HookType::kKprobe, SyscallAbi::kWrite,
      [&](const HookContext& ctx) { seen = ctx; });
  const std::string big(10'000, 'a');
  kernel_.sys_send(tid_, sock_, big, SyscallAbi::kWrite, 0);
  EXPECT_EQ(seen.payload.size(), kernel_.config().payload_snapshot_len);
  EXPECT_EQ(seen.total_bytes, 10'000u);
}

TEST_F(KernelTest, TransmitHandsMessageToBackend) {
  kernel_.sys_send(tid_, sock_, "data", SyscallAbi::kWriteV, 50);
  ASSERT_EQ(backend_.messages.size(), 1u);
  EXPECT_EQ(backend_.messages[0].payload, "data");
  EXPECT_EQ(backend_.messages[0].tuple, tuple_);
  EXPECT_EQ(backend_.messages[0].total_bytes, 4u);
}

TEST_F(KernelTest, ClosedSocketRefusesIo) {
  kernel_.close_socket(sock_);
  const SyscallOutcome out =
      kernel_.sys_send(tid_, sock_, "x", SyscallAbi::kWrite, 0);
  EXPECT_EQ(out.exit_ts, 0u);
  EXPECT_TRUE(backend_.messages.empty());
}

TEST_F(KernelTest, TlsSocketsScrambleWirePayloadButExposePlaintext) {
  const SocketId tls_sock =
      kernel_.open_socket(pid_, tuple_, L4Proto::kTcp, /*tls=*/true);
  std::string uprobe_payload;
  std::string kprobe_payload;
  kernel_.hooks().attach_uprobe(
      HookType::kUprobe, "SSL_write",
      [&](const HookContext& ctx) { uprobe_payload = ctx.payload; });
  kernel_.hooks().attach_syscall(
      HookType::kKprobe, SyscallAbi::kWrite,
      [&](const HookContext& ctx) { kprobe_payload = ctx.payload; });
  kernel_.sys_send(tid_, tls_sock, "GET / HTTP/1.1\r\n\r\n",
                   SyscallAbi::kWrite, 0);
  EXPECT_EQ(uprobe_payload, "GET / HTTP/1.1\r\n\r\n");  // plaintext
  EXPECT_NE(kprobe_payload, "GET / HTTP/1.1\r\n\r\n");  // ciphertext
  ASSERT_EQ(backend_.messages.size(), 1u);
  EXPECT_EQ(backend_.messages[0].app_payload, "GET / HTTP/1.1\r\n\r\n");
  EXPECT_NE(backend_.messages[0].payload, backend_.messages[0].app_payload);
}

TEST_F(KernelTest, TlsRecvFiresSslReadWithPlaintext) {
  const SocketId tls_sock =
      kernel_.open_socket(pid_, tuple_, L4Proto::kTcp, /*tls=*/true);
  std::string plaintext_seen;
  kernel_.hooks().attach_uprobe(
      HookType::kUprobe, "SSL_read",
      [&](const HookContext& ctx) { plaintext_seen = ctx.payload; });
  WireMessage msg;
  msg.tuple = tuple_.reversed();
  msg.payload = "\x9c\xa2\xb7";  // ciphertext on the wire
  msg.app_payload = "secret";
  msg.total_bytes = 6;
  kernel_.sys_recv(tid_, tls_sock, msg, SyscallAbi::kRead, 0);
  EXPECT_EQ(plaintext_seen, "secret");
}

TEST_F(KernelTest, SyscallCountTracksBothDirections) {
  kernel_.sys_send(tid_, sock_, "a", SyscallAbi::kWrite, 0);
  WireMessage msg;
  msg.tuple = tuple_.reversed();
  msg.payload = "b";
  msg.app_payload = "b";
  msg.total_bytes = 1;
  kernel_.sys_recv(tid_, sock_, msg, SyscallAbi::kRead, 10);
  EXPECT_EQ(kernel_.syscall_count(), 2u);
}

// Every Table 3 ABI drives the same capture machinery.
class AllAbisTest : public KernelTest,
                    public ::testing::WithParamInterface<SyscallAbi> {};

TEST_P(AllAbisTest, HooksFireForEveryAbi) {
  const SyscallAbi abi = GetParam();
  int fired = 0;
  kernel_.hooks().attach_syscall(HookType::kKprobe, abi,
                                 [&](const HookContext&) { ++fired; });
  kernel_.hooks().attach_syscall(HookType::kKretprobe, abi,
                                 [&](const HookContext&) { ++fired; });
  if (direction_of(abi) == Direction::kEgress) {
    kernel_.sys_send(tid_, sock_, "x", abi, 0);
  } else {
    WireMessage msg;
    msg.tuple = tuple_.reversed();
    msg.payload = "x";
    msg.app_payload = "x";
    msg.total_bytes = 1;
    kernel_.sys_recv(tid_, sock_, msg, abi, 0);
  }
  EXPECT_EQ(fired, 2);
}

INSTANTIATE_TEST_SUITE_P(
    TableThree, AllAbisTest,
    ::testing::Values(SyscallAbi::kRecvMsg, SyscallAbi::kRecvMmsg,
                      SyscallAbi::kReadV, SyscallAbi::kRead,
                      SyscallAbi::kRecvFrom, SyscallAbi::kSendMsg,
                      SyscallAbi::kSendMmsg, SyscallAbi::kWriteV,
                      SyscallAbi::kWrite, SyscallAbi::kSendTo),
    [](const auto& info) { return std::string(abi_name(info.param)); });

}  // namespace
}  // namespace deepflow::kernelsim
