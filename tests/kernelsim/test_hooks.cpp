#include "kernelsim/hook.h"

#include <gtest/gtest.h>

namespace deepflow::kernelsim {
namespace {

TEST(SyscallAbi, TableThreeCoverage) {
  // The paper's Table 3 lists exactly five ingress and five egress ABIs.
  EXPECT_EQ(kIngressAbis.size(), 5u);
  EXPECT_EQ(kEgressAbis.size(), 5u);
  for (const SyscallAbi abi : kIngressAbis) {
    EXPECT_EQ(direction_of(abi), Direction::kIngress);
    EXPECT_TRUE(is_kernel_abi(abi));
  }
  for (const SyscallAbi abi : kEgressAbis) {
    EXPECT_EQ(direction_of(abi), Direction::kEgress);
    EXPECT_TRUE(is_kernel_abi(abi));
  }
}

TEST(SyscallAbi, SslExtensionsAreNotKernelAbis) {
  EXPECT_FALSE(is_kernel_abi(SyscallAbi::kSslRead));
  EXPECT_FALSE(is_kernel_abi(SyscallAbi::kSslWrite));
  EXPECT_EQ(direction_of(SyscallAbi::kSslRead), Direction::kIngress);
  EXPECT_EQ(direction_of(SyscallAbi::kSslWrite), Direction::kEgress);
}

TEST(SyscallAbi, NamesMatchTable) {
  EXPECT_EQ(abi_name(SyscallAbi::kRecvMmsg), "recvmmsg");
  EXPECT_EQ(abi_name(SyscallAbi::kSendTo), "sendto");
  EXPECT_EQ(abi_name(SyscallAbi::kWriteV), "writev");
}

TEST(HookRegistry, FiresEnterAndExitSeparately) {
  HookRegistry registry;
  int enters = 0, exits = 0;
  registry.attach_syscall(HookType::kKprobe, SyscallAbi::kRead,
                          [&](const HookContext&) { ++enters; });
  registry.attach_syscall(HookType::kKretprobe, SyscallAbi::kRead,
                          [&](const HookContext&) { ++exits; });
  HookContext ctx;
  registry.fire_syscall_enter(SyscallAbi::kRead, ctx);
  EXPECT_EQ(enters, 1);
  EXPECT_EQ(exits, 0);
  registry.fire_syscall_exit(SyscallAbi::kRead, ctx);
  EXPECT_EQ(exits, 1);
}

TEST(HookRegistry, TracepointsFireAlongsideKprobes) {
  HookRegistry registry;
  int fired = 0;
  registry.attach_syscall(HookType::kKprobe, SyscallAbi::kWrite,
                          [&](const HookContext&) { ++fired; });
  registry.attach_syscall(HookType::kTracepointEnter, SyscallAbi::kWrite,
                          [&](const HookContext&) { ++fired; });
  HookContext ctx;
  registry.fire_syscall_enter(SyscallAbi::kWrite, ctx);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(registry.enter_handler_count(SyscallAbi::kWrite), 2u);
}

TEST(HookRegistry, AbisAreIndependent) {
  HookRegistry registry;
  int fired = 0;
  registry.attach_syscall(HookType::kKprobe, SyscallAbi::kRead,
                          [&](const HookContext&) { ++fired; });
  HookContext ctx;
  registry.fire_syscall_enter(SyscallAbi::kWrite, ctx);
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(registry.syscall_hooked(SyscallAbi::kWrite));
  EXPECT_TRUE(registry.syscall_hooked(SyscallAbi::kRead));
}

TEST(HookRegistry, DetachStopsFiring) {
  HookRegistry registry;
  int fired = 0;
  const HookId id = registry.attach_syscall(
      HookType::kKprobe, SyscallAbi::kRead,
      [&](const HookContext&) { ++fired; });
  HookContext ctx;
  registry.fire_syscall_enter(SyscallAbi::kRead, ctx);
  registry.detach(id);
  registry.fire_syscall_enter(SyscallAbi::kRead, ctx);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(registry.attached_count(), 0u);
}

TEST(HookRegistry, UprobesKeyedBySymbol) {
  HookRegistry registry;
  int ssl_read = 0, ssl_write = 0;
  registry.attach_uprobe(HookType::kUprobe, "SSL_read",
                         [&](const HookContext&) { ++ssl_read; });
  registry.attach_uprobe(HookType::kUprobe, "SSL_write",
                         [&](const HookContext&) { ++ssl_write; });
  HookContext ctx;
  registry.fire_uprobe("SSL_read", ctx);
  registry.fire_uprobe("SSL_read", ctx);
  EXPECT_EQ(ssl_read, 2);
  EXPECT_EQ(ssl_write, 0);
}

TEST(HookRegistry, UretprobeDistinctFromUprobe) {
  HookRegistry registry;
  int entry = 0, exit = 0;
  registry.attach_uprobe(HookType::kUprobe, "f",
                         [&](const HookContext&) { ++entry; });
  registry.attach_uprobe(HookType::kUretprobe, "f",
                         [&](const HookContext&) { ++exit; });
  HookContext ctx;
  registry.fire_uprobe("f", ctx);
  registry.fire_uretprobe("f", ctx);
  registry.fire_uretprobe("f", ctx);
  EXPECT_EQ(entry, 1);
  EXPECT_EQ(exit, 2);
}

TEST(HookRegistry, WrongAttachKindsRejected) {
  HookRegistry registry;
  EXPECT_EQ(registry.attach_syscall(HookType::kUprobe, SyscallAbi::kRead,
                                    [](const HookContext&) {}),
            0u);
  EXPECT_EQ(registry.attach_uprobe(HookType::kKprobe, "SSL_read",
                                   [](const HookContext&) {}),
            0u);
  EXPECT_EQ(registry.attached_count(), 0u);
}

TEST(HookRegistry, MultipleHandlersAllFire) {
  HookRegistry registry;
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    registry.attach_syscall(HookType::kKretprobe, SyscallAbi::kSendMsg,
                            [&](const HookContext&) { ++fired; });
  }
  HookContext ctx;
  registry.fire_syscall_exit(SyscallAbi::kSendMsg, ctx);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(registry.exit_handler_count(SyscallAbi::kSendMsg), 5u);
}

}  // namespace
}  // namespace deepflow::kernelsim
