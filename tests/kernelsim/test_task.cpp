#include "kernelsim/task.h"

#include <gtest/gtest.h>

namespace deepflow::kernelsim {
namespace {

TEST(TaskManager, ProcessCreationAndLookup) {
  TaskManager tasks;
  const Pid pid = tasks.create_process("nginx");
  const Process* proc = tasks.process(pid);
  ASSERT_NE(proc, nullptr);
  EXPECT_EQ(proc->comm, "nginx");
  EXPECT_TRUE(proc->threads.empty());
  EXPECT_EQ(tasks.process(9999), nullptr);
}

TEST(TaskManager, ThreadsLinkedToProcess) {
  TaskManager tasks;
  const Pid pid = tasks.create_process("svc");
  const Tid t1 = tasks.create_thread(pid);
  const Tid t2 = tasks.create_thread(pid);
  EXPECT_NE(t1, t2);
  const Process* proc = tasks.process(pid);
  ASSERT_EQ(proc->threads.size(), 2u);
  EXPECT_EQ(tasks.thread(t1)->pid, pid);
}

TEST(TaskManager, ThreadIdsGloballyUniqueAcrossProcesses) {
  TaskManager tasks;
  const Pid a = tasks.create_process("a");
  const Pid b = tasks.create_process("b");
  const Tid ta = tasks.create_thread(a);
  const Tid tb = tasks.create_thread(b);
  EXPECT_NE(ta, tb);
}

TEST(TaskManager, RunningCoroutineTracked) {
  TaskManager tasks;
  const Pid pid = tasks.create_process("go-svc");
  const Tid tid = tasks.create_thread(pid);
  const CoroutineId coro = tasks.create_coroutine(pid);
  EXPECT_EQ(tasks.thread(tid)->running_coroutine, 0u);
  tasks.set_running_coroutine(tid, coro);
  EXPECT_EQ(tasks.thread(tid)->running_coroutine, coro);
  tasks.set_running_coroutine(tid, 0);
  EXPECT_EQ(tasks.thread(tid)->running_coroutine, 0u);
}

TEST(TaskManager, PseudoThreadRootOfRootIsItself) {
  TaskManager tasks;
  const Pid pid = tasks.create_process("go-svc");
  const CoroutineId root = tasks.create_coroutine(pid);
  EXPECT_EQ(tasks.pseudo_thread_root(root), root);
}

TEST(TaskManager, PseudoThreadRootWalksAncestry) {
  // The paper: coroutine parent-child relationships form a pseudo-thread
  // structure; all descendants resolve to the same root.
  TaskManager tasks;
  const Pid pid = tasks.create_process("go-svc");
  const CoroutineId root = tasks.create_coroutine(pid);
  const CoroutineId child = tasks.create_coroutine(pid, root);
  const CoroutineId grandchild = tasks.create_coroutine(pid, child);
  EXPECT_EQ(tasks.pseudo_thread_root(child), root);
  EXPECT_EQ(tasks.pseudo_thread_root(grandchild), root);
}

TEST(TaskManager, SeparateLineagesSeparateRoots) {
  TaskManager tasks;
  const Pid pid = tasks.create_process("go-svc");
  const CoroutineId r1 = tasks.create_coroutine(pid);
  const CoroutineId r2 = tasks.create_coroutine(pid);
  const CoroutineId c1 = tasks.create_coroutine(pid, r1);
  const CoroutineId c2 = tasks.create_coroutine(pid, r2);
  EXPECT_NE(tasks.pseudo_thread_root(c1), tasks.pseudo_thread_root(c2));
}

TEST(TaskManager, UnknownCoroutineRootsToItself) {
  TaskManager tasks;
  EXPECT_EQ(tasks.pseudo_thread_root(424242), 424242u);
}

}  // namespace
}  // namespace deepflow::kernelsim
