#include <gtest/gtest.h>

#include "protocols/amqp.h"
#include "protocols/dns.h"
#include "protocols/dubbo.h"
#include "protocols/kafka.h"
#include "protocols/mqtt.h"
#include "protocols/mysql.h"

namespace deepflow::protocols {
namespace {

// ------------------------------------------------------------------- DNS --

TEST(Dns, QueryRoundTrip) {
  DnsParser parser;
  const std::string payload = build_dns_query(0x1234, "api.shop.svc");
  ASSERT_TRUE(parser.infer(payload));
  const auto msg = parser.parse(payload);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MessageType::kRequest);
  EXPECT_EQ(msg->method, "QUERY");
  EXPECT_EQ(msg->endpoint, "api.shop.svc");
  EXPECT_EQ(msg->stream_id, 0x1234u);
}

TEST(Dns, ResponseCarriesRcode) {
  DnsParser parser;
  const auto ok = parser.parse(build_dns_response(7, "svc", 0));
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->type, MessageType::kResponse);
  EXPECT_TRUE(ok->ok);
  EXPECT_EQ(ok->stream_id, 7u);

  const auto nx = parser.parse(build_dns_response(7, "svc", 3));  // NXDOMAIN
  ASSERT_TRUE(nx.has_value());
  EXPECT_FALSE(nx->ok);
  EXPECT_EQ(nx->status_code, 3u);
}

TEST(Dns, TransactionIdCorrelates) {
  DnsParser parser;
  const auto query = parser.parse(build_dns_query(42, "a.b"));
  const auto response = parser.parse(build_dns_response(42, "a.b"));
  ASSERT_TRUE(query && response);
  EXPECT_EQ(query->stream_id, response->stream_id);
}

TEST(Dns, RejectsShortAndImplausible) {
  DnsParser parser;
  EXPECT_FALSE(parser.infer("short"));
  EXPECT_FALSE(parser.infer("GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
}

// ----------------------------------------------------------------- MySQL --

TEST(Mysql, QueryParsesVerbAndStatement) {
  MysqlParser parser;
  const std::string payload =
      build_mysql_query("select * from orders where id = 7");
  ASSERT_TRUE(parser.infer(payload));
  const auto msg = parser.parse(payload);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MessageType::kRequest);
  EXPECT_EQ(msg->method, "SELECT");  // upper-cased verb
}

TEST(Mysql, OkAndErrResponses) {
  MysqlParser parser;
  const auto ok = parser.parse(build_mysql_ok());
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->type, MessageType::kResponse);
  EXPECT_TRUE(ok->ok);

  const auto err = parser.parse(build_mysql_error(1064, "syntax"));
  ASSERT_TRUE(err.has_value());
  EXPECT_FALSE(err->ok);
  EXPECT_EQ(err->status_code, 1064u);
}

TEST(Mysql, RejectsTextProtocols) {
  // The regression this guards: "GET " decodes as a plausible 3-byte
  // little-endian length, which once misclassified all HTTP as MySQL.
  MysqlParser parser;
  EXPECT_FALSE(parser.infer("GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
  EXPECT_FALSE(parser.infer("HTTP/1.1 200 OK\r\n\r\n"));
  EXPECT_FALSE(parser.infer("+OK\r\n"));
  EXPECT_FALSE(parser.infer("*2\r\n$3\r\nGET\r\n$3\r\nkey\r\n"));
}

// ----------------------------------------------------------------- Kafka --

TEST(Kafka, RequestRoundTrip) {
  KafkaParser parser;
  const std::string payload =
      build_kafka_request(KafkaApi::kProduce, 555, "client-1", "orders");
  ASSERT_TRUE(parser.infer(payload));
  const auto msg = parser.parse(payload);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MessageType::kRequest);
  EXPECT_EQ(msg->method, "Produce");
  EXPECT_EQ(msg->endpoint, "orders");
  EXPECT_EQ(msg->stream_id, 555u);
}

TEST(Kafka, CorrelationIdMatchesResponse) {
  KafkaParser parser;
  const auto resp = parser.parse(build_kafka_response(555, 0));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, MessageType::kResponse);
  EXPECT_EQ(resp->stream_id, 555u);
  EXPECT_TRUE(resp->ok);
}

TEST(Kafka, ErrorCodePropagates) {
  KafkaParser parser;
  const auto resp = parser.parse(build_kafka_response(1, 7));
  ASSERT_TRUE(resp.has_value());
  EXPECT_FALSE(resp->ok);
  EXPECT_EQ(resp->status_code, 7u);
}

TEST(Kafka, RejectsImplausibleApiKeys) {
  KafkaParser parser;
  EXPECT_FALSE(parser.infer("GET / HTTP/1.1\r\nHost: abc\r\n\r\n"));
}

// ------------------------------------------------------------------ MQTT --

TEST(Mqtt, ConnectRequiresProtocolName) {
  MqttParser parser;
  EXPECT_TRUE(parser.infer(build_mqtt_connect("sensor-1")));
  const auto msg = parser.parse(build_mqtt_connect("sensor-1"));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->method, "CONNECT");
  EXPECT_EQ(msg->type, MessageType::kRequest);
}

TEST(Mqtt, PublishCarriesTopic) {
  MqttParser parser;
  const auto msg = parser.parse(build_mqtt_publish("orders/created", "{}"));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->method, "PUBLISH");
  EXPECT_EQ(msg->endpoint, "orders/created");
  EXPECT_EQ(msg->type, MessageType::kRequest);
}

TEST(Mqtt, PubackIsResponse) {
  MqttParser parser;
  const auto msg = parser.parse(build_mqtt_puback());
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->method, "PUBACK");
  EXPECT_EQ(msg->type, MessageType::kResponse);
}

TEST(Mqtt, ConnackReturnCode) {
  MqttParser parser;
  const auto accepted = parser.parse(build_mqtt_connack(0));
  ASSERT_TRUE(accepted.has_value());
  EXPECT_TRUE(accepted->ok);
  const auto refused = parser.parse(build_mqtt_connack(5));
  ASSERT_TRUE(refused.has_value());
  EXPECT_FALSE(refused->ok);
}

TEST(Mqtt, FlagNibbleRejectsText) {
  // 'G' = type 4 with flags 7: invalid per spec; guards against HTTP.
  MqttParser parser;
  EXPECT_FALSE(parser.infer("GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
  EXPECT_FALSE(parser.infer("*2\r\n$3\r\nGET\r\n$3\r\nkey\r\n"));
}

// ----------------------------------------------------------------- Dubbo --

TEST(Dubbo, MagicNumberAnchorsInference) {
  DubboParser parser;
  const std::string payload =
      build_dubbo_request(99, "com.shop.Inventory", "deduct");
  EXPECT_TRUE(parser.infer(payload));
  EXPECT_FALSE(parser.infer("GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
}

TEST(Dubbo, RequestRoundTrip) {
  DubboParser parser;
  const auto msg =
      parser.parse(build_dubbo_request(99, "com.shop.Inventory", "deduct"));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MessageType::kRequest);
  EXPECT_EQ(msg->stream_id, 99u);
  EXPECT_EQ(msg->method, "deduct");
  EXPECT_EQ(msg->endpoint, "com.shop.Inventory.deduct");
}

TEST(Dubbo, ResponseStatus) {
  DubboParser parser;
  const auto ok = parser.parse(build_dubbo_response(99, 20));
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->ok);
  EXPECT_EQ(ok->stream_id, 99u);
  const auto err = parser.parse(build_dubbo_response(99, 70));
  ASSERT_TRUE(err.has_value());
  EXPECT_FALSE(err->ok);
}

TEST(Dubbo, SixtyFourBitRequestIds) {
  DubboParser parser;
  const u64 big = 0xdeadbeefcafe1234ULL;
  const auto msg = parser.parse(build_dubbo_request(big, "s", "m"));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->stream_id, big);
}

// ------------------------------------------------------------------ AMQP --

TEST(Amqp, ProtocolHeaderInferred) {
  AmqpParser parser;
  const auto msg = parser.parse(build_amqp_protocol_header());
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->method, "protocol-header");
  EXPECT_EQ(msg->type, MessageType::kRequest);
}

TEST(Amqp, PublishCarriesRoutingKey) {
  AmqpParser parser;
  const std::string payload = build_amqp_publish(1, "orders.created");
  ASSERT_TRUE(parser.infer(payload));
  const auto msg = parser.parse(payload);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MessageType::kRequest);
  EXPECT_EQ(msg->method, "basic.publish");
  EXPECT_EQ(msg->endpoint, "orders.created");
}

TEST(Amqp, AckIsSuccessfulResponse) {
  AmqpParser parser;
  const auto msg = parser.parse(build_amqp_ack(1));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MessageType::kResponse);
  EXPECT_TRUE(msg->ok);
}

TEST(Amqp, ChannelCloseCarriesReplyCode) {
  AmqpParser parser;
  const auto msg = parser.parse(build_amqp_close(1, 312, "NO_ROUTE"));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MessageType::kResponse);
  EXPECT_FALSE(msg->ok);
  EXPECT_EQ(msg->status_code, 312u);
}

TEST(Amqp, FrameEndOctetRequired) {
  AmqpParser parser;
  std::string payload = build_amqp_publish(1, "k");
  payload.back() = '\x00';  // corrupt the 0xCE end octet
  EXPECT_FALSE(parser.infer(payload));
}

TEST(Amqp, RejectsForeignPayloads) {
  AmqpParser parser;
  EXPECT_FALSE(parser.infer("GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
  EXPECT_FALSE(parser.infer("+OK\r\n"));
  EXPECT_FALSE(parser.infer(""));
}

}  // namespace
}  // namespace deepflow::protocols
