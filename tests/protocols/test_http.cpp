#include <gtest/gtest.h>

#include "protocols/http1.h"
#include "protocols/http2.h"

namespace deepflow::protocols {
namespace {

// ---------------------------------------------------------------- HTTP/1 --

TEST(Http1, RequestRoundTrip) {
  Http1Parser parser;
  const std::string payload = build_http1_request(
      "GET", "/cart", {{"X-Request-ID", "abc-1"}, {"traceparent",
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"}});
  ASSERT_TRUE(parser.infer(payload));
  const auto msg = parser.parse(payload);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MessageType::kRequest);
  EXPECT_EQ(msg->method, "GET");
  EXPECT_EQ(msg->endpoint, "/cart");
  EXPECT_EQ(msg->x_request_id, "abc-1");
  EXPECT_EQ(extract_trace_id(msg->trace_context),
            "0af7651916cd43dd8448eb211c80319c");
}

TEST(Http1, ResponseRoundTrip) {
  Http1Parser parser;
  const std::string payload = build_http1_response(404, {}, "missing");
  const auto msg = parser.parse(payload);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MessageType::kResponse);
  EXPECT_EQ(msg->status_code, 404u);
  EXPECT_FALSE(msg->ok);
}

TEST(Http1, StatusClassesMapToOk) {
  Http1Parser parser;
  for (const auto& [status, ok] :
       std::vector<std::pair<u32, bool>>{{200, true}, {204, true}, {301, true},
                                         {400, false}, {500, false},
                                         {503, false}}) {
    const auto msg = parser.parse(build_http1_response(status));
    ASSERT_TRUE(msg.has_value()) << status;
    EXPECT_EQ(msg->ok, ok) << status;
  }
}

TEST(Http1, AllMethodsInferred) {
  Http1Parser parser;
  for (const char* method : {"GET", "POST", "PUT", "DELETE", "HEAD",
                             "OPTIONS", "PATCH"}) {
    EXPECT_TRUE(parser.infer(build_http1_request(method, "/")));
  }
}

TEST(Http1, HeaderLookupIsCaseInsensitive) {
  const std::string payload =
      build_http1_request("GET", "/", {{"x-request-id", "lower"}});
  EXPECT_EQ(find_http1_header(payload, "X-Request-ID"), "lower");
}

TEST(Http1, MissingHeaderIsEmpty) {
  const std::string payload = build_http1_request("GET", "/");
  EXPECT_EQ(find_http1_header(payload, "X-Request-ID"), "");
}

TEST(Http1, RejectsForeignPayloads) {
  Http1Parser parser;
  EXPECT_FALSE(parser.infer("*1\r\n$4\r\nPING\r\n"));
  EXPECT_FALSE(parser.infer("\xda\xbb..."));
  EXPECT_FALSE(parser.infer("GETX / HTTP/1.1"));  // method must end in space
  EXPECT_FALSE(parser.infer(""));
}

TEST(Http1, TruncatedRequestStillParses) {
  // Payload snapshots cut at 256 bytes; the request line survives.
  std::string payload = build_http1_request("POST", "/big", {}, std::string(1000, 'x'));
  payload.resize(256);
  Http1Parser parser;
  const auto msg = parser.parse(payload);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->method, "POST");
  EXPECT_EQ(msg->endpoint, "/big");
}

TEST(Http1, MalformedStatusRejected) {
  Http1Parser parser;
  EXPECT_FALSE(parser.parse("HTTP/1.1 9xx Nope\r\n\r\n").has_value());
  EXPECT_FALSE(parser.parse("HTTP/1.1").has_value());
}

// ---------------------------------------------------------------- HTTP/2 --

TEST(Http2, RequestRoundTripWithStreamId) {
  Http2Parser parser;
  const std::string payload =
      build_http2_request(7, "GET", "/reviews", {{"x-request-id", "r-9"}});
  ASSERT_TRUE(parser.infer(payload));
  const auto msg = parser.parse(payload);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MessageType::kRequest);
  EXPECT_EQ(msg->method, "GET");
  EXPECT_EQ(msg->endpoint, "/reviews");
  EXPECT_EQ(msg->stream_id, 7u);
  EXPECT_EQ(msg->x_request_id, "r-9");
}

TEST(Http2, ResponseCarriesStatusAndStream) {
  Http2Parser parser;
  const auto msg = parser.parse(build_http2_response(7, 503));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MessageType::kResponse);
  EXPECT_EQ(msg->status_code, 503u);
  EXPECT_FALSE(msg->ok);
  EXPECT_EQ(msg->stream_id, 7u);
}

TEST(Http2, StreamIdsDistinguishMultiplexedExchanges) {
  // The paper's parallel-protocol example: stream ids correlate request
  // and response on a multiplexed connection.
  Http2Parser parser;
  const auto req_a = parser.parse(build_http2_request(1, "GET", "/a"));
  const auto req_b = parser.parse(build_http2_request(3, "GET", "/b"));
  const auto resp_b = parser.parse(build_http2_response(3, 200));
  ASSERT_TRUE(req_a && req_b && resp_b);
  EXPECT_NE(req_a->stream_id, req_b->stream_id);
  EXPECT_EQ(req_b->stream_id, resp_b->stream_id);
}

TEST(Http2, PrefaceInferred) {
  Http2Parser parser;
  EXPECT_TRUE(parser.infer("PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n"));
}

TEST(Http2, MatchModeIsParallel) {
  EXPECT_EQ(Http2Parser().match_mode(), SessionMatchMode::kParallel);
  EXPECT_EQ(Http1Parser().match_mode(), SessionMatchMode::kPipeline);
}

TEST(Http2, RejectsShortOrForeign) {
  Http2Parser parser;
  EXPECT_FALSE(parser.infer("GET / HTTP/1.1\r\n"));
  EXPECT_FALSE(parser.infer("\x00\x01"));
  EXPECT_FALSE(parser.parse("HTTP/1.1 200 OK\r\n\r\n").has_value());
}

TEST(Http2, ReservedBitMaskedFromStreamId) {
  Http2Parser parser;
  // Stream id with the reserved high bit set must be masked per RFC 7540.
  const std::string payload = build_http2_request(0x7fffffff, "GET", "/");
  const auto msg = parser.parse(payload);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->stream_id, 0x7fffffffu);
}

}  // namespace
}  // namespace deepflow::protocols
