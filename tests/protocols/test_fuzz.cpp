// Robustness fuzzing: the tracing plane feeds parsers arbitrary bytes
// (ciphertext, corrupted frames, truncated snapshots). Parsers must never
// crash, never read out of bounds, and keep infer/parse consistent —
// infer() returning true must make parse() at least attempt-safe, and the
// registry must never return a parser whose parse then misbehaves.
#include <gtest/gtest.h>

#include "common/rand.h"
#include "protocols/amqp.h"
#include "protocols/dns.h"
#include "protocols/dubbo.h"
#include "protocols/http1.h"
#include "protocols/http2.h"
#include "protocols/kafka.h"
#include "protocols/mqtt.h"
#include "protocols/mysql.h"
#include "protocols/parser.h"
#include "protocols/redis.h"
#include "workloads/payloads.h"

namespace deepflow::protocols {
namespace {

std::string random_bytes(Rng& rng, size_t max_len) {
  std::string out(rng.below(max_len + 1), '\0');
  for (char& c : out) c = static_cast<char>(rng.next() & 0xff);
  return out;
}

std::string mutate(Rng& rng, std::string payload) {
  if (payload.empty()) return payload;
  const size_t flips = 1 + rng.below(4);
  for (size_t i = 0; i < flips; ++i) {
    payload[rng.below(payload.size())] =
        static_cast<char>(rng.next() & 0xff);
  }
  if (rng.chance(0.3)) payload.resize(rng.below(payload.size()) + 1);
  return payload;
}

class FuzzTest : public ::testing::TestWithParam<u64> {};

TEST_P(FuzzTest, RandomBytesNeverCrashAnyParser) {
  const ProtocolRegistry registry = ProtocolRegistry::with_builtin();
  Rng rng(GetParam());
  for (int i = 0; i < 20'000; ++i) {
    const std::string payload = random_bytes(rng, 300);
    const ProtocolParser* inferred = registry.infer(payload);
    if (inferred != nullptr) {
      // A positive signature must lead to a safe parse (value or nullopt).
      const auto parsed = inferred->parse(payload);
      if (parsed.has_value()) {
        // Parsed semantics must be self-consistent.
        if (parsed->type == MessageType::kRequest) {
          EXPECT_EQ(parsed->status_code, 0u);
        }
      }
    }
    // And every parser individually survives arbitrary input.
    for (const L7Protocol proto :
         {L7Protocol::kHttp1, L7Protocol::kHttp2, L7Protocol::kDns,
          L7Protocol::kRedis, L7Protocol::kMysql, L7Protocol::kKafka,
          L7Protocol::kMqtt, L7Protocol::kDubbo, L7Protocol::kAmqp}) {
      registry.parser_for(proto)->parse(payload);
    }
  }
}

TEST_P(FuzzTest, MutatedRealPayloadsNeverCrash) {
  const ProtocolRegistry registry = ProtocolRegistry::with_builtin();
  Rng rng(GetParam() ^ 0xfeedULL);
  workloads::RequestContext ctx;
  ctx.x_request_id = "xrid-fuzz";
  for (int i = 0; i < 20'000; ++i) {
    const auto proto = static_cast<L7Protocol>(1 + rng.below(9));
    std::string payload = rng.chance(0.5)
                              ? workloads::build_request_payload(
                                    proto, "/fuzz/endpoint", rng.next(), ctx)
                              : workloads::build_response_payload(
                                    proto, rng.chance(0.5) ? 200 : 500,
                                    rng.next() & 0xffff, ctx);
    payload = mutate(rng, std::move(payload));
    const ProtocolParser* inferred = registry.infer(payload);
    if (inferred != nullptr) inferred->parse(payload);
  }
}

TEST_P(FuzzTest, TruncationAtEveryBoundaryIsSafe) {
  const ProtocolRegistry registry = ProtocolRegistry::with_builtin();
  workloads::RequestContext ctx;
  ctx.traceparent =
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
  Rng rng(GetParam() ^ 0xc0ffeeULL);
  for (int round = 0; round < 64; ++round) {
    const auto proto = static_cast<L7Protocol>(1 + rng.below(9));
    const std::string full =
        workloads::build_request_payload(proto, "/truncate/me", 7, ctx);
    for (size_t cut = 0; cut <= full.size(); ++cut) {
      const std::string payload = full.substr(0, cut);
      const ProtocolParser* inferred = registry.infer(payload);
      if (inferred != nullptr) inferred->parse(payload);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1, 42, 12345, 0xdeadbeef));

}  // namespace
}  // namespace deepflow::protocols
