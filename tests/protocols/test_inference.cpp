// Cross-protocol inference properties: the registry must route every
// builder-produced payload to its own protocol — the one-time-per-connection
// inference (§3.3.1) is only sound if signatures never collide on real
// traffic.
#include <gtest/gtest.h>

#include "protocols/amqp.h"
#include "protocols/dns.h"
#include "protocols/dubbo.h"
#include "protocols/http1.h"
#include "protocols/http2.h"
#include "protocols/kafka.h"
#include "protocols/mqtt.h"
#include "protocols/mysql.h"
#include "protocols/parser.h"
#include "protocols/redis.h"

namespace deepflow::protocols {
namespace {

struct Sample {
  L7Protocol protocol;
  std::string name;
  std::string payload;
};

std::vector<Sample> all_samples() {
  return {
      {L7Protocol::kHttp1, "http1_req", build_http1_request("GET", "/x")},
      {L7Protocol::kHttp1, "http1_resp", build_http1_response(200)},
      {L7Protocol::kHttp1, "http1_err", build_http1_response(500)},
      {L7Protocol::kHttp2, "http2_req", build_http2_request(3, "GET", "/y")},
      {L7Protocol::kHttp2, "http2_resp", build_http2_response(3, 200)},
      {L7Protocol::kDns, "dns_query", build_dns_query(9, "svc.cluster")},
      {L7Protocol::kDns, "dns_resp", build_dns_response(9, "svc.cluster")},
      {L7Protocol::kRedis, "redis_cmd", build_redis_command({"GET", "k"})},
      {L7Protocol::kRedis, "redis_ok", build_redis_ok()},
      {L7Protocol::kRedis, "redis_err", build_redis_error("nope")},
      {L7Protocol::kMysql, "mysql_query", build_mysql_query("SELECT 1")},
      {L7Protocol::kMysql, "mysql_ok", build_mysql_ok()},
      {L7Protocol::kMysql, "mysql_err", build_mysql_error(1064, "bad")},
      {L7Protocol::kKafka, "kafka_req",
       build_kafka_request(KafkaApi::kFetch, 12, "c", "topic")},
      {L7Protocol::kKafka, "kafka_resp", build_kafka_response(12)},
      {L7Protocol::kMqtt, "mqtt_connect", build_mqtt_connect("dev-1")},
      {L7Protocol::kMqtt, "mqtt_publish", build_mqtt_publish("t/1", "body")},
      {L7Protocol::kMqtt, "mqtt_puback", build_mqtt_puback()},
      {L7Protocol::kDubbo, "dubbo_req", build_dubbo_request(1, "svc", "m")},
      {L7Protocol::kDubbo, "dubbo_resp", build_dubbo_response(1)},
      {L7Protocol::kAmqp, "amqp_header", build_amqp_protocol_header()},
      {L7Protocol::kAmqp, "amqp_publish", build_amqp_publish(1, "orders")},
      {L7Protocol::kAmqp, "amqp_ack", build_amqp_ack(1)},
      {L7Protocol::kAmqp, "amqp_close", build_amqp_close(1, 312, "NO_ROUTE")},
  };
}

class InferenceTest : public ::testing::TestWithParam<Sample> {};

TEST_P(InferenceTest, RegistryRoutesToOwnProtocol) {
  const ProtocolRegistry registry = ProtocolRegistry::with_builtin();
  const Sample& sample = GetParam();
  const ProtocolParser* parser = registry.infer(sample.payload);
  ASSERT_NE(parser, nullptr) << sample.name;
  EXPECT_EQ(parser->protocol(), sample.protocol) << sample.name;
}

TEST_P(InferenceTest, OwnParserAcceptsOwnPayload) {
  const ProtocolRegistry registry = ProtocolRegistry::with_builtin();
  const Sample& sample = GetParam();
  const ProtocolParser* parser = registry.parser_for(sample.protocol);
  ASSERT_NE(parser, nullptr);
  EXPECT_TRUE(parser->infer(sample.payload)) << sample.name;
  EXPECT_TRUE(parser->parse(sample.payload).has_value()) << sample.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBuilders, InferenceTest, ::testing::ValuesIn(all_samples()),
    [](const auto& info) { return info.param.name; });

TEST(Inference, CiphertextNeverMatches) {
  // TLS ciphertext (high-bit-set bytes) must not match any parser — that is
  // why kernel-side hooks alone cannot trace TLS flows.
  const ProtocolRegistry registry = ProtocolRegistry::with_builtin();
  std::string ciphertext(64, '\0');
  for (size_t i = 0; i < ciphertext.size(); ++i) {
    ciphertext[i] = static_cast<char>(0x80 | (i * 37 % 64));
  }
  EXPECT_EQ(registry.infer(ciphertext), nullptr);
}

TEST(Inference, EmptyAndTinyPayloads) {
  const ProtocolRegistry registry = ProtocolRegistry::with_builtin();
  EXPECT_EQ(registry.infer(""), nullptr);
  EXPECT_EQ(registry.infer("a"), nullptr);
  EXPECT_EQ(registry.infer("\r\n"), nullptr);
}

TEST(Inference, BuiltinCountAndLookup) {
  const ProtocolRegistry registry = ProtocolRegistry::with_builtin();
  EXPECT_EQ(registry.parser_count(), 9u);
  EXPECT_EQ(registry.parser_for(L7Protocol::kUnknown), nullptr);
  for (const L7Protocol proto :
       {L7Protocol::kHttp1, L7Protocol::kHttp2, L7Protocol::kDns,
        L7Protocol::kRedis, L7Protocol::kMysql, L7Protocol::kKafka,
        L7Protocol::kMqtt, L7Protocol::kDubbo, L7Protocol::kAmqp}) {
    ASSERT_NE(registry.parser_for(proto), nullptr);
    EXPECT_EQ(registry.parser_for(proto)->protocol(), proto);
  }
}

TEST(Inference, UserSuppliedParserExtendsRegistry) {
  // §3.3.1: "optional user-supplied protocol specifications".
  class CustomParser final : public ProtocolParser {
   public:
    L7Protocol protocol() const override { return L7Protocol::kUnknown; }
    SessionMatchMode match_mode() const override {
      return SessionMatchMode::kPipeline;
    }
    bool infer(std::string_view payload) const override {
      return payload.starts_with("CUSTOM/");
    }
    std::optional<ParsedMessage> parse(std::string_view) const override {
      ParsedMessage msg;
      msg.type = MessageType::kRequest;
      return msg;
    }
  };
  ProtocolRegistry registry = ProtocolRegistry::with_builtin();
  registry.register_parser(std::make_unique<CustomParser>());
  const ProtocolParser* parser = registry.infer("CUSTOM/1 hello");
  ASSERT_NE(parser, nullptr);
  EXPECT_EQ(parser->protocol(), L7Protocol::kUnknown);
}

TEST(Inference, TraceIdExtraction) {
  EXPECT_EQ(
      extract_trace_id("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"),
      "0af7651916cd43dd8448eb211c80319c");
  EXPECT_EQ(extract_trace_id(""), "");
  EXPECT_EQ(extract_trace_id("01-zzz"), "");
  EXPECT_EQ(extract_trace_id("00-tooshort-x-01"), "");
}

}  // namespace
}  // namespace deepflow::protocols
