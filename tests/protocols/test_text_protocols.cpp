#include <gtest/gtest.h>

#include "protocols/redis.h"

namespace deepflow::protocols {
namespace {

TEST(Redis, CommandRoundTrip) {
  RedisParser parser;
  const std::string payload = build_redis_command({"GET", "user:42"});
  ASSERT_TRUE(parser.infer(payload));
  const auto msg = parser.parse(payload);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MessageType::kRequest);
  EXPECT_EQ(msg->method, "GET");
  EXPECT_EQ(msg->endpoint, "user:42");
}

TEST(Redis, MultiArgumentCommand) {
  RedisParser parser;
  const auto msg =
      parser.parse(build_redis_command({"SET", "key", "value", "EX", "60"}));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->method, "SET");
  EXPECT_EQ(msg->endpoint, "key");
}

TEST(Redis, SimpleStringReply) {
  RedisParser parser;
  const auto msg = parser.parse(build_redis_ok());
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MessageType::kResponse);
  EXPECT_TRUE(msg->ok);
}

TEST(Redis, BulkReply) {
  RedisParser parser;
  const auto msg = parser.parse(build_redis_bulk("hello world"));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MessageType::kResponse);
  EXPECT_TRUE(msg->ok);
}

TEST(Redis, ErrorReply) {
  RedisParser parser;
  const auto msg = parser.parse(build_redis_error("wrong type"));
  ASSERT_TRUE(msg.has_value());
  EXPECT_FALSE(msg->ok);
  EXPECT_EQ(msg->status_code, 1u);
  EXPECT_NE(msg->endpoint.find("wrong type"), std::string::npos);
}

TEST(Redis, IntegerReply) {
  RedisParser parser;
  const auto msg = parser.parse(":1000\r\n");
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MessageType::kResponse);
  EXPECT_TRUE(msg->ok);
}

TEST(Redis, RejectsForeignPayloads) {
  RedisParser parser;
  EXPECT_FALSE(parser.infer("GET / HTTP/1.1\r\n"));
  EXPECT_FALSE(parser.infer("*x\r\n"));  // '*' must be followed by a digit
  EXPECT_FALSE(parser.infer("+no-crlf"));
  EXPECT_FALSE(parser.infer(""));
}

TEST(Redis, TruncatedBulkStillParses) {
  RedisParser parser;
  std::string payload = build_redis_command({"SET", std::string(500, 'k')});
  payload.resize(100);  // snapshot cut
  const auto msg = parser.parse(payload);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->method, "SET");
}

TEST(Redis, MalformedArrayRejected) {
  RedisParser parser;
  EXPECT_FALSE(parser.parse("*2\r\nnot-a-bulk\r\n").has_value());
}

}  // namespace
}  // namespace deepflow::protocols
