// Shared helpers for the storage suites: seeded random span generation
// (unicode names, extreme timestamps, random tags), a full-fidelity textual
// repr for byte-identity assertions, and scoped temp directories.
#pragma once

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <iterator>
#include <string>
#include <vector>

#include "agent/span.h"
#include "common/rand.h"
#include "storage/segment_format.h"

namespace deepflow::storage::testutil {

/// A span plus the sidecar state encode_segment consumes, with stable
/// storage so SegmentRowInput pointers stay valid.
struct OwnedRow {
  agent::Span span;
  std::string tag_blob;
  std::vector<agent::Tag> tags;
  u64 pseudo_key = 0;
};

inline std::string random_unicode_name(Rng& rng) {
  // Mix of ASCII, combining latin, CJK, emoji and embedded NULs is exactly
  // the hostile input a length-prefixed string column must survive.
  static const char* kPieces[] = {
      "svc", "frontend", "π", "naïve", "日本語", "кириллица", "🦀",
      "χάος", "a/b\\c", "\ttab", "", "zero\0byte", "𝒞𝒶𝓁𝓁",
  };
  std::string out;
  const size_t parts = rng.below(4);
  for (size_t i = 0; i < parts; ++i) {
    const size_t pick = rng.below(std::size(kPieces));
    if (pick == 11) {
      out.append("zero\0byte", 9);  // keep the embedded NUL
    } else {
      out += kPieces[pick];
    }
    if (i + 1 < parts) out += '-';
  }
  return out;
}

inline TimestampNs random_timestamp(Rng& rng) {
  switch (rng.below(6)) {
    case 0: return 0;
    case 1: return ~TimestampNs{0};
    case 2: return ~TimestampNs{0} - rng.below(1000);
    case 3: return rng.next();  // full 64-bit range
    default: return 1'700'000'000'000'000'000ULL + rng.below(100'000'000'000ULL);
  }
}

/// One fully randomized span. Every field the segment format stores is
/// exercised, including the hostile corners (unicode, NULs, extreme
/// timestamps, zero/invalid association keys).
inline OwnedRow random_row(u64 id, Rng& rng) {
  OwnedRow row;
  agent::Span& s = row.span;
  s.span_id = id;
  s.kind = static_cast<agent::SpanKind>(rng.below(4));
  s.systrace_id = rng.chance(0.7) ? rng.next() : kInvalidSystraceId;
  s.pseudo_thread_id = rng.chance(0.5) ? rng.next() : 0;
  if (rng.chance(0.4)) s.x_request_id = random_unicode_name(rng);
  if (rng.chance(0.3)) s.otel_trace_id = random_unicode_name(rng);
  s.req_tcp_seq = rng.chance(0.8) ? static_cast<TcpSeq>(rng.next()) : 0;
  s.resp_tcp_seq = rng.chance(0.6) ? static_cast<TcpSeq>(rng.next()) : 0;
  s.host = "node-" + std::to_string(rng.below(32));
  s.from_server_side = rng.chance(0.5);
  s.device_id = static_cast<u32>(rng.below(16));
  if (rng.chance(0.2)) s.device_name = "eth" + std::to_string(rng.below(4));
  s.pid = static_cast<Pid>(rng.below(100'000));
  s.tid = static_cast<Tid>(rng.below(200'000));
  s.start_ts = random_timestamp(rng);
  s.end_ts = rng.chance(0.8)
                 ? s.start_ts + rng.below(10'000'000'000ULL)
                 : random_timestamp(rng);  // end < start is legal input
  s.protocol = static_cast<protocols::L7Protocol>(rng.below(10));
  s.method = rng.chance(0.7) ? "GET" : random_unicode_name(rng);
  s.endpoint = "/api/" + random_unicode_name(rng);
  s.status_code = static_cast<u32>(rng.below(600));
  s.ok = rng.chance(0.9);
  s.incomplete = rng.chance(0.1);
  s.lost_placeholder = false;  // never set on stored spans
  s.tuple = FiveTuple{Ipv4{static_cast<u32>(rng.next())},
                      Ipv4{static_cast<u32>(rng.next())},
                      static_cast<u16>(rng.below(65536)),
                      static_cast<u16>(rng.below(65536)),
                      rng.chance(0.9) ? L4Proto::kTcp : L4Proto::kUdp};
  s.int_tags.vpc_id = static_cast<u32>(rng.below(8));
  s.int_tags.client_ip = static_cast<u32>(rng.next());
  s.int_tags.server_ip = static_cast<u32>(rng.next());
  s.parent_span_id = rng.chance(0.3) ? rng.next() : 0;
  const size_t tag_count = rng.below(6);
  for (size_t i = 0; i < tag_count; ++i) {
    row.tags.push_back(
        {random_unicode_name(rng) + std::to_string(rng.below(10)),
         random_unicode_name(rng)});
  }
  // A random self-contained blob stands in for the encoder output in
  // kEncoderBlob mode (the format stores it verbatim, so any bytes do).
  const size_t blob_len = rng.below(48);
  for (size_t i = 0; i < blob_len; ++i) {
    row.tag_blob.push_back(static_cast<char>(rng.below(256)));
  }
  row.pseudo_key = s.pseudo_thread_id != 0 ? rng.next() : 0;
  return row;
}

inline std::vector<SegmentRowInput> as_inputs(
    const std::vector<OwnedRow>& rows, TagColumnMode mode) {
  std::vector<SegmentRowInput> inputs;
  inputs.reserve(rows.size());
  for (const OwnedRow& r : rows) {
    SegmentRowInput in;
    in.span = &r.span;
    in.tag_blob = r.tag_blob;
    if (mode == TagColumnMode::kSegmentDict) in.tags = &r.tags;
    in.pseudo_key = r.pseudo_key;
    inputs.push_back(in);
  }
  return inputs;
}

/// Every stored field of a span, rendered losslessly (lengths prefix the
/// strings so embedded NULs and separators cannot alias).
inline std::string repr_span(const agent::Span& s) {
  std::string out;
  const auto str = [&out](const std::string& v) {
    out += std::to_string(v.size());
    out += ':';
    out += v;
    out += '|';
  };
  const auto num = [&out](u64 v) {
    out += std::to_string(v);
    out += '|';
  };
  num(s.span_id);
  num(static_cast<u64>(s.kind));
  num(s.systrace_id);
  num(s.pseudo_thread_id);
  str(s.x_request_id);
  str(s.otel_trace_id);
  num(s.req_tcp_seq);
  num(s.resp_tcp_seq);
  str(s.host);
  num(s.from_server_side ? 1 : 0);
  num(s.device_id);
  str(s.device_name);
  num(s.pid);
  num(s.tid);
  num(s.start_ts);
  num(s.end_ts);
  num(static_cast<u64>(s.protocol));
  str(s.method);
  str(s.endpoint);
  num(s.status_code);
  num(s.ok ? 1 : 0);
  num(s.incomplete ? 1 : 0);
  num(s.lost_placeholder ? 1 : 0);
  num(s.tuple.src_ip.addr);
  num(s.tuple.dst_ip.addr);
  num(s.tuple.src_port);
  num(s.tuple.dst_port);
  num(static_cast<u64>(s.tuple.proto));
  num(s.int_tags.vpc_id);
  num(s.int_tags.client_ip);
  num(s.int_tags.server_ip);
  num(s.parent_span_id);
  return out;
}

inline std::string repr_tags(const std::vector<agent::Tag>& tags) {
  std::string out;
  for (const agent::Tag& t : tags) {
    out += std::to_string(t.key.size()) + ':' + t.key + '=';
    out += std::to_string(t.value.size()) + ':' + t.value + ';';
  }
  return out;
}

/// Full-fidelity repr of what a segment must reproduce for one input row.
inline std::string repr_input(const OwnedRow& row, TagColumnMode mode) {
  std::string out = repr_span(row.span);
  out += "pk=" + std::to_string(row.pseudo_key) + '|';
  if (mode == TagColumnMode::kSegmentDict) {
    out += "tags{" + repr_tags(row.tags) + '}';
  } else {
    out += "blob=" + std::to_string(row.tag_blob.size()) + ':' + row.tag_blob;
  }
  return out;
}

inline std::string repr_decoded(const SegmentRow& row, TagColumnMode mode) {
  std::string out = repr_span(row.span);
  out += "pk=" + std::to_string(row.pseudo_key) + '|';
  if (mode == TagColumnMode::kSegmentDict) {
    out += "tags{" + repr_tags(row.tags) + '}';
  } else {
    out += "blob=" + std::to_string(row.tag_blob.size()) + ':' + row.tag_blob;
  }
  return out;
}

/// A unique scratch directory removed when the object dies.
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& stem) {
    static std::atomic<u64> counter{0};
    path_ = std::filesystem::temp_directory_path() /
            (stem + "-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter.fetch_add(1)));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScopedTempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  const std::filesystem::path& path() const { return path_; }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

}  // namespace deepflow::storage::testutil
