// The storage tier wired into the span store: inline and background flush,
// warm-tier queries after restart, Bloom segment pruning, compaction of both
// segment classes, and the concurrent ingest+flush+query interleaving the
// TSan gate runs.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "server/span_store.h"
#include "storage/segment_store.h"
#include "tests/storage/storage_test_util.h"

namespace deepflow::server {
namespace {

using storage::testutil::ScopedTempDir;

agent::Span tiered_span(u64 id) {
  agent::Span s;
  s.span_id = id;
  s.systrace_id = id / 8 + 1;
  s.x_request_id = "xrid-" + std::to_string(id);
  s.req_tcp_seq = static_cast<TcpSeq>(50'000 + id);
  s.otel_trace_id = id % 2 == 0 ? "otel-" + std::to_string(id / 2) : "";
  s.host = "node-" + std::to_string(id % 4);
  s.pid = static_cast<Pid>(100 + id % 8);
  s.tid = static_cast<Tid>(id);
  s.start_ts = 1'000'000 + id * 1'000;
  s.end_ts = s.start_ts + 777;
  s.protocol = protocols::L7Protocol::kHttp1;
  s.method = "GET";
  s.endpoint = "/api/" + std::to_string(id % 3);
  s.status_code = 200;
  return s;
}

storage::StorageConfig tier_config(const ScopedTempDir& dir, u32 spans) {
  storage::StorageConfig config;
  config.enabled = true;
  config.dir = dir.str();
  config.segment_spans = spans;
  return config;
}

TEST(SegmentStoreTier, InlineSealAtThreshold) {
  ScopedTempDir dir("df-tier-seal");
  netsim::ResourceRegistry registry;
  SpanStore store(EncoderKind::kSmart, &registry, 1, tier_config(dir, 8));
  for (u64 id = 1; id <= 7; ++id) store.insert(tiered_span(id));
  EXPECT_EQ(store.storage_telemetry().flush_batches, 0u);
  store.insert(tiered_span(8));  // the 8th insert seals the batch inline
  storage::StorageTelemetry t = store.storage_telemetry();
  EXPECT_EQ(t.flush_batches, 1u);
  EXPECT_EQ(t.flushed_spans, 8u);
  EXPECT_EQ(t.segments_written, 1u);
  EXPECT_GT(t.disk_bytes, 0u);
  // Hot rows still answer every query — flushing is pure durability.
  EXPECT_EQ(store.row_count(), 8u);
  for (u64 id = 1; id <= 8; ++id) EXPECT_NE(store.row(id), nullptr);
}

TEST(SegmentStoreTier, FlushStorageForcesShortSegment) {
  ScopedTempDir dir("df-tier-force");
  netsim::ResourceRegistry registry;
  SpanStore store(EncoderKind::kSmart, &registry, 1, tier_config(dir, 1024));
  for (u64 id = 1; id <= 5; ++id) store.insert(tiered_span(id));
  EXPECT_EQ(store.storage_telemetry().flushed_spans, 0u);
  EXPECT_EQ(store.flush_storage(), 5u);
  EXPECT_EQ(store.storage_telemetry().flushed_spans, 5u);
  EXPECT_EQ(store.flush_storage(), 0u);  // nothing left
}

TEST(SegmentStoreTier, RestartServesWarmQueriesThroughEveryPath) {
  ScopedTempDir dir("df-tier-restart");
  netsim::ResourceRegistry registry;
  const auto config = tier_config(dir, 16);
  {
    SpanStore store(EncoderKind::kSmart, &registry, 1, config);
    for (u64 id = 1; id <= 40; ++id) store.insert(tiered_span(id));
  }  // flush_on_close seals the tail
  SpanStore revived(EncoderKind::kSmart, &registry, 1, config);
  ASSERT_EQ(revived.row_count(), 40u);
  ASSERT_EQ(revived.recovered_ids().size(), 40u);

  // Point lookup + materialize.
  const SpanRow* row = revived.row(17);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->shard, SpanStore::kWarmShard);
  EXPECT_EQ(storage::testutil::repr_span(row->span),
            storage::testutil::repr_span(tiered_span(17)));
  EXPECT_EQ(revived.materialize(17).span_id, 17u);

  // Search by every association attribute.
  SearchFilter by_systrace;
  by_systrace.systrace_ids.insert(tiered_span(17).systrace_id);
  EXPECT_EQ(revived.search(by_systrace).size(), 8u);  // ids 16..23 share it
  SearchFilter by_xrid;
  by_xrid.x_request_ids.insert("xrid-9");
  EXPECT_EQ(revived.search(by_xrid), std::vector<u64>{9});
  SearchFilter by_seq;
  by_seq.tcp_seqs.insert(50'021);
  EXPECT_EQ(revived.search(by_seq), std::vector<u64>{21});
  SearchFilter by_otel;
  by_otel.otel_trace_ids.insert("otel-5");
  EXPECT_EQ(revived.search(by_otel), std::vector<u64>{10});

  // Time-range listing merges the warm tier.
  const auto listed = revived.span_list(0, ~TimestampNs{0});
  EXPECT_EQ(listed.size(), 40u);
  EXPECT_EQ(listed.front(), 1u);
  EXPECT_EQ(listed.back(), 40u);

  // Batched materialization.
  const auto many = revived.materialize_many({3, 999'999, 40});
  ASSERT_EQ(many.size(), 3u);
  EXPECT_EQ(many[0].span_id, 3u);
  EXPECT_EQ(many[1].span_id, 0u);  // unknown id -> empty span
  EXPECT_EQ(many[2].span_id, 40u);
  EXPECT_GT(revived.storage_telemetry().warm_rows_loaded, 0u);
}

TEST(SegmentStoreTier, HotAndWarmTiersMergeInOneQuery) {
  ScopedTempDir dir("df-tier-merge");
  netsim::ResourceRegistry registry;
  const auto config = tier_config(dir, 8);
  {
    SpanStore store(EncoderKind::kSmart, &registry, 1, config);
    for (u64 id = 1; id <= 8; ++id) store.insert(tiered_span(id));
  }
  SpanStore revived(EncoderKind::kSmart, &registry, 1, config);
  // New hot spans share systrace id 1 with warm ids 1..7.
  agent::Span fresh = tiered_span(100);
  fresh.systrace_id = 1;
  revived.insert(fresh);
  SearchFilter filter;
  filter.systrace_ids.insert(1);
  const auto hits = revived.search(filter);
  EXPECT_EQ(hits.size(), 8u);  // warm 1..7 plus hot 100
  EXPECT_TRUE(std::find(hits.begin(), hits.end(), 100u) != hits.end());
  EXPECT_EQ(revived.span_list(0, ~TimestampNs{0}).size(), 9u);
  EXPECT_EQ(revived.row_count(), 9u);
}

TEST(SegmentStoreTier, BloomPruningSkipsForeignSegments) {
  ScopedTempDir dir("df-tier-bloom");
  netsim::ResourceRegistry registry;
  const auto config = tier_config(dir, 16);
  {
    SpanStore store(EncoderKind::kSmart, &registry, 1, config);
    // Two sealed segments with disjoint key populations.
    for (u64 id = 1; id <= 32; ++id) store.insert(tiered_span(id));
  }
  SpanStore revived(EncoderKind::kSmart, &registry, 1, config);
  ASSERT_EQ(revived.storage_telemetry().recovered_segments, 2u);
  SearchFilter filter;
  filter.x_request_ids.insert("xrid-2");  // lives in the first segment only
  EXPECT_EQ(revived.search(filter), std::vector<u64>{2});
  const storage::StorageTelemetry t = revived.storage_telemetry();
  EXPECT_GT(t.warm_searches, 0u);
  EXPECT_GE(t.bloom_segment_skips, 1u);  // the other segment never decoded
}

TEST(SegmentStoreTier, WarmIdCollisionsRemapNewInserts) {
  ScopedTempDir dir("df-tier-collide");
  netsim::ResourceRegistry registry;
  const auto config = tier_config(dir, 8);
  {
    SpanStore store(EncoderKind::kSmart, &registry, 1, config);
    for (u64 id = 1; id <= 8; ++id) store.insert(tiered_span(id));
  }
  SpanStore revived(EncoderKind::kSmart, &registry, 1, config);
  agent::Span clash = tiered_span(5);
  clash.endpoint = "/fresh";
  const u64 assigned = revived.insert(std::move(clash));
  EXPECT_NE(assigned, 5u);  // id 5 belongs to the recovered span
  ASSERT_NE(revived.row(assigned), nullptr);
  EXPECT_EQ(revived.row(assigned)->span.endpoint, "/fresh");
  ASSERT_NE(revived.row(5), nullptr);
  EXPECT_EQ(revived.row(5)->span.endpoint, tiered_span(5).endpoint);
  EXPECT_EQ(revived.row_count(), 9u);
}

TEST(SegmentStoreTier, CompactionMergesSmallServingSegments) {
  ScopedTempDir dir("df-tier-compact");
  netsim::ResourceRegistry registry;
  const auto config = tier_config(dir, 8);  // 8-span segments are "small"
  {
    SpanStore store(EncoderKind::kSmart, &registry, 1, config);
    for (u64 id = 1; id <= 48; ++id) store.insert(tiered_span(id));
  }
  SpanStore revived(EncoderKind::kSmart, &registry, 1, config);
  ASSERT_EQ(revived.storage_telemetry().recovered_segments, 6u);
  revived.compact_storage();
  storage::StorageTelemetry t = revived.storage_telemetry();
  EXPECT_GE(t.compactions, 1u);
  EXPECT_GE(t.compacted_segments, 6u);

  // Everything still answers, and a further restart serves the merged file.
  EXPECT_EQ(revived.row_count(), 48u);
  for (u64 id = 1; id <= 48; ++id) {
    const SpanRow* row = revived.row(id);
    ASSERT_NE(row, nullptr) << id;
    EXPECT_EQ(storage::testutil::repr_span(row->span),
              storage::testutil::repr_span(tiered_span(id)));
  }
  SpanStore again(EncoderKind::kSmart, &registry, 1, config);
  EXPECT_EQ(again.row_count(), 48u);
  EXPECT_EQ(again.storage_telemetry().recovered_segments, 1u);
}

TEST(SegmentStoreTier, CompactionMergesHotBackedSegments) {
  ScopedTempDir dir("df-tier-compact-hot");
  netsim::ResourceRegistry registry;
  const auto config = tier_config(dir, 8);
  SpanStore store(EncoderKind::kSmart, &registry, 1, config);
  for (u64 id = 1; id <= 48; ++id) store.insert(tiered_span(id));
  ASSERT_EQ(store.storage_telemetry().segments_written, 6u);
  store.compact_storage();
  EXPECT_GE(store.storage_telemetry().compactions, 1u);
  // The merged hot-backed file must carry the full content into the next
  // lifetime.
  store.flush_storage();
  SpanStore revived(EncoderKind::kSmart, &registry, 1, config);
  EXPECT_EQ(revived.row_count(), 48u);
  for (u64 id = 1; id <= 48; ++id) {
    ASSERT_NE(revived.row(id), nullptr) << id;
  }
}

TEST(SegmentStoreTier, BackgroundFlushThreadSealsWithoutInserts) {
  ScopedTempDir dir("df-tier-bg");
  netsim::ResourceRegistry registry;
  auto config = tier_config(dir, 8);
  config.background_flush = true;
  config.flush_interval_ms = 2;
  SpanStore store(EncoderKind::kSmart, &registry, 1, config);
  for (u64 id = 1; id <= 24; ++id) store.insert(tiered_span(id));
  // The background thread owns sealing; wait for it to catch up.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (store.storage_telemetry().flushed_spans < 24 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(store.storage_telemetry().flushed_spans, 24u);
  EXPECT_EQ(store.row_count(), 24u);
}

TEST(SegmentStoreTier, ConcurrentIngestQueryFlushCompact) {
  // The TSan target: writers seal segments inline while readers walk every
  // query path and a third thread forces flushes and compactions.
  ScopedTempDir dir("df-tier-race");
  netsim::ResourceRegistry registry;
  auto config = tier_config(dir, 64);
  config.background_flush = true;
  config.flush_interval_ms = 1;
  constexpr size_t kWriters = 4;
  constexpr u64 kPerWriter = 1'500;
  {
    SpanStore store(EncoderKind::kSmart, &registry, 4, config);
    std::vector<std::thread> threads;
    for (size_t w = 0; w < kWriters; ++w) {
      threads.emplace_back([&store, w] {
        for (u64 i = 0; i < kPerWriter; ++i) {
          store.insert(tiered_span((w + 1) * 1'000'000 + i + 1));
        }
      });
    }
    std::atomic<bool> stop{false};
    threads.emplace_back([&store, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        SearchFilter filter;
        filter.systrace_ids.insert(1'000'000 / 8 + 1);
        store.search(filter);
        store.span_list(0, ~TimestampNs{0}, 64);
        store.row(1'000'001);
        store.row_count();
        store.storage_telemetry();
      }
    });
    threads.emplace_back([&store, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        store.flush_sealed();
        store.compact_storage();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    for (size_t w = 0; w < kWriters; ++w) threads[w].join();
    stop.store(true, std::memory_order_relaxed);
    threads[kWriters].join();
    threads[kWriters + 1].join();
    EXPECT_EQ(store.row_count(), kWriters * kPerWriter);
  }  // destructor joins the background thread and flushes the tail
  SpanStore revived(EncoderKind::kSmart, &registry, 4, config);
  EXPECT_EQ(revived.row_count(), kWriters * kPerWriter);
}

TEST(SegmentStoreTier, StorageOffIsExactPassThrough) {
  netsim::ResourceRegistry registry;
  SpanStore store(EncoderKind::kSmart, &registry);
  EXPECT_FALSE(store.storage_enabled());
  EXPECT_EQ(store.flush_storage(), 0u);
  EXPECT_EQ(store.flush_sealed(), 0u);
  store.compact_storage();  // no-op, must not crash
  const storage::StorageTelemetry t = store.storage_telemetry();
  EXPECT_EQ(t.segments_written, 0u);
  EXPECT_EQ(t.flushed_spans, 0u);
  EXPECT_TRUE(store.recovered_ids().empty());
  EXPECT_TRUE(store.recovered_spans().empty());
}

}  // namespace
}  // namespace deepflow::server
