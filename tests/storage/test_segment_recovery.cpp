// Crash-recovery coverage: a segment truncated at EVERY byte boundary must
// be detected at recovery, dropped without serving wrong data, and must
// never take previously sealed segments down with it.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "server/span_store.h"
#include "storage/segment_store.h"
#include "tests/storage/storage_test_util.h"

namespace deepflow::storage {
namespace {

namespace fs = std::filesystem;
using testutil::OwnedRow;
using testutil::ScopedTempDir;

constexpr u8 kEncoderKind = 2;

void write_file(const fs::path& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::vector<OwnedRow> random_rows(size_t count, u64 seed, u64 id_base) {
  Rng rng(seed);
  std::vector<OwnedRow> rows;
  for (size_t i = 0; i < count; ++i) {
    rows.push_back(testutil::random_row(id_base + i + 1, rng));
  }
  return rows;
}

std::string encode(const std::vector<OwnedRow>& rows) {
  return encode_segment(testutil::as_inputs(rows, TagColumnMode::kEncoderBlob),
                        kEncoderKind, TagColumnMode::kEncoderBlob);
}

/// Sorted repr multiset of every serving row in `store`.
std::multiset<std::string> serving_reprs(const SegmentStore& store) {
  std::multiset<std::string> out;
  for (const SegmentRow& row : store.serving_rows()) {
    out.insert(testutil::repr_decoded(row, TagColumnMode::kEncoderBlob));
  }
  return out;
}

std::multiset<std::string> input_reprs(const std::vector<OwnedRow>& rows) {
  std::multiset<std::string> out;
  for (const OwnedRow& r : rows) {
    out.insert(testutil::repr_input(r, TagColumnMode::kEncoderBlob));
  }
  return out;
}

StorageConfig config_for(const ScopedTempDir& dir) {
  StorageConfig config;
  config.enabled = true;
  config.dir = dir.str();
  return config;
}

TEST(SegmentRecovery, TornTailSweepEveryByteBoundary) {
  // One sealed (intact) segment plus a victim truncated at every possible
  // length. Every truncation point must be detected — classified torn (the
  // structural signature) or, for the rare prefix that still ends in
  // plausible trailer bytes, corrupt — and the sealed segment must come
  // back byte-identically every single time.
  const std::vector<OwnedRow> sealed = random_rows(24, 101, 1'000);
  const std::vector<OwnedRow> victim = random_rows(12, 102, 2'000);
  const std::string sealed_image = encode(sealed);
  const std::string victim_image = encode(victim);
  const auto expected = input_reprs(sealed);

  ScopedTempDir dir("df-recovery-sweep");
  const fs::path sealed_path = dir.path() / "seg-00000000.seg";
  const fs::path victim_path = dir.path() / "seg-00000001.seg";
  write_file(sealed_path, sealed_image);

  size_t torn_total = 0;
  for (size_t len = 0; len < victim_image.size(); ++len) {
    write_file(victim_path, std::string_view(victim_image).substr(0, len));
    SegmentStore store(config_for(dir));
    store.recover();
    const StorageTelemetry t = store.telemetry();
    ASSERT_EQ(t.torn_segments + t.quarantined_segments, 1u)
        << "truncated at byte " << len;
    ASSERT_EQ(t.recovered_segments, 1u) << "truncated at byte " << len;
    ASSERT_EQ(t.recovered_spans, sealed.size()) << "truncated at byte " << len;
    ASSERT_EQ(store.serving_span_count(), sealed.size())
        << "truncated at byte " << len;
    ASSERT_EQ(serving_reprs(store), expected) << "truncated at byte " << len;
    // The damaged file was renamed out of the segment namespace.
    ASSERT_FALSE(fs::exists(victim_path)) << "truncated at byte " << len;
    torn_total += t.torn_segments;
    // Clean up rename leftovers so the next iteration starts fresh.
    for (const char* suffix : {".torn", ".quarantined"}) {
      std::error_code ec;
      fs::remove(fs::path(victim_path.string() + suffix), ec);
    }
  }
  // The overwhelming majority of truncations cut the trailer and classify
  // as torn (a handful may land on bytes that still parse structurally and
  // get caught by CRC instead).
  EXPECT_GT(torn_total, victim_image.size() / 2);

  // The untruncated file recovers whole.
  write_file(victim_path, victim_image);
  SegmentStore store(config_for(dir));
  store.recover();
  EXPECT_EQ(store.telemetry().torn_segments, 0u);
  EXPECT_EQ(store.serving_span_count(), sealed.size() + victim.size());
}

TEST(SegmentRecovery, TornFileStaysDroppedOnSubsequentRecoveries) {
  const std::vector<OwnedRow> sealed = random_rows(16, 7, 100);
  const std::string image = encode(sealed);
  ScopedTempDir dir("df-recovery-rename");
  write_file(dir.path() / "seg-00000000.seg", image);
  write_file(dir.path() / "seg-00000001.seg",
             std::string_view(image).substr(0, image.size() / 2));
  {
    SegmentStore store(config_for(dir));
    store.recover();
    EXPECT_EQ(store.telemetry().torn_segments +
                  store.telemetry().quarantined_segments,
              1u);
    EXPECT_EQ(store.serving_span_count(), sealed.size());
  }
  // Second lifetime: the renamed file is out of the namespace — recovery is
  // clean and serves the same rows.
  SegmentStore store(config_for(dir));
  store.recover();
  EXPECT_EQ(store.telemetry().torn_segments, 0u);
  EXPECT_EQ(store.telemetry().quarantined_segments, 0u);
  EXPECT_EQ(store.serving_span_count(), sealed.size());
  EXPECT_EQ(serving_reprs(store), input_reprs(sealed));
}

TEST(SegmentRecovery, LeftoverTmpAndForeignFilesAreIgnored) {
  const std::vector<OwnedRow> sealed = random_rows(8, 9, 10);
  ScopedTempDir dir("df-recovery-tmp");
  write_file(dir.path() / "seg-00000000.seg", encode(sealed));
  // A crash between write and rename leaves a .tmp; unrelated files may
  // also share the directory. Neither is a segment.
  write_file(dir.path() / "seg-00000001.seg.tmp", "partial garbage");
  write_file(dir.path() / "README", "not a segment");
  SegmentStore store(config_for(dir));
  store.recover();
  const StorageTelemetry t = store.telemetry();
  EXPECT_EQ(t.recovered_segments, 1u);
  EXPECT_EQ(t.torn_segments, 0u);
  EXPECT_EQ(t.quarantined_segments, 0u);
  EXPECT_EQ(store.serving_span_count(), sealed.size());
}

TEST(SegmentRecovery, EmptyDirectoryRecoversToEmptyStore) {
  ScopedTempDir dir("df-recovery-empty");
  SegmentStore store(config_for(dir));
  store.recover();
  EXPECT_EQ(store.serving_span_count(), 0u);
  EXPECT_EQ(store.segment_count(), 0u);
  EXPECT_EQ(store.telemetry().recovered_segments, 0u);
}

// ---- SpanStore-level crash simulation. ------------------------------------

agent::Span store_span(u64 id, u64 seed) {
  Rng rng(seed);
  agent::Span s;
  s.span_id = id;
  s.systrace_id = id / 4 + 1;
  s.x_request_id = "xrid-" + std::to_string(id % 7);
  s.req_tcp_seq = static_cast<TcpSeq>(1000 + id);
  s.host = "node-" + std::to_string(id % 3);
  s.pid = 100;
  s.tid = static_cast<Tid>(id);
  s.start_ts = 1'000'000 + id * 1'000;
  s.end_ts = s.start_ts + 500 + rng.below(1'000);
  s.protocol = protocols::L7Protocol::kHttp1;
  s.method = "GET";
  s.endpoint = "/api/" + std::to_string(id % 5);
  s.status_code = 200;
  return s;
}

TEST(SegmentRecovery, SpanStoreCrashLosesOnlyTheUnflushedWindow) {
  ScopedTempDir dir("df-recovery-spanstore");
  netsim::ResourceRegistry registry;
  storage::StorageConfig config;
  config.enabled = true;
  config.dir = dir.str();
  config.segment_spans = 32;
  config.flush_on_close = false;  // crash simulation: no shutdown flush
  std::vector<std::string> flushed_reprs;
  {
    server::SpanStore store(server::EncoderKind::kSmart, &registry, 1, config);
    for (u64 id = 1; id <= 100; ++id) store.insert(store_span(id, id));
    // 3 sealed batches of 32 flushed inline; 4 spans still unflushed.
    EXPECT_EQ(store.storage_telemetry().flushed_spans, 96u);
    for (u64 id = 1; id <= 96; ++id) {
      flushed_reprs.push_back(testutil::repr_span(store.row(id)->span));
    }
  }  // "crash": destructor skips the final flush

  server::SpanStore revived(server::EncoderKind::kSmart, &registry, 1, config);
  EXPECT_EQ(revived.storage_telemetry().recovered_spans, 96u);
  EXPECT_EQ(revived.row_count(), 96u);
  // Every sealed span comes back byte-identically; the unflushed window
  // (ids 97..100) is the bounded loss.
  for (u64 id = 1; id <= 96; ++id) {
    const server::SpanRow* row = revived.row(id);
    ASSERT_NE(row, nullptr) << "id " << id;
    EXPECT_EQ(testutil::repr_span(row->span), flushed_reprs[id - 1]);
  }
  EXPECT_EQ(revived.row(97), nullptr);
}

TEST(SegmentRecovery, SpanStoreSurvivesTornSegmentOnRestart) {
  ScopedTempDir dir("df-recovery-spanstore-torn");
  netsim::ResourceRegistry registry;
  storage::StorageConfig config;
  config.enabled = true;
  config.dir = dir.str();
  config.segment_spans = 16;
  {
    server::SpanStore store(server::EncoderKind::kSmart, &registry, 1, config);
    for (u64 id = 1; id <= 48; ++id) store.insert(store_span(id, id));
  }  // flush_on_close writes the tail
  // Tear the newest segment file in half (highest sequence number).
  fs::path newest;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("seg-") && name.ends_with(".seg") &&
        (newest.empty() || name > newest.filename().string())) {
      newest = entry.path();
    }
  }
  ASSERT_FALSE(newest.empty());
  std::string bytes;
  {
    std::ifstream in(newest, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  write_file(newest, std::string_view(bytes).substr(0, bytes.size() / 3));

  server::SpanStore revived(server::EncoderKind::kSmart, &registry, 1, config);
  const storage::StorageTelemetry t = revived.storage_telemetry();
  EXPECT_EQ(t.torn_segments + t.quarantined_segments, 1u);
  EXPECT_GT(t.recovered_spans, 0u);
  EXPECT_LT(t.recovered_spans, 48u);
  // Everything in the surviving segments is intact and queryable.
  EXPECT_EQ(revived.row_count(), t.recovered_spans);
  size_t found = 0;
  for (u64 id = 1; id <= 48; ++id) {
    const server::SpanRow* row = revived.row(id);
    if (row == nullptr) continue;
    ++found;
    EXPECT_EQ(testutil::repr_span(row->span),
              testutil::repr_span(store_span(id, id)));
  }
  EXPECT_EQ(found, t.recovered_spans);
}

}  // namespace
}  // namespace deepflow::storage
