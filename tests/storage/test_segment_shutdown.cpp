// Shutdown racing the background flush thread: repeatedly construct a
// store with an aggressive flush interval, insert while the flusher runs,
// and destroy it mid-flight. Pinned properties: the teardown never tears a
// segment, never leaks (ASan) and never races (TSan — the suite name
// matches the sanitizer-gate regexes in scripts/check.sh), and a recovery
// over the directory afterwards is clean: every flushed span decodes,
// nothing is quarantined.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "server/span_store.h"
#include "storage/segment_store.h"
#include "tests/storage/storage_test_util.h"

namespace deepflow::server {
namespace {

using storage::testutil::ScopedTempDir;

agent::Span quick_span(u64 id) {
  agent::Span s;
  s.span_id = id;
  s.host = "node-" + std::to_string(id % 3);
  s.start_ts = 1'000'000 + id * 1'000;
  s.end_ts = s.start_ts + 500;
  s.endpoint = "/api";
  return s;
}

TEST(SegmentStoreTierShutdown, CloseRacingBackgroundFlushNeverTearsASegment) {
  ScopedTempDir dir("df-tier-shutdown-race");
  storage::StorageConfig config;
  config.enabled = true;
  config.dir = dir.str();
  config.segment_spans = 16;
  config.background_flush = true;
  config.flush_interval_ms = 1;  // the flusher fires constantly
  config.flush_on_close = false;  // sealed batches only: the racy path

  u64 next_id = 1;
  for (int round = 0; round < 20; ++round) {
    netsim::ResourceRegistry registry;
    SpanStore store(EncoderKind::kSmart, &registry, 2, config);
    for (int i = 0; i < 40; ++i) store.insert(quick_span(next_id++));
    if (round % 3 == 0) {
      // Give the flusher a chance to be mid-write when the dtor runs.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    // Destructor joins the flush thread here, possibly mid-batch.
  }

  // Whatever made it to disk is wholly valid: recovery finds no torn
  // files, quarantines nothing, and decodes every recovered row.
  netsim::ResourceRegistry registry;
  storage::StorageConfig verify = config;
  verify.background_flush = false;
  SpanStore recovered(EncoderKind::kSmart, &registry, 2, verify);
  const storage::StorageTelemetry t = recovered.storage_telemetry();
  EXPECT_EQ(t.torn_segments, 0u);
  EXPECT_EQ(t.quarantined_segments, 0u);
  EXPECT_EQ(t.decode_failures, 0u);
  EXPECT_EQ(t.recovered_spans,
            static_cast<u64>(recovered.recovered_spans().size()));
  for (const agent::Span& span : recovered.recovered_spans()) {
    EXPECT_NE(recovered.row(span.span_id), nullptr);
  }
}

TEST(SegmentStoreTierShutdown, FlushOnCloseRacingBackgroundFlushLosesNothing) {
  ScopedTempDir dir("df-tier-shutdown-flush");
  storage::StorageConfig config;
  config.enabled = true;
  config.dir = dir.str();
  config.segment_spans = 8;
  config.background_flush = true;
  config.flush_interval_ms = 1;
  config.flush_on_close = true;  // close drains the tail batch too

  const u64 kSpans = 200;
  {
    netsim::ResourceRegistry registry;
    SpanStore store(EncoderKind::kSmart, &registry, 2, config);
    for (u64 id = 1; id <= kSpans; ++id) store.insert(quick_span(id));
  }

  netsim::ResourceRegistry registry;
  storage::StorageConfig verify = config;
  verify.background_flush = false;
  SpanStore recovered(EncoderKind::kSmart, &registry, 2, verify);
  const storage::StorageTelemetry t = recovered.storage_telemetry();
  EXPECT_EQ(t.torn_segments, 0u);
  EXPECT_EQ(t.quarantined_segments, 0u);
  // flush_on_close + a clean join: every span is on disk exactly once.
  EXPECT_EQ(t.recovered_spans, kSpans);
  EXPECT_EQ(recovered.row_count(), kSpans);
}

}  // namespace
}  // namespace deepflow::server
