// Property/fuzz coverage of the columnar segment codec: seeded randomized
// round-trips (unicode names, embedded NULs, extreme timestamps), edge
// segments (empty, single span), Bloom-filter soundness and the scan paths.
#include "storage/segment_format.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "common/hash.h"
#include "tests/storage/storage_test_util.h"

namespace deepflow::storage {
namespace {

using testutil::OwnedRow;
using testutil::ScopedTempDir;

constexpr u8 kEncoderKind = 2;  // opaque to the format; round-tripped only

std::unique_ptr<Segment> must_open(const std::string& image) {
  std::unique_ptr<Segment> segment;
  const SegmentOpenStatus status = Segment::open(image, &segment);
  EXPECT_EQ(status, SegmentOpenStatus::kOk)
      << segment_open_status_name(status);
  return segment;
}

/// Encode `rows`, open the image, decode everything and compare the repr of
/// every row against its input, id for id.
void expect_round_trip(const std::vector<OwnedRow>& rows, TagColumnMode mode) {
  const std::string image =
      encode_segment(testutil::as_inputs(rows, mode), kEncoderKind, mode);
  const auto segment = must_open(image);
  ASSERT_NE(segment, nullptr);
  ASSERT_EQ(segment->span_count(), rows.size());
  EXPECT_EQ(segment->encoder_kind(), kEncoderKind);
  EXPECT_EQ(segment->tag_mode(), mode);

  const auto decoded = segment->all_rows();
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), rows.size());

  // The segment sorts by span id; compare against the inputs in that order.
  std::vector<const OwnedRow*> sorted;
  for (const OwnedRow& r : rows) sorted.push_back(&r);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const OwnedRow* a, const OwnedRow* b) {
                     return a->span.span_id < b->span.span_id;
                   });
  for (size_t i = 0; i < sorted.size(); ++i) {
    ASSERT_EQ(testutil::repr_decoded((*decoded)[i], mode),
              testutil::repr_input(*sorted[i], mode))
        << "row " << i << " (span id " << sorted[i]->span.span_id << ")";
  }
}

std::vector<OwnedRow> random_rows(size_t count, u64 seed) {
  Rng rng(seed);
  std::vector<OwnedRow> rows;
  rows.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // Unique but non-contiguous, non-sorted ids.
    rows.push_back(testutil::random_row(mix64(seed + i * 2 + 1), rng));
  }
  return rows;
}

TEST(SegmentFormat, EmptySegmentRoundTrips) {
  expect_round_trip({}, TagColumnMode::kEncoderBlob);
  expect_round_trip({}, TagColumnMode::kSegmentDict);
}

TEST(SegmentFormat, SingleSpanRoundTrips) {
  expect_round_trip(random_rows(1, 7), TagColumnMode::kEncoderBlob);
  expect_round_trip(random_rows(1, 8), TagColumnMode::kSegmentDict);
}

TEST(SegmentFormat, FuzzRoundTripTenThousandSpans) {
  // The headline property test: 10k fully randomized spans — random tags,
  // unicode names, extreme timestamps — through encode -> open -> decode
  // with canonical byte-identity on every field.
  expect_round_trip(random_rows(10'000, 0xdf5e6), TagColumnMode::kEncoderBlob);
}

TEST(SegmentFormat, FuzzRoundTripSegmentDictTags) {
  // Same property for the re-encoded tag-dictionary mode (low-cardinality
  // encoder rows, whose in-memory blobs cannot survive a restart).
  expect_round_trip(random_rows(4'000, 0xd1c7), TagColumnMode::kSegmentDict);
}

TEST(SegmentFormat, ExtremeTimestampsRoundTripExactly) {
  Rng rng(3);
  std::vector<OwnedRow> rows;
  const TimestampNs kMax = ~TimestampNs{0};
  const TimestampNs cases[][2] = {
      {0, 0},        {0, kMax},          {kMax, 0},  // end < start: kept as-is
      {kMax, kMax},  {1, kMax - 1},      {kMax / 2, kMax / 2 + 1},
      {kMax - 1, kMax},
  };
  u64 id = 1;
  for (const auto& c : cases) {
    OwnedRow row = testutil::random_row(id++, rng);
    row.span.start_ts = c[0];
    row.span.end_ts = c[1];
    rows.push_back(std::move(row));
  }
  expect_round_trip(rows, TagColumnMode::kEncoderBlob);
}

TEST(SegmentFormat, InputOrderDoesNotChangeTheImage) {
  // Rows are sorted by span id internally, so any permutation of the same
  // batch must serialize to byte-identical segment files.
  const std::vector<OwnedRow> rows = random_rows(257, 0xabc);
  const std::string baseline = encode_segment(
      testutil::as_inputs(rows, TagColumnMode::kEncoderBlob), kEncoderKind,
      TagColumnMode::kEncoderBlob);
  std::vector<const OwnedRow*> order;
  for (const OwnedRow& r : rows) order.push_back(&r);
  std::mt19937_64 shuffler(99);
  for (int round = 0; round < 3; ++round) {
    std::shuffle(order.begin(), order.end(), shuffler);
    std::vector<OwnedRow> permuted;
    for (const OwnedRow* r : order) permuted.push_back(*r);
    const std::string image = encode_segment(
        testutil::as_inputs(permuted, TagColumnMode::kEncoderBlob),
        kEncoderKind, TagColumnMode::kEncoderBlob);
    EXPECT_EQ(image, baseline) << "round " << round;
  }
}

TEST(SegmentFormat, FooterMetadataMatchesContent) {
  const std::vector<OwnedRow> rows = random_rows(500, 21);
  TimestampNs lo = ~TimestampNs{0}, hi = 0;
  for (const OwnedRow& r : rows) {
    lo = std::min(lo, r.span.start_ts);
    hi = std::max(hi, r.span.start_ts);
  }
  const std::string image = encode_segment(
      testutil::as_inputs(rows, TagColumnMode::kEncoderBlob), kEncoderKind,
      TagColumnMode::kEncoderBlob);
  const auto segment = must_open(image);
  ASSERT_NE(segment, nullptr);
  EXPECT_EQ(segment->span_count(), rows.size());
  EXPECT_EQ(segment->min_ts(), lo);
  EXPECT_EQ(segment->max_ts(), hi);
  // ids() ascending and aligned with start_ts().
  ASSERT_EQ(segment->ids().size(), rows.size());
  EXPECT_TRUE(std::is_sorted(segment->ids().begin(), segment->ids().end()));
  ASSERT_EQ(segment->start_ts().size(), rows.size());
}

TEST(SegmentFormat, BloomHasNoFalseNegatives) {
  const std::vector<OwnedRow> rows = random_rows(2'000, 77);
  const std::string image = encode_segment(
      testutil::as_inputs(rows, TagColumnMode::kEncoderBlob), kEncoderKind,
      TagColumnMode::kEncoderBlob);
  const auto segment = must_open(image);
  ASSERT_NE(segment, nullptr);
  for (const OwnedRow& r : rows) {
    const agent::Span& s = r.span;
    if (s.systrace_id != kInvalidSystraceId) {
      EXPECT_TRUE(segment->may_contain(
          segment_key_hash(SegmentKeyKind::kSystrace, s.systrace_id)));
    }
    if (s.pseudo_thread_id != 0 && r.pseudo_key != 0) {
      EXPECT_TRUE(segment->may_contain(
          segment_key_hash(SegmentKeyKind::kPseudoThread, r.pseudo_key)));
    }
    if (!s.x_request_id.empty()) {
      EXPECT_TRUE(segment->may_contain(segment_key_hash(
          SegmentKeyKind::kXRequestId, fnv1a(s.x_request_id))));
    }
    if (s.req_tcp_seq != 0) {
      EXPECT_TRUE(segment->may_contain(
          segment_key_hash(SegmentKeyKind::kTcpSeq, s.req_tcp_seq)));
    }
    if (s.resp_tcp_seq != 0) {
      EXPECT_TRUE(segment->may_contain(
          segment_key_hash(SegmentKeyKind::kTcpSeq, s.resp_tcp_seq)));
    }
    if (!s.otel_trace_id.empty()) {
      EXPECT_TRUE(segment->may_contain(segment_key_hash(
          SegmentKeyKind::kOtelId, fnv1a(s.otel_trace_id))));
    }
  }
}

TEST(SegmentFormat, FindRowsMatchesLinearScan) {
  const std::vector<OwnedRow> rows = random_rows(1'000, 55);
  const std::string image = encode_segment(
      testutil::as_inputs(rows, TagColumnMode::kEncoderBlob), kEncoderKind,
      TagColumnMode::kEncoderBlob);
  const auto segment = must_open(image);
  ASSERT_NE(segment, nullptr);
  const auto all = segment->all_rows();
  ASSERT_TRUE(all.has_value());

  const auto expect_matches = [&](SegmentKeyKind kind, u64 value,
                                  std::string_view text, auto matcher) {
    std::vector<u32> expected;
    for (u32 i = 0; i < all->size(); ++i) {
      if (matcher((*all)[i])) expected.push_back(i);
    }
    EXPECT_EQ(segment->find_rows(kind, value, text), expected);
  };

  // Probe with keys taken from real rows plus keys that match nothing.
  Rng probe_rng(9);
  for (int probe = 0; probe < 64; ++probe) {
    const OwnedRow& r = rows[probe_rng.below(rows.size())];
    if (r.span.systrace_id != kInvalidSystraceId) {
      const u64 key = r.span.systrace_id;
      expect_matches(SegmentKeyKind::kSystrace, key, {},
                     [key](const SegmentRow& row) {
                       return row.span.systrace_id == key;
                     });
    }
    if (r.span.req_tcp_seq != 0) {
      const TcpSeq key = r.span.req_tcp_seq;
      expect_matches(SegmentKeyKind::kTcpSeq, key, {},
                     [key](const SegmentRow& row) {
                       return row.span.req_tcp_seq == key ||
                              row.span.resp_tcp_seq == key;
                     });
    }
    if (!r.span.x_request_id.empty()) {
      const std::string key = r.span.x_request_id;
      expect_matches(SegmentKeyKind::kXRequestId, fnv1a(key), key,
                     [&key](const SegmentRow& row) {
                       return row.span.x_request_id == key;
                     });
    }
    if (!r.span.otel_trace_id.empty()) {
      const std::string key = r.span.otel_trace_id;
      expect_matches(SegmentKeyKind::kOtelId, fnv1a(key), key,
                     [&key](const SegmentRow& row) {
                       return row.span.otel_trace_id == key;
                     });
    }
    if (r.pseudo_key != 0) {
      const u64 key = r.pseudo_key;
      expect_matches(SegmentKeyKind::kPseudoThread, key, {},
                     [key](const SegmentRow& row) {
                       return row.pseudo_key == key &&
                              row.span.pseudo_thread_id != 0;
                     });
    }
  }
  // A key present nowhere must match nothing (and may_contain is allowed to
  // answer either way — false positives fall through to the scan).
  EXPECT_TRUE(
      segment->find_rows(SegmentKeyKind::kSystrace, 0xdeadbeefcafef00dULL)
          .empty());
}

TEST(SegmentFormat, RowsDecodesOnlyRequestedIndexes) {
  const std::vector<OwnedRow> rows = random_rows(300, 13);
  const std::string image = encode_segment(
      testutil::as_inputs(rows, TagColumnMode::kEncoderBlob), kEncoderKind,
      TagColumnMode::kEncoderBlob);
  const auto segment = must_open(image);
  ASSERT_NE(segment, nullptr);
  const auto all = segment->all_rows();
  ASSERT_TRUE(all.has_value());
  const std::vector<u32> want = {0, 5, 17, 299};
  const auto subset = segment->rows(want);
  ASSERT_TRUE(subset.has_value());
  ASSERT_EQ(subset->size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(
        testutil::repr_decoded((*subset)[i], TagColumnMode::kEncoderBlob),
        testutil::repr_decoded((*all)[want[i]], TagColumnMode::kEncoderBlob));
  }
  // Out-of-range indexes are skipped, not fatal.
  const auto sparse = segment->rows({1, 1'000'000});
  ASSERT_TRUE(sparse.has_value());
  EXPECT_EQ(sparse->size(), 1u);
}

TEST(SegmentFormat, SegmentDictTagsPreserveDuplicatesAndOrder) {
  Rng rng(31);
  std::vector<OwnedRow> rows;
  OwnedRow a = testutil::random_row(1, rng);
  a.tags = {{"k", "v"}, {"k", "v"}, {"k2", "v2"}, {"k", "other"}};
  OwnedRow b = testutil::random_row(2, rng);
  b.tags = {{"k2", "v2"}, {"k", "v"}};  // shares dictionary entries with a
  OwnedRow c = testutil::random_row(3, rng);
  c.tags.clear();
  rows.push_back(std::move(a));
  rows.push_back(std::move(b));
  rows.push_back(std::move(c));
  expect_round_trip(rows, TagColumnMode::kSegmentDict);
}

TEST(SegmentFormat, EncodeIsDeterministic) {
  const std::vector<OwnedRow> rows = random_rows(128, 5);
  const auto inputs = testutil::as_inputs(rows, TagColumnMode::kEncoderBlob);
  const std::string a =
      encode_segment(inputs, kEncoderKind, TagColumnMode::kEncoderBlob);
  const std::string b =
      encode_segment(inputs, kEncoderKind, TagColumnMode::kEncoderBlob);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace deepflow::storage
