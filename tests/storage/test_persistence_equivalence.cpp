// Persistence equivalence: with the storage tier enabled, every query answer
// — canonical store dumps, assembled traces, the RED service map — must be
// byte-identical to the all-in-RAM baseline, across flushes, restarts and
// serial-vs-parallel ingest.
#include <gtest/gtest.h>

#include <thread>

#include "bench/bench_util.h"
#include "metrics/aggregator.h"
#include "server/canonical.h"
#include "server/server.h"
#include "tests/storage/storage_test_util.h"

namespace deepflow::server {
namespace {

using storage::testutil::ScopedTempDir;

std::vector<agent::Span> synthetic_spans(size_t count,
                                         const bench::SyntheticCluster& cluster,
                                         u64 seed) {
  Rng rng(seed);
  std::vector<agent::Span> spans;
  spans.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    spans.push_back(bench::make_synthetic_span(i + 1, rng, cluster));
  }
  return spans;
}

storage::StorageConfig storage_config(const ScopedTempDir& dir, u32 spans) {
  storage::StorageConfig config;
  config.enabled = true;
  config.dir = dir.str();
  config.segment_spans = spans;
  return config;
}

TEST(PersistenceEquivalence, FlushEnabledQueriesMatchInMemoryBaseline) {
  // Same span stream into an in-memory store and a flush-enabled store:
  // flushing is write-behind, so the dumps must already be byte-identical
  // before any restart.
  const auto cluster = bench::make_synthetic_cluster(4, 4, 3);
  const auto spans = synthetic_spans(1'000, cluster, 11);
  ScopedTempDir dir("df-equiv-writebehind");

  SpanStore baseline(EncoderKind::kSmart, &cluster.registry);
  SpanStore tiered(EncoderKind::kSmart, &cluster.registry, 1,
                   storage_config(dir, 64));
  for (const agent::Span& s : spans) {
    baseline.insert(s);
    tiered.insert(s);
  }
  EXPECT_GT(tiered.storage_telemetry().flushed_spans, 0u);
  EXPECT_EQ(canonical_store_dump(tiered), canonical_store_dump(baseline));
}

TEST(PersistenceEquivalence, RestartedStoreDumpMatchesBaseline) {
  const auto cluster = bench::make_synthetic_cluster(4, 4, 3);
  const auto spans = synthetic_spans(1'000, cluster, 12);
  ScopedTempDir dir("df-equiv-restart");

  SpanStore baseline(EncoderKind::kSmart, &cluster.registry);
  for (const agent::Span& s : spans) baseline.insert(s);
  const std::string expected = canonical_store_dump(baseline);

  const auto config = storage_config(dir, 128);
  {
    SpanStore store(EncoderKind::kSmart, &cluster.registry, 1, config);
    for (const agent::Span& s : spans) store.insert(s);
  }  // shutdown flush seals the tail
  SpanStore revived(EncoderKind::kSmart, &cluster.registry, 1, config);
  EXPECT_EQ(revived.row_count(), spans.size());
  EXPECT_EQ(canonical_store_dump(revived), expected);

  // And compaction must not change a byte of it either.
  revived.compact_storage();
  EXPECT_EQ(canonical_store_dump(revived), expected);
  SpanStore compacted(EncoderKind::kSmart, &cluster.registry, 1, config);
  EXPECT_EQ(canonical_store_dump(compacted), expected);
}

TEST(PersistenceEquivalence, MidStreamRestartMergesTiersLosslessly) {
  // Half the stream lands before a restart (warm tier), half after (hot
  // tier); the merged view must equal the single-lifetime baseline.
  const auto cluster = bench::make_synthetic_cluster(4, 4, 3);
  const auto spans = synthetic_spans(1'200, cluster, 13);
  ScopedTempDir dir("df-equiv-midstream");

  SpanStore baseline(EncoderKind::kSmart, &cluster.registry);
  for (const agent::Span& s : spans) baseline.insert(s);

  const auto config = storage_config(dir, 100);
  {
    SpanStore store(EncoderKind::kSmart, &cluster.registry, 1, config);
    for (size_t i = 0; i < spans.size() / 2; ++i) store.insert(spans[i]);
  }
  SpanStore revived(EncoderKind::kSmart, &cluster.registry, 1, config);
  for (size_t i = spans.size() / 2; i < spans.size(); ++i) {
    revived.insert(spans[i]);
  }
  EXPECT_EQ(revived.row_count(), spans.size());
  EXPECT_EQ(canonical_store_dump(revived), canonical_store_dump(baseline));
}

TEST(PersistenceEquivalence, ServerRestartPreservesTracesAndServiceMap) {
  // Full server: traces assembled from the warm tier and the re-folded
  // service map must match the never-restarted baseline byte for byte.
  const auto cluster = bench::make_synthetic_cluster(4, 4, 3);
  const auto spans = synthetic_spans(800, cluster, 14);
  ScopedTempDir dir("df-equiv-server");

  ServerConfig base_config;
  DeepFlowServer baseline(&cluster.registry, base_config);
  for (const agent::Span& s : spans) baseline.ingest(agent::Span(s));
  baseline.finalize();

  ServerConfig tiered_config;
  tiered_config.storage = storage_config(dir, 96);
  {
    DeepFlowServer server(&cluster.registry, tiered_config);
    for (const agent::Span& s : spans) server.ingest(agent::Span(s));
    server.finalize();
  }
  DeepFlowServer revived(&cluster.registry, tiered_config);
  EXPECT_EQ(revived.store().row_count(), spans.size());
  EXPECT_EQ(canonical_store_dump(revived.store()),
            canonical_store_dump(baseline.store()));
  EXPECT_EQ(revived.metrics_aggregator().canonical_service_map(),
            baseline.metrics_aggregator().canonical_service_map());

  // Traces: every 97th stored span id, assembled on both sides. Ids are
  // preserved by the segment format, so they correspond 1:1.
  const auto ids = baseline.store().span_list(0, ~TimestampNs{0});
  for (size_t i = 0; i < ids.size(); i += 97) {
    EXPECT_EQ(canonical_trace(revived.query_trace(ids[i])),
              canonical_trace(baseline.query_trace(ids[i])))
        << "trace rooted at span " << ids[i];
  }

  // Redelivery of an already-persisted span is still filtered (the dedup
  // seen-set is primed from the recovered ids).
  revived.ingest(agent::Span(spans[0]));
  EXPECT_EQ(revived.store().row_count(), spans.size());
  EXPECT_EQ(revived.ingest_telemetry().duplicate_spans, 1u);
}

TEST(PersistenceEquivalence, SerialAndEightWorkerIngestStayByteIdentical) {
  // The PR 3 guarantee extended to the storage tier: 8 workers striping into
  // a sharded, flush-enabled store produce the same canonical dump and
  // service map as serial in-memory ingest — before and after a restart.
  const auto cluster = bench::make_synthetic_cluster(4, 4, 3);
  const auto spans = synthetic_spans(2'000, cluster, 15);
  ScopedTempDir dir("df-equiv-parallel");

  ServerConfig serial_config;
  DeepFlowServer serial(&cluster.registry, serial_config);
  for (const agent::Span& s : spans) serial.ingest(agent::Span(s));
  serial.finalize();
  const std::string expected_dump = canonical_store_dump(serial.store());
  const std::string expected_map =
      serial.metrics_aggregator().canonical_service_map();

  ServerConfig parallel_config;
  parallel_config.store_shards = 8;
  parallel_config.storage = storage_config(dir, 64);
  {
    DeepFlowServer server(&cluster.registry, parallel_config);
    constexpr size_t kWorkers = 8;
    std::vector<std::thread> workers;
    for (size_t w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&server, &spans, w] {
        for (size_t i = w; i < spans.size(); i += kWorkers) {
          server.ingest(agent::Span(spans[i]));
        }
      });
    }
    for (std::thread& t : workers) t.join();
    server.finalize();
    EXPECT_EQ(canonical_store_dump(server.store()), expected_dump);
    EXPECT_EQ(server.metrics_aggregator().canonical_service_map(),
              expected_map);
  }
  DeepFlowServer revived(&cluster.registry, parallel_config);
  EXPECT_EQ(canonical_store_dump(revived.store()), expected_dump);
  EXPECT_EQ(revived.metrics_aggregator().canonical_service_map(),
            expected_map);
}

}  // namespace
}  // namespace deepflow::server
