// Corruption-injection coverage: every byte of a segment is protected by an
// equality check or a CRC, so any flipped byte must be rejected at open —
// never a crash, never a wrong answer — and the segment store must
// quarantine damaged files while serving the rest. Runs under ASan via the
// scripts/check.sh memory gate.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/fault.h"
#include "server/span_store.h"
#include "storage/segment_format.h"
#include "storage/segment_store.h"
#include "tests/storage/storage_test_util.h"

namespace deepflow::storage {
namespace {

namespace fs = std::filesystem;
using testutil::OwnedRow;
using testutil::ScopedTempDir;

constexpr u8 kEncoderKind = 2;

std::string encoded_rows(size_t count, u64 seed) {
  Rng rng(seed);
  std::vector<OwnedRow> rows;
  for (size_t i = 0; i < count; ++i) {
    rows.push_back(testutil::random_row(i + 1, rng));
  }
  return encode_segment(testutil::as_inputs(rows, TagColumnMode::kEncoderBlob),
                        kEncoderKind, TagColumnMode::kEncoderBlob);
}

void write_file(const fs::path& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

TEST(SegmentCorruption, EveryFlippedByteIsRejectedAtOpen) {
  // The exhaustive adversary: XOR one byte at every offset of a ~200-span
  // image. CRC-32 detects all single-byte errors and the header/trailer are
  // equality-checked, so open must never report kOk — and must never touch
  // the output segment.
  const std::string image = encoded_rows(200, 0xbadc0de);
  std::string mutated = image;
  for (size_t offset = 0; offset < image.size(); ++offset) {
    mutated[offset] = static_cast<char>(mutated[offset] ^ 0xa5);
    std::unique_ptr<Segment> segment;
    const SegmentOpenStatus status = Segment::open(mutated, &segment);
    ASSERT_NE(status, SegmentOpenStatus::kOk) << "flipped byte " << offset;
    ASSERT_EQ(segment, nullptr) << "flipped byte " << offset;
    mutated[offset] = image[offset];  // restore for the next offset
  }
  // Sanity: the pristine image still opens.
  std::unique_ptr<Segment> segment;
  EXPECT_EQ(Segment::open(image, &segment), SegmentOpenStatus::kOk);
}

TEST(SegmentCorruption, ClassificationSeparatesRotFromTruncation) {
  const std::string image = encoded_rows(50, 0x51);
  std::unique_ptr<Segment> segment;

  // Header flip: structure is complete, the equality check rejects — rot.
  std::string bad = image;
  bad[0] ^= 0x01;
  EXPECT_EQ(Segment::open(bad, &segment), SegmentOpenStatus::kCorrupt);

  // Column payload flip (just past the header): CRC rejects — rot.
  bad = image;
  bad[kSegmentHeaderBytes + 3] ^= 0x80;
  EXPECT_EQ(Segment::open(bad, &segment), SegmentOpenStatus::kCorrupt);

  // Footer CRC flip (trailer bytes 4..7): magic intact — rot.
  bad = image;
  bad[image.size() - 6] ^= 0xff;
  EXPECT_EQ(Segment::open(bad, &segment), SegmentOpenStatus::kCorrupt);

  // End-magic flip: the torn-write signature.
  bad = image;
  bad.back() = static_cast<char>(bad.back() ^ 0x10);
  EXPECT_EQ(Segment::open(bad, &segment), SegmentOpenStatus::kTorn);

  // Truncation: also torn.
  EXPECT_EQ(Segment::open(std::string_view(image).substr(0, image.size() - 1),
                          &segment),
            SegmentOpenStatus::kTorn);
}

TEST(SegmentCorruption, RecoveryQuarantinesCorruptSegments) {
  const std::string good = encoded_rows(30, 1);
  std::string bad = encoded_rows(30, 2);
  bad[bad.size() / 2] ^= 0x40;  // mid-file rot, structure intact
  ScopedTempDir dir("df-corrupt-recover");
  write_file(dir.path() / "seg-00000000.seg", good);
  write_file(dir.path() / "seg-00000001.seg", bad);

  StorageConfig config;
  config.enabled = true;
  config.dir = dir.str();
  SegmentStore store(config);
  store.recover();
  const StorageTelemetry t = store.telemetry();
  EXPECT_EQ(t.recovered_segments, 1u);
  EXPECT_EQ(t.quarantined_segments, 1u);
  EXPECT_EQ(t.torn_segments, 0u);
  EXPECT_EQ(store.serving_span_count(), 30u);
  // The damaged file moved to the quarantine name, preserved for forensics.
  EXPECT_FALSE(fs::exists(dir.path() / "seg-00000001.seg"));
  EXPECT_TRUE(fs::exists(dir.path() / "seg-00000001.seg.quarantined"));
}

TEST(SegmentCorruption, MediaFaultInjectionQuarantinesAtWrite) {
  // With media_corrupt = 1.0 every written image takes an XOR hit; a
  // serving-class append validates after the write and must quarantine
  // rather than serve the damaged bytes.
  FaultInjector fault(42);
  FaultProfile profile;
  profile.media_corrupt = 1.0;
  fault.configure(FaultSite::kSegmentWrite, profile);

  ScopedTempDir dir("df-corrupt-media");
  StorageConfig config;
  config.enabled = true;
  config.dir = dir.str();
  config.fault = &fault;
  SegmentStore store(config);
  store.recover();

  Rng rng(5);
  std::vector<OwnedRow> rows;
  for (size_t i = 0; i < 64; ++i) {
    rows.push_back(testutil::random_row(i + 1, rng));
  }
  const bool ok =
      store.append(testutil::as_inputs(rows, TagColumnMode::kEncoderBlob),
                   kEncoderKind, TagColumnMode::kEncoderBlob,
                   /*hot_backed=*/false);
  EXPECT_FALSE(ok);
  EXPECT_EQ(store.serving_span_count(), 0u);
  EXPECT_EQ(store.telemetry().quarantined_segments, 1u);
  EXPECT_GE(fault.counters(FaultSite::kSegmentWrite).media_corruptions, 1u);
}

TEST(SegmentCorruption, MediaFaultScheduleIsDeterministic) {
  // Same seed, same call sequence -> identical media-rot decisions; the
  // chaos suite depends on replayable fault schedules.
  FaultInjector a(7), b(7);
  FaultProfile profile;
  profile.media_corrupt = 0.35;
  a.configure(FaultSite::kSegmentWrite, profile);
  b.configure(FaultSite::kSegmentWrite, profile);
  for (int i = 0; i < 200; ++i) {
    const u64 len = 100 + static_cast<u64>(i) * 13;
    const MediaFault fa = a.media_fault(FaultSite::kSegmentWrite, len);
    const MediaFault fb = b.media_fault(FaultSite::kSegmentWrite, len);
    ASSERT_EQ(fa.corrupt, fb.corrupt) << i;
    ASSERT_EQ(fa.offset, fb.offset) << i;
    ASSERT_EQ(fa.xor_mask, fb.xor_mask) << i;
    if (fa.corrupt) {
      ASSERT_LT(fa.offset, len) << i;
      ASSERT_NE(fa.xor_mask, 0) << i;
    }
  }
}

agent::Span simple_span(u64 id) {
  agent::Span s;
  s.span_id = id;
  s.systrace_id = id / 4 + 1;
  s.req_tcp_seq = static_cast<TcpSeq>(7'000 + id);
  s.host = "node-0";
  s.pid = 10;
  s.start_ts = 1'000'000 + id * 100;
  s.end_ts = s.start_ts + 42;
  s.method = "GET";
  s.endpoint = "/e";
  return s;
}

TEST(SegmentCorruption, SpanStoreDegradesGracefullyUnderMediaRot) {
  // End-to-end: a lifetime that flushed through rotting media restarts and
  // must quarantine exactly the damaged segments, serve the intact ones
  // byte-identically, keep accepting writes — and never crash or fabricate
  // data (ASan backs the "never" part).
  ScopedTempDir dir("df-corrupt-spanstore");
  netsim::ResourceRegistry registry;
  FaultInjector fault(1234);
  FaultProfile profile;
  profile.media_corrupt = 0.5;
  fault.configure(FaultSite::kSegmentWrite, profile);

  storage::StorageConfig config;
  config.enabled = true;
  config.dir = dir.str();
  config.segment_spans = 16;
  config.fault = &fault;
  {
    server::SpanStore store(server::EncoderKind::kSmart, &registry, 1, config);
    for (u64 id = 1; id <= 128; ++id) store.insert(simple_span(id));
  }
  // Hot-backed writes are not validated inline (RAM still serves them); the
  // damage surfaces at recovery.
  config.fault = nullptr;
  server::SpanStore revived(server::EncoderKind::kSmart, &registry, 1, config);
  const storage::StorageTelemetry t = revived.storage_telemetry();
  EXPECT_GT(t.quarantined_segments, 0u);  // p=0.5 over 8 segments
  EXPECT_GT(t.recovered_segments, 0u);
  EXPECT_EQ(t.recovered_spans, revived.row_count());
  EXPECT_EQ(t.recovered_spans + 16 * t.quarantined_segments, 128u);

  // Every surviving span is byte-identical to what was ingested; quarantined
  // spans are absent, not wrong.
  size_t found = 0;
  for (u64 id = 1; id <= 128; ++id) {
    const server::SpanRow* row = revived.row(id);
    if (row == nullptr) continue;
    ++found;
    EXPECT_EQ(testutil::repr_span(row->span),
              testutil::repr_span(simple_span(id)));
  }
  EXPECT_EQ(found, t.recovered_spans);

  // The store stays writable after degradation.
  const u64 fresh = revived.insert(simple_span(10'001));
  EXPECT_NE(revived.row(fresh), nullptr);
}

}  // namespace
}  // namespace deepflow::storage
