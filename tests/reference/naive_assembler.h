// Frozen naive reference for Algorithm 1 (§3.3.2): the PR-1 trace-assembly
// implementation, kept verbatim as the behavioural baseline for the
// optimized query path in src/server/trace_assembler.cpp.
//
//   * Phase one re-builds the search filter from the ENTIRE span set and
//     re-probes the store every iteration (no delta tracking).
//   * Phase two scans ALL earlier spans for every (span, rule) pair — the
//     O(n²·rules) inner loop the optimized assembler replaces with
//     per-attribute candidate buckets.
//
// The optimized assembler must produce identical spans, parent assignments,
// parent rules and display order (iterations_used may be lower: delta
// search skips the final confirming probe). test_query_equivalence.cpp
// enforces this over the equivalence topologies and golden seeds, and
// bench_fig15_query_delay uses the same reference for its ablation.
//
// Deliberately NOT deduplicated against the production rule table: a shared
// table would let a semantic change slip through both sides unnoticed.
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "server/span_store.h"
#include "server/trace_assembler.h"

namespace deepflow::server::reference {

namespace detail {

using agent::Span;
using agent::SpanKind;

inline bool is_sys_or_app(const Span& s) {
  return s.kind == SpanKind::kSystem || s.kind == SpanKind::kApplication;
}

inline bool same_host_pid(const Span& a, const Span& b) {
  return a.pid == b.pid && a.host == b.host;
}

inline bool encloses(const Span& parent, const Span& child) {
  return parent.start_ts <= child.start_ts && parent.end_ts >= child.end_ts;
}

inline bool content_less(const Span& a, const Span& b) {
  if (a.end_ts != b.end_ts) return a.end_ts < b.end_ts;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.from_server_side != b.from_server_side) return b.from_server_side;
  if (a.host != b.host) return a.host < b.host;
  if (a.device_name != b.device_name) return a.device_name < b.device_name;
  if (a.pid != b.pid) return a.pid < b.pid;
  if (a.tid != b.tid) return a.tid < b.tid;
  if (a.req_tcp_seq != b.req_tcp_seq) return a.req_tcp_seq < b.req_tcp_seq;
  if (a.resp_tcp_seq != b.resp_tcp_seq) return a.resp_tcp_seq < b.resp_tcp_seq;
  if (a.x_request_id != b.x_request_id) return a.x_request_id < b.x_request_id;
  if (a.otel_trace_id != b.otel_trace_id) {
    return a.otel_trace_id < b.otel_trace_id;
  }
  if (a.method != b.method) return a.method < b.method;
  if (a.endpoint != b.endpoint) return a.endpoint < b.endpoint;
  return a.span_id < b.span_id;
}

inline bool starts_before(const Span& parent, const Span& child) {
  if (parent.span_id == child.span_id) return false;
  if (parent.start_ts != child.start_ts) {
    return parent.start_ts < child.start_ts;
  }
  return content_less(parent, child);
}

inline bool shares_req_seq(const Span& a, const Span& b) {
  return a.req_tcp_seq != 0 && a.req_tcp_seq == b.req_tcp_seq;
}

using RulePredicate = bool (*)(const Span& x, const Span& p);

struct Rule {
  ParentRuleId id;
  RulePredicate applies;
};

inline constexpr Rule kRules[] = {
    {2,
     [](const Span& x, const Span& p) {
       return x.kind == SpanKind::kNetwork && p.kind == SpanKind::kNetwork &&
              shares_req_seq(x, p);
     }},
    {1,
     [](const Span& x, const Span& p) {
       return x.kind == SpanKind::kNetwork && is_sys_or_app(p) &&
              !p.from_server_side && shares_req_seq(x, p);
     }},
    {3,
     [](const Span& x, const Span& p) {
       return is_sys_or_app(x) && x.from_server_side &&
              p.kind == SpanKind::kNetwork && shares_req_seq(x, p);
     }},
    {4,
     [](const Span& x, const Span& p) {
       return is_sys_or_app(x) && x.from_server_side && is_sys_or_app(p) &&
              !p.from_server_side && shares_req_seq(x, p);
     }},
    {5,
     [](const Span& x, const Span& p) {
       return is_sys_or_app(x) && x.from_server_side && is_sys_or_app(p) &&
              !p.from_server_side && x.resp_tcp_seq != 0 &&
              x.resp_tcp_seq == p.resp_tcp_seq;
     }},
    {6,
     [](const Span& x, const Span& p) {
       return is_sys_or_app(x) && !x.from_server_side && is_sys_or_app(p) &&
              p.from_server_side && same_host_pid(x, p) &&
              x.systrace_id != kInvalidSystraceId &&
              x.systrace_id == p.systrace_id && encloses(p, x);
     }},
    {7,
     [](const Span& x, const Span& p) {
       return is_sys_or_app(x) && !x.from_server_side && is_sys_or_app(p) &&
              p.from_server_side && same_host_pid(x, p) &&
              x.pseudo_thread_id != 0 &&
              x.pseudo_thread_id == p.pseudo_thread_id && encloses(p, x);
     }},
    {8,
     [](const Span& x, const Span& p) {
       return is_sys_or_app(x) && !x.from_server_side && is_sys_or_app(p) &&
              p.from_server_side && same_host_pid(x, p) &&
              !x.x_request_id.empty() && x.x_request_id == p.x_request_id;
     }},
    {9,
     [](const Span& x, const Span& p) {
       return is_sys_or_app(x) && !x.from_server_side && is_sys_or_app(p) &&
              !p.from_server_side && same_host_pid(x, p) &&
              x.systrace_id != kInvalidSystraceId &&
              x.systrace_id == p.systrace_id && encloses(p, x) &&
              p.req_tcp_seq != x.req_tcp_seq;
     }},
    {10,
     [](const Span& x, const Span& p) {
       return x.kind == SpanKind::kThirdParty &&
              p.kind == SpanKind::kThirdParty && !x.otel_trace_id.empty() &&
              x.otel_trace_id == p.otel_trace_id && encloses(p, x);
     }},
    {11,
     [](const Span& x, const Span& p) {
       return x.kind == SpanKind::kThirdParty && is_sys_or_app(p) &&
              !x.otel_trace_id.empty() &&
              x.otel_trace_id == p.otel_trace_id && encloses(p, x);
     }},
    {12,
     [](const Span& x, const Span& p) {
       return is_sys_or_app(x) && p.kind == SpanKind::kThirdParty &&
              !x.otel_trace_id.empty() &&
              x.otel_trace_id == p.otel_trace_id && encloses(p, x) &&
              same_host_pid(x, p);
     }},
    {13,
     [](const Span& x, const Span& p) {
       return x.kind == SpanKind::kApplication &&
              p.kind == SpanKind::kSystem && same_host_pid(x, p) &&
              x.tid == p.tid && encloses(p, x);
     }},
    {14,
     [](const Span& x, const Span& p) {
       return x.kind == SpanKind::kSystem &&
              p.kind == SpanKind::kApplication && same_host_pid(x, p) &&
              x.tid == p.tid && encloses(p, x);
     }},
    {15,
     [](const Span& x, const Span& p) {
       return x.systrace_id != kInvalidSystraceId &&
              x.systrace_id == p.systrace_id && is_sys_or_app(p) &&
              p.from_server_side;
     }},
};

}  // namespace detail

/// The PR-1 TraceAssembler::assemble, frozen: full re-search per iteration,
/// all-pairs parent scan, per-span materialization.
inline AssembledTrace assemble_naive(const SpanStore& store, u64 start_span_id,
                                     AssemblerConfig config = {}) {
  using detail::Rule;
  using detail::kRules;
  using agent::Span;

  AssembledTrace trace;
  if (store.row(start_span_id) == nullptr) return trace;

  // ---- Phase one: iterative span search (full filter re-built each pass).
  std::unordered_map<u64, Span> span_set;
  span_set.emplace(start_span_id, store.row(start_span_id)->span);

  for (u32 iter = 0; iter < config.max_iterations; ++iter) {
    trace.iterations_used = iter + 1;
    SearchFilter filter;
    for (const auto& [id, span] : span_set) {
      if (span.systrace_id != kInvalidSystraceId) {
        filter.systrace_ids.insert(span.systrace_id);
      }
      if (span.pseudo_thread_id != 0) {
        filter.pseudo_thread_keys.insert(pseudo_thread_key(span));
      }
      if (!span.x_request_id.empty()) {
        filter.x_request_ids.insert(span.x_request_id);
      }
      if (span.req_tcp_seq != 0) filter.tcp_seqs.insert(span.req_tcp_seq);
      if (span.resp_tcp_seq != 0) filter.tcp_seqs.insert(span.resp_tcp_seq);
      if (!span.otel_trace_id.empty()) {
        filter.otel_trace_ids.insert(span.otel_trace_id);
      }
    }
    const std::vector<u64> found = store.search(filter);
    const size_t before = span_set.size();
    for (const u64 id : found) {
      if (!span_set.contains(id)) span_set.emplace(id, store.row(id)->span);
    }
    if (span_set.size() == before) break;  // not updated -> converged
  }

  // ---- Phase two: parent assignment (all-pairs scan per rule).
  std::vector<Span> spans;
  spans.reserve(span_set.size());
  for (auto& [id, span] : span_set) spans.push_back(std::move(span));

  std::vector<ParentRuleId> rules(spans.size(), 0);
  for (size_t i = 0; i < spans.size(); ++i) {
    Span& x = spans[i];
    x.parent_span_id = 0;
    for (const Rule& rule : kRules) {
      const Span* best = nullptr;
      for (const Span& p : spans) {
        if (!detail::starts_before(p, x)) continue;
        if (!rule.applies(x, p)) continue;
        if (best == nullptr || p.start_ts > best->start_ts ||
            (p.start_ts == best->start_ts && detail::content_less(*best, p))) {
          best = &p;
        }
      }
      if (best != nullptr) {
        x.parent_span_id = best->span_id;
        rules[i] = rule.id;
        break;
      }
    }
  }

  // ---- Phase three: sort for display.
  std::vector<size_t> order(spans.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (spans[a].start_ts != spans[b].start_ts) {
      return spans[a].start_ts < spans[b].start_ts;
    }
    return detail::content_less(spans[a], spans[b]);
  });

  trace.spans.reserve(spans.size());
  for (const size_t i : order) {
    AssembledSpan out;
    out.span = store.materialize(spans[i].span_id);
    out.span.parent_span_id = spans[i].parent_span_id;
    out.parent_rule = rules[i];
    trace.spans.push_back(std::move(out));
  }
  return trace;
}

}  // namespace deepflow::server::reference
