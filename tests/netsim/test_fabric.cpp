#include "netsim/fabric.h"

#include <gtest/gtest.h>

namespace deepflow::netsim {
namespace {

class FabricTest : public ::testing::Test {
 protected:
  FabricTest()
      : fabric_(loop_, /*seed=*/7),
        kernel_a_(loop_, "a", &fabric_),
        kernel_b_(loop_, "b", &fabric_) {
    pid_a_ = kernel_a_.tasks().create_process("client");
    tid_a_ = kernel_a_.tasks().create_thread(pid_a_);
    pid_b_ = kernel_b_.tasks().create_process("server");
    tid_b_ = kernel_b_.tasks().create_thread(pid_b_);
    tuple_ = FiveTuple{Ipv4::parse("10.0.0.1"), Ipv4::parse("10.0.0.2"),
                       40000, 80, L4Proto::kTcp};
    sock_a_ = kernel_a_.open_socket(pid_a_, tuple_);
    sock_b_ = kernel_b_.open_socket(pid_b_, tuple_.reversed());
  }

  void wire(std::vector<Device*> path) {
    fabric_.register_connection(&kernel_a_, sock_a_, &kernel_b_, sock_b_,
                                std::move(path));
  }

  EventLoop loop_;
  Fabric fabric_;
  kernelsim::Kernel kernel_a_, kernel_b_;
  Pid pid_a_ = 0, pid_b_ = 0;
  Tid tid_a_ = 0, tid_b_ = 0;
  FiveTuple tuple_;
  SocketId sock_a_ = 0, sock_b_ = 0;
};

TEST_F(FabricTest, DeliversAcrossPath) {
  Device* d1 = fabric_.create_device(DeviceKind::kVeth, "veth", 0, 1'000);
  Device* d2 = fabric_.create_device(DeviceKind::kVSwitch, "vsw", 0, 2'000);
  wire({d1, d2});
  std::string delivered;
  TimestampNs arrive_ts = 0;
  fabric_.set_delivery_handler(
      sock_b_, [&](const kernelsim::WireMessage& msg, TimestampNs ts) {
        delivered = msg.payload;
        arrive_ts = ts;
      });
  const auto out =
      kernel_a_.sys_send(tid_a_, sock_a_, "ping", kernelsim::SyscallAbi::kWrite, 0);
  loop_.run();
  EXPECT_EQ(delivered, "ping");
  EXPECT_EQ(arrive_ts, out.exit_ts + 3'000);  // sum of hop latencies
  EXPECT_EQ(fabric_.delivered_count(), 1u);
}

TEST_F(FabricTest, TapsFireAtTraversalInstants) {
  Device* d1 = fabric_.create_device(DeviceKind::kVeth, "veth", 0, 1'000);
  Device* d2 = fabric_.create_device(DeviceKind::kTorSwitch, "tor", 0, 5'000);
  wire({d1, d2});
  std::vector<std::pair<std::string, TimestampNs>> taps;
  for (Device* d : {d1, d2}) {
    d->attach_tap([&taps, d](const TapContext& ctx) {
      taps.emplace_back(d->name, ctx.timestamp);
    });
  }
  fabric_.set_delivery_handler(sock_b_,
                               [](const kernelsim::WireMessage&, TimestampNs) {});
  const auto out =
      kernel_a_.sys_send(tid_a_, sock_a_, "x", kernelsim::SyscallAbi::kWrite, 0);
  loop_.run();
  ASSERT_EQ(taps.size(), 2u);
  EXPECT_EQ(taps[0].first, "veth");
  EXPECT_EQ(taps[0].second, out.exit_ts + 1'000);
  EXPECT_EQ(taps[1].first, "tor");
  EXPECT_EQ(taps[1].second, out.exit_ts + 6'000);
}

TEST_F(FabricTest, TcpSeqUnchangedAcrossForwarding) {
  // The property inter-component association relies on (§3.3.2): L2/3/4
  // forwarding never rewrites the TCP sequence.
  Device* d1 = fabric_.create_device(DeviceKind::kL4Gateway, "lb", 0, 1'000);
  wire({d1});
  TcpSeq at_tap = 0, at_delivery = 0;
  d1->attach_tap([&](const TapContext& ctx) { at_tap = ctx.message->tcp_seq; });
  fabric_.set_delivery_handler(
      sock_b_, [&](const kernelsim::WireMessage& msg, TimestampNs) {
        at_delivery = msg.tcp_seq;
      });
  const auto out =
      kernel_a_.sys_send(tid_a_, sock_a_, "abc", kernelsim::SyscallAbi::kWrite, 0);
  loop_.run();
  EXPECT_EQ(at_tap, out.tcp_seq);
  EXPECT_EQ(at_delivery, out.tcp_seq);
}

TEST_F(FabricTest, DeviceMetricsAccumulate) {
  Device* d = fabric_.create_device(DeviceKind::kPhysicalNic, "pnic", 0, 500);
  wire({d});
  fabric_.set_delivery_handler(sock_b_,
                               [](const kernelsim::WireMessage&, TimestampNs) {});
  kernel_a_.sys_send(tid_a_, sock_a_, "12345", kernelsim::SyscallAbi::kWrite, 0);
  kernel_a_.sys_send(tid_a_, sock_a_, "678", kernelsim::SyscallAbi::kWrite, 100);
  loop_.run();
  EXPECT_EQ(d->metrics.packets, 2u);
  EXPECT_EQ(d->metrics.bytes, 8u);
}

TEST_F(FabricTest, DropFaultCausesRetransmissionDelayAndMetric) {
  Device* d = fabric_.create_device(DeviceKind::kVSwitch, "vsw", 0, 1'000);
  d->fault.drop_probability = 1.0;  // always drop once (recovered by RTO)
  d->fault.retransmit_timeout_ns = 50 * kMillisecond;
  wire({d});
  TimestampNs arrive = 0;
  fabric_.set_delivery_handler(
      sock_b_, [&](const kernelsim::WireMessage&, TimestampNs ts) { arrive = ts; });
  const auto out =
      kernel_a_.sys_send(tid_a_, sock_a_, "x", kernelsim::SyscallAbi::kWrite, 0);
  loop_.run();
  EXPECT_EQ(d->metrics.retransmissions, 1u);
  EXPECT_GE(arrive, out.exit_ts + 50 * kMillisecond);
  EXPECT_EQ(fabric_.flow_metrics(tuple_).retransmissions, 1u);
}

TEST_F(FabricTest, ResetFaultClosesBothEndsAndNotifies) {
  Device* d = fabric_.create_device(DeviceKind::kMiddleware, "mq", 0, 1'000);
  d->fault.reset_probability = 1.0;
  wire({d});
  int resets_seen = 0;
  fabric_.set_reset_handler(sock_a_, [&](TimestampNs) { ++resets_seen; });
  fabric_.set_reset_handler(sock_b_, [&](TimestampNs) { ++resets_seen; });
  bool delivered = false;
  fabric_.set_delivery_handler(
      sock_b_, [&](const kernelsim::WireMessage&, TimestampNs) { delivered = true; });
  kernel_a_.sys_send(tid_a_, sock_a_, "x", kernelsim::SyscallAbi::kWrite, 0);
  loop_.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(resets_seen, 2);
  EXPECT_FALSE(kernel_a_.socket(sock_a_)->open);
  EXPECT_FALSE(kernel_b_.socket(sock_b_)->open);
  EXPECT_EQ(fabric_.reset_count(), 1u);
  EXPECT_EQ(fabric_.flow_metrics(tuple_).resets, 1u);
}

TEST_F(FabricTest, ArpAnomalyStormsOnNewFlows) {
  Device* good = fabric_.create_device(DeviceKind::kVSwitch, "vsw", 0, 1'000);
  Device* bad = fabric_.create_device(DeviceKind::kPhysicalNic, "pnic", 0, 1'000);
  bad->fault.arp_anomaly = true;  // the §4.1.2 defective NIC
  wire({good, bad});
  fabric_.set_delivery_handler(sock_b_,
                               [](const kernelsim::WireMessage&, TimestampNs) {});
  kernel_a_.sys_send(tid_a_, sock_a_, "a", kernelsim::SyscallAbi::kWrite, 0);
  kernel_a_.sys_send(tid_a_, sock_a_, "b", kernelsim::SyscallAbi::kWrite, 10);
  loop_.run();
  // One ARP per flow on healthy devices; a burst on the faulty one.
  EXPECT_EQ(good->metrics.arp_requests, 1u);
  EXPECT_GT(bad->metrics.arp_requests, good->metrics.arp_requests);
}

TEST_F(FabricTest, ExtraLatencyFaultSlowsTransit) {
  Device* d = fabric_.create_device(DeviceKind::kVirtualNic, "vnic", 0, 1'000);
  d->fault.extra_latency_ns = 10 * kMillisecond;
  wire({d});
  TimestampNs arrive = 0;
  fabric_.set_delivery_handler(
      sock_b_, [&](const kernelsim::WireMessage&, TimestampNs ts) { arrive = ts; });
  const auto out =
      kernel_a_.sys_send(tid_a_, sock_a_, "x", kernelsim::SyscallAbi::kWrite, 0);
  loop_.run();
  EXPECT_EQ(arrive, out.exit_ts + 1'000 + 10 * kMillisecond);
}

TEST_F(FabricTest, FlowMetricsTrackTransit) {
  Device* d = fabric_.create_device(DeviceKind::kVeth, "veth", 0, 3'000);
  wire({d});
  fabric_.set_delivery_handler(sock_b_,
                               [](const kernelsim::WireMessage&, TimestampNs) {});
  kernel_a_.sys_send(tid_a_, sock_a_, "x", kernelsim::SyscallAbi::kWrite, 0);
  loop_.run();
  const FlowMetrics& metrics = fabric_.flow_metrics(tuple_);
  EXPECT_EQ(metrics.packets, 1u);
  EXPECT_EQ(metrics.avg_transit(), 3'000u);
  // Direction-agnostic lookup.
  EXPECT_EQ(fabric_.flow_metrics(tuple_.reversed()).packets, 1u);
}

TEST_F(FabricTest, UnroutedSocketDropsQuietly) {
  // No register_connection: message vanishes without crashing.
  kernel_a_.sys_send(tid_a_, sock_a_, "x", kernelsim::SyscallAbi::kWrite, 0);
  loop_.run();
  EXPECT_EQ(fabric_.delivered_count(), 0u);
}

}  // namespace
}  // namespace deepflow::netsim
