#include "netsim/resource.h"

#include <gtest/gtest.h>

namespace deepflow::netsim {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest() {
    vpc_ = registry_.create_vpc("prod", "us-east");
    node_ = registry_.create_node(vpc_, "node-1", "az-2");
    service_ = registry_.create_service(vpc_, "checkout");
    pod_ = registry_.create_pod(node_, "checkout-0", Ipv4::parse("10.0.1.5"),
                                service_, {{"version", "v3"}});
    registry_.register_node_ip(node_, Ipv4::parse("192.168.0.1"));
  }

  ResourceRegistry registry_;
  VpcId vpc_ = 0;
  NodeId node_ = 0;
  ServiceId service_ = 0;
  PodId pod_ = 0;
};

TEST_F(RegistryTest, PodIpResolvesFullIdentity) {
  const ResourceInfo info = registry_.resolve(Ipv4::parse("10.0.1.5"));
  EXPECT_EQ(info.vpc, vpc_);
  EXPECT_EQ(info.node, node_);
  EXPECT_EQ(info.pod, pod_);
  EXPECT_EQ(info.service, service_);
  EXPECT_EQ(info.pod_name, "checkout-0");
  EXPECT_EQ(info.node_name, "node-1");
  EXPECT_EQ(info.service_name, "checkout");
  EXPECT_EQ(info.vpc_name, "prod");
  EXPECT_EQ(info.region, "us-east");
  EXPECT_EQ(info.availability_zone, "az-2");
  ASSERT_EQ(info.custom_labels.size(), 1u);
  EXPECT_EQ(info.custom_labels[0].key, "version");
}

TEST_F(RegistryTest, NodeIpResolvesWithoutPod) {
  const ResourceInfo info = registry_.resolve(Ipv4::parse("192.168.0.1"));
  EXPECT_EQ(info.node, node_);
  EXPECT_EQ(info.pod, 0u);
  EXPECT_EQ(info.vpc, vpc_);
}

TEST_F(RegistryTest, UnknownIpResolvesEmpty) {
  // External endpoints are routine production traffic; resolution must not
  // fail, just return an empty identity.
  const ResourceInfo info = registry_.resolve(Ipv4::parse("8.8.8.8"));
  EXPECT_EQ(info.vpc, 0u);
  EXPECT_EQ(info.node, 0u);
  EXPECT_EQ(info.pod, 0u);
  EXPECT_TRUE(info.pod_name.empty());
}

TEST_F(RegistryTest, NameLookups) {
  EXPECT_EQ(registry_.vpc_name(vpc_), "prod");
  EXPECT_EQ(registry_.node_name(node_), "node-1");
  EXPECT_EQ(registry_.pod_name(pod_), "checkout-0");
  EXPECT_EQ(registry_.service_name(service_), "checkout");
  EXPECT_EQ(registry_.vpc_name(999), "");
}

TEST_F(RegistryTest, PodsOfService) {
  const PodId second = registry_.create_pod(
      node_, "checkout-1", Ipv4::parse("10.0.1.6"), service_);
  auto pods = registry_.pods_of_service(service_);
  EXPECT_EQ(pods.size(), 2u);
  EXPECT_TRUE((pods[0] == pod_ && pods[1] == second) ||
              (pods[0] == second && pods[1] == pod_));
}

TEST_F(RegistryTest, PodIpLookup) {
  ASSERT_TRUE(registry_.pod_ip(pod_).has_value());
  EXPECT_EQ(registry_.pod_ip(pod_)->to_string(), "10.0.1.5");
  EXPECT_FALSE(registry_.pod_ip(12345).has_value());
}

TEST_F(RegistryTest, CountsTrackCreation) {
  EXPECT_EQ(registry_.node_count(), 1u);
  EXPECT_EQ(registry_.pod_count(), 1u);
  registry_.create_pod(node_, "extra", Ipv4::parse("10.0.1.9"));
  EXPECT_EQ(registry_.pod_count(), 2u);
}

}  // namespace
}  // namespace deepflow::netsim
