#include "netsim/cluster.h"

#include <gtest/gtest.h>

namespace deepflow::netsim {
namespace {

TEST(Cluster, NodesGetKernelAndInfra) {
  Cluster cluster;
  const NodeId node = cluster.add_node("node-1");
  ASSERT_NE(cluster.kernel_of(node), nullptr);
  EXPECT_EQ(cluster.kernel_of(node)->hostname(), "node-1");
  ASSERT_NE(cluster.vswitch_of(node), nullptr);
  ASSERT_NE(cluster.pnic_of(node), nullptr);
  ASSERT_NE(cluster.tor(), nullptr);
}

TEST(Cluster, PodsGetUniqueIpsAndProcesses) {
  Cluster cluster;
  const NodeId node = cluster.add_node("node-1");
  const PodHandle a = cluster.add_pod(node, "svc-0", "svc");
  const PodHandle b = cluster.add_pod(node, "svc-1", "svc");
  EXPECT_NE(a.ip, b.ip);
  EXPECT_NE(a.pid, b.pid);
  EXPECT_NE(a.veth, b.veth);
  EXPECT_EQ(cluster.registry().resolve(a.ip).pod_name, "svc-0");
}

TEST(Cluster, SameNodeConnectionStaysLocal) {
  Cluster cluster;
  const NodeId node = cluster.add_node("node-1");
  const PodHandle a = cluster.add_pod(node, "a-0", "a");
  const PodHandle b = cluster.add_pod(node, "b-0", "b");
  const ConnectionHandle conn = cluster.connect(a, b, 8080);
  EXPECT_NE(conn.client_socket, 0u);
  EXPECT_NE(conn.server_socket, 0u);
  EXPECT_EQ(conn.client_kernel, conn.server_kernel);
  EXPECT_EQ(conn.tuple.src_ip, a.ip);
  EXPECT_EQ(conn.tuple.dst_ip, b.ip);
  EXPECT_EQ(conn.tuple.dst_port, 8080);
}

TEST(Cluster, CrossNodeMessageTraversesTorAndPnics) {
  Cluster cluster;
  const NodeId n1 = cluster.add_node("node-1");
  const NodeId n2 = cluster.add_node("node-2");
  const PodHandle a = cluster.add_pod(n1, "a-0", "a");
  const PodHandle b = cluster.add_pod(n2, "b-0", "b");
  const ConnectionHandle conn = cluster.connect(a, b, 80);

  const Pid pid = a.pid;
  const Tid tid = a.kernel->tasks().create_thread(pid);
  bool delivered = false;
  cluster.fabric().set_delivery_handler(
      conn.server_socket,
      [&](const kernelsim::WireMessage&, TimestampNs) { delivered = true; });
  a.kernel->sys_send(tid, conn.client_socket, "hi",
                     kernelsim::SyscallAbi::kWrite, 0);
  cluster.loop().run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(cluster.tor()->metrics.packets, 1u);
  EXPECT_EQ(cluster.pnic_of(n1)->metrics.packets, 1u);
  EXPECT_EQ(cluster.pnic_of(n2)->metrics.packets, 1u);
  EXPECT_EQ(a.veth->metrics.packets, 1u);
  EXPECT_EQ(b.veth->metrics.packets, 1u);
}

TEST(Cluster, SameNodeMessageSkipsTor) {
  Cluster cluster;
  const NodeId n1 = cluster.add_node("node-1");
  const PodHandle a = cluster.add_pod(n1, "a-0", "a");
  const PodHandle b = cluster.add_pod(n1, "b-0", "b");
  const ConnectionHandle conn = cluster.connect(a, b, 80);
  const Tid tid = a.kernel->tasks().create_thread(a.pid);
  cluster.fabric().set_delivery_handler(
      conn.server_socket, [](const kernelsim::WireMessage&, TimestampNs) {});
  a.kernel->sys_send(tid, conn.client_socket, "hi",
                     kernelsim::SyscallAbi::kWrite, 0);
  cluster.loop().run();
  EXPECT_EQ(cluster.tor()->metrics.packets, 0u);
  EXPECT_EQ(cluster.vswitch_of(n1)->metrics.packets, 1u);
}

TEST(Cluster, ExtraMiddleDevicesSplicedIntoPath) {
  Cluster cluster;
  const NodeId n1 = cluster.add_node("node-1");
  const NodeId n2 = cluster.add_node("node-2");
  const PodHandle a = cluster.add_pod(n1, "a-0", "a");
  const PodHandle b = cluster.add_pod(n2, "b-0", "b");
  Device* gateway = cluster.fabric().create_device(DeviceKind::kL4Gateway,
                                                   "slb-1", 0, 10'000);
  const ConnectionHandle conn = cluster.connect(a, b, 80, false, {gateway});
  const Tid tid = a.kernel->tasks().create_thread(a.pid);
  cluster.fabric().set_delivery_handler(
      conn.server_socket, [](const kernelsim::WireMessage&, TimestampNs) {});
  a.kernel->sys_send(tid, conn.client_socket, "hi",
                     kernelsim::SyscallAbi::kWrite, 0);
  cluster.loop().run();
  EXPECT_EQ(gateway->metrics.packets, 1u);
}

TEST(Cluster, EphemeralPortsDistinct) {
  Cluster cluster;
  const NodeId n1 = cluster.add_node("node-1");
  const PodHandle a = cluster.add_pod(n1, "a-0", "a");
  const PodHandle b = cluster.add_pod(n1, "b-0", "b");
  const ConnectionHandle c1 = cluster.connect(a, b, 80);
  const ConnectionHandle c2 = cluster.connect(a, b, 80);
  EXPECT_NE(c1.tuple.src_port, c2.tuple.src_port);
}

TEST(Cluster, ServiceRegistryIntegration) {
  Cluster cluster;
  const NodeId n1 = cluster.add_node("node-1");
  const ServiceId svc = cluster.add_service("web");
  cluster.add_pod(n1, "web-0", "web", svc);
  cluster.add_pod(n1, "web-1", "web", svc);
  EXPECT_EQ(cluster.registry().pods_of_service(svc).size(), 2u);
}

}  // namespace
}  // namespace deepflow::netsim
