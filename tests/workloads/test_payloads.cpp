#include "workloads/payloads.h"

#include <gtest/gtest.h>

namespace deepflow::workloads {
namespace {

using protocols::L7Protocol;

constexpr L7Protocol kAll[] = {
    L7Protocol::kHttp1, L7Protocol::kHttp2, L7Protocol::kDns,
    L7Protocol::kRedis, L7Protocol::kMysql, L7Protocol::kKafka,
    L7Protocol::kMqtt,  L7Protocol::kDubbo, L7Protocol::kAmqp};

class PayloadRoundTrip : public ::testing::TestWithParam<L7Protocol> {};

TEST_P(PayloadRoundTrip, RequestParsesBack) {
  const L7Protocol proto = GetParam();
  RequestContext ctx;
  const std::string payload = build_request_payload(proto, "orders", 5, ctx);
  const InboundRequest inbound = parse_inbound(proto, payload);
  // Endpoint survives for protocols that carry one.
  if (proto != L7Protocol::kMysql) {
    EXPECT_NE(inbound.endpoint.find("orders"), std::string::npos) << (int)proto;
  }
}

TEST_P(PayloadRoundTrip, StreamIdSurvivesForParallelProtocols) {
  const L7Protocol proto = GetParam();
  RequestContext ctx;
  const std::string req = build_request_payload(proto, "x", 5, ctx);
  const std::string resp = build_response_payload(proto, 200, 5, ctx);
  if (proto == L7Protocol::kHttp2 || proto == L7Protocol::kDns ||
      proto == L7Protocol::kKafka || proto == L7Protocol::kDubbo) {
    EXPECT_EQ(parse_inbound(proto, req).stream_id, 5u);
    EXPECT_EQ(response_stream_id(proto, resp), 5u);
  }
}

TEST_P(PayloadRoundTrip, ResponseOkMirrorsStatus) {
  const L7Protocol proto = GetParam();
  RequestContext ctx;
  EXPECT_TRUE(response_ok(proto, build_response_payload(proto, 200, 1, ctx)));
  if (proto != L7Protocol::kMqtt) {  // PUBACK has no error form in our codec
    EXPECT_FALSE(
        response_ok(proto, build_response_payload(proto, 500, 1, ctx)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, PayloadRoundTrip, ::testing::ValuesIn(kAll),
    [](const auto& info) {
      return std::string(protocols::l7_protocol_name(info.param));
    });

TEST(Payloads, HttpCarriesContextHeaders) {
  RequestContext ctx;
  ctx.x_request_id = "xrid-7";
  ctx.traceparent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
  for (const L7Protocol proto : {L7Protocol::kHttp1, L7Protocol::kHttp2}) {
    const InboundRequest inbound =
        parse_inbound(proto, build_request_payload(proto, "/", 1, ctx));
    EXPECT_EQ(inbound.x_request_id, "xrid-7");
    EXPECT_EQ(inbound.traceparent, ctx.traceparent);
  }
}

TEST(Payloads, NonHttpProtocolsDropContextHeaders) {
  // The real-world limitation implicit propagation works around: most
  // protocols cannot carry framework headers.
  RequestContext ctx;
  ctx.x_request_id = "xrid-7";
  ctx.traceparent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
  for (const L7Protocol proto :
       {L7Protocol::kRedis, L7Protocol::kMysql, L7Protocol::kDns,
        L7Protocol::kKafka, L7Protocol::kMqtt, L7Protocol::kDubbo,
        L7Protocol::kAmqp}) {
    const InboundRequest inbound =
        parse_inbound(proto, build_request_payload(proto, "k", 1, ctx));
    EXPECT_TRUE(inbound.x_request_id.empty()) << (int)proto;
    EXPECT_TRUE(inbound.traceparent.empty()) << (int)proto;
  }
}

TEST(Payloads, UnknownProtocolYieldsPlaceholder) {
  RequestContext ctx;
  EXPECT_EQ(build_request_payload(L7Protocol::kUnknown, "/", 1, ctx), "?");
  EXPECT_TRUE(parse_inbound(L7Protocol::kUnknown, "anything").endpoint.empty());
}

}  // namespace
}  // namespace deepflow::workloads
