#include "workloads/microservice.h"

#include <gtest/gtest.h>

#include "core/deployment.h"
#include "workloads/topologies.h"

namespace deepflow::workloads {
namespace {

TEST(Microservice, ProxyMintsUniqueXRequestIds) {
  // Proxies generate X-Request-IDs for requests lacking one; every request
  // gets a distinct id (the cross-thread association key must not alias).
  Topology topo = make_nginx_ingress_case(/*faulty_replica=*/99);  // healthy
  core::Deployment deepflow(topo.cluster.get());
  ASSERT_TRUE(deepflow.deploy());
  topo.app->run_constant_load(topo.entry, 30.0, 1 * kSecond);
  deepflow.finish();

  std::set<std::string> xrids;
  size_t spans_with_xrid = 0;
  for (const u64 id : deepflow.server().find_spans([](const agent::Span& s) {
         return !s.x_request_id.empty() &&
                s.kind == agent::SpanKind::kSystem;
       })) {
    xrids.insert(deepflow.server().store().row(id)->span.x_request_id);
    ++spans_with_xrid;
  }
  EXPECT_EQ(xrids.size(), 30u);      // one id per request
  EXPECT_GT(spans_with_xrid, 30u);   // shared by multiple spans per request
}

TEST(Microservice, BacklogPreservesRequestOrderPerConnection) {
  // A single-threaded slow service must answer queued requests in arrival
  // order (response seqs rise monotonically with request seqs).
  netsim::Cluster cluster;
  cluster.add_node("node-1");
  App app(&cluster);
  ServiceSpec slow;
  slow.name = "slow";
  slow.threads = 1;
  slow.compute_ns = 5 * kMillisecond;
  slow.compute_jitter = 0.0;
  const size_t slow_id = app.add_service(slow);
  app.build();

  const LoadResult result =
      app.run_constant_load(slow_id, 400.0, 500 * kMillisecond,
                            /*connections=*/8);
  // 200 arrivals against ~200/s capacity: the backlog grows through the
  // window, so later completions wait longer (p90 >> p50) and not all
  // arrivals complete in-window.
  EXPECT_LT(result.completed, result.sent);
  EXPECT_GT(result.completed, 50u);
  EXPECT_GT(result.latency.p90(), result.latency.p50() + kMillisecond);
}

TEST(Microservice, FaultStatusDoesNotStopDownstreamCalls) {
  // The faulty §4.1.1 pod still proxies; only its final status changes.
  Topology topo = make_nginx_ingress_case(/*faulty_replica=*/0);
  topo.app->run_constant_load(topo.entry, 30.0, 1 * kSecond, /*connections=*/3);
  u64 web_handled = 0;
  for (auto* i : topo.app->instances_of(topo.services.at("web"))) {
    web_handled += i->handled();
  }
  EXPECT_EQ(web_handled, 30u);
}

TEST(Microservice, SlowdownInflatesOnlyThatReplica) {
  Topology topo = make_nginx_ingress_case(/*faulty_replica=*/99);
  topo.app->instance(topo.services.at("api"), 0)->set_slowdown(50.0);
  core::Deployment deepflow(topo.cluster.get());
  ASSERT_TRUE(deepflow.deploy());
  topo.app->run_constant_load(topo.entry, 20.0, 2 * kSecond);
  deepflow.finish();

  // Compare server-side span durations of api-0 vs api-1 via pod tags.
  DurationNs slow_total = 0, fast_total = 0;
  size_t slow_n = 0, fast_n = 0;
  for (const u64 id : deepflow.server().find_spans([](const agent::Span& s) {
         return s.from_server_side && s.kind == agent::SpanKind::kSystem;
       })) {
    const agent::Span span = deepflow.server().store().materialize(id);
    for (const auto& tag : span.tags) {
      if (tag.key != "server.pod") continue;
      if (tag.value == "api-0") {
        slow_total += span.duration();
        ++slow_n;
      } else if (tag.value == "api-1") {
        fast_total += span.duration();
        ++fast_n;
      }
    }
  }
  ASSERT_GT(slow_n, 0u);
  ASSERT_GT(fast_n, 0u);
  EXPECT_GT(slow_total / slow_n, 10 * (fast_total / fast_n));
}

TEST(Microservice, DeadPathsFailFastAfterReset) {
  // After a connection reset, subsequent calls over the dead link fail
  // without hanging the caller's thread forever.
  Topology topo = make_mq_pipeline();
  topo.app->instance(topo.services.at("rabbitmq"), 0)
      ->pod()
      .veth->fault.reset_probability = 1.0;
  const LoadResult result =
      topo.app->run_constant_load(topo.entry, 30.0, 1 * kSecond);
  // orders responds 502 once the MQ leg is known-dead; requests complete.
  u64 orders_handled = 0;
  for (auto* i : topo.app->instances_of(topo.services.at("orders"))) {
    orders_handled += i->handled();
  }
  EXPECT_GT(orders_handled + result.failed, 25u);
}

TEST(Microservice, CoroutinePseudoThreadsAreUniquePerRequest) {
  Topology topo = make_ecommerce();
  core::Deployment deepflow(topo.cluster.get());
  ASSERT_TRUE(deepflow.deploy());
  topo.app->run_constant_load(topo.entry, 20.0, 1 * kSecond);
  deepflow.finish();
  // inventory is coroutine-based: each of the 20 requests gets one root
  // coroutine. Coroutine ids are only unique per kernel (per host), which
  // is exactly why the server indexes pseudo-threads by (host, pid, ptid);
  // counting (host, id) pairs must therefore yield one per request.
  std::set<std::pair<std::string, PseudoThreadId>> pseudo_ids;
  for (const u64 id : deepflow.server().find_spans([](const agent::Span& s) {
         return s.pseudo_thread_id != 0 && s.from_server_side;
       })) {
    const agent::Span& span = deepflow.server().store().row(id)->span;
    pseudo_ids.emplace(span.host, span.pseudo_thread_id);
  }
  EXPECT_EQ(pseudo_ids.size(), 20u);
}

}  // namespace
}  // namespace deepflow::workloads
