#include "otelsim/tracer.h"

#include <gtest/gtest.h>

#include <vector>

namespace deepflow::otelsim {
namespace {

class TracerTest : public ::testing::Test {
 protected:
  ExportSink sink() {
    return [this](agent::Span&& s) { exported_.push_back(std::move(s)); };
  }
  std::vector<agent::Span> exported_;
};

TEST_F(TracerTest, FreshTraceGetsNewTraceId) {
  Tracer tracer("svc", "node-1", 10, sink());
  const ActiveSpan span = tracer.start_span("handle", "", 1'000);
  EXPECT_EQ(span.trace_id.size(), 32u);
  EXPECT_EQ(span.parent_span_id, 0u);
}

TEST_F(TracerTest, InjectedContextIsW3CShaped) {
  Tracer tracer("svc", "node-1", 10, sink());
  const ActiveSpan span = tracer.start_span("handle", "", 1'000);
  const std::string header = tracer.inject(span);
  EXPECT_EQ(header.size(), 55u);
  EXPECT_TRUE(header.starts_with("00-"));
  EXPECT_EQ(Tracer::trace_id_of(header), span.trace_id);
}

TEST_F(TracerTest, ContextPropagatesAcrossServices) {
  // Explicit context propagation: the downstream span inherits the trace
  // id and records the upstream span as parent.
  Tracer upstream("gateway", "node-1", 10, sink());
  Tracer downstream("backend", "node-2", 20, sink());
  const ActiveSpan parent = upstream.start_span("gw", "", 0);
  const std::string header = upstream.inject(parent);
  const ActiveSpan child = downstream.start_span("be", header, 100);
  EXPECT_EQ(child.trace_id, parent.trace_id);
  EXPECT_EQ(child.parent_span_id, parent.span_id);
}

TEST_F(TracerTest, ExportedSpanIsThirdPartyKind) {
  Tracer tracer("svc", "node-1", 10, sink());
  const ActiveSpan span = tracer.start_span("op", "", 1'000);
  tracer.end_span(span, 5'000, /*ok=*/false, /*status=*/500);
  ASSERT_EQ(exported_.size(), 1u);
  const agent::Span& out = exported_[0];
  EXPECT_EQ(out.kind, agent::SpanKind::kThirdParty);
  EXPECT_EQ(out.otel_trace_id, span.trace_id);
  EXPECT_EQ(out.start_ts, 1'000u);
  EXPECT_EQ(out.end_ts, 5'000u);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.status_code, 500u);
  EXPECT_EQ(out.host, "node-1");
  EXPECT_EQ(out.pid, 10u);
}

TEST_F(TracerTest, DistinctTracesDistinctIds) {
  Tracer tracer("svc", "node-1", 10, sink());
  const ActiveSpan a = tracer.start_span("op", "", 0);
  const ActiveSpan b = tracer.start_span("op", "", 0);
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_NE(a.span_id, b.span_id);
}

TEST_F(TracerTest, MalformedInboundContextStartsFresh) {
  Tracer tracer("svc", "node-1", 10, sink());
  for (const char* bad : {"", "garbage", "01-abc-def-00", "00-short-x-01"}) {
    const ActiveSpan span = tracer.start_span("op", bad, 0);
    EXPECT_EQ(span.trace_id.size(), 32u) << bad;
    EXPECT_EQ(span.parent_span_id, 0u) << bad;
  }
}

TEST_F(TracerTest, ExportCountTracked) {
  Tracer tracer("svc", "node-1", 10, sink());
  for (int i = 0; i < 3; ++i) {
    tracer.end_span(tracer.start_span("op", "", 0), 10);
  }
  EXPECT_EQ(tracer.spans_exported(), 3u);
  EXPECT_EQ(exported_.size(), 3u);
}

}  // namespace
}  // namespace deepflow::otelsim
