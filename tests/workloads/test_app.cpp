#include "workloads/app.h"

#include <gtest/gtest.h>

#include "workloads/topologies.h"

namespace deepflow::workloads {
namespace {

TEST(App, BuildPlacesReplicasAcrossNodes) {
  netsim::Cluster cluster;
  cluster.add_node("node-1");
  cluster.add_node("node-2");
  App app(&cluster);
  ServiceSpec spec;
  spec.name = "web";
  spec.replicas = 4;
  app.add_service(spec);
  app.build();
  EXPECT_EQ(cluster.registry().pod_count(), 4u);
  // Round-robin placement: replicas alternate nodes.
  EXPECT_NE(app.instance(0, 0)->pod().node, app.instance(0, 1)->pod().node);
}

TEST(App, LoadReachesOfferedRateWhenUnderProvisioned) {
  Topology topo = make_nginx_single_vm();
  const LoadResult result =
      topo.app->run_constant_load(topo.entry, 100.0, 1 * kSecond);
  EXPECT_EQ(result.sent, 100u);
  EXPECT_EQ(result.completed, 100u);
  EXPECT_NEAR(result.achieved_rps, 100.0, 1.0);
  EXPECT_GT(result.latency.p50(), 0u);
}

TEST(App, ThroughputSaturatesAtCapacity) {
  // nginx: 8 threads x ~1ms service => ~8k rps ceiling. Offer far more.
  Topology topo = make_nginx_single_vm();
  const LoadResult result =
      topo.app->run_constant_load(topo.entry, 40'000.0, 500 * kMillisecond,
                                  /*connections=*/64);
  EXPECT_LT(result.achieved_rps, 20'000.0);
  EXPECT_GT(result.achieved_rps, 2'000.0);
  EXPECT_LT(result.completed, result.sent);
}

TEST(App, LatencyRisesUnderOverload) {
  // Above the ~8k rps capacity (8 threads x ~1 ms) the backlog grows and
  // completion latency climbs well past the unloaded service time.
  Topology low = make_nginx_single_vm();
  const LoadResult light =
      low.app->run_constant_load(low.entry, 500.0, 1 * kSecond);
  Topology high = make_nginx_single_vm();
  const LoadResult heavy =
      high.app->run_constant_load(high.entry, 9'500.0, 1 * kSecond);
  EXPECT_GT(heavy.latency.p90(), 2 * light.latency.p90());
  EXPECT_LT(heavy.achieved_rps, 9'000.0);
}

TEST(App, CallChainExecutesDownstream) {
  Topology topo = make_spring_boot_demo();
  topo.app->run_constant_load(topo.entry, 50.0, 1 * kSecond);
  // Every service in the chain handled every request.
  for (const auto& [name, index] : topo.services) {
    u64 handled = 0;
    for (ServiceInstance* instance : topo.app->instances_of(index)) {
      handled += instance->handled();
    }
    EXPECT_EQ(handled, 50u) << name;
  }
}

TEST(App, FaultyReplicaServesErrors) {
  Topology topo = make_nginx_ingress_case(/*faulty_replica=*/0);
  const LoadResult result =
      topo.app->run_constant_load(topo.entry, 90.0, 1 * kSecond,
                                  /*connections=*/3);
  EXPECT_EQ(result.completed, 90u);
  // The faulty replica answered (with 404s) but never called downstream:
  // web handled fewer requests than ingress.
  u64 ingress_handled = 0;
  for (auto* i : topo.app->instances_of(topo.services.at("nginx-ingress"))) {
    ingress_handled += i->handled();
  }
  u64 web_handled = 0;
  for (auto* i : topo.app->instances_of(topo.services.at("web"))) {
    web_handled += i->handled();
  }
  EXPECT_EQ(ingress_handled, 90u);
  EXPECT_EQ(web_handled, 90u);  // faulty pod still forwards; 404 happens at ingress
}

TEST(App, InstrumentationExportsSpans) {
  Topology topo = make_spring_boot_demo();
  std::vector<agent::Span> exported;
  topo.app->instrument(topo.services.at("front"),
                       [&](agent::Span&& s) { exported.push_back(std::move(s)); });
  topo.app->run_constant_load(topo.entry, 20.0, 1 * kSecond);
  EXPECT_EQ(exported.size(), 20u);
  for (const auto& span : exported) {
    EXPECT_EQ(span.kind, agent::SpanKind::kThirdParty);
    EXPECT_FALSE(span.otel_trace_id.empty());
  }
}

TEST(App, InstrumentedChainSharesTraceIds) {
  Topology topo = make_spring_boot_demo();
  std::vector<agent::Span> exported;
  const auto sink = [&](agent::Span&& s) { exported.push_back(std::move(s)); };
  // Instrument the full HTTP chain: context propagates via traceparent.
  for (const char* name : {"gateway", "front", "cart", "product"}) {
    topo.app->instrument(topo.services.at(name), sink);
  }
  topo.app->run_constant_load(topo.entry, 5.0, 1 * kSecond);
  ASSERT_EQ(exported.size(), 20u);  // 4 instrumented services x 5 requests
  // Group by trace id: each trace must contain all 4 services' spans.
  std::map<std::string, int> by_trace;
  for (const auto& span : exported) ++by_trace[span.otel_trace_id];
  EXPECT_EQ(by_trace.size(), 5u);
  for (const auto& [trace_id, count] : by_trace) EXPECT_EQ(count, 4);
}

TEST(App, SdkCostSlowsInstrumentedService) {
  Topology plain = make_nginx_single_vm();
  const LoadResult base =
      plain.app->run_constant_load(plain.entry, 7'000.0, 1 * kSecond, 64);

  Topology traced = make_nginx_single_vm();
  otelsim::TracerConfig expensive;
  expensive.cost_per_span_ns = 300 * kMicrosecond;
  traced.app->instrument(traced.services.at("nginx"), [](agent::Span&&) {},
                         expensive);
  const LoadResult with_sdk =
      traced.app->run_constant_load(traced.entry, 7'000.0, 1 * kSecond, 64);
  EXPECT_LT(with_sdk.achieved_rps, base.achieved_rps);
}

TEST(App, ResetFaultFailsRequests) {
  Topology topo = make_mq_pipeline();
  // Reset every message crossing the rabbitmq pod's veth.
  topo.app->instance(topo.services.at("rabbitmq"), 0)
      ->pod()
      .veth->fault.reset_probability = 1.0;
  const LoadResult result =
      topo.app->run_constant_load(topo.entry, 20.0, 1 * kSecond);
  // Orders still respond (degraded 502s count as completions at the load
  // generator) or fail outright; either way the MQ leg failed.
  u64 failed_calls = 0;
  for (auto* i : topo.app->instances_of(topo.services.at("orders"))) {
    failed_calls += i->failed_calls();
  }
  EXPECT_GT(failed_calls + result.failed, 0u);
}

TEST(App, CoroutineServicesHandleConcurrency) {
  Topology topo = make_ecommerce();
  const LoadResult result =
      topo.app->run_constant_load(topo.entry, 200.0, 1 * kSecond);
  EXPECT_EQ(result.completed, 200u);
  u64 handled = 0;
  for (auto* i : topo.app->instances_of(topo.services.at("inventory"))) {
    handled += i->handled();
  }
  EXPECT_EQ(handled, 200u);
}

TEST(App, PolyglotTopologyServesAllProtocols) {
  Topology topo = make_polyglot();
  const LoadResult result =
      topo.app->run_constant_load(topo.entry, 50.0, 1 * kSecond);
  EXPECT_EQ(result.completed, 50u);
  for (const auto& [name, index] : topo.services) {
    u64 handled = 0;
    for (auto* i : topo.app->instances_of(index)) handled += i->handled();
    EXPECT_EQ(handled, 50u) << name;
  }
}

}  // namespace
}  // namespace deepflow::workloads
