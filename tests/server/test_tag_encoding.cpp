#include "server/tag_encoding.h"

#include <gtest/gtest.h>

namespace deepflow::server {
namespace {

class TagEncodingTest : public ::testing::Test {
 protected:
  TagEncodingTest() {
    const auto vpc = registry_.create_vpc("prod", "eu-west");
    const auto node = registry_.create_node(vpc, "node-7", "az-b");
    const auto service = registry_.create_service(vpc, "checkout");
    registry_.create_pod(node, "client-0", Ipv4::parse("10.0.0.1"), service,
                         {{"version", "v1"}, {"team", "pay"}});
    registry_.create_pod(node, "server-0", Ipv4::parse("10.0.0.2"), service,
                         {{"version", "v2"}});
    vpc_ = vpc;
  }

  agent::Span make_span() {
    agent::Span span;
    span.span_id = 1;
    span.tuple = FiveTuple{Ipv4::parse("10.0.0.1"), Ipv4::parse("10.0.0.2"),
                           40000, 80, L4Proto::kTcp};
    span.int_tags.vpc_id = vpc_;
    span.int_tags.client_ip = span.tuple.src_ip.addr;
    span.int_tags.server_ip = span.tuple.dst_ip.addr;
    return span;
  }

  netsim::ResourceRegistry registry_;
  netsim::VpcId vpc_ = 0;
};

TEST_F(TagEncodingTest, MaterializeProducesFullTagSet) {
  const auto tags = materialize_tags(make_span(), registry_);
  EXPECT_GE(tags.size(), 12u);
  const auto find = [&tags](const std::string& key) -> std::string {
    for (const auto& t : tags) {
      if (t.key == key) return t.value;
    }
    return {};
  };
  EXPECT_EQ(find("client.pod"), "client-0");
  EXPECT_EQ(find("server.pod"), "server-0");
  EXPECT_EQ(find("vpc"), "prod");
  EXPECT_EQ(find("region"), "eu-west");
  EXPECT_EQ(find("client.label.version"), "v1");
  EXPECT_EQ(find("server.label.version"), "v2");
  EXPECT_EQ(find("client.label.team"), "pay");
}

TEST_F(TagEncodingTest, EveryEncoderRoundTripsTheTags) {
  const agent::Span span = make_span();
  const auto reference = materialize_tags(span, registry_);
  for (const EncoderKind kind :
       {EncoderKind::kDirect, EncoderKind::kLowCardinality,
        EncoderKind::kSmart}) {
    auto encoder = make_encoder(kind);
    const std::string blob = encoder->encode(span, registry_);
    const auto decoded = encoder->decode(blob, span, registry_);
    EXPECT_EQ(decoded, reference) << encoder->name();
  }
}

TEST_F(TagEncodingTest, SmartBlobIsSmallestAndFixedWidth) {
  const agent::Span span = make_span();
  auto direct = make_encoder(EncoderKind::kDirect);
  auto low_card = make_encoder(EncoderKind::kLowCardinality);
  auto smart = make_encoder(EncoderKind::kSmart);
  const size_t direct_size = direct->encode(span, registry_).size();
  const size_t low_card_size = low_card->encode(span, registry_).size();
  const size_t smart_size = smart->encode(span, registry_).size();
  EXPECT_LT(smart_size, low_card_size);
  EXPECT_LT(low_card_size, direct_size);
  EXPECT_EQ(smart_size, 9 * sizeof(u32));  // pure integers, no strings
}

TEST_F(TagEncodingTest, LowCardinalityDictionaryAmortizes) {
  const agent::Span span = make_span();
  auto encoder = make_encoder(EncoderKind::kLowCardinality);
  encoder->encode(span, registry_);
  const u64 after_first = encoder->auxiliary_bytes();
  for (int i = 0; i < 100; ++i) encoder->encode(span, registry_);
  // Identical tag values: the dictionary must not grow.
  EXPECT_EQ(encoder->auxiliary_bytes(), after_first);
}

TEST_F(TagEncodingTest, DirectEncoderHasNoAuxiliaryState) {
  auto encoder = make_encoder(EncoderKind::kDirect);
  encoder->encode(make_span(), registry_);
  EXPECT_EQ(encoder->auxiliary_bytes(), 0u);
}

TEST_F(TagEncodingTest, UnknownEndpointsEncodeGracefully) {
  agent::Span span = make_span();
  span.tuple.dst_ip = Ipv4::parse("8.8.8.8");  // external endpoint
  span.int_tags.server_ip = span.tuple.dst_ip.addr;
  for (const EncoderKind kind :
       {EncoderKind::kDirect, EncoderKind::kLowCardinality,
        EncoderKind::kSmart}) {
    auto encoder = make_encoder(kind);
    const std::string blob = encoder->encode(span, registry_);
    const auto decoded = encoder->decode(blob, span, registry_);
    // Client-side tags still resolve; server-side ones are simply absent.
    bool has_client_pod = false, has_server_pod = false;
    for (const auto& t : decoded) {
      if (t.key == "client.pod") has_client_pod = true;
      if (t.key == "server.pod") has_server_pod = true;
    }
    EXPECT_TRUE(has_client_pod) << encoder->name();
    EXPECT_FALSE(has_server_pod) << encoder->name();
  }
}

TEST_F(TagEncodingTest, SharedInternerReproducesPrivateDictionaryBlobs) {
  // The low-cardinality encoder folded its private dictionary onto the
  // shared StringInterner; handles are assigned densely in first-intern
  // order, so a fresh shared interner must reproduce the historical blobs
  // byte for byte.
  auto shared = std::make_shared<StringInterner>();
  auto historical = make_encoder(EncoderKind::kLowCardinality);
  auto folded = make_encoder(EncoderKind::kLowCardinality, shared);
  agent::Span external = make_span();
  external.tuple.dst_ip = Ipv4::parse("8.8.8.8");
  external.int_tags.server_ip = external.tuple.dst_ip.addr;
  for (const agent::Span& span : {make_span(), external, make_span()}) {
    EXPECT_EQ(historical->encode(span, registry_),
              folded->encode(span, registry_));
  }
  EXPECT_EQ(historical->auxiliary_bytes(), folded->auxiliary_bytes());
}

TEST_F(TagEncodingTest, PrePopulatedInternerStillRoundTrips) {
  // An interner already holding agent-side strings (hosts, methods) hands
  // the encoder different ids than a fresh dictionary would — the decoded
  // tag set must be identical regardless.
  auto shared = std::make_shared<StringInterner>();
  shared->intern("node-7");
  shared->intern("GET");
  shared->intern("checkout");  // collides with a tag value the span carries
  auto encoder = make_encoder(EncoderKind::kLowCardinality, shared);
  const agent::Span span = make_span();
  const std::string blob = encoder->encode(span, registry_);
  EXPECT_EQ(encoder->decode(blob, span, registry_),
            materialize_tags(span, registry_));
}

TEST_F(TagEncodingTest, EncodersSharingOneInternerStayConsistent) {
  // Several shard encoders share one deployment-wide interner; ids minted
  // through one must resolve through another.
  auto shared = std::make_shared<StringInterner>();
  auto a = make_encoder(EncoderKind::kLowCardinality, shared);
  auto b = make_encoder(EncoderKind::kLowCardinality, shared);
  const agent::Span span = make_span();
  const std::string blob = a->encode(span, registry_);
  EXPECT_EQ(b->decode(blob, span, registry_),
            materialize_tags(span, registry_));
}

TEST_F(TagEncodingTest, DirectDecoderIgnoresCorruptTail) {
  auto encoder = make_encoder(EncoderKind::kDirect);
  std::string blob = encoder->encode(make_span(), registry_);
  blob += "garbage-without-separator";
  const auto decoded = encoder->decode(blob, make_span(), registry_);
  EXPECT_EQ(decoded, materialize_tags(make_span(), registry_));
}

}  // namespace
}  // namespace deepflow::server
