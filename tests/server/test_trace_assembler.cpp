#include "server/trace_assembler.h"

#include <gtest/gtest.h>

#include "server/span_store.h"

namespace deepflow::server {
namespace {

using agent::Span;
using agent::SpanKind;

/// Builds a synthetic request path: client sys span -> N net spans ->
/// server sys span, all sharing one request TCP sequence.
class AssemblerTest : public ::testing::Test {
 protected:
  AssemblerTest() : store_(EncoderKind::kSmart, &registry_) {}

  Span base_span(u64 id, TimestampNs start, TimestampNs end) {
    Span span;
    span.span_id = id;
    span.start_ts = start;
    span.end_ts = end;
    span.host = "node-1";
    span.pid = 10;
    return span;
  }

  Span client_span(u64 id, TcpSeq seq, TimestampNs start, TimestampNs end,
                   SystraceId systrace = 0) {
    Span span = base_span(id, start, end);
    span.kind = SpanKind::kSystem;
    span.from_server_side = false;
    span.req_tcp_seq = seq;
    span.systrace_id = systrace;
    return span;
  }

  Span server_span(u64 id, TcpSeq seq, TimestampNs start, TimestampNs end,
                   SystraceId systrace = 0) {
    Span span = base_span(id, start, end);
    span.kind = SpanKind::kSystem;
    span.from_server_side = true;
    span.req_tcp_seq = seq;
    span.systrace_id = systrace;
    span.host = "node-2";
    span.pid = 20;
    return span;
  }

  Span net_span(u64 id, TcpSeq seq, TimestampNs start, const char* device) {
    Span span = base_span(id, start, start + 100);
    span.kind = SpanKind::kNetwork;
    span.req_tcp_seq = seq;
    span.device_name = device;
    span.host = "";
    span.pid = 0;
    return span;
  }

  netsim::ResourceRegistry registry_;
  SpanStore store_;
};

TEST_F(AssemblerTest, UnknownStartYieldsEmptyTrace) {
  TraceAssembler assembler(&store_);
  EXPECT_TRUE(assembler.assemble(12345).spans.empty());
}

TEST_F(AssemblerTest, SingleSpanTrace) {
  store_.insert(client_span(1, 100, 0, 1'000));
  TraceAssembler assembler(&store_);
  const AssembledTrace trace = assembler.assemble(1);
  ASSERT_EQ(trace.spans.size(), 1u);
  EXPECT_EQ(trace.spans[0].span.parent_span_id, 0u);
  EXPECT_EQ(trace.roots(), std::vector<u64>{1});
}

TEST_F(AssemblerTest, TcpSeqChainsClientNetServer) {
  store_.insert(client_span(1, 500, 0, 10'000));
  store_.insert(net_span(2, 500, 1'000, "veth"));
  store_.insert(net_span(3, 500, 2'000, "tor"));
  store_.insert(server_span(4, 500, 3'000, 9'000));
  TraceAssembler assembler(&store_);
  const AssembledTrace trace = assembler.assemble(4);  // start anywhere
  ASSERT_EQ(trace.spans.size(), 4u);
  // Time-sorted output; parents follow the path order.
  EXPECT_EQ(trace.spans[0].span.span_id, 1u);
  EXPECT_EQ(trace.spans[1].span.parent_span_id, 1u);  // veth <- client
  EXPECT_EQ(trace.spans[2].span.parent_span_id, 2u);  // tor <- veth
  EXPECT_EQ(trace.spans[3].span.parent_span_id, 3u);  // server <- tor
}

TEST_F(AssemblerTest, ServerDirectlyUnderClientWithoutNetSpans) {
  store_.insert(client_span(1, 500, 0, 10'000));
  store_.insert(server_span(2, 500, 3'000, 9'000));
  TraceAssembler assembler(&store_);
  const AssembledTrace trace = assembler.assemble(1);
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_EQ(trace.spans[1].span.parent_span_id, 1u);
  EXPECT_EQ(trace.spans[1].parent_rule, 4u);  // rule 4: direct client-server
}

TEST_F(AssemblerTest, SystraceNestsOutboundCallInHandler) {
  // Server handles request (systrace 7) and makes a downstream call from
  // the same host+pid within the handling window.
  Span handler = server_span(1, 500, 0, 10'000, /*systrace=*/7);
  Span call = client_span(2, 900, 2'000, 5'000, /*systrace=*/7);
  call.host = handler.host;
  call.pid = handler.pid;
  store_.insert(handler);
  store_.insert(call);
  TraceAssembler assembler(&store_);
  const AssembledTrace trace = assembler.assemble(2);
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_EQ(trace.spans[1].span.span_id, 2u);
  EXPECT_EQ(trace.spans[1].span.parent_span_id, 1u);
  EXPECT_EQ(trace.spans[1].parent_rule, 6u);  // rule 6: systrace nesting
}

TEST_F(AssemblerTest, XRequestIdBridgesProxyThreads) {
  // Cross-thread proxy: inbound span and outbound span share only the
  // X-Request-ID (different systrace ids, e.g. different worker threads).
  Span inbound = server_span(1, 500, 0, 10'000, 7);
  inbound.x_request_id = "xrid-1";
  Span outbound = client_span(2, 900, 2'000, 5'000, 8);
  outbound.host = inbound.host;
  outbound.pid = inbound.pid;
  outbound.x_request_id = "xrid-1";
  store_.insert(inbound);
  store_.insert(outbound);
  TraceAssembler assembler(&store_);
  const AssembledTrace trace = assembler.assemble(1);
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_EQ(trace.spans[1].span.parent_span_id, 1u);
  EXPECT_EQ(trace.spans[1].parent_rule, 8u);
}

TEST_F(AssemblerTest, ThirdPartySpanNestsViaTraceId) {
  Span sys = server_span(1, 500, 0, 10'000, 7);
  sys.otel_trace_id = "abc123";
  Span otel = base_span(2, 1'000, 9'000);
  otel.kind = SpanKind::kThirdParty;
  otel.otel_trace_id = "abc123";
  otel.host = sys.host;
  otel.pid = sys.pid;
  store_.insert(sys);
  store_.insert(otel);
  TraceAssembler assembler(&store_);
  const AssembledTrace trace = assembler.assemble(1);
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_EQ(trace.spans[1].span.parent_span_id, 1u);
  EXPECT_EQ(trace.spans[1].parent_rule, 11u);
}

TEST_F(AssemblerTest, IterativeSearchFollowsTransitiveLinks) {
  // start -> (systrace) -> call -> (tcp seq) -> downstream server: needs
  // two search iterations to reach the third span.
  Span handler = server_span(1, 500, 0, 20'000, 7);
  Span call = client_span(2, 900, 2'000, 9'000, 7);
  call.host = handler.host;
  call.pid = handler.pid;
  Span downstream = server_span(3, 900, 4'000, 8'000, 55);
  downstream.host = "node-3";
  store_.insert(handler);
  store_.insert(call);
  store_.insert(downstream);
  TraceAssembler assembler(&store_);
  const AssembledTrace trace = assembler.assemble(1);
  EXPECT_EQ(trace.spans.size(), 3u);
  EXPECT_GE(trace.iterations_used, 2u);
}

TEST_F(AssemblerTest, IterationCapBoundsSearch) {
  // A long systrace/seq chain with a cap of 1 iteration stays partial.
  Span handler = server_span(1, 500, 0, 20'000, 7);
  Span call = client_span(2, 900, 2'000, 9'000, 7);
  call.host = handler.host;
  call.pid = handler.pid;
  Span downstream = server_span(3, 900, 4'000, 8'000, 55);
  store_.insert(handler);
  store_.insert(call);
  store_.insert(downstream);
  TraceAssembler capped(&store_, AssemblerConfig{.max_iterations = 1});
  EXPECT_LT(capped.assemble(1).spans.size(), 3u);
  TraceAssembler full(&store_);
  EXPECT_EQ(full.assemble(1).spans.size(), 3u);
}

TEST_F(AssemblerTest, UnrelatedSpansExcluded) {
  store_.insert(client_span(1, 500, 0, 1'000, 7));
  store_.insert(client_span(2, 999, 50'000, 60'000, 8));  // unrelated
  TraceAssembler assembler(&store_);
  EXPECT_EQ(assembler.assemble(1).spans.size(), 1u);
}

TEST_F(AssemblerTest, ParentGraphIsAcyclic) {
  // Pathological: identical timestamps and shared keys everywhere.
  for (u64 id = 1; id <= 5; ++id) {
    Span span = client_span(id, 500, 1'000, 2'000, 7);
    store_.insert(span);
  }
  TraceAssembler assembler(&store_);
  const AssembledTrace trace = assembler.assemble(1);
  ASSERT_EQ(trace.spans.size(), 5u);
  // Walk each parent chain; it must terminate within N steps.
  for (const auto& assembled : trace.spans) {
    u64 current = assembled.span.span_id;
    int hops = 0;
    while (current != 0 && hops <= 5) {
      u64 parent = 0;
      for (const auto& other : trace.spans) {
        if (other.span.span_id == current) {
          parent = other.span.parent_span_id;
          break;
        }
      }
      current = parent;
      ++hops;
    }
    EXPECT_LE(hops, 5);
  }
}

TEST_F(AssemblerTest, RenderProducesIndentedTree) {
  store_.insert(client_span(1, 500, 0, 10'000));
  store_.insert(server_span(2, 500, 3'000, 9'000));
  TraceAssembler assembler(&store_);
  const std::string rendered = assembler.assemble(1).render();
  EXPECT_NE(rendered.find("[sys]"), std::string::npos);
  EXPECT_NE(rendered.find("(server)"), std::string::npos);
  EXPECT_NE(rendered.find("  "), std::string::npos);  // indentation
}

}  // namespace
}  // namespace deepflow::server
