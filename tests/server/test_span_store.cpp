#include "server/span_store.h"

#include <gtest/gtest.h>

namespace deepflow::server {
namespace {

agent::Span make_span(u64 id, TimestampNs start) {
  agent::Span span;
  span.span_id = id;
  span.start_ts = start;
  span.end_ts = start + 1'000;
  span.host = "node-1";
  span.pid = 10;
  return span;
}

class SpanStoreTest : public ::testing::Test {
 protected:
  SpanStoreTest() : store_(EncoderKind::kSmart, &registry_) {}
  netsim::ResourceRegistry registry_;
  SpanStore store_;
};

TEST_F(SpanStoreTest, InsertAndRowLookup) {
  store_.insert(make_span(1, 100));
  ASSERT_NE(store_.row(1), nullptr);
  EXPECT_EQ(store_.row(1)->span.start_ts, 100u);
  EXPECT_EQ(store_.row(2), nullptr);
  EXPECT_EQ(store_.row_count(), 1u);
}

TEST_F(SpanStoreTest, SearchBySystraceId) {
  agent::Span a = make_span(1, 100);
  a.systrace_id = 42;
  agent::Span b = make_span(2, 200);
  b.systrace_id = 42;
  agent::Span c = make_span(3, 300);
  c.systrace_id = 99;
  store_.insert(a);
  store_.insert(b);
  store_.insert(c);
  SearchFilter filter;
  filter.systrace_ids.insert(42);
  const auto found = store_.search(filter);
  EXPECT_EQ(found.size(), 2u);
}

TEST_F(SpanStoreTest, SearchByTcpSeqCoversBothDirections) {
  agent::Span a = make_span(1, 100);
  a.req_tcp_seq = 1'000;
  a.resp_tcp_seq = 2'000;
  store_.insert(a);
  SearchFilter by_req;
  by_req.tcp_seqs.insert(1'000);
  EXPECT_EQ(store_.search(by_req).size(), 1u);
  SearchFilter by_resp;
  by_resp.tcp_seqs.insert(2'000);
  EXPECT_EQ(store_.search(by_resp).size(), 1u);
}

TEST_F(SpanStoreTest, SearchByXRequestIdAndOtelId) {
  agent::Span a = make_span(1, 100);
  a.x_request_id = "xrid-1";
  a.otel_trace_id = "deadbeef";
  store_.insert(a);
  SearchFilter filter;
  filter.x_request_ids.insert("xrid-1");
  EXPECT_EQ(store_.search(filter).size(), 1u);
  SearchFilter otel;
  otel.otel_trace_ids.insert("deadbeef");
  EXPECT_EQ(store_.search(otel).size(), 1u);
}

TEST_F(SpanStoreTest, SearchUnionsWithoutDuplicates) {
  agent::Span a = make_span(1, 100);
  a.systrace_id = 42;
  a.x_request_id = "xrid-1";
  store_.insert(a);
  SearchFilter filter;
  filter.systrace_ids.insert(42);
  filter.x_request_ids.insert("xrid-1");
  EXPECT_EQ(store_.search(filter).size(), 1u);  // one span, two index hits
}

TEST_F(SpanStoreTest, PseudoThreadKeyIncludesHostAndPid) {
  agent::Span a = make_span(1, 100);
  a.pseudo_thread_id = 7;
  agent::Span b = make_span(2, 200);
  b.pseudo_thread_id = 7;
  b.host = "node-2";  // same ptid on a different host: distinct key
  store_.insert(a);
  store_.insert(b);
  SearchFilter filter;
  filter.pseudo_thread_keys.insert(pseudo_thread_key(a));
  EXPECT_EQ(store_.search(filter).size(), 1u);
}

TEST_F(SpanStoreTest, ZeroAttributesNotIndexed) {
  // systrace 0, seq 0, empty strings must not pollute the indexes.
  store_.insert(make_span(1, 100));
  SearchFilter filter;
  filter.systrace_ids.insert(0);
  filter.tcp_seqs.insert(0);
  filter.x_request_ids.insert("");
  EXPECT_TRUE(store_.search(filter).empty());
}

TEST_F(SpanStoreTest, SpanListFiltersAndOrdersByTime) {
  store_.insert(make_span(3, 300));
  store_.insert(make_span(1, 100));
  store_.insert(make_span(2, 200));
  store_.insert(make_span(4, 999'999));
  const auto in_window = store_.span_list(100, 300);
  ASSERT_EQ(in_window.size(), 3u);
  EXPECT_EQ(in_window[0], 1u);
  EXPECT_EQ(in_window[1], 2u);
  EXPECT_EQ(in_window[2], 3u);
}

TEST_F(SpanStoreTest, BlobBytesAccumulate) {
  const auto vpc = registry_.create_vpc("v");
  const auto node = registry_.create_node(vpc, "n");
  registry_.create_pod(node, "p", Ipv4::parse("10.0.0.1"));
  agent::Span span = make_span(1, 100);
  span.int_tags.client_ip = Ipv4::parse("10.0.0.1").addr;
  store_.insert(span);
  EXPECT_GT(store_.blob_bytes(), 0u);
  EXPECT_EQ(store_.encoder_name(), "smart");
}

TEST_F(SpanStoreTest, SearchReturnsSortedIds) {
  // Deterministic output order regardless of hash-set iteration order:
  // insert in descending id order, expect ascending results.
  for (const u64 id : {9u, 5u, 7u, 2u, 8u}) {
    agent::Span span = make_span(id, id * 100);
    span.systrace_id = 42;
    store_.insert(span);
  }
  SearchFilter filter;
  filter.systrace_ids.insert(42);
  const auto found = store_.search(filter);
  EXPECT_EQ(found, (std::vector<u64>{2, 5, 7, 8, 9}));
}

TEST_F(SpanStoreTest, ShardRoutedLookupTouchesOneShard) {
  SpanStore sharded(EncoderKind::kSmart, &registry_, 8);
  constexpr size_t kSpans = 64;
  for (u64 id = 1; id <= kSpans; ++id) {
    agent::Span span = make_span(id, id * 100);
    span.systrace_id = id;  // spread across shards
    sharded.insert(span);
  }
  const StoreQueryCounters before = sharded.query_counters();
  for (u64 id = 1; id <= kSpans; ++id) {
    ASSERT_NE(sharded.row(id), nullptr) << id;
    EXPECT_EQ(sharded.row(id)->span.span_id, id);
  }
  const StoreQueryCounters after = sharded.query_counters();
  // The id directory routes each lookup to exactly one shard: one shard
  // lock per row() call, not one per shard probed.
  EXPECT_EQ(after.rows_touched - before.rows_touched, 2 * kSpans);
  EXPECT_EQ(after.shard_locks - before.shard_locks, 2 * kSpans);
  // Unknown ids resolve through the directory without locking any shard.
  EXPECT_EQ(sharded.row(999'999), nullptr);
  EXPECT_EQ(sharded.query_counters().shard_locks, after.shard_locks);
}

TEST_F(SpanStoreTest, MaterializeFindsRowsOnEveryShardLayout) {
  for (const size_t shards : {size_t{1}, size_t{4}, size_t{8}}) {
    SpanStore store(EncoderKind::kSmart, &registry_, shards);
    std::vector<u64> ids;
    for (u64 i = 1; i <= 16; ++i) {
      agent::Span span = make_span(i, i * 10);
      span.systrace_id = i * 3;
      ids.push_back(store.insert(span));
    }
    for (const u64 id : ids) {
      EXPECT_EQ(store.materialize(id).span_id, id) << shards;
    }
    EXPECT_EQ(store.materialize(424242).span_id, 0u) << shards;
  }
}

TEST_F(SpanStoreTest, QueryCountersAccumulate) {
  agent::Span span = make_span(1, 100);
  span.systrace_id = 42;
  store_.insert(span);
  const StoreQueryCounters before = store_.query_counters();
  SearchFilter filter;
  filter.systrace_ids.insert(42);
  filter.tcp_seqs.insert(9'999);  // miss
  const auto found = store_.search(filter);
  ASSERT_EQ(found.size(), 1u);
  store_.row(1);
  const StoreQueryCounters after = store_.query_counters();
  EXPECT_EQ(after.searches - before.searches, 1u);
  EXPECT_EQ(after.search_keys - before.search_keys, 2u);
  EXPECT_EQ(after.search_hits - before.search_hits, 1u);
  EXPECT_EQ(after.rows_touched - before.rows_touched, 1u);
  EXPECT_GE(after.shard_locks, before.shard_locks + 2);  // search + row
}

TEST_F(SpanStoreTest, MaterializeDecodesTags) {
  const auto vpc = registry_.create_vpc("v");
  const auto node = registry_.create_node(vpc, "n");
  registry_.create_pod(node, "pod-x", Ipv4::parse("10.0.0.1"));
  agent::Span span = make_span(1, 100);
  span.tuple.src_ip = Ipv4::parse("10.0.0.1");
  span.int_tags.client_ip = span.tuple.src_ip.addr;
  store_.insert(span);
  const agent::Span loaded = store_.materialize(1);
  bool found = false;
  for (const auto& tag : loaded.tags) {
    if (tag.key == "client.pod" && tag.value == "pod-x") found = true;
  }
  EXPECT_TRUE(found);
  // Rows themselves keep no decoded tags.
  EXPECT_TRUE(store_.row(1)->span.tags.empty());
}

}  // namespace
}  // namespace deepflow::server
