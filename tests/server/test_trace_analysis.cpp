#include "server/trace_analysis.h"

#include <gtest/gtest.h>

#include "core/deployment.h"
#include "workloads/topologies.h"

namespace deepflow::server {
namespace {

AssembledSpan make(u64 id, u64 parent, bool server_side, TcpSeq seq,
                   TimestampNs start, TimestampNs end,
                   const std::string& host, const std::string& pod = {}) {
  AssembledSpan s;
  s.span.span_id = id;
  s.span.parent_span_id = parent;
  s.span.kind = agent::SpanKind::kSystem;
  s.span.from_server_side = server_side;
  s.span.req_tcp_seq = seq;
  s.span.start_ts = start;
  s.span.end_ts = end;
  s.span.host = host;
  s.span.pid = 1;
  if (!pod.empty()) {
    s.span.tags.push_back({server_side ? "server.pod" : "client.pod", pod});
  }
  return s;
}

TEST(TraceAnalysis, EmptyTrace) {
  const TraceAnalysis a = analyze(AssembledTrace{});
  EXPECT_EQ(a.total_ns, 0u);
  EXPECT_TRUE(a.components.empty());
}

TEST(TraceAnalysis, SingleEdgeDecomposition) {
  AssembledTrace trace;
  // Client sees 1000us; server served for 600us => network 400us.
  trace.spans.push_back(make(1, 0, false, 77, 0, 1'000'000, "n1", "client"));
  trace.spans.push_back(make(2, 1, true, 77, 200'000, 800'000, "n2", "srv"));
  const TraceAnalysis a = analyze(trace);
  EXPECT_EQ(a.total_ns, 1'000'000u);
  ASSERT_EQ(a.components.size(), 1u);
  EXPECT_EQ(a.components[0].component, "srv");
  EXPECT_EQ(a.components[0].self_ns, 600'000u);
  ASSERT_EQ(a.edges.size(), 1u);
  EXPECT_EQ(a.edges[0].network_ns, 400'000u);
  EXPECT_EQ(a.compute_ns, 600'000u);
}

TEST(TraceAnalysis, NestedCallsSubtractFromSelfTime) {
  AssembledTrace trace;
  // srv-a handles for 1000us, of which 300us is a nested call to srv-b
  // (server-side 200us -> network 100us).
  trace.spans.push_back(make(1, 0, false, 10, 0, 1'200'000, "n1", "client"));
  trace.spans.push_back(make(2, 1, true, 10, 100'000, 1'100'000, "n2", "srv-a"));
  trace.spans.push_back(make(3, 2, false, 20, 400'000, 700'000, "n2", "srv-a"));
  trace.spans.push_back(make(4, 3, true, 20, 450'000, 650'000, "n3", "srv-b"));
  const TraceAnalysis a = analyze(trace);
  ASSERT_EQ(a.components.size(), 2u);
  // srv-a self = 1000us - 300us nested call = 700us.
  EXPECT_EQ(a.components[0].component, "srv-a");
  EXPECT_EQ(a.components[0].self_ns, 700'000u);
  EXPECT_EQ(a.components[1].component, "srv-b");
  EXPECT_EQ(a.components[1].self_ns, 200'000u);
  // Two edges: client->srv-a (200us) and srv-a->srv-b (100us).
  EXPECT_EQ(a.edges.size(), 2u);
  EXPECT_EQ(a.network_ns, 300'000u);
}

TEST(TraceAnalysis, SlowComponentRanksFirst) {
  // Full-pipeline check: plant a slowdown, confirm the analysis ranks the
  // slowed pod first by self time.
  workloads::Topology topo = workloads::make_spring_boot_demo();
  topo.app->instance(topo.services.at("cart"), 0)->set_slowdown(20.0);
  core::Deployment deepflow(topo.cluster.get());
  ASSERT_TRUE(deepflow.deploy());
  topo.app->run_constant_load(topo.entry, 10.0, 1 * kSecond);
  deepflow.finish();

  const auto starts = deepflow.server().find_spans([](const agent::Span& s) {
    return s.kind == agent::SpanKind::kSystem && !s.from_server_side &&
           s.endpoint == "/";
  });
  ASSERT_FALSE(starts.empty());
  const TraceAnalysis a =
      analyze(deepflow.server().query_trace(starts.front()));
  ASSERT_FALSE(a.components.empty());
  EXPECT_EQ(a.components.front().component, "cart-0");
  // Decomposition accounts for most of the end-to-end time.
  EXPECT_GT(a.compute_ns + a.network_ns, a.total_ns / 2);
  EXPECT_LE(a.compute_ns + a.network_ns, a.total_ns + a.total_ns / 10);
  // Render produces the expected sections.
  const std::string rendered = a.render();
  EXPECT_NE(rendered.find("component self-time"), std::string::npos);
  EXPECT_NE(rendered.find("cart-0"), std::string::npos);
}

TEST(TraceAnalysis, NetworkHeavyTraceShowsEdgeTime) {
  workloads::Topology topo = workloads::make_spring_boot_demo();
  // Slow the ToR: every cross-node edge gains transit time.
  topo.cluster->tor()->fault.extra_latency_ns = 2 * kMillisecond;
  core::Deployment deepflow(topo.cluster.get());
  ASSERT_TRUE(deepflow.deploy());
  topo.app->run_constant_load(topo.entry, 10.0, 1 * kSecond);
  deepflow.finish();
  const auto starts = deepflow.server().find_spans([](const agent::Span& s) {
    return s.kind == agent::SpanKind::kSystem && !s.from_server_side &&
           s.endpoint == "/";
  });
  ASSERT_FALSE(starts.empty());
  const TraceAnalysis a =
      analyze(deepflow.server().query_trace(starts.front()));
  // Network share dominates compute now (5 cross-node edges x 4ms RTT).
  EXPECT_GT(a.network_ns, a.compute_ns);
}

}  // namespace
}  // namespace deepflow::server
