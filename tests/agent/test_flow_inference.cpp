#include "agent/flow_inference.h"

#include <gtest/gtest.h>

#include "protocols/http1.h"
#include "protocols/redis.h"

namespace deepflow::agent {
namespace {

class FlowInferenceTest : public ::testing::Test {
 protected:
  FlowInferenceTest()
      : registry_(protocols::ProtocolRegistry::with_builtin()) {}

  protocols::ProtocolRegistry registry_;
};

TEST_F(FlowInferenceTest, InfersOncePerFlow) {
  FlowProtocolCache cache(&registry_);
  const std::string http = protocols::build_http1_request("GET", "/");
  const auto* first = cache.parser_for(1, http);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->protocol(), protocols::L7Protocol::kHttp1);
  EXPECT_EQ(cache.inference_runs(), 1u);

  // Subsequent messages hit the cache — even ones that would infer as a
  // different protocol (the verdict is sticky per connection).
  const auto* second = cache.parser_for(1, protocols::build_redis_ok());
  EXPECT_EQ(second, first);
  EXPECT_EQ(cache.inference_runs(), 1u);
  EXPECT_EQ(cache.cache_hits(), 1u);
}

TEST_F(FlowInferenceTest, FlowsAreIndependent) {
  FlowProtocolCache cache(&registry_);
  const auto* http =
      cache.parser_for(1, protocols::build_http1_request("GET", "/"));
  const auto* redis =
      cache.parser_for(2, protocols::build_redis_command({"GET", "k"}));
  ASSERT_NE(http, nullptr);
  ASSERT_NE(redis, nullptr);
  EXPECT_EQ(http->protocol(), protocols::L7Protocol::kHttp1);
  EXPECT_EQ(redis->protocol(), protocols::L7Protocol::kRedis);
  EXPECT_EQ(cache.tracked_flows(), 2u);
}

TEST_F(FlowInferenceTest, RetriesUntilAttemptBudgetThenGivesUp) {
  FlowInferenceConfig config;
  config.max_attempts = 3;
  FlowProtocolCache cache(&registry_, config);
  // Ciphertext never matches; after 3 scans the flow is marked hopeless.
  const std::string junk = "\x91\x92\x93\x94\x95\x96\x97\x98";
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(cache.parser_for(1, junk), nullptr);
  }
  EXPECT_EQ(cache.inference_runs(), 3u);
}

TEST_F(FlowInferenceTest, LateInferenceAfterInitialGarbage) {
  // First message unparseable (e.g. a partial frame), second one clean: the
  // flow still gets classified within the attempt budget.
  FlowProtocolCache cache(&registry_);
  EXPECT_EQ(cache.parser_for(1, "\x81\x82"), nullptr);
  const auto* parser =
      cache.parser_for(1, protocols::build_http1_request("GET", "/"));
  ASSERT_NE(parser, nullptr);
  EXPECT_EQ(parser->protocol(), protocols::L7Protocol::kHttp1);
}

TEST_F(FlowInferenceTest, ReinferEveryMessageAblation) {
  FlowInferenceConfig config;
  config.reinfer_every_message = true;
  FlowProtocolCache cache(&registry_, config);
  const std::string http = protocols::build_http1_request("GET", "/");
  for (int i = 0; i < 5; ++i) cache.parser_for(1, http);
  EXPECT_EQ(cache.inference_runs(), 5u);
  EXPECT_EQ(cache.cache_hits(), 0u);
}

}  // namespace
}  // namespace deepflow::agent
