#include "agent/span_batch.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "agent/span_builder.h"

namespace deepflow::agent {
namespace {

Span make_span(u64 id) {
  Span span;
  span.span_id = id;
  span.kind = SpanKind::kNetwork;
  span.systrace_id = 40 + id;
  span.pseudo_thread_id = 7;
  span.x_request_id = "xrid-" + std::to_string(id);
  span.otel_trace_id = "0af7651916cd43dd8448eb211c80319c";
  span.req_tcp_seq = 1000 + id;
  span.resp_tcp_seq = 2000 + id;
  span.host = "node-" + std::to_string(id % 3);
  span.from_server_side = (id % 2) == 0;
  span.device_id = 9;
  span.device_name = "tor-1";
  span.pid = 5;
  span.tid = 50;
  span.start_ts = 1'000 * id;
  span.end_ts = 1'000 * id + 500;
  span.protocol = protocols::L7Protocol::kHttp1;
  span.method = "GET";
  span.endpoint = "/cart";
  span.status_code = 200;
  span.ok = (id % 5) != 0;
  span.incomplete = (id % 7) == 0;
  span.tuple = FiveTuple{Ipv4::parse("10.0.0.1"), Ipv4::parse("10.0.0.2"),
                         40000, 80, L4Proto::kTcp};
  span.int_tags.vpc_id = 3;
  span.int_tags.client_ip = span.tuple.src_ip.addr;
  span.int_tags.server_ip = span.tuple.dst_ip.addr;
  span.parent_span_id = id / 2;
  return span;
}

void expect_span_eq(const Span& a, const Span& b) {
  EXPECT_EQ(a.span_id, b.span_id);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.systrace_id, b.systrace_id);
  EXPECT_EQ(a.pseudo_thread_id, b.pseudo_thread_id);
  EXPECT_EQ(a.x_request_id, b.x_request_id);
  EXPECT_EQ(a.otel_trace_id, b.otel_trace_id);
  EXPECT_EQ(a.req_tcp_seq, b.req_tcp_seq);
  EXPECT_EQ(a.resp_tcp_seq, b.resp_tcp_seq);
  EXPECT_EQ(a.host, b.host);
  EXPECT_EQ(a.from_server_side, b.from_server_side);
  EXPECT_EQ(a.device_id, b.device_id);
  EXPECT_EQ(a.device_name, b.device_name);
  EXPECT_EQ(a.pid, b.pid);
  EXPECT_EQ(a.tid, b.tid);
  EXPECT_EQ(a.start_ts, b.start_ts);
  EXPECT_EQ(a.end_ts, b.end_ts);
  EXPECT_EQ(a.protocol, b.protocol);
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.endpoint, b.endpoint);
  EXPECT_EQ(a.status_code, b.status_code);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.incomplete, b.incomplete);
  EXPECT_EQ(a.lost_placeholder, b.lost_placeholder);
  EXPECT_EQ(a.tuple, b.tuple);
  EXPECT_EQ(a.int_tags.vpc_id, b.int_tags.vpc_id);
  EXPECT_EQ(a.int_tags.client_ip, b.int_tags.client_ip);
  EXPECT_EQ(a.int_tags.server_ip, b.int_tags.server_ip);
  EXPECT_EQ(a.tags, b.tags);
  EXPECT_EQ(a.parent_span_id, b.parent_span_id);
}

TEST(SpanBatch, PushSpanMaterializeRoundTrip) {
  auto interner = std::make_shared<StringInterner>();
  SpanBatch batch(interner);
  std::vector<Span> originals;
  for (u64 id = 1; id <= 64; ++id) originals.push_back(make_span(id));
  for (const Span& span : originals) batch.push_span(span);
  ASSERT_EQ(batch.size(), originals.size());
  for (size_t i = 0; i < originals.size(); ++i) {
    expect_span_eq(batch.materialize(i), originals[i]);
  }
}

TEST(SpanBatch, ColumnsMatchRows) {
  auto interner = std::make_shared<StringInterner>();
  SpanBatch batch(interner);
  for (u64 id = 1; id <= 16; ++id) batch.push_span(make_span(id));
  for (size_t i = 0; i < batch.size(); ++i) {
    const Span row = batch.materialize(i);
    EXPECT_EQ(batch.span_ids()[i], row.span_id);
    EXPECT_EQ(batch.kinds()[i], row.kind);
    EXPECT_EQ(batch.start_ts()[i], row.start_ts);
    EXPECT_EQ(batch.end_ts()[i], row.end_ts);
    EXPECT_EQ(batch.duration(i), row.duration());
    EXPECT_EQ(batch.from_server_side(i), row.from_server_side);
    EXPECT_EQ(batch.ok(i), row.ok);
    EXPECT_EQ(batch.incomplete(i), row.incomplete);
    EXPECT_EQ(batch.host(i), row.host);
    EXPECT_EQ(batch.device_name(i), row.device_name);
    EXPECT_EQ(batch.method(i), row.method);
    EXPECT_EQ(batch.endpoint(i), row.endpoint);
    EXPECT_EQ(batch.x_request_id(i), row.x_request_id);
    EXPECT_EQ(batch.otel_trace_id(i), row.otel_trace_id);
    EXPECT_EQ(batch.tuples()[i], row.tuple);
  }
}

TEST(SpanBatch, LowCardinalityStringsShareHandles) {
  auto interner = std::make_shared<StringInterner>();
  SpanBatch batch(interner);
  for (u64 id = 0; id < 100; ++id) {
    Span span = make_span(id);
    span.host = "same-host";
    span.method = "GET";
    batch.push_span(span);
  }
  for (size_t i = 1; i < batch.size(); ++i) {
    EXPECT_EQ(batch.host_handle(i), batch.host_handle(0));
  }
  // 100 spans, but the dictionary holds each distinct string once.
  EXPECT_LT(interner->size(), 10u);
}

TEST(SpanBatch, CardinalityCapOverflowsToArenaWithFullFidelity) {
  // ISSUE 9 satellite: when the shared interner's cap bounces a string, the
  // batch falls back to its arena overflow table (kOverflowBit handles) and
  // every span still materializes byte-identically — degradation costs
  // per-batch copies, never data loss.
  auto interner = std::make_shared<StringInterner>();
  interner->set_max_entries(4);
  SpanBatch batch(interner);
  std::vector<Span> originals;
  for (u64 id = 1; id <= 64; ++id) {
    Span span = make_span(id);
    // Distinct per-span values in every low-cardinality column: blows
    // through the 4-entry cap almost immediately.
    span.host = "host-" + std::to_string(id);
    span.device_name = "dev-" + std::to_string(id);
    span.method = "M" + std::to_string(id);
    span.endpoint = "/ep/" + std::to_string(id);
    originals.push_back(span);
    batch.push_span(span);
  }
  EXPECT_EQ(interner->size(), 4u);
  EXPECT_GT(interner->overflow_count(), 0u);
  // Later rows carry overflow handles, and they resolve through the batch.
  EXPECT_NE(batch.host_handle(63) & SpanBatch::kOverflowBit, 0u);
  for (size_t i = 0; i < originals.size(); ++i) {
    expect_span_eq(batch.materialize(i), originals[i]);
  }
  // Column accessors agree with materialization for overflow rows too.
  EXPECT_EQ(batch.host(63), originals[63].host);
  EXPECT_EQ(batch.method(63), originals[63].method);
}

TEST(SpanBatch, ExtraTagsSurviveRoundTrip) {
  auto interner = std::make_shared<StringInterner>();
  SpanBatch batch(interner);
  Span with_tags = make_span(1);
  with_tags.tags = {{"team", "pay"}, {"version", "v2"}};
  batch.push_span(make_span(2));  // row 0: no tags
  batch.push_span(with_tags);     // row 1: sparse side channel
  batch.push_span(make_span(3));  // row 2: no tags
  EXPECT_TRUE(batch.materialize(0).tags.empty());
  EXPECT_EQ(batch.materialize(1).tags, with_tags.tags);
  EXPECT_TRUE(batch.materialize(2).tags.empty());
}

TEST(SpanBatch, ClearKeepsCapacityWarm) {
  auto interner = std::make_shared<StringInterner>();
  SpanBatch batch(interner, 16);
  for (u64 id = 1; id <= 256; ++id) batch.push_span(make_span(id));
  const size_t arena_capacity = batch.arena_capacity_bytes();
  batch.clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.arena_capacity_bytes(), arena_capacity);  // blocks kept
  // Refill to the same occupancy: no arena growth in steady state.
  for (u64 id = 1; id <= 256; ++id) batch.push_span(make_span(id));
  EXPECT_EQ(batch.size(), 256u);
  EXPECT_EQ(batch.arena_capacity_bytes(), arena_capacity);
  expect_span_eq(batch.materialize(0), make_span(1));
}

class SpanBatchBuilderTest : public ::testing::Test {
 protected:
  SpanBatchBuilderTest() {
    const auto vpc = registry_.create_vpc("prod");
    const auto node = registry_.create_node(vpc, "node-1");
    registry_.create_pod(node, "client-0", Ipv4::parse("10.0.0.1"));
    registry_.create_pod(node, "server-0", Ipv4::parse("10.0.0.2"));
  }

  Session make_session(u64 k) {
    Session session;
    session.flow_key = k;
    session.request.record.enter_ts = 1'000 * k;
    session.request.record.exit_ts = 1'000 * k + 500;
    session.request.record.tcp_seq = 111 + k;
    session.request.record.pid = 5;
    session.request.record.tid = 50;
    session.request.record.direction = kernelsim::Direction::kIngress;
    session.request.record.tuple =
        FiveTuple{Ipv4::parse("10.0.0.1"), Ipv4::parse("10.0.0.2"), 40000, 80,
                  L4Proto::kTcp};
    session.request.parsed.type = protocols::MessageType::kRequest;
    session.request.parsed.protocol = protocols::L7Protocol::kHttp1;
    session.request.parsed.method = "GET";
    session.request.parsed.endpoint = "/cart";
    session.request.parsed.x_request_id = "xrid-" + std::to_string(k);
    session.request.systrace_id = 77 + k;

    MessageData response;
    response.record.enter_ts = 1'000 * k + 3'000;
    response.record.exit_ts = 1'000 * k + 3'500;
    response.record.tcp_seq = 222 + k;
    response.parsed.type = protocols::MessageType::kResponse;
    response.parsed.status_code = 200;
    response.parsed.ok = true;
    session.response = std::move(response);
    return session;
  }

  netsim::ResourceRegistry registry_;
};

TEST_F(SpanBatchBuilderTest, BuildIntoMatchesBuildFieldForField) {
  SpanBuilder builder("node-1", &registry_);
  auto interner = std::make_shared<StringInterner>();
  SpanBatch batch(interner);
  for (u64 k = 1; k <= 8; ++k) {
    const Session session = make_session(k);
    Span reference = builder.build(session);
    builder.build_into(session, batch);
    // Each build draws a fresh global span id; align before comparing.
    Span from_batch = batch.materialize(batch.size() - 1);
    reference.span_id = from_batch.span_id;
    expect_span_eq(from_batch, reference);
  }
}

}  // namespace
}  // namespace deepflow::agent
