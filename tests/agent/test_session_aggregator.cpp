#include "agent/session_aggregator.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rand.h"

namespace deepflow::agent {
namespace {

MessageData make_msg(protocols::MessageType type, TimestampNs ts,
                     u64 stream = 0,
                     protocols::SessionMatchMode mode =
                         protocols::SessionMatchMode::kPipeline,
                     u32 cpu = 0) {
  MessageData msg;
  msg.record.enter_ts = ts;
  msg.record.exit_ts = ts + 1'000;
  msg.record.cpu = cpu;
  msg.parsed.type = type;
  msg.parsed.protocol = protocols::L7Protocol::kHttp1;
  msg.parsed.stream_id = stream;
  msg.mode = mode;
  return msg;
}

class Collector {
 public:
  SessionAggregator::SessionSink sink() {
    return [this](Session&& s) { sessions.push_back(std::move(s)); };
  }
  std::vector<Session> sessions;
};

TEST(SessionAggregator, PipelinePairsInOrderAtFlush) {
  SessionAggregator agg;
  Collector out;
  agg.offer(1, make_msg(protocols::MessageType::kRequest, 100), out.sink());
  agg.offer(1, make_msg(protocols::MessageType::kResponse, 200), out.sink());
  agg.flush(out.sink());
  ASSERT_EQ(out.sessions.size(), 1u);
  EXPECT_TRUE(out.sessions[0].response.has_value());
  EXPECT_EQ(out.sessions[0].request.record.enter_ts, 100u);
  EXPECT_EQ(out.sessions[0].response->record.enter_ts, 200u);
  EXPECT_EQ(agg.matched_sessions(), 1u);
}

TEST(SessionAggregator, EagerPairingAfterWatermarkPasses) {
  SessionAggregatorConfig config;
  config.pairing_slack_ns = 10 * kMillisecond;
  SessionAggregator agg(config);
  Collector out;
  agg.offer(1, make_msg(protocols::MessageType::kRequest, 100), out.sink());
  agg.offer(1, make_msg(protocols::MessageType::kResponse, 200), out.sink());
  EXPECT_TRUE(out.sessions.empty());  // watermark not yet past the slack
  // A much later message on the same CPU pushes the watermark forward.
  agg.offer(2, make_msg(protocols::MessageType::kRequest, 100 * kMillisecond),
            out.sink());
  ASSERT_EQ(out.sessions.size(), 1u);  // the old pair emitted eagerly
}

TEST(SessionAggregator, PipelineFifoAcrossMultipleOutstanding) {
  SessionAggregator agg;
  Collector out;
  agg.offer(1, make_msg(protocols::MessageType::kRequest, 100), out.sink());
  agg.offer(1, make_msg(protocols::MessageType::kRequest, 200), out.sink());
  agg.offer(1, make_msg(protocols::MessageType::kResponse, 300), out.sink());
  agg.offer(1, make_msg(protocols::MessageType::kResponse, 400), out.sink());
  agg.flush(out.sink());
  ASSERT_EQ(out.sessions.size(), 2u);
  EXPECT_EQ(out.sessions[0].request.record.enter_ts, 100u);
  EXPECT_EQ(out.sessions[0].response->record.enter_ts, 300u);
  EXPECT_EQ(out.sessions[1].request.record.enter_ts, 200u);
  EXPECT_EQ(out.sessions[1].response->record.enter_ts, 400u);
}

TEST(SessionAggregator, CrossCpuDisorderStillPairsFifo) {
  // Drain order scrambled across CPUs: response of request 2 drains before
  // request 1's response. Timestamp-ordered pairing must not mispair.
  SessionAggregator agg;
  Collector out;
  agg.offer(1, make_msg(protocols::MessageType::kRequest, 100, 0,
                        protocols::SessionMatchMode::kPipeline, 0),
            out.sink());
  agg.offer(1, make_msg(protocols::MessageType::kResponse, 1'000, 0,
                        protocols::SessionMatchMode::kPipeline, 1),
            out.sink());  // response of request 2, drained early
  agg.offer(1, make_msg(protocols::MessageType::kRequest, 900, 0,
                        protocols::SessionMatchMode::kPipeline, 1),
            out.sink());
  agg.offer(1, make_msg(protocols::MessageType::kResponse, 150, 0,
                        protocols::SessionMatchMode::kPipeline, 0),
            out.sink());  // response of request 1, drained late
  agg.flush(out.sink());
  ASSERT_EQ(out.sessions.size(), 2u);
  EXPECT_EQ(out.sessions[0].request.record.enter_ts, 100u);
  EXPECT_EQ(out.sessions[0].response->record.enter_ts, 150u);
  EXPECT_EQ(out.sessions[1].request.record.enter_ts, 900u);
  EXPECT_EQ(out.sessions[1].response->record.enter_ts, 1'000u);
}

TEST(SessionAggregator, ParallelMatchesByStreamIdRegardlessOfOrder) {
  SessionAggregator agg;
  Collector out;
  const auto mode = protocols::SessionMatchMode::kParallel;
  // Responses arrive before requests and out of stream order.
  agg.offer(1, make_msg(protocols::MessageType::kResponse, 500, 7, mode),
            out.sink());
  agg.offer(1, make_msg(protocols::MessageType::kResponse, 600, 9, mode),
            out.sink());
  agg.offer(1, make_msg(protocols::MessageType::kRequest, 100, 9, mode),
            out.sink());
  agg.offer(1, make_msg(protocols::MessageType::kRequest, 200, 7, mode),
            out.sink());
  ASSERT_EQ(out.sessions.size(), 2u);
  for (const Session& s : out.sessions) {
    EXPECT_EQ(s.request.parsed.stream_id, s.response->parsed.stream_id);
  }
}

TEST(SessionAggregator, FlowsDoNotCrossContaminate) {
  SessionAggregator agg;
  Collector out;
  agg.offer(1, make_msg(protocols::MessageType::kRequest, 100), out.sink());
  agg.offer(2, make_msg(protocols::MessageType::kResponse, 200), out.sink());
  agg.flush(out.sink());
  // Flow 1's request expires unmatched; flow 2's response is an orphan.
  ASSERT_EQ(out.sessions.size(), 1u);
  EXPECT_FALSE(out.sessions[0].response.has_value());
  EXPECT_EQ(agg.expired_requests(), 1u);
  EXPECT_EQ(agg.dropped_orphan_responses(), 1u);
}

TEST(SessionAggregator, ExpiredRequestSurfacesAsIncompleteSession) {
  // The paper: missing responses are unexpected execution terminations.
  SessionAggregatorConfig config;
  config.slot_ns = 1 * kSecond;
  config.slot_count = 2;
  SessionAggregator agg(config);
  Collector out;
  agg.offer(1, make_msg(protocols::MessageType::kRequest, 100), out.sink());
  // Advance far beyond the horizon; the request is evicted.
  agg.offer(1, make_msg(protocols::MessageType::kRequest, 10 * kSecond),
            out.sink());
  ASSERT_GE(out.sessions.size(), 1u);
  EXPECT_FALSE(out.sessions[0].response.has_value());
  EXPECT_EQ(agg.expired_requests(), 1u);
  agg.flush(out.sink());
}

TEST(SessionAggregator, OrphanResponseNeverBecomesSession) {
  SessionAggregator agg;
  Collector out;
  agg.offer(1, make_msg(protocols::MessageType::kResponse, 100), out.sink());
  agg.flush(out.sink());
  EXPECT_TRUE(out.sessions.empty());
  EXPECT_EQ(agg.dropped_orphan_responses(), 1u);
}

TEST(SessionAggregator, UnknownTypeIgnored) {
  SessionAggregator agg;
  Collector out;
  agg.offer(1, make_msg(protocols::MessageType::kUnknown, 100), out.sink());
  agg.flush(out.sink());
  EXPECT_TRUE(out.sessions.empty());
  EXPECT_EQ(agg.pending_count(), 0u);
}

TEST(SessionAggregator, StreamIdReuseExpiresStaleEntry) {
  SessionAggregator agg;
  Collector out;
  const auto mode = protocols::SessionMatchMode::kParallel;
  agg.offer(1, make_msg(protocols::MessageType::kRequest, 100, 5, mode),
            out.sink());
  // Same stream id used again before any response: the first is stale.
  agg.offer(1, make_msg(protocols::MessageType::kRequest, 200, 5, mode),
            out.sink());
  agg.offer(1, make_msg(protocols::MessageType::kResponse, 300, 5, mode),
            out.sink());
  agg.flush(out.sink());
  // One incomplete (the stale request) + one matched.
  ASSERT_EQ(out.sessions.size(), 2u);
  EXPECT_FALSE(out.sessions[0].response.has_value());
  EXPECT_TRUE(out.sessions[1].response.has_value());
  EXPECT_EQ(out.sessions[1].request.record.enter_ts, 200u);
}

// Property sweep: random interleavings of N pipeline request/response pairs
// always produce exactly N sessions with correctly ordered pairs at flush.
class AggregatorShuffleTest : public ::testing::TestWithParam<u64> {};

TEST_P(AggregatorShuffleTest, AllPairsRecoveredFromAnyDrainOrder) {
  constexpr int kPairs = 50;
  std::vector<MessageData> messages;
  for (int i = 0; i < kPairs; ++i) {
    const TimestampNs base = static_cast<TimestampNs>(i) * 10'000;
    messages.push_back(make_msg(protocols::MessageType::kRequest, base, 0,
                                protocols::SessionMatchMode::kPipeline,
                                static_cast<u32>(i % 4)));
    messages.push_back(make_msg(protocols::MessageType::kResponse, base + 5'000,
                                0, protocols::SessionMatchMode::kPipeline,
                                static_cast<u32>(i % 4)));
  }
  // Deterministic shuffle from the seed.
  Rng rng(GetParam());
  for (size_t i = messages.size(); i > 1; --i) {
    std::swap(messages[i - 1], messages[rng.below(i)]);
  }
  SessionAggregator agg;
  Collector out;
  for (auto& msg : messages) agg.offer(42, std::move(msg), out.sink());
  agg.flush(out.sink());
  ASSERT_EQ(out.sessions.size(), static_cast<size_t>(kPairs));
  for (const Session& s : out.sessions) {
    ASSERT_TRUE(s.response.has_value());
    // Each request pairs with the response 5us after it — its own.
    EXPECT_EQ(s.response->record.enter_ts, s.request.record.enter_ts + 5'000);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregatorShuffleTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace deepflow::agent
