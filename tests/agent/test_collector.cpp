#include "agent/collector.h"

#include <gtest/gtest.h>

namespace deepflow::agent {
namespace {

class CollectorTest : public ::testing::Test {
 protected:
  CollectorTest() : kernel_(loop_, "node-1", nullptr) {
    pid_ = kernel_.tasks().create_process("svc");
    tid_ = kernel_.tasks().create_thread(pid_);
    tuple_ = FiveTuple{Ipv4::parse("10.0.0.1"), Ipv4::parse("10.0.0.2"),
                       40000, 80, L4Proto::kTcp};
    sock_ = kernel_.open_socket(pid_, tuple_);
  }

  std::vector<ebpf::SyscallEventRecord> drain(Collector& collector) {
    std::vector<ebpf::SyscallEventRecord> records;
    collector.syscall_events().drain(
        1 << 20, [&](ebpf::SyscallEventRecord&& r) {
          records.push_back(std::move(r));
        });
    return records;
  }

  EventLoop loop_;
  kernelsim::Kernel kernel_;
  Pid pid_ = 0;
  Tid tid_ = 0;
  FiveTuple tuple_;
  SocketId sock_ = 0;
};

TEST_F(CollectorTest, DeploysTwentyProgramsForTenAbis) {
  Collector collector(&kernel_);
  ASSERT_TRUE(collector.deploy_syscall_programs()) << collector.error();
  // enter + exit per ABI, each registering one kernel hook.
  EXPECT_EQ(kernel_.hooks().attached_count(), 20u);
}

TEST_F(CollectorTest, MergesEnterAndExitIntoOneRecord) {
  Collector collector(&kernel_);
  ASSERT_TRUE(collector.deploy_syscall_programs());
  const auto out = kernel_.sys_send(tid_, sock_, "GET / HTTP/1.1\r\n\r\n",
                                    kernelsim::SyscallAbi::kWrite, 1'000);
  const auto records = drain(collector);
  ASSERT_EQ(records.size(), 1u);
  const auto& r = records[0];
  EXPECT_EQ(r.pid, pid_);
  EXPECT_EQ(r.tid, tid_);
  EXPECT_EQ(std::string(r.comm), "svc");
  EXPECT_EQ(r.socket_id, sock_);
  EXPECT_EQ(r.enter_ts, out.enter_ts);
  EXPECT_EQ(r.exit_ts, out.exit_ts);
  EXPECT_EQ(r.tcp_seq, out.tcp_seq);
  EXPECT_EQ(r.abi, kernelsim::SyscallAbi::kWrite);
  EXPECT_EQ(r.direction, kernelsim::Direction::kEgress);
  EXPECT_EQ(r.payload_view(), "GET / HTTP/1.1\r\n\r\n");
}

TEST_F(CollectorTest, ContinuationSyscallsSkipped) {
  Collector collector(&kernel_);
  ASSERT_TRUE(collector.deploy_syscall_programs());
  kernel_.sys_send(tid_, sock_, "part1", kernelsim::SyscallAbi::kWrite, 0,
                   /*first_of_message=*/true);
  kernel_.sys_send(tid_, sock_, "part2", kernelsim::SyscallAbi::kWrite, 100,
                   /*first_of_message=*/false);
  EXPECT_EQ(drain(collector).size(), 1u);
}

TEST_F(CollectorTest, PerThreadRecordsStayOnOneCpu) {
  Collector collector(&kernel_);
  ASSERT_TRUE(collector.deploy_syscall_programs());
  for (int i = 0; i < 10; ++i) {
    kernel_.sys_send(tid_, sock_, "x", kernelsim::SyscallAbi::kWrite,
                     static_cast<TimestampNs>(i) * 1'000);
  }
  const auto records = drain(collector);
  ASSERT_EQ(records.size(), 10u);
  for (const auto& r : records) EXPECT_EQ(r.cpu, records[0].cpu);
  // And in per-thread causal order.
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_GT(records[i].enter_ts, records[i - 1].enter_ts);
  }
}

TEST_F(CollectorTest, SslUprobesEmitPlaintextRecords) {
  Collector collector(&kernel_);
  ASSERT_TRUE(collector.deploy_syscall_programs());
  ASSERT_TRUE(collector.deploy_ssl_programs()) << collector.error();
  const SocketId tls_sock =
      kernel_.open_socket(pid_, tuple_, L4Proto::kTcp, /*tls=*/true);
  kernel_.sys_send(tid_, tls_sock, "GET /secret HTTP/1.1\r\n\r\n",
                   kernelsim::SyscallAbi::kWrite, 0);
  const auto records = drain(collector);
  // One ssl_write record (plaintext) + one write record (ciphertext).
  ASSERT_EQ(records.size(), 2u);
  const auto& ssl = records[0].abi == kernelsim::SyscallAbi::kSslWrite
                        ? records[0]
                        : records[1];
  const auto& raw = records[0].abi == kernelsim::SyscallAbi::kSslWrite
                        ? records[1]
                        : records[0];
  EXPECT_EQ(ssl.payload_view(), "GET /secret HTTP/1.1\r\n\r\n");
  EXPECT_EQ(raw.abi, kernelsim::SyscallAbi::kWrite);
  EXPECT_NE(raw.payload_view(), ssl.payload_view());
}

TEST_F(CollectorTest, NicCaptureEmitsPacketRecords) {
  Collector collector(&kernel_);
  netsim::Device device;
  device.id = 3;
  device.kind = netsim::DeviceKind::kVSwitch;
  device.name = "node-1/vswitch";
  ASSERT_TRUE(collector.deploy_nic_capture(&device)) << collector.error();

  kernelsim::WireMessage msg;
  msg.tuple = tuple_;
  msg.tcp_seq = 777;
  msg.payload = "GET / HTTP/1.1\r\n\r\n";
  msg.total_bytes = msg.payload.size();
  netsim::TapContext ctx;
  ctx.device = &device;
  ctx.message = &msg;
  ctx.timestamp = 5'000;
  device.fire_taps(ctx);

  std::vector<ebpf::PacketEventRecord> records;
  collector.packet_events().drain(100, [&](ebpf::PacketEventRecord&& r) {
    records.push_back(std::move(r));
  });
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].device_id, 3u);
  EXPECT_EQ(std::string(records[0].device_name), "node-1/vswitch");
  EXPECT_EQ(records[0].tcp_seq, 777u);
  EXPECT_EQ(records[0].timestamp, 5'000u);
  EXPECT_EQ(records[0].payload_view(), "GET / HTTP/1.1\r\n\r\n");
}

TEST_F(CollectorTest, UndeployStopsCollection) {
  Collector collector(&kernel_);
  ASSERT_TRUE(collector.deploy_syscall_programs());
  collector.undeploy();
  kernel_.sys_send(tid_, sock_, "x", kernelsim::SyscallAbi::kWrite, 0);
  EXPECT_TRUE(drain(collector).empty());
  EXPECT_EQ(kernel_.hooks().attached_count(), 0u);
}

TEST_F(CollectorTest, PerfOverflowSurfacesAsLoss) {
  CollectorConfig config;
  config.cpu_count = 1;
  config.perf_ring_capacity = 4;
  Collector collector(&kernel_, config);
  ASSERT_TRUE(collector.deploy_syscall_programs());
  for (int i = 0; i < 20; ++i) {
    kernel_.sys_send(tid_, sock_, "x", kernelsim::SyscallAbi::kWrite,
                     static_cast<TimestampNs>(i));
  }
  EXPECT_GT(collector.syscall_events().lost(), 0u);
  EXPECT_EQ(drain(collector).size(), 4u);
}

TEST_F(CollectorTest, TracepointModeAlsoCollects) {
  CollectorConfig config;
  config.use_tracepoints = true;
  Collector collector(&kernel_, config);
  ASSERT_TRUE(collector.deploy_syscall_programs()) << collector.error();
  kernel_.sys_send(tid_, sock_, "x", kernelsim::SyscallAbi::kWrite, 0);
  EXPECT_EQ(drain(collector).size(), 1u);
}

}  // namespace
}  // namespace deepflow::agent
