// SpanTransport unit tests: direct-mode pass-through, batching, priority
// shedding under overflow, retry/backoff through a lossy channel, and the
// duplicate/delay/skew fault paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "agent/transport.h"

namespace deepflow::agent {
namespace {

Span make_span(u64 id, SpanKind kind = SpanKind::kSystem) {
  Span span;
  span.span_id = id;
  span.kind = kind;
  span.start_ts = 1000 * id;
  span.end_ts = 1000 * id + 500;
  span.host = "node";
  return span;
}

struct Capture {
  std::vector<std::vector<u64>> batches;
  SpanTransport::BatchSink sink() {
    return [this](std::vector<Span>&& spans) {
      std::vector<u64> ids;
      ids.reserve(spans.size());
      for (const Span& s : spans) ids.push_back(s.span_id);
      batches.push_back(std::move(ids));
    };
  }
  std::vector<u64> all_ids() const {
    std::vector<u64> out;
    for (const auto& b : batches) out.insert(out.end(), b.begin(), b.end());
    return out;
  }
};

TEST(SpanTransport, DirectModeDeliversImmediatelyInOrder) {
  Capture cap;
  TransportConfig config;
  config.direct = true;
  SpanTransport transport(config, cap.sink());
  for (u64 id = 1; id <= 5; ++id) transport.offer(make_span(id));
  ASSERT_EQ(cap.batches.size(), 5u);
  for (u64 id = 1; id <= 5; ++id) {
    EXPECT_EQ(cap.batches[id - 1], std::vector<u64>{id});
  }
  EXPECT_EQ(transport.backlog(), 0u);
  EXPECT_EQ(transport.stats().offered, 5u);
  EXPECT_EQ(transport.stats().delivered_spans, 5u);
}

TEST(SpanTransport, BatchesFullFlightsAndFlushesTheTail) {
  Capture cap;
  TransportConfig config;
  config.batch_spans = 4;
  SpanTransport transport(config, cap.sink());
  for (u64 id = 1; id <= 10; ++id) transport.offer(make_span(id));
  EXPECT_EQ(cap.batches.size(), 0u);  // nothing leaves before a pump
  transport.pump();
  ASSERT_EQ(cap.batches.size(), 2u);  // two full flights of 4
  EXPECT_EQ(cap.batches[0], (std::vector<u64>{1, 2, 3, 4}));
  EXPECT_EQ(cap.batches[1], (std::vector<u64>{5, 6, 7, 8}));
  EXPECT_EQ(transport.backlog(), 2u);
  transport.flush();
  ASSERT_EQ(cap.batches.size(), 3u);
  EXPECT_EQ(cap.batches[2], (std::vector<u64>{9, 10}));
  EXPECT_EQ(transport.backlog(), 0u);
}

TEST(SpanTransport, OverflowShedsNetBeforeSysBeforeApp) {
  Capture cap;
  TransportConfig config;
  config.queue_capacity = 3;
  config.batch_spans = 64;  // keep everything queued
  SpanTransport transport(config, cap.sink());
  transport.offer(make_span(1, SpanKind::kNetwork));
  transport.offer(make_span(2, SpanKind::kSystem));
  transport.offer(make_span(3, SpanKind::kApplication));
  // Queue full. An incoming app span evicts the net span (lowest class).
  transport.offer(make_span(4, SpanKind::kApplication));
  EXPECT_EQ(transport.stats().shed_net, 1u);
  // Now {sys, app, app}: an incoming sys span sheds ITSELF (no strictly
  // lower class present — equal priority keeps the older span).
  transport.offer(make_span(5, SpanKind::kSystem));
  EXPECT_EQ(transport.stats().shed_sys, 1u);
  // An incoming app span evicts the remaining sys span.
  transport.offer(make_span(6, SpanKind::kApplication));
  EXPECT_EQ(transport.stats().shed_sys, 2u);
  // All-app queue: an incoming net span is shed immediately.
  transport.offer(make_span(7, SpanKind::kNetwork));
  EXPECT_EQ(transport.stats().shed_net, 2u);
  transport.flush();
  const std::vector<u64> delivered = cap.all_ids();
  EXPECT_EQ(delivered, (std::vector<u64>{3, 4, 6}));
  EXPECT_EQ(transport.stats().shed_total(), 4u);
}

TEST(SpanTransport, RetriesRestoreEverythingThroughALossyChannel) {
  FaultInjector inject(21);
  FaultProfile lossy;
  lossy.drop = 0.5;
  inject.configure(FaultSite::kTransportSend, lossy);

  Capture cap;
  TransportConfig config;
  config.batch_spans = 4;
  config.max_attempts = 30;
  SpanTransport transport(config, cap.sink(), &inject);
  for (u64 id = 1; id <= 40; ++id) transport.offer(make_span(id));
  transport.flush();

  std::vector<u64> delivered = cap.all_ids();
  std::sort(delivered.begin(), delivered.end());
  std::vector<u64> expected(40);
  for (u64 id = 1; id <= 40; ++id) expected[id - 1] = id;
  EXPECT_EQ(delivered, expected);  // every span exactly once
  EXPECT_GT(transport.stats().send_drops, 0u);
  EXPECT_EQ(transport.stats().retries, transport.stats().send_drops);
  EXPECT_EQ(transport.stats().gave_up_spans, 0u);
}

TEST(SpanTransport, FireAndForgetGivesUpOnFirstDrop) {
  FaultInjector inject(22);
  FaultProfile lossy;
  lossy.drop = 1.0;
  inject.configure(FaultSite::kTransportSend, lossy);

  Capture cap;
  TransportConfig config;
  config.batch_spans = 4;
  config.retries = false;
  SpanTransport transport(config, cap.sink(), &inject);
  for (u64 id = 1; id <= 8; ++id) transport.offer(make_span(id));
  transport.flush();
  EXPECT_TRUE(cap.batches.empty());
  EXPECT_EQ(transport.stats().gave_up_batches, 2u);
  EXPECT_EQ(transport.stats().gave_up_spans, 8u);
  EXPECT_EQ(transport.stats().retries, 0u);
  EXPECT_EQ(transport.backlog(), 0u);
}

TEST(SpanTransport, GivesUpAfterMaxAttemptsOnABlackholedChannel) {
  FaultInjector inject(23);
  FaultProfile blackhole;
  blackhole.drop = 1.0;
  inject.configure(FaultSite::kTransportSend, blackhole);

  Capture cap;
  TransportConfig config;
  config.batch_spans = 4;
  config.max_attempts = 5;
  SpanTransport transport(config, cap.sink(), &inject);
  for (u64 id = 1; id <= 4; ++id) transport.offer(make_span(id));
  transport.flush();  // must terminate despite 100% loss
  EXPECT_TRUE(cap.batches.empty());
  EXPECT_EQ(transport.stats().batches_sent, 5u);  // initial + 4 retries
  EXPECT_EQ(transport.stats().retries, 4u);
  EXPECT_EQ(transport.stats().gave_up_batches, 1u);
  EXPECT_EQ(transport.stats().gave_up_spans, 4u);
}

TEST(SpanTransport, BackoffDelaysRetriesExponentiallyWithCap) {
  FaultInjector inject(24);
  FaultProfile blackhole;
  blackhole.drop = 1.0;
  inject.configure(FaultSite::kTransportSend, blackhole);

  Capture cap;
  TransportConfig config;
  config.batch_spans = 2;
  config.max_attempts = 4;
  config.backoff_base_ticks = 2;
  config.backoff_cap_ticks = 4;
  config.jitter_ticks = 0;  // deterministic schedule for the assertion
  SpanTransport transport(config, cap.sink(), &inject);
  transport.offer(make_span(1));
  transport.offer(make_span(2));
  // Attempt schedule: pump 1 sends (drop), backoff 2 -> due tick 3,
  // attempt 2 at tick 3 (drop), backoff 4 -> due 7, attempt 3 at tick 7
  // (drop), backoff capped at 4 -> due 11, attempt 4 at tick 11: give up.
  std::vector<u64> attempt_ticks;
  u64 sent_before = 0;
  for (u64 tick = 1; tick <= 12; ++tick) {
    transport.pump();
    if (transport.stats().batches_sent > sent_before) {
      attempt_ticks.push_back(tick);
      sent_before = transport.stats().batches_sent;
    }
  }
  EXPECT_EQ(attempt_ticks, (std::vector<u64>{1, 3, 7, 11}));
  EXPECT_EQ(transport.stats().gave_up_batches, 1u);
}

TEST(SpanTransport, DuplicateFaultDeliversTheFlightTwice) {
  FaultInjector inject(25);
  FaultProfile dupey;
  dupey.duplicate = 1.0;
  inject.configure(FaultSite::kTransportSend, dupey);

  Capture cap;
  TransportConfig config;
  config.batch_spans = 3;
  SpanTransport transport(config, cap.sink(), &inject);
  for (u64 id = 1; id <= 3; ++id) transport.offer(make_span(id));
  transport.pump();
  ASSERT_EQ(cap.batches.size(), 2u);
  EXPECT_EQ(cap.batches[0], cap.batches[1]);
  EXPECT_EQ(transport.stats().duplicated_batches, 1u);
  EXPECT_EQ(transport.stats().delivered_spans, 6u);
}

TEST(SpanTransport, DelayFaultReordersAcrossFlights) {
  FaultInjector inject(26);
  FaultProfile delaying;
  delaying.delay = 1.0;
  delaying.max_delay_ticks = 3;
  inject.configure(FaultSite::kTransportSend, delaying);

  Capture cap;
  TransportConfig config;
  config.batch_spans = 2;
  SpanTransport transport(config, cap.sink(), &inject);
  for (u64 id = 1; id <= 6; ++id) transport.offer(make_span(id));
  transport.flush();
  EXPECT_EQ(transport.stats().delayed_batches, 3u);
  // Nothing lost, nothing duplicated — only held back.
  std::vector<u64> delivered = cap.all_ids();
  std::sort(delivered.begin(), delivered.end());
  EXPECT_EQ(delivered, (std::vector<u64>{1, 2, 3, 4, 5, 6}));
}

TEST(SpanTransport, TimestampSkewCountsCorruptedSpans) {
  FaultInjector inject(27);
  FaultProfile skewing;
  skewing.corrupt_ts = 1.0;
  skewing.max_ts_skew_ns = 100;
  inject.configure(FaultSite::kTransportSend, skewing);

  std::vector<Span> got;
  TransportConfig config;
  config.batch_spans = 2;
  SpanTransport transport(
      config,
      [&got](std::vector<Span>&& spans) {
        for (Span& s : spans) got.push_back(std::move(s));
      },
      &inject);
  transport.offer(make_span(1));
  transport.offer(make_span(2));
  transport.flush();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(transport.stats().ts_corrupted_spans, 2u);
  // Duration survives: the whole flight carries one skew.
  EXPECT_EQ(got[0].end_ts - got[0].start_ts, 500u);
}

TEST(SpanTransport, HighWatermarkTracksQueueDepth) {
  Capture cap;
  TransportConfig config;
  config.batch_spans = 8;
  SpanTransport transport(config, cap.sink());
  for (u64 id = 1; id <= 5; ++id) transport.offer(make_span(id));
  EXPECT_EQ(transport.stats().queue_high_watermark, 5u);
  transport.flush();
  EXPECT_EQ(transport.stats().queue_high_watermark, 5u);
}

TEST(SpanTransport, LanedTransportsKeepIsolatedFateAndJitterSchedules) {
  // The federated deployment opens one transport per (agent, server) link,
  // each on its own lane. Pinned property: adding ANOTHER laned transport
  // to the same injector — and running it first — must not perturb an
  // existing lane's delivery schedule (channel fates AND retry jitter), so
  // replication fan-out never changes what an established link delivers.
  FaultProfile lossy;
  lossy.drop = 0.5;
  TransportConfig config;
  config.batch_spans = 4;
  config.max_attempts = 30;
  config.lane = 1;

  // Solo run: lane 1 alone on the injector.
  FaultInjector solo_inject(21);
  solo_inject.configure(FaultSite::kTransportSend, lossy);
  Capture solo_cap;
  SpanTransport solo(config, solo_cap.sink(), &solo_inject);
  for (u64 id = 1; id <= 40; ++id) solo.offer(make_span(id));
  solo.flush();

  // Paired run: a second transport on lane 2 drains its own traffic
  // through the SAME injector before lane 1 moves at all.
  FaultInjector pair_inject(21);
  pair_inject.configure(FaultSite::kTransportSend, lossy);
  Capture noisy_cap;
  TransportConfig noisy_config = config;
  noisy_config.lane = 2;
  SpanTransport noisy(noisy_config, noisy_cap.sink(), &pair_inject);
  for (u64 id = 100; id <= 160; ++id) noisy.offer(make_span(id));
  noisy.flush();

  Capture pair_cap;
  SpanTransport paired(config, pair_cap.sink(), &pair_inject);
  for (u64 id = 1; id <= 40; ++id) paired.offer(make_span(id));
  paired.flush();

  // Batch-for-batch identical delivery, and the same fate/retry counters.
  EXPECT_EQ(solo_cap.batches, pair_cap.batches);
  EXPECT_EQ(solo.stats().send_drops, paired.stats().send_drops);
  EXPECT_EQ(solo.stats().retries, paired.stats().retries);
  EXPECT_EQ(solo.stats().batches_sent, paired.stats().batches_sent);
  EXPECT_EQ(solo.stats().delivered_spans, paired.stats().delivered_spans);
  // The interfering lane really did consume channel draws.
  EXPECT_GT(noisy.stats().send_drops, 0u);
}

TEST(SpanTransport, SharedLaneSchedulesAreUndisturbedByLanedPeers) {
  // Historical single-server deployments keep every transport on the
  // shared lane. A laned peer (a federation link) draining through the
  // same injector must leave the shared stream exactly where it was.
  FaultProfile lossy;
  lossy.drop = 0.5;
  TransportConfig config;
  config.batch_spans = 4;
  config.max_attempts = 30;

  FaultInjector solo_inject(33);
  solo_inject.configure(FaultSite::kTransportSend, lossy);
  Capture solo_cap;
  SpanTransport solo(config, solo_cap.sink(), &solo_inject);
  for (u64 id = 1; id <= 40; ++id) solo.offer(make_span(id));
  solo.flush();

  FaultInjector pair_inject(33);
  pair_inject.configure(FaultSite::kTransportSend, lossy);
  Capture laned_cap;
  TransportConfig laned_config = config;
  laned_config.lane = 17;
  SpanTransport laned(laned_config, laned_cap.sink(), &pair_inject);
  for (u64 id = 100; id <= 140; ++id) laned.offer(make_span(id));
  laned.flush();

  Capture shared_cap;
  SpanTransport shared(config, shared_cap.sink(), &pair_inject);
  for (u64 id = 1; id <= 40; ++id) shared.offer(make_span(id));
  shared.flush();

  EXPECT_EQ(solo_cap.batches, shared_cap.batches);
  EXPECT_EQ(solo.stats().send_drops, shared.stats().send_drops);
  EXPECT_EQ(solo.stats().retries, shared.stats().retries);
}

// ---- Exact-capacity admission boundary (ISSUE 9 satellite). --------------

TEST(SpanTransportBoundary, ExactCapacitySamePriorityShedsIncomingDeterministically) {
  // At queue == queue_capacity exactly, an incoming span of the SAME
  // priority as everything queued must itself be shed (the older span is
  // closer to delivery) — refusal, never eviction. Repeated runs are
  // byte-identical: no hidden randomness in the admission path.
  std::vector<std::vector<u64>> runs;
  for (int run = 0; run < 3; ++run) {
    Capture cap;
    TransportConfig config;
    config.queue_capacity = 4;
    config.batch_spans = 64;
    SpanTransport transport(config, cap.sink());
    for (u64 id = 1; id <= 4; ++id) transport.offer(make_span(id));
    EXPECT_EQ(transport.stats().shed_total(), 0u);  // exactly at capacity
    transport.offer(make_span(5));                  // one past: tie -> incoming
    EXPECT_EQ(transport.stats().shed_sys, 1u);
    transport.offer(make_span(6));
    EXPECT_EQ(transport.stats().shed_sys, 2u);
    transport.flush();
    runs.push_back(cap.all_ids());
  }
  EXPECT_EQ(runs[0], (std::vector<u64>{1, 2, 3, 4}));
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(SpanTransportBoundary, FullQueueRefusesLowerClassInsteadOfEvicting) {
  // A full queue of app spans refuses incoming sys and net spans outright:
  // eviction only ever goes DOWN the value ladder, so nothing queued moves.
  Capture cap;
  TransportConfig config;
  config.queue_capacity = 3;
  config.batch_spans = 64;
  SpanTransport transport(config, cap.sink());
  for (u64 id = 1; id <= 3; ++id) {
    transport.offer(make_span(id, SpanKind::kApplication));
  }
  transport.offer(make_span(4, SpanKind::kSystem));
  transport.offer(make_span(5, SpanKind::kNetwork));
  EXPECT_EQ(transport.stats().shed_sys, 1u);
  EXPECT_EQ(transport.stats().shed_net, 1u);
  transport.flush();
  EXPECT_EQ(cap.all_ids(), (std::vector<u64>{1, 2, 3}));
}

TEST(SpanTransportBoundary, EvictionTakesTheOldestOfTheLowestClass) {
  // Victim selection at the boundary: the OLDEST span of the lowest class
  // present goes first (deterministic queue-order tie-break within class).
  Capture cap;
  TransportConfig config;
  config.queue_capacity = 3;
  config.batch_spans = 64;
  SpanTransport transport(config, cap.sink());
  transport.offer(make_span(1, SpanKind::kNetwork));
  transport.offer(make_span(2, SpanKind::kNetwork));
  transport.offer(make_span(3, SpanKind::kSystem));
  transport.offer(make_span(4, SpanKind::kApplication));  // evicts net #1
  EXPECT_EQ(transport.stats().shed_net, 1u);
  transport.offer(make_span(5, SpanKind::kApplication));  // evicts net #2
  EXPECT_EQ(transport.stats().shed_net, 2u);
  transport.flush();
  EXPECT_EQ(cap.all_ids(), (std::vector<u64>{3, 4, 5}));
}

TEST(SpanTransportBoundary, QueueByteBudgetShedsAtAdmission) {
  const size_t span_bytes = approx_span_bytes(make_span(1));
  Capture cap;
  TransportConfig config;
  config.queue_capacity = 1024;  // count bound out of the way
  config.batch_spans = 64;
  config.queue_budget_bytes = 2 * span_bytes + span_bytes / 2;  // fits 2
  SpanTransport transport(config, cap.sink());
  transport.offer(make_span(1));
  transport.offer(make_span(2));
  EXPECT_EQ(transport.queued_bytes(), 2 * span_bytes);
  transport.offer(make_span(3));  // same class: incoming shed
  EXPECT_EQ(transport.stats().shed_sys, 1u);
  transport.offer(make_span(4, SpanKind::kApplication));  // evicts sys #1
  EXPECT_EQ(transport.stats().shed_sys, 2u);
  transport.flush();
  EXPECT_EQ(cap.all_ids(), (std::vector<u64>{2, 4}));
  EXPECT_EQ(transport.queued_bytes(), 0u);
}

// ---- Overload verdicts (kOverloaded vs kRefused). ------------------------

TEST(SpanTransportOverload, HonorsRetryAfterHintAndPausesFreshSends) {
  // An overloaded receiver bounces twice with retry-after 5, then recovers.
  // The retry schedule must respect the hint (not the shorter backoff).
  int bounces = 2;
  std::vector<u64> delivered;
  TransportConfig config;
  config.batch_spans = 2;
  config.jitter_ticks = 0;
  SpanTransport transport(
      config, SpanTransport::VerdictBatchSink(
                  [&](std::vector<Span>& spans) -> SinkVerdict {
                    if (bounces > 0) {
                      --bounces;
                      return SinkVerdict::overloaded(5);
                    }
                    for (const Span& s : spans) delivered.push_back(s.span_id);
                    return SinkVerdict::accepted();
                  }));
  transport.offer(make_span(1));
  transport.offer(make_span(2));
  std::vector<u64> attempt_ticks;
  u64 sent_before = 0;
  for (u64 tick = 1; tick <= 12; ++tick) {
    transport.pump();
    if (transport.stats().batches_sent > sent_before) {
      attempt_ticks.push_back(tick);
      sent_before = transport.stats().batches_sent;
    }
  }
  // Attempt 1 at tick 1, then retry-after 5: ticks 6 and 11.
  EXPECT_EQ(attempt_ticks, (std::vector<u64>{1, 6, 11}));
  EXPECT_EQ(delivered, (std::vector<u64>{1, 2}));
  EXPECT_EQ(transport.stats().overload_refused_batches, 2u);
  EXPECT_EQ(transport.stats().overload_refused_spans, 4u);
  EXPECT_EQ(transport.stats().overload_retries, 2u);
  EXPECT_EQ(transport.stats().overload_gave_up_batches, 0u);
  // The channel-fault retry counter stays clean: overload is not a drop.
  EXPECT_EQ(transport.stats().retries, 0u);
  EXPECT_EQ(transport.stats().send_drops, 0u);
}

TEST(SpanTransportOverload, PauseHoldsFreshBatchesWhileOverloaded) {
  // While paused by a retry-after hint, full batches stay queued (the
  // backpressure half: queue depth climbs toward the priority shedder).
  int bounces = 1;
  TransportConfig config;
  config.batch_spans = 2;
  config.jitter_ticks = 0;
  SpanTransport transport(
      config, SpanTransport::VerdictBatchSink(
                  [&](std::vector<Span>& spans) -> SinkVerdict {
                    if (bounces > 0) {
                      --bounces;
                      return SinkVerdict::overloaded(8);
                    }
                    (void)spans;
                    return SinkVerdict::accepted();
                  }));
  transport.offer(make_span(1));
  transport.offer(make_span(2));
  transport.pump();  // tick 1: bounced, paused until tick 9
  transport.offer(make_span(3));
  transport.offer(make_span(4));
  const u64 sent_at_pause = transport.stats().batches_sent;
  transport.pump();  // tick 2: a full batch waits out the pause
  EXPECT_EQ(transport.stats().batches_sent, sent_at_pause);
  EXPECT_EQ(transport.backlog(), 4u);
  transport.flush();
  EXPECT_EQ(transport.backlog(), 0u);
  EXPECT_EQ(transport.stats().gave_up_spans, 0u);
}

TEST(SpanTransportOverload, GivesUpOnTheSeparateOverloadBudget) {
  TransportConfig config;
  config.batch_spans = 2;
  config.jitter_ticks = 0;
  config.overload_max_attempts = 3;
  SpanTransport transport(
      config, SpanTransport::VerdictBatchSink(
                  [](std::vector<Span>&) -> SinkVerdict {
                    return SinkVerdict::overloaded(1);
                  }));
  transport.offer(make_span(1));
  transport.offer(make_span(2));
  transport.flush();  // must terminate despite a permanently refusing sink
  EXPECT_EQ(transport.stats().overload_refused_batches, 3u);
  EXPECT_EQ(transport.stats().overload_retries, 2u);
  EXPECT_EQ(transport.stats().overload_gave_up_batches, 1u);
  EXPECT_EQ(transport.stats().overload_gave_up_spans, 2u);
  EXPECT_EQ(transport.stats().gave_up_spans, 2u);
  EXPECT_EQ(transport.backlog(), 0u);
}

TEST(SpanTransportOverload, GovernorRungThreeShedsNetAtAdmission) {
  GovernorConfig gov_config;
  gov_config.enabled = true;
  gov_config.budget_bytes = 1000;
  ResourceGovernor governor(gov_config);
  governor.add_bytes(GovernorAccount::kHotStore, 950);  // 0.95 -> kShed
  EXPECT_EQ(governor.refresh(), OverloadLevel::kShed);

  Capture cap;
  TransportConfig config;
  config.batch_spans = 64;
  config.governor = &governor;
  SpanTransport transport(config, cap.sink());
  transport.offer(make_span(1, SpanKind::kNetwork));
  transport.offer(make_span(2, SpanKind::kSystem));
  transport.offer(make_span(3, SpanKind::kApplication));
  EXPECT_EQ(transport.stats().governor_shed_net, 1u);
  EXPECT_EQ(transport.stats().shed_net, 1u);
  EXPECT_EQ(governor.telemetry().shed_net_spans, 1u);
  transport.flush();
  EXPECT_EQ(cap.all_ids(), (std::vector<u64>{2, 3}));

  // Recovery: below the shed rung net spans pass again.
  governor.sub_bytes(GovernorAccount::kHotStore, 900);
  while (governor.refresh() != OverloadLevel::kNormal) {
  }
  transport.offer(make_span(4, SpanKind::kNetwork));
  transport.flush();
  EXPECT_EQ(transport.stats().governor_shed_net, 1u);
  EXPECT_EQ(cap.all_ids(), (std::vector<u64>{2, 3, 4}));
}

TEST(SpanTransportOverload, QueueBytesAccountedToGovernorAndDrained) {
  GovernorConfig gov_config;
  gov_config.enabled = true;  // telemetry-only: accounts, never degrades
  ResourceGovernor governor(gov_config);

  Capture cap;
  TransportConfig config;
  config.batch_spans = 2;
  config.governor = &governor;
  SpanTransport transport(config, cap.sink());
  transport.offer(make_span(1));
  transport.offer(make_span(2));
  transport.offer(make_span(3));
  EXPECT_EQ(governor.account_bytes(GovernorAccount::kTransportQueue),
            transport.queued_bytes());
  EXPECT_GT(transport.queued_bytes(), 0u);
  transport.flush();
  EXPECT_EQ(transport.queued_bytes(), 0u);
  EXPECT_EQ(governor.account_bytes(GovernorAccount::kTransportQueue), 0u);
}

}  // namespace
}  // namespace deepflow::agent
