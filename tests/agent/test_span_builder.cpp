#include "agent/span_builder.h"

#include <gtest/gtest.h>

namespace deepflow::agent {
namespace {

class SpanBuilderTest : public ::testing::Test {
 protected:
  SpanBuilderTest() {
    const auto vpc = registry_.create_vpc("prod");
    const auto node = registry_.create_node(vpc, "node-1");
    registry_.create_pod(node, "client-0", Ipv4::parse("10.0.0.1"));
    registry_.create_pod(node, "server-0", Ipv4::parse("10.0.0.2"));
    vpc_ = vpc;
  }

  Session make_session(kernelsim::Direction request_direction) {
    Session session;
    session.flow_key = 1;
    session.request.record.enter_ts = 1'000;
    session.request.record.exit_ts = 1'500;
    session.request.record.tcp_seq = 111;
    session.request.record.pid = 5;
    session.request.record.tid = 50;
    session.request.record.direction = request_direction;
    session.request.record.tuple =
        FiveTuple{Ipv4::parse("10.0.0.1"), Ipv4::parse("10.0.0.2"), 40000, 80,
                  L4Proto::kTcp};
    session.request.parsed.type = protocols::MessageType::kRequest;
    session.request.parsed.protocol = protocols::L7Protocol::kHttp1;
    session.request.parsed.method = "GET";
    session.request.parsed.endpoint = "/cart";
    session.request.systrace_id = 77;

    MessageData response;
    response.record.enter_ts = 4'000;
    response.record.exit_ts = 4'500;
    response.record.tcp_seq = 222;
    response.parsed.type = protocols::MessageType::kResponse;
    response.parsed.status_code = 200;
    response.parsed.ok = true;
    session.response = std::move(response);
    return session;
  }

  netsim::ResourceRegistry registry_;
  netsim::VpcId vpc_ = 0;
};

TEST_F(SpanBuilderTest, SessionBecomesSpanWithRequestResponseBracket) {
  SpanBuilder builder("node-1", &registry_);
  const Span span = builder.build(make_session(kernelsim::Direction::kIngress));
  EXPECT_EQ(span.start_ts, 1'000u);
  EXPECT_EQ(span.end_ts, 4'500u);
  EXPECT_EQ(span.duration(), 3'500u);
  EXPECT_EQ(span.method, "GET");
  EXPECT_EQ(span.endpoint, "/cart");
  EXPECT_EQ(span.status_code, 200u);
  EXPECT_TRUE(span.ok);
  EXPECT_FALSE(span.incomplete);
  EXPECT_EQ(span.req_tcp_seq, 111u);
  EXPECT_EQ(span.resp_tcp_seq, 222u);
  EXPECT_EQ(span.systrace_id, 77u);
  EXPECT_EQ(span.host, "node-1");
  EXPECT_EQ(span.kind, SpanKind::kSystem);
}

TEST_F(SpanBuilderTest, ServerSideDeterminedByRequestDirection) {
  SpanBuilder builder("node-1", &registry_);
  EXPECT_TRUE(
      builder.build(make_session(kernelsim::Direction::kIngress)).from_server_side);
  EXPECT_FALSE(
      builder.build(make_session(kernelsim::Direction::kEgress)).from_server_side);
}

TEST_F(SpanBuilderTest, MissingResponseFlagsIncomplete) {
  SpanBuilder builder("node-1", &registry_);
  Session session = make_session(kernelsim::Direction::kIngress);
  session.response = std::nullopt;
  const Span span = builder.build(session);
  EXPECT_TRUE(span.incomplete);
  EXPECT_FALSE(span.ok);
  EXPECT_EQ(span.end_ts, 1'500u);  // request's own bracket
  EXPECT_EQ(span.resp_tcp_seq, 0u);
}

TEST_F(SpanBuilderTest, IntTagsResolveVpcAndIps) {
  SpanBuilder builder("node-1", &registry_);
  const Span span = builder.build(make_session(kernelsim::Direction::kIngress));
  EXPECT_EQ(span.int_tags.vpc_id, vpc_);
  EXPECT_EQ(span.int_tags.client_ip, Ipv4::parse("10.0.0.1").addr);
  EXPECT_EQ(span.int_tags.server_ip, Ipv4::parse("10.0.0.2").addr);
}

TEST_F(SpanBuilderTest, SpanIdsUnique) {
  SpanBuilder builder("node-1", &registry_);
  const Span a = builder.build(make_session(kernelsim::Direction::kIngress));
  const Span b = builder.build(make_session(kernelsim::Direction::kIngress));
  EXPECT_NE(a.span_id, b.span_id);
  EXPECT_EQ(builder.spans_built(), 2u);
}

TEST_F(SpanBuilderTest, PacketOriginYieldsNetworkSpan) {
  SpanBuilder builder("node-1", &registry_);
  Session session = make_session(kernelsim::Direction::kIngress);
  session.request.origin = CaptureOrigin::kPacketTap;
  session.request.device_id = 9;
  session.request.device_name = "tor-1";
  if (session.response) session.response->origin = CaptureOrigin::kPacketTap;
  const Span span = builder.build(session);
  EXPECT_EQ(span.kind, SpanKind::kNetwork);
  EXPECT_EQ(span.device_id, 9u);
  EXPECT_EQ(span.device_name, "tor-1");
  EXPECT_FALSE(span.from_server_side);
}

TEST_F(SpanBuilderTest, SslOriginYieldsApplicationSpan) {
  SpanBuilder builder("node-1", &registry_);
  Session session = make_session(kernelsim::Direction::kIngress);
  session.request.origin = CaptureOrigin::kSslUprobe;
  EXPECT_EQ(builder.build(session).kind, SpanKind::kApplication);
}

TEST_F(SpanBuilderTest, PlainThreadHidesPseudoThreadId) {
  SpanBuilder builder("node-1", &registry_);
  Session session = make_session(kernelsim::Direction::kIngress);
  session.request.record.coroutine_id = 0;
  session.request.pseudo_thread_id = 50;  // tid, not a search key
  EXPECT_EQ(builder.build(session).pseudo_thread_id, 0u);
  session.request.record.coroutine_id = 42;
  session.request.pseudo_thread_id = 42;
  EXPECT_EQ(builder.build(session).pseudo_thread_id, 42u);
}

TEST_F(SpanBuilderTest, TraceContextExtractedFromHeaders) {
  SpanBuilder builder("node-1", &registry_);
  Session session = make_session(kernelsim::Direction::kIngress);
  session.request.parsed.trace_context =
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
  session.request.parsed.x_request_id = "xrid-9";
  const Span span = builder.build(session);
  EXPECT_EQ(span.otel_trace_id, "0af7651916cd43dd8448eb211c80319c");
  EXPECT_EQ(span.x_request_id, "xrid-9");
}

TEST_F(SpanBuilderTest, XRequestIdFallsBackToResponse) {
  SpanBuilder builder("node-1", &registry_);
  Session session = make_session(kernelsim::Direction::kIngress);
  session.response->parsed.x_request_id = "from-response";
  EXPECT_EQ(builder.build(session).x_request_id, "from-response");
}

}  // namespace
}  // namespace deepflow::agent
