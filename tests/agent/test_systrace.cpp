#include "agent/systrace.h"

#include <gtest/gtest.h>

namespace deepflow::agent {
namespace {

MessageData make_msg(Pid pid, PseudoThreadId ptid,
                     kernelsim::Direction direction,
                     protocols::MessageType type, SocketId socket) {
  MessageData msg;
  msg.record.pid = pid;
  msg.record.tid = static_cast<Tid>(ptid);
  msg.record.direction = direction;
  msg.record.socket_id = socket;
  msg.parsed.type = type;
  msg.pseudo_thread_id = ptid;
  return msg;
}

constexpr auto kIn = kernelsim::Direction::kIngress;
constexpr auto kOut = kernelsim::Direction::kEgress;
constexpr auto kReq = protocols::MessageType::kRequest;
constexpr auto kResp = protocols::MessageType::kResponse;

TEST(Systrace, ServerHandlingSharesOneId) {
  // Fig 7(a): inbound request, downstream call, downstream response,
  // outbound response — all one flow on one thread.
  SystraceAssigner assigner;
  auto in_req = make_msg(1, 10, kIn, kReq, 100);
  auto out_call = make_msg(1, 10, kOut, kReq, 200);
  auto in_reply = make_msg(1, 10, kIn, kResp, 200);
  auto out_resp = make_msg(1, 10, kOut, kResp, 100);
  assigner.assign(in_req);
  assigner.assign(out_call);
  assigner.assign(in_reply);
  assigner.assign(out_resp);
  EXPECT_NE(in_req.systrace_id, kInvalidSystraceId);
  EXPECT_EQ(in_req.systrace_id, out_call.systrace_id);
  EXPECT_EQ(in_req.systrace_id, in_reply.systrace_id);
  EXPECT_EQ(in_req.systrace_id, out_resp.systrace_id);
}

TEST(Systrace, ThreadReusePartitionsFlows) {
  // Fig 7(b): the same thread handling a second inbound request starts a
  // fresh systrace id.
  SystraceAssigner assigner;
  auto first = make_msg(1, 10, kIn, kReq, 100);
  auto first_resp = make_msg(1, 10, kOut, kResp, 100);
  auto second = make_msg(1, 10, kIn, kReq, 100);
  assigner.assign(first);
  assigner.assign(first_resp);
  assigner.assign(second);
  EXPECT_NE(first.systrace_id, second.systrace_id);
}

TEST(Systrace, MultipleDownstreamCallsShareTheFlow) {
  // Fig 7(c): consecutive messages of different types on different sockets.
  SystraceAssigner assigner;
  auto in_req = make_msg(1, 10, kIn, kReq, 100);
  auto call_a = make_msg(1, 10, kOut, kReq, 201);
  auto reply_a = make_msg(1, 10, kIn, kResp, 201);
  auto call_b = make_msg(1, 10, kOut, kReq, 202);
  auto reply_b = make_msg(1, 10, kIn, kResp, 202);
  for (auto* m : {&in_req, &call_a, &reply_a, &call_b, &reply_b}) {
    assigner.assign(*m);
  }
  EXPECT_EQ(call_a.systrace_id, in_req.systrace_id);
  EXPECT_EQ(call_b.systrace_id, in_req.systrace_id);
  EXPECT_EQ(reply_b.systrace_id, in_req.systrace_id);
}

TEST(Systrace, PureClientCallsArePartitioned) {
  // A load-generator thread issuing sequential independent calls: each call
  // is its own flow (otherwise the whole run would collapse into one trace).
  SystraceAssigner assigner;
  auto req1 = make_msg(1, 10, kOut, kReq, 100);
  auto resp1 = make_msg(1, 10, kIn, kResp, 100);
  auto req2 = make_msg(1, 10, kOut, kReq, 100);
  auto resp2 = make_msg(1, 10, kIn, kResp, 100);
  for (auto* m : {&req1, &resp1, &req2, &resp2}) assigner.assign(*m);
  EXPECT_EQ(req1.systrace_id, resp1.systrace_id);
  EXPECT_EQ(req2.systrace_id, resp2.systrace_id);
  EXPECT_NE(req1.systrace_id, req2.systrace_id);
}

TEST(Systrace, ThreadsAreIndependent) {
  SystraceAssigner assigner;
  auto on_t1 = make_msg(1, 10, kIn, kReq, 100);
  auto on_t2 = make_msg(1, 11, kIn, kReq, 101);
  assigner.assign(on_t1);
  assigner.assign(on_t2);
  EXPECT_NE(on_t1.systrace_id, on_t2.systrace_id);
}

TEST(Systrace, PidsDisambiguateSamePseudoThread) {
  SystraceAssigner assigner;
  auto proc_a = make_msg(1, 10, kIn, kReq, 100);
  auto proc_b = make_msg(2, 10, kIn, kReq, 101);
  assigner.assign(proc_a);
  assigner.assign(proc_b);
  EXPECT_NE(proc_a.systrace_id, proc_b.systrace_id);
}

TEST(Systrace, IdsAreGloballyUniqueAcrossAssigners) {
  // Two agents (two assigners) must never mint the same systrace id.
  SystraceAssigner a, b;
  auto on_a = make_msg(1, 10, kIn, kReq, 100);
  auto on_b = make_msg(1, 10, kIn, kReq, 100);
  a.assign(on_a);
  b.assign(on_b);
  EXPECT_NE(on_a.systrace_id, on_b.systrace_id);
}

TEST(Systrace, InterleavedRequestsOnCoroutinePseudoThreads) {
  // Two coroutine lineages on one kernel thread interleave; pseudo-thread
  // ids keep the flows apart.
  SystraceAssigner assigner;
  auto req_x = make_msg(1, 1001, kIn, kReq, 100);   // pseudo-thread 1001
  auto req_y = make_msg(1, 1002, kIn, kReq, 101);   // pseudo-thread 1002
  auto call_x = make_msg(1, 1001, kOut, kReq, 200);
  auto call_y = make_msg(1, 1002, kOut, kReq, 201);
  for (auto* m : {&req_x, &req_y, &call_x, &call_y}) assigner.assign(*m);
  EXPECT_EQ(call_x.systrace_id, req_x.systrace_id);
  EXPECT_EQ(call_y.systrace_id, req_y.systrace_id);
  EXPECT_NE(req_x.systrace_id, req_y.systrace_id);
}

}  // namespace
}  // namespace deepflow::agent
