// Allocation-regression harness for the zero-copy ingest hot path.
//
// This suite lives in its OWN test binary: it replaces the global operator
// new/delete with counting versions, which must not leak into the other
// suites. The counters pin the PR's core claim — a WARM SpanBatch (capacity
// and arena blocks retained by clear()) refills with (almost) zero heap
// allocations per span. 10'000 spans per round, a handful of allocations
// allowed in total.
//
// Skipped under ASan/TSan: the sanitizer runtimes interpose allocation
// themselves and the replacement operators would fight them.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>

#include "agent/span_batch.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DF_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define DF_UNDER_SANITIZER 1
#endif
#endif
#ifndef DF_UNDER_SANITIZER
#define DF_UNDER_SANITIZER 0
#endif

namespace {
std::atomic<std::size_t> g_heap_allocs{0};
}  // namespace

#if !DF_UNDER_SANITIZER
void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#endif  // !DF_UNDER_SANITIZER

namespace deepflow::agent {
namespace {

constexpr size_t kSpansPerRound = 10'000;
/// Allowed heap allocations per warm 10k-span round. The steady state is
/// zero; the slack absorbs harmless noise (a lazy runtime init, a gtest
/// bookkeeping node) without letting a per-span allocation (>= 10'000) slip
/// through unnoticed.
constexpr size_t kAllowedAllocsPerRound = 32;

SpanBatch::Draft make_draft(u64 id) {
  // Views point at static storage — exactly like the production path, where
  // they point at parser/session storage the batch must copy or intern.
  SpanBatch::Draft draft;
  draft.span_id = id;
  draft.kind = SpanKind::kSystem;
  draft.systrace_id = id;
  draft.x_request_id = "req-id-0123456789abcdef";
  draft.otel_trace_id = "0af7651916cd43dd8448eb211c80319c";
  draft.req_tcp_seq = static_cast<TcpSeq>(1000 + id);
  draft.resp_tcp_seq = static_cast<TcpSeq>(2000 + id);
  draft.host = (id % 2) ? "node-a" : "node-b";
  draft.from_server_side = (id % 2) == 0;
  draft.pid = 5;
  draft.tid = 50;
  draft.start_ts = 1'000 * id;
  draft.end_ts = 1'000 * id + 500;
  draft.protocol = protocols::L7Protocol::kHttp1;
  draft.method = (id % 3) ? "GET" : "POST";
  draft.endpoint = (id % 5) ? "/cart" : "/checkout";
  draft.status_code = 200;
  draft.tuple = FiveTuple{Ipv4{0x0a000001}, Ipv4{0x0a000002}, 40000, 80,
                          L4Proto::kTcp};
  draft.int_tags.vpc_id = 3;
  draft.int_tags.client_ip = draft.tuple.src_ip.addr;
  draft.int_tags.server_ip = draft.tuple.dst_ip.addr;
  return draft;
}

void fill(SpanBatch& batch) {
  for (u64 id = 1; id <= kSpansPerRound; ++id) batch.push(make_draft(id));
}

TEST(AllocRegression, WarmBatchRefillsWithoutHeapAllocations) {
#if DF_UNDER_SANITIZER
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#else
  auto interner = std::make_shared<StringInterner>();
  SpanBatch batch(interner);
  // Round 0 (cold): vectors grow, arena chains blocks, interner learns the
  // dictionary. All of that capacity is retained by clear().
  fill(batch);
  batch.clear();

  for (int round = 0; round < 3; ++round) {
    const std::size_t before = g_heap_allocs.load(std::memory_order_relaxed);
    fill(batch);
    const std::size_t during =
        g_heap_allocs.load(std::memory_order_relaxed) - before;
    std::printf("  warm round %d: %zu heap allocations / %zu spans\n", round,
                during, kSpansPerRound);
    EXPECT_LE(during, kAllowedAllocsPerRound)
        << "round " << round << ": " << during << " heap allocations for "
        << kSpansPerRound << " spans — the zero-copy contract regressed";
    batch.clear();
    EXPECT_EQ(batch.size(), 0u);
  }
#endif
}

TEST(AllocRegression, ColdFillAllocatesBoundedlyNotPerSpan) {
#if DF_UNDER_SANITIZER
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#else
  auto interner = std::make_shared<StringInterner>();
  const std::size_t before = g_heap_allocs.load(std::memory_order_relaxed);
  SpanBatch batch(interner);
  fill(batch);
  const std::size_t during =
      g_heap_allocs.load(std::memory_order_relaxed) - before;
  // Cold growth is geometric: ~24 columns x log2(10k) doublings plus arena
  // blocks and the small dictionary — hundreds, not one-per-span.
  EXPECT_LT(during, kSpansPerRound / 10)
      << during << " allocations filling a cold batch";
#endif
}

TEST(AllocRegression, ColumnReadsAreAllocationFree) {
#if DF_UNDER_SANITIZER
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#else
  auto interner = std::make_shared<StringInterner>();
  SpanBatch batch(interner);
  fill(batch);
  const std::size_t before = g_heap_allocs.load(std::memory_order_relaxed);
  u64 checksum = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    checksum += batch.span_ids()[i] + batch.duration(i) +
                batch.host(i).size() + batch.x_request_id(i).size() +
                static_cast<u64>(batch.ok(i));
  }
  EXPECT_NE(checksum, 0u);
  EXPECT_EQ(g_heap_allocs.load(std::memory_order_relaxed), before)
      << "reading columns (the dedup/metrics-fold access pattern) allocated";
#endif
}

}  // namespace
}  // namespace deepflow::agent
