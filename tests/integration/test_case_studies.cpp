// The paper's §4.1 production case studies, reproduced as executable
// assertions: each failure is planted in the simulated infrastructure and
// located through DeepFlow's query surface the way the operators did.
#include <gtest/gtest.h>

#include "core/deployment.h"
#include "workloads/topologies.h"

namespace deepflow {
namespace {

TEST(CaseStudies, Nginx404PodLocatedByStatusTags) {
  // §4.1.1: one of three Nginx Ingress pods answers 404. Find it from the
  // traces alone.
  workloads::Topology topo = workloads::make_nginx_ingress_case(
      /*faulty_replica=*/1);
  core::Deployment deepflow(topo.cluster.get());
  ASSERT_TRUE(deepflow.deploy());
  topo.app->run_constant_load(topo.entry, 90.0, 1 * kSecond, /*connections=*/6);
  deepflow.finish();

  const auto& server = deepflow.server();
  const auto error_spans = server.find_spans([](const agent::Span& s) {
    return s.kind == agent::SpanKind::kSystem && s.from_server_side &&
           s.status_code == 404;
  });
  ASSERT_FALSE(error_spans.empty());

  // Every 404 resolves to the same pod; healthy pods never 404.
  std::set<std::string> failing_pods;
  for (const u64 id : error_spans) {
    const agent::Span span = server.store().materialize(id);
    for (const auto& tag : span.tags) {
      if (tag.key == "server.pod") failing_pods.insert(tag.value);
    }
  }
  EXPECT_EQ(failing_pods, std::set<std::string>{"nginx-ingress-1"});

  // And healthy requests exist from the other replicas.
  const auto ok_spans = server.find_spans([](const agent::Span& s) {
    return s.from_server_side && s.status_code == 200 &&
           s.tuple.dst_port == 8003;  // ingress service port
  });
  EXPECT_FALSE(ok_spans.empty());
}

TEST(CaseStudies, ArpStormTracedToFaultyPhysicalNic) {
  // §4.1.2: new pods suffer connectivity delays; the extra ARP requests
  // come from one defective physical NIC. Operators walk device metrics.
  workloads::Topology topo = workloads::make_ecommerce();
  netsim::Device* bad_nic = topo.cluster->pnic_of(topo.cluster->nodes()[1]);
  bad_nic->fault.arp_anomaly = true;
  bad_nic->fault.extra_latency_ns = 5 * kMillisecond;

  core::Deployment deepflow(topo.cluster.get());
  ASSERT_TRUE(deepflow.deploy());
  topo.app->run_constant_load(topo.entry, 40.0, 1 * kSecond);
  deepflow.finish();

  // Rank devices by ARP count per flow handled: the defective NIC stands out.
  const auto& server = deepflow.server();
  std::string worst_device;
  double worst_ratio = 0;
  for (const auto& device : topo.cluster->fabric().devices()) {
    const netsim::DeviceMetrics* m = server.device_metrics(device->name);
    ASSERT_NE(m, nullptr);
    if (m->packets == 0) continue;
    const double ratio =
        static_cast<double>(m->arp_requests) / static_cast<double>(m->packets);
    if (ratio > worst_ratio) {
      worst_ratio = ratio;
      worst_device = device->name;
    }
  }
  EXPECT_EQ(worst_device, bad_nic->name);
}

TEST(CaseStudies, MqBacklogResetsFoundViaMetricCorrelation) {
  // §4.1.3: RabbitMQ backlog causes TCP resets and latency spikes. The
  // cross-layer correlation: slow spans -> their flow -> reset counters.
  workloads::Topology topo = workloads::make_mq_pipeline();
  // Backlog: the broker slows down hard and its uplink resets sporadically.
  topo.app->instance(topo.services.at("rabbitmq"), 0)->set_slowdown(40.0);
  topo.app->instance(topo.services.at("rabbitmq"), 0)
      ->pod()
      .veth->fault.reset_probability = 0.02;

  core::Deployment deepflow(topo.cluster.get());
  ASSERT_TRUE(deepflow.deploy());
  topo.app->run_constant_load(topo.entry, 50.0, 2 * kSecond);
  deepflow.finish();

  const auto& server = deepflow.server();
  // Step 1 (traces): MQTT server spans dominate the latency.
  const auto mq_spans = server.find_spans([](const agent::Span& s) {
    return s.protocol == protocols::L7Protocol::kMqtt && s.from_server_side &&
           s.kind == agent::SpanKind::kSystem;
  });
  ASSERT_FALSE(mq_spans.empty());
  DurationNs mq_avg = 0;
  for (const u64 id : mq_spans) {
    mq_avg += server.store().row(id)->span.duration();
  }
  mq_avg /= mq_spans.size();

  const auto kafka_spans = server.find_spans([](const agent::Span& s) {
    return s.protocol == protocols::L7Protocol::kKafka && s.from_server_side;
  });
  ASSERT_FALSE(kafka_spans.empty());
  DurationNs kafka_avg = 0;
  for (const u64 id : kafka_spans) {
    kafka_avg += server.store().row(id)->span.duration();
  }
  kafka_avg /= kafka_spans.size();
  EXPECT_GT(mq_avg, 4 * kafka_avg);  // the broker leg is the slow one

  // Step 2 (metrics): the slow spans' flow shows connection resets.
  const agent::Span slow = server.store().row(mq_spans[0])->span;
  const netsim::FlowMetrics* metrics = server.metrics_for(slow);
  ASSERT_NE(metrics, nullptr);
  u64 resets_on_mq_flows = metrics->resets;
  for (const u64 id : mq_spans) {
    const auto* m = server.metrics_for(server.store().row(id)->span);
    if (m != nullptr) resets_on_mq_flows = std::max(resets_on_mq_flows, m->resets);
  }
  EXPECT_GT(resets_on_mq_flows, 0u);
}

TEST(CaseStudies, AppendixAGatewayPathCoverage) {
  // Appendix A: requests traversing an L4 gateway keep their TCP sequence,
  // so the gateway's device spans join the trace.
  workloads::Topology topo = workloads::make_ecommerce();
  // Splice a gateway into a fresh storefront connection path.
  netsim::Device* gateway = topo.cluster->fabric().create_device(
      netsim::DeviceKind::kL4Gateway, "slb-1", 0, 15'000);
  (void)gateway;

  core::Deployment deepflow(topo.cluster.get());
  ASSERT_TRUE(deepflow.deploy());
  topo.app->run_constant_load(topo.entry, 20.0, 1 * kSecond);
  deepflow.finish();

  // The storefront (plain HTTP) traces include veth/vswitch/pnic/tor net
  // spans; every net span's seq matches a sys span in the same trace.
  const auto& server = deepflow.server();
  const auto starts = server.find_spans([](const agent::Span& s) {
    return s.kind == agent::SpanKind::kSystem && !s.from_server_side &&
           s.endpoint == "/";
  });
  ASSERT_FALSE(starts.empty());
  const auto trace = server.query_trace(starts[0]);
  std::set<std::string> device_kinds;
  for (const auto& s : trace.spans) {
    if (s.span.kind == agent::SpanKind::kNetwork) {
      device_kinds.insert(s.span.device_name.substr(
          s.span.device_name.find('/') + 1));
    }
  }
  EXPECT_TRUE(device_kinds.contains("vswitch"));
  EXPECT_TRUE(device_kinds.contains("pnic"));
}

}  // namespace
}  // namespace deepflow
