// Determinism equivalence of the serial and parallel ingest pipelines.
//
// The parallel path (N agent drain workers, M span-store shards) legitimately
// renumbers the volatile ids — span_id, parent_span_id, systrace_id are
// assigned in drain order — but everything observable must be identical:
// span content, timing, association attributes, session pairing, and the
// assembled trace STRUCTURE (Algorithm 1 parentage, rule for rule). The
// canonical serialization (server/canonical.h) strips the volatile ids and
// sorts deterministically, so serial and parallel runs compare byte for
// byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/deployment.h"
#include "server/canonical.h"
#include "workloads/topologies.h"

namespace deepflow {
namespace {

using workloads::Topology;

struct PipelineShape {
  u32 drain_workers;
  size_t store_shards;
  u32 cpu_count;
};

struct RunSnapshot {
  std::string store_dump;                   // canonical store contents
  std::vector<std::string> traces;          // canonical trace per trace, sorted
  agent::AgentStats stats;
  server::IngestTelemetry telemetry;
};

RunSnapshot run_pipeline(Topology topo, PipelineShape shape, double rps,
                         DurationNs duration) {
  core::DeploymentConfig config;
  config.agent.drain_workers = shape.drain_workers;
  config.agent.collector.cpu_count = shape.cpu_count;
  config.server.store_shards = shape.store_shards;
  core::Deployment deepflow(topo.cluster.get(), config);
  EXPECT_TRUE(deepflow.deploy()) << deepflow.error();
  topo.app->run_constant_load(topo.entry, rps, duration);
  deepflow.finish();

  RunSnapshot snap;
  snap.store_dump = server::canonical_store_dump(deepflow.server().store());
  snap.stats = deepflow.aggregate_stats();
  snap.telemetry = deepflow.server().ingest_telemetry();

  // Every trace exactly once: walk spans in time order, skip spans already
  // claimed by an assembled trace.
  const server::SpanStore& store = deepflow.server().store();
  std::set<u64> claimed;
  for (const u64 id : store.span_list(0, ~TimestampNs{0})) {
    if (claimed.contains(id)) continue;
    const server::AssembledTrace trace = deepflow.server().query_trace(id);
    for (const auto& s : trace.spans) claimed.insert(s.span.span_id);
    snap.traces.push_back(server::canonical_trace(trace));
  }
  std::sort(snap.traces.begin(), snap.traces.end());
  return snap;
}

void expect_equivalent(const RunSnapshot& serial, const RunSnapshot& parallel,
                       const char* label) {
  EXPECT_GT(serial.stats.spans_emitted, 0u) << label;
  EXPECT_EQ(serial.stats.spans_emitted, parallel.stats.spans_emitted) << label;
  EXPECT_EQ(serial.stats.syscall_records, parallel.stats.syscall_records)
      << label;
  EXPECT_EQ(serial.stats.packet_records, parallel.stats.packet_records)
      << label;
  EXPECT_EQ(serial.stats.unparseable_messages,
            parallel.stats.unparseable_messages)
      << label;
  EXPECT_EQ(serial.stats.perf_lost, 0u) << label;
  EXPECT_EQ(parallel.stats.perf_lost, 0u) << label;

  // Store contents: identical spans, independent of shard count and id
  // assignment. Comparing the full dumps gives a usable diff on failure.
  EXPECT_EQ(serial.store_dump, parallel.store_dump) << label;

  // Assembled traces: same number of traces, identical canonical structure.
  ASSERT_EQ(serial.traces.size(), parallel.traces.size()) << label;
  for (size_t i = 0; i < serial.traces.size(); ++i) {
    EXPECT_EQ(serial.traces[i], parallel.traces[i])
        << label << " trace " << i;
  }
}

struct EquivalenceCase {
  const char* name;
  Topology (*make)();
  double rps;
};

// ≥3 distinct topologies: sync HTTP fan-out, mixed-protocol mesh with MySQL
// and Redis, and the async MQ pipeline (coroutine pseudo-threads).
const EquivalenceCase kCases[] = {
    {"spring_boot_demo", [] { return workloads::make_spring_boot_demo(); },
     25.0},
    {"bookinfo", [] { return workloads::make_bookinfo(); }, 20.0},
    {"mq_pipeline", [] { return workloads::make_mq_pipeline(); }, 15.0},
};

TEST(ParallelEquivalence, TwoWorkersFourShardsMatchSerial) {
  for (const EquivalenceCase& c : kCases) {
    SCOPED_TRACE(c.name);
    RunSnapshot serial = run_pipeline(
        c.make(), {.drain_workers = 1, .store_shards = 1, .cpu_count = 4},
        c.rps, 1 * kSecond);
    RunSnapshot parallel = run_pipeline(
        c.make(), {.drain_workers = 2, .store_shards = 4, .cpu_count = 4},
        c.rps, 1 * kSecond);
    expect_equivalent(serial, parallel, c.name);
    // The parallel run actually exercised the staged path.
    EXPECT_GT(parallel.stats.drain_batches, 0u) << c.name;
    EXPECT_EQ(parallel.stats.drain_batch_records,
              parallel.stats.syscall_records + parallel.stats.packet_records -
                  parallel.stats.unparseable_messages)
        << c.name;
    EXPECT_EQ(parallel.telemetry.shard_rows.size(), 4u) << c.name;
  }
}

TEST(ParallelEquivalence, FourWorkersEightShardsMatchSerial) {
  for (const EquivalenceCase& c : kCases) {
    SCOPED_TRACE(c.name);
    RunSnapshot serial = run_pipeline(
        c.make(), {.drain_workers = 1, .store_shards = 1, .cpu_count = 8},
        c.rps, 1 * kSecond);
    RunSnapshot parallel = run_pipeline(
        c.make(), {.drain_workers = 4, .store_shards = 8, .cpu_count = 8},
        c.rps, 1 * kSecond);
    expect_equivalent(serial, parallel, c.name);
    EXPECT_GT(parallel.stats.drain_batches, 0u) << c.name;
  }
}

// Shard balance sanity: with enough spans, the association-attribute hash
// spreads rows across shards instead of collapsing into one.
TEST(ParallelEquivalence, ShardsReceiveBalancedRows) {
  RunSnapshot run = run_pipeline(
      workloads::make_bookinfo(),
      {.drain_workers = 2, .store_shards = 4, .cpu_count = 4}, 30.0,
      1 * kSecond);
  ASSERT_EQ(run.telemetry.shard_rows.size(), 4u);
  size_t total = 0, nonempty = 0;
  for (const size_t rows : run.telemetry.shard_rows) {
    total += rows;
    if (rows > 0) ++nonempty;
  }
  EXPECT_EQ(total, run.telemetry.spans);
  EXPECT_GE(nonempty, 3u) << "hash should use >= 3 of 4 shards";
}

// Serial mode must stay byte-for-byte deterministic run over run — the
// regression guard for "threads=1 is the default and nothing changed".
TEST(ParallelEquivalence, SerialModeIsBitwiseReproducible) {
  RunSnapshot a = run_pipeline(
      workloads::make_spring_boot_demo(),
      {.drain_workers = 1, .store_shards = 1, .cpu_count = 4}, 20.0,
      1 * kSecond);
  RunSnapshot b = run_pipeline(
      workloads::make_spring_boot_demo(),
      {.drain_workers = 1, .store_shards = 1, .cpu_count = 4}, 20.0,
      1 * kSecond);
  EXPECT_EQ(a.store_dump, b.store_dump);
  ASSERT_EQ(a.traces.size(), b.traces.size());
  EXPECT_EQ(a.traces, b.traces);
}

}  // namespace
}  // namespace deepflow
