// Golden-trace regression tests: assembled traces for fixed seeds and
// topologies are serialized (canonically — no volatile ids) and compared
// against checked-in snapshots under tests/integration/golden/. Any change
// to protocol parsing, session aggregation, systrace assignment or the
// Algorithm 1 parent rules that alters trace structure shows up as a diff
// against the golden file rather than a silent behaviour change.
//
// Regenerating (after an INTENDED behaviour change):
//   DF_REGEN_GOLDEN=1 ./test_integration --gtest_filter='GoldenTraces.*'
// then review the golden-file diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/deployment.h"
#include "server/canonical.h"
#include "workloads/topologies.h"

#ifndef DF_GOLDEN_DIR
#error "DF_GOLDEN_DIR must point at tests/integration/golden"
#endif

namespace deepflow {
namespace {

using workloads::Topology;

// All traces of a run, canonical, sorted, separated by a marker line.
std::string trace_corpus(Topology topo, double rps, DurationNs duration) {
  core::Deployment deepflow(topo.cluster.get(), {});
  EXPECT_TRUE(deepflow.deploy()) << deepflow.error();
  topo.app->run_constant_load(topo.entry, rps, duration);
  deepflow.finish();

  const server::SpanStore& store = deepflow.server().store();
  std::set<u64> claimed;
  std::vector<std::string> traces;
  for (const u64 id : store.span_list(0, ~TimestampNs{0})) {
    if (claimed.contains(id)) continue;
    const server::AssembledTrace trace = deepflow.server().query_trace(id);
    for (const auto& s : trace.spans) claimed.insert(s.span.span_id);
    traces.push_back(server::canonical_trace(trace));
  }
  std::sort(traces.begin(), traces.end());
  std::string out;
  for (size_t i = 0; i < traces.size(); ++i) {
    out += "=== trace " + std::to_string(i) + " ===\n";
    out += traces[i];
  }
  return out;
}

void check_against_golden(const std::string& name, const std::string& actual) {
  const std::string path = std::string(DF_GOLDEN_DIR) + "/" + name + ".txt";
  if (std::getenv("DF_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run with DF_REGEN_GOLDEN=1 to create it";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string expected = buffer.str();
  EXPECT_EQ(expected, actual)
      << "assembled traces diverged from " << path
      << " — if the change is intended, regenerate with DF_REGEN_GOLDEN=1";
}

// Fixed seed 11, sync HTTP fan-out through nginx + Spring Boot + MySQL.
TEST(GoldenTraces, SpringBootDemoSeed11) {
  check_against_golden(
      "spring_boot_demo_seed11",
      trace_corpus(workloads::make_spring_boot_demo(11), 10.0, 1 * kSecond));
}

// Fixed seed 13, Istio bookinfo: polyglot mesh, MySQL + Redis backends.
TEST(GoldenTraces, BookinfoSeed13) {
  check_against_golden(
      "bookinfo_seed13",
      trace_corpus(workloads::make_bookinfo(13), 8.0, 1 * kSecond));
}

}  // namespace
}  // namespace deepflow
