// Overload control plane end-to-end (ISSUE 9): the governor's byte budget
// and degradation ladder exercised through the real ingest pipeline — dedup
// seen-set rotation, quiescent-governor byte identity, a 5x overload soak
// against a fixed budget (anomaly recall, per-window completeness, monotone
// degradation), transport backpressure with recovery, and forced sealing.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "agent/transport.h"
#include "bench/bench_util.h"
#include "server/canonical.h"
#include "server/server.h"
#include "tests/storage/storage_test_util.h"

namespace deepflow::server {
namespace {

using storage::testutil::ScopedTempDir;

/// Synthetic spans with the anomaly bits the governor keys on: ok derives
/// from the status code, and a thin slice arrives incomplete.
std::vector<agent::Span> overload_spans(size_t count,
                                        const bench::SyntheticCluster& cluster,
                                        u64 seed) {
  Rng rng(seed);
  std::vector<agent::Span> spans;
  spans.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    agent::Span span = bench::make_synthetic_span(i + 1, rng, cluster);
    span.ok = span.status_code < 500;
    span.incomplete = (i % 97) == 0;
    spans.push_back(std::move(span));
  }
  return spans;
}

bool is_anomalous(const agent::Span& span) {
  return !span.ok || span.incomplete;
}

// ---- Satellite: bounded dedup seen-set under long replay. ----------------

TEST(OverloadControl, DedupSeenSetBoundedUnderLongReplay) {
  const auto cluster = bench::make_synthetic_cluster(2, 2, 1);
  ServerConfig config;
  config.dedup_window_ns = 1 * kMillisecond;  // spans are 1us apart
  DeepFlowServer server(&cluster.registry, config);

  // 50k spans spread over 50 rotation windows. The unbounded seen-set of
  // earlier PRs would hold all 50k ids; the rotating two-generation set
  // holds at most the last two windows (~2000 entries).
  Rng rng(21);
  constexpr size_t kSpans = 50'000;
  for (size_t i = 0; i < kSpans; ++i) {
    server.ingest(bench::make_synthetic_span(i + 1, rng, cluster));
  }
  const auto telemetry = server.ingest_telemetry();
  EXPECT_EQ(telemetry.spans, kSpans);
  EXPECT_EQ(telemetry.duplicate_spans, 0u);
  EXPECT_LE(telemetry.dedup_entries, 2'500u);  // two windows + stripe slack
  EXPECT_GT(telemetry.dedup_entries, 0u);

  // Redelivery within the window is still filtered exactly as before: the
  // last 500 spans (well inside the current generation) all dedup.
  Rng replay(21);
  std::vector<agent::Span> tail;
  for (size_t i = 0; i < kSpans; ++i) {
    agent::Span span = bench::make_synthetic_span(i + 1, replay, cluster);
    if (i >= kSpans - 500) tail.push_back(std::move(span));
  }
  for (agent::Span& span : tail) server.ingest(std::move(span));
  const auto after = server.ingest_telemetry();
  EXPECT_EQ(after.duplicate_spans, 500u);
  EXPECT_EQ(after.spans, kSpans);  // nothing stored twice
  EXPECT_LE(after.dedup_entries, 2'500u);
}

// ---- Byte identity with a quiescent governor. ----------------------------

TEST(OverloadControl, QuiescentGovernorIsByteIdentical) {
  // A governor that is enabled but far under budget must not change a byte
  // of any query answer relative to the no-governor baseline.
  const auto cluster = bench::make_synthetic_cluster(4, 4, 3);
  const auto spans = overload_spans(2'000, cluster, 31);

  ServerConfig base_config;
  DeepFlowServer baseline(&cluster.registry, base_config);
  for (const agent::Span& s : spans) baseline.ingest(agent::Span(s));

  ServerConfig governed_config;
  governed_config.governor.enabled = true;
  governed_config.governor.budget_bytes = size_t{1} << 40;  // never pressured
  DeepFlowServer governed(&cluster.registry, governed_config);
  for (const agent::Span& s : spans) governed.ingest(agent::Span(s));

  EXPECT_EQ(canonical_store_dump(governed.store()),
            canonical_store_dump(baseline.store()));
  EXPECT_EQ(governed.ingest_telemetry().spans,
            baseline.ingest_telemetry().spans);
  const GovernorTelemetry telemetry = governed.governor().telemetry();
  EXPECT_EQ(telemetry.level, OverloadLevel::kNormal);
  EXPECT_EQ(telemetry.downsampled_spans, 0u);
  EXPECT_EQ(telemetry.refused_spans, 0u);
  EXPECT_GT(telemetry.total_bytes, 0u);  // but it *was* accounting
}

// ---- The tentpole soak: 5x offered load vs a fixed byte budget. ----------

TEST(OverloadControl, FiveTimesOverloadSoakHonorsBudgetAndKeepsAnomalies) {
  const auto cluster = bench::make_synthetic_cluster(4, 4, 3);
  const auto spans = overload_spans(20'000, cluster, 41);

  // Measure pass: what the full stream costs with no budget, so the soak
  // budget is exactly 1/5 of the offered load in bytes.
  size_t full_bytes = 0;
  {
    ServerConfig measure_config;
    measure_config.governor.enabled = true;  // telemetry-only
    DeepFlowServer measure(&cluster.registry, measure_config);
    for (const agent::Span& s : spans) measure.ingest(agent::Span(s));
    full_bytes = measure.governor().total_bytes();
  }
  ASSERT_GT(full_bytes, 0u);

  ServerConfig config;
  config.governor.enabled = true;
  config.governor.budget_bytes = full_bytes / 5;
  config.governor.seal_interval_spans = 512;
  // Aggressive ladder for a sustained 5x squeeze: refusal engages at 80% so
  // the final 20% of the budget stays reserved for anomalies — the whole
  // anomalous slice of the stream (~3% of offered bytes = 15% of budget)
  // must fit after healthy admission stops.
  config.governor.seal_enter = 0.40;
  config.governor.downsample_enter = 0.50;
  config.governor.shed_enter = 0.65;
  config.governor.refuse_enter = 0.80;
  DeepFlowServer server(&cluster.registry, config);

  // Offer in transport-sized batches through the refusal-aware entry point,
  // retrying each bounced batch a few times like a real sender would.
  std::vector<OverloadLevel> levels;
  for (size_t base = 0; base < spans.size(); base += 256) {
    std::vector<agent::Span> batch(
        spans.begin() + base,
        spans.begin() + std::min(base + 256, spans.size()));
    for (int attempt = 0; attempt < 3; ++attempt) {
      if (server.try_ingest_batch(batch).status !=
          agent::SinkStatus::kOverloaded) {
        break;
      }
      // Bounced: the batch vector is intact; retry it (dedup filters the
      // anomalous spans that were admitted out of the refused batch).
      batch.clear();
      batch.assign(spans.begin() + base,
                   spans.begin() + std::min(base + 256, spans.size()));
    }
    levels.push_back(server.governor().level());
  }

  // Monotone degradation: under monotonically growing retained bytes the
  // ladder never walks back down mid-soak.
  for (size_t i = 1; i < levels.size(); ++i) {
    EXPECT_GE(levels[i], levels[i - 1]) << "ladder regressed at batch " << i;
  }
  EXPECT_EQ(levels.back(), OverloadLevel::kRefuse);

  // The budget held: accounted bytes stay within the cap (small slack for
  // the spans in flight when the refuse rung engaged).
  const GovernorTelemetry telemetry = server.governor().telemetry();
  EXPECT_LE(telemetry.total_bytes,
            config.governor.budget_bytes + config.governor.budget_bytes / 20);
  EXPECT_GT(telemetry.downsampled_spans, 0u);
  EXPECT_GT(telemetry.refused_spans, 0u);
  EXPECT_GT(telemetry.forced_seals, 0u);

  // Anomaly recall >= 0.95: errors and incomplete sessions survive the
  // squeeze at full fidelity.
  std::unordered_set<u64> stored_ids;
  for (const agent::Span& s : server.query_span_list(0, ~TimestampNs{0})) {
    stored_ids.insert(s.span_id);
  }
  u64 anomalous_offered = 0;
  u64 anomalous_stored = 0;
  for (const agent::Span& s : spans) {
    if (!is_anomalous(s)) continue;
    ++anomalous_offered;
    if (stored_ids.count(s.span_id) != 0) ++anomalous_stored;
  }
  ASSERT_GT(anomalous_offered, 100u);
  const double recall = static_cast<double>(anomalous_stored) /
                        static_cast<double>(anomalous_offered);
  EXPECT_GE(recall, 0.95) << anomalous_stored << "/" << anomalous_offered;

  // Healthy spans were genuinely downsampled — retention is selective, not
  // just late truncation.
  EXPECT_LT(stored_ids.size(), spans.size());

  // Per-window completeness ledger: every offered span is accounted for in
  // exactly one bucket — offered == stored + downsampled + refused, with
  // anomalous keeps a subset of stored.
  const auto windows = server.query_completeness(0, ~TimestampNs{0});
  ASSERT_FALSE(windows.empty());
  u64 ledger_offered = 0;
  for (const CompletenessWindow& w : windows) {
    EXPECT_EQ(w.offered, w.stored + w.downsampled + w.refused)
        << "window " << w.window_start;
    EXPECT_LE(w.anomalous_kept, w.stored);
    ledger_offered += w.offered;
  }
  EXPECT_GE(ledger_offered, spans.size());  // retries re-offer refused spans
}

// ---- End-to-end backpressure: refusal propagates to the transport. -------

TEST(OverloadControl, TransportBackpressureRefusesThenRecovers) {
  const auto cluster = bench::make_synthetic_cluster(2, 2, 1);
  ServerConfig config;
  config.governor.enabled = true;
  config.governor.budget_bytes = 1 << 20;
  config.governor.retry_after_ticks = 4;
  DeepFlowServer server(&cluster.registry, config);

  // External pressure pins the governor at kRefuse before any span arrives
  // (a neighbouring subsystem ate the budget).
  server.governor().add_bytes(GovernorAccount::kMetrics, 1 << 20);
  ASSERT_EQ(server.governor().refresh(), OverloadLevel::kRefuse);

  agent::TransportConfig transport_config;
  transport_config.batch_spans = 8;
  transport_config.jitter_ticks = 0;
  agent::SpanTransport transport(
      transport_config,
      agent::SpanTransport::VerdictBatchSink(
          [&server](std::vector<agent::Span>& batch) {
            return server.try_ingest_batch(batch);
          }));

  Rng rng(51);
  for (u64 id = 1; id <= 8; ++id) {
    agent::Span span = bench::make_synthetic_span(id, rng, cluster);
    span.ok = true;
    span.incomplete = false;
    transport.offer(std::move(span));
  }
  for (int tick = 0; tick < 6; ++tick) transport.pump();
  // The healthy batch bounced and is waiting out the retry-after hint;
  // nothing was stored and nothing was dropped.
  EXPECT_GT(transport.stats().overload_refused_batches, 0u);
  EXPECT_EQ(transport.stats().gave_up_spans, 0u);
  EXPECT_EQ(server.ingest_telemetry().spans, 0u);
  EXPECT_GT(server.governor().telemetry().refused_spans, 0u);

  // Pressure clears; recovery walks the ladder down one rung per refresh
  // (hysteresis, no cliff), then the paused batch delivers on its due retry.
  server.governor().sub_bytes(GovernorAccount::kMetrics, 1 << 20);
  while (server.governor().refresh() != OverloadLevel::kNormal) {
  }
  for (int tick = 0; tick < 32 && server.ingest_telemetry().spans < 8;
       ++tick) {
    transport.pump();
  }
  EXPECT_EQ(server.ingest_telemetry().spans, 8u);
  EXPECT_GT(transport.stats().overload_retries, 0u);
  EXPECT_EQ(transport.stats().gave_up_spans, 0u);
}

// ---- Rung 1: forced sealing pushes hot rows to the warm tier. ------------

TEST(OverloadControl, ForcedSealTrimsUnflushedOverlay) {
  const auto cluster = bench::make_synthetic_cluster(2, 2, 1);
  ScopedTempDir dir("df-overload-seal");
  ServerConfig config;
  config.storage.enabled = true;
  config.storage.dir = dir.str();
  config.storage.segment_spans = 4096;  // never seals on its own here
  config.governor.enabled = true;
  config.governor.budget_bytes = size_t{1} << 25;
  config.governor.seal_interval_spans = 64;
  DeepFlowServer server(&cluster.registry, config);

  // Park pressure on the seal rung (0.70 <= p < 0.80) without involving
  // admission: the store stays at full fidelity, it just seals eagerly. The
  // budget is wide enough that the 1k ingested spans cannot push pressure
  // over the downsample rung.
  server.governor().add_bytes(GovernorAccount::kMetrics, size_t{3} << 23);
  ASSERT_EQ(server.governor().refresh(), OverloadLevel::kSeal);

  Rng rng(61);
  for (u64 id = 1; id <= 1'000; ++id) {
    server.ingest(bench::make_synthetic_span(id, rng, cluster));
  }
  const GovernorTelemetry telemetry = server.governor().telemetry();
  EXPECT_GT(telemetry.forced_seals, 0u);
  EXPECT_EQ(telemetry.downsampled_spans, 0u);  // fidelity untouched at rung 1
  EXPECT_EQ(server.ingest_telemetry().spans, 1'000u);
  // Sealing actually drained the durability overlay to the warm tier.
  EXPECT_GT(server.store().storage_telemetry().flushed_spans, 0u);
  EXPECT_LT(server.governor().account_bytes(GovernorAccount::kUnflushedStore),
            server.governor().account_bytes(GovernorAccount::kHotStore));
}

}  // namespace
}  // namespace deepflow::server
