// Chaos suite: seeded fault matrices over the agent -> server pipeline.
//
// The invariants under test are the PR's delivery semantics, end to end:
//   * the batched transport with no faults is byte-identical to the
//     historical direct path (canonical store dump and trace corpus);
//   * at-least-once delivery (retries) + idempotent ingest (dedup by span
//     id) = exactly-once storage — duplicate injection changes nothing;
//   * without retries, loss degrades MONOTONICALLY: the span set stored at
//     a higher drop rate is a subset of the set stored at a lower one
//     (guaranteed by the injector's nested-outcome determinism contract);
//   * degradation-aware assembly hangs orphaned children off a synthetic
//     lost-span placeholder instead of emitting spurious roots;
//   * the parallel pipeline (drain workers, store shards) survives the
//     same chaos with no duplicate storage and no crashes (run under
//     TSan/ASan by scripts/check.sh).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/deployment.h"
#include "server/canonical.h"
#include "workloads/topologies.h"

namespace deepflow {
namespace {

using workloads::Topology;

struct RunSnapshot {
  std::string store_dump;           // canonical (id-independent) contents
  std::vector<std::string> traces;  // canonical trace corpus, sorted
  u64 store_rows = 0;               // rows actually in the store
  bool ids_unique = true;           // no span id stored twice
  u64 spurious_roots = 0;     // roots that expect a parent, not placeholders
  u64 placeholder_roots = 0;  // synthetic lost-span roots
  agent::AgentStats stats;
  agent::TransportStats transport;
  server::IngestTelemetry ingest;
  server::QueryTelemetry query;  // snapshotted AFTER assembling all traces
  FaultSiteCounters perf_ring_faults;
  FaultSiteCounters transport_faults;
};

bool expects_parent(const agent::Span& s) {
  // A net span is always forwarded by some client-side syscall, and a
  // server-side sys/app span with a request TCP sequence was sent by some
  // client — rootless, such spans witness a lost parent.
  if (s.kind == agent::SpanKind::kNetwork) return true;
  const bool sys_or_app = s.kind == agent::SpanKind::kSystem ||
                          s.kind == agent::SpanKind::kApplication;
  return sys_or_app && s.from_server_side && s.req_tcp_seq != 0;
}

RunSnapshot run_chaos(const core::DeploymentConfig& config, u64 topo_seed = 11,
                      double rps = 12.0) {
  Topology topo = workloads::make_spring_boot_demo(topo_seed);
  core::Deployment deepflow(topo.cluster.get(), config);
  EXPECT_TRUE(deepflow.deploy()) << deepflow.error();
  topo.app->run_constant_load(topo.entry, rps, 1 * kSecond);
  deepflow.finish();

  RunSnapshot snap;
  const server::SpanStore& store = deepflow.server().store();
  snap.store_dump = server::canonical_store_dump(store);
  snap.stats = deepflow.aggregate_stats();
  snap.transport = deepflow.aggregate_transport_stats();
  snap.ingest = deepflow.server().ingest_telemetry();
  for (const size_t rows : snap.ingest.shard_rows) snap.store_rows += rows;

  std::set<u64> seen_ids;
  std::set<u64> claimed;
  for (const u64 id : store.span_list(0, ~TimestampNs{0})) {
    if (!seen_ids.insert(id).second) snap.ids_unique = false;
    if (claimed.contains(id)) continue;
    const server::AssembledTrace trace = deepflow.server().query_trace(id);
    for (const auto& s : trace.spans) {
      claimed.insert(s.span.span_id);
      if (s.span.parent_span_id != 0) continue;
      if (s.span.lost_placeholder) {
        ++snap.placeholder_roots;
      } else if (expects_parent(s.span)) {
        ++snap.spurious_roots;
      }
    }
    snap.traces.push_back(server::canonical_trace(trace));
  }
  std::sort(snap.traces.begin(), snap.traces.end());
  snap.query = deepflow.server().query_telemetry();
  if (deepflow.fault_injector() != nullptr) {
    snap.perf_ring_faults =
        deepflow.fault_injector()->counters(FaultSite::kPerfRingSubmit);
    snap.transport_faults =
        deepflow.fault_injector()->counters(FaultSite::kTransportSend);
  }
  return snap;
}

core::DeploymentConfig batched_config() {
  core::DeploymentConfig config;
  config.transport.direct = false;
  config.transport.batch_spans = 16;
  return config;
}

std::vector<std::string> dump_lines(const std::string& dump) {
  std::vector<std::string> lines;
  std::stringstream stream(dump);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

// --------------------------------------------------------------------------

TEST(Chaos, BatchedTransportMatchesDirectWithoutFaults) {
  const RunSnapshot direct = run_chaos(core::DeploymentConfig{});
  const RunSnapshot batched = run_chaos(batched_config());
  EXPECT_GT(direct.store_rows, 0u);
  EXPECT_EQ(direct.store_dump, batched.store_dump);
  EXPECT_EQ(direct.traces, batched.traces);
  EXPECT_EQ(direct.store_rows, batched.store_rows);
  // The batched run actually exercised the transport...
  EXPECT_GT(batched.ingest.batches, 0u);
  EXPECT_EQ(batched.ingest.batched_spans, batched.transport.delivered_spans);
  EXPECT_EQ(batched.transport.offered, batched.transport.delivered_spans);
  // ...and a perfect channel redelivers nothing.
  EXPECT_EQ(batched.ingest.duplicate_spans, 0u);
  EXPECT_EQ(batched.transport.shed_total(), 0u);
  // The direct path has no transport at all.
  EXPECT_EQ(direct.transport.offered, 0u);
  EXPECT_EQ(direct.ingest.batches, 0u);
}

TEST(Chaos, DuplicateInjectionWithDedupIsIdempotent) {
  const RunSnapshot baseline = run_chaos(batched_config());
  core::DeploymentConfig config = batched_config();
  config.faults.transport_send.duplicate = 0.5;
  const RunSnapshot duped = run_chaos(config);
  // Redeliveries happened on the wire, none reached the store.
  EXPECT_GT(duped.transport_faults.duplicates, 0u);
  EXPECT_GT(duped.ingest.duplicate_spans, 0u);
  EXPECT_EQ(duped.ingest.duplicate_spans,
            duped.transport.delivered_spans - duped.transport.offered);
  EXPECT_EQ(duped.store_rows, baseline.store_rows);
  EXPECT_EQ(duped.store_dump, baseline.store_dump);
  EXPECT_EQ(duped.traces, baseline.traces);
  EXPECT_TRUE(duped.ids_unique);
}

TEST(Chaos, RetriesRestoreByteIdenticalStateUnderLoss) {
  const RunSnapshot baseline = run_chaos(batched_config());
  core::DeploymentConfig config = batched_config();
  config.faults.transport_send.drop = 0.3;
  config.faults.transport_send.duplicate = 0.2;
  config.transport.max_attempts = 40;
  const RunSnapshot recovered = run_chaos(config);
  EXPECT_GT(recovered.transport.send_drops, 0u);
  EXPECT_GT(recovered.transport.retries, 0u);
  EXPECT_EQ(recovered.transport.gave_up_spans, 0u);
  // At-least-once + dedup = exactly-once: the lossy, duplicating channel
  // nets out to the exact no-fault store.
  EXPECT_EQ(recovered.store_rows, baseline.store_rows);
  EXPECT_EQ(recovered.store_dump, baseline.store_dump);
  EXPECT_EQ(recovered.traces, baseline.traces);
}

TEST(Chaos, DegradationIsMonotoneWithoutRetries) {
  std::vector<RunSnapshot> runs;
  for (const double p : {0.0, 0.01, 0.1, 0.5}) {
    core::DeploymentConfig config = batched_config();
    config.transport.retries = false;
    config.faults.transport_send.drop = p;
    runs.push_back(run_chaos(config));
  }
  EXPECT_EQ(runs[0].store_rows, runs[0].transport.offered);
  EXPECT_LT(runs.back().store_rows, runs.front().store_rows);
  for (size_t i = 1; i < runs.size(); ++i) {
    // Monotone on span COUNTS (trace counts can grow as traces split).
    EXPECT_LE(runs[i].store_rows, runs[i - 1].store_rows) << i;
    // And nested on span CONTENT: the injector's fixed draw schedule makes
    // every batch dropped at the lower rate also dropped at the higher
    // one, so the higher-loss store is a sub-multiset of the lower-loss
    // store.
    const std::vector<std::string> lower = dump_lines(runs[i - 1].store_dump);
    const std::vector<std::string> higher = dump_lines(runs[i].store_dump);
    EXPECT_TRUE(std::includes(lower.begin(), lower.end(), higher.begin(),
                              higher.end()))
        << "store at drop rate " << i << " is not nested in the previous";
  }
}

TEST(Chaos, PerfRingInjectionIsCountedPerCpu) {
  const RunSnapshot baseline = run_chaos(core::DeploymentConfig{});
  core::DeploymentConfig config;
  config.faults.perf_ring.drop = 0.05;
  const RunSnapshot lossy = run_chaos(config);
  EXPECT_GT(lossy.perf_ring_faults.drops, 0u);
  EXPECT_LT(lossy.store_rows, baseline.store_rows);
  // Injected ring loss is visible in the aggregate counter, attributed
  // per CPU, and mirrored into the server's ingest telemetry.
  EXPECT_EQ(lossy.stats.perf_lost, lossy.perf_ring_faults.drops);
  u64 per_cpu_sum = 0;
  for (const u64 lost : lossy.stats.perf_lost_per_cpu) per_cpu_sum += lost;
  EXPECT_EQ(per_cpu_sum, lossy.perf_ring_faults.drops);
  EXPECT_EQ(lossy.ingest.agent_perf_lost, lossy.stats.perf_lost);
  EXPECT_EQ(lossy.ingest.agent_perf_lost_per_cpu, lossy.stats.perf_lost_per_cpu);
  EXPECT_EQ(lossy.ingest.agent_enter_map_drops, 0u);
}

TEST(Chaos, LostPlaceholdersAdoptOrphanedRoots) {
  core::DeploymentConfig config = batched_config();
  config.transport.batch_spans = 4;  // fine-grained loss -> orphans
  config.transport.retries = false;
  config.faults.transport_send.drop = 0.3;
  const RunSnapshot degraded = run_chaos(config);
  // Without the placeholder pass the same loss produces spurious roots...
  EXPECT_GT(degraded.spurious_roots, 0u);
  EXPECT_EQ(degraded.placeholder_roots, 0u);
  EXPECT_EQ(degraded.query.orphan_spans, 0u);

  config.server.assembler.lost_placeholders = true;
  const RunSnapshot repaired = run_chaos(config);
  // ...and with it every orphan hangs off a flagged synthetic parent.
  EXPECT_EQ(repaired.spurious_roots, 0u);
  EXPECT_GT(repaired.placeholder_roots, 0u);
  EXPECT_GT(repaired.query.orphan_spans, 0u);
  EXPECT_EQ(repaired.query.lost_placeholders, repaired.placeholder_roots);
  EXPECT_GE(repaired.query.orphan_spans, repaired.query.lost_placeholders);
  // The same spans were stored either way; only assembly differs.
  EXPECT_EQ(repaired.store_dump, degraded.store_dump);
  // Placeholders are flagged in the canonical output (and rule 17 marks
  // the adopted orphans).
  bool flagged = false;
  for (const std::string& trace : repaired.traces) {
    if (trace.find("lost-placeholder") != std::string::npos &&
        trace.find("|rule=17") != std::string::npos) {
      flagged = true;
      break;
    }
  }
  EXPECT_TRUE(flagged);
}

TEST(Chaos, PlaceholderPassIsInertWithoutLoss) {
  const RunSnapshot off = run_chaos(batched_config());
  core::DeploymentConfig config = batched_config();
  config.server.assembler.lost_placeholders = true;
  const RunSnapshot on = run_chaos(config);
  // No loss -> no orphans -> the flag changes nothing at all.
  EXPECT_EQ(on.query.orphan_spans, 0u);
  EXPECT_EQ(on.query.lost_placeholders, 0u);
  EXPECT_EQ(on.placeholder_roots, 0u);
  EXPECT_EQ(on.store_dump, off.store_dump);
  EXPECT_EQ(on.traces, off.traces);
}

TEST(Chaos, TimestampSkewDegradesButDelivers) {
  const RunSnapshot baseline = run_chaos(batched_config());
  core::DeploymentConfig config = batched_config();
  config.faults.transport_send.corrupt_ts = 1.0;
  config.faults.transport_send.max_ts_skew_ns = 200 * kMicrosecond;
  const RunSnapshot skewed = run_chaos(config);
  // Nothing lost — every span arrives, timestamps dishonest.
  EXPECT_EQ(skewed.store_rows, baseline.store_rows);
  EXPECT_GT(skewed.transport.ts_corrupted_spans, 0u);
  EXPECT_NE(skewed.store_dump, baseline.store_dump);
}

TEST(Chaos, SeededChaosIsReproducible) {
  core::DeploymentConfig config = batched_config();
  config.faults.seed = 77;
  config.faults.transport_send.drop = 0.2;
  config.faults.transport_send.duplicate = 0.2;
  config.faults.transport_send.delay = 0.2;
  const RunSnapshot a = run_chaos(config);
  const RunSnapshot b = run_chaos(config);
  EXPECT_EQ(a.store_dump, b.store_dump);
  EXPECT_EQ(a.traces, b.traces);
  EXPECT_EQ(a.transport_faults.drops, b.transport_faults.drops);
  EXPECT_EQ(a.transport_faults.duplicates, b.transport_faults.duplicates);
  EXPECT_EQ(a.transport_faults.delays, b.transport_faults.delays);
  // A different seed draws a different fault schedule.
  config.faults.seed = 78;
  const RunSnapshot c = run_chaos(config);
  EXPECT_NE(a.transport_faults.drops, c.transport_faults.drops);
}

TEST(Chaos, ParallelPipelineSurvivesChaos) {
  core::DeploymentConfig no_faults = batched_config();
  no_faults.agent.drain_workers = 2;
  no_faults.agent.collector.cpu_count = 4;
  no_faults.server.store_shards = 4;
  const RunSnapshot baseline = run_chaos(no_faults);

  core::DeploymentConfig config = no_faults;
  config.faults.transport_send.drop = 0.3;
  config.faults.transport_send.duplicate = 0.3;
  config.faults.transport_send.delay = 0.3;
  config.transport.max_attempts = 40;
  const RunSnapshot chaotic = run_chaos(config);
  EXPECT_TRUE(chaotic.ids_unique);
  EXPECT_GT(chaotic.ingest.duplicate_spans, 0u);
  EXPECT_GT(chaotic.transport.delayed_batches, 0u);
  EXPECT_EQ(chaotic.transport.gave_up_spans, 0u);
  // Retries + dedup net out to the exact no-fault parallel store.
  EXPECT_EQ(chaotic.store_rows, baseline.store_rows);
  EXPECT_EQ(chaotic.store_dump, baseline.store_dump);
  EXPECT_EQ(chaotic.traces, baseline.traces);
}

TEST(Chaos, OverflowShedsEndToEnd) {
  core::DeploymentConfig config = batched_config();
  config.transport.queue_capacity = 32;
  config.transport.batch_spans = 64;  // > capacity: nothing leaves early
  const RunSnapshot shedding = run_chaos(config);
  EXPECT_GT(shedding.transport.shed_total(), 0u);
  EXPECT_GT(shedding.store_rows, 0u);
  EXPECT_EQ(shedding.store_rows, shedding.transport.delivered_spans);
  EXPECT_EQ(shedding.transport.queue_high_watermark, 32u);
}

}  // namespace
}  // namespace deepflow
