// Server-side re-aggregation of out-of-window messages (§3.3.1): when an
// agent's time window is too short for a delayed response (e.g. behind a
// retransmission timeout), the straggling messages are uploaded to the
// server and paired there with the same technique.
#include <gtest/gtest.h>

#include "core/deployment.h"
#include "workloads/topologies.h"

namespace deepflow {
namespace {

workloads::Topology lossy_demo() {
  workloads::Topology topo = workloads::make_spring_boot_demo();
  netsim::Device* lossy = topo.cluster->vswitch_of(topo.cluster->nodes()[1]);
  lossy->fault.drop_probability = 0.5;
  lossy->fault.retransmit_timeout_ns = 3 * kSecond;
  return topo;
}

TEST(Reaggregation, WithoutForwardingShortWindowsLoseSessions) {
  workloads::Topology topo = lossy_demo();
  core::DeploymentConfig config;
  config.agent.session.slot_ns = 500 * kMillisecond;  // << 3 s RTO
  config.forward_stragglers = false;
  core::Deployment deepflow(topo.cluster.get(), config);
  ASSERT_TRUE(deepflow.deploy());
  topo.app->run_constant_load(topo.entry, 30.0, 8 * kSecond);
  deepflow.finish();
  const agent::AgentStats stats = deepflow.aggregate_stats();
  EXPECT_GT(stats.expired_requests, 0u);
  // The lost pairs surface as incomplete spans in the store.
  const auto incomplete = deepflow.server().find_spans(
      [](const agent::Span& s) { return s.incomplete; });
  EXPECT_EQ(incomplete.size(), stats.expired_requests);
}

TEST(Reaggregation, ForwardingRecoversOutOfWindowPairs) {
  workloads::Topology topo = lossy_demo();
  core::DeploymentConfig config;
  config.agent.session.slot_ns = 500 * kMillisecond;
  config.forward_stragglers = true;  // the paper's upload-to-server path
  core::Deployment deepflow(topo.cluster.get(), config);
  ASSERT_TRUE(deepflow.deploy());
  topo.app->run_constant_load(topo.entry, 30.0, 8 * kSecond);
  deepflow.finish();

  // Agents no longer emit incomplete sessions for stragglers...
  const agent::AgentStats stats = deepflow.aggregate_stats();
  EXPECT_EQ(stats.expired_requests, 0u);
  // ...the server re-pairs them...
  EXPECT_GT(deepflow.server().reaggregated_sessions(), 0u);
  // ...and the recovered spans are complete, with full association data.
  size_t incomplete = 0;
  for (const u64 id : deepflow.server().find_spans(
           [](const agent::Span& s) { return s.incomplete; })) {
    (void)id;
    ++incomplete;
  }
  EXPECT_LT(incomplete, deepflow.server().reaggregated_sessions() / 4 + 5);
}

TEST(Reaggregation, RecoveredSpansJoinTraces) {
  workloads::Topology topo = lossy_demo();
  core::DeploymentConfig config;
  config.agent.session.slot_ns = 500 * kMillisecond;
  core::Deployment deepflow(topo.cluster.get(), config);
  ASSERT_TRUE(deepflow.deploy());
  topo.app->run_constant_load(topo.entry, 20.0, 8 * kSecond);
  deepflow.finish();
  ASSERT_GT(deepflow.server().reaggregated_sessions(), 0u);

  // Take any wrk2 client span; the assembled trace must still reach the
  // server side of its edge (whether paired locally or server-side).
  const auto starts = deepflow.server().find_spans([](const agent::Span& s) {
    return s.kind == agent::SpanKind::kSystem && !s.from_server_side &&
           s.endpoint == "/" && !s.incomplete;
  });
  ASSERT_FALSE(starts.empty());
  size_t with_server_side = 0;
  for (size_t i = 0; i < std::min<size_t>(starts.size(), 20); ++i) {
    const auto trace = deepflow.server().query_trace(starts[i]);
    for (const auto& s : trace.spans) {
      if (s.span.from_server_side) {
        ++with_server_side;
        break;
      }
    }
  }
  EXPECT_GT(with_server_side, 15u);
}

TEST(Reaggregation, NoStragglersNoOverhead) {
  // Fault-free run: nothing is forwarded, server re-aggregator stays idle.
  workloads::Topology topo = workloads::make_spring_boot_demo();
  core::Deployment deepflow(topo.cluster.get());
  ASSERT_TRUE(deepflow.deploy());
  topo.app->run_constant_load(topo.entry, 20.0, 1 * kSecond);
  deepflow.finish();
  EXPECT_EQ(deepflow.server().reaggregated_sessions(), 0u);
  EXPECT_EQ(deepflow.aggregate_stats().expired_requests, 0u);
}

}  // namespace
}  // namespace deepflow
