// Property sweep across topologies and seeds: the pipeline-integrity
// invariants (no loss, no unparseable traffic, no expired sessions, exactly
// one span per request/response pair) must hold for every workload shape —
// every protocol, threading model, placement, and TLS mix — and for any
// deterministic seed.
#include <gtest/gtest.h>

#include <set>

#include "core/deployment.h"
#include "workloads/topologies.h"

namespace deepflow {
namespace {

struct SweepCase {
  std::string name;
  workloads::Topology (*make)(u64, kernelsim::KernelConfig);
  u64 seed;
  bool has_tls = false;  // TLS flows leave ciphertext records unparseable
};

std::vector<SweepCase> cases() {
  std::vector<SweepCase> out;
  for (const u64 seed : {3u, 101u, 20230910u}) {
    out.push_back({"spring_" + std::to_string(seed),
                   &workloads::make_spring_boot_demo, seed});
    out.push_back({"bookinfo_" + std::to_string(seed),
                   &workloads::make_bookinfo, seed});
    out.push_back({"ecommerce_" + std::to_string(seed),
                   &workloads::make_ecommerce, seed, /*has_tls=*/true});
    out.push_back({"polyglot_" + std::to_string(seed),
                   &workloads::make_polyglot, seed});
    out.push_back({"mq_" + std::to_string(seed),
                   &workloads::make_mq_pipeline, seed});
  }
  return out;
}

class InvariantSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(InvariantSweep, LosslessPipelineForAnySeedAndTopology) {
  const SweepCase& c = GetParam();
  workloads::Topology topo = c.make(c.seed, kernelsim::KernelConfig{});
  core::Deployment deepflow(topo.cluster.get());
  ASSERT_TRUE(deepflow.deploy()) << deepflow.error();
  const workloads::LoadResult load =
      topo.app->run_constant_load(topo.entry, 40.0, 1 * kSecond);
  deepflow.finish();

  EXPECT_EQ(load.completed, 40u);
  const agent::AgentStats stats = deepflow.aggregate_stats();
  EXPECT_EQ(stats.perf_lost, 0u);
  EXPECT_EQ(stats.expired_requests, 0u);
  EXPECT_EQ(deepflow.server().reaggregated_sessions(), 0u);
  if (c.has_tls) {
    // Ciphertext records (kernel hooks + device taps on TLS paths) never
    // parse — only the SSL-uprobe plaintext does. That is the designed
    // behaviour, not loss.
    EXPECT_GT(stats.unparseable_messages, 0u);
  } else {
    EXPECT_EQ(stats.unparseable_messages, 0u);
  }
  EXPECT_EQ(stats.spans_emitted,
            (stats.syscall_records + stats.packet_records -
             stats.unparseable_messages) /
                2);
  EXPECT_EQ(deepflow.server().ingested_spans(), stats.spans_emitted);

  // Every stored span is well formed.
  for (const u64 id :
       deepflow.server().find_spans([](const agent::Span&) { return true; })) {
    const agent::Span& span = deepflow.server().store().row(id)->span;
    EXPECT_FALSE(span.incomplete);
    EXPECT_GE(span.end_ts, span.start_ts);
    EXPECT_NE(span.req_tcp_seq, 0u);
    if (span.kind == agent::SpanKind::kSystem) {
      EXPECT_NE(span.systrace_id, kInvalidSystraceId);
      EXPECT_NE(span.tid, 0u);
    }
  }
}

TEST_P(InvariantSweep, SameSeedIsDeterministic) {
  const SweepCase& c = GetParam();
  u64 counts[2] = {0, 0};
  DurationNs p90[2] = {0, 0};
  for (int round = 0; round < 2; ++round) {
    workloads::Topology topo = c.make(c.seed, kernelsim::KernelConfig{});
    core::Deployment deepflow(topo.cluster.get());
    ASSERT_TRUE(deepflow.deploy());
    const workloads::LoadResult load =
        topo.app->run_constant_load(topo.entry, 25.0, 1 * kSecond);
    deepflow.finish();
    counts[round] = deepflow.aggregate_stats().spans_emitted;
    p90[round] = load.latency.p90();
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(p90[0], p90[1]);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, InvariantSweep, ::testing::ValuesIn(cases()),
    [](const auto& info) { return info.param.name; });

TEST(PeriodicPolling, LivePollingMatchesFinishOnlyProcessing) {
  // Production agents drain continuously; the tests mostly drain at
  // finish(). Both schedules must converge to the same spans (exercises
  // the eager watermark-gated pairing path).
  u64 span_counts[2] = {0, 0};
  for (const bool live : {false, true}) {
    workloads::Topology topo = workloads::make_spring_boot_demo();
    core::Deployment deepflow(topo.cluster.get());
    ASSERT_TRUE(deepflow.deploy());
    if (live) {
      // Drain every simulated 50 ms while traffic flows.
      for (TimestampNs t = 0; t <= 2 * kSecond; t += 50 * kMillisecond) {
        topo.cluster->loop().schedule_at(t, [&deepflow] { deepflow.poll(); });
      }
    }
    topo.app->run_constant_load(topo.entry, 50.0, 2 * kSecond);
    deepflow.finish();
    const agent::AgentStats stats = deepflow.aggregate_stats();
    EXPECT_EQ(stats.expired_requests, 0u);
    EXPECT_EQ(stats.perf_lost, 0u);
    span_counts[live ? 1 : 0] = stats.spans_emitted;
  }
  EXPECT_EQ(span_counts[0], span_counts[1]);
}

TEST(PeriodicPolling, LivePollingBoundsPerfBacklog) {
  workloads::Topology topo = workloads::make_spring_boot_demo();
  core::DeploymentConfig config;
  config.agent.collector.perf_ring_capacity = 2048;  // small rings
  core::Deployment deepflow(topo.cluster.get(), config);
  ASSERT_TRUE(deepflow.deploy());
  for (TimestampNs t = 0; t <= 2 * kSecond; t += 20 * kMillisecond) {
    topo.cluster->loop().schedule_at(t, [&deepflow] { deepflow.poll(); });
  }
  topo.app->run_constant_load(topo.entry, 100.0, 2 * kSecond);
  deepflow.finish();
  // With live draining, even small rings lose nothing (the same workload
  // overflows them badly when drain is deferred — bench_ablation_perfbuf).
  EXPECT_EQ(deepflow.aggregate_stats().perf_lost, 0u);
}

}  // namespace
}  // namespace deepflow
