// Query-path equivalence: the optimized trace assembler (delta search,
// shard-routed lookups, keyed parent buckets — src/server/trace_assembler)
// must produce byte-identical traces to the frozen naive reference
// (tests/reference/naive_assembler.h: full re-search + quadratic parent
// scan), over the three equivalence topologies, the golden-trace seeds,
// stores with remapped span ids, and capped iteration budgets. The batch
// assembly service must additionally match the serial path result for
// result, worker count by worker count.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/deployment.h"
#include "server/canonical.h"
#include "tests/reference/naive_assembler.h"
#include "workloads/topologies.h"

namespace deepflow {
namespace {

using server::AssembledTrace;
using workloads::Topology;

/// Exact (id-carrying) serialization: span ids, parent ids and rule ids in
/// display order. Stronger than canonical_trace for same-store comparisons.
std::string trace_signature(const AssembledTrace& trace) {
  std::string out;
  for (const auto& s : trace.spans) {
    out += std::to_string(s.span.span_id) + "<-" +
           std::to_string(s.span.parent_span_id) + "#" +
           std::to_string(s.parent_rule) + ";";
  }
  return out;
}

void expect_equivalent_traces(const server::DeepFlowServer& server,
                              const char* label) {
  const server::SpanStore& store = server.store();
  std::set<u64> claimed;
  size_t traces_checked = 0;
  for (const u64 id : store.span_list(0, ~TimestampNs{0})) {
    if (claimed.contains(id)) continue;
    const AssembledTrace optimized = server.query_trace(id);
    const AssembledTrace naive = server::reference::assemble_naive(store, id);
    for (const auto& s : optimized.spans) claimed.insert(s.span.span_id);
    ASSERT_EQ(trace_signature(naive), trace_signature(optimized))
        << label << " start=" << id;
    // Materialized content (decoded tags included) must match too.
    EXPECT_EQ(server::canonical_trace(naive),
              server::canonical_trace(optimized))
        << label << " start=" << id;
    // Delta search converges at or before the naive fixpoint probe.
    EXPECT_LE(optimized.iterations_used, naive.iterations_used)
        << label << " start=" << id;
    ++traces_checked;
  }
  EXPECT_GT(traces_checked, 0u) << label;
}

server::DeepFlowServer& run_topology(core::Deployment& deployment,
                                     Topology& topo, double rps,
                                     DurationNs duration) {
  EXPECT_TRUE(deployment.deploy()) << deployment.error();
  topo.app->run_constant_load(topo.entry, rps, duration);
  deployment.finish();
  return deployment.server();
}

struct EquivalenceCase {
  const char* name;
  Topology (*make)();
  double rps;
};

// The three parallel-equivalence topologies: sync HTTP fan-out,
// mixed-protocol mesh with MySQL/Redis, async MQ pipeline.
const EquivalenceCase kCases[] = {
    {"spring_boot_demo", [] { return workloads::make_spring_boot_demo(); },
     25.0},
    {"bookinfo", [] { return workloads::make_bookinfo(); }, 20.0},
    {"mq_pipeline", [] { return workloads::make_mq_pipeline(); }, 15.0},
};

TEST(QueryEquivalence, OptimizedMatchesNaiveOnAllTopologies) {
  for (const EquivalenceCase& c : kCases) {
    SCOPED_TRACE(c.name);
    Topology topo = c.make();
    // Multi-shard store so the id directory and shard-routed lookups are on
    // the tested path.
    core::DeploymentConfig config;
    config.server.store_shards = 4;
    core::Deployment deepflow(topo.cluster.get(), config);
    expect_equivalent_traces(
        run_topology(deepflow, topo, c.rps, 1 * kSecond), c.name);
  }
}

// The golden-trace seeds (spring demo seed 11, bookinfo seed 13) on the
// default serial store: the exact corpora pinned by test_golden_traces.
TEST(QueryEquivalence, OptimizedMatchesNaiveOnGoldenSeeds) {
  {
    Topology topo = workloads::make_spring_boot_demo(11);
    core::Deployment deepflow(topo.cluster.get(), {});
    expect_equivalent_traces(run_topology(deepflow, topo, 10.0, 1 * kSecond),
                             "spring_boot_demo_seed11");
  }
  {
    Topology topo = workloads::make_bookinfo(13);
    core::Deployment deepflow(topo.cluster.get(), {});
    expect_equivalent_traces(run_topology(deepflow, topo, 8.0, 1 * kSecond),
                             "bookinfo_seed13");
  }
}

// Spans whose ids collide get remapped into the store-private id range; the
// assemblers must agree on traces that mix original and remapped ids.
TEST(QueryEquivalence, RemappedIdsAssembleIdentically) {
  netsim::ResourceRegistry registry;
  for (const size_t shards : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE(shards);
    server::SpanStore store(server::EncoderKind::kSmart, &registry, shards);
    std::vector<u64> inserted;
    // Three request flows, every span re-using the same handful of ids so
    // most inserts collide and get remapped.
    for (u64 flow = 0; flow < 3; ++flow) {
      const TimestampNs base = flow * 100'000;
      const TcpSeq seq = 500 + flow;
      agent::Span client;
      client.span_id = 1;  // collides across flows
      client.kind = agent::SpanKind::kSystem;
      client.start_ts = base;
      client.end_ts = base + 10'000;
      client.host = "node-1";
      client.pid = 10;
      client.req_tcp_seq = seq;
      client.systrace_id = 7 + flow;
      agent::Span net = client;
      net.span_id = 2;  // collides across flows
      net.kind = agent::SpanKind::kNetwork;
      net.systrace_id = kInvalidSystraceId;
      net.host = "";
      net.pid = 0;
      net.device_name = "veth";
      net.start_ts = base + 1'000;
      net.end_ts = base + 1'100;
      agent::Span srv = client;
      srv.span_id = 0;  // forces remap unconditionally
      srv.from_server_side = true;
      srv.host = "node-2";
      srv.pid = 20;
      srv.start_ts = base + 3'000;
      srv.end_ts = base + 9'000;
      inserted.push_back(store.insert(client));
      inserted.push_back(store.insert(net));
      inserted.push_back(store.insert(srv));
    }
    server::TraceAssembler assembler(&store);
    for (const u64 id : inserted) {
      ASSERT_NE(store.row(id), nullptr) << id;
      const AssembledTrace optimized = assembler.assemble(id);
      const AssembledTrace naive =
          server::reference::assemble_naive(store, id);
      EXPECT_EQ(trace_signature(naive), trace_signature(optimized)) << id;
      EXPECT_EQ(optimized.spans.size(), 3u) << id;
    }
  }
}

// Iteration caps truncate the delta search and the naive re-search at the
// same span set, probe count by probe count.
TEST(QueryEquivalence, CappedIterationsTruncateIdentically) {
  Topology topo = workloads::make_bookinfo(13);
  core::Deployment deepflow(topo.cluster.get(), {});
  const server::DeepFlowServer& server =
      run_topology(deepflow, topo, 8.0, 1 * kSecond);
  const server::SpanStore& store = server.store();
  const std::vector<u64> ids = store.span_list(0, ~TimestampNs{0}, 40);
  ASSERT_FALSE(ids.empty());
  for (const u32 cap : {1u, 2u, 3u}) {
    server::AssemblerConfig config{.max_iterations = cap};
    server::TraceAssembler capped(&store, config);
    for (const u64 id : ids) {
      EXPECT_EQ(
          trace_signature(server::reference::assemble_naive(store, id, config)),
          trace_signature(capped.assemble(id)))
          << "cap=" << cap << " start=" << id;
    }
  }
}

// The batch assembly service: parallel fan-out returns the same traces in
// the same positions as the serial path, and both match query_trace.
TEST(QueryEquivalence, BatchAssemblyMatchesSerialAcrossWorkerCounts) {
  Topology topo = workloads::make_spring_boot_demo(11);
  core::DeploymentConfig config;
  config.server.store_shards = 4;
  core::Deployment deepflow(topo.cluster.get(), config);
  const server::DeepFlowServer& server =
      run_topology(deepflow, topo, 25.0, 1 * kSecond);
  const std::vector<u64> ids =
      server.store().span_list(0, ~TimestampNs{0}, 64);
  ASSERT_GT(ids.size(), 8u);

  std::vector<std::string> serial;
  for (const u64 id : ids) {
    serial.push_back(trace_signature(server.query_trace(id)));
  }
  for (const size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
    const std::vector<AssembledTrace> batch =
        server.assemble_traces(ids, workers);
    ASSERT_EQ(batch.size(), ids.size()) << workers;
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(serial[i], trace_signature(batch[i]))
          << "workers=" << workers << " slot=" << i;
    }
  }

  const server::QueryTelemetry telemetry = server.query_telemetry();
  EXPECT_GT(telemetry.traces_assembled, 0u);
  EXPECT_GT(telemetry.searches, 0u);
  EXPECT_GE(telemetry.rows_touched, telemetry.assembled_spans);
}

}  // namespace
}  // namespace deepflow
