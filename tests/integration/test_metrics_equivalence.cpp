// Determinism of the metrics plane across pipeline shapes.
//
// The tracing-plane equivalence suite (test_parallel_equivalence.cpp) pins
// the span store and assembled traces; this suite pins the NEW observable
// the metrics subsystem adds: serial (1 drain worker, 1 shard) and parallel
// (8 workers, 8 shards) ingest of the same deterministic workload must
// produce byte-identical canonical metrics and service-map serializations.
// The aggregator's folds are all commutative and the rollup rings retain
// buckets by commutative max, so ingest order — which the parallel drain
// permutes — must not be visible in any queryable surface.
#include <gtest/gtest.h>

#include <string>

#include "core/deployment.h"
#include "metrics/exposition.h"
#include "server/canonical.h"
#include "workloads/topologies.h"

namespace deepflow {
namespace {

using workloads::Topology;

struct MetricsSnapshot {
  std::string canonical_metrics;
  std::string canonical_service_map;
  std::string store_dump;
  std::string prometheus;
  std::string server_prometheus;
  metrics::MetricsTelemetry telemetry;
};

MetricsSnapshot run_pipeline(Topology topo, u32 drain_workers,
                             size_t store_shards, double rps,
                             bool metrics_enabled = true) {
  core::DeploymentConfig config;
  config.agent.drain_workers = drain_workers;
  config.agent.collector.cpu_count = 4;
  config.server.store_shards = store_shards;
  config.server.metrics.enabled = metrics_enabled;
  core::Deployment deepflow(topo.cluster.get(), config);
  EXPECT_TRUE(deepflow.deploy()) << deepflow.error();
  topo.app->run_constant_load(topo.entry, rps, 1 * kSecond);
  deepflow.finish();

  const metrics::MetricsAggregator& agg =
      deepflow.server().metrics_aggregator();
  MetricsSnapshot snap;
  snap.canonical_metrics = agg.canonical_metrics();
  snap.canonical_service_map = agg.canonical_service_map();
  snap.store_dump = server::canonical_store_dump(deepflow.server().store());
  // The aggregator exposition is fully deterministic; the server's
  // prometheus_metrics() additionally carries wall-clock-derived rates
  // (spans_per_sec), so only its structure is checked below.
  snap.prometheus = metrics::prometheus_text(agg);
  snap.server_prometheus = deepflow.server().prometheus_metrics();
  snap.telemetry = agg.telemetry();
  return snap;
}

struct EquivalenceCase {
  const char* name;
  Topology (*make)();
  double rps;
};

const EquivalenceCase kCases[] = {
    {"spring_boot_demo", [] { return workloads::make_spring_boot_demo(); },
     25.0},
    {"bookinfo", [] { return workloads::make_bookinfo(); }, 20.0},
    {"mq_pipeline", [] { return workloads::make_mq_pipeline(); }, 15.0},
};

TEST(MetricsEquivalence, ParallelIngestMatchesSerialByteForByte) {
  for (const EquivalenceCase& c : kCases) {
    SCOPED_TRACE(c.name);
    const MetricsSnapshot serial = run_pipeline(c.make(), 1, 1, c.rps);
    const MetricsSnapshot parallel = run_pipeline(c.make(), 8, 8, c.rps);

    EXPECT_FALSE(serial.canonical_metrics.empty()) << c.name;
    EXPECT_EQ(serial.canonical_metrics, parallel.canonical_metrics) << c.name;
    EXPECT_EQ(serial.canonical_service_map, parallel.canonical_service_map)
        << c.name;
    // Telemetry totals that are arrival-order-independent must match too.
    EXPECT_EQ(serial.telemetry.spans_seen, parallel.telemetry.spans_seen)
        << c.name;
    EXPECT_EQ(serial.telemetry.service_samples,
              parallel.telemetry.service_samples)
        << c.name;
    EXPECT_EQ(serial.telemetry.edge_samples, parallel.telemetry.edge_samples)
        << c.name;
    EXPECT_EQ(serial.telemetry.services, parallel.telemetry.services)
        << c.name;
    EXPECT_EQ(serial.telemetry.edges, parallel.telemetry.edges) << c.name;
    // A 1-second run sits far inside every ring horizon: no late samples.
    EXPECT_EQ(serial.telemetry.late_samples, 0u) << c.name;
    EXPECT_EQ(parallel.telemetry.late_samples, 0u) << c.name;
  }
}

TEST(MetricsEquivalence, SerialRunsAreBitwiseReproducible) {
  const MetricsSnapshot a =
      run_pipeline(workloads::make_spring_boot_demo(), 1, 1, 25.0);
  const MetricsSnapshot b =
      run_pipeline(workloads::make_spring_boot_demo(), 1, 1, 25.0);
  EXPECT_EQ(a.canonical_metrics, b.canonical_metrics);
  EXPECT_EQ(a.canonical_service_map, b.canonical_service_map);
  EXPECT_EQ(a.prometheus, b.prometheus);
  // The server scrape composes all three telemetry planes onto the
  // aggregator families.
  EXPECT_NE(a.server_prometheus.find("deepflow_service_requests_total"),
            std::string::npos);
  EXPECT_NE(a.server_prometheus.find("deepflow_ingest_spans"),
            std::string::npos);
  EXPECT_NE(a.server_prometheus.find("deepflow_query_rows_touched"),
            std::string::npos);
}

TEST(MetricsEquivalence, MetricsPlaneDoesNotPerturbTracingPlane) {
  // The aggregator only observes spans on their way into the store;
  // toggling it must leave the stored spans byte-identical.
  const MetricsSnapshot on =
      run_pipeline(workloads::make_spring_boot_demo(), 2, 4, 25.0, true);
  const MetricsSnapshot off =
      run_pipeline(workloads::make_spring_boot_demo(), 2, 4, 25.0, false);
  EXPECT_EQ(on.store_dump, off.store_dump);
  EXPECT_TRUE(off.canonical_metrics.empty());
  EXPECT_FALSE(on.canonical_metrics.empty());
}

TEST(MetricsEquivalence, ServiceMapNamesComeFromTheRegistry) {
  // The fan-out demo resolves every endpoint to a service name — the map
  // must label nodes/edges with those names, not raw IPs.
  const MetricsSnapshot snap =
      run_pipeline(workloads::make_spring_boot_demo(), 1, 1, 25.0);
  EXPECT_NE(snap.canonical_service_map.find("svc|front"), std::string::npos);
  EXPECT_NE(snap.canonical_service_map.find("edge|"), std::string::npos);
  EXPECT_EQ(snap.canonical_service_map.find("svc|10."), std::string::npos);
}

}  // namespace
}  // namespace deepflow
