// Full-pipeline integration: workloads drive traced syscalls through the
// simulated kernels; agents collect, parse, aggregate and ship spans; the
// server assembles traces. These tests pin down the system-level invariants
// the paper's evaluation relies on.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/deployment.h"
#include "workloads/topologies.h"

namespace deepflow {
namespace {

using workloads::LoadResult;
using workloads::Topology;

struct RunResult {
  Topology topo;
  std::unique_ptr<core::Deployment> deepflow;
  LoadResult load;
};

RunResult run_with_deepflow(Topology topo, double rps, DurationNs duration,
                            core::DeploymentConfig config = {}) {
  RunResult run{std::move(topo), nullptr, {}};
  run.deepflow =
      std::make_unique<core::Deployment>(run.topo.cluster.get(), config);
  EXPECT_TRUE(run.deepflow->deploy()) << run.deepflow->error();
  run.load = run.topo.app->run_constant_load(run.topo.entry, rps, duration);
  run.deepflow->finish();
  return run;
}

TEST(EndToEnd, EveryMessageBecomesExactlyOneSpan) {
  RunResult run = run_with_deepflow(workloads::make_spring_boot_demo(), 50.0,
                                    1 * kSecond);
  const agent::AgentStats stats = run.deepflow->aggregate_stats();
  EXPECT_EQ(stats.perf_lost, 0u);
  EXPECT_EQ(stats.unparseable_messages, 0u);
  EXPECT_EQ(stats.expired_requests, 0u);
  // Two records (request + response) per session, sys + net combined.
  EXPECT_EQ(stats.spans_emitted,
            (stats.syscall_records + stats.packet_records) / 2);
  EXPECT_EQ(run.deepflow->server().ingested_spans(), stats.spans_emitted);
}

TEST(EndToEnd, TraceContainsFullRequestPath) {
  RunResult run = run_with_deepflow(workloads::make_spring_boot_demo(), 20.0,
                                    1 * kSecond);
  const auto& server = run.deepflow->server();
  const auto starts = server.find_spans([](const agent::Span& s) {
    return s.kind == agent::SpanKind::kSystem && !s.from_server_side &&
           s.endpoint == "/";
  });
  ASSERT_EQ(starts.size(), 20u);  // one wrk2 client span per request
  const server::AssembledTrace trace = server.query_trace(starts[3]);

  // 12 sys spans (6 edges x 2 sides) + net spans at every device.
  size_t sys = 0, net = 0;
  std::set<std::string> methods;
  for (const auto& s : trace.spans) {
    if (s.span.kind == agent::SpanKind::kSystem) ++sys;
    if (s.span.kind == agent::SpanKind::kNetwork) ++net;
    if (!s.span.method.empty()) methods.insert(s.span.method);
  }
  EXPECT_EQ(sys, 12u);
  EXPECT_GT(net, 20u);
  EXPECT_TRUE(methods.contains("GET"));
  EXPECT_TRUE(methods.contains("SELECT"));

  // Exactly one root: the wrk2 client span.
  EXPECT_EQ(trace.roots().size(), 1u);
  // Every non-root parent id exists within the trace.
  std::set<u64> ids;
  for (const auto& s : trace.spans) ids.insert(s.span.span_id);
  for (const auto& s : trace.spans) {
    if (s.span.parent_span_id != 0) {
      EXPECT_TRUE(ids.contains(s.span.parent_span_id));
    }
  }
}

TEST(EndToEnd, TracesAreDisjointAcrossRequests) {
  RunResult run = run_with_deepflow(workloads::make_spring_boot_demo(), 10.0,
                                    1 * kSecond);
  const auto& server = run.deepflow->server();
  const auto starts = server.find_spans([](const agent::Span& s) {
    return s.kind == agent::SpanKind::kSystem && !s.from_server_side &&
           s.endpoint == "/";
  });
  ASSERT_GE(starts.size(), 3u);
  std::set<u64> seen;
  for (size_t i = 0; i < 3; ++i) {
    const auto trace = server.query_trace(starts[i]);
    for (const auto& s : trace.spans) {
      EXPECT_TRUE(seen.insert(s.span.span_id).second)
          << "span shared between traces";
    }
  }
}

TEST(EndToEnd, BookinfoProducesDeepTraces) {
  RunResult run =
      run_with_deepflow(workloads::make_bookinfo(), 20.0, 1 * kSecond);
  const auto& server = run.deepflow->server();
  const auto starts = server.find_spans([](const agent::Span& s) {
    return s.kind == agent::SpanKind::kSystem && !s.from_server_side &&
           s.endpoint == "/";
  });
  ASSERT_FALSE(starts.empty());
  const auto trace = server.query_trace(starts[0]);
  // 9 edges x 2 sys spans plus device-level spans: the dense traces the
  // paper contrasts with Zipkin's 6 spans.
  EXPECT_GE(trace.spans.size(), 30u);
}

TEST(EndToEnd, TlsFlowsTracedOnlyViaSslUprobes) {
  RunResult run =
      run_with_deepflow(workloads::make_ecommerce(), 20.0, 1 * kSecond);
  const auto& server = run.deepflow->server();
  // The api service is TLS: its sessions appear as application spans from
  // SSL uprobes; no sys/net spans can parse the ciphertext.
  size_t app_spans = 0, api_net_spans = 0;
  for (const u64 id : server.find_spans([](const agent::Span&) { return true; })) {
    const agent::Span& s = server.store().row(id)->span;
    if (s.kind == agent::SpanKind::kApplication) ++app_spans;
    if (s.kind == agent::SpanKind::kNetwork && s.tuple.dst_port == 8001) {
      ++api_net_spans;
    }
  }
  EXPECT_GT(app_spans, 0u);
  EXPECT_EQ(api_net_spans, 0u);  // network cannot see into TLS
}

TEST(EndToEnd, CoroutinePseudoThreadsLinkSpans) {
  RunResult run =
      run_with_deepflow(workloads::make_ecommerce(), 10.0, 1 * kSecond);
  const auto& server = run.deepflow->server();
  // inventory is a coroutine service: its spans carry pseudo-thread ids.
  size_t with_pseudo = 0;
  for (const u64 id : server.find_spans([](const agent::Span& s) {
         return s.pseudo_thread_id != 0;
       })) {
    (void)id;
    ++with_pseudo;
  }
  EXPECT_GT(with_pseudo, 0u);
}

TEST(EndToEnd, ThirdPartySpansJoinTraces) {
  Topology topo = workloads::make_spring_boot_demo();
  core::Deployment deepflow(topo.cluster.get());
  ASSERT_TRUE(deepflow.deploy());
  // Instrument two services with the OTel-style SDK exporting into DeepFlow.
  topo.app->instrument(topo.services.at("front"), deepflow.third_party_sink());
  topo.app->instrument(topo.services.at("cart"), deepflow.third_party_sink());
  topo.app->run_constant_load(topo.entry, 10.0, 1 * kSecond);
  deepflow.finish();

  const auto& server = deepflow.server();
  const auto otel_spans = server.find_spans([](const agent::Span& s) {
    return s.kind == agent::SpanKind::kThirdParty;
  });
  EXPECT_EQ(otel_spans.size(), 20u);  // 2 services x 10 requests
  // A trace assembled from an eBPF span pulls the third-party spans in.
  const auto starts = server.find_spans([](const agent::Span& s) {
    return s.kind == agent::SpanKind::kSystem && s.endpoint == "/home" &&
           s.from_server_side;
  });
  ASSERT_FALSE(starts.empty());
  const auto trace = server.query_trace(starts[0]);
  size_t otel_in_trace = 0;
  for (const auto& s : trace.spans) {
    if (s.span.kind == agent::SpanKind::kThirdParty) ++otel_in_trace;
  }
  EXPECT_EQ(otel_in_trace, 2u);
}

TEST(EndToEnd, OnDemandDeploymentMidRun) {
  // §4.1.1: DeepFlow can attach while the service is live. Traffic before
  // deploy is invisible; traffic after is fully traced.
  Topology topo = workloads::make_nginx_single_vm();
  topo.app->run_constant_load(topo.entry, 50.0, 500 * kMillisecond);

  core::Deployment deepflow(topo.cluster.get());
  ASSERT_TRUE(deepflow.deploy());
  topo.app->run_constant_load(topo.entry, 50.0, 500 * kMillisecond);
  deepflow.finish();
  const auto spans = deepflow.server().find_spans(
      [](const agent::Span& s) { return s.kind == agent::SpanKind::kSystem; });
  // Only the second burst (25 requests' worth of sessions) is traced.
  EXPECT_GT(spans.size(), 0u);
  EXPECT_LE(spans.size(), 2u * 25u + 4u);
}

TEST(EndToEnd, SmartEncodingTagsRecoverableAtQueryTime) {
  RunResult run = run_with_deepflow(workloads::make_spring_boot_demo(), 5.0,
                                    1 * kSecond);
  const auto& server = run.deepflow->server();
  const auto spans =
      server.query_span_list(0, ~TimestampNs{0});
  ASSERT_FALSE(spans.empty());
  bool any_pod_tag = false;
  for (const auto& span : spans) {
    for (const auto& tag : span.tags) {
      if (tag.key == "server.pod" && !tag.value.empty()) any_pod_tag = true;
    }
  }
  EXPECT_TRUE(any_pod_tag);
}

TEST(EndToEnd, FlowMetricsCorrelateWithSpans) {
  RunResult run = run_with_deepflow(workloads::make_spring_boot_demo(), 5.0,
                                    1 * kSecond);
  const auto& server = run.deepflow->server();
  const auto spans = server.find_spans([](const agent::Span& s) {
    return s.kind == agent::SpanKind::kSystem;
  });
  ASSERT_FALSE(spans.empty());
  const agent::Span span = server.store().row(spans[0])->span;
  const netsim::FlowMetrics* metrics = server.metrics_for(span);
  ASSERT_NE(metrics, nullptr);
  EXPECT_GT(metrics->packets, 0u);
}

TEST(EndToEnd, UndeployRestoresZeroOverhead) {
  Topology topo = workloads::make_nginx_single_vm();
  kernelsim::Kernel* kernel = topo.cluster->kernel_of(topo.cluster->nodes()[0]);
  core::Deployment deepflow(topo.cluster.get());
  ASSERT_TRUE(deepflow.deploy());
  EXPECT_GT(kernel->instrumentation_latency(kernelsim::SyscallAbi::kWrite), 0u);
  deepflow.undeploy();
  EXPECT_EQ(kernel->instrumentation_latency(kernelsim::SyscallAbi::kWrite), 0u);
}

TEST(EndToEnd, PolyglotProtocolsAllProduceSpans) {
  RunResult run =
      run_with_deepflow(workloads::make_polyglot(), 20.0, 1 * kSecond);
  const auto& server = run.deepflow->server();
  std::map<protocols::L7Protocol, size_t> by_protocol;
  for (const u64 id :
       server.find_spans([](const agent::Span&) { return true; })) {
    ++by_protocol[server.store().row(id)->span.protocol];
  }
  EXPECT_GT(by_protocol[protocols::L7Protocol::kHttp1], 0u);
  EXPECT_GT(by_protocol[protocols::L7Protocol::kHttp2], 0u);
  EXPECT_GT(by_protocol[protocols::L7Protocol::kDns], 0u);
  EXPECT_GT(by_protocol[protocols::L7Protocol::kKafka], 0u);
  EXPECT_GT(by_protocol[protocols::L7Protocol::kDubbo], 0u);
}

}  // namespace
}  // namespace deepflow
