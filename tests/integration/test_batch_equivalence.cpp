// Byte-identity of the columnar (SpanBatch) ingest path against the
// historical per-span sink.
//
// The zero-copy hot path changes HOW spans travel — arena-backed columns,
// interned strings, whole-batch dedup/metrics/store calls — but must not
// change a single observable byte: same canonical store dump, same
// canonical metrics and service map, same assembled traces, same ingest
// counters. This suite runs the same deterministic workload with
// columnar_batching on and off across the pipeline shapes that exercise
// every consumer of the batch (direct server ingest, the transport queue
// decomposition, multi-worker drain into a sharded store) and compares the
// two runs byte for byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/deployment.h"
#include "server/canonical.h"
#include "workloads/topologies.h"

namespace deepflow {
namespace {

using workloads::Topology;

struct PipelineShape {
  u32 drain_workers = 1;
  size_t store_shards = 1;
  bool direct = true;  // false: route through SpanTransport
};

struct RunSnapshot {
  std::string store_dump;
  std::string canonical_metrics;
  std::string canonical_service_map;
  std::vector<std::string> traces;
  agent::AgentStats stats;
  server::IngestTelemetry telemetry;
};

RunSnapshot run_pipeline(Topology topo, PipelineShape shape, bool columnar,
                         double rps) {
  core::DeploymentConfig config;
  config.columnar_batching = columnar;
  config.agent.drain_workers = shape.drain_workers;
  config.agent.collector.cpu_count = 4;
  config.server.store_shards = shape.store_shards;
  config.transport.direct = shape.direct;
  core::Deployment deepflow(topo.cluster.get(), config);
  EXPECT_TRUE(deepflow.deploy()) << deepflow.error();
  topo.app->run_constant_load(topo.entry, rps, 1 * kSecond);
  deepflow.finish();

  RunSnapshot snap;
  snap.store_dump = server::canonical_store_dump(deepflow.server().store());
  const metrics::MetricsAggregator& agg =
      deepflow.server().metrics_aggregator();
  snap.canonical_metrics = agg.canonical_metrics();
  snap.canonical_service_map = agg.canonical_service_map();
  snap.stats = deepflow.aggregate_stats();
  snap.telemetry = deepflow.server().ingest_telemetry();

  const server::SpanStore& store = deepflow.server().store();
  std::set<u64> claimed;
  for (const u64 id : store.span_list(0, ~TimestampNs{0})) {
    if (claimed.contains(id)) continue;
    const server::AssembledTrace trace = deepflow.server().query_trace(id);
    for (const auto& s : trace.spans) claimed.insert(s.span.span_id);
    snap.traces.push_back(server::canonical_trace(trace));
  }
  std::sort(snap.traces.begin(), snap.traces.end());
  return snap;
}

void expect_identical(const RunSnapshot& columnar, const RunSnapshot& per_span,
                      const char* label) {
  EXPECT_GT(columnar.stats.spans_emitted, 0u) << label;
  EXPECT_EQ(columnar.stats.spans_emitted, per_span.stats.spans_emitted)
      << label;
  EXPECT_EQ(columnar.stats.syscall_records, per_span.stats.syscall_records)
      << label;
  EXPECT_EQ(columnar.stats.packet_records, per_span.stats.packet_records)
      << label;
  EXPECT_EQ(columnar.store_dump, per_span.store_dump) << label;
  EXPECT_EQ(columnar.canonical_metrics, per_span.canonical_metrics) << label;
  EXPECT_EQ(columnar.canonical_service_map, per_span.canonical_service_map)
      << label;
  ASSERT_EQ(columnar.traces.size(), per_span.traces.size()) << label;
  for (size_t i = 0; i < columnar.traces.size(); ++i) {
    EXPECT_EQ(columnar.traces[i], per_span.traces[i]) << label << " trace "
                                                      << i;
  }
  // Same spans reached the server in both modes.
  EXPECT_EQ(columnar.telemetry.spans, per_span.telemetry.spans) << label;
  EXPECT_EQ(columnar.telemetry.duplicate_spans,
            per_span.telemetry.duplicate_spans)
      << label;
}

struct EquivalenceCase {
  const char* name;
  Topology (*make)();
  double rps;
};

const EquivalenceCase kCases[] = {
    {"spring_boot_demo", [] { return workloads::make_spring_boot_demo(); },
     25.0},
    {"bookinfo", [] { return workloads::make_bookinfo(); }, 20.0},
    {"mq_pipeline", [] { return workloads::make_mq_pipeline(); }, 15.0},
};

TEST(BatchEquivalence, DirectIngestMatchesPerSpanSink) {
  for (const EquivalenceCase& c : kCases) {
    SCOPED_TRACE(c.name);
    const PipelineShape shape{.drain_workers = 1, .store_shards = 1,
                              .direct = true};
    const RunSnapshot columnar =
        run_pipeline(c.make(), shape, /*columnar=*/true, c.rps);
    const RunSnapshot per_span =
        run_pipeline(c.make(), shape, /*columnar=*/false, c.rps);
    expect_identical(columnar, per_span, c.name);
    // The columnar run actually used the batch path; the per-span run
    // never touched it.
    EXPECT_GT(columnar.telemetry.span_batches, 0u) << c.name;
    EXPECT_EQ(columnar.telemetry.span_batch_spans, columnar.telemetry.spans)
        << c.name;
    EXPECT_EQ(per_span.telemetry.span_batches, 0u) << c.name;
  }
}

TEST(BatchEquivalence, TransportDecompositionMatchesPerSpanOffers) {
  for (const EquivalenceCase& c : kCases) {
    SCOPED_TRACE(c.name);
    const PipelineShape shape{.drain_workers = 1, .store_shards = 1,
                              .direct = false};
    const RunSnapshot columnar =
        run_pipeline(c.make(), shape, /*columnar=*/true, c.rps);
    const RunSnapshot per_span =
        run_pipeline(c.make(), shape, /*columnar=*/false, c.rps);
    expect_identical(columnar, per_span, c.name);
    // Through the transport, spans arrive via ingest_batch in both modes —
    // the batch decomposed at the queue boundary, so span-batch telemetry
    // stays zero and the per-span counters must agree instead.
    EXPECT_EQ(columnar.telemetry.span_batches, 0u) << c.name;
  }
}

TEST(BatchEquivalence, ParallelShardedMatchesPerSpanSink) {
  for (const EquivalenceCase& c : kCases) {
    SCOPED_TRACE(c.name);
    const PipelineShape shape{.drain_workers = 4, .store_shards = 8,
                              .direct = true};
    const RunSnapshot columnar =
        run_pipeline(c.make(), shape, /*columnar=*/true, c.rps);
    const RunSnapshot per_span =
        run_pipeline(c.make(), shape, /*columnar=*/false, c.rps);
    expect_identical(columnar, per_span, c.name);
    EXPECT_GT(columnar.telemetry.span_batches, 0u) << c.name;
  }
}

// A batch never straddles a poll boundary: a server queried mid-run sees
// exactly the spans a per-span run would have delivered by the same poll.
TEST(BatchEquivalence, MidRunVisibilityMatchesPerSpan) {
  auto run_partial = [](bool columnar) {
    Topology topo = workloads::make_spring_boot_demo();
    core::DeploymentConfig config;
    config.columnar_batching = columnar;
    core::Deployment deepflow(topo.cluster.get(), config);
    EXPECT_TRUE(deepflow.deploy()) << deepflow.error();
    topo.app->run_constant_load(topo.entry, 25.0, 500 * kMillisecond);
    deepflow.poll();  // drain what is there, but do NOT finish()
    return deepflow.server().ingested_spans();
  };
  EXPECT_EQ(run_partial(true), run_partial(false));
}

}  // namespace
}  // namespace deepflow
