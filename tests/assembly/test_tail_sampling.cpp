// Anomaly-aware tail sampling over completed streaming windows: anomalous
// traces (error / incomplete / placeholder / latency-outlier members) are
// always kept at full fidelity, healthy traces keep with a deterministic
// content-keyed probability, every verdict lands in the completeness ledger
// (offered == stored + downsampled + refused per window), and dropped
// traces leave the pending segment flush so disk retention follows the
// same policy.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "assembly/streaming_assembler.h"
#include "core/deployment.h"
#include "server/canonical.h"
#include "tests/reference/naive_assembler.h"
#include "tests/storage/storage_test_util.h"
#include "workloads/topologies.h"

namespace deepflow {
namespace {

using assembly::StreamingAssembler;
using server::AssembledTrace;

agent::Span sampled_span(u64 id, SystraceId trace, TimestampNs start,
                         bool ok) {
  agent::Span span;
  span.span_id = id;
  span.kind = agent::SpanKind::kSystem;
  span.systrace_id = trace;
  span.host = "node-0";
  span.pid = 7;
  span.tid = 7;
  span.start_ts = start;
  span.end_ts = start + 10'000;
  span.ok = ok;
  return span;
}

server::StreamingAssemblyConfig sampling_config(u32 keep_pct) {
  server::StreamingAssemblyConfig config;
  config.enabled = true;
  config.tail_sampling.enabled = true;
  config.tail_sampling.healthy_keep_pct = keep_pct;
  return config;
}

TEST(StreamingTailSampling, AnomalousKeptHealthyDownsampledLedgerConserves) {
  server::SpanStore store(server::EncoderKind::kSmart, nullptr, 1);
  server::TraceAssembler assembler(&store);
  StreamingAssembler sa(sampling_config(20), &store, &assembler);

  // 100 traces x 3 spans spread over ~40 one-second ledger windows; every
  // 10th trace carries one error span.
  const u64 kTraces = 100;
  std::vector<std::vector<u64>> ids(kTraces);
  for (u64 t = 0; t < kTraces; ++t) {
    const bool anomalous = t % 10 == 0;
    for (u64 k = 0; k < 3; ++k) {
      agent::Span span =
          sampled_span(100 * t + k + 1, t + 1,
                       t * 400 * kMillisecond + k * kMillisecond,
                       /*ok=*/!(anomalous && k == 2));
      server::SpanNote note =
          server::make_span_note(span, /*latency_outlier=*/false);
      note.span_id = store.insert(std::move(span));
      ids[t].push_back(note.span_id);
      sa.observe(note);
    }
  }
  sa.flush();

  const server::AssemblyTelemetry t = sa.telemetry();
  EXPECT_EQ(t.finalized_traces, kTraces);
  EXPECT_EQ(t.kept_anomalous_traces, 10u);
  EXPECT_EQ(t.kept_sampled_traces + t.dropped_traces, 90u);
  // ~20% of 90 healthy traces; the hash is deterministic, the band is wide.
  EXPECT_GE(t.kept_sampled_traces, 5u);
  EXPECT_LE(t.kept_sampled_traces, 40u);
  EXPECT_EQ(t.dropped_spans, t.dropped_traces * 3);
  EXPECT_GT(t.retained_bytes, 0u);
  EXPECT_GT(t.dropped_bytes, 0u);

  // Every anomalous trace serves at full fidelity; dropped healthy traces
  // are absent from the index (queries fall back to batch assembly).
  u64 indexed_traces = 0;
  for (u64 trace = 0; trace < kTraces; ++trace) {
    const bool in_index = sa.completed(ids[trace][0]) != nullptr;
    for (const u64 id : ids[trace]) {
      EXPECT_EQ(sa.completed(id) != nullptr, in_index) << id;
    }
    if (trace % 10 == 0) EXPECT_TRUE(in_index) << trace;
    if (in_index) ++indexed_traces;
  }
  EXPECT_EQ(indexed_traces, t.kept_anomalous_traces + t.kept_sampled_traces);

  // Per-window conservation plus exact totals across the run.
  u64 offered = 0;
  u64 stored = 0;
  u64 downsampled = 0;
  u64 anomalous_kept = 0;
  for (const CompletenessWindow& w : sa.completeness(0, ~TimestampNs{0})) {
    EXPECT_EQ(w.offered, w.stored + w.downsampled + w.refused);
    EXPECT_EQ(w.refused, 0u);
    offered += w.offered;
    stored += w.stored;
    downsampled += w.downsampled;
    anomalous_kept += w.anomalous_kept;
  }
  EXPECT_EQ(offered, 300u);
  EXPECT_EQ(stored, (t.kept_anomalous_traces + t.kept_sampled_traces) * 3);
  EXPECT_EQ(downsampled, t.dropped_traces * 3);
  EXPECT_EQ(anomalous_kept, 30u);
}

TEST(StreamingTailSampling, VerdictsAreArrivalOrderIndependent) {
  // Same spans, forward vs reverse feed order: the content-keyed hash must
  // reach identical per-trace verdicts.
  std::vector<bool> kept_forward;
  std::vector<bool> kept_reverse;
  for (const bool reverse : {false, true}) {
    server::SpanStore store(server::EncoderKind::kSmart, nullptr, 1);
    server::TraceAssembler assembler(&store);
    StreamingAssembler sa(sampling_config(30), &store, &assembler);
    const u64 kTraces = 64;
    std::vector<u64> first_ids(kTraces);
    std::vector<server::SpanNote> notes;
    for (u64 t = 0; t < kTraces; ++t) {
      agent::Span span = sampled_span(10 * t + 1, t + 1,
                                      t * 100 * kMillisecond, /*ok=*/true);
      server::SpanNote note = server::make_span_note(span, false);
      note.span_id = store.insert(std::move(span));
      first_ids[t] = note.span_id;
      notes.push_back(note);
    }
    if (reverse) std::reverse(notes.begin(), notes.end());
    sa.observe_many(notes.data(), notes.size());
    sa.flush();
    for (u64 t = 0; t < kTraces; ++t) {
      (reverse ? kept_reverse : kept_forward)
          .push_back(sa.completed(first_ids[t]) != nullptr);
    }
  }
  EXPECT_EQ(kept_forward, kept_reverse);
}

TEST(StreamingTailSampling, DeploymentRunConservesAndFallsBackForDropped) {
  workloads::Topology topo = workloads::make_spring_boot_demo(11);
  core::DeploymentConfig config;
  config.server.streaming.enabled = true;
  config.server.streaming.tail_sampling.enabled = true;
  config.server.streaming.tail_sampling.healthy_keep_pct = 25;
  core::Deployment deepflow(topo.cluster.get(), config);
  ASSERT_TRUE(deepflow.deploy()) << deepflow.error();
  topo.app->run_constant_load(topo.entry, 25.0, 1 * kSecond);
  deepflow.finish();

  const server::DeepFlowServer& server = deepflow.server();
  ASSERT_NE(deepflow.streaming(), nullptr);
  const server::AssemblyTelemetry t = deepflow.streaming()->telemetry();
  EXPECT_GT(t.finalized_traces, 0u);

  // query_completeness merges the (inactive) governor ledger with the
  // assembler's; the invariant must survive the merge, window for window.
  u64 offered = 0;
  for (const CompletenessWindow& w :
       server.query_completeness(0, ~TimestampNs{0})) {
    EXPECT_EQ(w.offered, w.stored + w.downsampled + w.refused);
    offered += w.offered;
  }
  EXPECT_GT(offered, 0u);
  EXPECT_EQ(offered, t.finalized_spans);

  // Dropped traces stay queryable at full fidelity via batch fallback (the
  // spans remain in the hot store; only index + disk retention degrade).
  if (t.dropped_traces > 0) {
    u64 dropped_id = 0;
    for (const u64 id : server.store().span_list(0, ~TimestampNs{0})) {
      if (deepflow.streaming()->completed(id) == nullptr) {
        dropped_id = id;
        break;
      }
    }
    ASSERT_NE(dropped_id, 0u);
    const AssembledTrace served = server.query_trace(dropped_id);
    const AssembledTrace naive =
        server::reference::assemble_naive(server.store(), dropped_id);
    EXPECT_EQ(server::canonical_trace(naive), server::canonical_trace(served));
    EXPECT_GT(server.query_telemetry().streaming_fallback_assemblies, 0u);
  }
}

TEST(StreamingTailSampling, DroppedTracesAreExcludedFromSegmentFlush) {
  storage::testutil::ScopedTempDir dir("df-streaming-sampling");
  server::ServerConfig config;
  config.storage.enabled = true;
  config.storage.dir = dir.str();
  config.storage.segment_spans = 1 << 20;  // nothing flushes until forced
  config.streaming = sampling_config(/*keep_pct=*/0);  // drop ALL healthy
  server::DeepFlowServer server(nullptr, config);
  StreamingAssembler sa(config.streaming, &server.mutable_store(),
                        &server.trace_assembler(), &server.governor());
  server.attach_streaming(&sa);

  // 30 single-span traces, every third anomalous (error span).
  std::vector<u64> anomalous_ids;
  std::vector<u64> healthy_ids;
  for (u64 t = 0; t < 30; ++t) {
    const bool anomalous = t % 3 == 0;
    agent::Span span = sampled_span(t + 1, 1000 + t, t * 10 * kMillisecond,
                                    /*ok=*/!anomalous);
    (anomalous ? anomalous_ids : healthy_ids).push_back(span.span_id);
    server.ingest(std::move(span));
  }
  server.finalize();
  sa.flush();  // verdicts discard dropped spans BEFORE the flush below
  server.mutable_store().flush_storage();

  const server::AssemblyTelemetry t = sa.telemetry();
  EXPECT_EQ(t.kept_anomalous_traces, 10u);
  EXPECT_EQ(t.dropped_traces, 20u);
  EXPECT_EQ(t.flush_excluded_spans, 20u);
  EXPECT_EQ(server.store().storage_telemetry().flushed_spans, 10u);

  // Restart: only the kept spans were durable.
  server::SpanStore recovered(server::EncoderKind::kSmart, nullptr, 1,
                              config.storage);
  EXPECT_EQ(recovered.recovered_ids().size(), 10u);
  for (const u64 id : anomalous_ids) {
    EXPECT_TRUE(recovered.recovered_ids().contains(id)) << id;
  }
  for (const u64 id : healthy_ids) {
    EXPECT_FALSE(recovered.recovered_ids().contains(id)) << id;
  }
}

}  // namespace
}  // namespace deepflow
