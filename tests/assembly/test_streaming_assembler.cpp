// Streaming assembler unit suite: watermark boundary semantics (a span
// exactly AT the watermark can still join; strictly-older groups close),
// monotone watermarks under disorder, post-close straggler degradation
// (new group, never a mutation of served history), u64-wrap-adjacent
// timestamps, flush/ledger conservation, and the two open-window pressure
// valves (max_open_windows trims + governor kAssembly-ceiling closes).
#include <gtest/gtest.h>

#include <vector>

#include "assembly/streaming_assembler.h"
#include "common/governor.h"
#include "server/span_store.h"
#include "server/trace_assembler.h"
#include "tests/storage/storage_test_util.h"

namespace deepflow {
namespace {

using assembly::StreamingAssembler;
using server::SpanNote;
using server::StreamingAssemblyConfig;

agent::Span make_span(u64 id, SystraceId trace, TimestampNs start,
                      TimestampNs end) {
  agent::Span span;
  span.span_id = id;
  span.kind = agent::SpanKind::kSystem;
  span.systrace_id = trace;
  span.host = "node-0";
  span.pid = 7;
  span.tid = 7;
  span.start_ts = start;
  span.end_ts = end;
  return span;
}

/// Store the span, then feed its note with the store-assigned id (the same
/// post-insert discipline the server's per-span ingest path uses).
u64 feed(server::SpanStore& store, StreamingAssembler& sa, agent::Span span) {
  SpanNote note = server::make_span_note(span, /*latency_outlier=*/false);
  note.span_id = store.insert(std::move(span));
  sa.observe(note);
  return note.span_id;
}

struct Rig {
  explicit Rig(StreamingAssemblyConfig config,
               ResourceGovernor* governor = nullptr)
      : store(server::EncoderKind::kSmart, nullptr, 1, {}, governor),
        assembler(&store),
        sa(config, &store, &assembler, governor) {}
  server::SpanStore store;
  server::TraceAssembler assembler;
  StreamingAssembler sa;
};

StreamingAssemblyConfig tight_config(DurationNs window = 1000) {
  StreamingAssemblyConfig config;
  config.enabled = true;
  config.disorder_window_ns = window;
  config.close_check_interval_spans = 1;  // scan after every span
  // Synchronous finalization: this suite asserts completed()/counter state
  // immediately after a close, which is only deterministic inline.
  config.finalize_workers = 0;
  return config;
}

TEST(StreamingAssembler, BoundaryExactSpanStaysOpenStrictlyOlderCloses) {
  Rig rig(tight_config(1000));
  const u64 a = feed(rig.store, rig.sa, make_span(1, 11, 0, 0));
  const u64 b = feed(rig.store, rig.sa, make_span(2, 12, 1000, 1000));
  const u64 c = feed(rig.store, rig.sa, make_span(3, 13, 2000, 2000));
  // Watermark = 2000 - 1000 = 1000. Group a (max_ts 0) is strictly below it
  // and closes; group b sits exactly AT the watermark and must stay open.
  EXPECT_EQ(rig.sa.watermark(), 1000u);
  EXPECT_NE(rig.sa.completed(a), nullptr);
  EXPECT_EQ(rig.sa.completed(b), nullptr);
  EXPECT_EQ(rig.sa.completed(c), nullptr);
  EXPECT_EQ(rig.sa.telemetry().open_windows, 2u);

  // One more tick of the clock pushes the watermark past b.
  feed(rig.store, rig.sa, make_span(4, 14, 2001, 2001));
  EXPECT_EQ(rig.sa.watermark(), 1001u);
  EXPECT_NE(rig.sa.completed(b), nullptr);
}

TEST(StreamingAssembler, WatermarkIsMonotoneUnderDisorder) {
  Rig rig(tight_config(1000));
  feed(rig.store, rig.sa, make_span(1, 21, 10'000, 10'000));
  EXPECT_EQ(rig.sa.watermark(), 9000u);
  // Out-of-order arrivals below the watermark never pull it back.
  feed(rig.store, rig.sa, make_span(2, 22, 5000, 5000));
  EXPECT_EQ(rig.sa.watermark(), 9000u);
  feed(rig.store, rig.sa, make_span(3, 23, 100, 100));
  feed(rig.store, rig.sa, make_span(4, 24, 3, 3));
  EXPECT_EQ(rig.sa.watermark(), 9000u);
  EXPECT_EQ(rig.sa.telemetry().late_spans, 3u);
}

TEST(StreamingAssembler, StragglerAfterCloseStartsNewGroupKeepsHistory) {
  Rig rig(tight_config(1000));
  const u64 a = feed(rig.store, rig.sa, make_span(1, 31, 0, 0));
  feed(rig.store, rig.sa, make_span(2, 32, 5000, 5000));  // closes a's group
  const auto first = rig.sa.completed(a);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->spans.size(), 1u);

  // Same systrace key, arriving after its group already closed: it must
  // start a NEW group (late_spans++), not resurrect the finalized one. The
  // new group sits entirely below the watermark, so the very next scan
  // closes it — close-immediately degradation for stragglers.
  const u64 s = feed(rig.store, rig.sa, make_span(3, 31, 10, 10));
  EXPECT_EQ(rig.sa.telemetry().late_spans, 1u);
  // The straggler's finalization sees the full store, so its trace is a
  // superset containing both spans; `a`'s original entry still wins — the
  // served trace object for `a` stays the same immutable object.
  const auto late = rig.sa.completed(s);
  ASSERT_NE(late, nullptr);
  EXPECT_EQ(late->spans.size(), 2u);
  EXPECT_EQ(rig.sa.completed(a).get(), first.get());

  rig.sa.flush();
  EXPECT_EQ(rig.sa.completed(a).get(), first.get());
  EXPECT_EQ(rig.sa.completed(s).get(), late.get());
}

TEST(StreamingAssembler, WrapAdjacentTimestampsDoNotOverflow) {
  const TimestampNs top = ~TimestampNs{0};
  Rig rig(tight_config(1000));
  const u64 old_id =
      feed(rig.store, rig.sa, make_span(1, 41, top - 2000, top - 2000));
  feed(rig.store, rig.sa, make_span(2, 42, top, top));
  // Watermark = ~0 - 1000 with no wraparound; the strictly-older group
  // closes, the wrap-adjacent one stays open until flush.
  EXPECT_EQ(rig.sa.watermark(), top - 1000);
  EXPECT_NE(rig.sa.completed(old_id), nullptr);
  EXPECT_EQ(rig.sa.telemetry().open_windows, 1u);
  rig.sa.flush();
  EXPECT_EQ(rig.sa.telemetry().open_windows, 0u);
}

TEST(StreamingAssembler, NearZeroClocksClampTheWatermark) {
  Rig rig(tight_config(1000));
  feed(rig.store, rig.sa, make_span(1, 51, 5, 5));
  feed(rig.store, rig.sa, make_span(2, 52, 500, 500));
  // max observed (500) is inside the disorder window: the watermark clamps
  // at zero instead of underflowing, and nothing closes.
  EXPECT_EQ(rig.sa.watermark(), 0u);
  EXPECT_EQ(rig.sa.telemetry().open_windows, 2u);
  EXPECT_EQ(rig.sa.telemetry().late_spans, 0u);
}

TEST(StreamingAssembler, ExtremeTimestampFixturesSurviveAndConserve) {
  // The storage suites' hostile-span generator: extreme timestamps (0, ~0,
  // wrap-adjacent, full 64-bit range), random association keys, unicode.
  StreamingAssemblyConfig config = tight_config(60 * kSecond);
  config.close_check_interval_spans = 8;
  Rig rig(config);
  Rng rng(1234);
  const size_t kSpans = 200;
  for (size_t i = 0; i < kSpans; ++i) {
    storage::testutil::OwnedRow row = storage::testutil::random_row(i + 1, rng);
    feed(rig.store, rig.sa, row.span);
  }
  rig.sa.flush();
  const server::AssemblyTelemetry t = rig.sa.telemetry();
  EXPECT_EQ(t.observed_spans, kSpans);
  EXPECT_EQ(t.open_windows, 0u);
  // Conservation: every observed span is either ledgered by its group or
  // counted unknown; with sampling off, stored is the only outcome.
  u64 offered = 0;
  u64 stored = 0;
  u64 other = 0;
  for (const CompletenessWindow& w :
       rig.sa.completeness(0, ~TimestampNs{0})) {
    offered += w.offered;
    stored += w.stored;
    other += w.downsampled + w.refused;
    EXPECT_EQ(w.offered, w.stored + w.downsampled + w.refused);
  }
  EXPECT_EQ(other, 0u);
  EXPECT_EQ(offered, stored);
  EXPECT_EQ(offered + t.unknown_span_ids, kSpans);
}

TEST(StreamingAssembler, FlushClosesEverythingWithConservedLedger) {
  // Default 60 s disorder window >> the 4 s workload: nothing closes until
  // the end-of-run flush.
  Rig rig(tight_config(60 * kSecond));
  std::vector<u64> ids;
  for (u64 t = 0; t < 10; ++t) {
    for (u64 k = 0; k < 4; ++k) {
      const TimestampNs ts = t * 400 * kMillisecond + k * kMillisecond;
      ids.push_back(
          feed(rig.store, rig.sa, make_span(100 * t + k + 1, t + 1, ts, ts)));
    }
  }
  EXPECT_EQ(rig.sa.telemetry().finalized_traces, 0u);
  rig.sa.flush();
  const server::AssemblyTelemetry t = rig.sa.telemetry();
  EXPECT_EQ(t.open_windows, 0u);
  EXPECT_EQ(t.finalized_traces, 10u);
  EXPECT_EQ(t.finalized_spans, 40u);
  EXPECT_EQ(t.unknown_span_ids, 0u);
  for (const u64 id : ids) EXPECT_NE(rig.sa.completed(id), nullptr) << id;
  u64 offered = 0;
  u64 stored = 0;
  for (const CompletenessWindow& w :
       rig.sa.completeness(0, ~TimestampNs{0})) {
    offered += w.offered;
    stored += w.stored;
    EXPECT_EQ(w.downsampled, 0u);
    EXPECT_EQ(w.refused, 0u);
  }
  EXPECT_EQ(offered, 40u);
  EXPECT_EQ(offered, stored);
}

TEST(StreamingAssembler, DuplicateNotesFinalizeOnce) {
  Rig rig(tight_config(60 * kSecond));
  agent::Span span = make_span(1, 61, 100, 200);
  SpanNote note = server::make_span_note(span, false);
  note.span_id = rig.store.insert(std::move(span));
  rig.sa.observe(note);
  rig.sa.observe(note);  // redelivery reaching the hook twice
  rig.sa.flush();
  const server::AssemblyTelemetry t = rig.sa.telemetry();
  EXPECT_EQ(t.observed_spans, 2u);
  EXPECT_EQ(t.finalized_spans, 1u);
  EXPECT_EQ(t.finalized_traces, 1u);
}

TEST(StreamingAssembler, MaxOpenWindowsTrimsOldestFirst) {
  StreamingAssemblyConfig config = tight_config(60 * kSecond);
  config.max_open_windows = 2;
  Rig rig(config);
  std::vector<u64> ids;
  for (u64 t = 0; t < 5; ++t) {
    ids.push_back(feed(rig.store, rig.sa,
                       make_span(t + 1, 70 + t, t * 1000, t * 1000)));
  }
  const server::AssemblyTelemetry t = rig.sa.telemetry();
  EXPECT_EQ(t.open_windows, 2u);
  EXPECT_EQ(t.forced_closes, 3u);
  // Oldest-first: the three earliest traces were force-closed and serve
  // from the index; the two newest are still open.
  for (size_t i = 0; i < 3; ++i) EXPECT_NE(rig.sa.completed(ids[i]), nullptr);
  for (size_t i = 3; i < 5; ++i) EXPECT_EQ(rig.sa.completed(ids[i]), nullptr);
}

TEST(StreamingAssembler, GovernorPressureForcesEarlyCloses) {
  GovernorConfig gc;
  gc.enabled = true;
  gc.budget_bytes = size_t{1} << 30;  // total never binds
  gc.account_budget_bytes[static_cast<size_t>(GovernorAccount::kAssembly)] =
      2048;
  ResourceGovernor governor(gc);
  StreamingAssemblyConfig config = tight_config(60 * kSecond);
  Rig rig(config, &governor);
  for (u64 t = 0; t < 64; ++t) {
    feed(rig.store, rig.sa, make_span(t + 1, 200 + t, t * 1000, t * 1000));
  }
  const server::AssemblyTelemetry t = rig.sa.telemetry();
  EXPECT_GT(t.pressure_closes, 0u);
  EXPECT_LT(t.open_windows, 64u);
  EXPECT_GT(governor.account_bytes(GovernorAccount::kAssembly), 0u);
  rig.sa.flush();
  EXPECT_EQ(rig.sa.telemetry().open_windows, 0u);
}

TEST(StreamingAssembler, DestructorReturnsGovernorBytes) {
  GovernorConfig gc;
  gc.enabled = true;
  gc.budget_bytes = size_t{1} << 30;
  ResourceGovernor governor(gc);
  {
    Rig rig(tight_config(60 * kSecond), &governor);
    for (u64 t = 0; t < 8; ++t) {
      feed(rig.store, rig.sa, make_span(t + 1, 300 + t, t * 1000, t * 1000));
    }
    rig.sa.flush();
    EXPECT_GT(governor.account_bytes(GovernorAccount::kAssembly), 0u);
  }
  EXPECT_EQ(governor.account_bytes(GovernorAccount::kAssembly), 0u);
}

}  // namespace
}  // namespace deepflow
