// Streaming-equivalence suite: with tail sampling off, traces served from
// the streaming assembler's materialized index must be byte-identical to
// both the frozen naive reference (tests/reference/naive_assembler.h) and a
// fresh batch TraceAssembler over the same store — over the equivalence
// topologies, serially and with an 8-shard store / 8-worker batch service.
// A separate mid-run-close case (tiny disorder window, interleaved trace
// members) checks the monotone-degradation contract instead: early-closed
// traces serve a SUBSET of the final closure, and the completeness ledger
// still conserves every observed span.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "assembly/streaming_assembler.h"
#include "core/deployment.h"
#include "server/canonical.h"
#include "tests/reference/naive_assembler.h"
#include "workloads/topologies.h"

namespace deepflow {
namespace {

using server::AssembledTrace;
using workloads::Topology;

std::string trace_signature(const AssembledTrace& trace) {
  std::string out;
  for (const auto& s : trace.spans) {
    out += std::to_string(s.span.span_id) + "<-" +
           std::to_string(s.span.parent_span_id) + "#" +
           std::to_string(s.parent_rule) + ";";
  }
  return out;
}

std::vector<u64> span_ids_of(const AssembledTrace& trace) {
  std::vector<u64> ids;
  for (const auto& s : trace.spans) {
    if (s.span.span_id != server::kLostPlaceholderSpanId) {
      ids.push_back(s.span.span_id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

struct StreamingCase {
  const char* name;
  Topology (*make)();
  double rps;
  size_t shards;
  size_t workers;
};

// Golden seeds, serial store/serial assembly and 8-shard store/8-worker
// batch assembly. Sampling stays OFF: every finalized trace is retained.
const StreamingCase kCases[] = {
    {"spring_boot_demo_serial",
     [] { return workloads::make_spring_boot_demo(11); }, 25.0, 1, 1},
    {"spring_boot_demo_8w",
     [] { return workloads::make_spring_boot_demo(11); }, 25.0, 8, 8},
    {"bookinfo_serial", [] { return workloads::make_bookinfo(13); }, 20.0, 1,
     1},
    {"bookinfo_8w", [] { return workloads::make_bookinfo(13); }, 20.0, 8, 8},
};

TEST(StreamingEquivalence, IndexServedTracesMatchNaiveAndBatch) {
  for (const StreamingCase& c : kCases) {
    SCOPED_TRACE(c.name);
    Topology topo = c.make();
    core::DeploymentConfig config;
    config.server.store_shards = c.shards;
    config.server.streaming.enabled = true;  // 60 s disorder window default
    core::Deployment deepflow(topo.cluster.get(), config);
    ASSERT_TRUE(deepflow.deploy()) << deepflow.error();
    topo.app->run_constant_load(topo.entry, c.rps, 1 * kSecond);
    deepflow.finish();

    const server::DeepFlowServer& server = deepflow.server();
    ASSERT_NE(deepflow.streaming(), nullptr);
    const server::AssemblyTelemetry st = deepflow.streaming()->telemetry();
    EXPECT_GT(st.finalized_traces, 0u);
    EXPECT_EQ(st.open_windows, 0u);  // finish() flushed every window
    EXPECT_EQ(st.unknown_span_ids, 0u);

    // Snapshot before querying: the queries below must be answered by the
    // index, adding ZERO batch assemblies on the server's assembler.
    const u64 assembled_before = server.query_telemetry().traces_assembled;

    const server::SpanStore& store = server.store();
    // An independent assembler instance: its counters are its own, so it
    // cannot mask whether the server assembled anything.
    server::TraceAssembler batch(&store);
    const std::vector<u64> all_ids = store.span_list(0, ~TimestampNs{0});
    ASSERT_FALSE(all_ids.empty());
    std::set<u64> claimed;
    size_t queries = 0;
    std::vector<std::string> signatures;
    for (const u64 id : all_ids) {
      if (claimed.contains(id)) continue;
      const AssembledTrace served = server.query_trace(id);
      ++queries;
      for (const auto& s : served.spans) claimed.insert(s.span.span_id);
      const AssembledTrace naive =
          server::reference::assemble_naive(store, id);
      ASSERT_EQ(trace_signature(naive), trace_signature(served))
          << c.name << " start=" << id;
      EXPECT_EQ(trace_signature(batch.assemble(id)), trace_signature(served))
          << c.name << " start=" << id;
      EXPECT_EQ(server::canonical_trace(naive), server::canonical_trace(served))
          << c.name << " start=" << id;
      signatures.push_back(trace_signature(served));
    }

    const server::QueryTelemetry qt = server.query_telemetry();
    EXPECT_EQ(qt.streaming_fallback_assemblies, 0u) << c.name;
    EXPECT_GE(qt.streaming_index_hits, queries) << c.name;
    EXPECT_EQ(qt.traces_assembled, assembled_before)
        << c.name << ": queries fell back to batch assembly";

    // The batch assembly service serves the same index-backed traces at any
    // worker count, positionally aligned.
    std::vector<u64> roots;
    std::vector<std::string> root_signatures;
    {
      std::set<u64> seen;
      for (const u64 id : all_ids) {
        if (seen.contains(id)) continue;
        const AssembledTrace t = server.query_trace(id);
        for (const auto& s : t.spans) seen.insert(s.span.span_id);
        roots.push_back(id);
        root_signatures.push_back(trace_signature(t));
      }
    }
    const std::vector<AssembledTrace> fanout =
        server.assemble_traces(roots, c.workers);
    ASSERT_EQ(fanout.size(), roots.size());
    for (size_t i = 0; i < fanout.size(); ++i) {
      EXPECT_EQ(root_signatures[i], trace_signature(fanout[i]))
          << c.name << " slot=" << i;
    }
  }
}

// Mid-run closes: a disorder window far smaller than the trace spread, with
// the members of each trace interleaved across the whole run, forces groups
// to close before their later members arrive. Contract: monotone
// degradation — early-served traces are subsets of the final closure, the
// ledger conserves every span, and served history never mutates.
TEST(StreamingEquivalence, MidRunClosesServeMonotoneSubsets) {
  server::ServerConfig config;
  config.streaming.enabled = true;
  config.streaming.disorder_window_ns = 100'000;  // 100 us << 4 ms of traffic
  config.streaming.close_check_interval_spans = 64;
  // Inline finalization: the mid-run assertions below (finalized > 0, late
  // stragglers already indexed) need closes visible at deterministic points.
  config.streaming.finalize_workers = 0;
  server::DeepFlowServer server(nullptr, config);
  assembly::StreamingAssembler sa(config.streaming, &server.mutable_store(),
                                  &server.trace_assembler(),
                                  &server.governor());
  server.attach_streaming(&sa);

  // 4000 spans in 500 traces of 8; members of one trace are 500 ids apart,
  // so a trace spans the whole run and its group is forced to close early.
  // Every 137th span is withheld until the end of the run: by then its
  // group has closed, so it arrives below the watermark — a true straggler.
  const u64 kSpans = 4000;
  const u64 kTraces = 500;
  const auto make = [&](u64 i) {
    agent::Span span;
    span.span_id = i + 1;
    span.kind = agent::SpanKind::kSystem;
    span.systrace_id = (i % kTraces) + 1;
    span.host = "node-0";
    span.pid = 7;
    span.tid = 7;
    span.start_ts = i * 1000;
    span.end_ts = span.start_ts + 500;
    return span;
  };
  std::vector<u64> deferred;
  for (u64 i = 0; i < kSpans; ++i) {
    if (i % 137 == 3) {
      deferred.push_back(i);
      continue;
    }
    server.ingest(make(i));
  }
  for (const u64 i : deferred) server.ingest(make(i));
  const server::AssemblyTelemetry mid = sa.telemetry();
  EXPECT_GT(mid.finalized_traces, 0u);  // closes happened DURING ingest
  EXPECT_GT(mid.late_spans, 0u);        // interleaving made stragglers
  sa.flush();

  const server::SpanStore& store = server.store();
  for (u64 id = 1; id <= kSpans; id += 97) {
    const AssembledTrace served = server.query_trace(id);
    const AssembledTrace naive = server::reference::assemble_naive(store, id);
    const std::vector<u64> served_ids = span_ids_of(served);
    const std::vector<u64> naive_ids = span_ids_of(naive);
    ASSERT_FALSE(served_ids.empty()) << id;
    EXPECT_TRUE(std::includes(naive_ids.begin(), naive_ids.end(),
                              served_ids.begin(), served_ids.end()))
        << "id " << id << ": served trace is not a subset of the closure";
  }

  // Ledger conservation under early closes: every observed span is ledgered
  // exactly once (or counted unknown), sampling off means all stored.
  const server::AssemblyTelemetry t = sa.telemetry();
  u64 offered = 0;
  u64 stored = 0;
  for (const CompletenessWindow& w : sa.completeness(0, ~TimestampNs{0})) {
    EXPECT_EQ(w.offered, w.stored + w.downsampled + w.refused);
    offered += w.offered;
    stored += w.stored;
  }
  EXPECT_EQ(offered, stored);
  EXPECT_EQ(offered + t.unknown_span_ids, kSpans);
  EXPECT_EQ(t.open_windows, 0u);
}

}  // namespace
}  // namespace deepflow
