// Unit tests for the multi-resolution write-through rollup rings.
#include <gtest/gtest.h>

#include "metrics/rollup.h"

namespace deepflow::metrics {
namespace {

TEST(MetricsRollup, BucketFoldsCommutatively) {
  MetricsBucket a;
  a.add_request(10, true, false);
  a.add_request(30, false, true);
  a.add_net_frame();
  EXPECT_EQ(a.requests, 2u);
  EXPECT_EQ(a.errors, 1u);
  EXPECT_EQ(a.incomplete, 1u);
  EXPECT_EQ(a.duration_sum, 40u);
  EXPECT_EQ(a.duration_min, 10u);
  EXPECT_EQ(a.duration_max, 30u);
  EXPECT_EQ(a.net_frames, 1u);
  EXPECT_FALSE(a.empty());

  MetricsBucket b;
  b.add_request(5, true, false);
  MetricsBucket merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.requests, 3u);
  EXPECT_EQ(merged.duration_min, 5u);
  EXPECT_EQ(merged.duration_max, 30u);

  // Merge in the opposite order: identical result (commutative folds).
  MetricsBucket reversed = b;
  reversed.merge(a);
  EXPECT_EQ(reversed.requests, merged.requests);
  EXPECT_EQ(reversed.duration_sum, merged.duration_sum);
  EXPECT_EQ(reversed.duration_min, merged.duration_min);
  EXPECT_EQ(reversed.duration_max, merged.duration_max);
}

TEST(MetricsRollup, EmptyBucketIsEmpty) {
  MetricsBucket bucket;
  EXPECT_TRUE(bucket.empty());
  bucket.add_net_frame();
  EXPECT_FALSE(bucket.empty());  // net-only buckets are retained too
}

TEST(MetricsRollup, WriteThroughLandsInEveryLevel) {
  MultiResolutionSeries series;
  series.record_request(5 * kSecond + 123, 2 * kMillisecond, true, false);

  DurationNs width = 0;
  auto fine = series.query(0, ~TimestampNs{0}, kSecond, &width);
  ASSERT_EQ(fine.size(), 1u);
  EXPECT_EQ(width, 1 * kSecond);
  EXPECT_EQ(fine[0].bucket_start, 5 * kSecond);
  EXPECT_EQ(fine[0].requests, 1u);

  auto mid = series.query(0, ~TimestampNs{0}, 10 * kSecond, &width);
  ASSERT_EQ(mid.size(), 1u);
  EXPECT_EQ(width, 10 * kSecond);
  EXPECT_EQ(mid[0].bucket_start, 0u);

  auto coarse = series.query(0, ~TimestampNs{0}, 60 * kSecond, &width);
  ASSERT_EQ(coarse.size(), 1u);
  EXPECT_EQ(width, 60 * kSecond);
  EXPECT_EQ(coarse[0].bucket_start, 0u);
}

TEST(MetricsRollup, ResolutionPicksFinestCoveringLevel) {
  MultiResolutionSeries series;
  series.record_request(kSecond, 1000, true, false);

  DurationNs width = 0;
  series.query(0, ~TimestampNs{0}, 1, &width);
  EXPECT_EQ(width, 1 * kSecond);  // finest width >= 1ns
  series.query(0, ~TimestampNs{0}, 5 * kSecond, &width);
  EXPECT_EQ(width, 10 * kSecond);
  series.query(0, ~TimestampNs{0}, 1000 * kSecond, &width);
  EXPECT_EQ(width, 60 * kSecond);  // beyond every level: coarsest
}

TEST(MetricsRollup, QueryFiltersToWindow) {
  MultiResolutionSeries series;
  series.record_request(1 * kSecond, 100, true, false);
  series.record_request(3 * kSecond, 100, false, false);
  series.record_request(65 * kSecond, 100, true, false);

  const auto buckets = series.query(2 * kSecond, 70 * kSecond, kSecond);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].bucket_start, 3 * kSecond);
  EXPECT_EQ(buckets[0].errors, 1u);
  EXPECT_EQ(buckets[1].bucket_start, 65 * kSecond);
}

TEST(MetricsRollup, FineLevelEvictsCoarseLevelRetains) {
  // Default 1s ring retains 120 buckets: a sample at t=0 falls off once
  // t=200s is seen, but the 10s ring (960s horizon) keeps both windows.
  MultiResolutionSeries series;
  series.record_request(0, 100, true, false);
  series.record_request(200 * kSecond, 100, true, false);

  const auto fine = series.query(0, ~TimestampNs{0}, kSecond);
  ASSERT_EQ(fine.size(), 1u);
  EXPECT_EQ(fine[0].bucket_start, 200 * kSecond);

  const auto mid = series.query(0, ~TimestampNs{0}, 10 * kSecond);
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_EQ(mid[0].bucket_start, 0u);
  EXPECT_EQ(mid[1].bucket_start, 200 * kSecond);
}

TEST(MetricsRollup, ArrivalOrderDoesNotChangeQueryOutput) {
  // Samples spread wider than the 1s horizon: arriving old-first the old
  // bucket is written then evicted; new-first it is rejected as late. The
  // retained query surface is identical either way.
  const auto record_all = [](MultiResolutionSeries& series, bool old_first) {
    if (old_first) {
      series.record_request(0, 100, true, false);
      series.record_request(200 * kSecond, 100, true, false);
    } else {
      series.record_request(200 * kSecond, 100, true, false);
      series.record_request(0, 100, true, false);
    }
  };
  MultiResolutionSeries forward;
  record_all(forward, true);
  MultiResolutionSeries backward;
  record_all(backward, false);

  for (const DurationNs res : {kSecond, 10 * kSecond, 60 * kSecond}) {
    const auto a = forward.query(0, ~TimestampNs{0}, res);
    const auto b = backward.query(0, ~TimestampNs{0}, res);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].bucket_start, b[i].bucket_start);
      EXPECT_EQ(a[i].requests, b[i].requests);
      EXPECT_EQ(a[i].duration_sum, b[i].duration_sum);
    }
  }
  // Late classification is the one order-sensitive value — telemetry only.
  EXPECT_EQ(forward.late_samples(0), 0u);
  EXPECT_EQ(backward.late_samples(0), 1u);
  // The sample survives at the levels whose horizon covers it.
  EXPECT_EQ(backward.late_samples(1), 0u);
  EXPECT_EQ(backward.late_samples(2), 0u);
}

TEST(MetricsRollup, WrappedSlotIsReclaimed) {
  // 120 slots at 1s: t=0 and t=120s share slot 0. The old window's counts
  // must not bleed into the new one.
  MultiResolutionSeries series;
  series.record_request(0, 100, true, false);
  series.record_request(120 * kSecond, 700, false, false);

  const auto fine = series.query(0, ~TimestampNs{0}, kSecond);
  ASSERT_EQ(fine.size(), 1u);
  EXPECT_EQ(fine[0].bucket_start, 120 * kSecond);
  EXPECT_EQ(fine[0].requests, 1u);
  EXPECT_EQ(fine[0].duration_sum, 700u);
}

TEST(MetricsRollup, BoundedMemoryUnderLongStreams) {
  // A long stream never grows the rings: the retained bucket count stays
  // within slots at every level.
  RollupConfig config;
  config.levels = {{{1 * kSecond, 8}, {10 * kSecond, 8}, {60 * kSecond, 8}}};
  MultiResolutionSeries series(config);
  for (u64 s = 0; s < 1000; ++s) {
    series.record_request(s * kSecond, 100, true, false);
  }
  EXPECT_LE(series.query(0, ~TimestampNs{0}, kSecond).size(), 8u);
  EXPECT_LE(series.query(0, ~TimestampNs{0}, 10 * kSecond).size(), 8u);
  EXPECT_LE(series.query(0, ~TimestampNs{0}, 60 * kSecond).size(), 8u);
}

TEST(MetricsRollup, EmptyQueryAndBadWindow) {
  MultiResolutionSeries series;
  EXPECT_TRUE(series.query(0, ~TimestampNs{0}, kSecond).empty());
  series.record_request(kSecond, 100, true, false);
  // from > to is empty, not UB.
  EXPECT_TRUE(series.query(5 * kSecond, 2 * kSecond, kSecond).empty());
}

}  // namespace
}  // namespace deepflow::metrics
