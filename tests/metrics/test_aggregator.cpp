// Unit tests for the MetricsAggregator folding rules, query plane, and
// canonical determinism surface. A null resource registry keeps endpoint
// names as dotted-quad IPs, so these tests need no cluster.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "metrics/aggregator.h"

namespace deepflow::metrics {
namespace {

constexpr u32 kClientIp = 0x0A000001;  // 10.0.0.1
constexpr u32 kServerIp = 0x0A000002;  // 10.0.0.2

agent::Span make_sys_span(bool server_side, TimestampNs start,
                          DurationNs duration, bool ok = true,
                          bool incomplete = false) {
  agent::Span span;
  span.kind = agent::SpanKind::kSystem;
  span.from_server_side = server_side;
  span.start_ts = start;
  span.end_ts = start + duration;
  span.ok = ok;
  span.incomplete = incomplete;
  span.int_tags.client_ip = kClientIp;
  span.int_tags.server_ip = kServerIp;
  span.tuple = FiveTuple{Ipv4{kClientIp}, Ipv4{kServerIp}, 40000, 80};
  return span;
}

TEST(MetricsAggregatorTest, ServerSideSysSpanFoldsIntoService) {
  MetricsAggregator agg(nullptr);
  agg.record_span(make_sys_span(true, kSecond, 3 * kMillisecond));
  agg.record_span(make_sys_span(true, kSecond, 5 * kMillisecond, false));

  const ServiceMap map = agg.service_map();
  ASSERT_EQ(map.nodes.size(), 1u);
  EXPECT_EQ(map.nodes[0].name, "10.0.0.2");
  EXPECT_EQ(map.nodes[0].red.requests, 2u);
  EXPECT_EQ(map.nodes[0].red.errors, 1u);
  EXPECT_EQ(map.nodes[0].red.duration_sum, 8 * kMillisecond);
  EXPECT_TRUE(map.edges.empty());

  const MetricsSeries series =
      agg.query_metrics("10.0.0.2", 0, ~TimestampNs{0});
  ASSERT_TRUE(series.found);
  EXPECT_EQ(series.totals.requests, 2u);
  ASSERT_EQ(series.buckets.size(), 1u);
  EXPECT_EQ(series.buckets[0].bucket_start, kSecond);
  EXPECT_EQ(series.buckets[0].requests, 2u);

  EXPECT_FALSE(agg.query_metrics("unknown", 0, ~TimestampNs{0}).found);
}

TEST(MetricsAggregatorTest, ClientSideSysSpanFoldsIntoEdge) {
  MetricsAggregator agg(nullptr);
  agg.record_span(make_sys_span(false, kSecond, 4 * kMillisecond));

  const ServiceMap map = agg.service_map();
  EXPECT_TRUE(map.nodes.empty());
  ASSERT_EQ(map.edges.size(), 1u);
  EXPECT_EQ(map.edges[0].client, "10.0.0.1");
  EXPECT_EQ(map.edges[0].server, "10.0.0.2");
  EXPECT_EQ(map.edges[0].red.requests, 1u);

  const MetricsSeries series =
      agg.query_edge_metrics("10.0.0.1", "10.0.0.2", 0, ~TimestampNs{0});
  ASSERT_TRUE(series.found);
  EXPECT_EQ(series.key, "10.0.0.1->10.0.0.2");
  EXPECT_EQ(series.totals.requests, 1u);
}

TEST(MetricsAggregatorTest, AppAndThirdPartySpansAreNotRedFolded) {
  MetricsAggregator agg(nullptr);
  agent::Span app = make_sys_span(true, kSecond, kMillisecond);
  app.kind = agent::SpanKind::kApplication;
  agg.record_span(app);
  agent::Span third = make_sys_span(true, kSecond, kMillisecond);
  third.kind = agent::SpanKind::kThirdParty;
  agg.record_span(third);

  const ServiceMap map = agg.service_map();
  ASSERT_EQ(map.nodes.size(), 1u);  // app span creates the node...
  EXPECT_EQ(map.nodes[0].red.requests, 0u);  // ...but no RED sample
  EXPECT_EQ(map.nodes[0].app_spans, 1u);

  const MetricsTelemetry t = agg.telemetry();
  EXPECT_EQ(t.app_spans, 1u);
  EXPECT_EQ(t.third_party_spans, 1u);
  EXPECT_EQ(t.service_samples, 0u);
}

TEST(MetricsAggregatorTest, NetSpanCountsEdgeFrames) {
  MetricsAggregator agg(nullptr);
  agent::Span net = make_sys_span(false, kSecond, 0);
  net.kind = agent::SpanKind::kNetwork;
  agg.record_span(net);
  agg.record_span(net);

  const ServiceMap map = agg.service_map();
  ASSERT_EQ(map.edges.size(), 1u);
  EXPECT_EQ(map.edges[0].red.requests, 0u);
  EXPECT_EQ(map.edges[0].net_frames, 2u);
}

TEST(MetricsAggregatorTest, FlowRecordsAttributeThroughDirectory) {
  MetricsAggregator agg(nullptr);
  agg.record_span(make_sys_span(false, kSecond, kMillisecond));

  netsim::FlowMetrics flow;
  flow.bytes = 1000;
  flow.packets = 10;
  flow.retransmissions = 2;
  flow.resets = 1;
  // Deliver from the server's perspective: canonicalization must still hit
  // the directory entry registered by the client-side span.
  const FiveTuple reversed{Ipv4{kServerIp}, Ipv4{kClientIp}, 80, 40000};
  agg.record_flow(reversed, flow);

  const ServiceMap map = agg.service_map();
  ASSERT_EQ(map.edges.size(), 1u);
  EXPECT_EQ(map.edges[0].bytes, 1000u);
  EXPECT_EQ(map.edges[0].packets, 10u);
  EXPECT_EQ(map.edges[0].retransmissions, 2u);
  EXPECT_EQ(map.edges[0].resets, 1u);

  // A tuple no client-side span ever registered is unattributable.
  const FiveTuple unknown{Ipv4{0x0B000001}, Ipv4{0x0B000002}, 1, 2};
  agg.record_flow(unknown, flow);
  const MetricsTelemetry t = agg.telemetry();
  EXPECT_EQ(t.flows_folded, 1u);
  EXPECT_EQ(t.flows_unattributed, 1u);
}

TEST(MetricsAggregatorTest, DisabledAggregatorIgnoresEverything) {
  MetricsConfig config;
  config.enabled = false;
  MetricsAggregator agg(nullptr, config);
  agg.record_span(make_sys_span(true, kSecond, kMillisecond));
  agg.record_flow(FiveTuple{Ipv4{kClientIp}, Ipv4{kServerIp}, 1, 2}, {});

  EXPECT_TRUE(agg.service_map().nodes.empty());
  EXPECT_EQ(agg.telemetry().spans_seen, 0u);
  EXPECT_TRUE(agg.canonical_metrics().empty());
}

TEST(MetricsAggregatorTest, WindowedServiceMapSumsRetainedBuckets) {
  MetricsAggregator agg(nullptr);
  agg.record_span(make_sys_span(true, 1 * kSecond, kMillisecond));
  agg.record_span(make_sys_span(true, 50 * kSecond, kMillisecond, false));

  const ServiceMap all = agg.service_map();
  ASSERT_EQ(all.nodes.size(), 1u);
  EXPECT_EQ(all.nodes[0].red.requests, 2u);

  const ServiceMap early = agg.service_map(0, 10 * kSecond);
  ASSERT_EQ(early.nodes.size(), 1u);
  EXPECT_EQ(early.nodes[0].red.requests, 1u);
  EXPECT_EQ(early.nodes[0].red.errors, 0u);

  const ServiceMap late = agg.service_map(40 * kSecond, 60 * kSecond);
  ASSERT_EQ(late.nodes.size(), 1u);
  EXPECT_EQ(late.nodes[0].red.requests, 1u);
  EXPECT_EQ(late.nodes[0].red.errors, 1u);
}

TEST(MetricsAggregatorTest, OneSampleSummaryIsExact) {
  MetricsAggregator agg(nullptr);
  agg.record_span(make_sys_span(true, kSecond, 7 * kMillisecond));
  const RedSummary red = agg.service_map().nodes[0].red;
  // Thanks to the histogram range clamp, every quantile of a one-sample
  // histogram is the sample itself.
  EXPECT_EQ(red.p50, 7 * kMillisecond);
  EXPECT_EQ(red.p90, 7 * kMillisecond);
  EXPECT_EQ(red.p99, 7 * kMillisecond);
  EXPECT_EQ(red.mean(), 7 * kMillisecond);
}

TEST(MetricsAggregatorTest, CanonicalOutputIsOrderAndStripeInvariant) {
  // A shuffled span stream folded into aggregators with different stripe
  // counts must serialize identically — the in-process analogue of the
  // serial-vs-parallel pipeline equivalence.
  std::vector<agent::Span> spans;
  std::mt19937 rng(42);
  for (u32 i = 0; i < 200; ++i) {
    agent::Span span = make_sys_span(i % 3 != 0, (1 + i % 7) * kSecond,
                                     (i + 1) * kMicrosecond, i % 5 != 0,
                                     i % 11 == 0);
    span.int_tags.client_ip = kClientIp + i % 4;
    span.int_tags.server_ip = kServerIp + i % 3;
    if (i % 13 == 0) span.kind = agent::SpanKind::kNetwork;
    spans.push_back(span);
  }

  MetricsConfig one;
  one.stripes = 1;
  MetricsAggregator serial(nullptr, one);
  for (const agent::Span& span : spans) serial.record_span(span);

  std::shuffle(spans.begin(), spans.end(), rng);
  MetricsConfig eight;
  eight.stripes = 8;
  MetricsAggregator shuffled(nullptr, eight);
  for (const agent::Span& span : spans) shuffled.record_span(span);

  EXPECT_FALSE(serial.canonical_metrics().empty());
  EXPECT_EQ(serial.canonical_metrics(), shuffled.canonical_metrics());
  EXPECT_EQ(serial.canonical_service_map(), shuffled.canonical_service_map());
}

}  // namespace
}  // namespace deepflow::metrics
