// Unit tests for the Prometheus-style text exposition.
#include <gtest/gtest.h>

#include "assembly/streaming_assembler.h"
#include "metrics/exposition.h"
#include "server/server.h"
#include "tests/storage/storage_test_util.h"

namespace deepflow::metrics {
namespace {

TEST(MetricsExposition, LabelValueEscaping) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("a\nb"), "a\\nb");
}

TEST(MetricsExposition, WriterRendersFamiliesAndSamples) {
  PrometheusWriter writer;
  writer.family("df_test_total", "counter", "A test family.");
  writer.sample("df_test_total", {{"service", "cart"}}, u64{42});
  writer.sample("df_test_total",
                {{"client", "a"}, {"server", "b"}}, u64{7});
  writer.sample("df_bare", {}, u64{1});

  const std::string expected =
      "# HELP df_test_total A test family.\n"
      "# TYPE df_test_total counter\n"
      "df_test_total{service=\"cart\"} 42\n"
      "df_test_total{client=\"a\",server=\"b\"} 7\n"
      "df_bare 1\n";
  EXPECT_EQ(writer.str(), expected);
}

TEST(MetricsExposition, IntegralDoublesRenderAsIntegers) {
  PrometheusWriter writer;
  writer.sample("df_x", {}, 3.0);
  writer.sample("df_y", {}, 3.25);
  EXPECT_EQ(writer.str(), "df_x 3\ndf_y 3.25\n");
}

TEST(MetricsExposition, AggregatorExpositionContainsEveryPlane) {
  MetricsAggregator agg(nullptr);
  agent::Span span;
  span.kind = agent::SpanKind::kSystem;
  span.from_server_side = true;
  span.start_ts = kSecond;
  span.end_ts = kSecond + 3 * kMillisecond;
  span.int_tags.client_ip = 0x0A000001;
  span.int_tags.server_ip = 0x0A000002;
  span.tuple = FiveTuple{Ipv4{0x0A000001}, Ipv4{0x0A000002}, 40000, 80};
  agg.record_span(span);
  span.from_server_side = false;
  agg.record_span(span);

  const std::string text = prometheus_text(agg);
  EXPECT_NE(text.find("# TYPE deepflow_service_requests_total counter"),
            std::string::npos);
  EXPECT_NE(
      text.find("deepflow_service_requests_total{service=\"10.0.0.2\"} 1"),
      std::string::npos);
  EXPECT_NE(text.find("deepflow_edge_requests_total{client=\"10.0.0.1\","
                      "server=\"10.0.0.2\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("deepflow_service_duration_ns{service=\"10.0.0.2\","
                      "quantile=\"0.5\"} 3000000"),
            std::string::npos);
  // Self-telemetry rides along.
  EXPECT_NE(text.find("deepflow_metrics_spans_seen 2"), std::string::npos);

  // Deterministic: rendering twice yields identical text.
  EXPECT_EQ(text, prometheus_text(agg));
}

TEST(MetricsExposition, StorageGaugeFamilyNamesArePinned) {
  // The deepflow_storage_* family names are part of the scrape contract:
  // dashboards and alerts key on them, so a rename is a breaking change
  // this test makes explicit.
  storage::testutil::ScopedTempDir dir("df-exposition-storage");
  server::ServerConfig config;
  config.storage.enabled = true;
  config.storage.dir = dir.str();
  config.storage.segment_spans = 4;
  server::DeepFlowServer server(nullptr, config);
  for (u64 id = 1; id <= 8; ++id) {
    agent::Span span;
    span.span_id = id;
    span.host = "node-0";
    span.start_ts = id * kMillisecond;
    span.end_ts = span.start_ts + kMillisecond;
    server.ingest(std::move(span));
  }

  const std::string text = server.prometheus_metrics();
  const char* families[] = {
      "deepflow_storage_segments_written",
      "deepflow_storage_flushed_spans",
      "deepflow_storage_flush_batches",
      "deepflow_storage_recovered_segments",
      "deepflow_storage_recovered_spans",
      "deepflow_storage_torn_segments",
      "deepflow_storage_quarantined_segments",
      "deepflow_storage_decode_failures",
      "deepflow_storage_compactions",
      "deepflow_storage_compacted_segments",
      "deepflow_storage_warm_searches",
      "deepflow_storage_bloom_segment_skips",
      "deepflow_storage_warm_rows_loaded",
      "deepflow_storage_disk_bytes",
  };
  for (const char* family : families) {
    EXPECT_NE(text.find(std::string("# TYPE ") + family + " gauge"),
              std::string::npos)
        << family << " family missing from the exposition";
  }
  // The run flushed two 4-span segments, and the samples say so.
  EXPECT_NE(text.find("deepflow_storage_segments_written 2"),
            std::string::npos);
  EXPECT_NE(text.find("deepflow_storage_flushed_spans 8"), std::string::npos);

  // Without the storage tier the families must be absent, not zero.
  server::DeepFlowServer memory_only(nullptr);
  EXPECT_EQ(memory_only.prometheus_metrics().find("deepflow_storage_"),
            std::string::npos);
}

TEST(MetricsExposition, AssemblyGaugeFamilyNamesArePinned) {
  // The deepflow_assembly_* family names are part of the scrape contract,
  // like the storage gauges above: pin every family the streaming block
  // emits, and require total absence when no hook is attached.
  server::ServerConfig config;
  config.streaming.enabled = true;
  server::DeepFlowServer server(nullptr, config);
  assembly::StreamingAssembler sa(config.streaming, &server.mutable_store(),
                                  &server.trace_assembler(),
                                  &server.governor());
  server.attach_streaming(&sa);
  for (u64 id = 1; id <= 8; ++id) {
    agent::Span span;
    span.span_id = id;
    span.kind = agent::SpanKind::kSystem;
    span.systrace_id = id;
    span.host = "node-0";
    span.start_ts = id * kMillisecond;
    span.end_ts = span.start_ts + kMillisecond;
    server.ingest(std::move(span));
  }
  sa.flush();

  const std::string text = server.prometheus_metrics();
  const char* families[] = {
      "deepflow_assembly_observed_spans",
      "deepflow_assembly_open_windows",
      "deepflow_assembly_watermark_ns",
      "deepflow_assembly_watermark_lag_ns",
      "deepflow_assembly_late_spans",
      "deepflow_assembly_finalized_traces",
      "deepflow_assembly_finalized_spans",
      "deepflow_assembly_forced_closes",
      "deepflow_assembly_pressure_closes",
      "deepflow_assembly_index_traces",
      "deepflow_assembly_indexed_spans",
      "deepflow_assembly_open_bytes",
      "deepflow_assembly_index_bytes",
      "deepflow_assembly_kept_anomalous_traces",
      "deepflow_assembly_kept_sampled_traces",
      "deepflow_assembly_dropped_traces",
      "deepflow_assembly_dropped_spans",
      "deepflow_assembly_retained_bytes",
      "deepflow_assembly_dropped_bytes",
      "deepflow_assembly_flush_excluded_spans",
      "deepflow_assembly_unknown_span_ids",
      "deepflow_assembly_index_hits",
      "deepflow_assembly_fallback_assemblies",
  };
  for (const char* family : families) {
    EXPECT_NE(text.find(std::string("# TYPE ") + family + " gauge"),
              std::string::npos)
        << family << " family missing from the exposition";
  }
  EXPECT_NE(text.find("deepflow_assembly_observed_spans 8"),
            std::string::npos);
  EXPECT_NE(text.find("deepflow_assembly_finalized_traces 8"),
            std::string::npos);

  // Without an attached hook the families must be absent, not zero.
  server::DeepFlowServer memory_only(nullptr);
  EXPECT_EQ(memory_only.prometheus_metrics().find("deepflow_assembly_"),
            std::string::npos);
}

}  // namespace
}  // namespace deepflow::metrics
