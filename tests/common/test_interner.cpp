#include "common/interner.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rand.h"

namespace deepflow {
namespace {

TEST(StringInterner, HandlesAreDenseInFirstInternOrder) {
  StringInterner interner;
  EXPECT_EQ(interner.intern("alpha"), 0u);
  EXPECT_EQ(interner.intern("beta"), 1u);
  EXPECT_EQ(interner.intern("gamma"), 2u);
  // Re-interning returns the original handle, never a new one.
  EXPECT_EQ(interner.intern("beta"), 1u);
  EXPECT_EQ(interner.intern("alpha"), 0u);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(StringInterner, LookupRoundTrips) {
  StringInterner interner;
  const u32 h = interner.intern("service-a.default.svc");
  EXPECT_EQ(interner.lookup(h), "service-a.default.svc");
  EXPECT_EQ(interner.lookup(12345), "");  // out of range: empty view
  EXPECT_EQ(interner.lookup(StringInterner::kInvalidHandle), "");
}

TEST(StringInterner, FindNeverAssigns) {
  StringInterner interner;
  EXPECT_EQ(interner.find("ghost"), StringInterner::kInvalidHandle);
  EXPECT_EQ(interner.size(), 0u);
  const u32 h = interner.intern("real");
  EXPECT_EQ(interner.find("real"), h);
}

TEST(StringInterner, ViewsStayValidAcrossGrowth) {
  StringInterner interner;
  const std::string_view early = interner.lookup(interner.intern("early"));
  for (int i = 0; i < 10'000; ++i) {
    interner.intern("filler-" + std::to_string(i));
  }
  EXPECT_EQ(early, "early");  // deque backing never relocates
}

TEST(StringInterner, CollisionFuzzNoDuplicateHandles) {
  // Adversarial mix: many distinct strings, many repeats, including pairs
  // that are prefixes/suffixes of each other. Every distinct string must get
  // exactly one handle and every handle must resolve to its string.
  StringInterner interner;
  Rng rng(0xfeed5eed);
  std::unordered_map<std::string, u32> expected;
  for (int round = 0; round < 50'000; ++round) {
    const u64 draw = rng.next() % 2'000;
    std::string text = "k" + std::to_string(draw);
    if (draw % 3 == 0) text += text;          // prefix-sharing variant
    if (draw % 7 == 0) text = "";             // empty string is a value too
    const u32 handle = interner.intern(text);
    const auto [it, fresh] = expected.emplace(text, handle);
    if (!fresh) EXPECT_EQ(it->second, handle) << "duplicate handle for " << text;
    EXPECT_EQ(interner.lookup(handle), text);
  }
  EXPECT_EQ(interner.size(), expected.size());
  // Handles are a dense 0..n-1 permutation: no gaps, no duplicates.
  std::unordered_set<u32> handles;
  for (const auto& [text, handle] : expected) {
    EXPECT_LT(handle, expected.size());
    EXPECT_TRUE(handles.insert(handle).second);
  }
}

TEST(StringInterner, ConcurrentInternAndLookup) {
  // The TSan gate runs this: writers intern overlapping key sets while
  // readers resolve handles they have already seen. Handles must agree
  // across threads and resolved views must match.
  StringInterner interner;
  constexpr int kThreads = 4;
  constexpr int kRounds = 20'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&interner, t] {
      Rng rng(1000 + t);
      std::unordered_map<std::string, u32> seen;
      for (int i = 0; i < kRounds; ++i) {
        const std::string key = "shared-" + std::to_string(rng.next() % 257);
        const u32 handle = interner.intern(key);
        const auto [it, fresh] = seen.emplace(key, handle);
        if (!fresh && it->second != handle) std::abort();
        if (interner.lookup(handle) != key) std::abort();
        if (i % 16 == 0) {
          const u32 found = interner.find(key);
          if (found != handle) std::abort();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(interner.size(), 257u);
  for (u32 h = 0; h < interner.size(); ++h) {
    EXPECT_EQ(interner.find(interner.lookup(h)), h);
  }
}

TEST(StringInterner, CardinalityCapBouncesNewStringsOnly) {
  // Satellite of ISSUE 9: a cardinality explosion must not grow the shared
  // dictionary without bound. Past the cap, *new* strings bounce with
  // kInvalidHandle (callers fall back to their per-batch arena) while every
  // string already interned keeps resolving and re-interning normally.
  StringInterner interner;
  interner.set_max_entries(4);
  EXPECT_EQ(interner.max_entries(), 4u);
  const u32 a = interner.intern("a");
  const u32 b = interner.intern("b");
  const u32 c = interner.intern("c");
  const u32 d = interner.intern("d");
  EXPECT_EQ(interner.size(), 4u);
  EXPECT_EQ(interner.overflow_count(), 0u);

  const size_t bytes_at_cap = interner.approx_bytes();
  // The explosion: 10k distinct request-ids all bounce, none are stored.
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_EQ(interner.intern("req-" + std::to_string(i)),
              StringInterner::kInvalidHandle);
  }
  EXPECT_EQ(interner.size(), 4u);
  EXPECT_EQ(interner.overflow_count(), 10'000u);
  EXPECT_EQ(interner.approx_bytes(), bytes_at_cap);  // no hidden growth

  // Pre-cap strings are unaffected in every direction.
  EXPECT_EQ(interner.intern("a"), a);
  EXPECT_EQ(interner.intern("d"), d);
  EXPECT_EQ(interner.find("b"), b);
  EXPECT_EQ(interner.lookup(c), "c");
  // find() of a bounced string stays a miss (it was never admitted).
  EXPECT_EQ(interner.find("req-7"), StringInterner::kInvalidHandle);
}

TEST(StringInterner, CapReportsBytesToGovernor) {
  GovernorConfig config;
  config.enabled = true;  // telemetry-only accounting
  ResourceGovernor governor(config);
  StringInterner interner;
  interner.set_governor(&governor);
  interner.set_max_entries(2);
  interner.intern("first");
  interner.intern("second");
  EXPECT_EQ(governor.account_bytes(GovernorAccount::kInterner),
            interner.approx_bytes());
  // Bounced strings add no bytes to the account.
  interner.intern("third");
  EXPECT_EQ(interner.overflow_count(), 1u);
  EXPECT_EQ(governor.account_bytes(GovernorAccount::kInterner),
            interner.approx_bytes());
}

TEST(StringInterner, ApproxBytesGrowsWithContent) {
  StringInterner interner;
  const size_t empty = interner.approx_bytes();
  interner.intern(std::string(1000, 'x'));
  EXPECT_GE(interner.approx_bytes(), empty + 1000);
}

}  // namespace
}  // namespace deepflow
