#include "common/sim_clock.h"

#include <gtest/gtest.h>

#include <vector>

namespace deepflow {
namespace {

TEST(EventLoop, RunsInTimestampOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(300, [&] { order.push_back(3); });
  loop.schedule_at(100, [&] { order.push_back(1); });
  loop.schedule_at(200, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 300u);
}

TEST(EventLoop, TiesRunFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(50, [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoop, PastSchedulingClampsToNow) {
  EventLoop loop;
  TimestampNs ran_at = 0;
  loop.schedule_at(100, [&] {
    loop.schedule_at(10, [&] { ran_at = loop.now(); });  // in the past
  });
  loop.run();
  EXPECT_EQ(ran_at, 100u);
}

TEST(EventLoop, NestedScheduling) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) loop.schedule_after(10, recurse);
  };
  loop.schedule_at(0, recurse);
  loop.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(loop.now(), 99u * 10u);
}

TEST(EventLoop, RunUntilLeavesLaterEvents) {
  EventLoop loop;
  int ran = 0;
  loop.schedule_at(100, [&] { ++ran; });
  loop.schedule_at(200, [&] { ++ran; });
  loop.run_until(150);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(loop.now(), 150u);  // clock advanced to the horizon
  EXPECT_TRUE(loop.has_pending());
  loop.run();
  EXPECT_EQ(ran, 2);
}

TEST(EventLoop, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  TimestampNs inner = 0;
  loop.schedule_at(500, [&] {
    loop.schedule_after(25, [&] { inner = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(inner, 525u);
}

TEST(EventLoop, StepReturnsFalseWhenEmpty) {
  EventLoop loop;
  EXPECT_FALSE(loop.step());
  loop.schedule_at(1, [] {});
  EXPECT_TRUE(loop.step());
  EXPECT_FALSE(loop.step());
}

}  // namespace
}  // namespace deepflow
