// FaultInjector determinism contract: per-site independent streams, fixed
// draw schedule (nested fault sets across probability sweeps), pass-through
// when disabled, and counters that match the reported decisions exactly.
#include <gtest/gtest.h>

#include <vector>

#include "common/fault.h"

namespace deepflow {
namespace {

TEST(FaultInjector, DisabledByDefaultAndPassThrough) {
  FaultInjector inject(42);
  EXPECT_FALSE(inject.enabled(FaultSite::kPerfRingSubmit));
  EXPECT_FALSE(inject.enabled(FaultSite::kTransportSend));
  // An all-zero profile never reports a fault, no matter how often it is
  // consulted.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(inject.decide(FaultSite::kTransportSend).faulted());
  }
  const FaultSiteCounters c = inject.counters(FaultSite::kTransportSend);
  EXPECT_EQ(c.consults, 1000u);
  EXPECT_EQ(c.drops + c.duplicates + c.delays + c.ts_corruptions, 0u);
}

TEST(FaultInjector, EnabledTracksProfile) {
  FaultInjector inject(1);
  FaultProfile profile;
  profile.drop = 0.5;
  inject.configure(FaultSite::kPerfRingSubmit, profile);
  EXPECT_TRUE(inject.enabled(FaultSite::kPerfRingSubmit));
  EXPECT_FALSE(inject.enabled(FaultSite::kTransportSend));
  inject.configure(FaultSite::kPerfRingSubmit, FaultProfile{});
  EXPECT_FALSE(inject.enabled(FaultSite::kPerfRingSubmit));
}

TEST(FaultInjector, SameSeedSameDecisions) {
  FaultProfile profile;
  profile.drop = 0.2;
  profile.duplicate = 0.1;
  profile.delay = 0.15;
  profile.corrupt_ts = 0.05;
  FaultInjector a(7), b(7);
  a.configure(FaultSite::kTransportSend, profile);
  b.configure(FaultSite::kTransportSend, profile);
  for (int i = 0; i < 2000; ++i) {
    const FaultDecision da = a.decide(FaultSite::kTransportSend);
    const FaultDecision db = b.decide(FaultSite::kTransportSend);
    ASSERT_EQ(da.drop, db.drop) << i;
    ASSERT_EQ(da.duplicate, db.duplicate) << i;
    ASSERT_EQ(da.delay_ticks, db.delay_ticks) << i;
    ASSERT_EQ(da.ts_skew_ns, db.ts_skew_ns) << i;
  }
}

TEST(FaultInjector, SitesDrawFromIndependentStreams) {
  FaultProfile profile;
  profile.drop = 0.3;
  // Injector `a` consults BOTH sites interleaved; `b` consults only the
  // transport site. The transport decisions must be identical: one site's
  // consumption never shifts another's sequence.
  FaultInjector a(99), b(99);
  a.configure(FaultSite::kPerfRingSubmit, profile);
  a.configure(FaultSite::kTransportSend, profile);
  b.configure(FaultSite::kTransportSend, profile);
  for (int i = 0; i < 500; ++i) {
    a.decide(FaultSite::kPerfRingSubmit);
    const FaultDecision da = a.decide(FaultSite::kTransportSend);
    const FaultDecision db = b.decide(FaultSite::kTransportSend);
    ASSERT_EQ(da.drop, db.drop) << i;
    ASSERT_EQ(da.delay_ticks, db.delay_ticks) << i;
  }
}

TEST(FaultInjector, DropSetsAreNestedAcrossProbabilities) {
  // The fixed draw schedule means the i-th consult uses the same underlying
  // uniform draw regardless of the probability, so every unit dropped at
  // p=0.01 is also dropped at p=0.1 — the property the monotone-degradation
  // chaos tests stand on.
  FaultProfile low, high;
  low.drop = 0.01;
  high.drop = 0.1;
  FaultInjector a(5), b(5);
  a.configure(FaultSite::kTransportSend, low);
  b.configure(FaultSite::kTransportSend, high);
  int low_drops = 0, high_drops = 0;
  for (int i = 0; i < 5000; ++i) {
    const bool dropped_low = a.decide(FaultSite::kTransportSend).drop;
    const bool dropped_high = b.decide(FaultSite::kTransportSend).drop;
    low_drops += dropped_low;
    high_drops += dropped_high;
    if (dropped_low) {
      ASSERT_TRUE(dropped_high) << i;
    }
  }
  EXPECT_GT(low_drops, 0);
  EXPECT_GT(high_drops, low_drops);
}

TEST(FaultInjector, DropExcludesOtherFaults) {
  FaultProfile profile;
  profile.drop = 1.0;
  profile.duplicate = 1.0;
  profile.delay = 1.0;
  profile.corrupt_ts = 1.0;
  FaultInjector inject(3);
  inject.configure(FaultSite::kTransportSend, profile);
  for (int i = 0; i < 100; ++i) {
    const FaultDecision d = inject.decide(FaultSite::kTransportSend);
    EXPECT_TRUE(d.drop);
    EXPECT_FALSE(d.duplicate);
    EXPECT_EQ(d.delay_ticks, 0u);
    EXPECT_EQ(d.ts_skew_ns, 0);
  }
  EXPECT_EQ(inject.counters(FaultSite::kTransportSend).drops, 100u);
  EXPECT_EQ(inject.counters(FaultSite::kTransportSend).duplicates, 0u);
}

TEST(FaultInjector, UnsupportedKindsAreCleanButStreamStable) {
  FaultProfile profile;
  profile.drop = 0.3;
  profile.duplicate = 0.4;
  profile.delay = 0.4;
  // `a` can only drop (a perf ring); `b` supports everything. The drop
  // outcomes must match draw for draw, and `a` must never report the kinds
  // it cannot apply.
  FaultInjector a(11), b(11);
  a.configure(FaultSite::kPerfRingSubmit, profile);
  b.configure(FaultSite::kPerfRingSubmit, profile);
  for (int i = 0; i < 1000; ++i) {
    const FaultDecision da = a.decide(FaultSite::kPerfRingSubmit, kFaultDrop);
    const FaultDecision db = b.decide(FaultSite::kPerfRingSubmit, kFaultAll);
    ASSERT_EQ(da.drop, db.drop) << i;
    ASSERT_FALSE(da.duplicate);
    ASSERT_EQ(da.delay_ticks, 0u);
    ASSERT_EQ(da.ts_skew_ns, 0);
  }
  EXPECT_EQ(a.counters(FaultSite::kPerfRingSubmit).duplicates, 0u);
  EXPECT_EQ(a.counters(FaultSite::kPerfRingSubmit).delays, 0u);
}

TEST(FaultInjector, CountersMatchReportedDecisions) {
  FaultProfile profile;
  profile.drop = 0.1;
  profile.duplicate = 0.2;
  profile.delay = 0.2;
  profile.corrupt_ts = 0.1;
  FaultInjector inject(13);
  inject.configure(FaultSite::kTransportSend, profile);
  FaultSiteCounters expect;
  for (int i = 0; i < 3000; ++i) {
    const FaultDecision d = inject.decide(FaultSite::kTransportSend);
    ++expect.consults;
    expect.drops += d.drop;
    expect.duplicates += d.duplicate;
    expect.delays += d.delay_ticks != 0;
    expect.ts_corruptions += d.ts_skew_ns != 0;
  }
  const FaultSiteCounters c = inject.counters(FaultSite::kTransportSend);
  EXPECT_EQ(c.consults, expect.consults);
  EXPECT_EQ(c.drops, expect.drops);
  EXPECT_EQ(c.duplicates, expect.duplicates);
  EXPECT_EQ(c.delays, expect.delays);
  EXPECT_EQ(c.ts_corruptions, expect.ts_corruptions);
}

TEST(FaultInjector, MediaFaultUsesItsOwnDrawScheduleAtTheSite) {
  // media_fault() consults the segment-write stream without disturbing the
  // delivery sites: two injectors, one interleaving media consults, must
  // still agree on every transport decision (distinct sites, distinct
  // streams).
  FaultProfile transport;
  transport.drop = 0.2;
  transport.duplicate = 0.1;
  FaultProfile media;
  media.media_corrupt = 0.5;
  FaultInjector pure(23), mixed(23);
  pure.configure(FaultSite::kTransportSend, transport);
  mixed.configure(FaultSite::kTransportSend, transport);
  mixed.configure(FaultSite::kSegmentWrite, media);
  for (int i = 0; i < 500; ++i) {
    mixed.media_fault(FaultSite::kSegmentWrite, 4096);
    const FaultDecision a = pure.decide(FaultSite::kTransportSend);
    const FaultDecision b = mixed.decide(FaultSite::kTransportSend);
    ASSERT_EQ(a.drop, b.drop) << i;
    ASSERT_EQ(a.duplicate, b.duplicate) << i;
    ASSERT_EQ(a.delay_ticks, b.delay_ticks) << i;
    ASSERT_EQ(a.ts_skew_ns, b.ts_skew_ns) << i;
  }
}

TEST(FaultInjector, MediaFaultBoundsAndCounters) {
  FaultProfile media;
  media.media_corrupt = 1.0;
  FaultInjector inject(31);
  inject.configure(FaultSite::kSegmentWrite, media);
  for (int i = 0; i < 200; ++i) {
    const u64 len = 1 + static_cast<u64>(i) * 7;
    const MediaFault f = inject.media_fault(FaultSite::kSegmentWrite, len);
    ASSERT_TRUE(f.corrupt) << i;
    ASSERT_LT(f.offset, len) << i;
    ASSERT_NE(f.xor_mask, 0) << i;  // a reported hit always changes bytes
  }
  const FaultSiteCounters c = inject.counters(FaultSite::kSegmentWrite);
  EXPECT_EQ(c.consults, 200u);
  EXPECT_EQ(c.media_corruptions, 200u);
  // Zero-probability media rot is an exact pass-through.
  FaultInjector off(32);
  const MediaFault clean = off.media_fault(FaultSite::kSegmentWrite, 4096);
  EXPECT_FALSE(clean.corrupt);
}

TEST(FaultInjector, DelayAndSkewMagnitudesRespectBounds) {
  FaultProfile profile;
  profile.delay = 1.0;
  profile.corrupt_ts = 1.0;
  profile.max_delay_ticks = 6;
  profile.max_ts_skew_ns = 500;
  FaultInjector inject(17);
  inject.configure(FaultSite::kTransportSend, profile);
  for (int i = 0; i < 500; ++i) {
    const FaultDecision d = inject.decide(FaultSite::kTransportSend);
    EXPECT_GE(d.delay_ticks, 1u);
    EXPECT_LE(d.delay_ticks, 6u);
    EXPECT_GE(d.ts_skew_ns, -500);
    EXPECT_LE(d.ts_skew_ns, 500);
  }
}

TEST(FaultInjector, LanesDrawFromIndependentStreams) {
  FaultProfile profile;
  profile.drop = 0.3;
  profile.delay = 0.2;
  // Injector `a` interleaves draws on three lanes of ONE site; `b` consults
  // only lane 7. Lane 7's decision sequence must be identical: a federated
  // deployment adds one lane per (agent, server) link, and opening a new
  // link must never perturb the fate schedule of an existing one.
  FaultInjector a(99), b(99);
  a.configure(FaultSite::kTransportSend, profile);
  b.configure(FaultSite::kTransportSend, profile);
  for (int i = 0; i < 500; ++i) {
    a.decide(FaultSite::kTransportSend);  // shared lane
    a.decide(FaultSite::kTransportSend, kFaultAll, /*lane=*/9);
    const FaultDecision da =
        a.decide(FaultSite::kTransportSend, kFaultAll, /*lane=*/7);
    const FaultDecision db =
        b.decide(FaultSite::kTransportSend, kFaultAll, /*lane=*/7);
    ASSERT_EQ(da.drop, db.drop) << i;
    ASSERT_EQ(da.duplicate, db.duplicate) << i;
    ASSERT_EQ(da.delay_ticks, db.delay_ticks) << i;
    ASSERT_EQ(da.ts_skew_ns, db.ts_skew_ns) << i;
  }
}

TEST(FaultInjector, LaneCreationOrderIsIrrelevant) {
  FaultProfile profile;
  profile.drop = 0.4;
  // `a` hammers lane 2 before lane 1 ever exists; `b` never touches lane 2
  // at all. Per-lane streams are seeded from (site, lane id) alone, so a
  // lane's sequence depends only on its OWN consumption — the two lane-1
  // sequences must agree draw for draw.
  FaultInjector a(5), b(5);
  a.configure(FaultSite::kLinkPartition, profile);
  b.configure(FaultSite::kLinkPartition, profile);
  for (int i = 0; i < 100; ++i) {
    a.decide(FaultSite::kLinkPartition, kFaultDrop, /*lane=*/2);
  }
  for (int i = 0; i < 300; ++i) {
    ASSERT_EQ(a.decide(FaultSite::kLinkPartition, kFaultDrop, /*lane=*/1).drop,
              b.decide(FaultSite::kLinkPartition, kFaultDrop, /*lane=*/1).drop)
        << i;
  }
}

}  // namespace
}  // namespace deepflow
