// ResourceGovernor unit suite: byte accounting, the degradation ladder's
// monotone entry and hysteresis-guarded exit, deterministic tail-sampling
// verdicts, the anomalous-trace memory, and the completeness ledger.
#include "common/governor.h"

#include <gtest/gtest.h>

namespace deepflow {
namespace {

GovernorConfig active_config(size_t budget = 1000) {
  GovernorConfig config;
  config.enabled = true;
  config.budget_bytes = budget;
  return config;
}

TEST(GovernorTest, InactiveByDefault) {
  ResourceGovernor governor;
  EXPECT_FALSE(governor.active());
  EXPECT_FALSE(governor.accounting());
  governor.add_bytes(GovernorAccount::kHotStore, 1 << 20);
  EXPECT_EQ(governor.total_bytes(), 0u);
  EXPECT_EQ(governor.refresh(), OverloadLevel::kNormal);
  EXPECT_TRUE(governor.admit_healthy(42));
  EXPECT_FALSE(governor.exhausted());
  EXPECT_FALSE(governor.should_force_seal());
  governor.mark_anomalous(7, 0);
  EXPECT_FALSE(governor.is_anomalous(7));
}

TEST(GovernorTest, TelemetryOnlyModeAccountsButNeverDegrades) {
  GovernorConfig config;
  config.enabled = true;  // budget_bytes stays 0
  ResourceGovernor governor(config);
  EXPECT_TRUE(governor.accounting());
  EXPECT_FALSE(governor.active());
  governor.add_bytes(GovernorAccount::kMetrics, 12345);
  EXPECT_EQ(governor.total_bytes(), 12345u);
  EXPECT_EQ(governor.refresh(), OverloadLevel::kNormal);
  EXPECT_TRUE(governor.admit_healthy(1));
}

TEST(GovernorTest, TotalExcludesUnflushedOverlay) {
  ResourceGovernor governor(active_config());
  governor.add_bytes(GovernorAccount::kHotStore, 300);
  governor.add_bytes(GovernorAccount::kUnflushedStore, 300);
  governor.add_bytes(GovernorAccount::kDedup, 100);
  EXPECT_EQ(governor.total_bytes(), 400u);
  EXPECT_EQ(governor.account_bytes(GovernorAccount::kUnflushedStore), 300u);
}

TEST(GovernorTest, SubBytesSaturatesAtZero) {
  ResourceGovernor governor(active_config());
  governor.add_bytes(GovernorAccount::kArena, 10);
  governor.sub_bytes(GovernorAccount::kArena, 25);
  EXPECT_EQ(governor.account_bytes(GovernorAccount::kArena), 0u);
}

TEST(GovernorTest, LadderEntersEveryRungMonotonically) {
  ResourceGovernor governor(active_config(1000));
  EXPECT_EQ(governor.refresh(), OverloadLevel::kNormal);
  governor.add_bytes(GovernorAccount::kHotStore, 700);  // 0.70
  EXPECT_EQ(governor.refresh(), OverloadLevel::kSeal);
  governor.add_bytes(GovernorAccount::kHotStore, 100);  // 0.80
  EXPECT_EQ(governor.refresh(), OverloadLevel::kDownsample);
  governor.add_bytes(GovernorAccount::kHotStore, 100);  // 0.90
  EXPECT_EQ(governor.refresh(), OverloadLevel::kShed);
  governor.add_bytes(GovernorAccount::kHotStore, 70);   // 0.97
  EXPECT_EQ(governor.refresh(), OverloadLevel::kRefuse);
  EXPECT_TRUE(governor.exhausted() == false);
  governor.add_bytes(GovernorAccount::kHotStore, 30);   // 1.00
  EXPECT_TRUE(governor.exhausted());
}

TEST(GovernorTest, EscalationSkipsRungsInstantly) {
  ResourceGovernor governor(active_config(1000));
  governor.add_bytes(GovernorAccount::kHotStore, 990);
  EXPECT_EQ(governor.refresh(), OverloadLevel::kRefuse);
  EXPECT_EQ(governor.telemetry().level_transitions, 1u);
}

TEST(GovernorTest, DeescalationOneRungWithHysteresis) {
  ResourceGovernor governor(active_config(1000));
  governor.add_bytes(GovernorAccount::kHotStore, 990);
  EXPECT_EQ(governor.refresh(), OverloadLevel::kRefuse);

  // Just below refuse_enter but above refuse_enter - hysteresis: hold.
  governor.sub_bytes(GovernorAccount::kHotStore, 40);  // 0.95
  EXPECT_EQ(governor.refresh(), OverloadLevel::kRefuse);

  // Clearly below: one rung per refresh, never a cliff.
  governor.sub_bytes(GovernorAccount::kHotStore, 900);  // 0.05
  EXPECT_EQ(governor.refresh(), OverloadLevel::kShed);
  EXPECT_EQ(governor.refresh(), OverloadLevel::kDownsample);
  EXPECT_EQ(governor.refresh(), OverloadLevel::kSeal);
  EXPECT_EQ(governor.refresh(), OverloadLevel::kNormal);
  EXPECT_EQ(governor.refresh(), OverloadLevel::kNormal);
}

TEST(GovernorTest, NoFlappingAroundBoundary) {
  ResourceGovernor governor(active_config(1000));
  governor.add_bytes(GovernorAccount::kHotStore, 700);
  EXPECT_EQ(governor.refresh(), OverloadLevel::kSeal);
  // Oscillate within the hysteresis band around seal_enter: level holds.
  for (int i = 0; i < 10; ++i) {
    governor.sub_bytes(GovernorAccount::kHotStore, 30);  // 0.67
    EXPECT_EQ(governor.refresh(), OverloadLevel::kSeal);
    governor.add_bytes(GovernorAccount::kHotStore, 30);  // 0.70
    EXPECT_EQ(governor.refresh(), OverloadLevel::kSeal);
  }
  EXPECT_EQ(governor.telemetry().level_transitions, 1u);
}

TEST(GovernorTest, PerAccountCeilingDrivesLadder) {
  GovernorConfig config = active_config(1'000'000);
  config.account_budget_bytes[static_cast<size_t>(
      GovernorAccount::kInterner)] = 100;
  ResourceGovernor governor(config);
  governor.add_bytes(GovernorAccount::kInterner, 95);
  // Total pressure is negligible; the interner ceiling alone escalates.
  EXPECT_EQ(governor.refresh(), OverloadLevel::kShed);
}

TEST(GovernorTest, AdmitHealthyDeterministicAndAdaptive) {
  GovernorConfig config = active_config(1000);
  ResourceGovernor governor(config);
  EXPECT_TRUE(governor.admit_healthy(123));  // below kDownsample: always yes

  governor.add_bytes(GovernorAccount::kHotStore, 800);  // exactly 0.80
  EXPECT_EQ(governor.refresh(), OverloadLevel::kDownsample);
  u64 kept_at_enter = 0;
  for (u64 key = 0; key < 10'000; ++key) {
    if (governor.admit_healthy(key)) ++kept_at_enter;
  }
  // keep_pct at the downsample threshold is healthy_keep_pct (25%).
  EXPECT_NEAR(static_cast<double>(kept_at_enter) / 10'000.0, 0.25, 0.03);
  // Determinism: the same keys give the same verdicts.
  u64 kept_again = 0;
  for (u64 key = 0; key < 10'000; ++key) {
    if (governor.admit_healthy(key)) ++kept_again;
  }
  EXPECT_EQ(kept_at_enter, kept_again);

  governor.add_bytes(GovernorAccount::kHotStore, 99);  // just below shed
  governor.refresh();
  u64 kept_at_shed = 0;
  for (u64 key = 0; key < 10'000; ++key) {
    if (governor.admit_healthy(key)) ++kept_at_shed;
  }
  // Near shed_enter the ramp approaches healthy_keep_min_pct (5%).
  EXPECT_LT(kept_at_shed, kept_at_enter);
  EXPECT_NEAR(static_cast<double>(kept_at_shed) / 10'000.0, 0.05, 0.03);
}

TEST(GovernorTest, AnomalousMemoryRotatesTwoGenerations) {
  GovernorConfig config = active_config();
  config.anomaly_window_ns = 100;
  ResourceGovernor governor(config);
  governor.mark_anomalous(1, 50);     // generation 0
  EXPECT_TRUE(governor.is_anomalous(1));
  governor.mark_anomalous(2, 150);    // generation 1: 1 survives in prev
  EXPECT_TRUE(governor.is_anomalous(1));
  EXPECT_TRUE(governor.is_anomalous(2));
  governor.mark_anomalous(3, 250);    // generation 2: 1 is forgotten
  EXPECT_FALSE(governor.is_anomalous(1));
  EXPECT_TRUE(governor.is_anomalous(2));
  EXPECT_TRUE(governor.is_anomalous(3));
  governor.mark_anomalous(4, 1000);   // generation jump: only 4 remains
  EXPECT_FALSE(governor.is_anomalous(2));
  EXPECT_FALSE(governor.is_anomalous(3));
  EXPECT_TRUE(governor.is_anomalous(4));
}

TEST(GovernorTest, CompletenessLedgerTracksEveryDecision) {
  GovernorConfig config = active_config();
  config.completeness_window_ns = 100;
  ResourceGovernor governor(config);
  governor.note_stored(10, 5);
  governor.note_anomalous_kept(20, 2);
  governor.note_downsampled(30, 3);
  governor.note_refused(150, 4);

  const auto windows = governor.completeness(0, 200);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].window_start, 0u);
  EXPECT_EQ(windows[0].offered, 10u);
  EXPECT_EQ(windows[0].stored, 7u);
  EXPECT_EQ(windows[0].anomalous_kept, 2u);
  EXPECT_EQ(windows[0].downsampled, 3u);
  EXPECT_DOUBLE_EQ(windows[0].completeness(), 0.7);
  EXPECT_EQ(windows[1].window_start, 100u);
  EXPECT_EQ(windows[1].offered, 4u);
  EXPECT_EQ(windows[1].refused, 4u);
  EXPECT_DOUBLE_EQ(windows[1].completeness(), 0.0);

  // Range filtering: a query ending before the second window excludes it.
  EXPECT_EQ(governor.completeness(0, 100).size(), 1u);
  EXPECT_EQ(governor.completeness(100, 200).size(), 1u);
}

TEST(GovernorTest, CompletenessLedgerBounded) {
  GovernorConfig config = active_config();
  config.completeness_window_ns = 10;
  config.completeness_max_windows = 16;
  ResourceGovernor governor(config);
  for (u64 i = 0; i < 1000; ++i) governor.note_stored(i * 10);
  const auto windows =
      governor.completeness(0, ~TimestampNs{0});
  EXPECT_LE(windows.size(), 17u);  // cap + the in-flight window
}

TEST(GovernorTest, ForceSealRateLimited) {
  GovernorConfig config = active_config(1000);
  config.seal_interval_spans = 10;
  ResourceGovernor governor(config);
  EXPECT_FALSE(governor.should_force_seal());  // kNormal: never

  governor.add_bytes(GovernorAccount::kHotStore, 750);
  governor.refresh();
  u64 seals = 0;
  for (int i = 0; i < 100; ++i) {
    if (governor.should_force_seal()) ++seals;
  }
  EXPECT_EQ(seals, 10u);  // once per seal_interval_spans admissions
}

TEST(GovernorTest, LevelNames) {
  EXPECT_STREQ(overload_level_name(OverloadLevel::kNormal), "normal");
  EXPECT_STREQ(overload_level_name(OverloadLevel::kRefuse), "refuse");
}

}  // namespace
}  // namespace deepflow
