#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace deepflow {
namespace {

TEST(Arena, StoreCopiesAndReturnsStableView) {
  Arena arena;
  std::string source = "hello-arena";
  const std::string_view view = arena.store(source);
  EXPECT_EQ(view, "hello-arena");
  EXPECT_NE(view.data(), source.data());  // a copy, not an alias
  source.assign("clobbered!!");
  EXPECT_EQ(view, "hello-arena");
}

TEST(Arena, EmptyStringCostsNothing) {
  Arena arena;
  const std::string_view view = arena.store("");
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_EQ(arena.block_count(), 0u);
}

TEST(Arena, PointerStabilityAcrossGrowth) {
  // Unlike a string/vector backing store, chaining new blocks must never
  // move bytes already handed out.
  Arena arena(64);
  std::vector<std::string_view> views;
  std::vector<std::string> expected;
  for (int i = 0; i < 200; ++i) {
    expected.push_back("value-" + std::to_string(i));
    views.push_back(arena.store(expected.back()));
  }
  EXPECT_GT(arena.block_count(), 1u);  // growth definitely happened
  for (size_t i = 0; i < views.size(); ++i) EXPECT_EQ(views[i], expected[i]);
}

TEST(Arena, GeometricGrowthBoundsBlockCount) {
  Arena arena(64);
  for (int i = 0; i < 10'000; ++i) arena.store("0123456789abcdef");
  // 160 KB of payload from a 64-byte first block: doubling needs ~12 blocks;
  // linear chaining would need thousands.
  EXPECT_LE(arena.block_count(), 16u);
  EXPECT_GE(arena.capacity_bytes(), arena.used_bytes());
}

TEST(Arena, ResetKeepsCapacityAndReusesBlocks) {
  Arena arena(64);
  for (int i = 0; i < 500; ++i) arena.store("some-request-id-payload");
  const size_t capacity = arena.capacity_bytes();
  const size_t blocks = arena.block_count();

  arena.reset();
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_EQ(arena.capacity_bytes(), capacity);

  // Refill to the same occupancy: steady state must not grow.
  for (int i = 0; i < 500; ++i) arena.store("some-request-id-payload");
  EXPECT_EQ(arena.capacity_bytes(), capacity);
  EXPECT_EQ(arena.block_count(), blocks);
}

TEST(Arena, ReleaseFreesEverything) {
  Arena arena(64);
  arena.store("payload");
  arena.release();
  EXPECT_EQ(arena.capacity_bytes(), 0u);
  EXPECT_EQ(arena.block_count(), 0u);
  // Still usable afterwards.
  EXPECT_EQ(arena.store("again"), "again");
}

TEST(Arena, AlignedAllocation) {
  Arena arena(64);
  arena.store("x");  // misalign the bump pointer
  void* p8 = arena.alloc(16, 8);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p8) % 8, 0u);
  arena.store("yy");
  void* p64 = arena.alloc(64, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p64) % 64, 0u);
}

TEST(Arena, OversizedRequestGetsDedicatedBlock) {
  Arena arena(64);
  const std::string big(100'000, 'z');
  const std::string_view view = arena.store(big);
  EXPECT_EQ(view.size(), big.size());
  EXPECT_EQ(view, big);
  // Small allocations still work afterwards.
  EXPECT_EQ(arena.store("tail"), "tail");
}

TEST(Arena, MoveTransfersStorage) {
  Arena a(64);
  const std::string_view view = a.store("moved-payload");
  Arena b = std::move(a);
  EXPECT_EQ(view, "moved-payload");  // bytes owned by b now, still stable
  EXPECT_GE(b.used_bytes(), view.size());
}

}  // namespace
}  // namespace deepflow
