#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/mpsc_ring.h"

namespace deepflow {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1000);
  EXPECT_EQ(pool.tasks_completed(), 1000u);
}

TEST(ThreadPool, WaitIdleBlocksUntilInFlightTasksFinish) {
  ThreadPool pool(2);
  std::atomic<bool> done{false};
  pool.submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    done.store(true, std::memory_order_release);
  });
  pool.wait_idle();
  EXPECT_TRUE(done.load(std::memory_order_acquire));
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  EXPECT_EQ(pool.tasks_completed(), 0u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 100'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&hits](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroItemsIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit(
          [&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SingleThreadPoolPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST(MpscRingArray, OneLanePerProducer) {
  MpscRingArray<int> rings(3, 8);
  EXPECT_EQ(rings.producer_count(), 3u);
  EXPECT_EQ(rings.lane_capacity(), 8u);
  EXPECT_TRUE(rings.push(0, 10));
  EXPECT_TRUE(rings.push(1, 20));
  EXPECT_TRUE(rings.push(2, 30));
  EXPECT_EQ(rings.pending(), 3u);
  EXPECT_EQ(*rings.pop_from(1), 20);
  EXPECT_EQ(*rings.pop_from(0), 10);
  EXPECT_EQ(*rings.pop_from(2), 30);
  EXPECT_FALSE(rings.pop_from(0).has_value());
}

TEST(MpscRingArray, FullProbeGuaranteesNextPushSucceeds) {
  MpscRingArray<int> rings(1, 4);
  while (!rings.full(0)) EXPECT_TRUE(rings.push(0, 7));
  EXPECT_FALSE(rings.push(0, 8));  // genuinely full now
  EXPECT_EQ(rings.dropped(), 1u);
  ASSERT_TRUE(rings.pop_from(0).has_value());
  EXPECT_FALSE(rings.full(0));
  EXPECT_TRUE(rings.push(0, 9));
}

TEST(MpscRingArray, DrainVisitsAllLanesRoundRobin) {
  MpscRingArray<int> rings(2, 8);
  for (int i = 0; i < 4; ++i) {
    rings.push(0, i);
    rings.push(1, 100 + i);
  }
  std::vector<int> out;
  const size_t n = rings.drain(100, [&out](int v) { out.push_back(v); });
  EXPECT_EQ(n, 8u);
  EXPECT_EQ(rings.pending(), 0u);
  // Round-robin interleaves lanes but preserves per-lane FIFO order.
  std::vector<int> lane0, lane1;
  for (int v : out) (v < 100 ? lane0 : lane1).push_back(v);
  EXPECT_EQ(lane0, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(lane1, (std::vector<int>{100, 101, 102, 103}));
}

TEST(MpscRingArray, DrainHonoursBudget) {
  MpscRingArray<int> rings(2, 16);
  for (int i = 0; i < 10; ++i) {
    rings.push(0, i);
    rings.push(1, i);
  }
  EXPECT_EQ(rings.drain(5, [](int) {}), 5u);
  EXPECT_EQ(rings.pending(), 15u);
}

// The agent's staging pattern under real concurrency: N producer threads,
// each owning one lane and spinning on full() instead of losing items; one
// consumer thread draining everything. Every pushed value must arrive
// exactly once and in per-lane FIFO order.
TEST(MpscRingArray, MultiProducerStressNoLossNoDuplication) {
  constexpr size_t kProducers = 4;
  constexpr u64 kPerProducer = 300'000;  // 1.2M ops total
  MpscRingArray<u64> rings(kProducers, 256);

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&rings, p] {
      for (u64 i = 0; i < kPerProducer; ++i) {
        const u64 value = (u64{p} << 32) | i;
        while (rings.full(p)) std::this_thread::yield();
        ASSERT_TRUE(rings.push(p, value));  // full() cleared -> must succeed
      }
    });
  }

  std::vector<u64> next_expected(kProducers, 0);
  u64 consumed = 0;
  while (consumed < kProducers * kPerProducer) {
    consumed += rings.drain(1024, [&next_expected](u64 value) {
      const size_t p = value >> 32;
      const u64 seq = value & 0xffffffffu;
      ASSERT_EQ(seq, next_expected[p]) << "lane " << p;  // FIFO, no loss/dup
      ++next_expected[p];
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(rings.pending(), 0u);
  for (size_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_expected[p], kPerProducer);
  }
}

}  // namespace
}  // namespace deepflow
