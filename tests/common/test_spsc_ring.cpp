#include "common/spsc_ring.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace deepflow {
namespace {

TEST(SpscRing, PushPopOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.push(i));
  for (int i = 0; i < 5; ++i) {
    const auto v = ring.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.pop().has_value());
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(SpscRing, FullRejectsAndCountsDrops) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_FALSE(ring.push(99));
  EXPECT_FALSE(ring.push(100));
  EXPECT_EQ(ring.dropped(), 2u);
  EXPECT_EQ(ring.size(), 4u);
}

TEST(SpscRing, ReusableAfterDrain) {
  SpscRing<int> ring(2);
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(ring.push(round));
    EXPECT_TRUE(ring.push(round + 1000));
    EXPECT_EQ(*ring.pop(), round);
    EXPECT_EQ(*ring.pop(), round + 1000);
  }
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(SpscRing, MoveOnlyPayloads) {
  SpscRing<std::unique_ptr<int>> ring(4);
  EXPECT_TRUE(ring.push(std::make_unique<int>(42)));
  auto v = ring.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 42);
}

TEST(SpscRing, ConcurrentProducerConsumer) {
  SpscRing<u64> ring(1024);
  constexpr u64 kCount = 200'000;
  std::thread producer([&ring] {
    for (u64 i = 0; i < kCount; ++i) {
      while (!ring.push(i)) {
        std::this_thread::yield();
      }
    }
  });
  u64 expected = 0;
  while (expected < kCount) {
    if (const auto v = ring.pop()) {
      ASSERT_EQ(*v, expected);  // strict FIFO under concurrency
      ++expected;
    }
  }
  producer.join();
  // dropped() counts rejected pushes; the retry loop makes them expected
  // here — what matters is that no accepted item was lost or reordered.
}

// Heavier two-thread stress: >1M operations through a small ring, with the
// producer using the probe-then-push idiom the agent's drain workers rely
// on (a single producer that sees !full can never have its push rejected).
// Asserts strict FIFO with no lost and no duplicated records, and that the
// retry-free path indeed dropped nothing.
TEST(SpscRing, MillionOpStressNoLossNoDuplication) {
  SpscRing<u64> ring(512);
  constexpr u64 kCount = 1'200'000;
  std::thread producer([&ring] {
    for (u64 i = 0; i < kCount; ++i) {
      while (ring.size() >= ring.capacity()) {
        std::this_thread::yield();
      }
      ASSERT_TRUE(ring.push(i));
    }
  });
  u64 expected = 0;
  while (expected < kCount) {
    if (const auto v = ring.pop()) {
      ASSERT_EQ(*v, expected);  // any loss or duplication breaks the sequence
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.dropped(), 0u);
}

}  // namespace
}  // namespace deepflow
