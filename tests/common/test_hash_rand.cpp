#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/hash.h"
#include "common/rand.h"

namespace deepflow {
namespace {

TEST(Hash, Fnv1aMatchesKnownVector) {
  // FNV-1a 64 of "a" per the reference specification.
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
}

TEST(Hash, Fnv1aDistinguishesInputs) {
  EXPECT_NE(fnv1a("abc"), fnv1a("acb"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abcd"));
}

TEST(Hash, Mix64HasNoObviousFixedPatterns) {
  std::unordered_set<u64> seen;
  for (u64 i = 0; i < 10'000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 10'000u);  // injective on a small range
}

TEST(Hash, HashCombineOrderSensitive) {
  EXPECT_NE(hash_combine(hash_combine(0, 1), 2),
            hash_combine(hash_combine(0, 2), 1));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDecorrelated) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 100'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100'000, 0.5, 0.01);
}

TEST(Rng, BetweenIsInclusive) {
  Rng rng(3);
  std::set<u64> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.between(5, 8));
  EXPECT_EQ(seen, (std::set<u64>{5, 6, 7, 8}));
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(11);
  double sum = 0;
  constexpr int kSamples = 200'000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(500.0);
  EXPECT_NEAR(sum / kSamples, 500.0, 10.0);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, JitteredStaysPositive) {
  Rng rng(17);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GT(rng.jittered(100.0, 0.9), 0.0);
  }
}

}  // namespace
}  // namespace deepflow
