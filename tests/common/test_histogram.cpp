#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/rand.h"

namespace deepflow {
namespace {

TEST(Histogram, EmptyReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleValue) {
  LatencyHistogram h;
  h.record(1'000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1'000u);
  EXPECT_EQ(h.max(), 1'000u);
  // Quantiles land inside the value's bucket (bounded relative error).
  EXPECT_NEAR(static_cast<double>(h.p50()), 1'000.0, 1'000.0 / 64);
}

TEST(Histogram, MeanIsExact) {
  LatencyHistogram h;
  h.record(100);
  h.record(200);
  h.record(300);
  EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(Histogram, QuantilesOrdered) {
  LatencyHistogram h;
  Rng rng(1);
  for (int i = 0; i < 10'000; ++i) h.record(rng.between(1, 10 * kMillisecond));
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
  EXPECT_LE(h.p99(), h.max());
  EXPECT_GE(h.p50(), h.min());
}

TEST(Histogram, RelativePrecisionBound) {
  LatencyHistogram h;
  // All mass at one value: every quantile must be within ~1/32 of it.
  const u64 value = 123'456'789;
  h.record_n(value, 1000);
  for (const double q : {0.01, 0.5, 0.9, 0.99, 1.0}) {
    const double reported = static_cast<double>(h.value_at_quantile(q));
    EXPECT_NEAR(reported, static_cast<double>(value),
                static_cast<double>(value) / 32.0)
        << "q=" << q;
  }
}

TEST(Histogram, UniformQuantileAccuracy) {
  LatencyHistogram h;
  // Deterministic uniform grid over [1ms, 2ms].
  for (u64 v = 1 * kMillisecond; v <= 2 * kMillisecond; v += 1'000) {
    h.record(v);
  }
  EXPECT_NEAR(static_cast<double>(h.p50()), 1.5 * kMillisecond,
              0.05 * kMillisecond);
  EXPECT_NEAR(static_cast<double>(h.p90()), 1.9 * kMillisecond,
              0.05 * kMillisecond);
}

TEST(Histogram, OverflowClampsAndCounts) {
  LatencyHistogram h(/*max_value=*/1 * kSecond);
  h.record(5 * kSecond);
  EXPECT_EQ(h.overflow_count(), 1u);
  EXPECT_LE(h.max(), 1 * kSecond);
}

TEST(Histogram, MergeCombinesCounts) {
  LatencyHistogram a, b;
  a.record_n(1'000, 10);
  b.record_n(1'000'000, 20);
  a.merge(b);
  EXPECT_EQ(a.count(), 30u);
  EXPECT_EQ(a.min(), 1'000u);
  EXPECT_EQ(a.max(), 1'000'000u);
}

TEST(Histogram, MergeEmptyIsStrictNoop) {
  LatencyHistogram a, empty;
  a.record_n(1'000, 10);
  a.merge(empty);
  EXPECT_EQ(a.count(), 10u);
  EXPECT_EQ(a.min(), 1'000u);
  EXPECT_EQ(a.max(), 1'000u);
  EXPECT_EQ(a.overflow_count(), 0u);
  const u64 p50_before = a.p50();
  a.merge(empty);
  EXPECT_EQ(a.p50(), p50_before);
}

TEST(Histogram, MergeIntoEmptyAdoptsOther) {
  LatencyHistogram target, source;
  source.record_n(2'000, 5);
  target.merge(source);
  EXPECT_EQ(target.count(), 5u);
  // The empty target's min sentinel must not survive the merge.
  EXPECT_EQ(target.min(), 2'000u);
  EXPECT_EQ(target.max(), 2'000u);
}

TEST(Histogram, MergeTwoEmptiesStaysEmpty) {
  LatencyHistogram a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), 0u);
  EXPECT_EQ(a.p50(), 0u);
}

TEST(Histogram, ZeroSampleQuantilesAreZero) {
  LatencyHistogram h;
  for (const double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.value_at_quantile(q), 0u) << "q=" << q;
  }
}

TEST(Histogram, OneSampleQuantilesAreExact) {
  // With a single sample the observed range collapses to one point, so the
  // range clamp makes every quantile exactly that sample — no bucket
  // midpoint error.
  for (const u64 value : {1ull, 999ull, 1'000ull, 123'456'789ull}) {
    LatencyHistogram h;
    h.record(value);
    for (const double q : {0.0, 0.5, 0.99, 1.0}) {
      EXPECT_EQ(h.value_at_quantile(q), value)
          << "value=" << value << " q=" << q;
    }
  }
}

TEST(Histogram, QuantilesNeverLeaveObservedRange) {
  LatencyHistogram h;
  h.record_n(10'000, 3);
  h.record_n(20'000, 3);
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const u64 v = h.value_at_quantile(q);
    EXPECT_GE(v, h.min()) << "q=" << q;
    EXPECT_LE(v, h.max()) << "q=" << q;
  }
}

TEST(Histogram, ResetClears) {
  LatencyHistogram h;
  h.record_n(5'000, 7);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, RecordNZeroIsNoop) {
  LatencyHistogram h;
  h.record_n(1'000, 0);
  EXPECT_EQ(h.count(), 0u);
}

// Property sweep: for any distribution, count is conserved and quantile 1.0
// is >= quantile 0.0.
class HistogramPropertyTest : public ::testing::TestWithParam<u64> {};

TEST_P(HistogramPropertyTest, CountConservedAndMonotone) {
  LatencyHistogram h;
  Rng rng(GetParam());
  u64 n = 0;
  for (int i = 0; i < 5'000; ++i) {
    h.record(static_cast<u64>(rng.exponential(2 * kMillisecond)) + 1);
    ++n;
  }
  EXPECT_EQ(h.count(), n);
  u64 prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.1) {
    const u64 v = h.value_at_quantile(q);
    EXPECT_GE(v, prev) << "quantile " << q;
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramPropertyTest,
                         ::testing::Values(1, 7, 42, 1337, 99991));

}  // namespace
}  // namespace deepflow
