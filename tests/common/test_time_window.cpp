#include "common/time_window.h"

#include <gtest/gtest.h>

#include <vector>

namespace deepflow {
namespace {

using Window = TimeWindowArray<int>;

Window::EvictFn collect(std::vector<int>* out) {
  return [out](int&& v) { out->push_back(v); };
}

TEST(TimeWindow, InsertAndClaimSameSlot) {
  Window w(1 * kSecond, 3);
  std::vector<int> evicted;
  ASSERT_TRUE(w.insert(100, 7, collect(&evicted)));
  const auto claimed = w.claim_nearby(200, [](const int& v) { return v == 7; });
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(*claimed, 7);
  EXPECT_EQ(w.size(), 0u);
  EXPECT_TRUE(evicted.empty());
}

TEST(TimeWindow, ClaimAdjacentSlots) {
  Window w(1 * kSecond, 4);
  std::vector<int> evicted;
  ASSERT_TRUE(w.insert(900 * kMillisecond, 1, collect(&evicted)));
  // Target in the next slot still finds the item (adjacent-slot rule).
  EXPECT_TRUE(w.claim_nearby(1100 * kMillisecond,
                             [](const int& v) { return v == 1; })
                  .has_value());
}

TEST(TimeWindow, ClaimTwoSlotsAwayFails) {
  Window w(1 * kSecond, 8);
  std::vector<int> evicted;
  ASSERT_TRUE(w.insert(100, 1, collect(&evicted)));
  ASSERT_TRUE(w.insert(3500 * kMillisecond, 2, collect(&evicted)));
  // Item 1 sits three slots before the query point: out of reach.
  EXPECT_FALSE(w.claim_nearby(3500 * kMillisecond,
                              [](const int& v) { return v == 1; })
                   .has_value());
}

TEST(TimeWindow, OldInsertRejected) {
  Window w(1 * kSecond, 2);
  std::vector<int> evicted;
  ASSERT_TRUE(w.insert(10 * kSecond, 1, collect(&evicted)));
  EXPECT_FALSE(w.insert(1 * kSecond, 2, collect(&evicted)));
  EXPECT_EQ(w.size(), 1u);
}

TEST(TimeWindow, AdvanceEvictsExpired) {
  Window w(1 * kSecond, 2);
  std::vector<int> evicted;
  ASSERT_TRUE(w.insert(100, 1, collect(&evicted)));
  ASSERT_TRUE(w.insert(1200 * kMillisecond, 2, collect(&evicted)));
  // Jump far ahead: both old slots fall off the horizon.
  w.advance(10 * kSecond, collect(&evicted));
  EXPECT_EQ(evicted.size(), 2u);
  EXPECT_EQ(w.size(), 0u);
}

TEST(TimeWindow, EvictionOrderIsOldestFirst) {
  Window w(1 * kSecond, 2);
  std::vector<int> evicted;
  ASSERT_TRUE(w.insert(100, 1, collect(&evicted)));
  ASSERT_TRUE(w.insert(1100 * kMillisecond, 2, collect(&evicted)));
  ASSERT_TRUE(w.insert(2100 * kMillisecond, 3, collect(&evicted)));
  ASSERT_TRUE(w.insert(3100 * kMillisecond, 4, collect(&evicted)));
  EXPECT_EQ(evicted, (std::vector<int>{1, 2}));
}

TEST(TimeWindow, FlushEvictsEverything) {
  Window w(1 * kSecond, 4);
  std::vector<int> evicted;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(w.insert(static_cast<TimestampNs>(i) * 200 * kMillisecond, i,
                         collect(&evicted)));
  }
  w.flush(collect(&evicted));
  EXPECT_EQ(evicted.size(), 5u);
  EXPECT_EQ(w.size(), 0u);
}

TEST(TimeWindow, ClaimPrefersOlderSlot) {
  Window w(1 * kSecond, 4);
  std::vector<int> evicted;
  ASSERT_TRUE(w.insert(500 * kMillisecond, 1, collect(&evicted)));   // slot 0
  ASSERT_TRUE(w.insert(1500 * kMillisecond, 2, collect(&evicted)));  // slot 1
  // Query in slot 1 matches anything; FIFO needs the slot-0 item first.
  const auto claimed =
      w.claim_nearby(1600 * kMillisecond, [](const int&) { return true; });
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(*claimed, 1);
}

TEST(TimeWindow, ClaimOnEmptyWindow) {
  Window w(1 * kSecond, 4);
  EXPECT_FALSE(w.claim_nearby(100, [](const int&) { return true; }).has_value());
}

// Parameterized sweep over slot durations: items inserted then claimed at
// the same timestamp are always found; items two or more slots stale never
// are.
class TimeWindowSlotTest : public ::testing::TestWithParam<DurationNs> {};

TEST_P(TimeWindowSlotTest, SameTimestampAlwaysClaimable) {
  const DurationNs slot = GetParam();
  Window w(slot, 3);
  std::vector<int> evicted;
  for (int i = 0; i < 50; ++i) {
    const TimestampNs ts = static_cast<TimestampNs>(i) * slot / 10;
    ASSERT_TRUE(w.insert(ts, i, collect(&evicted)));
    const auto claimed =
        w.claim_nearby(ts, [i](const int& v) { return v == i; });
    ASSERT_TRUE(claimed.has_value()) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(SlotDurations, TimeWindowSlotTest,
                         ::testing::Values(kMillisecond, kSecond,
                                           60 * kSecond, 300 * kSecond));

}  // namespace
}  // namespace deepflow
