#include "common/five_tuple.h"

#include <gtest/gtest.h>

namespace deepflow {
namespace {

FiveTuple sample() {
  return FiveTuple{Ipv4::parse("10.1.2.3"), Ipv4::parse("10.4.5.6"), 40000,
                   8080, L4Proto::kTcp};
}

TEST(Ipv4, RoundTrip) {
  for (const char* text : {"0.0.0.0", "10.1.2.3", "255.255.255.255",
                           "192.168.0.1"}) {
    EXPECT_EQ(Ipv4::parse(text).to_string(), text);
  }
}

TEST(Ipv4, MalformedParsesToZero) {
  for (const char* text : {"", "10.1.2", "10.1.2.3.4", "300.1.1.1", "a.b.c.d",
                           "10.1.2.3x"}) {
    EXPECT_EQ(Ipv4::parse(text).addr, 0u) << text;
  }
}

TEST(FiveTuple, ReversedSwapsEndpoints) {
  const FiveTuple t = sample();
  const FiveTuple r = t.reversed();
  EXPECT_EQ(r.src_ip, t.dst_ip);
  EXPECT_EQ(r.dst_port, t.src_port);
  EXPECT_EQ(r.reversed(), t);
}

TEST(FiveTuple, CanonicalIsDirectionAgnostic) {
  const FiveTuple t = sample();
  EXPECT_EQ(t.canonical(), t.reversed().canonical());
  EXPECT_EQ(t.canonical().hash(), t.reversed().canonical().hash());
}

TEST(FiveTuple, CanonicalIsIdempotent) {
  const FiveTuple t = sample();
  EXPECT_EQ(t.canonical().canonical(), t.canonical());
}

TEST(FiveTuple, HashDiffersAcrossFlows) {
  FiveTuple a = sample();
  FiveTuple b = sample();
  b.src_port = 40001;
  EXPECT_NE(a.hash(), b.hash());
}

TEST(FiveTuple, ToStringFormat) {
  EXPECT_EQ(sample().to_string(), "10.1.2.3:40000 -> 10.4.5.6:8080/tcp");
}

TEST(FiveTuple, SamePortsCanonicalStable) {
  // Equal endpoints either way must still be deterministic.
  FiveTuple t{Ipv4{100}, Ipv4{100}, 5, 5, L4Proto::kUdp};
  EXPECT_EQ(t.canonical(), t);
}

}  // namespace
}  // namespace deepflow
