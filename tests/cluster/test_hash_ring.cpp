// HashRing unit suite: the pinned routing properties the federation builds
// on — determinism, walk/owner coherence, rough balance, and the classic
// consistent-hashing stability guarantee (adding a node only moves keys TO
// the new node, never between old ones).
#include "cluster/hash_ring.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/hash.h"

namespace deepflow::cluster {
namespace {

constexpr u64 kSeed = 0x5eedf00dULL;

u64 key(u64 i) { return mix64(i + 1); }

TEST(HashRing, SingleNodeOwnsEverything) {
  const HashRing ring(1, 16, kSeed);
  EXPECT_EQ(ring.nodes(), 1u);
  for (u64 i = 0; i < 64; ++i) {
    EXPECT_EQ(ring.primary(key(i)), 0u);
    EXPECT_EQ(ring.owners(key(i), 3), std::vector<u32>{0});
    EXPECT_EQ(ring.walk(key(i)), std::vector<u32>{0});
  }
}

TEST(HashRing, OwnersAreDistinctPrefixOfWalk) {
  const HashRing ring(5, 16, kSeed);
  for (u64 i = 0; i < 256; ++i) {
    const std::vector<u32> walk = ring.walk(key(i));
    ASSERT_EQ(walk.size(), 5u);
    EXPECT_EQ(std::set<u32>(walk.begin(), walk.end()).size(), 5u)
        << "walk must visit every node exactly once";
    EXPECT_EQ(ring.primary(key(i)), walk.front());
    for (size_t count = 1; count <= 5; ++count) {
      const std::vector<u32> owners = ring.owners(key(i), count);
      ASSERT_EQ(owners.size(), count);
      for (size_t k = 0; k < count; ++k) EXPECT_EQ(owners[k], walk[k]);
    }
    // Requesting more owners than nodes clamps to the full walk.
    EXPECT_EQ(ring.owners(key(i), 9), walk);
  }
}

TEST(HashRing, LookupsAreDeterministic) {
  const HashRing a(4, 16, kSeed);
  const HashRing b(4, 16, kSeed);
  for (u64 i = 0; i < 256; ++i) {
    EXPECT_EQ(a.primary(key(i)), b.primary(key(i)));
    EXPECT_EQ(a.owners(key(i), 2), b.owners(key(i), 2));
    EXPECT_EQ(a.walk(key(i)), b.walk(key(i)));
  }
}

TEST(HashRing, SeedReshapesTheLayout) {
  const HashRing a(4, 16, kSeed);
  const HashRing b(4, 16, kSeed + 1);
  u64 moved = 0;
  for (u64 i = 0; i < 256; ++i) {
    if (a.primary(key(i)) != b.primary(key(i))) ++moved;
  }
  EXPECT_GT(moved, 0u);
}

TEST(HashRing, VirtualNodesRoughlyBalancePrimaries) {
  const HashRing ring(4, 64, kSeed);
  std::map<u32, u64> primaries;
  const u64 kKeys = 8192;
  for (u64 i = 0; i < kKeys; ++i) ++primaries[ring.primary(key(i))];
  ASSERT_EQ(primaries.size(), 4u) << "every node must own some keys";
  for (const auto& [node, count] : primaries) {
    // Perfect balance would be 25%; virtual points keep every node within
    // a loose band of it.
    EXPECT_GT(count, kKeys / 10) << "node " << node << " owns too little";
    EXPECT_LT(count, kKeys / 2) << "node " << node << " owns too much";
  }
}

TEST(HashRing, AddingANodeOnlyStealsKeysToTheNewNode) {
  const HashRing before(4, 32, kSeed);
  const HashRing after(5, 32, kSeed);
  u64 moved = 0;
  for (u64 i = 0; i < 4096; ++i) {
    const u32 old_primary = before.primary(key(i));
    const u32 new_primary = after.primary(key(i));
    if (new_primary != old_primary) {
      EXPECT_EQ(new_primary, 4u)
          << "a key may only move to the node that just joined";
      ++moved;
    }
  }
  // The new node takes roughly 1/5 of the keyspace — and not nothing.
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, 4096u / 2);
}

TEST(HashRing, HostnameKeysSpreadAcrossNodes) {
  // The federation keys partitions by fnv1a(hostname); realistic hostname
  // sets must not all collapse onto one node.
  const HashRing ring(3, 16, kSeed);
  std::set<u32> used;
  for (int i = 0; i < 12; ++i) {
    used.insert(ring.primary(fnv1a("node-" + std::to_string(i))));
  }
  EXPECT_GT(used.size(), 1u);
}

}  // namespace
}  // namespace deepflow::cluster
