// Federation unit suite: pinned-owner routing, replicated ingest, refusal
// semantics (down nodes and link partitions), the heartbeat failure
// detector, query-side failover, and kill/restart with catch-up replay —
// exercised directly against the Federation API with synthetic spans.
#include "cluster/federation.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/hash.h"
#include "netsim/resource.h"

namespace deepflow::cluster {
namespace {

agent::Span make_span(u64 id, const std::string& host, TimestampNs start) {
  agent::Span span;
  span.span_id = id;
  span.host = host;
  span.pid = 10;
  span.start_ts = start;
  span.end_ts = start + 1'000;
  span.endpoint = "/api";
  return span;
}

std::vector<agent::Span> make_batch(u64 first_id, const std::string& host,
                                    size_t count) {
  std::vector<agent::Span> batch;
  for (size_t i = 0; i < count; ++i) {
    batch.push_back(make_span(first_id + i, host, 1'000 * (first_id + i)));
  }
  return batch;
}

class FederationTest : public ::testing::Test {
 protected:
  std::unique_ptr<Federation> make(ClusterConfig config,
                                   FaultInjector* fault = nullptr) {
    return std::make_unique<Federation>(&registry_, config,
                                        server::ServerConfig{}, fault);
  }
  netsim::ResourceRegistry registry_;
};

TEST_F(FederationTest, RoutesAndReplicatesToPinnedOwners) {
  auto fed = make({.nodes = 3, .replicas = 1});
  EXPECT_EQ(fed->node_count(), 3u);
  EXPECT_EQ(fed->replication_factor(), 2u);
  const std::vector<u32> owners = fed->register_agent("alpha");
  ASSERT_EQ(owners.size(), 2u);
  EXPECT_NE(owners[0], owners[1]);
  EXPECT_EQ(owners[0], fed->ring().primary(fnv1a("alpha")));

  for (const u32 owner : owners) {
    std::vector<agent::Span> batch = make_batch(1, "alpha", 4);
    EXPECT_TRUE(fed->deliver(owner, "alpha", batch));
    EXPECT_TRUE(batch.empty()) << "accepted batches are consumed";
    EXPECT_EQ(fed->node_server(owner)->store().row_count(), 4u);
  }
  // A non-owner got nothing.
  for (u32 node = 0; node < 3; ++node) {
    if (node != owners[0] && node != owners[1]) {
      EXPECT_EQ(fed->node_server(node)->store().row_count(), 0u);
    }
  }
  const FederationTelemetry t = fed->telemetry();
  EXPECT_EQ(t.partitions, 1u);
  EXPECT_EQ(t.batches_delivered, 2u);
  EXPECT_EQ(t.spans_delivered, 8u);
  EXPECT_EQ(t.replica_spans, 4u) << "one of the two copies is the replica's";
  // Replicated storage, exactly-once queries.
  EXPECT_EQ(fed->query_span_list(0, ~TimestampNs{0}).size(), 4u);
}

TEST_F(FederationTest, DeliveryToDeadNodeIsRefusedWithBatchIntact) {
  auto fed = make({.nodes = 3, .replicas = 0});
  const u32 owner = fed->register_agent("alpha").front();
  EXPECT_TRUE(fed->kill(owner));
  EXPECT_FALSE(fed->node_up(owner));
  EXPECT_EQ(fed->node_server(owner), nullptr);
  EXPECT_FALSE(fed->kill(owner)) << "already down";

  std::vector<agent::Span> batch = make_batch(1, "alpha", 3);
  EXPECT_FALSE(fed->deliver(owner, "alpha", batch));
  EXPECT_EQ(batch.size(), 3u) << "refused batches stay with the transport";
  const FederationTelemetry t = fed->telemetry();
  EXPECT_EQ(t.rejected_down, 1u);
  EXPECT_EQ(t.batches_delivered, 0u);
  EXPECT_EQ(t.kills, 1u);
  EXPECT_EQ(t.nodes_up, 2u);
}

TEST_F(FederationTest, LinkPartitionFaultRefusesDeliveries) {
  FaultInjector injector(7);
  injector.configure(FaultSite::kLinkPartition, {.drop = 1.0});
  auto fed = make({.nodes = 2, .replicas = 0}, &injector);
  const u32 owner = fed->register_agent("alpha").front();

  std::vector<agent::Span> batch = make_batch(1, "alpha", 2);
  EXPECT_FALSE(fed->deliver(owner, "alpha", batch, /*lane=*/5));
  EXPECT_EQ(batch.size(), 2u);
  const FederationTelemetry t = fed->telemetry();
  EXPECT_EQ(t.rejected_partitioned, 1u);
  EXPECT_EQ(t.spans_delivered, 0u);
  EXPECT_TRUE(fed->node_up(owner)) << "a partitioned node is not dead";
}

TEST_F(FederationTest, HeartbeatSilenceTriggersSuspicionAndRecovery) {
  FaultInjector injector(7);
  injector.configure(FaultSite::kLinkPartition, {.drop = 1.0});
  auto fed = make({.nodes = 2, .replicas = 0,
                   .heartbeat_timeout_ticks = 2}, &injector);
  const u64 epoch0 = fed->routing_epoch();
  for (int i = 0; i < 2; ++i) fed->tick();
  EXPECT_TRUE(fed->node_alive(0)) << "within the timeout: still trusted";
  fed->tick();  // silence now exceeds the timeout
  EXPECT_TRUE(fed->node_up(0));
  EXPECT_FALSE(fed->node_alive(0));
  EXPECT_FALSE(fed->node_alive(1));

  const FederationTelemetry t = fed->telemetry();
  EXPECT_EQ(t.ticks, 3u);
  EXPECT_EQ(t.heartbeats, 6u);
  EXPECT_EQ(t.heartbeats_lost, 6u);
  EXPECT_EQ(t.failovers, 2u) << "both nodes transitioned into suspected";
  EXPECT_EQ(t.nodes_up, 2u);
  EXPECT_EQ(t.nodes_alive, 0u);
  EXPECT_GT(fed->routing_epoch(), epoch0);
}

TEST_F(FederationTest, HealthyHeartbeatsKeepNodesAlive) {
  auto fed = make({.nodes = 2, .replicas = 0, .heartbeat_timeout_ticks = 2});
  for (int i = 0; i < 16; ++i) fed->tick();
  EXPECT_TRUE(fed->node_alive(0));
  EXPECT_TRUE(fed->node_alive(1));
  const FederationTelemetry t = fed->telemetry();
  EXPECT_EQ(t.heartbeats, 32u);
  EXPECT_EQ(t.heartbeats_lost, 0u);
  EXPECT_EQ(t.failovers, 0u);
}

TEST_F(FederationTest, QueryFailoverServesFromTheReplica) {
  auto fed = make({.nodes = 3, .replicas = 1});
  const std::vector<u32> owners = fed->register_agent("alpha");
  for (const u32 owner : owners) {
    std::vector<agent::Span> batch = make_batch(1, "alpha", 5);
    ASSERT_TRUE(fed->deliver(owner, "alpha", batch));
  }
  const std::string dump_before = fed->canonical_store_dump();
  EXPECT_FALSE(dump_before.empty());

  ASSERT_TRUE(fed->kill(owners[0]));
  EXPECT_EQ(fed->canonical_store_dump(), dump_before)
      << "the replica serves byte-identical content";
  EXPECT_EQ(fed->query_span_list(0, ~TimestampNs{0}).size(), 5u);

  const server::QueryTelemetry q = fed->query_telemetry();
  EXPECT_GT(q.partitions_failover, 0u);
  EXPECT_EQ(q.partitions_unavailable, 0u);
}

TEST_F(FederationTest, UnreplicatedPartitionGoesUnavailableOnKill) {
  auto fed = make({.nodes = 3, .replicas = 0});
  const u32 owner = fed->register_agent("alpha").front();
  std::vector<agent::Span> batch = make_batch(1, "alpha", 5);
  ASSERT_TRUE(fed->deliver(owner, "alpha", batch));
  ASSERT_TRUE(fed->kill(owner));

  EXPECT_TRUE(fed->query_span_list(0, ~TimestampNs{0}).empty());
  EXPECT_TRUE(fed->canonical_store_dump().empty());
  const server::QueryTelemetry q = fed->query_telemetry();
  EXPECT_GT(q.partitions_unavailable, 0u);
  EXPECT_EQ(q.partitions_failover, 0u);
}

TEST_F(FederationTest, RestartWithCatchUpRestoresContent) {
  auto fed = make({.nodes = 3, .replicas = 1});
  const std::vector<u32> owners = fed->register_agent("alpha");
  for (const u32 owner : owners) {
    std::vector<agent::Span> batch = make_batch(1, "alpha", 4);
    ASSERT_TRUE(fed->deliver(owner, "alpha", batch));
  }
  ASSERT_TRUE(fed->kill(owners[0]));
  // The outage window: only the surviving replica accepts (the transport
  // to the dead owner would be retrying, then giving up).
  std::vector<agent::Span> batch = make_batch(5, "alpha", 4);
  ASSERT_TRUE(fed->deliver(owners[1], "alpha", batch));
  const std::string dump_outage = fed->canonical_store_dump();

  ASSERT_TRUE(fed->restart(owners[0]));
  EXPECT_FALSE(fed->restart(owners[0])) << "already up";
  const FederationTelemetry t = fed->telemetry();
  EXPECT_EQ(t.kills, 1u);
  EXPECT_EQ(t.restarts, 1u);
  EXPECT_EQ(t.rejoins, 1u);
  EXPECT_EQ(t.recovered_spans, 0u) << "no persistent storage configured";
  EXPECT_EQ(t.catch_up_spans, 8u)
      << "everything came back from the surviving replica";
  EXPECT_EQ(fed->node_server(owners[0])->store().row_count(), 8u);

  // The rejoined primary serves its shard again — byte-identically.
  EXPECT_EQ(fed->canonical_store_dump(), dump_outage);
  ASSERT_TRUE(fed->kill(owners[1]));
  EXPECT_EQ(fed->canonical_store_dump(), dump_outage)
      << "rejoined node alone still serves the full partition";
}

TEST_F(FederationTest, ThirdPartySpansReplicateToEveryUpOwner) {
  auto fed = make({.nodes = 3, .replicas = 1});
  const std::vector<u32> owners = fed->register_agent("alpha");
  agent::Span span = make_span((u64{1} << 48) | 1, "alpha", 42'000);
  ASSERT_TRUE(fed->deliver_third_party(std::move(span)));
  for (const u32 owner : owners) {
    EXPECT_EQ(fed->node_server(owner)->store().row_count(), 1u);
  }
  EXPECT_EQ(fed->query_span_list(0, ~TimestampNs{0}).size(), 1u);

  // With every owner down the span has nowhere to go.
  for (const u32 owner : owners) ASSERT_TRUE(fed->kill(owner));
  agent::Span lost = make_span((u64{1} << 48) | 2, "alpha", 43'000);
  EXPECT_FALSE(fed->deliver_third_party(std::move(lost)));
}

TEST_F(FederationTest, StragglersRouteToOneConsistentOwnerOnly) {
  auto fed = make({.nodes = 3, .replicas = 1});
  const std::vector<u32> owners = fed->register_agent("alpha");
  EXPECT_TRUE(fed->deliver_straggler("alpha", agent::MessageData{}));
  EXPECT_EQ(fed->telemetry().stragglers_routed, 1u);

  // A restarted node is permanently straggler-inconsistent: its
  // reaggregation window state died with it.
  ASSERT_TRUE(fed->kill(owners[0]));
  ASSERT_TRUE(fed->restart(owners[0]));
  EXPECT_FALSE(fed->node_straggler_consistent(owners[0]));
  EXPECT_TRUE(fed->deliver_straggler("alpha", agent::MessageData{}))
      << "the untouched replica still re-aggregates";

  ASSERT_TRUE(fed->kill(owners[1]));
  ASSERT_TRUE(fed->restart(owners[1]));
  EXPECT_FALSE(fed->deliver_straggler("alpha", agent::MessageData{}))
      << "no owner with an intact window left";
  const FederationTelemetry t = fed->telemetry();
  EXPECT_EQ(t.stragglers_routed, 2u);
  EXPECT_EQ(t.stragglers_dropped, 1u);
}

TEST_F(FederationTest, PrometheusExportsFederationGauges) {
  auto fed = make({.nodes = 2, .replicas = 0});
  const u32 owner = fed->register_agent("alpha").front();
  std::vector<agent::Span> batch = make_batch(1, "alpha", 2);
  ASSERT_TRUE(fed->deliver(owner, "alpha", batch));
  const std::string text = fed->prometheus_metrics();
  EXPECT_NE(text.find("deepflow_federation_nodes 2"), std::string::npos);
  EXPECT_NE(text.find("deepflow_federation_nodes_up 2"), std::string::npos);
  EXPECT_NE(text.find("deepflow_federation_spans_delivered 2"),
            std::string::npos);
  EXPECT_NE(text.find("deepflow_federation_partitions 1"), std::string::npos);
}

}  // namespace
}  // namespace deepflow::cluster
