// FederationEquivalence suite: an N-server consistent-hash federation is
// an implementation detail — every canonical query surface (store dump,
// trace corpus, RED rollups, service map) must be byte-identical to the
// historical single-server deployment over the same workload, for any node
// count, replication factor, and transport shape.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tests/cluster/federation_test_util.h"

namespace deepflow::cluster {
namespace {

using testutil::FedSnapshot;
using testutil::federated_config;
using testutil::run_federated;

void expect_identical(const FedSnapshot& expected, const FedSnapshot& actual) {
  EXPECT_GT(expected.span_count, 0u);
  EXPECT_EQ(expected.span_count, actual.span_count);
  EXPECT_EQ(expected.store_dump, actual.store_dump);
  EXPECT_EQ(expected.traces, actual.traces);
  EXPECT_EQ(expected.metrics, actual.metrics);
  EXPECT_EQ(expected.service_map, actual.service_map);
}

TEST(FederationEquivalence, TwoNodeFederationMatchesSingleServer) {
  const FedSnapshot single = run_federated(core::DeploymentConfig{});
  const FedSnapshot fed = run_federated(federated_config(2, 1));
  expect_identical(single, fed);
  // The federation actually federated: both nodes took traffic, every
  // partition was served by its pinned primary, nothing was refused.
  EXPECT_EQ(fed.fed.nodes, 2u);
  EXPECT_GT(fed.fed.partitions, 1u);
  EXPECT_GT(fed.fed.spans_delivered, 0u);
  EXPECT_GT(fed.fed.replica_spans, 0u);
  EXPECT_EQ(fed.fed.rejected_down, 0u);
  EXPECT_EQ(fed.fed.rejected_partitioned, 0u);
  EXPECT_EQ(fed.fed.kills, 0u);
  EXPECT_EQ(fed.query.partitions_failover, 0u);
  EXPECT_EQ(fed.query.partitions_unavailable, 0u);
  EXPECT_GT(fed.query.partitions_primary, 0u);
}

TEST(FederationEquivalence, FourNodeFederationMatchesSingleServer) {
  const FedSnapshot single = run_federated(core::DeploymentConfig{});
  const FedSnapshot fed = run_federated(federated_config(4, 1));
  expect_identical(single, fed);
  EXPECT_EQ(fed.fed.nodes, 4u);
}

TEST(FederationEquivalence, ReplicationFactorIsContentInvariant) {
  const FedSnapshot none = run_federated(federated_config(3, 0));
  const FedSnapshot one = run_federated(federated_config(3, 1));
  const FedSnapshot two = run_federated(federated_config(3, 2));
  expect_identical(none, one);
  expect_identical(none, two);
  // Higher replication means more copies on the wire, never more content.
  EXPECT_EQ(none.fed.replica_spans, 0u);
  EXPECT_GT(one.fed.replica_spans, 0u);
  EXPECT_GT(two.fed.replica_spans, one.fed.replica_spans);
}

TEST(FederationEquivalence, DirectAndBatchedLinksAgree) {
  core::DeploymentConfig direct = federated_config(3, 1);
  direct.transport.direct = true;
  const FedSnapshot batched = run_federated(federated_config(3, 1));
  const FedSnapshot immediate = run_federated(direct);
  expect_identical(batched, immediate);
}

TEST(FederationEquivalence, SingleNodeRingDegeneratesCleanly) {
  const FedSnapshot single = run_federated(core::DeploymentConfig{});
  const FedSnapshot ring_of_one = run_federated(federated_config(1, 1));
  expect_identical(single, ring_of_one);
  EXPECT_EQ(ring_of_one.fed.replica_spans, 0u)
      << "replication clamps to the ring size";
}

TEST(FederationEquivalence, FederatedRunsAreReproducible) {
  const FedSnapshot a = run_federated(federated_config(3, 1));
  const FedSnapshot b = run_federated(federated_config(3, 1));
  expect_identical(a, b);
  EXPECT_EQ(a.fed.spans_delivered, b.fed.spans_delivered);
  EXPECT_EQ(a.fed.batches_delivered, b.fed.batches_delivered);
  EXPECT_EQ(a.fed.partitions, b.fed.partitions);
}

}  // namespace
}  // namespace deepflow::cluster
