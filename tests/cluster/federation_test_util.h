// Shared helpers for the FederationEquivalence / FederationChaos suites:
// run the spring-boot workload through a Deployment (single-server or
// federated) and snapshot every canonical surface the equivalence checks
// compare byte-for-byte.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/deployment.h"
#include "server/canonical.h"
#include "workloads/topologies.h"

namespace deepflow::cluster::testutil {

struct FedSnapshot {
  std::string store_dump;           // canonical served content, sorted lines
  std::vector<std::string> traces;  // canonical trace corpus, sorted
  std::string metrics;              // canonical RED rollups
  std::string service_map;          // canonical service topology
  u64 span_count = 0;               // spans the query plane served
  agent::TransportStats transport;
  server::IngestTelemetry ingest;
  server::QueryTelemetry query;  // snapshotted AFTER assembling all traces
  FederationTelemetry fed;       // zero-initialized in single-server runs
};

/// Canonical trace corpus over a span-id list served by `query_trace`:
/// every unclaimed id is assembled and each trace serialized id-free.
template <typename QueryTraceFn>
std::vector<std::string> trace_corpus(const std::vector<u64>& ids,
                                      QueryTraceFn&& query_trace) {
  std::vector<std::string> traces;
  std::set<u64> claimed;
  for (const u64 id : ids) {
    if (claimed.contains(id)) continue;
    const server::AssembledTrace trace = query_trace(id);
    for (const auto& s : trace.spans) claimed.insert(s.span.span_id);
    traces.push_back(server::canonical_trace(trace));
  }
  std::sort(traces.begin(), traces.end());
  return traces;
}

/// Snapshot every canonical surface of a finished deployment (single-server
/// or federated).
inline FedSnapshot snapshot(core::Deployment& deepflow) {
  FedSnapshot snap;
  snap.transport = deepflow.aggregate_transport_stats();
  if (deepflow.federated()) {
    Federation& fed = *deepflow.federation();
    snap.store_dump = fed.canonical_store_dump();
    snap.metrics = fed.canonical_metrics();
    snap.service_map = fed.canonical_service_map();
    snap.ingest = fed.ingest_telemetry();
    std::vector<u64> ids;
    for (const agent::Span& span : fed.query_span_list(0, ~TimestampNs{0})) {
      ids.push_back(span.span_id);
    }
    snap.span_count = ids.size();
    snap.traces =
        trace_corpus(ids, [&](u64 id) { return fed.query_trace(id); });
    snap.query = fed.query_telemetry();
    snap.fed = fed.telemetry();
  } else {
    const server::DeepFlowServer& server = deepflow.server();
    snap.store_dump = server::canonical_store_dump(server.store());
    snap.metrics = server.metrics_aggregator().canonical_metrics();
    snap.service_map = server.metrics_aggregator().canonical_service_map();
    snap.ingest = server.ingest_telemetry();
    const std::vector<u64> ids = server.store().span_list(0, ~TimestampNs{0});
    snap.span_count = ids.size();
    snap.traces =
        trace_corpus(ids, [&](u64 id) { return server.query_trace(id); });
    snap.query = server.query_telemetry();
  }
  return snap;
}

/// Run the spring-boot demo under `config`. `mid_run` fires between the two
/// load phases (after a drain poll) — the chaos suite kills/restarts nodes
/// there; pass nullptr for an undisturbed run. Baselines MUST use the same
/// two-phase shape so the workload stream is identical run to run. `hosts`
/// receives the agent hostnames (= federation partitions) in node order.
inline FedSnapshot run_federated(
    const core::DeploymentConfig& config,
    std::function<void(core::Deployment&, const std::vector<std::string>&)>
        mid_run = nullptr,
    std::function<void(core::Deployment&)> before_finish = nullptr,
    u64 topo_seed = 11, double rps = 12.0) {
  workloads::Topology topo = workloads::make_spring_boot_demo(topo_seed);
  core::Deployment deepflow(topo.cluster.get(), config);
  EXPECT_TRUE(deepflow.deploy()) << deepflow.error();
  std::vector<std::string> hosts;
  for (const netsim::NodeId node : topo.cluster->nodes()) {
    hosts.push_back(topo.cluster->kernel_of(node)->hostname());
  }
  topo.app->run_constant_load(topo.entry, rps, 1 * kSecond / 2);
  deepflow.poll();
  if (mid_run) mid_run(deepflow, hosts);
  topo.app->run_constant_load(topo.entry, rps, 1 * kSecond / 2);
  deepflow.poll();
  if (before_finish) before_finish(deepflow);
  deepflow.finish();
  return snapshot(deepflow);
}

/// Batched transport + `nodes`-server federation over the default template.
inline core::DeploymentConfig federated_config(u32 nodes, u32 replicas) {
  core::DeploymentConfig config;
  config.transport.direct = false;
  config.transport.batch_spans = 16;
  config.federation.nodes = nodes;
  config.federation.replicas = replicas;
  return config;
}

inline std::vector<std::string> dump_lines(const std::string& dump) {
  std::vector<std::string> lines;
  std::stringstream stream(dump);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

/// True when `inner`'s (sorted) lines are a sub-multiset of `outer`'s.
inline bool subset_of(const std::vector<std::string>& inner,
                      const std::vector<std::string>& outer) {
  return std::includes(outer.begin(), outer.end(), inner.begin(),
                       inner.end());
}

}  // namespace deepflow::cluster::testutil
