// FederationChaos suite: kill a server mid-run and hold the PR's two
// pinned recovery properties — queries degrade MONOTONICALLY while the
// node is down (served content is a subset of the no-kill run, with the
// degradation visible in QueryTelemetry), and after restart + rejoin
// (segment recovery + catch-up replay from surviving replicas) every
// canonical surface is byte-identical to the undisturbed baseline.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tests/cluster/federation_test_util.h"
#include "tests/storage/storage_test_util.h"

namespace deepflow::cluster {
namespace {

using testutil::FedSnapshot;
using testutil::dump_lines;
using testutil::federated_config;
using testutil::run_federated;
using testutil::subset_of;

void expect_identical(const FedSnapshot& expected, const FedSnapshot& actual) {
  EXPECT_GT(expected.span_count, 0u);
  EXPECT_EQ(expected.span_count, actual.span_count);
  EXPECT_EQ(expected.store_dump, actual.store_dump);
  EXPECT_EQ(expected.traces, actual.traces);
  EXPECT_EQ(expected.metrics, actual.metrics);
  EXPECT_EQ(expected.service_map, actual.service_map);
}

TEST(FederationChaos, KillMidRunThenRejoinRestoresByteIdentity) {
  const FedSnapshot baseline = run_federated(federated_config(3, 1));

  storage::testutil::ScopedTempDir dir("df-fed-chaos-rejoin");
  core::DeploymentConfig config = federated_config(3, 1);
  config.server.storage.enabled = true;
  config.server.storage.dir = dir.str();
  config.server.storage.segment_spans = 64;
  // A kill is a CRASH: whatever the victim had not flushed dies with it
  // and must come back from the surviving replica, not from disk.
  config.server.storage.flush_on_close = false;

  u32 victim = 0;
  std::string outage_dump;
  const FedSnapshot chaos = run_federated(
      config,
      [&](core::Deployment& d, const std::vector<std::string>& hosts) {
        // Kill the pinned primary of the first agent's partition, so at
        // least one partition demonstrably fails over.
        victim = d.federation()->owners_of(hosts.front()).front();
        ASSERT_TRUE(d.federation()->kill(victim));
      },
      [&](core::Deployment& d) {
        // Still down: the replica serves, nothing is unavailable.
        outage_dump = d.federation()->canonical_store_dump();
        const server::QueryTelemetry q = d.federation()->query_telemetry();
        EXPECT_GT(q.partitions_failover, 0u);
        EXPECT_EQ(q.partitions_unavailable, 0u);
        ASSERT_TRUE(d.federation()->restart(victim));
      });

  // During the outage the federation served a (strict, monotone) subset.
  const std::vector<std::string> outage = dump_lines(outage_dump);
  const std::vector<std::string> full = dump_lines(baseline.store_dump);
  EXPECT_FALSE(outage.empty());
  EXPECT_LT(outage.size(), full.size());
  EXPECT_TRUE(subset_of(outage, full));

  // After rejoin: byte-identical to the run where nothing ever died.
  expect_identical(baseline, chaos);
  EXPECT_EQ(chaos.fed.kills, 1u);
  EXPECT_EQ(chaos.fed.restarts, 1u);
  EXPECT_EQ(chaos.fed.rejoins, 1u);
  EXPECT_GT(chaos.fed.rejected_down, 0u)
      << "the victim's transport links were refused during the outage";
  EXPECT_GT(chaos.fed.catch_up_spans, 0u)
      << "the rejoined node replayed its missing delta from the replica";
  EXPECT_GT(chaos.query.partitions_failover, 0u);
}

TEST(FederationChaos, RejoinRecoversTheShardFromSegmentFiles) {
  const FedSnapshot baseline = run_federated(federated_config(3, 1));

  storage::testutil::ScopedTempDir dir("df-fed-chaos-segments");
  core::DeploymentConfig config = federated_config(3, 1);
  config.server.storage.enabled = true;
  config.server.storage.dir = dir.str();
  config.server.storage.segment_spans = 64;
  // Graceful-stop flavor: the close flushes, so the restarted node
  // rebuilds its journals from its own segment files (PR 5's warm tier)
  // rather than leaning on replica replay.
  config.server.storage.flush_on_close = true;

  u32 victim = 0;
  const FedSnapshot chaos = run_federated(
      config,
      [&](core::Deployment& d, const std::vector<std::string>& hosts) {
        victim = d.federation()->owners_of(hosts.front()).front();
      },
      [&](core::Deployment& d) {
        ASSERT_TRUE(d.federation()->kill(victim));
        ASSERT_TRUE(d.federation()->restart(victim));
      });

  expect_identical(baseline, chaos);
  EXPECT_GT(chaos.fed.recovered_spans, 0u)
      << "the rejoined node re-served its shard from segment files";
  EXPECT_EQ(chaos.fed.kills, 1u);
  EXPECT_EQ(chaos.fed.restarts, 1u);
}

TEST(FederationChaos, UnreplicatedKillDegradesMonotonically) {
  const FedSnapshot baseline = run_federated(federated_config(3, 0));

  u32 victim = 0;
  const FedSnapshot chaos = run_federated(
      federated_config(3, 0),
      [&](core::Deployment& d, const std::vector<std::string>& hosts) {
        victim = d.federation()->owners_of(hosts.front()).front();
        ASSERT_TRUE(d.federation()->kill(victim));
      });

  // No replica, no restart: the victim's partitions are explicitly gone —
  // but what IS served is a subset of the baseline, never wrong data.
  EXPECT_GT(chaos.span_count, 0u);
  EXPECT_LT(chaos.span_count, baseline.span_count);
  EXPECT_TRUE(subset_of(dump_lines(chaos.store_dump),
                        dump_lines(baseline.store_dump)));
  EXPECT_GT(chaos.query.partitions_unavailable, 0u);
  EXPECT_EQ(chaos.query.partitions_failover, 0u) << "nowhere to fail over to";
  EXPECT_GT(chaos.fed.rejected_down, 0u);
  EXPECT_GT(chaos.transport.gave_up_spans, 0u)
      << "the dead node's links exhausted their retry budget";
}

TEST(FederationChaos, InjectedCrashesAreDeterministic) {
  core::DeploymentConfig config = federated_config(3, 1);
  config.faults.seed = 77;
  config.faults.node_crash = {.drop = 0.05};

  const auto extra_ticks = [](core::Deployment& d) {
    for (int i = 0; i < 30; ++i) d.poll();
  };
  const FedSnapshot a = run_federated(config, nullptr, extra_ticks);
  const FedSnapshot b = run_federated(config, nullptr, extra_ticks);

  EXPECT_GT(a.fed.crash_faults, 0u) << "the crash site actually fired";
  EXPECT_EQ(a.fed.crash_faults, a.fed.kills);
  // Same seed, same schedule: the chaos run replays exactly.
  EXPECT_EQ(a.fed.crash_faults, b.fed.crash_faults);
  EXPECT_EQ(a.fed.spans_delivered, b.fed.spans_delivered);
  EXPECT_EQ(a.fed.rejected_down, b.fed.rejected_down);
  EXPECT_EQ(a.span_count, b.span_count);
  EXPECT_EQ(a.store_dump, b.store_dump);
  EXPECT_EQ(a.traces, b.traces);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.service_map, b.service_map);
}

TEST(FederationChaos, HeartbeatSuspicionStopsQueriesToSilentNodes) {
  // Partition every link: heartbeats go silent, the detector suspects
  // every node, and the query plane serves nothing rather than guessing —
  // unavailability is explicit, never silent partial results.
  core::DeploymentConfig config = federated_config(2, 0);
  config.faults.seed = 5;
  config.faults.link_partition = {.drop = 1.0};
  config.federation.heartbeat_timeout_ticks = 2;

  const FedSnapshot snap = run_federated(
      config, nullptr, [](core::Deployment& d) {
        for (int i = 0; i < 8; ++i) d.poll();
        EXPECT_FALSE(d.federation()->node_alive(0));
        EXPECT_FALSE(d.federation()->node_alive(1));
        EXPECT_TRUE(d.federation()->query_span_list(0, ~TimestampNs{0})
                        .empty());
      });
  EXPECT_GT(snap.fed.heartbeats_lost, 0u);
  EXPECT_GT(snap.fed.failovers, 0u);
  EXPECT_EQ(snap.fed.nodes_alive, 0u);
  EXPECT_EQ(snap.span_count, 0u) << "suspected nodes serve nothing";
}

}  // namespace
}  // namespace deepflow::cluster
