# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_kernelsim[1]_include.cmake")
include("/root/repo/build/tests/test_netsim[1]_include.cmake")
include("/root/repo/build/tests/test_ebpf[1]_include.cmake")
include("/root/repo/build/tests/test_protocols[1]_include.cmake")
include("/root/repo/build/tests/test_agent[1]_include.cmake")
include("/root/repo/build/tests/test_server[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
