file(REMOVE_RECURSE
  "CMakeFiles/test_netsim.dir/netsim/test_cluster.cpp.o"
  "CMakeFiles/test_netsim.dir/netsim/test_cluster.cpp.o.d"
  "CMakeFiles/test_netsim.dir/netsim/test_fabric.cpp.o"
  "CMakeFiles/test_netsim.dir/netsim/test_fabric.cpp.o.d"
  "CMakeFiles/test_netsim.dir/netsim/test_resource.cpp.o"
  "CMakeFiles/test_netsim.dir/netsim/test_resource.cpp.o.d"
  "test_netsim"
  "test_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
