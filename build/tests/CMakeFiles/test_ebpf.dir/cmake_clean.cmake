file(REMOVE_RECURSE
  "CMakeFiles/test_ebpf.dir/ebpf/test_loader.cpp.o"
  "CMakeFiles/test_ebpf.dir/ebpf/test_loader.cpp.o.d"
  "CMakeFiles/test_ebpf.dir/ebpf/test_maps.cpp.o"
  "CMakeFiles/test_ebpf.dir/ebpf/test_maps.cpp.o.d"
  "CMakeFiles/test_ebpf.dir/ebpf/test_perf_buffer.cpp.o"
  "CMakeFiles/test_ebpf.dir/ebpf/test_perf_buffer.cpp.o.d"
  "CMakeFiles/test_ebpf.dir/ebpf/test_verifier.cpp.o"
  "CMakeFiles/test_ebpf.dir/ebpf/test_verifier.cpp.o.d"
  "test_ebpf"
  "test_ebpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ebpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
