# Empty compiler generated dependencies file for test_ebpf.
# This may be replaced when dependencies are built.
