file(REMOVE_RECURSE
  "CMakeFiles/test_agent.dir/agent/test_collector.cpp.o"
  "CMakeFiles/test_agent.dir/agent/test_collector.cpp.o.d"
  "CMakeFiles/test_agent.dir/agent/test_flow_inference.cpp.o"
  "CMakeFiles/test_agent.dir/agent/test_flow_inference.cpp.o.d"
  "CMakeFiles/test_agent.dir/agent/test_session_aggregator.cpp.o"
  "CMakeFiles/test_agent.dir/agent/test_session_aggregator.cpp.o.d"
  "CMakeFiles/test_agent.dir/agent/test_span_builder.cpp.o"
  "CMakeFiles/test_agent.dir/agent/test_span_builder.cpp.o.d"
  "CMakeFiles/test_agent.dir/agent/test_systrace.cpp.o"
  "CMakeFiles/test_agent.dir/agent/test_systrace.cpp.o.d"
  "test_agent"
  "test_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
