file(REMOVE_RECURSE
  "CMakeFiles/test_workloads.dir/workloads/test_app.cpp.o"
  "CMakeFiles/test_workloads.dir/workloads/test_app.cpp.o.d"
  "CMakeFiles/test_workloads.dir/workloads/test_microservice.cpp.o"
  "CMakeFiles/test_workloads.dir/workloads/test_microservice.cpp.o.d"
  "CMakeFiles/test_workloads.dir/workloads/test_otelsim.cpp.o"
  "CMakeFiles/test_workloads.dir/workloads/test_otelsim.cpp.o.d"
  "CMakeFiles/test_workloads.dir/workloads/test_payloads.cpp.o"
  "CMakeFiles/test_workloads.dir/workloads/test_payloads.cpp.o.d"
  "test_workloads"
  "test_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
