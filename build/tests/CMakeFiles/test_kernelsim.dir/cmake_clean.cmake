file(REMOVE_RECURSE
  "CMakeFiles/test_kernelsim.dir/kernelsim/test_hooks.cpp.o"
  "CMakeFiles/test_kernelsim.dir/kernelsim/test_hooks.cpp.o.d"
  "CMakeFiles/test_kernelsim.dir/kernelsim/test_kernel.cpp.o"
  "CMakeFiles/test_kernelsim.dir/kernelsim/test_kernel.cpp.o.d"
  "CMakeFiles/test_kernelsim.dir/kernelsim/test_task.cpp.o"
  "CMakeFiles/test_kernelsim.dir/kernelsim/test_task.cpp.o.d"
  "test_kernelsim"
  "test_kernelsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernelsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
