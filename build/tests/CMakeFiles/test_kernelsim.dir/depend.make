# Empty dependencies file for test_kernelsim.
# This may be replaced when dependencies are built.
