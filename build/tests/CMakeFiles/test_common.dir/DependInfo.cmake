
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_event_loop.cpp" "tests/CMakeFiles/test_common.dir/common/test_event_loop.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_event_loop.cpp.o.d"
  "/root/repo/tests/common/test_five_tuple.cpp" "tests/CMakeFiles/test_common.dir/common/test_five_tuple.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_five_tuple.cpp.o.d"
  "/root/repo/tests/common/test_hash_rand.cpp" "tests/CMakeFiles/test_common.dir/common/test_hash_rand.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_hash_rand.cpp.o.d"
  "/root/repo/tests/common/test_histogram.cpp" "tests/CMakeFiles/test_common.dir/common/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_histogram.cpp.o.d"
  "/root/repo/tests/common/test_spsc_ring.cpp" "tests/CMakeFiles/test_common.dir/common/test_spsc_ring.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_spsc_ring.cpp.o.d"
  "/root/repo/tests/common/test_thread_pool.cpp" "tests/CMakeFiles/test_common.dir/common/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_thread_pool.cpp.o.d"
  "/root/repo/tests/common/test_time_window.cpp" "tests/CMakeFiles/test_common.dir/common/test_time_window.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_time_window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/df_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/df_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/df_server.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/df_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/ebpf/CMakeFiles/df_ebpf.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/df_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernelsim/CMakeFiles/df_kernelsim.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/df_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/otelsim/CMakeFiles/df_otelsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/df_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
