file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/test_event_loop.cpp.o"
  "CMakeFiles/test_common.dir/common/test_event_loop.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_five_tuple.cpp.o"
  "CMakeFiles/test_common.dir/common/test_five_tuple.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_hash_rand.cpp.o"
  "CMakeFiles/test_common.dir/common/test_hash_rand.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_histogram.cpp.o"
  "CMakeFiles/test_common.dir/common/test_histogram.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_spsc_ring.cpp.o"
  "CMakeFiles/test_common.dir/common/test_spsc_ring.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_thread_pool.cpp.o"
  "CMakeFiles/test_common.dir/common/test_thread_pool.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_time_window.cpp.o"
  "CMakeFiles/test_common.dir/common/test_time_window.cpp.o.d"
  "test_common"
  "test_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
