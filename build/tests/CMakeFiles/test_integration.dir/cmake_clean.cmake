file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/test_case_studies.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_case_studies.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_end_to_end.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_end_to_end.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_golden_traces.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_golden_traces.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_invariants_sweep.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_invariants_sweep.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_parallel_equivalence.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_parallel_equivalence.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_reaggregation.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_reaggregation.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
