file(REMOVE_RECURSE
  "CMakeFiles/test_server.dir/server/test_span_store.cpp.o"
  "CMakeFiles/test_server.dir/server/test_span_store.cpp.o.d"
  "CMakeFiles/test_server.dir/server/test_tag_encoding.cpp.o"
  "CMakeFiles/test_server.dir/server/test_tag_encoding.cpp.o.d"
  "CMakeFiles/test_server.dir/server/test_trace_analysis.cpp.o"
  "CMakeFiles/test_server.dir/server/test_trace_analysis.cpp.o.d"
  "CMakeFiles/test_server.dir/server/test_trace_assembler.cpp.o"
  "CMakeFiles/test_server.dir/server/test_trace_assembler.cpp.o.d"
  "test_server"
  "test_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
