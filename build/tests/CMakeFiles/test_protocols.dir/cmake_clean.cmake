file(REMOVE_RECURSE
  "CMakeFiles/test_protocols.dir/protocols/test_binary_protocols.cpp.o"
  "CMakeFiles/test_protocols.dir/protocols/test_binary_protocols.cpp.o.d"
  "CMakeFiles/test_protocols.dir/protocols/test_fuzz.cpp.o"
  "CMakeFiles/test_protocols.dir/protocols/test_fuzz.cpp.o.d"
  "CMakeFiles/test_protocols.dir/protocols/test_http.cpp.o"
  "CMakeFiles/test_protocols.dir/protocols/test_http.cpp.o.d"
  "CMakeFiles/test_protocols.dir/protocols/test_inference.cpp.o"
  "CMakeFiles/test_protocols.dir/protocols/test_inference.cpp.o.d"
  "CMakeFiles/test_protocols.dir/protocols/test_text_protocols.cpp.o"
  "CMakeFiles/test_protocols.dir/protocols/test_text_protocols.cpp.o.d"
  "test_protocols"
  "test_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
