# Empty compiler generated dependencies file for df_core.
# This may be replaced when dependencies are built.
