# Empty dependencies file for df_core.
# This may be replaced when dependencies are built.
