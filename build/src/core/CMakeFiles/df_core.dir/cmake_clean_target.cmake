file(REMOVE_RECURSE
  "libdf_core.a"
)
