file(REMOVE_RECURSE
  "CMakeFiles/df_core.dir/deployment.cpp.o"
  "CMakeFiles/df_core.dir/deployment.cpp.o.d"
  "libdf_core.a"
  "libdf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
