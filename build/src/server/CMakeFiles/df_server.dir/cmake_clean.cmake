file(REMOVE_RECURSE
  "CMakeFiles/df_server.dir/canonical.cpp.o"
  "CMakeFiles/df_server.dir/canonical.cpp.o.d"
  "CMakeFiles/df_server.dir/server.cpp.o"
  "CMakeFiles/df_server.dir/server.cpp.o.d"
  "CMakeFiles/df_server.dir/span_store.cpp.o"
  "CMakeFiles/df_server.dir/span_store.cpp.o.d"
  "CMakeFiles/df_server.dir/tag_encoding.cpp.o"
  "CMakeFiles/df_server.dir/tag_encoding.cpp.o.d"
  "CMakeFiles/df_server.dir/trace_analysis.cpp.o"
  "CMakeFiles/df_server.dir/trace_analysis.cpp.o.d"
  "CMakeFiles/df_server.dir/trace_assembler.cpp.o"
  "CMakeFiles/df_server.dir/trace_assembler.cpp.o.d"
  "libdf_server.a"
  "libdf_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
