file(REMOVE_RECURSE
  "libdf_server.a"
)
