
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/canonical.cpp" "src/server/CMakeFiles/df_server.dir/canonical.cpp.o" "gcc" "src/server/CMakeFiles/df_server.dir/canonical.cpp.o.d"
  "/root/repo/src/server/server.cpp" "src/server/CMakeFiles/df_server.dir/server.cpp.o" "gcc" "src/server/CMakeFiles/df_server.dir/server.cpp.o.d"
  "/root/repo/src/server/span_store.cpp" "src/server/CMakeFiles/df_server.dir/span_store.cpp.o" "gcc" "src/server/CMakeFiles/df_server.dir/span_store.cpp.o.d"
  "/root/repo/src/server/tag_encoding.cpp" "src/server/CMakeFiles/df_server.dir/tag_encoding.cpp.o" "gcc" "src/server/CMakeFiles/df_server.dir/tag_encoding.cpp.o.d"
  "/root/repo/src/server/trace_analysis.cpp" "src/server/CMakeFiles/df_server.dir/trace_analysis.cpp.o" "gcc" "src/server/CMakeFiles/df_server.dir/trace_analysis.cpp.o.d"
  "/root/repo/src/server/trace_assembler.cpp" "src/server/CMakeFiles/df_server.dir/trace_assembler.cpp.o" "gcc" "src/server/CMakeFiles/df_server.dir/trace_assembler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/df_common.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/df_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/df_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/df_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/ebpf/CMakeFiles/df_ebpf.dir/DependInfo.cmake"
  "/root/repo/build/src/kernelsim/CMakeFiles/df_kernelsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
