# Empty compiler generated dependencies file for df_server.
# This may be replaced when dependencies are built.
