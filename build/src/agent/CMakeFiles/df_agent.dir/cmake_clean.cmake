file(REMOVE_RECURSE
  "CMakeFiles/df_agent.dir/agent.cpp.o"
  "CMakeFiles/df_agent.dir/agent.cpp.o.d"
  "CMakeFiles/df_agent.dir/collector.cpp.o"
  "CMakeFiles/df_agent.dir/collector.cpp.o.d"
  "CMakeFiles/df_agent.dir/flow_inference.cpp.o"
  "CMakeFiles/df_agent.dir/flow_inference.cpp.o.d"
  "CMakeFiles/df_agent.dir/session_aggregator.cpp.o"
  "CMakeFiles/df_agent.dir/session_aggregator.cpp.o.d"
  "CMakeFiles/df_agent.dir/span_builder.cpp.o"
  "CMakeFiles/df_agent.dir/span_builder.cpp.o.d"
  "CMakeFiles/df_agent.dir/systrace.cpp.o"
  "CMakeFiles/df_agent.dir/systrace.cpp.o.d"
  "libdf_agent.a"
  "libdf_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
