
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agent/agent.cpp" "src/agent/CMakeFiles/df_agent.dir/agent.cpp.o" "gcc" "src/agent/CMakeFiles/df_agent.dir/agent.cpp.o.d"
  "/root/repo/src/agent/collector.cpp" "src/agent/CMakeFiles/df_agent.dir/collector.cpp.o" "gcc" "src/agent/CMakeFiles/df_agent.dir/collector.cpp.o.d"
  "/root/repo/src/agent/flow_inference.cpp" "src/agent/CMakeFiles/df_agent.dir/flow_inference.cpp.o" "gcc" "src/agent/CMakeFiles/df_agent.dir/flow_inference.cpp.o.d"
  "/root/repo/src/agent/session_aggregator.cpp" "src/agent/CMakeFiles/df_agent.dir/session_aggregator.cpp.o" "gcc" "src/agent/CMakeFiles/df_agent.dir/session_aggregator.cpp.o.d"
  "/root/repo/src/agent/span_builder.cpp" "src/agent/CMakeFiles/df_agent.dir/span_builder.cpp.o" "gcc" "src/agent/CMakeFiles/df_agent.dir/span_builder.cpp.o.d"
  "/root/repo/src/agent/systrace.cpp" "src/agent/CMakeFiles/df_agent.dir/systrace.cpp.o" "gcc" "src/agent/CMakeFiles/df_agent.dir/systrace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/df_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kernelsim/CMakeFiles/df_kernelsim.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/df_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/ebpf/CMakeFiles/df_ebpf.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/df_protocols.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
