# Empty compiler generated dependencies file for df_agent.
# This may be replaced when dependencies are built.
