file(REMOVE_RECURSE
  "libdf_agent.a"
)
