file(REMOVE_RECURSE
  "CMakeFiles/df_kernelsim.dir/hook.cpp.o"
  "CMakeFiles/df_kernelsim.dir/hook.cpp.o.d"
  "CMakeFiles/df_kernelsim.dir/kernel.cpp.o"
  "CMakeFiles/df_kernelsim.dir/kernel.cpp.o.d"
  "CMakeFiles/df_kernelsim.dir/task.cpp.o"
  "CMakeFiles/df_kernelsim.dir/task.cpp.o.d"
  "libdf_kernelsim.a"
  "libdf_kernelsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_kernelsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
