
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernelsim/hook.cpp" "src/kernelsim/CMakeFiles/df_kernelsim.dir/hook.cpp.o" "gcc" "src/kernelsim/CMakeFiles/df_kernelsim.dir/hook.cpp.o.d"
  "/root/repo/src/kernelsim/kernel.cpp" "src/kernelsim/CMakeFiles/df_kernelsim.dir/kernel.cpp.o" "gcc" "src/kernelsim/CMakeFiles/df_kernelsim.dir/kernel.cpp.o.d"
  "/root/repo/src/kernelsim/task.cpp" "src/kernelsim/CMakeFiles/df_kernelsim.dir/task.cpp.o" "gcc" "src/kernelsim/CMakeFiles/df_kernelsim.dir/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/df_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
