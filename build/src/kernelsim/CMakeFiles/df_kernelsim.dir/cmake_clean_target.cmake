file(REMOVE_RECURSE
  "libdf_kernelsim.a"
)
