# Empty compiler generated dependencies file for df_kernelsim.
# This may be replaced when dependencies are built.
