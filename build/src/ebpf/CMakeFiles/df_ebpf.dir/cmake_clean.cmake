file(REMOVE_RECURSE
  "CMakeFiles/df_ebpf.dir/loader.cpp.o"
  "CMakeFiles/df_ebpf.dir/loader.cpp.o.d"
  "CMakeFiles/df_ebpf.dir/verifier.cpp.o"
  "CMakeFiles/df_ebpf.dir/verifier.cpp.o.d"
  "libdf_ebpf.a"
  "libdf_ebpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_ebpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
