file(REMOVE_RECURSE
  "libdf_ebpf.a"
)
