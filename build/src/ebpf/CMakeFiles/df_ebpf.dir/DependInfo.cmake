
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ebpf/loader.cpp" "src/ebpf/CMakeFiles/df_ebpf.dir/loader.cpp.o" "gcc" "src/ebpf/CMakeFiles/df_ebpf.dir/loader.cpp.o.d"
  "/root/repo/src/ebpf/verifier.cpp" "src/ebpf/CMakeFiles/df_ebpf.dir/verifier.cpp.o" "gcc" "src/ebpf/CMakeFiles/df_ebpf.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/df_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kernelsim/CMakeFiles/df_kernelsim.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/df_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
