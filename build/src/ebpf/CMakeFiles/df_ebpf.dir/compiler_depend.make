# Empty compiler generated dependencies file for df_ebpf.
# This may be replaced when dependencies are built.
