# Empty compiler generated dependencies file for df_otelsim.
# This may be replaced when dependencies are built.
