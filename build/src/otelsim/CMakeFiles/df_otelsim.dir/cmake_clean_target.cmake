file(REMOVE_RECURSE
  "libdf_otelsim.a"
)
