file(REMOVE_RECURSE
  "CMakeFiles/df_otelsim.dir/tracer.cpp.o"
  "CMakeFiles/df_otelsim.dir/tracer.cpp.o.d"
  "libdf_otelsim.a"
  "libdf_otelsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_otelsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
