file(REMOVE_RECURSE
  "CMakeFiles/df_common.dir/five_tuple.cpp.o"
  "CMakeFiles/df_common.dir/five_tuple.cpp.o.d"
  "CMakeFiles/df_common.dir/histogram.cpp.o"
  "CMakeFiles/df_common.dir/histogram.cpp.o.d"
  "CMakeFiles/df_common.dir/logging.cpp.o"
  "CMakeFiles/df_common.dir/logging.cpp.o.d"
  "CMakeFiles/df_common.dir/thread_pool.cpp.o"
  "CMakeFiles/df_common.dir/thread_pool.cpp.o.d"
  "libdf_common.a"
  "libdf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
