# Empty compiler generated dependencies file for df_protocols.
# This may be replaced when dependencies are built.
