
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/amqp.cpp" "src/protocols/CMakeFiles/df_protocols.dir/amqp.cpp.o" "gcc" "src/protocols/CMakeFiles/df_protocols.dir/amqp.cpp.o.d"
  "/root/repo/src/protocols/dns.cpp" "src/protocols/CMakeFiles/df_protocols.dir/dns.cpp.o" "gcc" "src/protocols/CMakeFiles/df_protocols.dir/dns.cpp.o.d"
  "/root/repo/src/protocols/dubbo.cpp" "src/protocols/CMakeFiles/df_protocols.dir/dubbo.cpp.o" "gcc" "src/protocols/CMakeFiles/df_protocols.dir/dubbo.cpp.o.d"
  "/root/repo/src/protocols/http1.cpp" "src/protocols/CMakeFiles/df_protocols.dir/http1.cpp.o" "gcc" "src/protocols/CMakeFiles/df_protocols.dir/http1.cpp.o.d"
  "/root/repo/src/protocols/http2.cpp" "src/protocols/CMakeFiles/df_protocols.dir/http2.cpp.o" "gcc" "src/protocols/CMakeFiles/df_protocols.dir/http2.cpp.o.d"
  "/root/repo/src/protocols/kafka.cpp" "src/protocols/CMakeFiles/df_protocols.dir/kafka.cpp.o" "gcc" "src/protocols/CMakeFiles/df_protocols.dir/kafka.cpp.o.d"
  "/root/repo/src/protocols/mqtt.cpp" "src/protocols/CMakeFiles/df_protocols.dir/mqtt.cpp.o" "gcc" "src/protocols/CMakeFiles/df_protocols.dir/mqtt.cpp.o.d"
  "/root/repo/src/protocols/mysql.cpp" "src/protocols/CMakeFiles/df_protocols.dir/mysql.cpp.o" "gcc" "src/protocols/CMakeFiles/df_protocols.dir/mysql.cpp.o.d"
  "/root/repo/src/protocols/redis.cpp" "src/protocols/CMakeFiles/df_protocols.dir/redis.cpp.o" "gcc" "src/protocols/CMakeFiles/df_protocols.dir/redis.cpp.o.d"
  "/root/repo/src/protocols/registry.cpp" "src/protocols/CMakeFiles/df_protocols.dir/registry.cpp.o" "gcc" "src/protocols/CMakeFiles/df_protocols.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/df_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
