file(REMOVE_RECURSE
  "CMakeFiles/df_protocols.dir/amqp.cpp.o"
  "CMakeFiles/df_protocols.dir/amqp.cpp.o.d"
  "CMakeFiles/df_protocols.dir/dns.cpp.o"
  "CMakeFiles/df_protocols.dir/dns.cpp.o.d"
  "CMakeFiles/df_protocols.dir/dubbo.cpp.o"
  "CMakeFiles/df_protocols.dir/dubbo.cpp.o.d"
  "CMakeFiles/df_protocols.dir/http1.cpp.o"
  "CMakeFiles/df_protocols.dir/http1.cpp.o.d"
  "CMakeFiles/df_protocols.dir/http2.cpp.o"
  "CMakeFiles/df_protocols.dir/http2.cpp.o.d"
  "CMakeFiles/df_protocols.dir/kafka.cpp.o"
  "CMakeFiles/df_protocols.dir/kafka.cpp.o.d"
  "CMakeFiles/df_protocols.dir/mqtt.cpp.o"
  "CMakeFiles/df_protocols.dir/mqtt.cpp.o.d"
  "CMakeFiles/df_protocols.dir/mysql.cpp.o"
  "CMakeFiles/df_protocols.dir/mysql.cpp.o.d"
  "CMakeFiles/df_protocols.dir/redis.cpp.o"
  "CMakeFiles/df_protocols.dir/redis.cpp.o.d"
  "CMakeFiles/df_protocols.dir/registry.cpp.o"
  "CMakeFiles/df_protocols.dir/registry.cpp.o.d"
  "libdf_protocols.a"
  "libdf_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
