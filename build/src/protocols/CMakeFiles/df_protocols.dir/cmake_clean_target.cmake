file(REMOVE_RECURSE
  "libdf_protocols.a"
)
