# Empty compiler generated dependencies file for df_workloads.
# This may be replaced when dependencies are built.
