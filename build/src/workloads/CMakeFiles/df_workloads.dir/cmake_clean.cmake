file(REMOVE_RECURSE
  "CMakeFiles/df_workloads.dir/app.cpp.o"
  "CMakeFiles/df_workloads.dir/app.cpp.o.d"
  "CMakeFiles/df_workloads.dir/microservice.cpp.o"
  "CMakeFiles/df_workloads.dir/microservice.cpp.o.d"
  "CMakeFiles/df_workloads.dir/payloads.cpp.o"
  "CMakeFiles/df_workloads.dir/payloads.cpp.o.d"
  "CMakeFiles/df_workloads.dir/topologies.cpp.o"
  "CMakeFiles/df_workloads.dir/topologies.cpp.o.d"
  "libdf_workloads.a"
  "libdf_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
