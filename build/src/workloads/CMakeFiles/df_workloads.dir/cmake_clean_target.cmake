file(REMOVE_RECURSE
  "libdf_workloads.a"
)
