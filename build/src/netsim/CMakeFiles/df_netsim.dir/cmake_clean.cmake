file(REMOVE_RECURSE
  "CMakeFiles/df_netsim.dir/cluster.cpp.o"
  "CMakeFiles/df_netsim.dir/cluster.cpp.o.d"
  "CMakeFiles/df_netsim.dir/fabric.cpp.o"
  "CMakeFiles/df_netsim.dir/fabric.cpp.o.d"
  "CMakeFiles/df_netsim.dir/resource.cpp.o"
  "CMakeFiles/df_netsim.dir/resource.cpp.o.d"
  "libdf_netsim.a"
  "libdf_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
