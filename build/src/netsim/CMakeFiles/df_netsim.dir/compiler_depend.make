# Empty compiler generated dependencies file for df_netsim.
# This may be replaced when dependencies are built.
