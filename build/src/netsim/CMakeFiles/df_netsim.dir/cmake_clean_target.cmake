file(REMOVE_RECURSE
  "libdf_netsim.a"
)
