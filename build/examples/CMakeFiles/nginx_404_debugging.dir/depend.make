# Empty dependencies file for nginx_404_debugging.
# This may be replaced when dependencies are built.
