file(REMOVE_RECURSE
  "CMakeFiles/nginx_404_debugging.dir/nginx_404_debugging.cpp.o"
  "CMakeFiles/nginx_404_debugging.dir/nginx_404_debugging.cpp.o.d"
  "nginx_404_debugging"
  "nginx_404_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nginx_404_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
