# Empty dependencies file for mq_correlation.
# This may be replaced when dependencies are built.
