file(REMOVE_RECURSE
  "CMakeFiles/mq_correlation.dir/mq_correlation.cpp.o"
  "CMakeFiles/mq_correlation.dir/mq_correlation.cpp.o.d"
  "mq_correlation"
  "mq_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mq_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
