# Empty compiler generated dependencies file for datacenter_path.
# This may be replaced when dependencies are built.
