file(REMOVE_RECURSE
  "CMakeFiles/datacenter_path.dir/datacenter_path.cpp.o"
  "CMakeFiles/datacenter_path.dir/datacenter_path.cpp.o.d"
  "datacenter_path"
  "datacenter_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
