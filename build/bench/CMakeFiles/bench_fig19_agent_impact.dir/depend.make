# Empty dependencies file for bench_fig19_agent_impact.
# This may be replaced when dependencies are built.
