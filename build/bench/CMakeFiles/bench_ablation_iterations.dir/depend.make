# Empty dependencies file for bench_ablation_iterations.
# This may be replaced when dependencies are built.
