file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_iterations.dir/bench_ablation_iterations.cpp.o"
  "CMakeFiles/bench_ablation_iterations.dir/bench_ablation_iterations.cpp.o.d"
  "bench_ablation_iterations"
  "bench_ablation_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
