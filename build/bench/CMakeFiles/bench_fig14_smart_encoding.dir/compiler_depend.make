# Empty compiler generated dependencies file for bench_fig14_smart_encoding.
# This may be replaced when dependencies are built.
