# Empty dependencies file for bench_fig03_sdk_loc.
# This may be replaced when dependencies are built.
