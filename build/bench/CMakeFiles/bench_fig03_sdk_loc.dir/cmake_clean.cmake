file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_sdk_loc.dir/bench_fig03_sdk_loc.cpp.o"
  "CMakeFiles/bench_fig03_sdk_loc.dir/bench_fig03_sdk_loc.cpp.o.d"
  "bench_fig03_sdk_loc"
  "bench_fig03_sdk_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_sdk_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
