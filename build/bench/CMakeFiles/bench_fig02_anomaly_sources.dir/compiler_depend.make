# Empty compiler generated dependencies file for bench_fig02_anomaly_sources.
# This may be replaced when dependencies are built.
