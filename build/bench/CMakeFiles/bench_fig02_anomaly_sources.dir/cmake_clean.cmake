file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_anomaly_sources.dir/bench_fig02_anomaly_sources.cpp.o"
  "CMakeFiles/bench_fig02_anomaly_sources.dir/bench_fig02_anomaly_sources.cpp.o.d"
  "bench_fig02_anomaly_sources"
  "bench_fig02_anomaly_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_anomaly_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
