# Empty compiler generated dependencies file for bench_fig13_instrumentation.
# This may be replaced when dependencies are built.
