file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_instrumentation.dir/bench_fig13_instrumentation.cpp.o"
  "CMakeFiles/bench_fig13_instrumentation.dir/bench_fig13_instrumentation.cpp.o.d"
  "bench_fig13_instrumentation"
  "bench_fig13_instrumentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_instrumentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
