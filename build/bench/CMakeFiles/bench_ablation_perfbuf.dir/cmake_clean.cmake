file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_perfbuf.dir/bench_ablation_perfbuf.cpp.o"
  "CMakeFiles/bench_ablation_perfbuf.dir/bench_ablation_perfbuf.cpp.o.d"
  "bench_ablation_perfbuf"
  "bench_ablation_perfbuf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_perfbuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
