# Empty dependencies file for bench_ablation_perfbuf.
# This may be replaced when dependencies are built.
