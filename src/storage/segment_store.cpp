#include "storage/segment_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <mutex>

namespace deepflow::storage {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kSegmentPrefix = "seg-";
constexpr std::string_view kSegmentSuffix = ".seg";

/// Parse "seg-%08u.seg" -> sequence number.
std::optional<u64> parse_segment_name(std::string_view name) {
  if (!name.starts_with(kSegmentPrefix) || !name.ends_with(kSegmentSuffix)) {
    return std::nullopt;
  }
  const std::string_view digits = name.substr(
      kSegmentPrefix.size(),
      name.size() - kSegmentPrefix.size() - kSegmentSuffix.size());
  if (digits.empty()) return std::nullopt;
  u64 seq = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<u64>(c - '0');
  }
  return seq;
}

/// Write all bytes + fsync. Returns false on any syscall failure.
bool write_file_sync(const std::string& path, std::string_view bytes) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t wrote = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (wrote <= 0) {
      ::close(fd);
      return false;
    }
    done += static_cast<size_t>(wrote);
  }
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  return synced;
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

SegmentStore::SegmentStore(StorageConfig config) : config_(std::move(config)) {
  if (!config_.dir.empty()) {
    std::error_code ec;
    fs::create_directories(config_.dir, ec);
  }
}

void SegmentStore::recover() {
  std::unique_lock lock(mu_);
  std::error_code ec;
  std::vector<std::pair<u64, std::string>> found;  // (seq, path)
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    const auto seq = parse_segment_name(name);
    if (!seq) continue;
    found.emplace_back(*seq, entry.path().string());
    next_seq_ = std::max(next_seq_, *seq + 1);
  }
  // Deterministic recovery order (directory iteration order is not).
  std::sort(found.begin(), found.end());

  for (auto& [seq, path] : found) {
    auto serving = std::make_unique<Serving>();
    serving->path = path;
    SegmentOpenStatus status = SegmentOpenStatus::kTorn;
    if (serving->file.open(path)) {
      status = Segment::open(serving->file.view(), &serving->segment);
    }
    switch (status) {
      case SegmentOpenStatus::kOk:
        recovered_segments_.fetch_add(1, std::memory_order_relaxed);
        recovered_spans_.fetch_add(serving->segment->span_count(),
                                   std::memory_order_relaxed);
        disk_bytes_.fetch_add(serving->file.size(), std::memory_order_relaxed);
        serving_.push_back(std::move(serving));
        break;
      case SegmentOpenStatus::kTorn: {
        // Truncated mid-flush: the batch was never acknowledged durable, so
        // dropping it is bounded loss of the unflushed window, not data
        // loss. Renamed (not deleted) for post-mortems.
        torn_segments_.fetch_add(1, std::memory_order_relaxed);
        std::error_code rename_ec;
        fs::rename(path, path + ".torn", rename_ec);
        break;
      }
      case SegmentOpenStatus::kCorrupt: {
        quarantined_segments_.fetch_add(1, std::memory_order_relaxed);
        std::error_code rename_ec;
        fs::rename(path, path + ".quarantined", rename_ec);
        break;
      }
    }
  }
}

std::string SegmentStore::next_segment_path() {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%08llu.seg",
                static_cast<unsigned long long>(next_seq_++));
  return (fs::path(config_.dir) / name).string();
}

std::string SegmentStore::write_image(std::string image) {
  // Injected media rot: flip bits in the image about to hit "stable"
  // storage. The write itself still succeeds — the corruption surfaces at
  // the next open, exactly like real bit rot.
  if (config_.fault != nullptr &&
      config_.fault->enabled(FaultSite::kSegmentWrite)) {
    const MediaFault fault =
        config_.fault->media_fault(FaultSite::kSegmentWrite, image.size());
    if (fault.corrupt) {
      image[static_cast<size_t>(fault.offset)] =
          static_cast<char>(static_cast<u8>(image[fault.offset]) ^
                            fault.xor_mask);
    }
  }
  const std::string path = next_segment_path();
  const std::string tmp = path + ".tmp";
  if (!write_file_sync(tmp, image)) {
    ::unlink(tmp.c_str());
    return {};
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return {};
  }
  fsync_dir(config_.dir);
  disk_bytes_.fetch_add(image.size(), std::memory_order_relaxed);
  segments_written_.fetch_add(1, std::memory_order_relaxed);
  return path;
}

bool SegmentStore::append(const std::vector<SegmentRowInput>& rows,
                          u8 encoder_kind, TagColumnMode mode,
                          bool hot_backed) {
  std::string image = encode_segment(rows, encoder_kind, mode);
  const u64 image_bytes = image.size();

  std::unique_lock lock(mu_);
  const std::string path = write_image(std::move(image));
  if (path.empty()) return false;

  if (hot_backed) {
    // RAM still serves these spans; remember the file for compaction only.
    hot_files_.push_back(HotFile{path, static_cast<u32>(rows.size()),
                                 image_bytes, encoder_kind, mode});
    flush_batches_.fetch_add(1, std::memory_order_relaxed);
    flushed_spans_.fetch_add(rows.size(), std::memory_order_relaxed);
    return true;
  }
  // Serving append (compaction rewrite of warm data): open it back up so
  // queries can use it. The file was just validated by construction, so a
  // failure here means injected/real media rot — quarantine immediately.
  auto serving = std::make_unique<Serving>();
  serving->path = path;
  SegmentOpenStatus status = SegmentOpenStatus::kTorn;
  if (serving->file.open(path)) {
    status = Segment::open(serving->file.view(), &serving->segment);
  }
  if (status != SegmentOpenStatus::kOk) {
    quarantined_segments_.fetch_add(1, std::memory_order_relaxed);
    disk_bytes_.fetch_sub(image_bytes, std::memory_order_relaxed);
    std::error_code rename_ec;
    fs::rename(path, path + ".quarantined", rename_ec);
    return false;
  }
  serving_.push_back(std::move(serving));
  return true;
}

void SegmentStore::compact() {
  std::unique_lock lock(mu_);

  // ---- Hot-backed class: merge small RAM-backed files. ----
  // Group by (encoder kind, tag mode); classes never mix because the tag
  // column of a merged segment must decode uniformly.
  for (u8 kind = 0; kind < 4; ++kind) {
    for (const TagColumnMode mode :
         {TagColumnMode::kEncoderBlob, TagColumnMode::kSegmentDict}) {
      std::vector<size_t> small;
      for (size_t i = 0; i < hot_files_.size(); ++i) {
        const HotFile& f = hot_files_[i];
        if (f.encoder_kind == kind && f.mode == mode &&
            f.span_count < config_.compact_span_threshold) {
          small.push_back(i);
        }
      }
      if (small.size() < config_.compact_min_segments) continue;

      // Decode every input (opening the files now — the only time a
      // hot-backed file is read). A file that fails validation is
      // quarantined and not merged; its spans are still in RAM.
      std::vector<std::vector<SegmentRow>> decoded;
      std::vector<size_t> mergeable;    // decoded fine, inputs to the merge
      std::vector<size_t> quarantined;  // renamed away, drop from the list
      for (const size_t i : small) {
        MappedFile file;
        std::unique_ptr<Segment> segment;
        SegmentOpenStatus status = SegmentOpenStatus::kTorn;
        if (file.open(hot_files_[i].path)) {
          status = Segment::open(file.view(), &segment);
        }
        std::optional<std::vector<SegmentRow>> rows;
        if (status == SegmentOpenStatus::kOk) rows = segment->all_rows();
        if (!rows) {
          quarantined_segments_.fetch_add(1, std::memory_order_relaxed);
          if (status == SegmentOpenStatus::kOk) {
            decode_failures_.fetch_add(1, std::memory_order_relaxed);
          }
          std::error_code ec;
          fs::rename(hot_files_[i].path, hot_files_[i].path + ".quarantined",
                     ec);
          disk_bytes_.fetch_sub(hot_files_[i].file_bytes,
                                std::memory_order_relaxed);
          quarantined.push_back(i);
          continue;
        }
        decoded.push_back(std::move(*rows));
        mergeable.push_back(i);
      }
      std::vector<size_t> consumed = quarantined;
      if (decoded.size() >= 2) {
        std::vector<SegmentRowInput> inputs;
        for (const auto& rows : decoded) {
          for (const SegmentRow& row : rows) {
            inputs.push_back(SegmentRowInput{
                &row.span, row.tag_blob, row.has_tags ? &row.tags : nullptr,
                row.pseudo_key});
          }
        }
        const std::string path =
            write_image(encode_segment(inputs, kind, mode));
        if (!path.empty()) {
          const u64 merged_bytes = static_cast<u64>(fs::file_size(path));
          hot_files_.push_back(HotFile{path, static_cast<u32>(inputs.size()),
                                       merged_bytes, kind, mode});
          compactions_.fetch_add(1, std::memory_order_relaxed);
          compacted_segments_.fetch_add(decoded.size(),
                                        std::memory_order_relaxed);
          for (const size_t i : mergeable) {
            std::error_code ec;
            if (fs::remove(hot_files_[i].path, ec)) {
              disk_bytes_.fetch_sub(hot_files_[i].file_bytes,
                                    std::memory_order_relaxed);
            }
            consumed.push_back(i);
          }
        }
      }
      // Drop consumed entries from the hot list (descending index order so
      // earlier erases do not shift later indexes).
      std::sort(consumed.rbegin(), consumed.rend());
      for (const size_t i : consumed) {
        hot_files_.erase(hot_files_.begin() + static_cast<long>(i));
      }
    }
  }

  // ---- Serving class: merge small warm segments. ----
  for (u8 kind = 0; kind < 4; ++kind) {
    for (const TagColumnMode mode :
         {TagColumnMode::kEncoderBlob, TagColumnMode::kSegmentDict}) {
      std::vector<size_t> small;
      for (size_t i = 0; i < serving_.size(); ++i) {
        const Serving& s = *serving_[i];
        if (usable(s) && s.segment->encoder_kind() == kind &&
            s.segment->tag_mode() == mode &&
            s.segment->span_count() < config_.compact_span_threshold) {
          small.push_back(i);
        }
      }
      if (small.size() < config_.compact_min_segments) continue;

      std::vector<std::vector<SegmentRow>> decoded;
      std::vector<size_t> merged_idx;
      for (const size_t i : small) {
        auto rows = serving_[i]->segment->all_rows();
        if (!rows) {
          decode_failures_.fetch_add(1, std::memory_order_relaxed);
          mark_poisoned(*serving_[i]);
          continue;
        }
        decoded.push_back(std::move(*rows));
        merged_idx.push_back(i);
      }
      if (decoded.size() < 2) continue;
      std::vector<SegmentRowInput> inputs;
      for (const auto& rows : decoded) {
        for (const SegmentRow& row : rows) {
          inputs.push_back(SegmentRowInput{
              &row.span, row.tag_blob, row.has_tags ? &row.tags : nullptr,
              row.pseudo_key});
        }
      }
      const std::string path = write_image(encode_segment(inputs, kind, mode));
      if (path.empty()) continue;
      auto merged = std::make_unique<Serving>();
      merged->path = path;
      SegmentOpenStatus status = SegmentOpenStatus::kTorn;
      if (merged->file.open(path)) {
        status = Segment::open(merged->file.view(), &merged->segment);
      }
      if (status != SegmentOpenStatus::kOk) {
        // Media rot hit the rewrite: quarantine it and keep the originals.
        quarantined_segments_.fetch_add(1, std::memory_order_relaxed);
        disk_bytes_.fetch_sub(fs::file_size(path), std::memory_order_relaxed);
        std::error_code ec;
        fs::rename(path, path + ".quarantined", ec);
        continue;
      }
      compactions_.fetch_add(1, std::memory_order_relaxed);
      compacted_segments_.fetch_add(merged_idx.size(),
                                    std::memory_order_relaxed);
      std::sort(merged_idx.rbegin(), merged_idx.rend());
      for (const size_t i : merged_idx) {
        std::error_code ec;
        const u64 bytes = serving_[i]->file.size();
        if (fs::remove(serving_[i]->path, ec)) {
          disk_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
        }
        serving_.erase(serving_.begin() + static_cast<long>(i));
      }
      serving_.push_back(std::move(merged));
    }
  }
}

void SegmentStore::mark_poisoned(const Serving& s) const {
  s.poisoned.store(true, std::memory_order_relaxed);
}

std::vector<SegmentRow> SegmentStore::find(SegmentKeyKind kind, u64 value,
                                           std::string_view text) const {
  warm_searches_.fetch_add(1, std::memory_order_relaxed);
  // For the string kinds, `value` is fnv1a(text) — the same hash the
  // encoder fed the Bloom filter.
  const u64 hash = segment_key_hash(kind, value);
  std::vector<SegmentRow> out;
  std::shared_lock lock(mu_);
  for (const auto& serving : serving_) {
    if (!usable(*serving)) continue;
    const Segment& segment = *serving->segment;
    if (!segment.may_contain(hash)) {
      if (segment.span_count() > 0) {
        bloom_segment_skips_.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    const std::vector<u32> indexes = segment.find_rows(kind, value, text);
    if (indexes.empty()) continue;
    auto rows = segment.rows(indexes);
    if (!rows) {
      decode_failures_.fetch_add(1, std::memory_order_relaxed);
      mark_poisoned(*serving);
      continue;
    }
    warm_rows_loaded_.fetch_add(rows->size(), std::memory_order_relaxed);
    for (auto& row : *rows) out.push_back(std::move(row));
  }
  return out;
}

std::optional<SegmentRow> SegmentStore::load_row(u64 span_id) const {
  std::shared_lock lock(mu_);
  for (const auto& serving : serving_) {
    if (!usable(*serving)) continue;
    const Segment& segment = *serving->segment;
    const std::vector<u64>& ids = segment.ids();
    const auto it = std::lower_bound(ids.begin(), ids.end(), span_id);
    if (it == ids.end() || *it != span_id) continue;
    auto rows =
        segment.rows({static_cast<u32>(std::distance(ids.begin(), it))});
    if (!rows || rows->empty()) {
      decode_failures_.fetch_add(1, std::memory_order_relaxed);
      mark_poisoned(*serving);
      continue;
    }
    warm_rows_loaded_.fetch_add(1, std::memory_order_relaxed);
    return std::move(rows->front());
  }
  return std::nullopt;
}

std::vector<std::optional<SegmentRow>> SegmentStore::load_rows(
    const std::vector<u64>& span_ids) const {
  std::vector<std::optional<SegmentRow>> out(span_ids.size());
  std::shared_lock lock(mu_);
  std::vector<std::pair<u32, u32>> hits;  // (segment row index, out position)
  for (const auto& serving : serving_) {
    if (!usable(*serving)) continue;
    const Segment& segment = *serving->segment;
    const std::vector<u64>& ids = segment.ids();
    if (ids.empty()) continue;
    hits.clear();
    for (size_t p = 0; p < span_ids.size(); ++p) {
      if (out[p].has_value()) continue;
      if (span_ids[p] < ids.front() || span_ids[p] > ids.back()) continue;
      const auto it = std::lower_bound(ids.begin(), ids.end(), span_ids[p]);
      if (it == ids.end() || *it != span_ids[p]) continue;
      hits.emplace_back(static_cast<u32>(std::distance(ids.begin(), it)),
                        static_cast<u32>(p));
    }
    if (hits.empty()) continue;
    std::sort(hits.begin(), hits.end());  // rows() wants ascending indexes
    std::vector<u32> indexes;
    indexes.reserve(hits.size());
    for (const auto& [idx, pos] : hits) indexes.push_back(idx);
    auto rows = segment.rows(indexes);
    if (!rows || rows->size() != hits.size()) {
      decode_failures_.fetch_add(1, std::memory_order_relaxed);
      mark_poisoned(*serving);
      continue;
    }
    warm_rows_loaded_.fetch_add(rows->size(), std::memory_order_relaxed);
    for (size_t k = 0; k < hits.size(); ++k) {
      out[hits[k].second] = std::move((*rows)[k]);
    }
  }
  return out;
}

std::vector<SegmentRow> SegmentStore::serving_rows() const {
  std::vector<SegmentRow> out;
  std::shared_lock lock(mu_);
  for (const auto& serving : serving_) {
    if (!usable(*serving)) continue;
    auto rows = serving->segment->all_rows();
    if (!rows) {
      decode_failures_.fetch_add(1, std::memory_order_relaxed);
      mark_poisoned(*serving);
      continue;
    }
    warm_rows_loaded_.fetch_add(rows->size(), std::memory_order_relaxed);
    for (auto& row : *rows) out.push_back(std::move(row));
  }
  return out;
}

std::vector<std::pair<TimestampNs, u64>> SegmentStore::time_entries() const {
  std::vector<std::pair<TimestampNs, u64>> out;
  std::shared_lock lock(mu_);
  for (const auto& serving : serving_) {
    if (!usable(*serving)) continue;
    const Segment& segment = *serving->segment;
    for (u32 i = 0; i < segment.span_count(); ++i) {
      out.emplace_back(segment.start_ts()[i], segment.ids()[i]);
    }
  }
  return out;
}

std::vector<u64> SegmentStore::serving_ids() const {
  std::vector<u64> out;
  std::shared_lock lock(mu_);
  for (const auto& serving : serving_) {
    if (!usable(*serving)) continue;
    const std::vector<u64>& ids = serving->segment->ids();
    out.insert(out.end(), ids.begin(), ids.end());
  }
  return out;
}

bool SegmentStore::contains(u64 span_id) const {
  std::shared_lock lock(mu_);
  for (const auto& serving : serving_) {
    if (!usable(*serving)) continue;
    const std::vector<u64>& ids = serving->segment->ids();
    if (std::binary_search(ids.begin(), ids.end(), span_id)) return true;
  }
  return false;
}

size_t SegmentStore::serving_span_count() const {
  size_t n = 0;
  std::shared_lock lock(mu_);
  for (const auto& serving : serving_) {
    if (usable(*serving)) n += serving->segment->span_count();
  }
  return n;
}

size_t SegmentStore::segment_count() const {
  std::shared_lock lock(mu_);
  return serving_.size() + hot_files_.size();
}

StorageTelemetry SegmentStore::telemetry() const {
  StorageTelemetry t;
  t.segments_written = segments_written_.load(std::memory_order_relaxed);
  t.flushed_spans = flushed_spans_.load(std::memory_order_relaxed);
  t.flush_batches = flush_batches_.load(std::memory_order_relaxed);
  t.recovered_segments = recovered_segments_.load(std::memory_order_relaxed);
  t.recovered_spans = recovered_spans_.load(std::memory_order_relaxed);
  t.torn_segments = torn_segments_.load(std::memory_order_relaxed);
  t.quarantined_segments =
      quarantined_segments_.load(std::memory_order_relaxed);
  t.decode_failures = decode_failures_.load(std::memory_order_relaxed);
  t.compactions = compactions_.load(std::memory_order_relaxed);
  t.compacted_segments = compacted_segments_.load(std::memory_order_relaxed);
  t.warm_searches = warm_searches_.load(std::memory_order_relaxed);
  t.bloom_segment_skips = bloom_segment_skips_.load(std::memory_order_relaxed);
  t.warm_rows_loaded = warm_rows_loaded_.load(std::memory_order_relaxed);
  t.disk_bytes = disk_bytes_.load(std::memory_order_relaxed);
  return t;
}

}  // namespace deepflow::storage
