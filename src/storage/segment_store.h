// The on-disk tier: a directory of columnar segment files plus the machinery
// that writes, recovers, queries and compacts them.
//
// Durability model (write-behind): sealed span batches are *copied* to disk;
// the in-memory store keeps serving them, so flushing never invalidates a
// row pointer. Segments written by this process are therefore "hot-backed"
// (queries skip them — RAM already answers) while segments found on disk at
// startup are "serving" (their spans exist nowhere else — the warm tier).
// A restart turns the previous lifetime's hot-backed segments into serving
// ones, bounding data loss to the unflushed window.
//
// Crash safety: segments are written to a `.tmp` name, fsync'd, renamed into
// place, and the directory fsync'd — a crash leaves either no file or a
// complete one, and a torn `.tmp`/partial rename is detected by validation.
// Recovery classifies every `seg-*.seg` file via Segment::open: torn files
// (truncation signature) are renamed `*.torn` and dropped; corrupt files
// (checksum rejection) are renamed `*.quarantined`; both are counted and
// never crash the process or serve wrong data.
//
// Thread-safety: queries take a shared lock; append/recover/compact take the
// exclusive lock. Telemetry counters are atomics, snapshot at any time.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/fault.h"
#include "storage/mapped_file.h"
#include "storage/segment_format.h"

namespace deepflow::storage {

/// Storage tier knobs (wired through ServerConfig.storage).
struct StorageConfig {
  bool enabled = false;
  /// Segment directory; created on demand. Required when enabled.
  std::string dir;
  /// Spans per shard that seal a batch into one segment.
  u32 segment_spans = 4096;
  /// Run a background thread that flushes sealed batches periodically
  /// (otherwise sealing happens inline on the inserting thread).
  bool background_flush = false;
  u32 flush_interval_ms = 25;
  /// Compaction trigger: at least this many small segments of one class.
  u32 compact_min_segments = 4;
  /// A segment is "small" when it holds fewer spans than this.
  u32 compact_span_threshold = 2048;
  /// Flush the remaining unflushed window when the store shuts down.
  bool flush_on_close = true;
  /// Optional media-rot injection at FaultSite::kSegmentWrite (tests).
  FaultInjector* fault = nullptr;
};

/// Monotonic storage-tier counters (mirrors the ingest/query telemetry).
struct StorageTelemetry {
  u64 segments_written = 0;    // successful segment files (flush + compact)
  u64 flushed_spans = 0;       // spans written by flush batches
  u64 flush_batches = 0;       // sealed batches flushed
  u64 recovered_segments = 0;  // valid segments found at startup
  u64 recovered_spans = 0;     // spans inside them
  u64 torn_segments = 0;       // truncated files dropped at recovery
  u64 quarantined_segments = 0;  // corrupt files quarantined (any time)
  u64 decode_failures = 0;     // row decodes rejected after open (CRC dodge)
  u64 compactions = 0;         // compaction passes that merged something
  u64 compacted_segments = 0;  // input segments consumed by compaction
  u64 warm_searches = 0;       // key probes against the warm tier
  u64 bloom_segment_skips = 0;  // segments excluded by their Bloom filter
  u64 warm_rows_loaded = 0;    // rows decoded out of serving segments
  u64 disk_bytes = 0;          // bytes currently in live segment files
};

class SegmentStore {
 public:
  explicit SegmentStore(StorageConfig config);

  /// Scan the directory, validate every segment, drop torn tails and
  /// quarantine corruption. Valid segments become the serving set. Called
  /// once before any append/query.
  void recover();

  /// Encode and durably write one sealed batch. `hot_backed` marks the
  /// segment as RAM-backed (skipped by queries this lifetime). Counted as a
  /// flush batch only when `hot_backed` (compaction rewrites pass false for
  /// `count_as_flush`). Returns false if the file could not be written.
  bool append(const std::vector<SegmentRowInput>& rows, u8 encoder_kind,
              TagColumnMode mode, bool hot_backed);

  /// Merge small segments of the same class/(encoder, tag-mode) into larger
  /// ones. Hot-backed and serving segments never merge with each other.
  void compact();

  // ---- Warm-tier queries (serving segments only). ----

  /// Rows matching one association key (Bloom-pruned, then column scan).
  std::vector<SegmentRow> find(SegmentKeyKind kind, u64 value,
                               std::string_view text = {}) const;

  /// The row with this span id, if any serving segment holds it.
  std::optional<SegmentRow> load_row(u64 span_id) const;

  /// Bulk flavour of load_row, positionally aligned with `span_ids`: ids are
  /// grouped per segment so each segment's columns decode at most once per
  /// call (a cold query touching the whole warm tier is O(segments), not
  /// O(rows x segment size)).
  std::vector<std::optional<SegmentRow>> load_rows(
      const std::vector<u64>& span_ids) const;

  /// Every serving row (recovery promotion / full dumps).
  std::vector<SegmentRow> serving_rows() const;

  /// (start_ts, span id) for every serving row — time-index merging.
  std::vector<std::pair<TimestampNs, u64>> time_entries() const;

  /// Every serving span id (id-uniqueness claims, dedup priming).
  std::vector<u64> serving_ids() const;

  bool contains(u64 span_id) const;
  size_t serving_span_count() const;
  size_t segment_count() const;  // serving + hot-backed live files

  StorageTelemetry telemetry() const;
  const StorageConfig& config() const { return config_; }

 private:
  /// One opened, validated, serving segment.
  struct Serving {
    std::string path;
    MappedFile file;
    std::unique_ptr<Segment> segment;
    /// Set when a row decode failed after open (CRC-colliding corruption):
    /// the segment stops serving rather than return wrong data.
    mutable std::atomic<bool> poisoned{false};
  };

  /// One hot-backed segment file (never opened unless compacted).
  struct HotFile {
    std::string path;
    u32 span_count = 0;
    u64 file_bytes = 0;
    u8 encoder_kind = 0;
    TagColumnMode mode = TagColumnMode::kEncoderBlob;
  };

  std::string next_segment_path();
  /// Write `image` to a fresh segment file (tmp + fsync + rename + dir
  /// fsync), applying any injected media fault first. Empty path = failure.
  std::string write_image(std::string image);
  bool usable(const Serving& s) const {
    return !s.poisoned.load(std::memory_order_relaxed);
  }
  void mark_poisoned(const Serving& s) const;

  StorageConfig config_;
  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<Serving>> serving_;
  std::vector<HotFile> hot_files_;
  u64 next_seq_ = 0;

  mutable std::atomic<u64> segments_written_{0};
  mutable std::atomic<u64> flushed_spans_{0};
  mutable std::atomic<u64> flush_batches_{0};
  mutable std::atomic<u64> recovered_segments_{0};
  mutable std::atomic<u64> recovered_spans_{0};
  mutable std::atomic<u64> torn_segments_{0};
  mutable std::atomic<u64> quarantined_segments_{0};
  mutable std::atomic<u64> decode_failures_{0};
  mutable std::atomic<u64> compactions_{0};
  mutable std::atomic<u64> compacted_segments_{0};
  mutable std::atomic<u64> warm_searches_{0};
  mutable std::atomic<u64> bloom_segment_skips_{0};
  mutable std::atomic<u64> warm_rows_loaded_{0};
  mutable std::atomic<u64> disk_bytes_{0};
};

}  // namespace deepflow::storage
