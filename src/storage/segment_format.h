// Append-only columnar segment format — the on-disk tier of the span store
// (the paper's §3.4 smart-encoded ClickHouse tables, reproduced as flat
// column files).
//
// One segment holds one sealed batch of spans, sorted by span id, laid out
// column by column so scans touch only the bytes they need:
//
//   [header]   magic "DFSG", version, reserved (all equality-checked)
//   [columns]  one block per span field; integers are varint (timestamps
//              delta-encoded, durations zigzag), strings are per-segment
//              dictionary encoded, tags are either the encoder blob
//              verbatim (smart/direct: self-contained bytes) or a
//              per-segment dictionary re-encoding (low-cardinality, whose
//              in-memory blobs reference shard-private dictionaries that do
//              not survive a restart)
//   [bloom]    key Bloom filter over every indexed association attribute,
//              mirroring the in-memory shard filters so warm searches skip
//              whole segments without decoding anything
//   [footer]   span count, time bounds, per-column directory with offsets,
//              sizes and CRC-32 checksums, bloom directory
//   [trailer]  footer size, footer CRC, end magic
//
// Validation contract (what recovery and the corruption suite rely on):
// every byte of the file is covered by either an equality check (header,
// trailer magic) or a CRC (columns, bloom, footer), so a torn tail or a
// flipped byte is always detected, and all decode paths are bounds-checked
// so even undetected garbage cannot read out of range. Open classifies
// failures as kTorn (structurally incomplete: truncation cut the
// trailer/footer — the crash-mid-flush signature) vs kCorrupt (structure
// intact but a checksum or decode rejects — the bit-rot signature); the
// segment store drops the former and quarantines the latter.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "agent/span.h"
#include "common/hash.h"
#include "common/types.h"

namespace deepflow::storage {

constexpr u32 kSegmentMagic = 0x44465347;     // "DFSG"
constexpr u32 kSegmentEndMagic = 0x47534644;  // "GSFD"
constexpr u32 kSegmentVersion = 1;
constexpr size_t kSegmentHeaderBytes = 12;   // magic + version + reserved
constexpr size_t kSegmentTrailerBytes = 12;  // footer size + footer crc + magic

/// How the tag column is stored (see the header comment).
enum class TagColumnMode : u8 { kEncoderBlob = 0, kSegmentDict = 1 };

/// Key kinds for the per-segment Bloom filter. Mirrors the in-memory shard
/// filter semantics: the same attribute value under different kinds sets
/// different bits.
enum class SegmentKeyKind : u8 {
  kSystrace = 0,
  kPseudoThread = 1,
  kXRequestId = 2,
  kTcpSeq = 3,
  kOtelId = 4,
};

constexpr u64 segment_key_hash(SegmentKeyKind kind, u64 value) {
  return mix64(value ^ (0x9e3779b97f4a7c15ULL *
                        (static_cast<u64>(kind) + 0x51ULL)));
}

/// One span headed into a segment. `tags` must be the decoded tag set when
/// the mode is kSegmentDict and may be null otherwise; `pseudo_key` is the
/// server-derived hash(host, pid, pseudo-thread id) search key (0 = span
/// has no pseudo-thread), stored as its own column because the hash is
/// owned by the server layer and must survive a restart unchanged.
struct SegmentRowInput {
  const agent::Span* span = nullptr;
  std::string_view tag_blob;
  const std::vector<agent::Tag>* tags = nullptr;
  u64 pseudo_key = 0;
};

/// One span decoded back out of a segment. `tags` is populated only in
/// kSegmentDict mode (the caller decodes `tag_blob` through its encoder
/// otherwise, exactly like a hot row).
struct SegmentRow {
  agent::Span span;
  std::string tag_blob;
  std::vector<agent::Tag> tags;
  bool has_tags = false;
  u64 pseudo_key = 0;
};

/// Serialize one sealed batch into a complete segment file image. Rows are
/// sorted by span id internally, so callers may pass them in any order;
/// `encoder_kind` is recorded in the footer for cross-checking at open.
std::string encode_segment(std::vector<SegmentRowInput> rows, u8 encoder_kind,
                           TagColumnMode mode);

enum class SegmentOpenStatus : u8 { kOk, kTorn, kCorrupt };

std::string_view segment_open_status_name(SegmentOpenStatus status);

/// A validated, opened segment. Does NOT own the underlying bytes — the
/// caller keeps the mapping alive for the segment's lifetime. The
/// association-key columns are decoded at open (they are the search side
/// and a fraction of the file); full rows decode on demand from the mapped
/// image.
class Segment {
 public:
  /// Parse + validate a whole file image. On kOk, `*out` is the opened
  /// segment; otherwise `*out` is untouched and the status says whether the
  /// file is torn or corrupt.
  static SegmentOpenStatus open(std::string_view image,
                                std::unique_ptr<Segment>* out);

  u32 span_count() const { return span_count_; }
  TimestampNs min_ts() const { return min_ts_; }
  TimestampNs max_ts() const { return max_ts_; }
  u8 encoder_kind() const { return encoder_kind_; }
  TagColumnMode tag_mode() const { return tag_mode_; }

  /// Span ids, ascending (the segment sort order).
  const std::vector<u64>& ids() const { return ids_; }
  /// Per-row start timestamps, aligned with ids().
  const std::vector<TimestampNs>& start_ts() const { return start_ts_; }

  /// Bloom membership for a segment_key_hash value. False positives fall
  /// through to the column scan; false negatives cannot happen.
  bool may_contain(u64 key_hash) const;

  /// Row indexes whose column value matches `value` under `kind`. String
  /// kinds take the fnv1a of the string as `value` plus the string itself
  /// for the exact compare.
  std::vector<u32> find_rows(SegmentKeyKind kind, u64 value,
                             std::string_view text = {}) const;

  /// Decode the rows at the given ascending indexes. Returns nullopt if a
  /// column fails to decode (possible only on a CRC-colliding corruption;
  /// the caller quarantines the segment). Indexes out of range are skipped.
  std::optional<std::vector<SegmentRow>> rows(
      const std::vector<u32>& indexes) const;

  /// All rows, in segment order.
  std::optional<std::vector<SegmentRow>> all_rows() const;

 private:
  struct ColumnRef {
    u8 id = 0;
    u64 offset = 0;
    u64 size = 0;
  };

  Segment() = default;

  std::string_view column(u8 id) const;

  std::string_view image_;
  std::vector<ColumnRef> columns_;
  u64 bloom_offset_ = 0;
  u64 bloom_size_ = 0;

  u32 span_count_ = 0;
  TimestampNs min_ts_ = 0;
  TimestampNs max_ts_ = 0;
  u8 encoder_kind_ = 0;
  TagColumnMode tag_mode_ = TagColumnMode::kEncoderBlob;

  // Search-side columns, decoded at open.
  std::vector<u64> ids_;
  std::vector<TimestampNs> start_ts_;
  std::vector<u64> systrace_;
  std::vector<u64> pseudo_keys_;
  std::vector<TcpSeq> req_seq_;
  std::vector<TcpSeq> resp_seq_;
  std::vector<std::string> xrid_dict_;
  std::vector<u32> xrid_refs_;
  std::vector<std::string> otel_dict_;
  std::vector<u32> otel_refs_;
};

}  // namespace deepflow::storage
