// Byte-level primitives for the persistent segment format: CRC-32 (IEEE
// 802.3, the ClickHouse/zlib polynomial) for per-column checksums, and
// LEB128-style varints with zigzag folding for delta-encoded integer
// columns. Everything here is pure and allocation-free so the encoder and
// the recovery path share one definition of "what the bytes mean".
//
// Readers are bounds-checked: a truncated or bit-flipped column must surface
// as a decode failure, never as an out-of-range read — the corruption suite
// runs these paths under ASan.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.h"

namespace deepflow::storage {

namespace detail {
constexpr std::array<u32, 256> make_crc32_table() {
  std::array<u32, 256> table{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<u32, 256> kCrc32Table = make_crc32_table();
}  // namespace detail

/// CRC-32 over a byte range (init/final xor 0xffffffff, reflected).
constexpr u32 crc32(std::string_view bytes, u32 seed = 0) {
  u32 c = seed ^ 0xffffffffu;
  for (const char ch : bytes) {
    c = detail::kCrc32Table[(c ^ static_cast<u8>(ch)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

/// Zigzag fold: signed deltas to unsigned varint-friendly magnitudes.
constexpr u64 zigzag(i64 v) {
  return (static_cast<u64>(v) << 1) ^ static_cast<u64>(v >> 63);
}
constexpr i64 unzigzag(u64 v) {
  return static_cast<i64>((v >> 1) ^ (~(v & 1) + 1));
}

/// Append a LEB128 varint (1-10 bytes).
inline void put_varint(std::string& out, u64 v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Sequential bounds-checked reader over one column payload. Every accessor
/// reports failure instead of reading past the end; once failed, stays
/// failed (callers check ok() once per column, not per value).
class ColumnReader {
 public:
  explicit ColumnReader(std::string_view data) : data_(data) {}

  bool ok() const { return !failed_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }

  std::optional<u64> varint() {
    u64 v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= data_.size()) return fail();
      const u8 byte = static_cast<u8>(data_[pos_++]);
      v |= static_cast<u64>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
    }
    return fail();  // > 10 bytes: malformed
  }

  std::optional<u8> byte() {
    if (pos_ >= data_.size()) return fail<u8>();
    return static_cast<u8>(data_[pos_++]);
  }

  std::optional<u16> be16() {
    const auto hi = byte();
    const auto lo = byte();
    if (!hi || !lo) return std::nullopt;
    return static_cast<u16>((static_cast<u16>(*hi) << 8) | *lo);
  }

  std::optional<u32> be32() {
    const auto hi = be16();
    const auto lo = be16();
    if (!hi || !lo) return std::nullopt;
    return (static_cast<u32>(*hi) << 16) | *lo;
  }

  std::optional<u64> be64() {
    const auto hi = be32();
    const auto lo = be32();
    if (!hi || !lo) return std::nullopt;
    return (static_cast<u64>(*hi) << 32) | *lo;
  }

  std::optional<std::string_view> bytes(size_t n) {
    if (remaining() < n) return fail<std::string_view>();
    const std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

 private:
  template <typename T = u64>
  std::optional<T> fail() {
    failed_ = true;
    return std::nullopt;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

/// Big-endian fixed-width appends (matches protocols::BinaryWriter byte
/// order so hexdumps of segments read naturally).
inline void put_be16(std::string& out, u16 v) {
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v));
}
inline void put_be32(std::string& out, u32 v) {
  put_be16(out, static_cast<u16>(v >> 16));
  put_be16(out, static_cast<u16>(v));
}
inline void put_be64(std::string& out, u64 v) {
  put_be32(out, static_cast<u32>(v >> 32));
  put_be32(out, static_cast<u32>(v));
}

}  // namespace deepflow::storage
