#include "storage/segment_format.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "storage/codec.h"

namespace deepflow::storage {

namespace {

// Column ids are part of the on-disk format; append new ones, never renumber.
enum ColumnId : u8 {
  kColIds = 0,        // varint: first id, then deltas (ascending sort order)
  kColKind = 1,       // u8 per row
  kColSystrace = 2,   // varint per row (0 = invalid)
  kColPseudoTid = 3,  // varint per row (raw pseudo-thread id field)
  kColPseudoKey = 4,  // varint per row (server-derived search key, 0 = none)
  kColXrid = 5,       // string dict column
  kColOtel = 6,       // string dict column
  kColReqSeq = 7,     // varint per row
  kColRespSeq = 8,    // varint per row
  kColHost = 9,       // string dict column
  kColFlags = 10,     // u8 bitmap per row
  kColDeviceId = 11,  // varint per row
  kColDeviceName = 12,  // string dict column
  kColPid = 13,       // varint per row
  kColTid = 14,       // varint per row
  kColStartTs = 15,   // varint first, then zigzag deltas
  kColDuration = 16,  // zigzag(end_ts - start_ts) varint per row
  kColProtocol = 17,  // u8 per row
  kColMethod = 18,    // string dict column
  kColEndpoint = 19,  // string dict column
  kColStatus = 20,    // varint per row
  kColTuple = 21,     // fixed 13 B per row: src u32, dst u32, ports u16 x2, proto u8
  kColIntTags = 22,   // fixed 12 B per row: vpc u32, client ip u32, server ip u32
  kColParent = 23,    // varint per row
  kColTags = 24,      // encoder blobs (varint len + bytes) or dict tag lists
};

// Row flag bits (kColFlags).
enum RowFlag : u8 {
  kFlagFromServerSide = 1 << 0,
  kFlagOk = 1 << 1,
  kFlagIncomplete = 1 << 2,
  kFlagLostPlaceholder = 1 << 3,
};

// ------------------------------------------------------------- encoding --

/// Per-segment string dictionary: interns each distinct string once; the
/// column stores the dictionary followed by one reference per row.
class DictColumn {
 public:
  void add(const std::string& text) {
    const auto [it, inserted] =
        ids_.try_emplace(text, static_cast<u32>(strings_.size()));
    if (inserted) strings_.push_back(text);
    refs_.push_back(it->second);
  }

  std::string payload() const {
    std::string out;
    put_varint(out, strings_.size());
    for (const std::string& s : strings_) {
      put_varint(out, s.size());
      out.append(s);
    }
    for (const u32 ref : refs_) put_varint(out, ref);
    return out;
  }

  u32 intern(const std::string& text) {
    const auto [it, inserted] =
        ids_.try_emplace(text, static_cast<u32>(strings_.size()));
    if (inserted) strings_.push_back(text);
    return it->second;
  }

  const std::vector<std::string>& strings() const { return strings_; }

 private:
  std::unordered_map<std::string, u32> ids_;
  std::vector<std::string> strings_;
  std::vector<u32> refs_;
};

/// Write-side Bloom filter sized to the segment (power-of-two words).
class BloomBuilder {
 public:
  explicit BloomBuilder(size_t span_count) {
    // ~128 bits per span across up to ~6 keys each: comfortably under 1%
    // false positives, and still only 16 B per span.
    const u64 words = std::bit_ceil(std::max<u64>(64, span_count * 2));
    words_.assign(static_cast<size_t>(words), 0);
  }

  void add(u64 hash) {
    set_bit(hash);
    set_bit(hash >> 32);
  }

  std::string payload() const {
    std::string out;
    out.reserve(words_.size() * 8);
    for (const u64 word : words_) put_be64(out, word);
    return out;
  }

 private:
  void set_bit(u64 h) {
    const u64 mask = words_.size() * 64 - 1;
    words_[(h & mask) >> 6] |= u64{1} << (h & 63);
  }

  std::vector<u64> words_;
};

}  // namespace

std::string_view segment_open_status_name(SegmentOpenStatus status) {
  switch (status) {
    case SegmentOpenStatus::kOk: return "ok";
    case SegmentOpenStatus::kTorn: return "torn";
    case SegmentOpenStatus::kCorrupt: return "corrupt";
  }
  return "unknown";
}

std::string encode_segment(std::vector<SegmentRowInput> rows, u8 encoder_kind,
                           TagColumnMode mode) {
  // Segment order: ascending span id (stable for the duplicate-id edge case
  // so encode is deterministic in input order).
  std::stable_sort(rows.begin(), rows.end(),
                   [](const SegmentRowInput& a, const SegmentRowInput& b) {
                     return a.span->span_id < b.span->span_id;
                   });

  TimestampNs min_ts = ~TimestampNs{0}, max_ts = 0;
  for (const SegmentRowInput& row : rows) {
    min_ts = std::min(min_ts, row.span->start_ts);
    max_ts = std::max(max_ts, row.span->start_ts);
  }
  if (rows.empty()) min_ts = 0;

  // Build every column payload, then lay the file out.
  std::vector<std::pair<u8, std::string>> columns;
  const auto add_column = [&columns](u8 id, std::string payload) {
    columns.emplace_back(id, std::move(payload));
  };

  {  // ids: first + deltas (non-negative by sort order).
    std::string c;
    u64 prev = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      const u64 id = rows[i].span->span_id;
      put_varint(c, i == 0 ? id : id - prev);
      prev = id;
    }
    add_column(kColIds, std::move(c));
  }
  const auto varint_column = [&rows](auto field) {
    std::string c;
    for (const SegmentRowInput& row : rows) put_varint(c, field(*row.span, row));
    return c;
  };
  const auto u8_column = [&rows](auto field) {
    std::string c;
    for (const SegmentRowInput& row : rows) {
      c.push_back(static_cast<char>(field(*row.span)));
    }
    return c;
  };
  const auto dict_column = [&rows](auto field) {
    DictColumn c;
    for (const SegmentRowInput& row : rows) c.add(field(*row.span));
    return c.payload();
  };

  add_column(kColKind, u8_column([](const agent::Span& s) {
               return static_cast<u8>(s.kind);
             }));
  add_column(kColSystrace, varint_column([](const agent::Span& s, const auto&) {
               return s.systrace_id;
             }));
  add_column(kColPseudoTid, varint_column([](const agent::Span& s, const auto&) {
               return s.pseudo_thread_id;
             }));
  add_column(kColPseudoKey, varint_column([](const agent::Span&, const auto& r) {
               return r.pseudo_key;
             }));
  add_column(kColXrid, dict_column([](const agent::Span& s) -> const std::string& {
               return s.x_request_id;
             }));
  add_column(kColOtel, dict_column([](const agent::Span& s) -> const std::string& {
               return s.otel_trace_id;
             }));
  add_column(kColReqSeq, varint_column([](const agent::Span& s, const auto&) {
               return s.req_tcp_seq;
             }));
  add_column(kColRespSeq, varint_column([](const agent::Span& s, const auto&) {
               return s.resp_tcp_seq;
             }));
  add_column(kColHost, dict_column([](const agent::Span& s) -> const std::string& {
               return s.host;
             }));
  add_column(kColFlags, u8_column([](const agent::Span& s) {
               u8 flags = 0;
               if (s.from_server_side) flags |= kFlagFromServerSide;
               if (s.ok) flags |= kFlagOk;
               if (s.incomplete) flags |= kFlagIncomplete;
               if (s.lost_placeholder) flags |= kFlagLostPlaceholder;
               return flags;
             }));
  add_column(kColDeviceId, varint_column([](const agent::Span& s, const auto&) {
               return s.device_id;
             }));
  add_column(kColDeviceName,
             dict_column([](const agent::Span& s) -> const std::string& {
               return s.device_name;
             }));
  add_column(kColPid, varint_column([](const agent::Span& s, const auto&) {
               return s.pid;
             }));
  add_column(kColTid, varint_column([](const agent::Span& s, const auto&) {
               return s.tid;
             }));
  {  // start timestamps: first raw, then zigzag deltas (ids ascending does
     // not imply time ascending, so deltas are signed; the subtraction is
     // done in u64 so extreme timestamps wrap instead of overflowing).
    std::string c;
    TimestampNs prev = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      const TimestampNs ts = rows[i].span->start_ts;
      if (i == 0) {
        put_varint(c, ts);
      } else {
        put_varint(c, zigzag(static_cast<i64>(ts - prev)));
      }
      prev = ts;
    }
    add_column(kColStartTs, std::move(c));
  }
  add_column(kColDuration, varint_column([](const agent::Span& s, const auto&) {
               return zigzag(static_cast<i64>(s.end_ts - s.start_ts));
             }));
  add_column(kColProtocol, u8_column([](const agent::Span& s) {
               return static_cast<u8>(s.protocol);
             }));
  add_column(kColMethod, dict_column([](const agent::Span& s) -> const std::string& {
               return s.method;
             }));
  add_column(kColEndpoint,
             dict_column([](const agent::Span& s) -> const std::string& {
               return s.endpoint;
             }));
  add_column(kColStatus, varint_column([](const agent::Span& s, const auto&) {
               return s.status_code;
             }));
  {  // five-tuple: fixed-width records.
    std::string c;
    c.reserve(rows.size() * 13);
    for (const SegmentRowInput& row : rows) {
      const FiveTuple& t = row.span->tuple;
      put_be32(c, t.src_ip.addr);
      put_be32(c, t.dst_ip.addr);
      put_be16(c, t.src_port);
      put_be16(c, t.dst_port);
      c.push_back(static_cast<char>(t.proto));
    }
    add_column(kColTuple, std::move(c));
  }
  {  // agent integer tags: fixed-width records.
    std::string c;
    c.reserve(rows.size() * 12);
    for (const SegmentRowInput& row : rows) {
      put_be32(c, row.span->int_tags.vpc_id);
      put_be32(c, row.span->int_tags.client_ip);
      put_be32(c, row.span->int_tags.server_ip);
    }
    add_column(kColIntTags, std::move(c));
  }
  add_column(kColParent, varint_column([](const agent::Span& s, const auto&) {
               return s.parent_span_id;
             }));
  if (mode == TagColumnMode::kEncoderBlob) {
    std::string c;
    for (const SegmentRowInput& row : rows) {
      put_varint(c, row.tag_blob.size());
      c.append(row.tag_blob);
    }
    add_column(kColTags, std::move(c));
  } else {
    // Re-encode decoded tag sets against a per-segment dictionary so the
    // column is self-contained (shard dictionaries die with the process).
    DictColumn dict;
    std::string body;
    for (const SegmentRowInput& row : rows) {
      put_varint(body, row.tags != nullptr ? row.tags->size() : 0);
      if (row.tags == nullptr) continue;
      for (const agent::Tag& tag : *row.tags) {
        put_varint(body, dict.intern(tag.key));
        put_varint(body, dict.intern(tag.value));
      }
    }
    std::string c;
    put_varint(c, dict.strings().size());
    for (const std::string& s : dict.strings()) {
      put_varint(c, s.size());
      c.append(s);
    }
    c.append(body);
    add_column(kColTags, std::move(c));
  }

  // Bloom filter over every indexed association key (same conditions as the
  // in-memory secondary indexes: zero/empty values are not keys).
  BloomBuilder bloom(rows.size());
  for (const SegmentRowInput& row : rows) {
    const agent::Span& s = *row.span;
    if (s.systrace_id != kInvalidSystraceId) {
      bloom.add(segment_key_hash(SegmentKeyKind::kSystrace, s.systrace_id));
    }
    if (s.pseudo_thread_id != 0 && row.pseudo_key != 0) {
      bloom.add(segment_key_hash(SegmentKeyKind::kPseudoThread, row.pseudo_key));
    }
    if (!s.x_request_id.empty()) {
      bloom.add(
          segment_key_hash(SegmentKeyKind::kXRequestId, fnv1a(s.x_request_id)));
    }
    if (s.req_tcp_seq != 0) {
      bloom.add(segment_key_hash(SegmentKeyKind::kTcpSeq, s.req_tcp_seq));
    }
    if (s.resp_tcp_seq != 0) {
      bloom.add(segment_key_hash(SegmentKeyKind::kTcpSeq, s.resp_tcp_seq));
    }
    if (!s.otel_trace_id.empty()) {
      bloom.add(
          segment_key_hash(SegmentKeyKind::kOtelId, fnv1a(s.otel_trace_id)));
    }
  }
  const std::string bloom_payload = bloom.payload();

  // Lay the file out: header, columns, bloom, footer, trailer.
  std::string file;
  put_be32(file, kSegmentMagic);
  put_be32(file, kSegmentVersion);
  put_be32(file, 0);  // reserved, equality-checked at open

  struct Placed {
    u8 id;
    u64 offset;
    u64 size;
    u32 crc;
  };
  std::vector<Placed> placed;
  placed.reserve(columns.size());
  for (const auto& [id, payload] : columns) {
    placed.push_back({id, file.size(), payload.size(), crc32(payload)});
    file.append(payload);
  }
  const u64 bloom_offset = file.size();
  file.append(bloom_payload);

  std::string footer;
  put_be32(footer, static_cast<u32>(rows.size()));
  put_be64(footer, min_ts);
  put_be64(footer, max_ts);
  footer.push_back(static_cast<char>(encoder_kind));
  footer.push_back(static_cast<char>(mode));
  footer.push_back(static_cast<char>(placed.size()));
  for (const Placed& col : placed) {
    footer.push_back(static_cast<char>(col.id));
    put_be64(footer, col.offset);
    put_be64(footer, col.size);
    put_be32(footer, col.crc);
  }
  put_be64(footer, bloom_offset);
  put_be64(footer, bloom_payload.size());
  put_be32(footer, crc32(bloom_payload));

  const u32 footer_crc = crc32(footer);
  file.append(footer);
  put_be32(file, static_cast<u32>(footer.size()));
  put_be32(file, footer_crc);
  put_be32(file, kSegmentEndMagic);
  return file;
}

// ------------------------------------------------------------- decoding --

namespace {

std::optional<std::vector<u64>> decode_varint_column(std::string_view payload,
                                                     u32 count) {
  ColumnReader r(payload);
  std::vector<u64> out;
  out.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    const auto v = r.varint();
    if (!v) return std::nullopt;
    out.push_back(*v);
  }
  if (!r.at_end()) return std::nullopt;  // trailing garbage: reject
  return out;
}

std::optional<std::vector<u8>> decode_u8_column(std::string_view payload,
                                                u32 count) {
  if (payload.size() != count) return std::nullopt;
  std::vector<u8> out(count);
  for (u32 i = 0; i < count; ++i) out[i] = static_cast<u8>(payload[i]);
  return out;
}

struct DecodedDict {
  std::vector<std::string> strings;
  std::vector<u32> refs;
};

std::optional<DecodedDict> decode_dict_column(std::string_view payload,
                                              u32 count) {
  ColumnReader r(payload);
  DecodedDict out;
  const auto dict_size = r.varint();
  if (!dict_size || *dict_size > payload.size()) return std::nullopt;
  out.strings.reserve(static_cast<size_t>(*dict_size));
  for (u64 i = 0; i < *dict_size; ++i) {
    const auto len = r.varint();
    if (!len) return std::nullopt;
    const auto bytes = r.bytes(static_cast<size_t>(*len));
    if (!bytes) return std::nullopt;
    out.strings.emplace_back(*bytes);
  }
  out.refs.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    const auto ref = r.varint();
    if (!ref || *ref >= out.strings.size()) {
      // A zero-row segment may legitimately have an empty dictionary.
      if (!ref) return std::nullopt;
      return std::nullopt;
    }
    out.refs.push_back(static_cast<u32>(*ref));
  }
  if (!r.at_end()) return std::nullopt;
  return out;
}

}  // namespace

SegmentOpenStatus Segment::open(std::string_view image,
                                std::unique_ptr<Segment>* out) {
  // Structural minimum: header + trailer must both exist.
  if (image.size() < kSegmentHeaderBytes + kSegmentTrailerBytes) {
    return SegmentOpenStatus::kTorn;
  }
  {  // Header: pure equality (any flip here is corruption, not truncation).
    ColumnReader r(image.substr(0, kSegmentHeaderBytes));
    if (r.be32() != kSegmentMagic || r.be32() != kSegmentVersion ||
        r.be32() != u32{0}) {
      return SegmentOpenStatus::kCorrupt;
    }
  }
  // Trailer: truncation cuts it off, so a bad end magic means torn.
  ColumnReader trailer(image.substr(image.size() - kSegmentTrailerBytes));
  const auto footer_size = trailer.be32();
  const auto footer_crc = trailer.be32();
  const auto end_magic = trailer.be32();
  if (!end_magic || *end_magic != kSegmentEndMagic) {
    return SegmentOpenStatus::kTorn;
  }
  if (!footer_size || *footer_size > image.size() - kSegmentHeaderBytes -
                                         kSegmentTrailerBytes) {
    return SegmentOpenStatus::kTorn;
  }
  const u64 footer_start =
      image.size() - kSegmentTrailerBytes - *footer_size;
  const std::string_view footer = image.substr(footer_start, *footer_size);
  // End magic intact but the footer bytes reject: bit rot, not truncation.
  if (crc32(footer) != *footer_crc) return SegmentOpenStatus::kCorrupt;

  auto segment = std::unique_ptr<Segment>(new Segment());
  segment->image_ = image;

  ColumnReader r(footer);
  const auto span_count = r.be32();
  const auto min_ts = r.be64();
  const auto max_ts = r.be64();
  const auto encoder_kind = r.byte();
  const auto mode = r.byte();
  const auto column_count = r.byte();
  if (!span_count || !min_ts || !max_ts || !encoder_kind || !mode ||
      !column_count || *mode > static_cast<u8>(TagColumnMode::kSegmentDict)) {
    return SegmentOpenStatus::kCorrupt;
  }
  segment->span_count_ = *span_count;
  segment->min_ts_ = *min_ts;
  segment->max_ts_ = *max_ts;
  segment->encoder_kind_ = *encoder_kind;
  segment->tag_mode_ = static_cast<TagColumnMode>(*mode);

  // Column directory: every block must live inside [header, footer) and
  // match its checksum.
  for (u8 i = 0; i < *column_count; ++i) {
    const auto id = r.byte();
    const auto offset = r.be64();
    const auto size = r.be64();
    const auto crc = r.be32();
    if (!id || !offset || !size || !crc) return SegmentOpenStatus::kCorrupt;
    if (*offset < kSegmentHeaderBytes || *offset + *size > footer_start ||
        *offset + *size < *offset) {
      return SegmentOpenStatus::kCorrupt;
    }
    if (crc32(image.substr(static_cast<size_t>(*offset),
                           static_cast<size_t>(*size))) != *crc) {
      return SegmentOpenStatus::kCorrupt;
    }
    segment->columns_.push_back(
        ColumnRef{*id, *offset, *size});
  }
  const auto bloom_offset = r.be64();
  const auto bloom_size = r.be64();
  const auto bloom_crc = r.be32();
  if (!bloom_offset || !bloom_size || !bloom_crc || !r.at_end()) {
    return SegmentOpenStatus::kCorrupt;
  }
  if (*bloom_offset < kSegmentHeaderBytes ||
      *bloom_offset + *bloom_size > footer_start ||
      (*bloom_size % 8) != 0 ||
      !std::has_single_bit(std::max<u64>(1, *bloom_size / 8))) {
    return SegmentOpenStatus::kCorrupt;
  }
  if (crc32(image.substr(static_cast<size_t>(*bloom_offset),
                         static_cast<size_t>(*bloom_size))) != *bloom_crc) {
    return SegmentOpenStatus::kCorrupt;
  }
  segment->bloom_offset_ = *bloom_offset;
  segment->bloom_size_ = *bloom_size;

  // Decode the search-side columns now: recovery validates them once, and
  // every later find_rows() is a pure in-memory scan.
  const u32 n = segment->span_count_;
  {
    const auto deltas = decode_varint_column(segment->column(kColIds), n);
    if (!deltas) return SegmentOpenStatus::kCorrupt;
    segment->ids_.reserve(n);
    u64 id = 0;
    for (u32 i = 0; i < n; ++i) {
      id = i == 0 ? (*deltas)[0] : id + (*deltas)[i];
      segment->ids_.push_back(id);
    }
  }
  {
    const auto deltas = decode_varint_column(segment->column(kColStartTs), n);
    if (!deltas) return SegmentOpenStatus::kCorrupt;
    segment->start_ts_.reserve(n);
    u64 ts = 0;
    for (u32 i = 0; i < n; ++i) {
      ts = i == 0 ? (*deltas)[0]
                  : ts + static_cast<u64>(unzigzag((*deltas)[i]));
      segment->start_ts_.push_back(ts);
    }
  }
  auto systrace = decode_varint_column(segment->column(kColSystrace), n);
  auto pseudo = decode_varint_column(segment->column(kColPseudoKey), n);
  auto req = decode_varint_column(segment->column(kColReqSeq), n);
  auto resp = decode_varint_column(segment->column(kColRespSeq), n);
  auto xrid = decode_dict_column(segment->column(kColXrid), n);
  auto otel = decode_dict_column(segment->column(kColOtel), n);
  if (!systrace || !pseudo || !req || !resp || !xrid || !otel) {
    return SegmentOpenStatus::kCorrupt;
  }
  segment->systrace_ = std::move(*systrace);
  segment->pseudo_keys_ = std::move(*pseudo);
  segment->req_seq_.assign(req->begin(), req->end());
  segment->resp_seq_.assign(resp->begin(), resp->end());
  segment->xrid_dict_ = std::move(xrid->strings);
  segment->xrid_refs_ = std::move(xrid->refs);
  segment->otel_dict_ = std::move(otel->strings);
  segment->otel_refs_ = std::move(otel->refs);

  *out = std::move(segment);
  return SegmentOpenStatus::kOk;
}

std::string_view Segment::column(u8 id) const {
  for (const ColumnRef& col : columns_) {
    if (col.id == id) {
      return image_.substr(static_cast<size_t>(col.offset),
                           static_cast<size_t>(col.size));
    }
  }
  return {};
}

bool Segment::may_contain(u64 key_hash) const {
  const u64 words = bloom_size_ / 8;
  if (words == 0) return false;  // empty segment holds nothing
  const u64 mask = words * 64 - 1;
  const auto bit = [&](u64 h) {
    const u64 word_idx = (h & mask) >> 6;
    const std::string_view word_bytes =
        image_.substr(static_cast<size_t>(bloom_offset_ + word_idx * 8), 8);
    u64 word = 0;
    for (const char c : word_bytes) {
      word = (word << 8) | static_cast<u8>(c);
    }
    return (word & (u64{1} << (h & 63))) != 0;
  };
  return bit(key_hash) && bit(key_hash >> 32);
}

std::vector<u32> Segment::find_rows(SegmentKeyKind kind, u64 value,
                                    std::string_view text) const {
  std::vector<u32> out;
  const auto scan_ints = [&](const auto& column) {
    for (u32 i = 0; i < column.size(); ++i) {
      if (column[i] == value) out.push_back(i);
    }
  };
  const auto scan_dict = [&](const std::vector<std::string>& dict,
                             const std::vector<u32>& refs) {
    // Resolve the string once against the dictionary, then match refs.
    u32 target = ~u32{0};
    for (u32 i = 0; i < dict.size(); ++i) {
      if (dict[i] == text) {
        target = i;
        break;
      }
    }
    if (target == ~u32{0}) return;
    for (u32 i = 0; i < refs.size(); ++i) {
      if (refs[i] == target) out.push_back(i);
    }
  };
  switch (kind) {
    case SegmentKeyKind::kSystrace:
      scan_ints(systrace_);
      break;
    case SegmentKeyKind::kPseudoThread:
      scan_ints(pseudo_keys_);
      break;
    case SegmentKeyKind::kXRequestId:
      if (!text.empty()) scan_dict(xrid_dict_, xrid_refs_);
      break;
    case SegmentKeyKind::kTcpSeq:
      for (u32 i = 0; i < req_seq_.size(); ++i) {
        if (req_seq_[i] == value ||
            (resp_seq_[i] != 0 && resp_seq_[i] == value)) {
          out.push_back(i);
        }
      }
      break;
    case SegmentKeyKind::kOtelId:
      if (!text.empty()) scan_dict(otel_dict_, otel_refs_);
      break;
  }
  return out;
}

std::optional<std::vector<SegmentRow>> Segment::rows(
    const std::vector<u32>& indexes) const {
  const u32 n = span_count_;
  // Decode the non-key columns into primitive vectors once, then assemble
  // only the requested rows (the expensive part is the string copies).
  const auto kinds = decode_u8_column(column(kColKind), n);
  const auto ptid = decode_varint_column(column(kColPseudoTid), n);
  const auto host = decode_dict_column(column(kColHost), n);
  const auto flags = decode_u8_column(column(kColFlags), n);
  const auto device_id = decode_varint_column(column(kColDeviceId), n);
  const auto device_name = decode_dict_column(column(kColDeviceName), n);
  const auto pid = decode_varint_column(column(kColPid), n);
  const auto tid = decode_varint_column(column(kColTid), n);
  const auto duration = decode_varint_column(column(kColDuration), n);
  const auto protocol = decode_u8_column(column(kColProtocol), n);
  const auto method = decode_dict_column(column(kColMethod), n);
  const auto endpoint = decode_dict_column(column(kColEndpoint), n);
  const auto status = decode_varint_column(column(kColStatus), n);
  const auto parent = decode_varint_column(column(kColParent), n);
  if (!kinds || !ptid || !host || !flags || !device_id || !device_name ||
      !pid || !tid || !duration || !protocol || !method || !endpoint ||
      !status || !parent) {
    return std::nullopt;
  }
  const std::string_view tuple_col = column(kColTuple);
  const std::string_view int_tags_col = column(kColIntTags);
  if (tuple_col.size() != static_cast<size_t>(n) * 13 ||
      int_tags_col.size() != static_cast<size_t>(n) * 12) {
    return std::nullopt;
  }

  // Tag column: per-row blob ranges (blob mode) or per-row tag-ref lists
  // (dict mode), decoded structurally once.
  std::vector<std::pair<u64, u64>> blob_ranges;  // offset,len into tag column
  std::vector<std::pair<u32, u32>> tag_spans;    // offset,count into tag_pairs
  std::vector<std::pair<u32, u32>> tag_pairs;    // (key ref, value ref)
  std::vector<std::string> tag_dict;
  const std::string_view tag_col = column(kColTags);
  {
    ColumnReader tr(tag_col);
    if (tag_mode_ == TagColumnMode::kEncoderBlob) {
      blob_ranges.reserve(n);
      size_t consumed = 0;
      for (u32 i = 0; i < n; ++i) {
        const auto len = tr.varint();
        if (!len) return std::nullopt;
        consumed = tag_col.size() - tr.remaining();
        if (!tr.bytes(static_cast<size_t>(*len))) return std::nullopt;
        blob_ranges.emplace_back(consumed, *len);
      }
      if (!tr.at_end()) return std::nullopt;
    } else {
      const auto dict_size = tr.varint();
      if (!dict_size || *dict_size > tag_col.size()) return std::nullopt;
      tag_dict.reserve(static_cast<size_t>(*dict_size));
      for (u64 i = 0; i < *dict_size; ++i) {
        const auto len = tr.varint();
        if (!len) return std::nullopt;
        const auto bytes = tr.bytes(static_cast<size_t>(*len));
        if (!bytes) return std::nullopt;
        tag_dict.emplace_back(*bytes);
      }
      tag_spans.reserve(n);
      for (u32 i = 0; i < n; ++i) {
        const auto count = tr.varint();
        if (!count || *count > tag_col.size()) return std::nullopt;
        tag_spans.emplace_back(static_cast<u32>(tag_pairs.size()),
                               static_cast<u32>(*count));
        for (u64 t = 0; t < *count; ++t) {
          const auto key = tr.varint();
          const auto value = tr.varint();
          if (!key || !value || *key >= tag_dict.size() ||
              *value >= tag_dict.size()) {
            return std::nullopt;
          }
          tag_pairs.emplace_back(static_cast<u32>(*key),
                                 static_cast<u32>(*value));
        }
      }
      if (!tr.at_end()) return std::nullopt;
    }
  }

  std::vector<SegmentRow> out;
  out.reserve(indexes.size());
  for (const u32 i : indexes) {
    if (i >= n) continue;
    SegmentRow row;
    agent::Span& s = row.span;
    s.span_id = ids_[i];
    s.kind = static_cast<agent::SpanKind>((*kinds)[i]);
    s.systrace_id = systrace_[i];
    s.pseudo_thread_id = (*ptid)[i];
    s.x_request_id = xrid_dict_[xrid_refs_[i]];
    s.otel_trace_id = otel_dict_[otel_refs_[i]];
    s.req_tcp_seq = static_cast<TcpSeq>(req_seq_[i]);
    s.resp_tcp_seq = static_cast<TcpSeq>(resp_seq_[i]);
    s.host = host->strings[host->refs[i]];
    const u8 f = (*flags)[i];
    s.from_server_side = (f & kFlagFromServerSide) != 0;
    s.ok = (f & kFlagOk) != 0;
    s.incomplete = (f & kFlagIncomplete) != 0;
    s.lost_placeholder = (f & kFlagLostPlaceholder) != 0;
    s.device_id = static_cast<u32>((*device_id)[i]);
    s.device_name = device_name->strings[device_name->refs[i]];
    s.pid = static_cast<Pid>((*pid)[i]);
    s.tid = static_cast<Tid>((*tid)[i]);
    s.start_ts = start_ts_[i];
    s.end_ts = s.start_ts + static_cast<u64>(unzigzag((*duration)[i]));
    s.protocol = static_cast<protocols::L7Protocol>((*protocol)[i]);
    s.method = method->strings[method->refs[i]];
    s.endpoint = endpoint->strings[endpoint->refs[i]];
    s.status_code = static_cast<u32>((*status)[i]);
    {
      ColumnReader tr(tuple_col.substr(static_cast<size_t>(i) * 13, 13));
      s.tuple.src_ip.addr = *tr.be32();
      s.tuple.dst_ip.addr = *tr.be32();
      s.tuple.src_port = *tr.be16();
      s.tuple.dst_port = *tr.be16();
      s.tuple.proto = static_cast<L4Proto>(*tr.byte());
    }
    {
      ColumnReader tr(int_tags_col.substr(static_cast<size_t>(i) * 12, 12));
      s.int_tags.vpc_id = *tr.be32();
      s.int_tags.client_ip = *tr.be32();
      s.int_tags.server_ip = *tr.be32();
    }
    s.parent_span_id = (*parent)[i];
    row.pseudo_key = pseudo_keys_[i];
    if (tag_mode_ == TagColumnMode::kEncoderBlob) {
      const auto [off, len] = blob_ranges[i];
      row.tag_blob.assign(tag_col.substr(static_cast<size_t>(off),
                                         static_cast<size_t>(len)));
    } else {
      const auto [off, count] = tag_spans[i];
      row.has_tags = true;
      row.tags.reserve(count);
      for (u32 t = 0; t < count; ++t) {
        const auto [key, value] = tag_pairs[off + t];
        row.tags.push_back(agent::Tag{tag_dict[key], tag_dict[value]});
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

std::optional<std::vector<SegmentRow>> Segment::all_rows() const {
  std::vector<u32> indexes(span_count_);
  for (u32 i = 0; i < span_count_; ++i) indexes[i] = i;
  return rows(indexes);
}

}  // namespace deepflow::storage
