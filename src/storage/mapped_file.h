// Read-only file mapping for segment files. mmap keeps warm queries from
// double-buffering segment bytes through the heap; when a file cannot be
// mapped (zero length, exotic filesystem) it falls back to a plain read so
// the caller sees one interface either way.
#pragma once

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <string>
#include <string_view>

namespace deepflow::storage {

class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      reset();
      map_ = other.map_;
      map_size_ = other.map_size_;
      fallback_ = std::move(other.fallback_);
      mapped_ = other.mapped_;
      other.map_ = nullptr;
      other.map_size_ = 0;
      other.mapped_ = false;
    }
    return *this;
  }
  ~MappedFile() { reset(); }

  /// Map (or read) the whole file. Returns false when the file cannot be
  /// opened or read at all.
  bool open(const std::string& path) {
    reset();
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return false;
    struct stat st {};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      return false;
    }
    const size_t size = static_cast<size_t>(st.st_size);
    if (size > 0) {
      void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      if (map != MAP_FAILED) {
        map_ = map;
        map_size_ = size;
        mapped_ = true;
        ::close(fd);
        return true;
      }
      // Fallback: plain read (still one contiguous image).
      fallback_.resize(size);
      size_t done = 0;
      while (done < size) {
        const ssize_t got =
            ::pread(fd, fallback_.data() + done, size - done, done);
        if (got <= 0) {
          ::close(fd);
          fallback_.clear();
          return false;
        }
        done += static_cast<size_t>(got);
      }
    }
    ::close(fd);
    return true;
  }

  std::string_view view() const {
    if (mapped_) return {static_cast<const char*>(map_), map_size_};
    return fallback_;
  }

  size_t size() const { return view().size(); }

 private:
  void reset() {
    if (mapped_ && map_ != nullptr) ::munmap(map_, map_size_);
    map_ = nullptr;
    map_size_ = 0;
    mapped_ = false;
    fallback_.clear();
  }

  void* map_ = nullptr;
  size_t map_size_ = 0;
  std::string fallback_;
  bool mapped_ = false;
};

}  // namespace deepflow::storage
