#include "server/canonical.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <vector>

namespace deepflow::server {

std::string canonical_span(const agent::Span& span) {
  std::string out;
  out.reserve(256);
  out += std::string(agent::span_kind_name(span.kind));
  out += "|host=" + span.host;
  out += span.from_server_side ? "|server" : "|client";
  out += "|dev=" + span.device_name;
  out += "|pid=" + std::to_string(span.pid);
  out += "|tid=" + std::to_string(span.tid);
  out += "|ptid=" + std::to_string(span.pseudo_thread_id);
  out += "|xreq=" + span.x_request_id;
  out += "|otel=" + span.otel_trace_id;
  out += "|rseq=" + std::to_string(span.req_tcp_seq);
  out += "|sseq=" + std::to_string(span.resp_tcp_seq);
  out += "|t=" + std::to_string(span.start_ts) + ".." +
         std::to_string(span.end_ts);
  out += "|" + std::string(protocols::l7_protocol_name(span.protocol));
  out += "|" + span.method;
  out += "|" + span.endpoint;
  out += "|st=" + std::to_string(span.status_code);
  out += span.ok ? "|ok" : "|err";
  if (span.incomplete) out += "|incomplete";
  if (span.lost_placeholder) out += "|lost-placeholder";
  out += "|" + span.tuple.to_string();
  out += "|vpc=" + std::to_string(span.int_tags.vpc_id);
  out += "|cip=" + std::to_string(span.int_tags.client_ip);
  out += "|sip=" + std::to_string(span.int_tags.server_ip);
  std::vector<std::string> tags;
  tags.reserve(span.tags.size());
  for (const agent::Tag& tag : span.tags) {
    tags.push_back(tag.key + "=" + tag.value);
  }
  std::sort(tags.begin(), tags.end());
  for (const std::string& tag : tags) out += "|" + tag;
  return out;
}

std::string canonical_store_dump(const SpanStore& store) {
  std::vector<std::string> lines;
  for (const u64 id : store.span_list(0, ~TimestampNs{0})) {
    lines.push_back(canonical_span(store.materialize(id)));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string canonical_trace(const AssembledTrace& trace) {
  // Children grouped under parents via the (volatile) ids, then rendered
  // purely structurally.
  std::unordered_map<u64, std::vector<const AssembledSpan*>> children;
  std::vector<const AssembledSpan*> roots;
  for (const AssembledSpan& s : trace.spans) {
    if (s.span.parent_span_id == 0) {
      roots.push_back(&s);
    } else {
      children[s.span.parent_span_id].push_back(&s);
    }
  }
  // Serialize a subtree bottom-up so sibling order can be canonical.
  const std::function<std::string(const AssembledSpan*, size_t)> serialize =
      [&](const AssembledSpan* node, size_t depth) {
        std::string out(depth * 2, ' ');
        out += canonical_span(node->span);
        out += "|rule=" + std::to_string(node->parent_rule);
        out += '\n';
        std::vector<std::string> kids;
        for (const AssembledSpan* child : children[node->span.span_id]) {
          kids.push_back(serialize(child, depth + 1));
        }
        std::sort(kids.begin(), kids.end());
        for (const std::string& kid : kids) out += kid;
        return out;
      };
  std::vector<std::string> trees;
  trees.reserve(roots.size());
  for (const AssembledSpan* root : roots) trees.push_back(serialize(root, 0));
  std::sort(trees.begin(), trees.end());
  std::string out;
  for (const std::string& tree : trees) out += tree;
  return out;
}

}  // namespace deepflow::server
