// Tag encoding strategies (§3.4, Figure 8). In production up to ~100 tags
// relate to a single trace; how they are stored dominates back-end cost.
// Three strategies are implemented, matching the paper's Fig 14 comparison:
//
//   * Direct         — every tag stored as full "key=value" strings.
//   * LowCardinality — per-column dictionary encoding (ClickHouse's
//                      LowCardinality type): strings interned once, rows
//                      store 32-bit references.
//   * Smart          — DeepFlow's two-phase scheme: rows store only integer
//                      VPC/IP tags plus server-resolved integer resource
//                      ids; name strings and self-defined labels are joined
//                      from the resource registry at query time.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "agent/span.h"
#include "common/interner.h"
#include "netsim/resource.h"

namespace deepflow::server {

/// Expand a span's identity into the full human-readable tag set (what the
/// front end ultimately shows): resource names for both endpoints, cloud
/// location, plus the pods' self-defined labels.
std::vector<agent::Tag> materialize_tags(const agent::Span& span,
                                         const netsim::ResourceRegistry& reg);

class TagEncoder {
 public:
  virtual ~TagEncoder() = default;

  virtual std::string_view name() const = 0;

  /// Encode the span's tags into the opaque row blob. May consult the
  /// registry (smart encoding resolves resource ids at ingest).
  virtual std::string encode(const agent::Span& span,
                             const netsim::ResourceRegistry& reg) = 0;

  /// Recover the full tag set from a row blob at query time.
  virtual std::vector<agent::Tag> decode(
      const std::string& blob, const agent::Span& span,
      const netsim::ResourceRegistry& reg) const = 0;

  /// Bytes of auxiliary state (dictionaries etc.) beyond the row blobs.
  virtual u64 auxiliary_bytes() const { return 0; }
};

/// Fig 14's three strategies.
enum class EncoderKind : u8 { kDirect, kLowCardinality, kSmart };

/// `interner` backs the low-cardinality dictionary (handles are dense and
/// assigned in first-intern order, so a private interner reproduces the
/// historical dictionary ids exactly). Passing a shared one — e.g. the
/// SpanBatch string registry — lets the tag dictionary and the ingest
/// batches share string storage. Ignored by the other encoders. nullptr
/// creates a private interner.
std::unique_ptr<TagEncoder> make_encoder(
    EncoderKind kind, std::shared_ptr<StringInterner> interner = nullptr);

}  // namespace deepflow::server
