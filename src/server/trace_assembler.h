// Trace assembling (§3.3.2, Algorithm 1): starting from a user-chosen span,
// iteratively search the store for spans sharing any association attribute
// (systrace id, pseudo-thread id, X-Request-ID, TCP sequence, third-party
// trace id) until the set stops growing, then assign parents using a rule
// table keyed on collection location, start/finish time, span kind and
// message type, and finally sort for display.
//
// Query fast path (behaviour-identical to the naive formulation, which is
// frozen under tests/reference/ for equivalence tests and ablations):
//   * delta search — each iteration's filter carries only keys introduced
//     by spans discovered in the previous iteration; converged attributes
//     are never re-probed, so iteration i costs O(new keys), not O(all).
//   * keyed parent assignment — the span set is sorted by start time once,
//     and every rule looks up candidates in a per-attribute bucket (req/resp
//     TCP seq, systrace, pseudo-thread, X-Request-ID, otel id, host+pid+tid)
//     scanned latest-first with early exit, replacing the O(n²·rules) scan.
#pragma once

#include <atomic>
#include <vector>

#include "server/store_backend.h"

namespace deepflow::server {

struct AssemblerConfig {
  /// Iteration cap of the search loop (paper default: 30).
  u32 max_iterations = 30;
  /// Degradation-aware assembly: when spans were lost in delivery, child
  /// spans whose parent evidence says "an upstream span existed" would
  /// surface as spurious trace roots. With this enabled, such orphaned
  /// roots attach to one synthetic lost-span placeholder per trace
  /// (Span::lost_placeholder, parent rule 17) instead. Off by default:
  /// the fault-free pipeline stays byte-identical to the historical path.
  bool lost_placeholders = false;
};

/// Which parent rule matched a span (0 = root / no parent). The rule table
/// is documented in trace_assembler.cpp.
using ParentRuleId = u8;

/// Rule id reported for orphans adopted by a lost-span placeholder (one
/// past the 16-rule table of §3.3.3).
constexpr ParentRuleId kLostParentRule = 17;

/// Span id carried by synthetic placeholder parents. Far outside both the
/// builder-assigned range and the store's remap range.
constexpr u64 kLostPlaceholderSpanId = ~u64{0};

struct AssembledSpan {
  agent::Span span;        // materialized (tags decoded)
  ParentRuleId parent_rule = 0;
};

struct AssembledTrace {
  std::vector<AssembledSpan> spans;  // sorted by start time
  /// Store searches issued. Delta search skips the final no-new-spans
  /// confirmation probe, so this is <= the naive formulation's count.
  u32 iterations_used = 0;

  /// Convenience: ids of root spans (no parent).
  std::vector<u64> roots() const;
  /// Render an indented tree for terminals (examples use this).
  std::string render() const;
};

/// Assembly-side counters (merged into server::QueryTelemetry). Snapshot is
/// monotonic since construction; assemble() is const and thread-safe, so the
/// counters are relaxed atomics.
struct AssemblerCounters {
  u64 traces = 0;             // assemble() calls that found the start span
  u64 search_iterations = 0;  // store searches across all assemblies
  u64 spans = 0;              // spans placed into assembled traces
  u64 orphan_spans = 0;       // roots re-attached to a lost-span placeholder
  u64 lost_placeholders = 0;  // synthetic placeholder parents fabricated
};

class TraceAssembler {
 public:
  /// `store` is any SpanReadBackend — the single-node SpanStore (the
  /// historical path), or a federated view unioning several stores.
  explicit TraceAssembler(const SpanReadBackend* store,
                          AssemblerConfig config = {})
      : store_(store), config_(config) {}

  /// Run Algorithm 1 from `start_span_id`. Unknown ids yield empty traces.
  /// Thread-safe: any number of assemblies may run concurrently (the store
  /// is only read, under shared shard locks).
  AssembledTrace assemble(u64 start_span_id) const;

  AssemblerCounters counters() const;

 private:
  const SpanReadBackend* store_;
  AssemblerConfig config_;

  mutable std::atomic<u64> traces_{0};
  mutable std::atomic<u64> iterations_{0};
  mutable std::atomic<u64> spans_{0};
  mutable std::atomic<u64> orphans_{0};
  mutable std::atomic<u64> placeholders_{0};
};

}  // namespace deepflow::server
