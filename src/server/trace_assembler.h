// Trace assembling (§3.3.2, Algorithm 1): starting from a user-chosen span,
// iteratively search the store for spans sharing any association attribute
// (systrace id, pseudo-thread id, X-Request-ID, TCP sequence, third-party
// trace id) until the set stops growing, then assign parents using a rule
// table keyed on collection location, start/finish time, span kind and
// message type, and finally sort for display.
#pragma once

#include <vector>

#include "server/span_store.h"

namespace deepflow::server {

struct AssemblerConfig {
  /// Iteration cap of the search loop (paper default: 30).
  u32 max_iterations = 30;
};

/// Which parent rule matched a span (0 = root / no parent). The rule table
/// is documented in trace_assembler.cpp.
using ParentRuleId = u8;

struct AssembledSpan {
  agent::Span span;        // materialized (tags decoded)
  ParentRuleId parent_rule = 0;
};

struct AssembledTrace {
  std::vector<AssembledSpan> spans;  // sorted by start time
  u32 iterations_used = 0;

  /// Convenience: ids of root spans (no parent).
  std::vector<u64> roots() const;
  /// Render an indented tree for terminals (examples use this).
  std::string render() const;
};

class TraceAssembler {
 public:
  explicit TraceAssembler(const SpanStore* store, AssemblerConfig config = {})
      : store_(store), config_(config) {}

  /// Run Algorithm 1 from `start_span_id`. Unknown ids yield empty traces.
  AssembledTrace assemble(u64 start_span_id) const;

 private:
  const SpanStore* store_;
  AssemblerConfig config_;
};

}  // namespace deepflow::server
