// Span storage: the server-side database (ClickHouse stand-in). Rows hold
// the span's fixed columns plus the encoder-produced tag blob; secondary
// indexes cover every association attribute Algorithm 1 filters on.
//
// The store is sharded for parallel ingest: rows are partitioned across N
// shards by a stable hash of the span's association attributes, each shard
// owns its rows, secondary indexes, tag encoder and a striped lock, and the
// query paths (row / search / span_list) merge across shards so the
// Algorithm 1 semantics are unchanged. With the default shard_count of 1
// the layout, ids and encoded blobs are byte-for-byte identical to the
// historical single-shard store, which keeps serial mode deterministic.
//
// Query fast path: a striped id->shard directory routes row()/materialize()
// to exactly one shard instead of probing all of them, searches skip shards
// via systrace-routed placement plus a per-shard key Bloom filter, and
// shard locks are std::shared_mutex so concurrent trace assemblies read in
// parallel; only insert() (and the lazy time-index sort) take exclusive
// locks. Query-side
// work is counted in StoreQueryCounters, the read-path mirror of the ingest
// telemetry.
//
// Thread-safety: insert() may be called concurrently from any number of
// threads (each insert locks exactly one shard). Query methods take shared
// shard locks, so any number of readers interleave with inserts; pointers
// returned by row() stay valid because rows are node-based and never
// mutated after insertion.
// Persistence (write-behind warm tier): with StorageConfig.enabled the
// store copies sealed span batches into columnar segment files (see
// storage/segment_format.h). Rows are never evicted — flushing is pure
// durability, so the row-pointer stability contract is untouched. On
// construction the store recovers the previous lifetime's segments: their
// spans form the warm tier, merged into every query path (search, point
// lookups, span_list) and promoted into a pointer-stable warm arena on
// first touch, so callers see one store regardless of which tier a span
// lives in. Restart cost is therefore bounded loss of the unflushed window.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "agent/span.h"
#include "agent/span_batch.h"
#include "common/governor.h"
#include "server/store_backend.h"
#include "server/tag_encoding.h"
#include "storage/segment_store.h"

namespace deepflow::server {

/// Read-path counters (relaxed atomics snapshotted into QueryTelemetry).
struct StoreQueryCounters {
  u64 searches = 0;      // search() calls
  u64 search_keys = 0;   // filter keys probed across those calls
  u64 search_hits = 0;   // span ids returned
  u64 rows_touched = 0;  // row() + materialize() lookups
  u64 shard_locks = 0;   // query-side shard acquisitions (lock-wait proxy)
  u64 tag_cache_hits = 0;  // batched materializations served from the cache
};

class SpanStore : public SpanReadBackend {
 public:
  /// Sentinel SpanRow::shard value for rows promoted out of the warm tier.
  static constexpr u32 kWarmShard = ~u32{0};

  /// `shard_count` 0/1 selects the serial single-shard layout. With
  /// `storage.enabled`, segments under `storage.dir` are recovered into the
  /// warm tier before the first insert. A non-null `governor` receives
  /// push-based byte accounting: every stored row lands in kHotStore, and
  /// (with storage on) in the kUnflushedStore durability overlay until its
  /// segment is written.
  SpanStore(EncoderKind encoder_kind, const netsim::ResourceRegistry* registry,
            size_t shard_count = 1, storage::StorageConfig storage = {},
            ResourceGovernor* governor = nullptr);
  ~SpanStore() override;

  /// Encode tags and store the span. Returns the span id. Thread-safe.
  u64 insert(agent::Span span);

  /// Columnar-batch append: materialize and store every row of `batch`
  /// whose `skip` byte is zero (the server passes dedup verdicts). Each
  /// span goes through exactly the insert() logic, but the shard lock is
  /// held across runs of consecutive same-shard spans instead of being
  /// retaken per span (a single-shard store locks once per batch). Returns
  /// the number of spans stored. Thread-safe.
  size_t insert_batch(const agent::SpanBatch& batch,
                      const std::vector<u8>& skip);

  /// Shard-routed point lookup: the id directory names the owning shard, so
  /// exactly one shard lock is taken (nullptr on unknown ids without
  /// touching any shard).
  const SpanRow* row(u64 span_id) const override;

  /// Materialize a span with its full decoded tag set (query-time join).
  agent::Span materialize(u64 span_id) const;

  /// Batch materialization for trace assembly: one shard lock per shard
  /// involved (not per id), and decoded tag sets are cached across the
  /// batch — tags are a pure function of (blob, client ip, server ip), and
  /// the spans of one trace share few distinct endpoint pairs. Output order
  /// matches `span_ids`; unknown ids yield empty spans (same as
  /// materialize). Byte-identical to per-id materialize calls.
  std::vector<agent::Span> materialize_many(
      const std::vector<u64>& span_ids) const;

  /// Row-pointer flavour of materialize_many for callers that already hold
  /// rows from search_rows()/row(): skips the id directory entirely.
  /// nullptr entries yield empty spans.
  std::vector<agent::Span> materialize_rows(
      const std::vector<const SpanRow*>& rows) const override;

  /// All span ids matching any filter attribute (Algorithm 1's
  /// search_database), merged across shards and returned in ascending id
  /// order (deterministic for callers regardless of shard/hash layout).
  /// Complexity: proportional to matches, via per-shard indexes.
  std::vector<u64> search(const SearchFilter& filter) const;

  /// search() returning the matching rows themselves (ascending span id).
  /// Rows are node-based and immutable after insert, so the pointers stay
  /// valid for the caller's lifetime; the query fast path uses this to
  /// avoid one directory + row lookup per hit after every search.
  std::vector<const SpanRow*> search_rows(
      const SearchFilter& filter) const override;

  /// Span ids whose start timestamp falls in [from, to], time-ordered,
  /// capped at `limit` (front ends page through span lists).
  std::vector<u64> span_list(TimestampNs from, TimestampNs to,
                             size_t limit = ~size_t{0}) const;

  size_t row_count() const;
  size_t shard_count() const { return shards_.size(); }
  /// Per-shard row counts (ingest telemetry / balance diagnostics).
  std::vector<size_t> shard_row_counts() const;
  /// Bytes consumed by row blobs (the Fig 14 "disk" proxy).
  u64 blob_bytes() const;
  /// Bytes of encoder auxiliary state (dictionaries; Fig 14 "memory" part).
  u64 encoder_aux_bytes() const;
  std::string_view encoder_name() const;

  /// Snapshot of the query-path counters (monotonic since construction).
  StoreQueryCounters query_counters() const;

  // ---- Persistence (no-ops unless constructed with storage.enabled). ----

  bool storage_enabled() const { return storage_ != nullptr; }
  /// Flush every unflushed span to segments regardless of batch size.
  /// Returns spans written. Thread-safe.
  size_t flush_storage();
  /// Flush only shards whose unflushed window reached segment_spans (the
  /// background-flush tick). Returns spans written.
  size_t flush_sealed();
  /// Remove `ids` from the pending (unflushed) segment-flush window so they
  /// never reach disk — the streaming tail sampler's retention verdict
  /// applied to durability. Best-effort: ids already flushed, unknown, or
  /// recovered are silently skipped (rows stay resident in the hot tier —
  /// secondary indexes hold stable row pointers, so in-RAM rows are never
  /// erased; RAM reclamation is the hot-tier ladder's job, not this one's).
  /// Returns how many ids were actually excluded. Thread-safe.
  size_t discard_unflushed(const std::vector<u64>& ids);
  /// Merge small segment files (both classes). Thread-safe.
  void compact_storage();
  /// Storage-tier counters (zeroed struct when storage is off).
  storage::StorageTelemetry storage_telemetry() const;
  /// Span ids recovered into the warm tier at construction (dedup priming).
  const std::unordered_set<u64>& recovered_ids() const { return warm_ids_; }
  /// Materialized copies of every recovered span (metrics re-fold on
  /// restart). Empty when storage is off.
  std::vector<agent::Span> recovered_spans() const;

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::unique_ptr<TagEncoder> encoder;
    std::unordered_map<u64, SpanRow> rows;
    u64 blob_bytes = 0;
    // Atomic: multi-shard inserts allocate remap ids before taking the
    // shard lock (the directory claim happens first).
    std::atomic<u64> remap_counter{0};

    // Bloom filter over every indexed (attribute kind, key) pair, so a
    // fan-out search can skip the hash probes — and the lock — on shards
    // that cannot hold a key. 512K bits (64 KiB) per shard, two probe
    // bits; false positives just fall through to the index lookup, and
    // false negatives cannot happen (every indexed key is added). Atomic
    // words: searches read the filter without the shard lock, which at
    // worst misses a key inserted concurrently — same snapshot semantics
    // as locking before the insert. Only populated for multi-shard stores
    // (enabled flag): a single shard has no fan-out to avoid.
    static constexpr size_t kBloomWords = 8192;  // 8192 * 64 = 512K bits
    bool bloom_enabled = false;
    std::array<std::atomic<u64>, kBloomWords> bloom{};

    void bloom_add(u64 hash) {
      if (!bloom_enabled) return;
      bloom[(hash & (kBloomWords * 64 - 1)) >> 6].fetch_or(
          u64{1} << (hash & 63), std::memory_order_relaxed);
      const u64 h2 = hash >> 32;
      bloom[(h2 & (kBloomWords * 64 - 1)) >> 6].fetch_or(
          u64{1} << (h2 & 63), std::memory_order_relaxed);
    }
    bool bloom_may_contain(u64 hash) const {
      if (!bloom_enabled) return true;
      if ((bloom[(hash & (kBloomWords * 64 - 1)) >> 6].load(
               std::memory_order_relaxed) &
           (u64{1} << (hash & 63))) == 0) {
        return false;
      }
      const u64 h2 = hash >> 32;
      return (bloom[(h2 & (kBloomWords * 64 - 1)) >> 6].load(
                  std::memory_order_relaxed) &
              (u64{1} << (h2 & 63))) != 0;
    }

    // Secondary indexes over association attributes. Values are row
    // pointers (stable: rows is node-based and rows are never erased), so a
    // search hit needs no follow-up id lookup.
    std::unordered_map<SystraceId, std::vector<const SpanRow*>> by_systrace;
    std::unordered_map<u64, std::vector<const SpanRow*>> by_pseudo_thread;
    std::unordered_map<std::string, std::vector<const SpanRow*>> by_x_request_id;
    std::unordered_map<TcpSeq, std::vector<const SpanRow*>> by_tcp_seq;
    std::unordered_map<std::string, std::vector<const SpanRow*>> by_otel_id;
    // Time index: (start_ts, id), kept sorted lazily.
    mutable std::vector<std::pair<TimestampNs, u64>> by_time;
    mutable bool time_sorted = true;

    // Span ids inserted since the last flush (persistence only; guarded by
    // `mu` like the rows themselves).
    std::vector<u64> unflushed;

    // Decoded-tag cache for batched materialization: (client ip, server ip,
    // blob) -> immutable tag set. Tags are a query-time join against the
    // resource registry, so entries are valid exactly while the registry
    // version is unchanged; the whole cache is dropped on a version bump.
    // Own lock (always acquired after `mu` when both are held).
    // Transparent hash/eq: probes take a string_view over a reused buffer,
    // so a cache hit allocates nothing.
    struct TagKeyHash {
      using is_transparent = void;
      size_t operator()(std::string_view s) const {
        return std::hash<std::string_view>{}(s);
      }
    };
    mutable std::shared_mutex tag_cache_mu;
    mutable std::unordered_map<std::string,
                               std::shared_ptr<const std::vector<agent::Tag>>,
                               TagKeyHash, std::equal_to<>>
        tag_cache;
    mutable u64 tag_cache_version = 0;
  };

  /// One stripe of the id->shard directory. Striped like the shards so
  /// parallel ingest does not serialize on a single directory lock; only
  /// maintained for multi-shard stores (single-shard routing is trivial).
  struct DirectoryStripe {
    mutable std::shared_mutex mu;
    std::unordered_map<u64, u32> shard_of;
  };

  size_t shard_index(const agent::Span& span) const;
  /// Owning shard of an id via the directory; nullptr when unknown.
  const Shard* locate(u64 span_id) const;
  /// Record `id -> shard` in the directory; false if another span already
  /// claimed the id (the uniqueness arbiter for multi-shard stores, where
  /// content-hash placement can put colliding ids on different shards).
  bool claim_id(u64 id, size_t shard_idx);
  /// Multi-shard id claim/remap (the pre-lock half of insert()); no-op for
  /// single-shard stores, whose remap check needs the shard lock.
  void prepare_span_id(agent::Span& span, size_t idx);
  /// The under-lock half of insert(): encode, emplace, index, and stage for
  /// flush. Caller holds shards_[idx]->mu exclusively. Returns the stored
  /// id and whether the caller must seal (flush_shard) after unlocking.
  std::pair<u64, bool> insert_locked(size_t idx, agent::Span&& span);
  /// Index an inserted row (must already live in shard.rows: the secondary
  /// indexes hold a pointer to it).
  static void index_span(Shard& shard, const SpanRow& row, u64 id);

  /// Pointer-stable arena for rows promoted out of serving segments. A
  /// warm span is decoded once, parked here (shard = kWarmShard), and every
  /// later query sees the same SpanRow* — the disk tier honours the same
  /// pointer contract as the hot shards. Tag sets of segment-dict rows ride
  /// alongside (SpanRow carries only a blob).
  struct WarmTier {
    mutable std::shared_mutex mu;
    std::deque<SpanRow> rows;  // deque: stable addresses under push_back
    std::unordered_map<u64, const SpanRow*> by_id;
    std::unordered_map<u64, std::shared_ptr<const std::vector<agent::Tag>>>
        tags;
  };

  /// The promoted row for a warm id, loading it from its segment on first
  /// touch; nullptr when no serving segment holds the id.
  const SpanRow* warm_row(u64 span_id) const;
  /// Batch flavour: fill the nullptr entries of `rows` whose id lives in the
  /// warm tier, decoding each touched segment once (not once per id).
  void warm_fill(const std::vector<u64>& span_ids,
                 std::vector<const SpanRow*>& rows) const;
  const SpanRow* promote(storage::SegmentRow&& seg_row) const;
  /// Decoded tag set for a warm row (promotion-time set, or a stateless
  /// blob decode for encoder-blob modes).
  std::vector<agent::Tag> warm_tags(const SpanRow& row) const;
  /// Append warm matches for every filter key to `out` (promoting them).
  void warm_search(const SearchFilter& filter,
                   std::vector<const SpanRow*>& out) const;
  /// Flush up to segment_spans-sized batches out of one shard; `force`
  /// also writes a final short segment. Returns spans written.
  size_t flush_shard(size_t idx, bool force);

  const netsim::ResourceRegistry* registry_;
  ResourceGovernor* governor_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<DirectoryStripe>> directory_;  // empty if 1 shard

  // ---- Persistence state (null/empty when storage is off). ----
  EncoderKind encoder_kind_;
  storage::TagColumnMode tag_mode_ = storage::TagColumnMode::kEncoderBlob;
  std::unique_ptr<storage::SegmentStore> storage_;
  std::unique_ptr<WarmTier> warm_;
  /// Stateless decoder for warm encoder-blob rows (direct/smart blobs are
  /// self-contained; low-cardinality rows use segment-dict tags instead).
  std::unique_ptr<TagEncoder> warm_decoder_;
  /// Ids recovered into the warm tier (insert-collision exclusion + dedup
  /// priming). Immutable after construction.
  std::unordered_set<u64> warm_ids_;
  // Background flush thread (storage.background_flush).
  std::thread flush_thread_;
  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  bool stop_flush_ = false;

  // Query-path counters (mutable: query methods are logically const).
  mutable std::atomic<u64> searches_{0};
  mutable std::atomic<u64> search_keys_{0};
  mutable std::atomic<u64> search_hits_{0};
  mutable std::atomic<u64> rows_touched_{0};
  mutable std::atomic<u64> shard_locks_{0};
  mutable std::atomic<u64> tag_cache_hits_{0};
};

}  // namespace deepflow::server
