// Span storage: the server-side database (ClickHouse stand-in). Rows hold
// the span's fixed columns plus the encoder-produced tag blob; secondary
// indexes cover every association attribute Algorithm 1 filters on.
//
// The store is sharded for parallel ingest: rows are partitioned across N
// shards by a stable hash of the span's association attributes, each shard
// owns its rows, secondary indexes, tag encoder and a striped lock, and the
// query paths (row / search / span_list) merge across shards so the
// Algorithm 1 semantics are unchanged. With the default shard_count of 1
// the layout, ids and encoded blobs are byte-for-byte identical to the
// historical single-shard store, which keeps serial mode deterministic.
//
// Thread-safety: insert() may be called concurrently from any number of
// threads (each insert locks exactly one shard). Query methods also take
// the shard locks, so they are safe to interleave with inserts; pointers
// returned by row() stay valid because rows are node-based and never
// mutated after insertion.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "agent/span.h"
#include "server/tag_encoding.h"

namespace deepflow::server {

/// One stored row: span columns + encoded tags.
struct SpanRow {
  agent::Span span;       // tags vector left empty; blob holds encodings
  std::string tag_blob;
};

/// Filter for the iterative span search (Algorithm 1, lines 5-11): a span
/// matches when ANY of its association attributes appears in the filter.
struct SearchFilter {
  std::unordered_set<SystraceId> systrace_ids;
  std::unordered_set<u64> pseudo_thread_keys;  // hash(host, pid, ptid)
  std::unordered_set<std::string> x_request_ids;
  std::unordered_set<TcpSeq> tcp_seqs;
  std::unordered_set<std::string> otel_trace_ids;

  bool empty() const {
    return systrace_ids.empty() && pseudo_thread_keys.empty() &&
           x_request_ids.empty() && tcp_seqs.empty() &&
           otel_trace_ids.empty();
  }
};

/// Key combining host, pid and pseudo-thread id — pseudo-thread ids are only
/// unique per kernel, so cross-host aliasing must be excluded.
u64 pseudo_thread_key(const agent::Span& span);

class SpanStore {
 public:
  /// `shard_count` 0/1 selects the serial single-shard layout.
  SpanStore(EncoderKind encoder_kind, const netsim::ResourceRegistry* registry,
            size_t shard_count = 1);

  /// Encode tags and store the span. Returns the span id. Thread-safe.
  u64 insert(agent::Span span);

  const SpanRow* row(u64 span_id) const;

  /// Materialize a span with its full decoded tag set (query-time join).
  agent::Span materialize(u64 span_id) const;

  /// All span ids matching any filter attribute (Algorithm 1's
  /// search_database), merged across shards. Complexity: proportional to
  /// matches, via per-shard indexes.
  std::vector<u64> search(const SearchFilter& filter) const;

  /// Span ids whose start timestamp falls in [from, to], time-ordered,
  /// capped at `limit` (front ends page through span lists).
  std::vector<u64> span_list(TimestampNs from, TimestampNs to,
                             size_t limit = ~size_t{0}) const;

  size_t row_count() const;
  size_t shard_count() const { return shards_.size(); }
  /// Per-shard row counts (ingest telemetry / balance diagnostics).
  std::vector<size_t> shard_row_counts() const;
  /// Bytes consumed by row blobs (the Fig 14 "disk" proxy).
  u64 blob_bytes() const;
  /// Bytes of encoder auxiliary state (dictionaries; Fig 14 "memory" part).
  u64 encoder_aux_bytes() const;
  std::string_view encoder_name() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unique_ptr<TagEncoder> encoder;
    std::unordered_map<u64, SpanRow> rows;
    u64 blob_bytes = 0;
    u64 remap_counter = 0;

    // Secondary indexes over association attributes.
    std::unordered_map<SystraceId, std::vector<u64>> by_systrace;
    std::unordered_map<u64, std::vector<u64>> by_pseudo_thread;
    std::unordered_map<std::string, std::vector<u64>> by_x_request_id;
    std::unordered_map<TcpSeq, std::vector<u64>> by_tcp_seq;
    std::unordered_map<std::string, std::vector<u64>> by_otel_id;
    // Time index: (start_ts, id), kept sorted lazily.
    mutable std::vector<std::pair<TimestampNs, u64>> by_time;
    mutable bool time_sorted = true;
  };

  size_t shard_index(const agent::Span& span) const;
  static void index_span(Shard& shard, const agent::Span& span, u64 id);

  const netsim::ResourceRegistry* registry_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace deepflow::server
