// Span storage: the server-side database (ClickHouse stand-in). Rows hold
// the span's fixed columns plus the encoder-produced tag blob; secondary
// indexes cover every association attribute Algorithm 1 filters on.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "agent/span.h"
#include "server/tag_encoding.h"

namespace deepflow::server {

/// One stored row: span columns + encoded tags.
struct SpanRow {
  agent::Span span;       // tags vector left empty; blob holds encodings
  std::string tag_blob;
};

/// Filter for the iterative span search (Algorithm 1, lines 5-11): a span
/// matches when ANY of its association attributes appears in the filter.
struct SearchFilter {
  std::unordered_set<SystraceId> systrace_ids;
  std::unordered_set<u64> pseudo_thread_keys;  // hash(host, pid, ptid)
  std::unordered_set<std::string> x_request_ids;
  std::unordered_set<TcpSeq> tcp_seqs;
  std::unordered_set<std::string> otel_trace_ids;

  bool empty() const {
    return systrace_ids.empty() && pseudo_thread_keys.empty() &&
           x_request_ids.empty() && tcp_seqs.empty() &&
           otel_trace_ids.empty();
  }
};

/// Key combining host, pid and pseudo-thread id — pseudo-thread ids are only
/// unique per kernel, so cross-host aliasing must be excluded.
u64 pseudo_thread_key(const agent::Span& span);

class SpanStore {
 public:
  SpanStore(EncoderKind encoder_kind, const netsim::ResourceRegistry* registry);

  /// Encode tags and store the span. Returns the span id.
  u64 insert(agent::Span span);

  const SpanRow* row(u64 span_id) const;

  /// Materialize a span with its full decoded tag set (query-time join).
  agent::Span materialize(u64 span_id) const;

  /// All span ids matching any filter attribute (Algorithm 1's
  /// search_database). Complexity: proportional to matches, via indexes.
  std::vector<u64> search(const SearchFilter& filter) const;

  /// Span ids whose start timestamp falls in [from, to], time-ordered,
  /// capped at `limit` (front ends page through span lists).
  std::vector<u64> span_list(TimestampNs from, TimestampNs to,
                             size_t limit = ~size_t{0}) const;

  size_t row_count() const { return rows_.size(); }
  /// Bytes consumed by row blobs (the Fig 14 "disk" proxy).
  u64 blob_bytes() const { return blob_bytes_; }
  /// Bytes of encoder auxiliary state (dictionaries; Fig 14 "memory" part).
  u64 encoder_aux_bytes() const { return encoder_->auxiliary_bytes(); }
  std::string_view encoder_name() const { return encoder_->name(); }

 private:
  void index_span(const agent::Span& span, u64 id);

  std::unique_ptr<TagEncoder> encoder_;
  const netsim::ResourceRegistry* registry_;
  std::unordered_map<u64, SpanRow> rows_;
  u64 blob_bytes_ = 0;
  u64 remap_counter_ = 0;

  // Secondary indexes over association attributes.
  std::unordered_map<SystraceId, std::vector<u64>> by_systrace_;
  std::unordered_map<u64, std::vector<u64>> by_pseudo_thread_;
  std::unordered_map<std::string, std::vector<u64>> by_x_request_id_;
  std::unordered_map<TcpSeq, std::vector<u64>> by_tcp_seq_;
  std::unordered_map<std::string, std::vector<u64>> by_otel_id_;
  // Time index: (start_ts, id), kept sorted lazily.
  mutable std::vector<std::pair<TimestampNs, u64>> by_time_;
  mutable bool time_sorted_ = true;
};

}  // namespace deepflow::server
