// The DeepFlow Server (Figure 4): a cluster-level process that stores spans
// from every agent, integrates third-party spans and network metrics, and
// answers user queries — span lists by time range and assembled traces.
#pragma once

#include <unordered_map>
#include <vector>

#include "agent/session_aggregator.h"
#include "agent/span_builder.h"
#include "netsim/fabric.h"
#include "server/span_store.h"
#include "server/trace_assembler.h"

namespace deepflow::server {

struct ServerConfig {
  EncoderKind encoder = EncoderKind::kSmart;
  AssemblerConfig assembler;
  /// Second-chance aggregation of messages that fell out of the agents'
  /// windows (§3.3.1): same technique, much wider window.
  agent::SessionAggregatorConfig reaggregation{
      .slot_ns = 600 * kSecond, .slot_count = 3,
      .pairing_slack_ns = 10 * kSecond};
};

/// Snapshot of network metrics correlated to a flow (tag-based correlation,
/// §3.4: traces and metrics share resource/flow tags, so a trace query can
/// pull the related metrics in one step — the §4.1.3 debugging workflow).
struct FlowMetricsRecord {
  FiveTuple tuple;
  netsim::FlowMetrics metrics;
};

class DeepFlowServer {
 public:
  DeepFlowServer(const netsim::ResourceRegistry* registry,
                 ServerConfig config = {});

  /// Agent transport endpoint: store one span.
  void ingest(agent::Span&& span);

  /// Third-party (OpenTelemetry-style) span integration.
  void ingest_third_party(agent::Span&& span);

  /// Agent upload of an out-of-window message: re-aggregated server-side
  /// with the same session technique over a much wider window.
  void ingest_straggler(const std::string& host, agent::MessageData&& message);

  /// Flush the re-aggregation window; pairs that never completed become
  /// incomplete spans. Call once after every agent has finished.
  void finalize();

  u64 reaggregated_sessions() const {
    return reaggregator_.matched_sessions();
  }

  /// Metric integration: flow-level counters keyed by canonical tuple and
  /// device-level counters keyed by device name.
  void ingest_flow_metrics(const FiveTuple& tuple,
                           const netsim::FlowMetrics& metrics);
  void ingest_device_metrics(const std::string& device,
                             const netsim::DeviceMetrics& metrics);

  // -- Queries. -------------------------------------------------------------

  /// Spans starting within [from, to], materialized, time-ordered, capped
  /// at `limit` rows (list views are paginated in the front end).
  std::vector<agent::Span> query_span_list(TimestampNs from, TimestampNs to,
                                           size_t limit = ~size_t{0}) const;

  /// Assemble the full trace containing `span_id` (Algorithm 1).
  AssembledTrace query_trace(u64 span_id) const;

  /// Metrics correlated with a span via its flow tags.
  const netsim::FlowMetrics* metrics_for(const agent::Span& span) const;
  const netsim::DeviceMetrics* device_metrics(const std::string& name) const;

  /// Span ids matching a predicate (front-end style filtering: slow spans,
  /// error spans, specific endpoints...).
  template <typename Pred>
  std::vector<u64> find_spans(Pred&& predicate) const {
    std::vector<u64> out;
    for (const u64 id : store_.span_list(0, ~TimestampNs{0})) {
      if (predicate(store_.row(id)->span)) out.push_back(id);
    }
    return out;
  }

  const SpanStore& store() const { return store_; }
  u64 ingested_spans() const { return ingested_; }

 private:
  void emit_reaggregated(const std::string& host, agent::Session&& session);

  const netsim::ResourceRegistry* registry_;
  SpanStore store_;
  TraceAssembler assembler_;
  agent::SessionAggregator reaggregator_;
  std::unordered_map<std::string, agent::SpanBuilder> builders_;
  std::unordered_map<u64, std::string> straggler_hosts_;  // flow key -> host
  std::unordered_map<FiveTuple, netsim::FlowMetrics, FiveTupleHash>
      flow_metrics_;
  std::unordered_map<std::string, netsim::DeviceMetrics> device_metrics_;
  u64 ingested_ = 0;
};

}  // namespace deepflow::server
