// The DeepFlow Server (Figure 4): a cluster-level process that stores spans
// from every agent, integrates third-party spans and network metrics, and
// answers user queries — span lists by time range and assembled traces.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "agent/agent.h"
#include "agent/session_aggregator.h"
#include "agent/span_builder.h"
#include "agent/transport.h"
#include "common/governor.h"
#include "common/interner.h"
#include "metrics/aggregator.h"
#include "netsim/fabric.h"
#include "server/span_store.h"
#include "server/streaming_hook.h"
#include "server/trace_assembler.h"

namespace deepflow::server {

struct ServerConfig {
  EncoderKind encoder = EncoderKind::kSmart;
  AssemblerConfig assembler;
  /// Span-store shard count. 1 (default) is the serial, byte-for-byte
  /// deterministic layout; N > 1 enables striped-lock parallel ingest.
  size_t store_shards = 1;
  /// Second-chance aggregation of messages that fell out of the agents'
  /// windows (§3.3.1): same technique, much wider window.
  agent::SessionAggregatorConfig reaggregation{
      .slot_ns = 600 * kSecond, .slot_count = 3,
      .pairing_slack_ns = 10 * kSecond};
  /// Streaming metrics plane (AutoMetrics): every deduplicated span also
  /// folds into the RED/service-map aggregator on the ingest path.
  metrics::MetricsConfig metrics;
  /// Persistent segment store (off by default): sealed span batches are
  /// flushed to columnar segment files and recovered on restart — see
  /// storage/segment_store.h for the knobs.
  storage::StorageConfig storage;
  /// Overload control plane: byte budgets plus the adaptive degradation
  /// ladder (seal -> downsample -> shed -> refuse). Disabled by default;
  /// ingest is then byte-identical to pre-governor builds.
  GovernorConfig governor;
  /// Dedup seen-set rotation window. Two generations are kept, keyed to the
  /// ingest watermark (max span start_ts seen), so the set stays bounded
  /// under arbitrarily long replays while redeliveries within ~2 windows of
  /// the watermark — the 60 s disorder bound every transport honours — are
  /// still filtered. 0 restores the legacy unbounded set.
  DurationNs dedup_window_ns = 60 * kSecond;
  /// Streaming trace assembly + trace-level tail sampling (off by default;
  /// query-time batch assembly then remains the only path). The server only
  /// carries the config and the hook seam — the assembler itself lives in
  /// src/assembly and is attached by the deployment (attach_streaming).
  StreamingAssemblyConfig streaming;
};

/// Snapshot of network metrics correlated to a flow (tag-based correlation,
/// §3.4: traces and metrics share resource/flow tags, so a trace query can
/// pull the related metrics in one step — the §4.1.3 debugging workflow).
struct FlowMetricsRecord {
  FiveTuple tuple;
  netsim::FlowMetrics metrics;
};

/// Ingest-path self-telemetry (span arrival rate, batching behaviour,
/// agent-side drain pressure, shard balance). The production system exports
/// these as its own metrics; here they feed the scaling bench and tests.
struct IngestTelemetry {
  u64 spans = 0;            // total spans stored (agent + third-party)
  u64 batches = 0;          // ingest_batch() calls
  u64 batched_spans = 0;    // spans that arrived via batches
  u64 max_batch_spans = 0;  // largest single batch
  // Columnar (SpanBatch) ingest path — counted separately from the
  // row-batch path so existing batching assertions stay meaningful.
  u64 span_batches = 0;        // ingest_span_batch() calls
  u64 span_batch_spans = 0;    // spans that arrived in columnar batches
  u64 max_span_batch_spans = 0;  // largest single columnar batch
  double spans_per_sec = 0; // over the first..last ingest wall-clock window
  /// Redelivered spans filtered by the idempotent-ingest seen-set. An
  /// at-least-once transport (retries, duplicate faults) plus this counter
  /// nets out to exactly-once storage.
  u64 duplicate_spans = 0;
  /// Live dedup seen-set entries across both generations of every stripe
  /// (bounded by the rotation window, not by stream length).
  u64 dedup_entries = 0;
  // Accumulated from agents (note_agent_drain): parallel-drain behaviour.
  u64 agent_drain_batches = 0;   // staging batches flushed by drain workers
  u64 agent_drain_records = 0;   // records carried by those batches
  u64 agent_staging_waits = 0;   // producer stalls on full staging rings
  u64 agent_perf_lost = 0;       // perf-ring overflow drops at the agents
  /// Per-CPU perf loss summed across agents (natural + fault-injected);
  /// exposes shard-imbalanced loss the scalar sum hides.
  std::vector<u64> agent_perf_lost_per_cpu;
  /// Exit records the collectors dropped because the enter map overflowed.
  u64 agent_enter_map_drops = 0;
  std::vector<size_t> shard_rows;  // per-shard row counts
};

/// Query-path self-telemetry, the read-side mirror of IngestTelemetry:
/// store searches and the keys they probed, rows and shard locks touched
/// (the lock-wait proxy — with shard routing each point lookup acquires
/// exactly one shard), and per-assembly delta-search iteration counts.
struct QueryTelemetry {
  u64 searches = 0;            // SpanStore::search calls
  u64 search_keys = 0;         // filter keys probed across those calls
  u64 search_hits = 0;         // span ids returned by searches
  u64 rows_touched = 0;        // row()/materialize() point lookups
  u64 shard_locks = 0;         // query-side shard acquisitions (lock-wait proxy)
  u64 tag_cache_hits = 0;      // batched materializations served from cache
  u64 traces_assembled = 0;    // completed trace assemblies
  u64 assembly_iterations = 0; // delta-search iterations across assemblies
  u64 assembled_spans = 0;     // spans placed into assembled traces
  // Degradation-aware assembly (zero unless AssemblerConfig::lost_placeholders):
  u64 orphan_spans = 0;        // roots re-attached to lost-span placeholders
  u64 lost_placeholders = 0;   // synthetic placeholder parents fabricated
  // Federation completeness (all zero on a single server; the cluster layer
  // fills them when scatter-gather queries run against a ring with dead
  // nodes — see cluster/federation.h). Partitions are agent routing keys.
  u64 fanout_nodes = 0;          // live node stores consulted by scatters
  u64 partitions_total = 0;      // partitions known to the ring
  u64 partitions_primary = 0;    // partitions served by their home node
  u64 partitions_failover = 0;   // partitions served by a replica (degraded)
  u64 partitions_unavailable = 0;  // partitions with no live holder
  // Streaming assembly query plane (zero unless a hook is attached): trace
  // queries served from the materialized completed-trace index vs falling
  // back to batch assembly (still-open window, or a dropped trace).
  u64 streaming_index_hits = 0;
  u64 streaming_fallback_assemblies = 0;
};

class DeepFlowServer {
 public:
  DeepFlowServer(const netsim::ResourceRegistry* registry,
                 ServerConfig config = {});

  /// Agent transport endpoint: store one span. Thread-safe — concurrent
  /// senders stripe across the store's shards.
  void ingest(agent::Span&& span);

  /// Batched transport endpoint: store a flight of spans in one call
  /// (records batch-size telemetry). Thread-safe.
  void ingest_batch(std::vector<agent::Span>&& spans);

  /// Columnar transport endpoint: consume one SpanBatch flight in place.
  /// Dedup reads the id column, the metrics fold reads the integer columns,
  /// and only rows that clear dedup are materialized — at the store
  /// boundary, where a row is built anyway. The caller keeps ownership of
  /// the (cleared) batch and reuses it. Thread-safe like ingest().
  void ingest_span_batch(agent::SpanBatch& batch);

  /// Governed batch admission for VerdictBatchSink transports. Below
  /// kRefuse the whole batch is consumed (like ingest_batch) and the
  /// verdict is kAccepted. At kRefuse, anomalous spans are still admitted
  /// individually — idempotent dedup makes the sender's full-batch retry
  /// safe — and the batch bounces with kOverloaded plus a retry-after hint
  /// so backpressure propagates agent-ward; once the budget is fully
  /// exhausted even anomalies bounce. The vector is left intact on refusal.
  agent::SinkVerdict try_ingest_batch(std::vector<agent::Span>& spans);

  /// Third-party (OpenTelemetry-style) span integration.
  void ingest_third_party(agent::Span&& span);

  /// Agent upload of an out-of-window message: re-aggregated server-side
  /// with the same session technique over a much wider window. NOT
  /// thread-safe (single transport thread, like the agents' uploads).
  void ingest_straggler(const std::string& host, agent::MessageData&& message);

  /// Flush the re-aggregation window; pairs that never completed become
  /// incomplete spans. Call once after every agent has finished.
  void finalize();

  u64 reaggregated_sessions() const {
    return reaggregator_.matched_sessions();
  }

  /// Metric integration: flow-level counters keyed by canonical tuple and
  /// device-level counters keyed by device name.
  void ingest_flow_metrics(const FiveTuple& tuple,
                           const netsim::FlowMetrics& metrics);
  void ingest_device_metrics(const std::string& device,
                             const netsim::DeviceMetrics& metrics);

  /// Fold one agent's drain-pipeline counters into the ingest telemetry
  /// (called by the deployment when agents finish).
  void note_agent_drain(const agent::AgentStats& stats);

  /// Observer called for every span that clears ingest dedup, before the
  /// store takes ownership (the federation layer folds spans into
  /// per-partition aggregators here). Install once, before any traffic;
  /// the observer must be thread-safe like the ingest path itself.
  using IngestObserver = std::function<void(const agent::Span&)>;
  void set_ingest_observer(IngestObserver observer) {
    ingest_observer_ = std::move(observer);
  }

  /// Snapshot of the ingest-path self-telemetry.
  IngestTelemetry ingest_telemetry() const;

  // -- Queries. -------------------------------------------------------------

  /// Spans starting within [from, to], materialized, time-ordered, capped
  /// at `limit` rows (list views are paginated in the front end).
  std::vector<agent::Span> query_span_list(TimestampNs from, TimestampNs to,
                                           size_t limit = ~size_t{0}) const;

  /// Assemble the full trace containing `span_id` (Algorithm 1).
  AssembledTrace query_trace(u64 span_id) const;

  /// Batch assembly service: assemble one trace per id. With `workers` <= 1
  /// the assemblies run serially on the caller's thread; otherwise
  /// independent assemblies fan out across a ThreadPool of that size.
  /// Results are positionally aligned with `span_ids` and byte-identical to
  /// the serial path — assembly only reads the store (shared shard locks),
  /// so parallel assemblies neither serialize nor perturb each other.
  std::vector<AssembledTrace> assemble_traces(const std::vector<u64>& span_ids,
                                              size_t workers = 1) const;

  /// Snapshot of the query-path self-telemetry.
  QueryTelemetry query_telemetry() const;

  // -- Metrics plane (zero-code AutoMetrics). -------------------------------

  /// Per-service RED time-series over [from, to] at (approximately) the
  /// requested bucket width.
  metrics::MetricsSeries query_metrics(const std::string& service,
                                       TimestampNs from, TimestampNs to,
                                       DurationNs resolution = kSecond) const {
    return metrics_.query_metrics(service, from, to, resolution);
  }

  /// The RED-annotated service map over [from, to] (all-time by default).
  metrics::ServiceMap service_map(TimestampNs from = 0,
                                  TimestampNs to = ~TimestampNs{0}) const {
    return metrics_.service_map(from, to);
  }

  /// Direct access to the aggregator (edge queries, canonical dumps,
  /// telemetry).
  const metrics::MetricsAggregator& metrics_aggregator() const {
    return metrics_;
  }

  /// Prometheus-style text exposition: every aggregator family plus the
  /// server's own IngestTelemetry/QueryTelemetry self-metrics.
  std::string prometheus_metrics() const;

  /// Metrics correlated with a span via its flow tags.
  const netsim::FlowMetrics* metrics_for(const agent::Span& span) const;
  const netsim::DeviceMetrics* device_metrics(const std::string& name) const;

  /// Span ids matching a predicate (front-end style filtering: slow spans,
  /// error spans, specific endpoints...).
  template <typename Pred>
  std::vector<u64> find_spans(Pred&& predicate) const {
    std::vector<u64> out;
    for (const u64 id : store_.span_list(0, ~TimestampNs{0})) {
      if (predicate(store_.row(id)->span)) out.push_back(id);
    }
    return out;
  }

  const SpanStore& store() const { return store_; }
  u64 ingested_spans() const {
    return ingested_.load(std::memory_order_relaxed);
  }

  // -- Overload control plane. ----------------------------------------------

  /// The server's resource governor: transports share it for queue
  /// accounting and net-span shedding; tests and benches read its telemetry.
  ResourceGovernor& governor() { return governor_; }
  const ResourceGovernor& governor() const { return governor_; }

  /// Completeness ledger over [from, to): per-window offered/stored/
  /// downsampled/refused counts, so queries can report how complete the
  /// stored data is for any range that overlapped an overload episode or a
  /// tail-sampling policy. The governor's span-level ledger and the
  /// streaming assembler's trace-level one are merged window-for-window
  /// (both default to 1 s windows).
  std::vector<CompletenessWindow> query_completeness(TimestampNs from,
                                                     TimestampNs to) const;

  /// Register the deployment's shared interner so the prometheus scrape
  /// carries its cardinality/overflow gauges.
  void set_shared_interner(std::shared_ptr<const StringInterner> interner) {
    shared_interner_ = std::move(interner);
  }

  // -- Streaming assembly seam. ---------------------------------------------

  /// Attach the streaming assembler (src/assembly, wired by the
  /// deployment). Install once, before any traffic; the hook must be
  /// thread-safe like the ingest path, and must outlive the server's
  /// traffic. Once attached, every span that clears dedup also lands in the
  /// hook as a SpanNote, and query_trace probes the hook's completed-trace
  /// index before falling back to batch assembly.
  void attach_streaming(StreamingHook* hook) { streaming_ = hook; }
  StreamingHook* streaming_hook() const { return streaming_; }

  /// Accessors the streaming assembler is constructed against: the live
  /// store (finalization searches it; retention verdicts discard from its
  /// flush window) and the delta-search batch assembler it reuses.
  SpanStore& mutable_store() { return store_; }
  const TraceAssembler& trace_assembler() const { return assembler_; }

 private:
  void emit_reaggregated(const std::string& host, agent::Session&& session);
  void note_ingest_clock();
  /// Records `span_id` in the dedup seen-set; true when it was already
  /// there (i.e. this delivery is a redelivery). `start_ts` advances the
  /// rotation watermark.
  bool seen_before(u64 span_id, TimestampNs start_ts);
  /// Governor admission for one deduplicated span (trace-keyed tail
  /// sampling; see admit_sample). True = store at full fidelity.
  bool admit_span(const agent::Span& span);
  bool admit_sample(const metrics::SpanSample& sample, u64 trace_key);
  /// Stable trace identity for sampling decisions: the x-request-id when
  /// present (cross-host), else the systrace id, else the span id.
  static u64 trace_key_of(const agent::Span& span);
  /// RED latency-outlier probe for the streaming hook's anomaly bit; only
  /// consulted when streaming tail sampling is enabled.
  bool streaming_outlier(const agent::Span& span) const;

  const netsim::ResourceRegistry* registry_;
  ResourceGovernor governor_;
  SpanStore store_;
  TraceAssembler assembler_;
  metrics::MetricsAggregator metrics_;
  StreamingHook* streaming_ = nullptr;
  StreamingAssemblyConfig streaming_config_;
  mutable std::atomic<u64> streaming_hits_{0};
  mutable std::atomic<u64> streaming_fallbacks_{0};
  IngestObserver ingest_observer_;
  agent::SessionAggregator reaggregator_;
  std::unordered_map<std::string, agent::SpanBuilder> builders_;
  std::unordered_map<u64, std::string> straggler_hosts_;  // flow key -> host
  std::unordered_map<FiveTuple, netsim::FlowMetrics, FiveTupleHash>
      flow_metrics_;
  std::unordered_map<std::string, netsim::DeviceMetrics> device_metrics_;
  std::atomic<u64> ingested_{0};

  // Idempotent ingest: at-least-once transports redeliver spans (retries
  // after a lost ack, duplicate faults); redeliveries are filtered here,
  // BEFORE the store — SpanStore::insert remaps colliding ids, so a
  // duplicate reaching it would be stored twice under a fresh id. Striped
  // like the store so concurrent senders contend no worse than on the
  // shards themselves. Spans with id 0 (store-remapped on insert) are
  // exempt: their identity is unknowable at this point.
  //
  // Two generations bound the set: when the ingest watermark (max start_ts
  // seen) crosses a dedup_window_ns boundary, `cur` rotates into `prev` and
  // entries two generations old are forgotten — memory stays proportional
  // to two windows of traffic, while any redelivery within the transports'
  // disorder bound still hits one of the live generations.
  struct DedupStripe {
    std::mutex mu;
    u64 generation = 0;
    std::unordered_set<u64> cur;
    std::unordered_set<u64> prev;
  };
  /// Approximate resident bytes per seen-set entry (node + bucket slot),
  /// pushed to the governor's kDedup account.
  static constexpr size_t kDedupEntryBytes = 32;
  /// Rotate `stripe` (already locked) forward to `generation`; returns the
  /// number of entries dropped.
  static size_t rotate_dedup_locked(DedupStripe& stripe, u64 generation);
  std::vector<std::unique_ptr<DedupStripe>> dedup_stripes_;
  DurationNs dedup_window_ns_ = 0;
  std::atomic<u64> dedup_watermark_{0};
  std::atomic<u64> duplicate_spans_{0};
  std::shared_ptr<const StringInterner> shared_interner_;

  // Ingest telemetry (all updated thread-safely on the ingest path).
  std::atomic<u64> batches_{0};
  std::atomic<u64> batched_spans_{0};
  std::atomic<u64> max_batch_spans_{0};
  std::atomic<u64> span_batches_{0};
  std::atomic<u64> span_batch_spans_{0};
  std::atomic<u64> max_span_batch_spans_{0};
  std::atomic<u64> first_ingest_ns_{0};  // steady-clock ns; 0 = none yet
  std::atomic<u64> last_ingest_ns_{0};
  // Agent-side drain counters (single-threaded accumulation via
  // note_agent_drain at finish time).
  u64 agent_drain_batches_ = 0;
  u64 agent_drain_records_ = 0;
  u64 agent_staging_waits_ = 0;
  u64 agent_perf_lost_ = 0;
  std::vector<u64> agent_perf_lost_per_cpu_;
  u64 agent_enter_map_drops_ = 0;
};

}  // namespace deepflow::server
