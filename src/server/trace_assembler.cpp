#include "server/trace_assembler.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "common/hash.h"

namespace deepflow::server {

using agent::Span;
using agent::SpanKind;

namespace {

// --------------------------------------------------------------------------
// Parent rule table. Each rule is a predicate over (child X, candidate P)
// evaluated in priority order; within the first rule that has candidates the
// latest-starting candidate wins. Rules use the four signals the paper
// names: collection location (client/server side), start and finish time,
// span kind, and message semantics.
//
//  id | child                    | parent                    | keyed on
// ----+--------------------------+---------------------------+--------------
//  1  | net span                 | client-side sys/app span  | req TCP seq
//  2  | net span                 | earlier net span          | req TCP seq
//  3  | server-side sys/app span | latest net span           | req TCP seq
//  4  | server-side sys/app span | client-side sys/app span  | req TCP seq
//  5  | server-side sys/app span | client-side span, resp seq| resp TCP seq
//  6  | client-side sys/app span | enclosing server-side span| systrace id
//  7  | client-side sys/app span | enclosing server-side span| pseudo-thread
//  8  | client-side sys/app span | server-side span same host| X-Request-ID
//  9  | client-side sys/app span | enclosing client-side span| systrace id
// 10  | third-party span         | enclosing third-party span| otel trace id
// 11  | third-party span         | enclosing sys/app span    | otel trace id
// 12  | sys/app span w/ context  | enclosing third-party span| otel trace id
// 13  | app (TLS) span           | enclosing sys span        | host+pid+tid
// 14  | sys span (ciphertext)    | enclosing app span        | host+pid+tid
// 15  | any                      | latest same-systrace span | systrace id
// 16  | any                      | — (root)                  |
// --------------------------------------------------------------------------

bool is_sys_or_app(const Span& s) {
  return s.kind == SpanKind::kSystem || s.kind == SpanKind::kApplication;
}

bool same_host_pid(const Span& a, const Span& b) {
  return a.pid == b.pid && a.host == b.host;
}

bool encloses(const Span& parent, const Span& child) {
  return parent.start_ts <= child.start_ts && parent.end_ts >= child.end_ts;
}

/// Content-deterministic order for spans that start at the same instant.
/// Span ids are assigned in drain order, which legitimately differs between
/// the serial and the parallel ingest pipelines, so tie-breaking on raw ids
/// would make parentage depend on the ingest schedule. Ranking by content
/// keeps assembly identical across pipelines; ids only separate spans whose
/// content is fully identical — and those are interchangeable structurally.
bool content_less(const Span& a, const Span& b) {
  if (a.end_ts != b.end_ts) return a.end_ts < b.end_ts;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.from_server_side != b.from_server_side) return b.from_server_side;
  if (a.host != b.host) return a.host < b.host;
  if (a.device_name != b.device_name) return a.device_name < b.device_name;
  if (a.pid != b.pid) return a.pid < b.pid;
  if (a.tid != b.tid) return a.tid < b.tid;
  if (a.req_tcp_seq != b.req_tcp_seq) return a.req_tcp_seq < b.req_tcp_seq;
  if (a.resp_tcp_seq != b.resp_tcp_seq) return a.resp_tcp_seq < b.resp_tcp_seq;
  if (a.x_request_id != b.x_request_id) return a.x_request_id < b.x_request_id;
  if (a.otel_trace_id != b.otel_trace_id) {
    return a.otel_trace_id < b.otel_trace_id;
  }
  if (a.method != b.method) return a.method < b.method;
  if (a.endpoint != b.endpoint) return a.endpoint < b.endpoint;
  return a.span_id < b.span_id;
}

/// Strictly-before-or-equal start, excluding self; keeps the parent graph
/// acyclic (same-instant ties broken by the content order above).
bool starts_before(const Span& parent, const Span& child) {
  if (parent.span_id == child.span_id) return false;
  if (parent.start_ts != child.start_ts) {
    return parent.start_ts < child.start_ts;
  }
  return content_less(parent, child);
}

bool shares_req_seq(const Span& a, const Span& b) {
  return a.req_tcp_seq != 0 && a.req_tcp_seq == b.req_tcp_seq;
}

using RulePredicate = bool (*)(const Span& x, const Span& p);

struct Rule {
  ParentRuleId id;
  RulePredicate applies;
};

constexpr Rule kRules[] = {
    // 2: net spans chain hop by hop along the path (checked before rule 1
    //    so a later hop prefers its predecessor hop over the client span).
    {2,
     [](const Span& x, const Span& p) {
       return x.kind == SpanKind::kNetwork && p.kind == SpanKind::kNetwork &&
              shares_req_seq(x, p);
     }},
    // 1: the first hop hangs off the client-side syscall that sent the
    //    request.
    {1,
     [](const Span& x, const Span& p) {
       return x.kind == SpanKind::kNetwork && is_sys_or_app(p) &&
              !p.from_server_side && shares_req_seq(x, p);
     }},
    // 3: the server-side span continues from the last network hop.
    {3,
     [](const Span& x, const Span& p) {
       return is_sys_or_app(x) && x.from_server_side &&
              p.kind == SpanKind::kNetwork && shares_req_seq(x, p);
     }},
    // 4: no net spans captured -> server hangs directly off the client.
    {4,
     [](const Span& x, const Span& p) {
       return is_sys_or_app(x) && x.from_server_side && is_sys_or_app(p) &&
              !p.from_server_side && shares_req_seq(x, p);
     }},
    // 5: L4 forwarders may split request/response observation; fall back to
    // the response sequence when request sequences were not captured.
    {5,
     [](const Span& x, const Span& p) {
       return is_sys_or_app(x) && x.from_server_side && is_sys_or_app(p) &&
              !p.from_server_side && x.resp_tcp_seq != 0 &&
              x.resp_tcp_seq == p.resp_tcp_seq;
     }},
    // 6: outbound call nests in the inbound request being handled
    //    (same systrace id, same process, enclosing time).
    {6,
     [](const Span& x, const Span& p) {
       return is_sys_or_app(x) && !x.from_server_side && is_sys_or_app(p) &&
              p.from_server_side && same_host_pid(x, p) &&
              x.systrace_id != kInvalidSystraceId &&
              x.systrace_id == p.systrace_id && encloses(p, x);
     }},
    // 7: coroutine runtimes — same pseudo-thread lineage, enclosing time.
    {7,
     [](const Span& x, const Span& p) {
       return is_sys_or_app(x) && !x.from_server_side && is_sys_or_app(p) &&
              p.from_server_side && same_host_pid(x, p) &&
              x.pseudo_thread_id != 0 &&
              x.pseudo_thread_id == p.pseudo_thread_id && encloses(p, x);
     }},
    // 8: cross-thread proxies (Nginx/Envoy/HAProxy) — the forwarded request
    //    carries the X-Request-ID generated by the inbound side.
    {8,
     [](const Span& x, const Span& p) {
       return is_sys_or_app(x) && !x.from_server_side && is_sys_or_app(p) &&
              p.from_server_side && same_host_pid(x, p) &&
              !x.x_request_id.empty() && x.x_request_id == p.x_request_id;
     }},
    // 9: sibling nesting inside one component (client span inside an
    //    enclosing client span of the same flow; rare, e.g. retries).
    {9,
     [](const Span& x, const Span& p) {
       return is_sys_or_app(x) && !x.from_server_side && is_sys_or_app(p) &&
              !p.from_server_side && same_host_pid(x, p) &&
              x.systrace_id != kInvalidSystraceId &&
              x.systrace_id == p.systrace_id && encloses(p, x) &&
              p.req_tcp_seq != x.req_tcp_seq;
     }},
    // 10: third-party spans nest among themselves by trace id + time.
    {10,
     [](const Span& x, const Span& p) {
       return x.kind == SpanKind::kThirdParty &&
              p.kind == SpanKind::kThirdParty && !x.otel_trace_id.empty() &&
              x.otel_trace_id == p.otel_trace_id && encloses(p, x);
     }},
    // 11: a third-party span nests in the eBPF span that carried its context.
    {11,
     [](const Span& x, const Span& p) {
       return x.kind == SpanKind::kThirdParty && is_sys_or_app(p) &&
              !x.otel_trace_id.empty() &&
              x.otel_trace_id == p.otel_trace_id && encloses(p, x);
     }},
    // 12: and the reverse — an eBPF span that saw a traceparent header nests
    //     in the framework span that created it.
    {12,
     [](const Span& x, const Span& p) {
       return is_sys_or_app(x) && p.kind == SpanKind::kThirdParty &&
              !x.otel_trace_id.empty() &&
              x.otel_trace_id == p.otel_trace_id && encloses(p, x) &&
              same_host_pid(x, p);
     }},
    // 13: TLS plaintext (app) span inside the ciphertext syscall span.
    {13,
     [](const Span& x, const Span& p) {
       return x.kind == SpanKind::kApplication &&
              p.kind == SpanKind::kSystem && same_host_pid(x, p) &&
              x.tid == p.tid && encloses(p, x);
     }},
    // 14: or the syscall span inside the app span when SSL_write wraps it.
    {14,
     [](const Span& x, const Span& p) {
       return x.kind == SpanKind::kSystem &&
              p.kind == SpanKind::kApplication && same_host_pid(x, p) &&
              x.tid == p.tid && encloses(p, x);
     }},
    // 15: catch-all — latest earlier span of the same systrace flow.
    {15,
     [](const Span& x, const Span& p) {
       return x.systrace_id != kInvalidSystraceId &&
              x.systrace_id == p.systrace_id && is_sys_or_app(p) &&
              p.from_server_side;
     }},
    // 16 is the implicit "root" outcome (no rule matched).
};

}  // namespace

std::vector<u64> AssembledTrace::roots() const {
  std::vector<u64> out;
  for (const AssembledSpan& s : spans) {
    if (s.span.parent_span_id == 0) out.push_back(s.span.span_id);
  }
  return out;
}

std::string AssembledTrace::render() const {
  // Indent children under parents, preserving time order.
  std::unordered_map<u64, std::vector<const AssembledSpan*>> children;
  std::vector<const AssembledSpan*> root_spans;
  for (const AssembledSpan& s : spans) {
    if (s.span.parent_span_id == 0) {
      root_spans.push_back(&s);
    } else {
      children[s.span.parent_span_id].push_back(&s);
    }
  }
  std::string out;
  const std::function<void(const AssembledSpan*, int)> walk =
      [&](const AssembledSpan* node, int depth) {
        const Span& s = node->span;
        out.append(static_cast<size_t>(depth) * 2, ' ');
        out += "[" + std::string(agent::span_kind_name(s.kind)) + "] ";
        out += s.kind == SpanKind::kNetwork ? s.device_name : s.host;
        out += s.from_server_side ? " (server)" : " (client)";
        out += " " + std::string(protocols::l7_protocol_name(s.protocol));
        if (!s.method.empty()) out += " " + s.method;
        if (!s.endpoint.empty()) out += " " + s.endpoint;
        if (s.status_code != 0) out += " -> " + std::to_string(s.status_code);
        out += " [" + std::to_string(s.start_ts / 1000) + "us +" +
               std::to_string(s.duration() / 1000) + "us]";
        if (s.incomplete) out += " INCOMPLETE";
        out += "\n";
        for (const AssembledSpan* child : children[s.span_id]) {
          walk(child, depth + 1);
        }
      };
  for (const AssembledSpan* root : root_spans) walk(root, 0);
  return out;
}

AssembledTrace TraceAssembler::assemble(u64 start_span_id) const {
  AssembledTrace trace;
  if (store_->row(start_span_id) == nullptr) return trace;

  // ---- Phase one: iterative span search (Algorithm 1, lines 2-16).
  std::unordered_map<u64, Span> span_set;
  span_set.emplace(start_span_id, store_->row(start_span_id)->span);

  for (u32 iter = 0; iter < config_.max_iterations; ++iter) {
    trace.iterations_used = iter + 1;
    SearchFilter filter;
    for (const auto& [id, span] : span_set) {
      if (span.systrace_id != kInvalidSystraceId) {
        filter.systrace_ids.insert(span.systrace_id);
      }
      if (span.pseudo_thread_id != 0) {
        filter.pseudo_thread_keys.insert(pseudo_thread_key(span));
      }
      if (!span.x_request_id.empty()) {
        filter.x_request_ids.insert(span.x_request_id);
      }
      if (span.req_tcp_seq != 0) filter.tcp_seqs.insert(span.req_tcp_seq);
      if (span.resp_tcp_seq != 0) filter.tcp_seqs.insert(span.resp_tcp_seq);
      if (!span.otel_trace_id.empty()) {
        filter.otel_trace_ids.insert(span.otel_trace_id);
      }
    }
    const std::vector<u64> found = store_->search(filter);
    const size_t before = span_set.size();
    for (const u64 id : found) {
      if (!span_set.contains(id)) span_set.emplace(id, store_->row(id)->span);
    }
    if (span_set.size() == before) break;  // not updated -> converged
  }

  // ---- Phase two: parent assignment (Algorithm 1, lines 18-24).
  std::vector<Span> spans;
  spans.reserve(span_set.size());
  for (auto& [id, span] : span_set) spans.push_back(std::move(span));

  std::vector<ParentRuleId> rules(spans.size(), 0);
  for (size_t i = 0; i < spans.size(); ++i) {
    Span& x = spans[i];
    x.parent_span_id = 0;
    for (const Rule& rule : kRules) {
      const Span* best = nullptr;
      for (const Span& p : spans) {
        if (!starts_before(p, x)) continue;
        if (!rule.applies(x, p)) continue;
        if (best == nullptr || p.start_ts > best->start_ts ||
            (p.start_ts == best->start_ts && content_less(*best, p))) {
          best = &p;
        }
      }
      if (best != nullptr) {
        x.parent_span_id = best->span_id;
        rules[i] = rule.id;
        break;
      }
    }
  }

  // ---- Phase three: sort for display (Algorithm 1, line 25).
  std::vector<size_t> order(spans.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (spans[a].start_ts != spans[b].start_ts) {
      return spans[a].start_ts < spans[b].start_ts;
    }
    return content_less(spans[a], spans[b]);
  });

  trace.spans.reserve(spans.size());
  for (const size_t i : order) {
    AssembledSpan out;
    // Materialize decodes the tag blob for display.
    out.span = store_->materialize(spans[i].span_id);
    out.span.parent_span_id = spans[i].parent_span_id;
    out.parent_rule = rules[i];
    trace.spans.push_back(std::move(out));
  }
  return trace;
}

}  // namespace deepflow::server
