#include "server/trace_assembler.h"

#include <algorithm>
#include <array>
#include <functional>
#include <iterator>
#include <unordered_map>

#include "common/hash.h"

namespace deepflow::server {

using agent::Span;
using agent::SpanKind;

namespace {

// --------------------------------------------------------------------------
// Parent rule table. Each rule is a predicate over (child X, candidate P)
// evaluated in priority order; within the first rule that has candidates the
// latest-starting candidate wins. Rules use the four signals the paper
// names: collection location (client/server side), start and finish time,
// span kind, and message semantics.
//
//  id | child                    | parent                    | keyed on
// ----+--------------------------+---------------------------+--------------
//  1  | net span                 | client-side sys/app span  | req TCP seq
//  2  | net span                 | earlier net span          | req TCP seq
//  3  | server-side sys/app span | latest net span           | req TCP seq
//  4  | server-side sys/app span | client-side sys/app span  | req TCP seq
//  5  | server-side sys/app span | client-side span, resp seq| resp TCP seq
//  6  | client-side sys/app span | enclosing server-side span| systrace id
//  7  | client-side sys/app span | enclosing server-side span| pseudo-thread
//  8  | client-side sys/app span | server-side span same host| X-Request-ID
//  9  | client-side sys/app span | enclosing client-side span| systrace id
// 10  | third-party span         | enclosing third-party span| otel trace id
// 11  | third-party span         | enclosing sys/app span    | otel trace id
// 12  | sys/app span w/ context  | enclosing third-party span| otel trace id
// 13  | app (TLS) span           | enclosing sys span        | host+pid+tid
// 14  | sys span (ciphertext)    | enclosing app span        | host+pid+tid
// 15  | any                      | latest same-systrace span | systrace id
// 16  | any                      | — (root)                  |
//
// The "keyed on" column is load-bearing for the fast path: every predicate
// requires child and parent to share one association attribute, so parent
// candidates are bucketed by that attribute and only the (few) spans in the
// child's bucket are scanned. The predicate is still evaluated in full —
// buckets are a superset filter (hash collisions and extra conditions like
// same_host_pid are re-checked), never a semantic change.
// --------------------------------------------------------------------------

bool is_sys_or_app(const Span& s) {
  return s.kind == SpanKind::kSystem || s.kind == SpanKind::kApplication;
}

bool same_host_pid(const Span& a, const Span& b) {
  return a.pid == b.pid && a.host == b.host;
}

bool encloses(const Span& parent, const Span& child) {
  return parent.start_ts <= child.start_ts && parent.end_ts >= child.end_ts;
}

/// Content-deterministic order for spans that start at the same instant.
/// Span ids are assigned in drain order, which legitimately differs between
/// the serial and the parallel ingest pipelines, so tie-breaking on raw ids
/// would make parentage depend on the ingest schedule. Ranking by content
/// keeps assembly identical across pipelines; ids only separate spans whose
/// content is fully identical — and those are interchangeable structurally.
bool content_less(const Span& a, const Span& b) {
  if (a.end_ts != b.end_ts) return a.end_ts < b.end_ts;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.from_server_side != b.from_server_side) return b.from_server_side;
  if (a.host != b.host) return a.host < b.host;
  if (a.device_name != b.device_name) return a.device_name < b.device_name;
  if (a.pid != b.pid) return a.pid < b.pid;
  if (a.tid != b.tid) return a.tid < b.tid;
  if (a.req_tcp_seq != b.req_tcp_seq) return a.req_tcp_seq < b.req_tcp_seq;
  if (a.resp_tcp_seq != b.resp_tcp_seq) return a.resp_tcp_seq < b.resp_tcp_seq;
  if (a.x_request_id != b.x_request_id) return a.x_request_id < b.x_request_id;
  if (a.otel_trace_id != b.otel_trace_id) {
    return a.otel_trace_id < b.otel_trace_id;
  }
  if (a.method != b.method) return a.method < b.method;
  if (a.endpoint != b.endpoint) return a.endpoint < b.endpoint;
  return a.span_id < b.span_id;
}

/// The display/assignment order: start time, content ties. A strict total
/// order (content_less falls back to span ids), so position j < i in the
/// sorted span vector is exactly the naive path's starts_before(j, i).
bool assembly_less(const Span& a, const Span& b) {
  if (a.start_ts != b.start_ts) return a.start_ts < b.start_ts;
  return content_less(a, b);
}

bool shares_req_seq(const Span& a, const Span& b) {
  return a.req_tcp_seq != 0 && a.req_tcp_seq == b.req_tcp_seq;
}

/// The association attribute a rule is keyed on (the rule table's "keyed
/// on" column). Candidate parents are bucketed per attribute value.
enum class RuleKey : u8 {
  kReqSeq,
  kRespSeq,
  kSystrace,
  kPseudoThread,
  kXRequestId,
  kOtelId,
  kHostPidTid,
};
constexpr size_t kRuleKeyKinds = 7;

/// Bucket key of `s` under key-kind `key`; false when the span lacks the
/// attribute (then no rule keyed on it can match the span as child, and the
/// span joins no bucket as parent).
bool span_rule_key(const Span& s, RuleKey key, u64* out) {
  switch (key) {
    case RuleKey::kReqSeq:
      if (s.req_tcp_seq == 0) return false;
      *out = s.req_tcp_seq;
      return true;
    case RuleKey::kRespSeq:
      if (s.resp_tcp_seq == 0) return false;
      *out = s.resp_tcp_seq;
      return true;
    case RuleKey::kSystrace:
      if (s.systrace_id == kInvalidSystraceId) return false;
      *out = s.systrace_id;
      return true;
    case RuleKey::kPseudoThread:
      if (s.pseudo_thread_id == 0) return false;
      *out = pseudo_thread_key(s);
      return true;
    case RuleKey::kXRequestId:
      if (s.x_request_id.empty()) return false;
      *out = fnv1a(s.x_request_id);
      return true;
    case RuleKey::kOtelId:
      if (s.otel_trace_id.empty()) return false;
      *out = fnv1a(s.otel_trace_id);
      return true;
    case RuleKey::kHostPidTid: {
      u64 h = fnv1a(s.host);
      h = hash_combine(h, s.pid);
      *out = hash_combine(h, s.tid);
      return true;
    }
  }
  return false;
}

using RulePredicate = bool (*)(const Span& x, const Span& p);

struct Rule {
  ParentRuleId id;
  RuleKey key;
  RulePredicate applies;
};

constexpr Rule kRules[] = {
    // 2: net spans chain hop by hop along the path (checked before rule 1
    //    so a later hop prefers its predecessor hop over the client span).
    {2, RuleKey::kReqSeq,
     [](const Span& x, const Span& p) {
       return x.kind == SpanKind::kNetwork && p.kind == SpanKind::kNetwork &&
              shares_req_seq(x, p);
     }},
    // 1: the first hop hangs off the client-side syscall that sent the
    //    request.
    {1, RuleKey::kReqSeq,
     [](const Span& x, const Span& p) {
       return x.kind == SpanKind::kNetwork && is_sys_or_app(p) &&
              !p.from_server_side && shares_req_seq(x, p);
     }},
    // 3: the server-side span continues from the last network hop.
    {3, RuleKey::kReqSeq,
     [](const Span& x, const Span& p) {
       return is_sys_or_app(x) && x.from_server_side &&
              p.kind == SpanKind::kNetwork && shares_req_seq(x, p);
     }},
    // 4: no net spans captured -> server hangs directly off the client.
    {4, RuleKey::kReqSeq,
     [](const Span& x, const Span& p) {
       return is_sys_or_app(x) && x.from_server_side && is_sys_or_app(p) &&
              !p.from_server_side && shares_req_seq(x, p);
     }},
    // 5: L4 forwarders may split request/response observation; fall back to
    // the response sequence when request sequences were not captured.
    {5, RuleKey::kRespSeq,
     [](const Span& x, const Span& p) {
       return is_sys_or_app(x) && x.from_server_side && is_sys_or_app(p) &&
              !p.from_server_side && x.resp_tcp_seq != 0 &&
              x.resp_tcp_seq == p.resp_tcp_seq;
     }},
    // 6: outbound call nests in the inbound request being handled
    //    (same systrace id, same process, enclosing time).
    {6, RuleKey::kSystrace,
     [](const Span& x, const Span& p) {
       return is_sys_or_app(x) && !x.from_server_side && is_sys_or_app(p) &&
              p.from_server_side && same_host_pid(x, p) &&
              x.systrace_id != kInvalidSystraceId &&
              x.systrace_id == p.systrace_id && encloses(p, x);
     }},
    // 7: coroutine runtimes — same pseudo-thread lineage, enclosing time.
    {7, RuleKey::kPseudoThread,
     [](const Span& x, const Span& p) {
       return is_sys_or_app(x) && !x.from_server_side && is_sys_or_app(p) &&
              p.from_server_side && same_host_pid(x, p) &&
              x.pseudo_thread_id != 0 &&
              x.pseudo_thread_id == p.pseudo_thread_id && encloses(p, x);
     }},
    // 8: cross-thread proxies (Nginx/Envoy/HAProxy) — the forwarded request
    //    carries the X-Request-ID generated by the inbound side.
    {8, RuleKey::kXRequestId,
     [](const Span& x, const Span& p) {
       return is_sys_or_app(x) && !x.from_server_side && is_sys_or_app(p) &&
              p.from_server_side && same_host_pid(x, p) &&
              !x.x_request_id.empty() && x.x_request_id == p.x_request_id;
     }},
    // 9: sibling nesting inside one component (client span inside an
    //    enclosing client span of the same flow; rare, e.g. retries).
    {9, RuleKey::kSystrace,
     [](const Span& x, const Span& p) {
       return is_sys_or_app(x) && !x.from_server_side && is_sys_or_app(p) &&
              !p.from_server_side && same_host_pid(x, p) &&
              x.systrace_id != kInvalidSystraceId &&
              x.systrace_id == p.systrace_id && encloses(p, x) &&
              p.req_tcp_seq != x.req_tcp_seq;
     }},
    // 10: third-party spans nest among themselves by trace id + time.
    {10, RuleKey::kOtelId,
     [](const Span& x, const Span& p) {
       return x.kind == SpanKind::kThirdParty &&
              p.kind == SpanKind::kThirdParty && !x.otel_trace_id.empty() &&
              x.otel_trace_id == p.otel_trace_id && encloses(p, x);
     }},
    // 11: a third-party span nests in the eBPF span that carried its context.
    {11, RuleKey::kOtelId,
     [](const Span& x, const Span& p) {
       return x.kind == SpanKind::kThirdParty && is_sys_or_app(p) &&
              !x.otel_trace_id.empty() &&
              x.otel_trace_id == p.otel_trace_id && encloses(p, x);
     }},
    // 12: and the reverse — an eBPF span that saw a traceparent header nests
    //     in the framework span that created it.
    {12, RuleKey::kOtelId,
     [](const Span& x, const Span& p) {
       return is_sys_or_app(x) && p.kind == SpanKind::kThirdParty &&
              !x.otel_trace_id.empty() &&
              x.otel_trace_id == p.otel_trace_id && encloses(p, x) &&
              same_host_pid(x, p);
     }},
    // 13: TLS plaintext (app) span inside the ciphertext syscall span.
    {13, RuleKey::kHostPidTid,
     [](const Span& x, const Span& p) {
       return x.kind == SpanKind::kApplication &&
              p.kind == SpanKind::kSystem && same_host_pid(x, p) &&
              x.tid == p.tid && encloses(p, x);
     }},
    // 14: or the syscall span inside the app span when SSL_write wraps it.
    {14, RuleKey::kHostPidTid,
     [](const Span& x, const Span& p) {
       return x.kind == SpanKind::kSystem &&
              p.kind == SpanKind::kApplication && same_host_pid(x, p) &&
              x.tid == p.tid && encloses(p, x);
     }},
    // 15: catch-all — latest earlier span of the same systrace flow.
    {15, RuleKey::kSystrace,
     [](const Span& x, const Span& p) {
       return x.systrace_id != kInvalidSystraceId &&
              x.systrace_id == p.systrace_id && is_sys_or_app(p) &&
              p.from_server_side;
     }},
    // 16 is the implicit "root" outcome (no rule matched).
};

/// Fold `span`'s association attributes into the cumulative `searched`
/// filter; attributes not seen before also land in `delta` (the next
/// iteration's store query).
void add_new_keys(const Span& span, SearchFilter& searched,
                  SearchFilter& delta) {
  if (span.systrace_id != kInvalidSystraceId &&
      searched.systrace_ids.insert(span.systrace_id).second) {
    delta.systrace_ids.insert(span.systrace_id);
  }
  if (span.pseudo_thread_id != 0) {
    const u64 key = pseudo_thread_key(span);
    if (searched.pseudo_thread_keys.insert(key).second) {
      delta.pseudo_thread_keys.insert(key);
    }
  }
  if (!span.x_request_id.empty() &&
      searched.x_request_ids.insert(span.x_request_id).second) {
    delta.x_request_ids.insert(span.x_request_id);
  }
  if (span.req_tcp_seq != 0 &&
      searched.tcp_seqs.insert(span.req_tcp_seq).second) {
    delta.tcp_seqs.insert(span.req_tcp_seq);
  }
  if (span.resp_tcp_seq != 0 &&
      searched.tcp_seqs.insert(span.resp_tcp_seq).second) {
    delta.tcp_seqs.insert(span.resp_tcp_seq);
  }
  if (!span.otel_trace_id.empty() &&
      searched.otel_trace_ids.insert(span.otel_trace_id).second) {
    delta.otel_trace_ids.insert(span.otel_trace_id);
  }
}

}  // namespace

std::vector<u64> AssembledTrace::roots() const {
  std::vector<u64> out;
  for (const AssembledSpan& s : spans) {
    if (s.span.parent_span_id == 0) out.push_back(s.span.span_id);
  }
  return out;
}

std::string AssembledTrace::render() const {
  // Indent children under parents, preserving time order.
  std::unordered_map<u64, std::vector<const AssembledSpan*>> children;
  std::vector<const AssembledSpan*> root_spans;
  for (const AssembledSpan& s : spans) {
    if (s.span.parent_span_id == 0) {
      root_spans.push_back(&s);
    } else {
      children[s.span.parent_span_id].push_back(&s);
    }
  }
  std::string out;
  const std::function<void(const AssembledSpan*, int)> walk =
      [&](const AssembledSpan* node, int depth) {
        const Span& s = node->span;
        out.append(static_cast<size_t>(depth) * 2, ' ');
        out += "[" + std::string(agent::span_kind_name(s.kind)) + "] ";
        out += s.kind == SpanKind::kNetwork ? s.device_name : s.host;
        out += s.from_server_side ? " (server)" : " (client)";
        out += " " + std::string(protocols::l7_protocol_name(s.protocol));
        if (!s.method.empty()) out += " " + s.method;
        if (!s.endpoint.empty()) out += " " + s.endpoint;
        if (s.status_code != 0) out += " -> " + std::to_string(s.status_code);
        out += " [" + std::to_string(s.start_ts / 1000) + "us +" +
               std::to_string(s.duration() / 1000) + "us]";
        if (s.incomplete) out += " INCOMPLETE";
        if (s.lost_placeholder) out += " LOST";
        out += "\n";
        for (const AssembledSpan* child : children[s.span_id]) {
          walk(child, depth + 1);
        }
      };
  for (const AssembledSpan* root : root_spans) walk(root, 0);
  return out;
}

AssembledTrace TraceAssembler::assemble(u64 start_span_id) const {
  AssembledTrace trace;
  const SpanRow* start_row = store_->row(start_span_id);
  if (start_row == nullptr) return trace;

  // ---- Phase one: iterative span search (Algorithm 1, lines 2-16), delta
  // formulation. `searched` accumulates every attribute ever probed; each
  // iteration queries only the attributes the previous iteration's new
  // spans introduced. Because the store is append-only during a query and
  // search(A ∪ B) = search(A) ∪ search(B), the union of the delta searches
  // equals the naive full re-search at every iteration count — including
  // truncation at max_iterations (see tests/reference/naive_assembler.h).
  //
  // The set holds row pointers, not copies: rows are node-based and
  // immutable once inserted, so the pointers stay valid for the whole
  // query and the (string-heavy) spans are never copied before phase 3.
  // search_rows hands those pointers back directly — no per-hit directory
  // or row lookup after a search. Since hits arrive sorted by span id, the
  // set is a sorted vector maintained by difference/merge scans instead of
  // a hash map.
  const auto row_id_less = [](const SpanRow* a, const SpanRow* b) {
    return a->span.span_id < b->span.span_id;
  };
  std::vector<const SpanRow*> known{start_row};  // sorted by span id
  std::vector<const SpanRow*> merged;
  std::vector<const SpanRow*> frontier{start_row};
  SearchFilter searched;

  for (u32 iter = 0; iter < config_.max_iterations; ++iter) {
    SearchFilter delta;
    for (const SpanRow* row : frontier) {
      add_new_keys(row->span, searched, delta);
    }
    frontier.clear();
    if (delta.empty()) break;  // every attribute already probed -> converged
    trace.iterations_used = iter + 1;
    const std::vector<const SpanRow*> hits = store_->search_rows(delta);
    std::set_difference(hits.begin(), hits.end(), known.begin(), known.end(),
                        std::back_inserter(frontier), row_id_less);
    if (frontier.empty()) break;  // not updated -> converged
    merged.clear();
    merged.reserve(known.size() + frontier.size());
    std::merge(known.begin(), known.end(), frontier.begin(), frontier.end(),
               std::back_inserter(merged), row_id_less);
    known.swap(merged);
  }
  // ---- Phase two: parent assignment (Algorithm 1, lines 18-24). Sort the
  // set once into the display order (start time, content ties); position
  // then encodes the naive path's starts_before() predicate. Candidates for
  // each rule come from per-attribute buckets of positions (ascending, by
  // construction), scanned latest-first with early exit: the first
  // predicate match IS the latest-starting match the naive scan selects.
  const u32 n = static_cast<u32>(known.size());
  std::vector<const SpanRow*> rows = std::move(known);
  std::sort(rows.begin(), rows.end(), [](const SpanRow* a, const SpanRow* b) {
    return assembly_less(a->span, b->span);
  });

  // Flat bucket index instead of per-kind hash maps: every (key kind,
  // key value, position) triple, sorted — one allocation, and the rule keys
  // (string hashes included) are computed once per span, not once per
  // span x rule probe. Positions within one (kind, key) range are ascending
  // by the sort, exactly like the per-map bucket vectors they replace.
  struct BucketEntry {
    u8 kind;
    u64 key;
    u32 pos;
    bool operator<(const BucketEntry& o) const {
      if (kind != o.kind) return kind < o.kind;
      if (key != o.key) return key < o.key;
      return pos < o.pos;
    }
  };
  std::vector<BucketEntry> index;
  index.reserve(static_cast<size_t>(n) * 4);
  std::vector<std::array<u64, kRuleKeyKinds>> keys(n);
  std::vector<std::array<bool, kRuleKeyKinds>> has_key(n);
  for (u32 i = 0; i < n; ++i) {
    for (size_t k = 0; k < kRuleKeyKinds; ++k) {
      has_key[i][k] = span_rule_key(rows[i]->span, static_cast<RuleKey>(k),
                                    &keys[i][k]);
      if (has_key[i][k]) {
        index.push_back({static_cast<u8>(k), keys[i][k], i});
      }
    }
  }
  std::sort(index.begin(), index.end());

  std::vector<u64> parent_ids(n, 0);
  std::vector<ParentRuleId> rules(n, 0);
  for (u32 i = 0; i < n; ++i) {
    const Span& x = rows[i]->span;
    for (const Rule& rule : kRules) {
      const size_t k = static_cast<size_t>(rule.key);
      if (!has_key[i][k]) continue;
      // Candidates: positions before i in this rule's (kind, key) bucket,
      // scanned latest-first with early exit.
      const auto bucket_end = std::lower_bound(
          index.begin(), index.end(),
          BucketEntry{static_cast<u8>(k), keys[i][k], i});
      auto it = bucket_end;
      bool matched = false;
      while (it != index.begin()) {
        --it;
        if (it->kind != static_cast<u8>(k) || it->key != keys[i][k]) break;
        const Span& p = rows[it->pos]->span;
        if (rule.applies(x, p)) {
          parent_ids[i] = p.span_id;
          rules[i] = rule.id;
          matched = true;
          break;
        }
      }
      if (matched) break;
    }
  }

  // ---- Phase three: emit in display order (Algorithm 1, line 25). Batch
  // materialization straight from the row pointers: one lock per shard
  // involved, no id directory traffic, and the decoded tag sets are shared
  // across spans with the same endpoint pair.
  std::vector<Span> materialized = store_->materialize_rows(rows);
  trace.spans.reserve(n);
  for (u32 i = 0; i < n; ++i) {
    AssembledSpan out;
    out.span = std::move(materialized[i]);
    out.span.parent_span_id = parent_ids[i];
    out.parent_rule = rules[i];
    trace.spans.push_back(std::move(out));
  }

  // ---- Degradation-aware pass (opt-in): adopt orphans under a synthetic
  // lost-span placeholder. An orphan is a root whose own evidence says an
  // upstream span existed — a net span (always forwarded by some client-side
  // syscall, rules 1/2) or a server-side sys/app span carrying a request TCP
  // sequence (some client sent that request, rules 3/4) — so its rootless
  // state can only mean the parent was lost in delivery. One placeholder per
  // trace keeps the lost spans' descendants in a single tree instead of
  // fragmenting the trace into spurious roots.
  if (config_.lost_placeholders) {
    std::vector<u32> orphan_pos;
    for (u32 i = 0; i < n; ++i) {
      if (parent_ids[i] != 0) continue;
      const Span& s = trace.spans[i].span;
      const bool expects_parent =
          s.kind == SpanKind::kNetwork ||
          (is_sys_or_app(s) && s.from_server_side && s.req_tcp_seq != 0);
      if (expects_parent) orphan_pos.push_back(i);
    }
    if (!orphan_pos.empty()) {
      Span placeholder;
      placeholder.span_id = kLostPlaceholderSpanId;
      placeholder.kind = SpanKind::kSystem;
      placeholder.host = "(lost)";
      placeholder.lost_placeholder = true;
      placeholder.start_ts = trace.spans[orphan_pos.front()].span.start_ts;
      placeholder.end_ts = placeholder.start_ts;
      for (const u32 pos : orphan_pos) {
        placeholder.end_ts =
            std::max(placeholder.end_ts, trace.spans[pos].span.end_ts);
        trace.spans[pos].span.parent_span_id = kLostPlaceholderSpanId;
        trace.spans[pos].parent_rule = kLostParentRule;
      }
      AssembledSpan adopted;
      adopted.span = std::move(placeholder);
      adopted.parent_rule = 0;
      // Same start as the earliest orphan; inserting just before it keeps
      // the display order sorted by start time.
      trace.spans.insert(trace.spans.begin() + orphan_pos.front(),
                         std::move(adopted));
      orphans_.fetch_add(orphan_pos.size(), std::memory_order_relaxed);
      placeholders_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  traces_.fetch_add(1, std::memory_order_relaxed);
  iterations_.fetch_add(trace.iterations_used, std::memory_order_relaxed);
  spans_.fetch_add(trace.spans.size(), std::memory_order_relaxed);
  return trace;
}

AssemblerCounters TraceAssembler::counters() const {
  AssemblerCounters c;
  c.traces = traces_.load(std::memory_order_relaxed);
  c.search_iterations = iterations_.load(std::memory_order_relaxed);
  c.spans = spans_.load(std::memory_order_relaxed);
  c.orphan_spans = orphans_.load(std::memory_order_relaxed);
  c.lost_placeholders = placeholders_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace deepflow::server
