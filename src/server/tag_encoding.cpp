#include "server/tag_encoding.h"

#include <unordered_map>

#include "protocols/bytes.h"

namespace deepflow::server {

using agent::Span;
using agent::Tag;
using netsim::ResourceRegistry;

std::vector<Tag> materialize_tags(const Span& span,
                                  const ResourceRegistry& reg) {
  std::vector<Tag> tags;
  tags.reserve(24);
  const netsim::ResourceInfo client = reg.resolve(span.tuple.src_ip);
  const netsim::ResourceInfo server = reg.resolve(span.tuple.dst_ip);

  const auto add = [&tags](std::string key, const std::string& value) {
    if (!value.empty()) tags.push_back(Tag{std::move(key), value});
  };

  add("client.ip", span.tuple.src_ip.to_string());
  add("server.ip", span.tuple.dst_ip.to_string());
  add("vpc", !client.vpc_name.empty() ? client.vpc_name : server.vpc_name);
  add("region", !client.region.empty() ? client.region : server.region);
  add("client.pod", client.pod_name);
  add("client.node", client.node_name);
  add("client.service", client.service_name);
  add("client.az", client.availability_zone);
  add("server.pod", server.pod_name);
  add("server.node", server.node_name);
  add("server.service", server.service_name);
  add("server.az", server.availability_zone);
  for (const netsim::Label& label : client.custom_labels) {
    add("client.label." + label.key, label.value);
  }
  for (const netsim::Label& label : server.custom_labels) {
    add("server.label." + label.key, label.value);
  }
  return tags;
}

namespace {

// ---------------------------------------------------------------- Direct --

class DirectEncoder final : public TagEncoder {
 public:
  std::string_view name() const override { return "direct"; }

  std::string encode(const Span& span, const ResourceRegistry& reg) override {
    // Every tag, fully spelled out, per row: "key=value\n...".
    std::string blob;
    for (const Tag& tag : materialize_tags(span, reg)) {
      blob.append(tag.key).push_back('=');
      blob.append(tag.value).push_back('\n');
    }
    return blob;
  }

  std::vector<Tag> decode(const std::string& blob, const Span&,
                          const ResourceRegistry&) const override {
    std::vector<Tag> tags;
    size_t pos = 0;
    while (pos < blob.size()) {
      const size_t eq = blob.find('=', pos);
      const size_t nl = blob.find('\n', pos);
      if (eq == std::string::npos || nl == std::string::npos || eq > nl) break;
      tags.push_back(Tag{blob.substr(pos, eq - pos),
                         blob.substr(eq + 1, nl - eq - 1)});
      pos = nl + 1;
    }
    return tags;
  }
};

// -------------------------------------------------------- LowCardinality --

class LowCardinalityEncoder final : public TagEncoder {
 public:
  explicit LowCardinalityEncoder(std::shared_ptr<StringInterner> interner)
      : interner_(interner != nullptr ? std::move(interner)
                                      : std::make_shared<StringInterner>()) {}

  std::string_view name() const override { return "low-cardinality"; }

  std::string encode(const Span& span, const ResourceRegistry& reg) override {
    // Rows hold 32-bit dictionary references per key and per value; the
    // shared interner holds each distinct string once. Handles are dense
    // and first-intern-ordered, exactly like the historical private
    // dictionary (pinned by the tag-encoding round-trip tests).
    protocols::BinaryWriter w;
    const std::vector<Tag> tags = materialize_tags(span, reg);
    w.write_u16(static_cast<u16>(tags.size()));
    for (const Tag& tag : tags) {
      w.write_u32(interner_->intern(tag.key));
      w.write_u32(interner_->intern(tag.value));
    }
    return std::move(w).str();
  }

  std::vector<Tag> decode(const std::string& blob, const Span&,
                          const ResourceRegistry&) const override {
    protocols::BinaryReader r(blob);
    std::vector<Tag> tags;
    const auto count = r.read_u16();
    if (!count) return tags;
    tags.reserve(*count);
    for (u16 i = 0; i < *count; ++i) {
      const auto key = r.read_u32();
      const auto value = r.read_u32();
      if (!key || !value) break;
      tags.push_back(Tag{string_of(*key), string_of(*value)});
    }
    return tags;
  }

  u64 auxiliary_bytes() const override { return interner_->approx_bytes(); }

 private:
  std::string string_of(u32 id) const {
    const std::string_view s = interner_->lookup(id);
    return s.empty() ? std::string("?") : std::string(s);
  }

  std::shared_ptr<StringInterner> interner_;
};

// ----------------------------------------------------------------- Smart --

class SmartEncoder final : public TagEncoder {
 public:
  std::string_view name() const override { return "smart"; }

  std::string encode(const Span& span, const ResourceRegistry& reg) override {
    // Phase one happened at the agent: the span already carries integer
    // VPC + IP tags. Phase two here: resolve the integer resource ids for
    // both endpoints and store them as fixed-width ints. No strings.
    protocols::BinaryWriter w;
    w.write_u32(span.int_tags.vpc_id);
    w.write_u32(span.int_tags.client_ip);
    w.write_u32(span.int_tags.server_ip);
    // resolve_ids, not resolve: the blob stores only the integer ids, and
    // the full resolve copies ~8 name strings per endpoint — per span on
    // the ingest path, it dominated encode cost. Byte-identical output.
    const netsim::ResourceIds client =
        reg.resolve_ids(Ipv4{span.int_tags.client_ip});
    const netsim::ResourceIds server =
        reg.resolve_ids(Ipv4{span.int_tags.server_ip});
    w.write_u32(client.pod);
    w.write_u32(client.node);
    w.write_u32(client.service);
    w.write_u32(server.pod);
    w.write_u32(server.node);
    w.write_u32(server.service);
    return std::move(w).str();
  }

  std::vector<Tag> decode(const std::string& blob, const Span& span,
                          const ResourceRegistry& reg) const override {
    // Query-time join: integer ids expand to names, and the self-defined
    // labels are pulled from the registry only now (phase three, Fig 8 (8)).
    protocols::BinaryReader r(blob);
    r.skip(sizeof(u32) * 9);
    if (!r.ok()) return {};
    return materialize_tags(span, reg);
  }
};

}  // namespace

std::unique_ptr<TagEncoder> make_encoder(
    EncoderKind kind, std::shared_ptr<StringInterner> interner) {
  switch (kind) {
    case EncoderKind::kDirect: return std::make_unique<DirectEncoder>();
    case EncoderKind::kLowCardinality:
      return std::make_unique<LowCardinalityEncoder>(std::move(interner));
    case EncoderKind::kSmart: return std::make_unique<SmartEncoder>();
  }
  return nullptr;
}

}  // namespace deepflow::server
