// Canonical, id-independent serialization of spans, stores and assembled
// traces. Volatile identifiers (span id, parent span id, systrace id) are
// assigned in drain order, which legitimately differs between the serial
// and the parallel ingest pipelines; everything else — timing, semantics,
// association attributes, parentage STRUCTURE, tags — must be identical.
// These helpers strip the volatile ids and sort deterministically so two
// runs can be compared byte-for-byte:
//   * the determinism-equivalence test (serial vs N-worker pipelines),
//   * the golden-trace regression tests (assembler refactors cannot
//     silently change the §3.3.3 parentage rules).
#pragma once

#include <string>

#include "server/span_store.h"
#include "server/trace_assembler.h"

namespace deepflow::server {

/// One span as a canonical line: every content field, no volatile ids.
std::string canonical_span(const agent::Span& span);

/// The whole store: materialized spans as canonical lines, sorted, one per
/// line. Two stores with the same content compare equal regardless of
/// ingest order, shard count or id assignment.
std::string canonical_store_dump(const SpanStore& store);

/// An assembled trace as an indented tree. Children are ordered by their
/// canonical subtree serialization, parent links are structural (nesting),
/// and each node carries the parent rule id that placed it — so the 16-rule
/// table of §3.3.3 is pinned down without reference to span id values.
std::string canonical_trace(const AssembledTrace& trace);

}  // namespace deepflow::server
