#include "server/trace_analysis.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace deepflow::server {

namespace {

using agent::Span;
using agent::SpanKind;

bool is_sys_or_app(const Span& s) {
  return s.kind == SpanKind::kSystem || s.kind == SpanKind::kApplication;
}

std::string tag_value(const Span& span, const std::string& key) {
  for (const agent::Tag& tag : span.tags) {
    if (tag.key == key) return tag.value;
  }
  return {};
}

std::string component_of(const Span& span) {
  // Serving identity: the pod the smart-encoded tags resolve to, falling
  // back to host:pid when the endpoint is untagged (external/unknown).
  const std::string pod = tag_value(span, span.from_server_side
                                              ? "server.pod"
                                              : "client.pod");
  if (!pod.empty()) return pod;
  return span.host + ":" + std::to_string(span.pid);
}

}  // namespace

TraceAnalysis analyze(const AssembledTrace& trace) {
  TraceAnalysis analysis;
  if (trace.spans.empty()) return analysis;

  // Root duration = end-to-end time of the user-visible request.
  for (const AssembledSpan& s : trace.spans) {
    if (s.span.parent_span_id == 0 && is_sys_or_app(s.span)) {
      analysis.total_ns = std::max(analysis.total_ns, s.span.duration());
    }
  }

  // Match each client-side session to its server-side counterpart via the
  // request TCP sequence (the same key the assembler chains on).
  std::unordered_map<TcpSeq, const Span*> servers_by_seq;
  for (const AssembledSpan& s : trace.spans) {
    if (is_sys_or_app(s.span) && s.span.from_server_side &&
        s.span.req_tcp_seq != 0) {
      servers_by_seq[s.span.req_tcp_seq] = &s.span;
    }
  }

  // Children index over sys/app spans (for exclusive-time subtraction).
  std::unordered_map<u64, std::vector<const Span*>> children;
  for (const AssembledSpan& s : trace.spans) {
    if (is_sys_or_app(s.span) && s.span.parent_span_id != 0) {
      children[s.span.parent_span_id].push_back(&s.span);
    }
  }

  std::map<std::string, ComponentTime> components;
  std::map<std::string, EdgeTime> edges;

  for (const AssembledSpan& s : trace.spans) {
    const Span& span = s.span;
    if (!is_sys_or_app(span)) continue;

    if (span.from_server_side) {
      // Self time: serving duration minus the outbound calls nested in it.
      DurationNs nested = 0;
      if (const auto it = children.find(span.span_id); it != children.end()) {
        for (const Span* child : it->second) {
          if (!child->from_server_side) nested += child->duration();
        }
      }
      const DurationNs self =
          span.duration() > nested ? span.duration() - nested : 0;
      ComponentTime& ct = components[component_of(span)];
      ct.component = component_of(span);
      ct.self_ns += self;
      ct.total_ns += span.duration();
      ct.spans += 1;
    } else if (span.req_tcp_seq != 0) {
      // Edge network time: the client saw the session for longer than the
      // server served it; the difference is transit + stacks.
      const auto server = servers_by_seq.find(span.req_tcp_seq);
      if (server != servers_by_seq.end() &&
          span.duration() >= server->second->duration()) {
        const DurationNs net = span.duration() - server->second->duration();
        const std::string name = component_of(span) + " -> " +
                                 component_of(*server->second) +
                                 (span.endpoint.empty() ? "" : " " +
                                                                   span.endpoint);
        EdgeTime& et = edges[name];
        et.edge = name;
        et.network_ns += net;
        et.sessions += 1;
      }
    }
  }

  for (auto& [name, ct] : components) {
    analysis.compute_ns += ct.self_ns;
    analysis.components.push_back(std::move(ct));
  }
  for (auto& [name, et] : edges) {
    analysis.network_ns += et.network_ns;
    analysis.edges.push_back(std::move(et));
  }
  std::sort(analysis.components.begin(), analysis.components.end(),
            [](const ComponentTime& a, const ComponentTime& b) {
              return a.self_ns > b.self_ns;
            });
  std::sort(analysis.edges.begin(), analysis.edges.end(),
            [](const EdgeTime& a, const EdgeTime& b) {
              return a.network_ns > b.network_ns;
            });
  return analysis;
}

std::string TraceAnalysis::render() const {
  char line[192];
  std::string out;
  std::snprintf(line, sizeof line,
                "end-to-end %.1fus = compute %.1fus + network %.1fus "
                "(+ capture skew)\n",
                static_cast<double>(total_ns) / 1e3,
                static_cast<double>(compute_ns) / 1e3,
                static_cast<double>(network_ns) / 1e3);
  out += line;
  out += "component self-time:\n";
  for (const ComponentTime& ct : components) {
    std::snprintf(line, sizeof line, "  %-28s %10.1fus  (%zu spans)\n",
                  ct.component.c_str(),
                  static_cast<double>(ct.self_ns) / 1e3, ct.spans);
    out += line;
  }
  out += "edge network time:\n";
  for (const EdgeTime& et : edges) {
    std::snprintf(line, sizeof line, "  %-44s %10.1fus\n", et.edge.c_str(),
                  static_cast<double>(et.network_ns) / 1e3);
    out += line;
  }
  return out;
}

}  // namespace deepflow::server
