// Streaming trace assembly seam (ISSUE 10). The server ingest path emits one
// SpanNote per admitted span (post-dedup, post-metrics-fold, post-store) to an
// attached StreamingHook; the concrete assembler lives in src/assembly and is
// wired up by core::Deployment, so df_server itself never depends on it.
//
// A SpanNote carries only the association keys Algorithm 1 searches on — as
// precomputed hashes — plus timing and an anomaly bit, so the streaming
// grouper never touches Span strings on the hot path. The hook's contract:
//
//   observe/observe_many  called on the ingest thread(s), thread-safe
//   completed(id)         materialized trace for a CLOSED window, or nullptr
//                         (the caller falls back to the batch assembler)
//   flush()               close every open window (end-of-run finalize)
//   completeness(a, b)    the tail sampler's per-window verdict ledger
#pragma once

#include <memory>
#include <vector>

#include "agent/span.h"
#include "common/governor.h"
#include "common/hash.h"
#include "server/store_backend.h"
#include "server/trace_assembler.h"

namespace deepflow::server {

/// Trace-level tail sampling over *completed* streaming windows. Distinct
/// from the governor's span-level kDownsample rung: this one sees whole
/// traces, so "anomalous" means any member span is anomalous, and a healthy
/// trace is kept or dropped atomically.
struct TailSamplingConfig {
  bool enabled = false;
  /// Percentage of healthy (no error / incomplete / placeholder / latency-
  /// outlier span) traces retained, decided by a deterministic hash of the
  /// trace's content key — independent of arrival order and worker count.
  u32 healthy_keep_pct = 25;
  u64 sample_seed = 0x9e3779b97f4a7c15ULL;
  /// When true, spans of dropped traces are also excluded from the pending
  /// segment flush (SpanStore::discard_unflushed), so disk retention follows
  /// the same policy as the index.
  bool drop_from_flush = true;
};

struct StreamingAssemblyConfig {
  bool enabled = false;
  /// The §3.3 disorder window: watermark = max observed start_ts minus this,
  /// clamped at zero and advancing monotonically. A group closes only when
  /// its newest member timestamp is strictly below the watermark, so a span
  /// landing exactly at the boundary can still join.
  DurationNs disorder_window_ns = 60 * kSecond;
  /// Amortize the close scan: check for closable windows once per this many
  /// observed spans (flush() always closes everything regardless).
  u32 close_check_interval_spans = 256;
  /// Hard cap on concurrently open windows (0 = unbounded); the oldest are
  /// force-closed past it. Independent of governor byte pressure.
  size_t max_open_windows = 0;
  /// Background finalizer threads. Closed groups are handed to this pool so
  /// the ingest thread only pays for grouping; flush() always waits for the
  /// queue to drain. 0 = finalize synchronously at close time (deterministic
  /// mid-run visibility; the unit tests run this way).
  u32 finalize_workers = 2;
  /// Ledger granularity for the tail sampler's verdict bookkeeping. Keep the
  /// width equal to the governor's completeness_window_ns so the two ledgers
  /// merge window-for-window in query_completeness.
  DurationNs completeness_window_ns = kSecond;
  size_t completeness_max_windows = 4096;
  TailSamplingConfig tail_sampling;
};

/// Everything the streaming grouper needs from one admitted span. Hashes are
/// precomputed by the server so the grouper's hot path is string-free.
struct SpanNote {
  u64 span_id = 0;
  SystraceId systrace_id = kInvalidSystraceId;
  u64 pseudo_key = 0;      ///< pseudo_thread_key(span); 0 = absent
  u64 x_request_hash = 0;  ///< fnv1a(x_request_id); 0 = absent
  u64 otel_hash = 0;       ///< fnv1a(otel_trace_id); 0 = absent
  TcpSeq req_tcp_seq = 0;
  TcpSeq resp_tcp_seq = 0;
  TimestampNs start_ts = 0;
  TimestampNs end_ts = 0;
  /// Anomaly verdict at ingest time: error / incomplete / placeholder, OR'd
  /// with the metrics plane's RED latency-outlier signal when tail sampling
  /// is enabled. Finalization re-ORs over the materialized trace, so a
  /// conservative false here only costs a redundant check.
  bool anomalous = false;
};

inline SpanNote make_span_note(const agent::Span& span, bool latency_outlier) {
  SpanNote note;
  note.span_id = span.span_id;
  note.systrace_id = span.systrace_id;
  note.pseudo_key = span.pseudo_thread_id != 0 ? pseudo_thread_key(span) : 0;
  note.x_request_hash =
      span.x_request_id.empty() ? 0 : fnv1a(span.x_request_id);
  note.otel_hash = span.otel_trace_id.empty() ? 0 : fnv1a(span.otel_trace_id);
  note.req_tcp_seq = span.req_tcp_seq;
  note.resp_tcp_seq = span.resp_tcp_seq;
  note.start_ts = span.start_ts;
  note.end_ts = span.end_ts;
  note.anomalous =
      latency_outlier || !span.ok || span.incomplete || span.lost_placeholder;
  return note;
}

struct AssemblyTelemetry {
  u64 observed_spans = 0;
  u64 open_windows = 0;       ///< groups not yet closed by the watermark
  TimestampNs max_observed_ts = 0;
  TimestampNs watermark_ns = 0;
  DurationNs watermark_lag_ns = 0;  ///< max_observed_ts - watermark
  u64 late_spans = 0;         ///< arrived with start_ts below the watermark
  u64 finalized_traces = 0;
  u64 finalized_spans = 0;
  u64 forced_closes = 0;      ///< max_open_windows trims
  u64 pressure_closes = 0;    ///< governor kAssembly-ceiling trims
  u64 index_traces = 0;       ///< traces retained in the completed index
  u64 indexed_spans = 0;
  size_t open_bytes = 0;      ///< grouper bookkeeping under GovernorAccount
  size_t index_bytes = 0;     ///< materialized index under GovernorAccount
  // Tail-sampling verdicts (trace granularity).
  u64 kept_anomalous_traces = 0;
  u64 kept_sampled_traces = 0;
  u64 dropped_traces = 0;
  u64 dropped_spans = 0;
  u64 retained_bytes = 0;     ///< approx span bytes of kept traces
  u64 dropped_bytes = 0;
  u64 flush_excluded_spans = 0;  ///< removed from the pending segment flush
  u64 unknown_span_ids = 0;   ///< noted ids the store could not assemble
};

class StreamingHook {
 public:
  virtual ~StreamingHook() = default;

  virtual void observe(const SpanNote& note) = 0;
  virtual void observe_many(const SpanNote* notes, size_t count) = 0;
  /// The finalized trace containing span_id if its window has closed and the
  /// trace was retained; nullptr otherwise (caller falls back to the batch
  /// assembler). The returned object is immutable and shared.
  virtual std::shared_ptr<const AssembledTrace> completed(u64 span_id)
      const = 0;
  /// Close and finalize every open window (end-of-run barrier).
  virtual void flush() = 0;
  virtual AssemblyTelemetry telemetry() const = 0;
  virtual std::vector<CompletenessWindow> completeness(TimestampNs from,
                                                       TimestampNs to)
      const = 0;
};

}  // namespace deepflow::server
