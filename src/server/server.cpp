#include "server/server.h"

#include <algorithm>
#include <chrono>

#include "common/hash.h"
#include "common/thread_pool.h"
#include "metrics/exposition.h"

namespace deepflow::server {

namespace {
u64 steady_now_ns() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}
}  // namespace

DeepFlowServer::DeepFlowServer(const netsim::ResourceRegistry* registry,
                               ServerConfig config)
    : registry_(registry),
      governor_(config.governor),
      store_(config.encoder, registry, config.store_shards, config.storage,
             &governor_),
      assembler_(&store_, config.assembler),
      metrics_(registry, config.metrics, &governor_),
      streaming_config_(config.streaming),
      reaggregator_(config.reaggregation),
      dedup_window_ns_(config.dedup_window_ns) {
  const size_t stripes = config.store_shards > 0 ? config.store_shards : 1;
  dedup_stripes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    dedup_stripes_.push_back(std::make_unique<DedupStripe>());
  }
  if (store_.storage_enabled()) {
    // Recovered spans were deduplicated in their first lifetime; prime the
    // seen-set so an at-least-once transport replaying them after the
    // restart does not store them twice. The watermark is primed from the
    // recovered spans' timestamps so the first post-restart rotation does
    // not immediately forget them.
    u64 recovered = 0;
    for (const u64 id : store_.recovered_ids()) {
      dedup_stripes_[id % dedup_stripes_.size()]->cur.insert(id);
      ++recovered;
    }
    governor_.add_bytes(GovernorAccount::kDedup,
                        recovered * kDedupEntryBytes);
    // Re-fold them into the metrics plane: the aggregator is
    // order-insensitive, so the rebuilt RED/service-map state is
    // byte-identical to a lifetime that never restarted.
    u64 watermark = 0;
    for (const agent::Span& span : store_.recovered_spans()) {
      watermark = std::max(watermark, span.start_ts);
      metrics_.record_span(span);
    }
    dedup_watermark_.store(watermark, std::memory_order_relaxed);
    if (dedup_window_ns_ != 0) {
      const u64 generation = watermark / dedup_window_ns_;
      for (const auto& stripe : dedup_stripes_) {
        stripe->generation = generation;
      }
    }
  }
}

size_t DeepFlowServer::rotate_dedup_locked(DedupStripe& stripe,
                                           u64 generation) {
  if (generation <= stripe.generation) return 0;
  size_t dropped = 0;
  if (generation == stripe.generation + 1) {
    dropped = stripe.prev.size();
    std::swap(stripe.prev, stripe.cur);
    stripe.cur.clear();
  } else {
    dropped = stripe.prev.size() + stripe.cur.size();
    stripe.prev.clear();
    stripe.cur.clear();
  }
  stripe.generation = generation;
  return dropped;
}

bool DeepFlowServer::seen_before(u64 span_id, TimestampNs start_ts) {
  // Advance the disorder watermark (commutative max — arrival order never
  // changes the final generation sequence).
  u64 seen_ts = dedup_watermark_.load(std::memory_order_relaxed);
  while (start_ts > seen_ts &&
         !dedup_watermark_.compare_exchange_weak(seen_ts, start_ts,
                                                 std::memory_order_relaxed)) {
  }
  const u64 generation =
      dedup_window_ns_ == 0
          ? 0
          : std::max(seen_ts, start_ts) / dedup_window_ns_;

  DedupStripe& stripe = *dedup_stripes_[span_id % dedup_stripes_.size()];
  std::lock_guard<std::mutex> lock(stripe.mu);
  size_t dropped = 0;
  if (dedup_window_ns_ != 0) {
    dropped = rotate_dedup_locked(stripe, generation);
  }
  bool duplicate = false;
  bool inserted = false;
  if (stripe.prev.count(span_id) > 0) {
    duplicate = true;
    // Refresh into the live generation so the id's memory follows the
    // watermark for as long as redeliveries keep arriving.
    inserted = stripe.cur.insert(span_id).second;
  } else {
    inserted = stripe.cur.insert(span_id).second;
    duplicate = !inserted;
  }
  if (inserted && dropped > 0) {
    --dropped;
  } else if (inserted) {
    governor_.add_bytes(GovernorAccount::kDedup, kDedupEntryBytes);
  }
  if (dropped > 0) {
    governor_.sub_bytes(GovernorAccount::kDedup, dropped * kDedupEntryBytes);
  }
  return duplicate;
}

u64 DeepFlowServer::trace_key_of(const agent::Span& span) {
  if (!span.x_request_id.empty()) return fnv1a(span.x_request_id);
  if (span.systrace_id != kInvalidSystraceId) return span.systrace_id;
  return span.span_id;
}

bool DeepFlowServer::admit_sample(const metrics::SpanSample& sample,
                                  u64 trace_key) {
  governor_.refresh();
  if (governor_.should_force_seal()) {
    // Rung 1: push hot rows to the warm tier — trims the unflushed overlay
    // (durability exposure) without touching fidelity.
    store_.flush_storage();
    governor_.note_forced_seal();
  }
  const TimestampNs ts = sample.start_ts;
  if (governor_.level() < OverloadLevel::kDownsample) {
    governor_.note_stored(ts);
    return true;
  }
  // Rung 2: span-level tail sampling. Anomalies (errors, incomplete
  // sessions, RED-latency outliers) and every later span of an anomalous
  // trace keep full fidelity; healthy traces are hash-downsampled.
  const bool anomalous = !sample.ok || sample.incomplete ||
                         metrics_.is_latency_outlier(sample);
  if (anomalous) {
    governor_.mark_anomalous(trace_key, ts);
    governor_.note_anomalous_kept(ts);
    return true;
  }
  if (governor_.is_anomalous(trace_key)) {
    governor_.note_anomalous_kept(ts);
    return true;
  }
  if (governor_.admit_healthy(trace_key)) {
    governor_.note_sampled_kept(ts);
    return true;
  }
  governor_.note_downsampled(ts);
  return false;
}

bool DeepFlowServer::streaming_outlier(const agent::Span& span) const {
  if (!streaming_config_.tail_sampling.enabled) return false;
  metrics::SpanSample sample;
  sample.kind = span.kind;
  sample.from_server_side = span.from_server_side;
  sample.ok = span.ok;
  sample.incomplete = span.incomplete;
  sample.server_ip = span.int_tags.server_ip;
  sample.start_ts = span.start_ts;
  sample.duration = span.duration();
  return metrics_.is_latency_outlier(sample);
}

bool DeepFlowServer::admit_span(const agent::Span& span) {
  if (!governor_.active()) return true;
  metrics::SpanSample sample;
  sample.kind = span.kind;
  sample.from_server_side = span.from_server_side;
  sample.ok = span.ok;
  sample.incomplete = span.incomplete;
  sample.server_ip = span.int_tags.server_ip;
  sample.start_ts = span.start_ts;
  sample.duration = span.duration();
  return admit_sample(sample, trace_key_of(span));
}

void DeepFlowServer::note_ingest_clock() {
  const u64 now = steady_now_ns();
  u64 expected = 0;
  first_ingest_ns_.compare_exchange_strong(expected, now,
                                           std::memory_order_relaxed);
  last_ingest_ns_.store(now, std::memory_order_relaxed);
}

void DeepFlowServer::ingest(agent::Span&& span) {
  if (span.span_id != 0 && seen_before(span.span_id, span.start_ts)) {
    duplicate_spans_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Metrics fold AFTER dedup (each session samples exactly once even under
  // at-least-once transports) and BEFORE governor admission: the RED plane
  // stays complete under tail sampling — only trace storage degrades — and
  // the outlier detector sees every offered span.
  metrics_.record_span(span);
  if (!admit_span(span)) return;  // downsampled by the tail sampler
  ingested_.fetch_add(1, std::memory_order_relaxed);
  note_ingest_clock();
  if (ingest_observer_) ingest_observer_(span);
  if (streaming_ != nullptr) {
    // Capture the note BEFORE the store takes ownership, but report the
    // POST-insert id: insert() remaps colliding ids, and the streaming
    // grouper must track the id the store (and the query plane) knows.
    SpanNote note = make_span_note(span, streaming_outlier(span));
    note.span_id = store_.insert(std::move(span));
    streaming_->observe(note);
    return;
  }
  store_.insert(std::move(span));
}

void DeepFlowServer::ingest_batch(std::vector<agent::Span>&& spans) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_spans_.fetch_add(spans.size(), std::memory_order_relaxed);
  u64 seen = max_batch_spans_.load(std::memory_order_relaxed);
  while (seen < spans.size() &&
         !max_batch_spans_.compare_exchange_weak(seen, spans.size(),
                                                 std::memory_order_relaxed)) {
  }
  for (agent::Span& span : spans) ingest(std::move(span));
  spans.clear();
}

void DeepFlowServer::ingest_span_batch(agent::SpanBatch& batch) {
  const size_t n = batch.size();
  if (n == 0) return;
  span_batches_.fetch_add(1, std::memory_order_relaxed);
  span_batch_spans_.fetch_add(n, std::memory_order_relaxed);
  u64 seen = max_span_batch_spans_.load(std::memory_order_relaxed);
  while (seen < n && !max_span_batch_spans_.compare_exchange_weak(
                         seen, n, std::memory_order_relaxed)) {
  }

  // Advance the dedup watermark once for the whole flight (commutative max
  // over the start column).
  const auto& starts = batch.start_ts();
  u64 batch_max_ts = 0;
  for (size_t i = 0; i < n; ++i) {
    batch_max_ts = std::max(batch_max_ts, starts[i]);
  }
  u64 seen_ts = dedup_watermark_.load(std::memory_order_relaxed);
  while (batch_max_ts > seen_ts &&
         !dedup_watermark_.compare_exchange_weak(seen_ts, batch_max_ts,
                                                 std::memory_order_relaxed)) {
  }
  const u64 generation =
      dedup_window_ns_ == 0
          ? 0
          : std::max(seen_ts, batch_max_ts) / dedup_window_ns_;

  // Dedup over the id column, one stripe lock per stripe per batch instead
  // of one per span. The verdict vector is thread-local scratch: warm after
  // the first flight, so the steady-state path allocates nothing here.
  static thread_local std::vector<u8> duplicate;
  duplicate.assign(n, 0);
  const auto& ids = batch.span_ids();
  const size_t stripes = dedup_stripes_.size();
  u64 dups = 0;
  size_t entry_delta_add = 0;
  size_t entry_delta_drop = 0;
  for (size_t s = 0; s < stripes; ++s) {
    DedupStripe& stripe = *dedup_stripes_[s];
    std::lock_guard<std::mutex> lock(stripe.mu);
    if (dedup_window_ns_ != 0) {
      entry_delta_drop += rotate_dedup_locked(stripe, generation);
    }
    for (size_t i = 0; i < n; ++i) {
      const u64 id = ids[i];
      if (id == 0 || id % stripes != s) continue;  // id 0: dedup-exempt
      if (stripe.prev.count(id) > 0) {
        duplicate[i] = 1;
        ++dups;
        if (stripe.cur.insert(id).second) ++entry_delta_add;
      } else if (stripe.cur.insert(id).second) {
        ++entry_delta_add;
      } else {
        duplicate[i] = 1;
        ++dups;
      }
    }
  }
  if (entry_delta_add > entry_delta_drop) {
    governor_.add_bytes(GovernorAccount::kDedup,
                        (entry_delta_add - entry_delta_drop) *
                            kDedupEntryBytes);
  } else if (entry_delta_drop > entry_delta_add) {
    governor_.sub_bytes(GovernorAccount::kDedup,
                        (entry_delta_drop - entry_delta_add) *
                            kDedupEntryBytes);
  }
  if (dups > 0) duplicate_spans_.fetch_add(dups, std::memory_order_relaxed);
  if (n == dups) return;

  // Same per-span order as ingest(): metrics fold (every deduplicated span
  // — the RED plane stays complete under tail sampling), then governor
  // admission, then observer and store for the admitted rows.
  metrics_.record_batch(batch, duplicate);
  u64 dropped = 0;
  if (governor_.active()) {
    const auto& kinds = batch.kinds();
    const auto& int_tags = batch.int_tags();
    const auto& systraces = batch.systrace_ids();
    for (size_t i = 0; i < n; ++i) {
      if (duplicate[i] != 0) continue;
      metrics::SpanSample sample;
      sample.kind = kinds[i];
      sample.from_server_side = batch.from_server_side(i);
      sample.ok = batch.ok(i);
      sample.incomplete = batch.incomplete(i);
      sample.server_ip = int_tags[i].server_ip;
      sample.start_ts = starts[i];
      sample.duration = batch.duration(i);
      const std::string_view xrid = batch.x_request_id(i);
      const u64 key = !xrid.empty() ? fnv1a(xrid)
                      : systraces[i] != kInvalidSystraceId ? systraces[i]
                                                           : ids[i];
      if (!admit_sample(sample, key)) {
        duplicate[i] = 1;  // skip at the store boundary too
        ++dropped;
      }
    }
  }
  const u64 stored = n - dups - dropped;
  if (stored == 0) return;
  ingested_.fetch_add(stored, std::memory_order_relaxed);
  note_ingest_clock();
  if (ingest_observer_) {
    for (size_t i = 0; i < n; ++i) {
      if (duplicate[i] == 0) ingest_observer_(batch.materialize(i));
    }
  }
  store_.insert_batch(batch, duplicate);
  if (streaming_ != nullptr) {
    // Build the flight's SpanNotes straight from the columns (string-free
    // except the hashes). Builder ids are unique, so the pre-insert column
    // id is the stored id in all but the remap edge; a remapped id simply
    // surfaces later as an unknown_span_ids count at finalize.
    static thread_local std::vector<SpanNote> notes;
    notes.clear();
    notes.reserve(stored);
    const auto& kinds = batch.kinds();
    const auto& int_tags = batch.int_tags();
    const auto& systraces = batch.systrace_ids();
    const auto& ptids = batch.pseudo_thread_ids();
    const auto& pids = batch.pids();
    const auto& reqs = batch.req_tcp_seqs();
    const auto& resps = batch.resp_tcp_seqs();
    const auto& ends = batch.end_ts();
    const auto& flags = batch.flags();
    for (size_t i = 0; i < n; ++i) {
      if (duplicate[i] != 0) continue;
      SpanNote note;
      note.span_id = ids[i];
      note.systrace_id = systraces[i];
      if (ptids[i] != 0) {
        // Mirror pseudo_thread_key(span) field-for-field.
        u64 h = fnv1a(batch.host(i));
        h = hash_combine(h, pids[i]);
        note.pseudo_key = hash_combine(h, ptids[i]);
      }
      const std::string_view xrid = batch.x_request_id(i);
      note.x_request_hash = xrid.empty() ? 0 : fnv1a(xrid);
      const std::string_view otel = batch.otel_trace_id(i);
      note.otel_hash = otel.empty() ? 0 : fnv1a(otel);
      note.req_tcp_seq = reqs[i];
      note.resp_tcp_seq = resps[i];
      note.start_ts = starts[i];
      note.end_ts = ends[i];
      bool outlier = false;
      if (streaming_config_.tail_sampling.enabled) {
        metrics::SpanSample sample;
        sample.kind = kinds[i];
        sample.from_server_side = batch.from_server_side(i);
        sample.ok = batch.ok(i);
        sample.incomplete = batch.incomplete(i);
        sample.server_ip = int_tags[i].server_ip;
        sample.start_ts = starts[i];
        sample.duration = batch.duration(i);
        outlier = metrics_.is_latency_outlier(sample);
      }
      note.anomalous =
          outlier || !batch.ok(i) || batch.incomplete(i) ||
          (flags[i] & agent::SpanBatch::kLostPlaceholder) != 0;
      notes.push_back(note);
    }
    if (!notes.empty()) streaming_->observe_many(notes.data(), notes.size());
  }
}

agent::SinkVerdict DeepFlowServer::try_ingest_batch(
    std::vector<agent::Span>& spans) {
  if (governor_.active() &&
      governor_.refresh() >= OverloadLevel::kRefuse) {
    // Rung 4: bounce the batch agent-ward with a retry-after hint. Anomalous
    // spans are pulled out and admitted NOW (a refused anomaly may never
    // come back if the sender's retry budget runs out); the later full-batch
    // retry redelivers them, and idempotent dedup filters the copies.
    const bool exhausted = governor_.exhausted();
    for (const agent::Span& span : spans) {
      if (!exhausted && (!span.ok || span.incomplete)) {
        ingest(agent::Span(span));
      } else {
        governor_.note_refused(span.start_ts);
      }
    }
    governor_.note_refused_batch();
    return agent::SinkVerdict::overloaded(governor_.retry_after_ticks());
  }
  ingest_batch(std::move(spans));
  return agent::SinkVerdict::accepted();
}

void DeepFlowServer::ingest_third_party(agent::Span&& span) {
  span.kind = agent::SpanKind::kThirdParty;
  ingest(std::move(span));
}

void DeepFlowServer::emit_reaggregated(const std::string& host,
                                       agent::Session&& session) {
  const auto [it, inserted] = builders_.try_emplace(host, host, registry_);
  ingest(it->second.build(session));
}

void DeepFlowServer::ingest_straggler(const std::string& host,
                                      agent::MessageData&& message) {
  const u64 flow_key = agent::flow_key_of(message);
  straggler_hosts_[flow_key] = host;
  reaggregator_.offer(flow_key, std::move(message), [this](
                                                        agent::Session&& s) {
    emit_reaggregated(straggler_hosts_[s.flow_key], std::move(s));
  });
}

void DeepFlowServer::finalize() {
  reaggregator_.flush([this](agent::Session&& s) {
    emit_reaggregated(straggler_hosts_[s.flow_key], std::move(s));
  });
}

void DeepFlowServer::ingest_flow_metrics(const FiveTuple& tuple,
                                         const netsim::FlowMetrics& metrics) {
  flow_metrics_[tuple.canonical()] = metrics;
  metrics_.record_flow(tuple, metrics);
}

void DeepFlowServer::ingest_device_metrics(
    const std::string& device, const netsim::DeviceMetrics& metrics) {
  device_metrics_[device] = metrics;
}

void DeepFlowServer::note_agent_drain(const agent::AgentStats& stats) {
  agent_drain_batches_ += stats.drain_batches;
  agent_drain_records_ += stats.drain_batch_records;
  agent_staging_waits_ += stats.staging_ring_waits;
  agent_perf_lost_ += stats.perf_lost;
  if (agent_perf_lost_per_cpu_.size() < stats.perf_lost_per_cpu.size()) {
    agent_perf_lost_per_cpu_.resize(stats.perf_lost_per_cpu.size());
  }
  for (size_t cpu = 0; cpu < stats.perf_lost_per_cpu.size(); ++cpu) {
    agent_perf_lost_per_cpu_[cpu] += stats.perf_lost_per_cpu[cpu];
  }
  agent_enter_map_drops_ += stats.enter_map_record_drops;
}

IngestTelemetry DeepFlowServer::ingest_telemetry() const {
  IngestTelemetry t;
  t.spans = ingested_.load(std::memory_order_relaxed);
  t.batches = batches_.load(std::memory_order_relaxed);
  t.batched_spans = batched_spans_.load(std::memory_order_relaxed);
  t.max_batch_spans = max_batch_spans_.load(std::memory_order_relaxed);
  t.span_batches = span_batches_.load(std::memory_order_relaxed);
  t.span_batch_spans = span_batch_spans_.load(std::memory_order_relaxed);
  t.max_span_batch_spans =
      max_span_batch_spans_.load(std::memory_order_relaxed);
  const u64 first = first_ingest_ns_.load(std::memory_order_relaxed);
  const u64 last = last_ingest_ns_.load(std::memory_order_relaxed);
  if (t.spans > 0 && last > first) {
    t.spans_per_sec =
        static_cast<double>(t.spans) / (static_cast<double>(last - first) / 1e9);
  }
  t.duplicate_spans = duplicate_spans_.load(std::memory_order_relaxed);
  for (const auto& stripe : dedup_stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    t.dedup_entries += stripe->cur.size() + stripe->prev.size();
  }
  t.agent_drain_batches = agent_drain_batches_;
  t.agent_drain_records = agent_drain_records_;
  t.agent_staging_waits = agent_staging_waits_;
  t.agent_perf_lost = agent_perf_lost_;
  t.agent_perf_lost_per_cpu = agent_perf_lost_per_cpu_;
  t.agent_enter_map_drops = agent_enter_map_drops_;
  t.shard_rows = store_.shard_row_counts();
  return t;
}

std::vector<agent::Span> DeepFlowServer::query_span_list(
    TimestampNs from, TimestampNs to, size_t limit) const {
  std::vector<agent::Span> out;
  for (const u64 id : store_.span_list(from, to, limit)) {
    out.push_back(store_.materialize(id));
  }
  return out;
}

AssembledTrace DeepFlowServer::query_trace(u64 span_id) const {
  if (streaming_ != nullptr) {
    // Closed windows are served from the materialized index; still-open
    // windows (and traces the tail sampler dropped) fall back to batch
    // assembly against the live store.
    if (const auto trace = streaming_->completed(span_id)) {
      streaming_hits_.fetch_add(1, std::memory_order_relaxed);
      return *trace;
    }
    streaming_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  return assembler_.assemble(span_id);
}

std::vector<AssembledTrace> DeepFlowServer::assemble_traces(
    const std::vector<u64>& span_ids, size_t workers) const {
  std::vector<AssembledTrace> out(span_ids.size());
  if (workers <= 1 || span_ids.size() <= 1) {
    for (size_t i = 0; i < span_ids.size(); ++i) {
      out[i] = query_trace(span_ids[i]);
    }
    return out;
  }
  // Each assembly is an independent read-only query; the pool fans them out
  // and every worker writes only its own slot.
  ThreadPool pool(workers);
  pool.parallel_for(span_ids.size(), [&](size_t i) {
    out[i] = query_trace(span_ids[i]);
  });
  return out;
}

std::vector<CompletenessWindow> DeepFlowServer::query_completeness(
    TimestampNs from, TimestampNs to) const {
  std::vector<CompletenessWindow> out = governor_.completeness(from, to);
  if (streaming_ != nullptr) {
    out = merge_completeness_windows(std::move(out),
                                     streaming_->completeness(from, to));
  }
  return out;
}

QueryTelemetry DeepFlowServer::query_telemetry() const {
  const StoreQueryCounters store = store_.query_counters();
  const AssemblerCounters assembler = assembler_.counters();
  QueryTelemetry t;
  t.searches = store.searches;
  t.search_keys = store.search_keys;
  t.search_hits = store.search_hits;
  t.rows_touched = store.rows_touched;
  t.shard_locks = store.shard_locks;
  t.tag_cache_hits = store.tag_cache_hits;
  t.traces_assembled = assembler.traces;
  t.assembly_iterations = assembler.search_iterations;
  t.assembled_spans = assembler.spans;
  t.orphan_spans = assembler.orphan_spans;
  t.lost_placeholders = assembler.lost_placeholders;
  t.streaming_index_hits = streaming_hits_.load(std::memory_order_relaxed);
  t.streaming_fallback_assemblies =
      streaming_fallbacks_.load(std::memory_order_relaxed);
  return t;
}

std::string DeepFlowServer::prometheus_metrics() const {
  metrics::PrometheusWriter writer;
  metrics::write_aggregator(writer, metrics_);

  // The server's own self-observability rides in the same scrape (§3.4:
  // DeepFlow monitors itself with itself).
  const IngestTelemetry ingest = ingest_telemetry();
  const std::pair<const char*, u64> ingest_gauges[] = {
      {"deepflow_ingest_spans", ingest.spans},
      {"deepflow_ingest_batches", ingest.batches},
      {"deepflow_ingest_batched_spans", ingest.batched_spans},
      {"deepflow_ingest_max_batch_spans", ingest.max_batch_spans},
      {"deepflow_ingest_span_batches", ingest.span_batches},
      {"deepflow_ingest_span_batch_spans", ingest.span_batch_spans},
      {"deepflow_ingest_max_span_batch_spans", ingest.max_span_batch_spans},
      {"deepflow_ingest_duplicate_spans", ingest.duplicate_spans},
      {"deepflow_ingest_dedup_entries", ingest.dedup_entries},
      {"deepflow_ingest_agent_drain_batches", ingest.agent_drain_batches},
      {"deepflow_ingest_agent_drain_records", ingest.agent_drain_records},
      {"deepflow_ingest_agent_staging_waits", ingest.agent_staging_waits},
      {"deepflow_ingest_agent_perf_lost", ingest.agent_perf_lost},
      {"deepflow_ingest_agent_enter_map_drops", ingest.agent_enter_map_drops},
  };
  for (const auto& [name, value] : ingest_gauges) {
    writer.family(name, "gauge", "Server ingest-path self-telemetry.");
    writer.sample(name, {}, value);
  }
  writer.family("deepflow_ingest_spans_per_sec", "gauge",
                "Server ingest-path self-telemetry.");
  writer.sample("deepflow_ingest_spans_per_sec", {}, ingest.spans_per_sec);
  writer.family("deepflow_ingest_shard_rows", "gauge",
                "Rows stored per span-store shard.");
  for (size_t shard = 0; shard < ingest.shard_rows.size(); ++shard) {
    writer.sample("deepflow_ingest_shard_rows",
                  {{"shard", std::to_string(shard)}},
                  static_cast<u64>(ingest.shard_rows[shard]));
  }

  const QueryTelemetry query = query_telemetry();
  const std::pair<const char*, u64> query_gauges[] = {
      {"deepflow_query_searches", query.searches},
      {"deepflow_query_search_keys", query.search_keys},
      {"deepflow_query_search_hits", query.search_hits},
      {"deepflow_query_rows_touched", query.rows_touched},
      {"deepflow_query_shard_locks", query.shard_locks},
      {"deepflow_query_tag_cache_hits", query.tag_cache_hits},
      {"deepflow_query_traces_assembled", query.traces_assembled},
      {"deepflow_query_assembly_iterations", query.assembly_iterations},
      {"deepflow_query_assembled_spans", query.assembled_spans},
      {"deepflow_query_orphan_spans", query.orphan_spans},
      {"deepflow_query_lost_placeholders", query.lost_placeholders},
  };
  for (const auto& [name, value] : query_gauges) {
    writer.family(name, "gauge", "Server query-path self-telemetry.");
    writer.sample(name, {}, value);
  }

  if (governor_.accounting()) {
    const GovernorTelemetry gov = governor_.telemetry();
    writer.family("deepflow_governor_level", "gauge",
                  "Overload ladder rung (0=normal..4=refuse).");
    writer.sample("deepflow_governor_level",
                  {{"name", overload_level_name(gov.level)}},
                  static_cast<u64>(gov.level));
    static const char* kAccountNames[kGovernorAccounts] = {
        "hot_store", "unflushed_store", "metrics", "transport_queue",
        "interner", "dedup",           "arena",   "assembly"};
    writer.family("deepflow_governor_account_bytes", "gauge",
                  "Governed bytes per account.");
    for (size_t i = 0; i < kGovernorAccounts; ++i) {
      writer.sample("deepflow_governor_account_bytes",
                    {{"account", kAccountNames[i]}},
                    static_cast<u64>(gov.account_bytes[i]));
    }
    const std::pair<const char*, u64> governor_gauges[] = {
        {"deepflow_governor_budget_bytes", gov.budget_bytes},
        {"deepflow_governor_total_bytes", gov.total_bytes},
        {"deepflow_governor_level_transitions", gov.level_transitions},
        {"deepflow_governor_forced_seals", gov.forced_seals},
        {"deepflow_governor_downsampled_spans", gov.downsampled_spans},
        {"deepflow_governor_sampled_kept_spans", gov.sampled_kept_spans},
        {"deepflow_governor_anomalous_kept_spans", gov.anomalous_kept_spans},
        {"deepflow_governor_refused_batches", gov.refused_batches},
        {"deepflow_governor_refused_spans", gov.refused_spans},
        {"deepflow_governor_shed_net_spans", gov.shed_net_spans},
    };
    for (const auto& [name, value] : governor_gauges) {
      writer.family(name, "gauge", "Overload control-plane telemetry.");
      writer.sample(name, {}, value);
    }
  }

  if (shared_interner_ != nullptr) {
    const std::pair<const char*, u64> interner_gauges[] = {
        {"deepflow_interner_size",
         static_cast<u64>(shared_interner_->size())},
        {"deepflow_interner_bytes",
         static_cast<u64>(shared_interner_->approx_bytes())},
        {"deepflow_interner_overflow", shared_interner_->overflow_count()},
    };
    for (const auto& [name, value] : interner_gauges) {
      writer.family(name, "gauge",
                    "Shared string-interner cardinality telemetry.");
      writer.sample(name, {}, value);
    }
  }

  if (store_.storage_enabled()) {
    const storage::StorageTelemetry st = store_.storage_telemetry();
    const std::pair<const char*, u64> storage_gauges[] = {
        {"deepflow_storage_segments_written", st.segments_written},
        {"deepflow_storage_flushed_spans", st.flushed_spans},
        {"deepflow_storage_flush_batches", st.flush_batches},
        {"deepflow_storage_recovered_segments", st.recovered_segments},
        {"deepflow_storage_recovered_spans", st.recovered_spans},
        {"deepflow_storage_torn_segments", st.torn_segments},
        {"deepflow_storage_quarantined_segments", st.quarantined_segments},
        {"deepflow_storage_decode_failures", st.decode_failures},
        {"deepflow_storage_compactions", st.compactions},
        {"deepflow_storage_compacted_segments", st.compacted_segments},
        {"deepflow_storage_warm_searches", st.warm_searches},
        {"deepflow_storage_bloom_segment_skips", st.bloom_segment_skips},
        {"deepflow_storage_warm_rows_loaded", st.warm_rows_loaded},
        {"deepflow_storage_disk_bytes", st.disk_bytes},
    };
    for (const auto& [name, value] : storage_gauges) {
      writer.family(name, "gauge", "Persistent segment-store telemetry.");
      writer.sample(name, {}, value);
    }
  }

  if (streaming_ != nullptr) {
    const AssemblyTelemetry st = streaming_->telemetry();
    const std::pair<const char*, u64> assembly_gauges[] = {
        {"deepflow_assembly_observed_spans", st.observed_spans},
        {"deepflow_assembly_open_windows", st.open_windows},
        {"deepflow_assembly_watermark_ns", st.watermark_ns},
        {"deepflow_assembly_watermark_lag_ns", st.watermark_lag_ns},
        {"deepflow_assembly_late_spans", st.late_spans},
        {"deepflow_assembly_finalized_traces", st.finalized_traces},
        {"deepflow_assembly_finalized_spans", st.finalized_spans},
        {"deepflow_assembly_forced_closes", st.forced_closes},
        {"deepflow_assembly_pressure_closes", st.pressure_closes},
        {"deepflow_assembly_index_traces", st.index_traces},
        {"deepflow_assembly_indexed_spans", st.indexed_spans},
        {"deepflow_assembly_open_bytes", st.open_bytes},
        {"deepflow_assembly_index_bytes", st.index_bytes},
        {"deepflow_assembly_kept_anomalous_traces", st.kept_anomalous_traces},
        {"deepflow_assembly_kept_sampled_traces", st.kept_sampled_traces},
        {"deepflow_assembly_dropped_traces", st.dropped_traces},
        {"deepflow_assembly_dropped_spans", st.dropped_spans},
        {"deepflow_assembly_retained_bytes", st.retained_bytes},
        {"deepflow_assembly_dropped_bytes", st.dropped_bytes},
        {"deepflow_assembly_flush_excluded_spans", st.flush_excluded_spans},
        {"deepflow_assembly_unknown_span_ids", st.unknown_span_ids},
        {"deepflow_assembly_index_hits",
         streaming_hits_.load(std::memory_order_relaxed)},
        {"deepflow_assembly_fallback_assemblies",
         streaming_fallbacks_.load(std::memory_order_relaxed)},
    };
    for (const auto& [name, value] : assembly_gauges) {
      writer.family(name, "gauge",
                    "Streaming assembly and tail-sampling telemetry.");
      writer.sample(name, {}, value);
    }
  }
  return writer.str();
}

const netsim::FlowMetrics* DeepFlowServer::metrics_for(
    const agent::Span& span) const {
  const auto it = flow_metrics_.find(span.tuple.canonical());
  return it == flow_metrics_.end() ? nullptr : &it->second;
}

const netsim::DeviceMetrics* DeepFlowServer::device_metrics(
    const std::string& name) const {
  const auto it = device_metrics_.find(name);
  return it == device_metrics_.end() ? nullptr : &it->second;
}

}  // namespace deepflow::server
