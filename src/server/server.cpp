#include "server/server.h"

namespace deepflow::server {

DeepFlowServer::DeepFlowServer(const netsim::ResourceRegistry* registry,
                               ServerConfig config)
    : registry_(registry),
      store_(config.encoder, registry),
      assembler_(&store_, config.assembler),
      reaggregator_(config.reaggregation) {}

void DeepFlowServer::ingest(agent::Span&& span) {
  ++ingested_;
  store_.insert(std::move(span));
}

void DeepFlowServer::ingest_third_party(agent::Span&& span) {
  span.kind = agent::SpanKind::kThirdParty;
  ingest(std::move(span));
}

void DeepFlowServer::emit_reaggregated(const std::string& host,
                                       agent::Session&& session) {
  const auto [it, inserted] = builders_.try_emplace(host, host, registry_);
  ingest(it->second.build(session));
}

void DeepFlowServer::ingest_straggler(const std::string& host,
                                      agent::MessageData&& message) {
  const u64 flow_key = agent::flow_key_of(message);
  straggler_hosts_[flow_key] = host;
  reaggregator_.offer(flow_key, std::move(message), [this](
                                                        agent::Session&& s) {
    emit_reaggregated(straggler_hosts_[s.flow_key], std::move(s));
  });
}

void DeepFlowServer::finalize() {
  reaggregator_.flush([this](agent::Session&& s) {
    emit_reaggregated(straggler_hosts_[s.flow_key], std::move(s));
  });
}

void DeepFlowServer::ingest_flow_metrics(const FiveTuple& tuple,
                                         const netsim::FlowMetrics& metrics) {
  flow_metrics_[tuple.canonical()] = metrics;
}

void DeepFlowServer::ingest_device_metrics(
    const std::string& device, const netsim::DeviceMetrics& metrics) {
  device_metrics_[device] = metrics;
}

std::vector<agent::Span> DeepFlowServer::query_span_list(
    TimestampNs from, TimestampNs to, size_t limit) const {
  std::vector<agent::Span> out;
  for (const u64 id : store_.span_list(from, to, limit)) {
    out.push_back(store_.materialize(id));
  }
  return out;
}

AssembledTrace DeepFlowServer::query_trace(u64 span_id) const {
  return assembler_.assemble(span_id);
}

const netsim::FlowMetrics* DeepFlowServer::metrics_for(
    const agent::Span& span) const {
  const auto it = flow_metrics_.find(span.tuple.canonical());
  return it == flow_metrics_.end() ? nullptr : &it->second;
}

const netsim::DeviceMetrics* DeepFlowServer::device_metrics(
    const std::string& name) const {
  const auto it = device_metrics_.find(name);
  return it == device_metrics_.end() ? nullptr : &it->second;
}

}  // namespace deepflow::server
