#include "server/server.h"

#include <chrono>

#include "common/thread_pool.h"
#include "metrics/exposition.h"

namespace deepflow::server {

namespace {
u64 steady_now_ns() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}
}  // namespace

DeepFlowServer::DeepFlowServer(const netsim::ResourceRegistry* registry,
                               ServerConfig config)
    : registry_(registry),
      store_(config.encoder, registry, config.store_shards, config.storage),
      assembler_(&store_, config.assembler),
      metrics_(registry, config.metrics),
      reaggregator_(config.reaggregation) {
  const size_t stripes = config.store_shards > 0 ? config.store_shards : 1;
  dedup_stripes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    dedup_stripes_.push_back(std::make_unique<DedupStripe>());
  }
  if (store_.storage_enabled()) {
    // Recovered spans were deduplicated in their first lifetime; prime the
    // seen-set so an at-least-once transport replaying them after the
    // restart does not store them twice.
    for (const u64 id : store_.recovered_ids()) {
      dedup_stripes_[id % dedup_stripes_.size()]->seen.insert(id);
    }
    // Re-fold them into the metrics plane: the aggregator is
    // order-insensitive, so the rebuilt RED/service-map state is
    // byte-identical to a lifetime that never restarted.
    for (const agent::Span& span : store_.recovered_spans()) {
      metrics_.record_span(span);
    }
  }
}

bool DeepFlowServer::seen_before(u64 span_id) {
  DedupStripe& stripe = *dedup_stripes_[span_id % dedup_stripes_.size()];
  std::lock_guard<std::mutex> lock(stripe.mu);
  return !stripe.seen.insert(span_id).second;
}

void DeepFlowServer::note_ingest_clock() {
  const u64 now = steady_now_ns();
  u64 expected = 0;
  first_ingest_ns_.compare_exchange_strong(expected, now,
                                           std::memory_order_relaxed);
  last_ingest_ns_.store(now, std::memory_order_relaxed);
}

void DeepFlowServer::ingest(agent::Span&& span) {
  if (span.span_id != 0 && seen_before(span.span_id)) {
    duplicate_spans_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ingested_.fetch_add(1, std::memory_order_relaxed);
  note_ingest_clock();
  // Metrics fold AFTER dedup (each session samples exactly once even under
  // at-least-once transports) and BEFORE the store takes ownership.
  metrics_.record_span(span);
  if (ingest_observer_) ingest_observer_(span);
  store_.insert(std::move(span));
}

void DeepFlowServer::ingest_batch(std::vector<agent::Span>&& spans) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_spans_.fetch_add(spans.size(), std::memory_order_relaxed);
  u64 seen = max_batch_spans_.load(std::memory_order_relaxed);
  while (seen < spans.size() &&
         !max_batch_spans_.compare_exchange_weak(seen, spans.size(),
                                                 std::memory_order_relaxed)) {
  }
  for (agent::Span& span : spans) ingest(std::move(span));
  spans.clear();
}

void DeepFlowServer::ingest_span_batch(agent::SpanBatch& batch) {
  const size_t n = batch.size();
  if (n == 0) return;
  span_batches_.fetch_add(1, std::memory_order_relaxed);
  span_batch_spans_.fetch_add(n, std::memory_order_relaxed);
  u64 seen = max_span_batch_spans_.load(std::memory_order_relaxed);
  while (seen < n && !max_span_batch_spans_.compare_exchange_weak(
                         seen, n, std::memory_order_relaxed)) {
  }

  // Dedup over the id column, one stripe lock per stripe per batch instead
  // of one per span. The verdict vector is thread-local scratch: warm after
  // the first flight, so the steady-state path allocates nothing here.
  static thread_local std::vector<u8> duplicate;
  duplicate.assign(n, 0);
  const auto& ids = batch.span_ids();
  const size_t stripes = dedup_stripes_.size();
  u64 dups = 0;
  for (size_t s = 0; s < stripes; ++s) {
    DedupStripe& stripe = *dedup_stripes_[s];
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (size_t i = 0; i < n; ++i) {
      const u64 id = ids[i];
      if (id == 0 || id % stripes != s) continue;  // id 0: dedup-exempt
      if (!stripe.seen.insert(id).second) {
        duplicate[i] = 1;
        ++dups;
      }
    }
  }
  if (dups > 0) duplicate_spans_.fetch_add(dups, std::memory_order_relaxed);
  const u64 stored = n - dups;
  if (stored == 0) return;
  ingested_.fetch_add(stored, std::memory_order_relaxed);
  note_ingest_clock();

  // Same per-span order as ingest(): metrics fold, then observer, then the
  // store — only the store boundary materializes Span objects.
  metrics_.record_batch(batch, duplicate);
  if (ingest_observer_) {
    for (size_t i = 0; i < n; ++i) {
      if (duplicate[i] == 0) ingest_observer_(batch.materialize(i));
    }
  }
  store_.insert_batch(batch, duplicate);
}

void DeepFlowServer::ingest_third_party(agent::Span&& span) {
  span.kind = agent::SpanKind::kThirdParty;
  ingest(std::move(span));
}

void DeepFlowServer::emit_reaggregated(const std::string& host,
                                       agent::Session&& session) {
  const auto [it, inserted] = builders_.try_emplace(host, host, registry_);
  ingest(it->second.build(session));
}

void DeepFlowServer::ingest_straggler(const std::string& host,
                                      agent::MessageData&& message) {
  const u64 flow_key = agent::flow_key_of(message);
  straggler_hosts_[flow_key] = host;
  reaggregator_.offer(flow_key, std::move(message), [this](
                                                        agent::Session&& s) {
    emit_reaggregated(straggler_hosts_[s.flow_key], std::move(s));
  });
}

void DeepFlowServer::finalize() {
  reaggregator_.flush([this](agent::Session&& s) {
    emit_reaggregated(straggler_hosts_[s.flow_key], std::move(s));
  });
}

void DeepFlowServer::ingest_flow_metrics(const FiveTuple& tuple,
                                         const netsim::FlowMetrics& metrics) {
  flow_metrics_[tuple.canonical()] = metrics;
  metrics_.record_flow(tuple, metrics);
}

void DeepFlowServer::ingest_device_metrics(
    const std::string& device, const netsim::DeviceMetrics& metrics) {
  device_metrics_[device] = metrics;
}

void DeepFlowServer::note_agent_drain(const agent::AgentStats& stats) {
  agent_drain_batches_ += stats.drain_batches;
  agent_drain_records_ += stats.drain_batch_records;
  agent_staging_waits_ += stats.staging_ring_waits;
  agent_perf_lost_ += stats.perf_lost;
  if (agent_perf_lost_per_cpu_.size() < stats.perf_lost_per_cpu.size()) {
    agent_perf_lost_per_cpu_.resize(stats.perf_lost_per_cpu.size());
  }
  for (size_t cpu = 0; cpu < stats.perf_lost_per_cpu.size(); ++cpu) {
    agent_perf_lost_per_cpu_[cpu] += stats.perf_lost_per_cpu[cpu];
  }
  agent_enter_map_drops_ += stats.enter_map_record_drops;
}

IngestTelemetry DeepFlowServer::ingest_telemetry() const {
  IngestTelemetry t;
  t.spans = ingested_.load(std::memory_order_relaxed);
  t.batches = batches_.load(std::memory_order_relaxed);
  t.batched_spans = batched_spans_.load(std::memory_order_relaxed);
  t.max_batch_spans = max_batch_spans_.load(std::memory_order_relaxed);
  t.span_batches = span_batches_.load(std::memory_order_relaxed);
  t.span_batch_spans = span_batch_spans_.load(std::memory_order_relaxed);
  t.max_span_batch_spans =
      max_span_batch_spans_.load(std::memory_order_relaxed);
  const u64 first = first_ingest_ns_.load(std::memory_order_relaxed);
  const u64 last = last_ingest_ns_.load(std::memory_order_relaxed);
  if (t.spans > 0 && last > first) {
    t.spans_per_sec =
        static_cast<double>(t.spans) / (static_cast<double>(last - first) / 1e9);
  }
  t.duplicate_spans = duplicate_spans_.load(std::memory_order_relaxed);
  t.agent_drain_batches = agent_drain_batches_;
  t.agent_drain_records = agent_drain_records_;
  t.agent_staging_waits = agent_staging_waits_;
  t.agent_perf_lost = agent_perf_lost_;
  t.agent_perf_lost_per_cpu = agent_perf_lost_per_cpu_;
  t.agent_enter_map_drops = agent_enter_map_drops_;
  t.shard_rows = store_.shard_row_counts();
  return t;
}

std::vector<agent::Span> DeepFlowServer::query_span_list(
    TimestampNs from, TimestampNs to, size_t limit) const {
  std::vector<agent::Span> out;
  for (const u64 id : store_.span_list(from, to, limit)) {
    out.push_back(store_.materialize(id));
  }
  return out;
}

AssembledTrace DeepFlowServer::query_trace(u64 span_id) const {
  return assembler_.assemble(span_id);
}

std::vector<AssembledTrace> DeepFlowServer::assemble_traces(
    const std::vector<u64>& span_ids, size_t workers) const {
  std::vector<AssembledTrace> out(span_ids.size());
  if (workers <= 1 || span_ids.size() <= 1) {
    for (size_t i = 0; i < span_ids.size(); ++i) {
      out[i] = assembler_.assemble(span_ids[i]);
    }
    return out;
  }
  // Each assembly is an independent read-only query; the pool fans them out
  // and every worker writes only its own slot.
  ThreadPool pool(workers);
  pool.parallel_for(span_ids.size(), [&](size_t i) {
    out[i] = assembler_.assemble(span_ids[i]);
  });
  return out;
}

QueryTelemetry DeepFlowServer::query_telemetry() const {
  const StoreQueryCounters store = store_.query_counters();
  const AssemblerCounters assembler = assembler_.counters();
  QueryTelemetry t;
  t.searches = store.searches;
  t.search_keys = store.search_keys;
  t.search_hits = store.search_hits;
  t.rows_touched = store.rows_touched;
  t.shard_locks = store.shard_locks;
  t.tag_cache_hits = store.tag_cache_hits;
  t.traces_assembled = assembler.traces;
  t.assembly_iterations = assembler.search_iterations;
  t.assembled_spans = assembler.spans;
  t.orphan_spans = assembler.orphan_spans;
  t.lost_placeholders = assembler.lost_placeholders;
  return t;
}

std::string DeepFlowServer::prometheus_metrics() const {
  metrics::PrometheusWriter writer;
  metrics::write_aggregator(writer, metrics_);

  // The server's own self-observability rides in the same scrape (§3.4:
  // DeepFlow monitors itself with itself).
  const IngestTelemetry ingest = ingest_telemetry();
  const std::pair<const char*, u64> ingest_gauges[] = {
      {"deepflow_ingest_spans", ingest.spans},
      {"deepflow_ingest_batches", ingest.batches},
      {"deepflow_ingest_batched_spans", ingest.batched_spans},
      {"deepflow_ingest_max_batch_spans", ingest.max_batch_spans},
      {"deepflow_ingest_span_batches", ingest.span_batches},
      {"deepflow_ingest_span_batch_spans", ingest.span_batch_spans},
      {"deepflow_ingest_max_span_batch_spans", ingest.max_span_batch_spans},
      {"deepflow_ingest_duplicate_spans", ingest.duplicate_spans},
      {"deepflow_ingest_agent_drain_batches", ingest.agent_drain_batches},
      {"deepflow_ingest_agent_drain_records", ingest.agent_drain_records},
      {"deepflow_ingest_agent_staging_waits", ingest.agent_staging_waits},
      {"deepflow_ingest_agent_perf_lost", ingest.agent_perf_lost},
      {"deepflow_ingest_agent_enter_map_drops", ingest.agent_enter_map_drops},
  };
  for (const auto& [name, value] : ingest_gauges) {
    writer.family(name, "gauge", "Server ingest-path self-telemetry.");
    writer.sample(name, {}, value);
  }
  writer.family("deepflow_ingest_spans_per_sec", "gauge",
                "Server ingest-path self-telemetry.");
  writer.sample("deepflow_ingest_spans_per_sec", {}, ingest.spans_per_sec);
  writer.family("deepflow_ingest_shard_rows", "gauge",
                "Rows stored per span-store shard.");
  for (size_t shard = 0; shard < ingest.shard_rows.size(); ++shard) {
    writer.sample("deepflow_ingest_shard_rows",
                  {{"shard", std::to_string(shard)}},
                  static_cast<u64>(ingest.shard_rows[shard]));
  }

  const QueryTelemetry query = query_telemetry();
  const std::pair<const char*, u64> query_gauges[] = {
      {"deepflow_query_searches", query.searches},
      {"deepflow_query_search_keys", query.search_keys},
      {"deepflow_query_search_hits", query.search_hits},
      {"deepflow_query_rows_touched", query.rows_touched},
      {"deepflow_query_shard_locks", query.shard_locks},
      {"deepflow_query_tag_cache_hits", query.tag_cache_hits},
      {"deepflow_query_traces_assembled", query.traces_assembled},
      {"deepflow_query_assembly_iterations", query.assembly_iterations},
      {"deepflow_query_assembled_spans", query.assembled_spans},
      {"deepflow_query_orphan_spans", query.orphan_spans},
      {"deepflow_query_lost_placeholders", query.lost_placeholders},
  };
  for (const auto& [name, value] : query_gauges) {
    writer.family(name, "gauge", "Server query-path self-telemetry.");
    writer.sample(name, {}, value);
  }

  if (store_.storage_enabled()) {
    const storage::StorageTelemetry st = store_.storage_telemetry();
    const std::pair<const char*, u64> storage_gauges[] = {
        {"deepflow_storage_segments_written", st.segments_written},
        {"deepflow_storage_flushed_spans", st.flushed_spans},
        {"deepflow_storage_flush_batches", st.flush_batches},
        {"deepflow_storage_recovered_segments", st.recovered_segments},
        {"deepflow_storage_recovered_spans", st.recovered_spans},
        {"deepflow_storage_torn_segments", st.torn_segments},
        {"deepflow_storage_quarantined_segments", st.quarantined_segments},
        {"deepflow_storage_decode_failures", st.decode_failures},
        {"deepflow_storage_compactions", st.compactions},
        {"deepflow_storage_compacted_segments", st.compacted_segments},
        {"deepflow_storage_warm_searches", st.warm_searches},
        {"deepflow_storage_bloom_segment_skips", st.bloom_segment_skips},
        {"deepflow_storage_warm_rows_loaded", st.warm_rows_loaded},
        {"deepflow_storage_disk_bytes", st.disk_bytes},
    };
    for (const auto& [name, value] : storage_gauges) {
      writer.family(name, "gauge", "Persistent segment-store telemetry.");
      writer.sample(name, {}, value);
    }
  }
  return writer.str();
}

const netsim::FlowMetrics* DeepFlowServer::metrics_for(
    const agent::Span& span) const {
  const auto it = flow_metrics_.find(span.tuple.canonical());
  return it == flow_metrics_.end() ? nullptr : &it->second;
}

const netsim::DeviceMetrics* DeepFlowServer::device_metrics(
    const std::string& name) const {
  const auto it = device_metrics_.find(name);
  return it == device_metrics_.end() ? nullptr : &it->second;
}

}  // namespace deepflow::server
