// The read seam between trace assembly and span storage (the Driver-style
// backend abstraction): Algorithm 1 needs exactly three read operations —
// a point lookup by span id, an any-attribute search returning stable row
// pointers, and batch materialization of those rows. SpanReadBackend names
// that contract, so the assembler runs unchanged over a single SpanStore
// (the historical path, zero-indirection-cost aside from one virtual call)
// or over a federated scatter-gather view that unions the stores of every
// live cluster node (src/cluster/federated_source.h).
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "agent/span.h"

namespace deepflow::server {

/// One stored row: span columns + encoded tags.
struct SpanRow {
  agent::Span span;       // tags vector left empty; blob holds encodings
  std::string tag_blob;
  u32 shard = 0;          // owning shard (set at insert; row-routed decode)
};

/// Filter for the iterative span search (Algorithm 1, lines 5-11): a span
/// matches when ANY of its association attributes appears in the filter.
struct SearchFilter {
  std::unordered_set<SystraceId> systrace_ids;
  std::unordered_set<u64> pseudo_thread_keys;  // hash(host, pid, ptid)
  std::unordered_set<std::string> x_request_ids;
  std::unordered_set<TcpSeq> tcp_seqs;
  std::unordered_set<std::string> otel_trace_ids;

  bool empty() const {
    return systrace_ids.empty() && pseudo_thread_keys.empty() &&
           x_request_ids.empty() && tcp_seqs.empty() &&
           otel_trace_ids.empty();
  }

  size_t key_count() const {
    return systrace_ids.size() + pseudo_thread_keys.size() +
           x_request_ids.size() + tcp_seqs.size() + otel_trace_ids.size();
  }
};

/// Key combining host, pid and pseudo-thread id — pseudo-thread ids are only
/// unique per kernel, so cross-host aliasing must be excluded.
u64 pseudo_thread_key(const agent::Span& span);

/// The assembler's view of storage. Implementations must honour the
/// SpanStore contracts the assembler relies on: returned row pointers stay
/// valid for the caller's lifetime, search_rows is sorted by ascending span
/// id with no duplicate ids, and materialize_rows is positionally aligned
/// with its input (nullptr entries yield empty spans). All three methods
/// are const and safe to call from any number of threads concurrently.
class SpanReadBackend {
 public:
  virtual ~SpanReadBackend() = default;

  virtual const SpanRow* row(u64 span_id) const = 0;
  virtual std::vector<const SpanRow*> search_rows(
      const SearchFilter& filter) const = 0;
  virtual std::vector<agent::Span> materialize_rows(
      const std::vector<const SpanRow*>& rows) const = 0;
};

}  // namespace deepflow::server
