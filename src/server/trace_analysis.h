// Latency decomposition of an assembled trace: the "rapid problem location"
// analysis the DeepFlow front end offers on top of raw traces. Splits a
// request's end-to-end time into per-component self time (computation
// inside one serving process) and per-edge network time (client-observed
// minus server-observed duration of the same session, which is transit +
// kernel stack — measurable only because both sides of every edge are
// captured).
#pragma once

#include <string>
#include <vector>

#include "server/trace_assembler.h"

namespace deepflow::server {

/// Self (exclusive) time spent inside one serving component.
struct ComponentTime {
  std::string component;  // serving pod name (or host:pid when untagged)
  DurationNs self_ns = 0;
  DurationNs total_ns = 0;  // inclusive (sum of its server-side spans)
  size_t spans = 0;
};

/// Network share of one client->server edge.
struct EdgeTime {
  std::string edge;  // "client-pod -> server-pod /endpoint"
  DurationNs network_ns = 0;
  size_t sessions = 0;
};

struct TraceAnalysis {
  DurationNs total_ns = 0;      // root span duration
  DurationNs network_ns = 0;    // summed over edges
  DurationNs compute_ns = 0;    // summed component self time
  std::vector<ComponentTime> components;  // sorted, largest self time first
  std::vector<EdgeTime> edges;            // sorted, largest network first

  /// Human-readable summary table for terminals.
  std::string render() const;
};

/// Decompose `trace`. Works on any assembled trace; incomplete spans
/// contribute what they observed.
TraceAnalysis analyze(const AssembledTrace& trace);

}  // namespace deepflow::server
