#include "server/span_store.h"

#include <algorithm>

#include "common/hash.h"

namespace deepflow::server {

u64 pseudo_thread_key(const agent::Span& span) {
  u64 h = fnv1a(span.host);
  h = hash_combine(h, span.pid);
  return hash_combine(h, span.pseudo_thread_id);
}

SpanStore::SpanStore(EncoderKind encoder_kind,
                     const netsim::ResourceRegistry* registry,
                     size_t shard_count)
    : registry_(registry) {
  const size_t count = shard_count == 0 ? 1 : shard_count;
  shards_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->encoder = make_encoder(encoder_kind);
    shards_.push_back(std::move(shard));
  }
}

size_t SpanStore::shard_index(const agent::Span& span) const {
  if (shards_.size() == 1) return 0;
  // Stable content hash over association attributes: the same span lands on
  // the same shard no matter which thread ingests it, and the spans of one
  // request flow (same systrace id) cluster for search locality.
  u64 key;
  if (span.systrace_id != kInvalidSystraceId) {
    key = mix64(span.systrace_id);
  } else if (!span.x_request_id.empty()) {
    key = fnv1a(span.x_request_id);
  } else if (span.req_tcp_seq != 0) {
    key = mix64(span.req_tcp_seq);
  } else if (!span.otel_trace_id.empty()) {
    key = fnv1a(span.otel_trace_id);
  } else {
    key = mix64(hash_combine(fnv1a(span.host), span.start_ts));
  }
  return static_cast<size_t>(key % shards_.size());
}

u64 SpanStore::insert(agent::Span span) {
  const size_t idx = shard_index(span);
  Shard& shard = *shards_[idx];
  std::lock_guard<std::mutex> lock(shard.mu);
  // Defensive uniqueness: a colliding or zero id gets remapped into a
  // store-private range (tagged with the shard index so remaps stay unique
  // across shards) rather than silently shadowing an existing row.
  if (span.span_id == 0 || shard.rows.contains(span.span_id)) {
    span.span_id =
        (u64{1} << 56) | (static_cast<u64>(idx) << 40) | ++shard.remap_counter;
  }
  const u64 id = span.span_id;
  SpanRow row;
  if (registry_ != nullptr) {
    row.tag_blob = shard.encoder->encode(span, *registry_);
  }
  span.tags.clear();  // tags live in the blob, not the row columns
  shard.blob_bytes += row.tag_blob.size();
  index_span(shard, span, id);
  row.span = std::move(span);
  shard.rows.emplace(id, std::move(row));
  return id;
}

void SpanStore::index_span(Shard& shard, const agent::Span& span, u64 id) {
  if (span.systrace_id != kInvalidSystraceId) {
    shard.by_systrace[span.systrace_id].push_back(id);
  }
  if (span.pseudo_thread_id != 0) {
    shard.by_pseudo_thread[pseudo_thread_key(span)].push_back(id);
  }
  if (!span.x_request_id.empty()) {
    shard.by_x_request_id[span.x_request_id].push_back(id);
  }
  if (span.req_tcp_seq != 0) shard.by_tcp_seq[span.req_tcp_seq].push_back(id);
  if (span.resp_tcp_seq != 0) shard.by_tcp_seq[span.resp_tcp_seq].push_back(id);
  if (!span.otel_trace_id.empty()) {
    shard.by_otel_id[span.otel_trace_id].push_back(id);
  }
  shard.by_time.emplace_back(span.start_ts, id);
  shard.time_sorted = false;
}

const SpanRow* SpanStore::row(u64 span_id) const {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    const auto it = shard->rows.find(span_id);
    // Safe to hand out after unlocking: rows are node-based and immutable
    // once inserted.
    if (it != shard->rows.end()) return &it->second;
  }
  return nullptr;
}

agent::Span SpanStore::materialize(u64 span_id) const {
  for (const auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    const auto it = shard->rows.find(span_id);
    if (it == shard->rows.end()) continue;
    agent::Span span = it->second.span;
    if (registry_ != nullptr) {
      span.tags = shard->encoder->decode(it->second.tag_blob, span, *registry_);
    }
    return span;
  }
  return {};
}

std::vector<u64> SpanStore::search(const SearchFilter& filter) const {
  std::unordered_set<u64> result;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    const auto collect = [&result](const auto& index, const auto& keys) {
      for (const auto& key : keys) {
        const auto it = index.find(key);
        if (it == index.end()) continue;
        result.insert(it->second.begin(), it->second.end());
      }
    };
    collect(shard->by_systrace, filter.systrace_ids);
    collect(shard->by_pseudo_thread, filter.pseudo_thread_keys);
    collect(shard->by_x_request_id, filter.x_request_ids);
    collect(shard->by_tcp_seq, filter.tcp_seqs);
    collect(shard->by_otel_id, filter.otel_trace_ids);
  }
  return std::vector<u64>(result.begin(), result.end());
}

std::vector<u64> SpanStore::span_list(TimestampNs from, TimestampNs to,
                                      size_t limit) const {
  // Collect up to `limit` in-range entries per shard, then merge-sort; the
  // global cut of the merged order equals the single-shard result.
  std::vector<std::pair<TimestampNs, u64>> merged;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (!shard->time_sorted) {
      std::sort(shard->by_time.begin(), shard->by_time.end());
      shard->time_sorted = true;
    }
    auto lo = std::lower_bound(shard->by_time.begin(), shard->by_time.end(),
                               std::make_pair(from, u64{0}));
    size_t taken = 0;
    for (auto it = lo; it != shard->by_time.end() && it->first <= to; ++it) {
      if (taken >= limit) break;
      merged.push_back(*it);
      ++taken;
    }
  }
  if (shards_.size() > 1) std::sort(merged.begin(), merged.end());
  std::vector<u64> out;
  out.reserve(std::min(limit, merged.size()));
  for (const auto& [ts, id] : merged) {
    if (out.size() >= limit) break;
    out.push_back(id);
  }
  return out;
}

size_t SpanStore::row_count() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->rows.size();
  }
  return n;
}

std::vector<size_t> SpanStore::shard_row_counts() const {
  std::vector<size_t> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.push_back(shard->rows.size());
  }
  return out;
}

u64 SpanStore::blob_bytes() const {
  u64 n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->blob_bytes;
  }
  return n;
}

u64 SpanStore::encoder_aux_bytes() const {
  u64 n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->encoder->auxiliary_bytes();
  }
  return n;
}

std::string_view SpanStore::encoder_name() const {
  return shards_[0]->encoder->name();
}

}  // namespace deepflow::server
