#include "server/span_store.h"

#include <algorithm>
#include <mutex>

#include "common/hash.h"

namespace deepflow::server {

u64 pseudo_thread_key(const agent::Span& span) {
  u64 h = fnv1a(span.host);
  h = hash_combine(h, span.pid);
  return hash_combine(h, span.pseudo_thread_id);
}

namespace {

// Kind tags for the per-shard key Bloom filter: the same attribute value
// under different indexes must set different bits.
enum BloomKind : u8 {
  kBloomSystrace,
  kBloomPseudoThread,
  kBloomXRequestId,
  kBloomTcpSeq,
  kBloomOtelId,
};

u64 bloom_key_hash(BloomKind kind, u64 value) {
  return mix64(value ^ (0x9e3779b97f4a7c15ULL * (u64{kind} + 1)));
}

/// Governor accounting for one hot row: the row struct, its owned span
/// strings (approx_span_bytes counts sizeof(Span) once; SpanRow embeds it),
/// the encoded tag blob, and a flat estimate for the secondary-index,
/// directory and time-index entries the row fans out into.
size_t governed_row_bytes(const SpanRow& row) {
  return sizeof(SpanRow) +
         (agent::approx_span_bytes(row.span) - sizeof(agent::Span)) +
         row.tag_blob.size() + 96;
}

}  // namespace

SpanStore::SpanStore(EncoderKind encoder_kind,
                     const netsim::ResourceRegistry* registry,
                     size_t shard_count, storage::StorageConfig storage,
                     ResourceGovernor* governor)
    : registry_(registry), governor_(governor), encoder_kind_(encoder_kind) {
  const size_t count = shard_count == 0 ? 1 : shard_count;
  shards_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->encoder = make_encoder(encoder_kind);
    shard->bloom_enabled = count > 1;  // single shard: no fan-out to avoid
    shards_.push_back(std::move(shard));
  }
  if (count > 1) {
    directory_.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      directory_.push_back(std::make_unique<DirectoryStripe>());
    }
  }

  if (storage.enabled && !storage.dir.empty()) {
    // Low-cardinality blobs reference shard-private dictionaries that die
    // with the process, so segments re-encode their tags against a
    // per-segment dictionary; direct/smart blobs are self-contained and
    // stored verbatim.
    tag_mode_ = encoder_kind == EncoderKind::kLowCardinality
                    ? storage::TagColumnMode::kSegmentDict
                    : storage::TagColumnMode::kEncoderBlob;
    warm_decoder_ = make_encoder(encoder_kind);
    warm_ = std::make_unique<WarmTier>();
    storage_ = std::make_unique<storage::SegmentStore>(std::move(storage));
    storage_->recover();
    // Claim every recovered id so a new insert colliding with a warm span
    // is remapped instead of shadowing it (the same arbitration insert()
    // applies between hot rows).
    for (const u64 id : storage_->serving_ids()) {
      warm_ids_.insert(id);
      if (!directory_.empty()) claim_id(id, kWarmShard);
    }
    if (storage_->config().background_flush) {
      flush_thread_ = std::thread([this] {
        const auto interval = std::chrono::milliseconds(
            std::max<u32>(1, storage_->config().flush_interval_ms));
        std::unique_lock lock(flush_mu_);
        while (!stop_flush_) {
          flush_cv_.wait_for(lock, interval);
          if (stop_flush_) break;
          lock.unlock();
          flush_sealed();
          lock.lock();
        }
      });
    }
  }
}

SpanStore::~SpanStore() {
  if (flush_thread_.joinable()) {
    {
      std::lock_guard lock(flush_mu_);
      stop_flush_ = true;
    }
    flush_cv_.notify_all();
    flush_thread_.join();
  }
  if (storage_ != nullptr && storage_->config().flush_on_close) {
    flush_storage();
  }
}

size_t SpanStore::shard_index(const agent::Span& span) const {
  if (shards_.size() == 1) return 0;
  // Stable content hash over association attributes: the same span lands on
  // the same shard no matter which thread ingests it, and the spans of one
  // request flow (same systrace id) cluster for search locality.
  u64 key;
  if (span.systrace_id != kInvalidSystraceId) {
    key = mix64(span.systrace_id);
  } else if (!span.x_request_id.empty()) {
    key = fnv1a(span.x_request_id);
  } else if (span.req_tcp_seq != 0) {
    key = mix64(span.req_tcp_seq);
  } else if (!span.otel_trace_id.empty()) {
    key = fnv1a(span.otel_trace_id);
  } else {
    key = mix64(hash_combine(fnv1a(span.host), span.start_ts));
  }
  return static_cast<size_t>(key % shards_.size());
}

bool SpanStore::claim_id(u64 id, size_t shard_idx) {
  DirectoryStripe& stripe = *directory_[mix64(id) % directory_.size()];
  std::unique_lock lock(stripe.mu);
  return stripe.shard_of.emplace(id, static_cast<u32>(shard_idx)).second;
}

void SpanStore::prepare_span_id(agent::Span& span, size_t idx) {
  // Defensive uniqueness: a colliding or zero id gets remapped into a
  // store-private range (tagged with the shard index so remaps stay unique
  // across shards) rather than silently shadowing an existing row.
  //
  // Multi-shard stores enforce uniqueness through the directory: placement
  // hashes span *content*, so two spans with the same id can land on
  // different shards and a shard-local check would miss the collision. The
  // id is claimed before the row is inserted; readers that win the race see
  // the directory entry but no row yet — same as an incomplete insert.
  if (directory_.empty()) return;
  // Recovered warm ids are pre-claimed (ctor), so collisions with the
  // previous lifetime's spans remap exactly like hot collisions.
  if (span.span_id == 0 || !claim_id(span.span_id, idx)) {
    Shard& shard = *shards_[idx];
    span.span_id =
        (u64{1} << 56) | (static_cast<u64>(idx) << 40) |
        (shard.remap_counter.fetch_add(1, std::memory_order_relaxed) + 1);
    claim_id(span.span_id, idx);  // remap range: always succeeds
  }
}

std::pair<u64, bool> SpanStore::insert_locked(size_t idx, agent::Span&& span) {
  Shard& shard = *shards_[idx];
  if (directory_.empty() &&
      (span.span_id == 0 || shard.rows.contains(span.span_id) ||
       warm_ids_.contains(span.span_id))) {
    span.span_id =
        (u64{1} << 56) | (static_cast<u64>(idx) << 40) |
        (shard.remap_counter.fetch_add(1, std::memory_order_relaxed) + 1);
  }
  const u64 id = span.span_id;
  SpanRow row;
  row.shard = static_cast<u32>(idx);
  if (registry_ != nullptr) {
    row.tag_blob = shard.encoder->encode(span, *registry_);
  }
  span.tags.clear();  // tags live in the blob, not the row columns
  shard.blob_bytes += row.tag_blob.size();
  row.span = std::move(span);
  // Insert before indexing: the secondary indexes point at the stored row
  // (node-based map, so the address is stable for the store's lifetime).
  const auto [it, inserted] = shard.rows.emplace(id, std::move(row));
  index_span(shard, it->second, id);
  if (governor_ != nullptr && inserted) {
    const size_t bytes = governed_row_bytes(it->second);
    governor_->add_bytes(GovernorAccount::kHotStore, bytes);
    if (storage_ != nullptr) {
      governor_->add_bytes(GovernorAccount::kUnflushedStore, bytes);
    }
  }
  bool seal = false;
  if (storage_ != nullptr) {
    shard.unflushed.push_back(id);
    seal = !storage_->config().background_flush &&
           shard.unflushed.size() >= storage_->config().segment_spans;
  }
  return {id, seal};
}

u64 SpanStore::insert(agent::Span span) {
  const size_t idx = shard_index(span);
  prepare_span_id(span, idx);
  std::unique_lock lock(shards_[idx]->mu);
  const auto [id, seal] = insert_locked(idx, std::move(span));
  lock.unlock();
  // Inline seal (no background thread): the inserting thread pays the
  // flush, like a memtable rotation. Racing inserters are fine — whoever
  // gets there first steals the batch, the others see an empty window.
  if (seal) flush_shard(idx, /*force=*/false);
  return id;
}

size_t SpanStore::insert_batch(const agent::SpanBatch& batch,
                               const std::vector<u8>& skip) {
  const size_t n = batch.size();
  size_t stored = 0;
  size_t cur = ~size_t{0};
  bool seal_cur = false;
  std::unique_lock<std::shared_mutex> lock;
  const auto close_shard = [&] {
    if (lock.owns_lock()) lock.unlock();
    if (seal_cur) {
      flush_shard(cur, /*force=*/false);
      seal_cur = false;
    }
  };
  for (size_t i = 0; i < n; ++i) {
    if (i < skip.size() && skip[i] != 0) continue;
    agent::Span span = batch.materialize(i);
    const size_t idx = shard_index(span);
    // The directory claim takes only a directory-stripe mutex (never a
    // shard lock), so claiming while a shard lock is held cannot deadlock.
    prepare_span_id(span, idx);
    if (idx != cur) {
      close_shard();
      lock = std::unique_lock(shards_[idx]->mu);
      cur = idx;
    }
    seal_cur |= insert_locked(idx, std::move(span)).second;
    ++stored;
  }
  close_shard();
  return stored;
}

void SpanStore::index_span(Shard& shard, const SpanRow& row, u64 id) {
  const agent::Span& span = row.span;
  const SpanRow* ptr = &row;
  if (span.systrace_id != kInvalidSystraceId) {
    shard.by_systrace[span.systrace_id].push_back(ptr);
    shard.bloom_add(bloom_key_hash(kBloomSystrace, span.systrace_id));
  }
  if (span.pseudo_thread_id != 0) {
    const u64 key = pseudo_thread_key(span);
    shard.by_pseudo_thread[key].push_back(ptr);
    shard.bloom_add(bloom_key_hash(kBloomPseudoThread, key));
  }
  if (!span.x_request_id.empty()) {
    shard.by_x_request_id[span.x_request_id].push_back(ptr);
    shard.bloom_add(bloom_key_hash(kBloomXRequestId, fnv1a(span.x_request_id)));
  }
  if (span.req_tcp_seq != 0) {
    shard.by_tcp_seq[span.req_tcp_seq].push_back(ptr);
    shard.bloom_add(bloom_key_hash(kBloomTcpSeq, span.req_tcp_seq));
  }
  if (span.resp_tcp_seq != 0) {
    shard.by_tcp_seq[span.resp_tcp_seq].push_back(ptr);
    shard.bloom_add(bloom_key_hash(kBloomTcpSeq, span.resp_tcp_seq));
  }
  if (!span.otel_trace_id.empty()) {
    shard.by_otel_id[span.otel_trace_id].push_back(ptr);
    shard.bloom_add(bloom_key_hash(kBloomOtelId, fnv1a(span.otel_trace_id)));
  }
  shard.by_time.emplace_back(span.start_ts, id);
  shard.time_sorted = false;
}

const SpanStore::Shard* SpanStore::locate(u64 span_id) const {
  if (shards_.size() == 1) return shards_[0].get();
  const DirectoryStripe& stripe =
      *directory_[mix64(span_id) % directory_.size()];
  std::shared_lock lock(stripe.mu);
  const auto it = stripe.shard_of.find(span_id);
  // Warm ids are claimed with the kWarmShard sentinel: no hot shard owns
  // them, the caller falls through to the warm tier.
  if (it == stripe.shard_of.end() || it->second >= shards_.size()) {
    return nullptr;
  }
  return shards_[it->second].get();
}

const SpanRow* SpanStore::row(u64 span_id) const {
  rows_touched_.fetch_add(1, std::memory_order_relaxed);
  const Shard* shard = locate(span_id);
  if (shard != nullptr) {
    shard_locks_.fetch_add(1, std::memory_order_relaxed);
    std::shared_lock lock(shard->mu);
    const auto it = shard->rows.find(span_id);
    // Safe to hand out after unlocking: rows are node-based and immutable
    // once inserted.
    if (it != shard->rows.end()) return &it->second;
  }
  return warm_row(span_id);
}

agent::Span SpanStore::materialize(u64 span_id) const {
  rows_touched_.fetch_add(1, std::memory_order_relaxed);
  const Shard* shard = locate(span_id);
  if (shard != nullptr) {
    shard_locks_.fetch_add(1, std::memory_order_relaxed);
    std::shared_lock lock(shard->mu);
    const auto it = shard->rows.find(span_id);
    if (it != shard->rows.end()) {
      agent::Span span = it->second.span;
      if (registry_ != nullptr) {
        span.tags =
            shard->encoder->decode(it->second.tag_blob, span, *registry_);
      }
      return span;
    }
  }
  const SpanRow* warm = warm_row(span_id);
  if (warm == nullptr) return {};
  agent::Span span = warm->span;
  if (registry_ != nullptr) span.tags = warm_tags(*warm);
  return span;
}

std::vector<agent::Span> SpanStore::materialize_many(
    const std::vector<u64>& span_ids) const {
  // Resolve ids to rows (one shard lock per shard, not per id), then decode
  // through the row-pointer path. Pointers survive the unlock: rows are
  // node-based and immutable once inserted.
  std::vector<const SpanRow*> rows(span_ids.size(), nullptr);
  std::vector<std::vector<u32>> by_shard(shards_.size());
  for (size_t i = 0; i < span_ids.size(); ++i) {
    if (shards_.size() == 1) {
      by_shard[0].push_back(static_cast<u32>(i));
      continue;
    }
    const DirectoryStripe& stripe =
        *directory_[mix64(span_ids[i]) % directory_.size()];
    std::shared_lock lock(stripe.mu);
    const auto it = stripe.shard_of.find(span_ids[i]);
    if (it != stripe.shard_of.end() && it->second < shards_.size()) {
      by_shard[it->second].push_back(static_cast<u32>(i));
    }
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    const Shard& shard = *shards_[s];
    shard_locks_.fetch_add(1, std::memory_order_relaxed);
    std::shared_lock lock(shard.mu);
    for (const u32 i : by_shard[s]) {
      const auto it = shard.rows.find(span_ids[i]);
      if (it != shard.rows.end()) rows[i] = &it->second;
    }
  }
  // Ids the hot shards don't hold may live in the warm tier.
  if (storage_ != nullptr) warm_fill(span_ids, rows);
  return materialize_rows(rows);
}

std::vector<agent::Span> SpanStore::materialize_rows(
    const std::vector<const SpanRow*>& rows) const {
  rows_touched_.fetch_add(rows.size(), std::memory_order_relaxed);
  std::vector<agent::Span> out(rows.size());

  // Group batch positions by owning shard so each shard is locked once.
  // Warm-tier rows (shard == kWarmShard) decode through their own path.
  std::vector<std::vector<u32>> by_shard(shards_.size());
  std::vector<u32> warm_group;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] == nullptr) continue;
    if (rows[i]->shard == kWarmShard) {
      warm_group.push_back(static_cast<u32>(i));
    } else {
      by_shard[rows[i]->shard].push_back(static_cast<u32>(i));
    }
  }
  for (const u32 i : warm_group) {
    out[i] = rows[i]->span;
    if (registry_ != nullptr) out[i].tags = warm_tags(*rows[i]);
  }

  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    const Shard& shard = *shards_[s];
    shard_locks_.fetch_add(1, std::memory_order_relaxed);
    std::shared_lock lock(shard.mu);

    // Tag-cache epoch check: resolve() output may change whenever the
    // registry mutates, so a version bump drops every cached tag set.
    if (registry_ != nullptr) {
      const u64 version = registry_->version();
      std::shared_lock cache_read(shard.tag_cache_mu);
      if (shard.tag_cache_version != version) {
        cache_read.unlock();
        std::unique_lock cache_write(shard.tag_cache_mu);
        if (shard.tag_cache_version != version) {
          shard.tag_cache.clear();
          shard.tag_cache_version = version;
        }
      }
    }

    const std::vector<u32>& group = by_shard[s];
    std::vector<u32> misses;
    std::vector<std::string> miss_keys;
    u64 hits = 0;
    // Cache key: client ip + server ip + blob. Decode output is a pure
    // function of that tuple given a registry version: smart decoding
    // joins on the tuple ips, direct blobs spell the tags out, and
    // low-cardinality blobs hold ids into the shard-local dictionary
    // (the cache is per shard, so that stays unambiguous). The key is
    // assembled in a reused buffer and probed as a string_view — one cache
    // lock and zero allocations for a fully warm batch.
    std::string key_buf;
    std::shared_lock cache_read(shard.tag_cache_mu);
    for (size_t j = 0; j < group.size(); ++j) {
      // Rows of one batch are scattered across the heap; overlap the next
      // row's (likely cold) lines with copying the current one.
      if (j + 1 < group.size()) {
        const SpanRow* next = rows[group[j + 1]];
        __builtin_prefetch(next);
        __builtin_prefetch(next->tag_blob.data());
      }
      const SpanRow& row = *rows[group[j]];
      agent::Span& span = out[group[j]];
      span = row.span;
      if (registry_ == nullptr) continue;
      key_buf.clear();
      key_buf.append(reinterpret_cast<const char*>(&span.tuple.src_ip.addr),
                     sizeof(u32));
      key_buf.append(reinterpret_cast<const char*>(&span.tuple.dst_ip.addr),
                     sizeof(u32));
      key_buf.append(row.tag_blob);
      const auto cached = shard.tag_cache.find(std::string_view{key_buf});
      if (cached != shard.tag_cache.end()) {
        span.tags = *cached->second;
        ++hits;
      } else {
        misses.push_back(group[j]);
        miss_keys.push_back(key_buf);
      }
    }
    cache_read.unlock();
    if (hits != 0) tag_cache_hits_.fetch_add(hits, std::memory_order_relaxed);
    if (misses.empty()) continue;
    // Decode outside the cache lock (still under the shard's shared lock),
    // then publish all new entries in one exclusive acquisition. Duplicate
    // keys within the batch decode twice and the second emplace is a no-op
    // — same tags either way.
    std::vector<std::shared_ptr<const std::vector<agent::Tag>>> entries;
    entries.reserve(misses.size());
    for (const u32 i : misses) {
      agent::Span& span = out[i];
      span.tags = shard.encoder->decode(rows[i]->tag_blob, span, *registry_);
      entries.push_back(
          std::make_shared<const std::vector<agent::Tag>>(span.tags));
    }
    std::unique_lock cache_write(shard.tag_cache_mu);
    for (size_t k = 0; k < misses.size(); ++k) {
      shard.tag_cache.emplace(std::move(miss_keys[k]), std::move(entries[k]));
    }
  }
  return out;
}

std::vector<u64> SpanStore::search(const SearchFilter& filter) const {
  const std::vector<const SpanRow*> rows = search_rows(filter);
  std::vector<u64> out;
  out.reserve(rows.size());
  for (const SpanRow* row : rows) out.push_back(row->span.span_id);
  return out;  // search_rows is ascending by id already
}

std::vector<const SpanRow*> SpanStore::search_rows(
    const SearchFilter& filter) const {
  searches_.fetch_add(1, std::memory_order_relaxed);
  search_keys_.fetch_add(filter.key_count(), std::memory_order_relaxed);
  std::vector<const SpanRow*> out;
  // Hit rows are scattered heap nodes that every caller dereferences
  // immediately (dedup sort reads span ids, assembly walks the spans);
  // issuing the loads at collection time overlaps their DRAM latency with
  // the rest of the probing.
  const auto emit = [&out](const std::vector<const SpanRow*>& rows) {
    for (const SpanRow* row : rows) {
      __builtin_prefetch(row);
      out.push_back(row);
    }
  };

  // Two shard-exclusion mechanisms keep a fan-out search from probing (or
  // even locking) shards that cannot match:
  //  * systrace keys are exactly routable — placement puts every span
  //    carrying systrace id S on shard mix64(S) % N (shard_index's first
  //    branch), so only that shard's by_systrace can hold S;
  //  * every other attribute may ride on a span placed by its systrace id,
  //    so those keys consult the shard's key Bloom filter instead. Each
  //    key's filter hash (string bytes included) is computed once here,
  //    not once per shard.
  const size_t nshards = shards_.size();
  std::vector<std::pair<SystraceId, size_t>> systrace;  // (key, owner shard)
  std::vector<std::pair<u64, u64>> pseudo;              // (key, bloom hash)
  std::vector<std::pair<const std::string*, u64>> xrid;
  std::vector<std::pair<TcpSeq, u64>> seqs;
  std::vector<std::pair<const std::string*, u64>> otel;
  systrace.reserve(filter.systrace_ids.size());
  for (const SystraceId k : filter.systrace_ids) {
    systrace.emplace_back(k, nshards > 1 ? mix64(k) % nshards : 0);
  }
  pseudo.reserve(filter.pseudo_thread_keys.size());
  for (const u64 k : filter.pseudo_thread_keys) {
    pseudo.emplace_back(k, bloom_key_hash(kBloomPseudoThread, k));
  }
  xrid.reserve(filter.x_request_ids.size());
  for (const std::string& k : filter.x_request_ids) {
    xrid.emplace_back(&k, bloom_key_hash(kBloomXRequestId, fnv1a(k)));
  }
  seqs.reserve(filter.tcp_seqs.size());
  for (const TcpSeq k : filter.tcp_seqs) {
    seqs.emplace_back(k, bloom_key_hash(kBloomTcpSeq, k));
  }
  otel.reserve(filter.otel_trace_ids.size());
  for (const std::string& k : filter.otel_trace_ids) {
    otel.emplace_back(&k, bloom_key_hash(kBloomOtelId, fnv1a(k)));
  }

  for (size_t s = 0; s < nshards; ++s) {
    const Shard& shard = *shards_[s];
    // Lock the shard only if some key can be present. The Bloom probes run
    // without the shard lock (atomic words); at worst they miss a key
    // inserted concurrently, which is the same snapshot a lock taken
    // before that insert would have seen.
    const auto shard_can_match = [&] {
      for (const auto& [key, owner] : systrace) {
        if (owner == s) return true;
      }
      for (const auto& [key, h] : pseudo) {
        if (shard.bloom_may_contain(h)) return true;
      }
      for (const auto& [key, h] : xrid) {
        if (shard.bloom_may_contain(h)) return true;
      }
      for (const auto& [key, h] : seqs) {
        if (shard.bloom_may_contain(h)) return true;
      }
      for (const auto& [key, h] : otel) {
        if (shard.bloom_may_contain(h)) return true;
      }
      return false;
    };
    if (!shard_can_match()) continue;
    shard_locks_.fetch_add(1, std::memory_order_relaxed);
    std::shared_lock lock(shard.mu);
    for (const auto& [key, owner] : systrace) {
      if (owner != s) continue;
      const auto it = shard.by_systrace.find(key);
      if (it != shard.by_systrace.end()) emit(it->second);
    }
    for (const auto& [key, h] : pseudo) {
      if (!shard.bloom_may_contain(h)) continue;
      const auto it = shard.by_pseudo_thread.find(key);
      if (it != shard.by_pseudo_thread.end()) emit(it->second);
    }
    for (const auto& [key, h] : xrid) {
      if (!shard.bloom_may_contain(h)) continue;
      const auto it = shard.by_x_request_id.find(*key);
      if (it != shard.by_x_request_id.end()) emit(it->second);
    }
    for (const auto& [key, h] : seqs) {
      if (!shard.bloom_may_contain(h)) continue;
      const auto it = shard.by_tcp_seq.find(key);
      if (it != shard.by_tcp_seq.end()) emit(it->second);
    }
    for (const auto& [key, h] : otel) {
      if (!shard.bloom_may_contain(h)) continue;
      const auto it = shard.by_otel_id.find(*key);
      if (it != shard.by_otel_id.end()) emit(it->second);
    }
  }
  // Warm tier: the same keys probed against the serving segments (Bloom
  // filters prune whole segments, matches are promoted into the arena so
  // the returned pointers obey the same stability contract as hot rows).
  if (storage_ != nullptr) warm_search(filter, out);
  // Deterministic order: ascending span id (ids are unique, so duplicate
  // hits — a span matching several keys — collapse via unique()).
  std::sort(out.begin(), out.end(), [](const SpanRow* a, const SpanRow* b) {
    return a->span.span_id < b->span.span_id;
  });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  search_hits_.fetch_add(out.size(), std::memory_order_relaxed);
  return out;
}

std::vector<u64> SpanStore::span_list(TimestampNs from, TimestampNs to,
                                      size_t limit) const {
  // Collect up to `limit` in-range entries per shard, then merge-sort; the
  // global cut of the merged order equals the single-shard result.
  std::vector<std::pair<TimestampNs, u64>> merged;
  for (const auto& shard : shards_) {
    shard_locks_.fetch_add(1, std::memory_order_relaxed);
    const auto scan = [&] {
      auto lo = std::lower_bound(shard->by_time.begin(), shard->by_time.end(),
                                 std::make_pair(from, u64{0}));
      size_t taken = 0;
      for (auto it = lo; it != shard->by_time.end() && it->first <= to; ++it) {
        if (taken >= limit) break;
        merged.push_back(*it);
        ++taken;
      }
    };
    std::shared_lock lock(shard->mu);
    if (shard->time_sorted) {
      scan();
    } else {
      // Lazy sort mutates the time index: upgrade to an exclusive lock
      // (re-checking — another upgrader may have sorted meanwhile).
      lock.unlock();
      std::unique_lock writer(shard->mu);
      if (!shard->time_sorted) {
        std::sort(shard->by_time.begin(), shard->by_time.end());
        shard->time_sorted = true;
      }
      scan();
    }
  }
  bool warm_added = false;
  if (storage_ != nullptr) {
    for (const auto& [ts, id] : storage_->time_entries()) {
      if (ts >= from && ts <= to) {
        merged.emplace_back(ts, id);
        warm_added = true;
      }
    }
  }
  if (shards_.size() > 1 || warm_added) {
    std::sort(merged.begin(), merged.end());
  }
  std::vector<u64> out;
  out.reserve(std::min(limit, merged.size()));
  for (const auto& [ts, id] : merged) {
    if (out.size() >= limit) break;
    out.push_back(id);
  }
  return out;
}

size_t SpanStore::row_count() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    n += shard->rows.size();
  }
  // Warm spans count once: promotion copies a serving row, it does not
  // create a new one.
  if (storage_ != nullptr) n += storage_->serving_span_count();
  return n;
}

std::vector<size_t> SpanStore::shard_row_counts() const {
  std::vector<size_t> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    out.push_back(shard->rows.size());
  }
  return out;
}

u64 SpanStore::blob_bytes() const {
  u64 n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    n += shard->blob_bytes;
  }
  return n;
}

u64 SpanStore::encoder_aux_bytes() const {
  u64 n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    n += shard->encoder->auxiliary_bytes();
  }
  return n;
}

std::string_view SpanStore::encoder_name() const {
  return shards_[0]->encoder->name();
}

// ---- Persistence. ---------------------------------------------------------

const SpanRow* SpanStore::warm_row(u64 span_id) const {
  if (storage_ == nullptr || !warm_ids_.contains(span_id)) return nullptr;
  {
    std::shared_lock lock(warm_->mu);
    const auto it = warm_->by_id.find(span_id);
    if (it != warm_->by_id.end()) return it->second;
  }
  auto seg_row = storage_->load_row(span_id);
  if (!seg_row) return nullptr;  // poisoned segment: degrade, don't crash
  return promote(std::move(*seg_row));
}

void SpanStore::warm_fill(const std::vector<u64>& span_ids,
                          std::vector<const SpanRow*>& rows) const {
  // Serve what the warm arena already holds, collect the rest.
  std::vector<u32> pending;
  {
    std::shared_lock lock(warm_->mu);
    for (size_t i = 0; i < span_ids.size(); ++i) {
      if (rows[i] != nullptr || !warm_ids_.contains(span_ids[i])) continue;
      const auto it = warm_->by_id.find(span_ids[i]);
      if (it != warm_->by_id.end()) {
        rows[i] = it->second;
      } else {
        pending.push_back(static_cast<u32>(i));
      }
    }
  }
  if (pending.empty()) return;
  std::vector<u64> missing;
  missing.reserve(pending.size());
  for (const u32 i : pending) missing.push_back(span_ids[i]);
  auto loaded = storage_->load_rows(missing);
  for (size_t k = 0; k < pending.size(); ++k) {
    if (loaded[k].has_value()) {
      rows[pending[k]] = promote(std::move(*loaded[k]));
    }
  }
}

const SpanRow* SpanStore::promote(storage::SegmentRow&& seg_row) const {
  const u64 id = seg_row.span.span_id;
  WarmTier& warm = *warm_;
  {
    std::shared_lock lock(warm.mu);
    const auto it = warm.by_id.find(id);
    if (it != warm.by_id.end()) return it->second;
  }
  std::unique_lock lock(warm.mu);
  const auto it = warm.by_id.find(id);
  if (it != warm.by_id.end()) return it->second;  // lost the race: same row
  warm.rows.emplace_back();
  SpanRow& row = warm.rows.back();
  row.shard = kWarmShard;
  row.tag_blob = std::move(seg_row.tag_blob);
  row.span = std::move(seg_row.span);
  row.span.tags.clear();  // same convention as hot rows
  if (seg_row.has_tags) {
    warm.tags.emplace(id, std::make_shared<const std::vector<agent::Tag>>(
                              std::move(seg_row.tags)));
  }
  warm.by_id.emplace(id, &row);
  return &row;
}

std::vector<agent::Tag> SpanStore::warm_tags(const SpanRow& row) const {
  {
    std::shared_lock lock(warm_->mu);
    const auto it = warm_->tags.find(row.span.span_id);
    if (it != warm_->tags.end()) return *it->second;
  }
  // Encoder-blob modes (direct/smart): the blob is self-contained, decoded
  // through a stateless encoder instance exactly like a hot row.
  if (registry_ == nullptr) return {};
  return warm_decoder_->decode(row.tag_blob, row.span, *registry_);
}

void SpanStore::warm_search(const SearchFilter& filter,
                            std::vector<const SpanRow*>& out) const {
  using storage::SegmentKeyKind;
  const auto add = [this, &out](std::vector<storage::SegmentRow>&& rows) {
    for (storage::SegmentRow& row : rows) out.push_back(promote(std::move(row)));
  };
  for (const SystraceId key : filter.systrace_ids) {
    add(storage_->find(SegmentKeyKind::kSystrace, key));
  }
  for (const u64 key : filter.pseudo_thread_keys) {
    add(storage_->find(SegmentKeyKind::kPseudoThread, key));
  }
  for (const std::string& key : filter.x_request_ids) {
    add(storage_->find(SegmentKeyKind::kXRequestId, fnv1a(key), key));
  }
  for (const TcpSeq key : filter.tcp_seqs) {
    add(storage_->find(SegmentKeyKind::kTcpSeq, key));
  }
  for (const std::string& key : filter.otel_trace_ids) {
    add(storage_->find(SegmentKeyKind::kOtelId, fnv1a(key), key));
  }
}

size_t SpanStore::flush_shard(size_t idx, bool force) {
  Shard& shard = *shards_[idx];
  const u32 seal = std::max<u32>(1, storage_->config().segment_spans);
  const bool dict_mode = tag_mode_ == storage::TagColumnMode::kSegmentDict;
  size_t flushed = 0;
  for (;;) {
    // Steal one batch of ids from the unflushed window.
    std::vector<u64> batch;
    {
      std::unique_lock lock(shard.mu);
      if (shard.unflushed.empty()) break;
      if (!force && shard.unflushed.size() < seal) break;
      const size_t take = std::min<size_t>(shard.unflushed.size(), seal);
      batch.assign(shard.unflushed.begin(),
                   shard.unflushed.begin() + static_cast<long>(take));
      shard.unflushed.erase(shard.unflushed.begin(),
                            shard.unflushed.begin() + static_cast<long>(take));
    }
    // Resolve rows and (for segment-dict mode) decode their tag sets. The
    // shared lock covers the encoder read — concurrent inserts mutate the
    // low-cardinality dictionaries under the exclusive lock. Row pointers
    // survive the unlock (node-based, immutable).
    std::vector<const SpanRow*> batch_rows;
    std::vector<std::vector<agent::Tag>> tag_sets;
    batch_rows.reserve(batch.size());
    size_t batch_bytes = 0;
    {
      std::shared_lock lock(shard.mu);
      for (const u64 id : batch) {
        const auto it = shard.rows.find(id);
        if (it != shard.rows.end()) {
          batch_rows.push_back(&it->second);
          if (governor_ != nullptr) {
            batch_bytes += governed_row_bytes(it->second);
          }
        }
      }
      if (dict_mode && registry_ != nullptr) {
        tag_sets.reserve(batch_rows.size());
        for (const SpanRow* row : batch_rows) {
          tag_sets.push_back(
              shard.encoder->decode(row->tag_blob, row->span, *registry_));
        }
      }
    }
    std::vector<storage::SegmentRowInput> inputs;
    inputs.reserve(batch_rows.size());
    for (size_t i = 0; i < batch_rows.size(); ++i) {
      const SpanRow* row = batch_rows[i];
      inputs.push_back(storage::SegmentRowInput{
          &row->span, row->tag_blob,
          dict_mode && registry_ != nullptr ? &tag_sets[i] : nullptr,
          row->span.pseudo_thread_id != 0 ? pseudo_thread_key(row->span) : 0});
    }
    if (!storage_->append(inputs, static_cast<u8>(encoder_kind_), tag_mode_,
                          /*hot_backed=*/true)) {
      // Write failed: give the batch back so a later flush retries it.
      std::unique_lock lock(shard.mu);
      shard.unflushed.insert(shard.unflushed.end(), batch.begin(),
                             batch.end());
      break;
    }
    if (governor_ != nullptr) {
      // Durability exposure shrinks with every sealed segment — this is
      // what the ladder's force-seal rung buys.
      governor_->sub_bytes(GovernorAccount::kUnflushedStore, batch_bytes);
    }
    flushed += inputs.size();
  }
  return flushed;
}

size_t SpanStore::flush_storage() {
  if (storage_ == nullptr) return 0;
  size_t flushed = 0;
  for (size_t i = 0; i < shards_.size(); ++i) flushed += flush_shard(i, true);
  return flushed;
}

size_t SpanStore::flush_sealed() {
  if (storage_ == nullptr) return 0;
  size_t flushed = 0;
  for (size_t i = 0; i < shards_.size(); ++i) flushed += flush_shard(i, false);
  return flushed;
}

size_t SpanStore::discard_unflushed(const std::vector<u64>& ids) {
  if (storage_ == nullptr || ids.empty()) return 0;
  const std::unordered_set<u64> drop(ids.begin(), ids.end());
  size_t removed = 0;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::unique_lock lock(shard.mu);
    size_t kept = 0;
    size_t bytes = 0;
    for (size_t i = 0; i < shard.unflushed.size(); ++i) {
      const u64 id = shard.unflushed[i];
      if (drop.count(id) != 0) {
        ++removed;
        if (governor_ != nullptr) {
          const auto it = shard.rows.find(id);
          if (it != shard.rows.end()) bytes += governed_row_bytes(it->second);
        }
      } else {
        shard.unflushed[kept++] = id;
      }
    }
    shard.unflushed.resize(kept);
    if (governor_ != nullptr && bytes > 0) {
      // The dropped spans will never be sealed, so they no longer count as
      // durability exposure.
      governor_->sub_bytes(GovernorAccount::kUnflushedStore, bytes);
    }
  }
  return removed;
}

void SpanStore::compact_storage() {
  if (storage_ != nullptr) storage_->compact();
}

storage::StorageTelemetry SpanStore::storage_telemetry() const {
  if (storage_ == nullptr) return {};
  return storage_->telemetry();
}

std::vector<agent::Span> SpanStore::recovered_spans() const {
  std::vector<agent::Span> out;
  if (storage_ == nullptr) return out;
  std::vector<storage::SegmentRow> rows = storage_->serving_rows();
  out.reserve(rows.size());
  for (storage::SegmentRow& row : rows) {
    const SpanRow* promoted = promote(std::move(row));
    out.push_back(promoted->span);
    if (registry_ != nullptr) out.back().tags = warm_tags(*promoted);
  }
  return out;
}

StoreQueryCounters SpanStore::query_counters() const {
  StoreQueryCounters c;
  c.searches = searches_.load(std::memory_order_relaxed);
  c.search_keys = search_keys_.load(std::memory_order_relaxed);
  c.search_hits = search_hits_.load(std::memory_order_relaxed);
  c.rows_touched = rows_touched_.load(std::memory_order_relaxed);
  c.shard_locks = shard_locks_.load(std::memory_order_relaxed);
  c.tag_cache_hits = tag_cache_hits_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace deepflow::server
