#include "server/span_store.h"

#include <algorithm>

#include "common/hash.h"

namespace deepflow::server {

u64 pseudo_thread_key(const agent::Span& span) {
  u64 h = fnv1a(span.host);
  h = hash_combine(h, span.pid);
  return hash_combine(h, span.pseudo_thread_id);
}

SpanStore::SpanStore(EncoderKind encoder_kind,
                     const netsim::ResourceRegistry* registry)
    : encoder_(make_encoder(encoder_kind)), registry_(registry) {}

u64 SpanStore::insert(agent::Span span) {
  // Defensive uniqueness: a colliding or zero id gets remapped into a
  // store-private range rather than silently shadowing an existing row.
  if (span.span_id == 0 || rows_.contains(span.span_id)) {
    span.span_id = (u64{1} << 56) | ++remap_counter_;
  }
  const u64 id = span.span_id;
  SpanRow row;
  if (registry_ != nullptr) {
    row.tag_blob = encoder_->encode(span, *registry_);
  }
  span.tags.clear();  // tags live in the blob, not the row columns
  blob_bytes_ += row.tag_blob.size();
  index_span(span, id);
  row.span = std::move(span);
  rows_.emplace(id, std::move(row));
  return id;
}

void SpanStore::index_span(const agent::Span& span, u64 id) {
  if (span.systrace_id != kInvalidSystraceId) {
    by_systrace_[span.systrace_id].push_back(id);
  }
  if (span.pseudo_thread_id != 0) {
    by_pseudo_thread_[pseudo_thread_key(span)].push_back(id);
  }
  if (!span.x_request_id.empty()) {
    by_x_request_id_[span.x_request_id].push_back(id);
  }
  if (span.req_tcp_seq != 0) by_tcp_seq_[span.req_tcp_seq].push_back(id);
  if (span.resp_tcp_seq != 0) by_tcp_seq_[span.resp_tcp_seq].push_back(id);
  if (!span.otel_trace_id.empty()) {
    by_otel_id_[span.otel_trace_id].push_back(id);
  }
  by_time_.emplace_back(span.start_ts, id);
  time_sorted_ = false;
}

const SpanRow* SpanStore::row(u64 span_id) const {
  const auto it = rows_.find(span_id);
  return it == rows_.end() ? nullptr : &it->second;
}

agent::Span SpanStore::materialize(u64 span_id) const {
  const SpanRow* stored = row(span_id);
  if (stored == nullptr) return {};
  agent::Span span = stored->span;
  if (registry_ != nullptr) {
    span.tags = encoder_->decode(stored->tag_blob, span, *registry_);
  }
  return span;
}

std::vector<u64> SpanStore::search(const SearchFilter& filter) const {
  std::unordered_set<u64> result;
  const auto collect = [&result](const auto& index, const auto& keys) {
    for (const auto& key : keys) {
      const auto it = index.find(key);
      if (it == index.end()) continue;
      result.insert(it->second.begin(), it->second.end());
    }
  };
  collect(by_systrace_, filter.systrace_ids);
  collect(by_pseudo_thread_, filter.pseudo_thread_keys);
  collect(by_x_request_id_, filter.x_request_ids);
  collect(by_tcp_seq_, filter.tcp_seqs);
  collect(by_otel_id_, filter.otel_trace_ids);
  return std::vector<u64>(result.begin(), result.end());
}

std::vector<u64> SpanStore::span_list(TimestampNs from, TimestampNs to,
                                      size_t limit) const {
  if (!time_sorted_) {
    std::sort(by_time_.begin(), by_time_.end());
    time_sorted_ = true;
  }
  std::vector<u64> out;
  auto lo = std::lower_bound(by_time_.begin(), by_time_.end(),
                             std::make_pair(from, u64{0}));
  for (auto it = lo; it != by_time_.end() && it->first <= to; ++it) {
    if (out.size() >= limit) break;
    out.push_back(it->second);
  }
  return out;
}

}  // namespace deepflow::server
