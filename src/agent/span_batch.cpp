#include "agent/span_batch.h"

namespace deepflow::agent {

SpanBatch::SpanBatch(std::shared_ptr<StringInterner> interner,
                     size_t reserve_spans)
    : interner_(std::move(interner)) {
  if (reserve_spans > 0) reserve(reserve_spans);
}

void SpanBatch::reserve(size_t spans) {
  span_ids_.reserve(spans);
  kinds_.reserve(spans);
  systrace_ids_.reserve(spans);
  pseudo_thread_ids_.reserve(spans);
  x_request_ids_.reserve(spans);
  otel_trace_ids_.reserve(spans);
  req_tcp_seqs_.reserve(spans);
  resp_tcp_seqs_.reserve(spans);
  hosts_.reserve(spans);
  device_ids_.reserve(spans);
  device_names_.reserve(spans);
  pids_.reserve(spans);
  tids_.reserve(spans);
  start_ts_.reserve(spans);
  end_ts_.reserve(spans);
  protocols_.reserve(spans);
  methods_.reserve(spans);
  endpoints_.reserve(spans);
  status_codes_.reserve(spans);
  flags_.reserve(spans);
  tuples_.reserve(spans);
  int_tags_.reserve(spans);
  parent_span_ids_.reserve(spans);
}

u32 SpanBatch::intern_or_inline(std::string_view text) {
  const u32 handle = interner_->intern(text);
  if (handle != StringInterner::kInvalidHandle) return handle;
  // Cardinality cap hit: keep the string at batch scope, like the
  // high-cardinality columns.
  const u32 local = static_cast<u32>(overflow_strings_.size());
  overflow_strings_.push_back(arena_.store(text));
  return kOverflowBit | local;
}

void SpanBatch::push(const Draft& d) {
  span_ids_.push_back(d.span_id);
  kinds_.push_back(d.kind);
  systrace_ids_.push_back(d.systrace_id);
  pseudo_thread_ids_.push_back(d.pseudo_thread_id);
  x_request_ids_.push_back(arena_.store(d.x_request_id));
  otel_trace_ids_.push_back(arena_.store(d.otel_trace_id));
  req_tcp_seqs_.push_back(d.req_tcp_seq);
  resp_tcp_seqs_.push_back(d.resp_tcp_seq);
  hosts_.push_back(intern_or_inline(d.host));
  device_ids_.push_back(d.device_id);
  device_names_.push_back(intern_or_inline(d.device_name));
  pids_.push_back(d.pid);
  tids_.push_back(d.tid);
  start_ts_.push_back(d.start_ts);
  end_ts_.push_back(d.end_ts);
  protocols_.push_back(d.protocol);
  methods_.push_back(intern_or_inline(d.method));
  endpoints_.push_back(intern_or_inline(d.endpoint));
  status_codes_.push_back(d.status_code);
  u8 flags = 0;
  if (d.from_server_side) flags |= kFromServerSide;
  if (d.ok) flags |= kOk;
  if (d.incomplete) flags |= kIncomplete;
  if (d.lost_placeholder) flags |= kLostPlaceholder;
  flags_.push_back(flags);
  tuples_.push_back(d.tuple);
  int_tags_.push_back(d.int_tags);
  parent_span_ids_.push_back(d.parent_span_id);
}

void SpanBatch::push_span(const Span& span) {
  Draft d;
  d.span_id = span.span_id;
  d.kind = span.kind;
  d.systrace_id = span.systrace_id;
  d.pseudo_thread_id = span.pseudo_thread_id;
  d.x_request_id = span.x_request_id;
  d.otel_trace_id = span.otel_trace_id;
  d.req_tcp_seq = span.req_tcp_seq;
  d.resp_tcp_seq = span.resp_tcp_seq;
  d.host = span.host;
  d.from_server_side = span.from_server_side;
  d.device_id = span.device_id;
  d.device_name = span.device_name;
  d.pid = span.pid;
  d.tid = span.tid;
  d.start_ts = span.start_ts;
  d.end_ts = span.end_ts;
  d.protocol = span.protocol;
  d.method = span.method;
  d.endpoint = span.endpoint;
  d.status_code = span.status_code;
  d.ok = span.ok;
  d.incomplete = span.incomplete;
  d.lost_placeholder = span.lost_placeholder;
  d.tuple = span.tuple;
  d.int_tags = span.int_tags;
  d.parent_span_id = span.parent_span_id;
  if (!span.tags.empty()) {
    extra_tags_.emplace_back(static_cast<u32>(size()), span.tags);
  }
  push(d);
}

void SpanBatch::clear() {
  span_ids_.clear();
  kinds_.clear();
  systrace_ids_.clear();
  pseudo_thread_ids_.clear();
  x_request_ids_.clear();
  otel_trace_ids_.clear();
  req_tcp_seqs_.clear();
  resp_tcp_seqs_.clear();
  hosts_.clear();
  device_ids_.clear();
  device_names_.clear();
  pids_.clear();
  tids_.clear();
  start_ts_.clear();
  end_ts_.clear();
  protocols_.clear();
  methods_.clear();
  endpoints_.clear();
  status_codes_.clear();
  flags_.clear();
  tuples_.clear();
  int_tags_.clear();
  parent_span_ids_.clear();
  extra_tags_.clear();
  overflow_strings_.clear();
  arena_.reset();
}

Span SpanBatch::materialize(size_t i) const {
  Span span;
  span.span_id = span_ids_[i];
  span.kind = kinds_[i];
  span.systrace_id = systrace_ids_[i];
  span.pseudo_thread_id = pseudo_thread_ids_[i];
  span.x_request_id.assign(x_request_ids_[i]);
  span.otel_trace_id.assign(otel_trace_ids_[i]);
  span.req_tcp_seq = req_tcp_seqs_[i];
  span.resp_tcp_seq = resp_tcp_seqs_[i];
  span.host.assign(resolve(hosts_[i]));
  span.from_server_side = from_server_side(i);
  span.device_id = device_ids_[i];
  span.device_name.assign(resolve(device_names_[i]));
  span.pid = pids_[i];
  span.tid = tids_[i];
  span.start_ts = start_ts_[i];
  span.end_ts = end_ts_[i];
  span.protocol = protocols_[i];
  span.method.assign(resolve(methods_[i]));
  span.endpoint.assign(resolve(endpoints_[i]));
  span.status_code = status_codes_[i];
  span.ok = ok(i);
  span.incomplete = incomplete(i);
  span.lost_placeholder = (flags_[i] & kLostPlaceholder) != 0;
  span.tuple = tuples_[i];
  span.int_tags = int_tags_[i];
  span.parent_span_id = parent_span_ids_[i];
  for (const auto& [idx, tags] : extra_tags_) {
    if (idx == i) {
      span.tags = tags;
      break;
    }
  }
  return span;
}

}  // namespace deepflow::agent
