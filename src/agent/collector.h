// The tracing plane's collection programs (§3.2.2, Figure 5): kprobes and
// tracepoints on the ten syscall ABIs, uprobes on the TLS library, and
// cBPF/AF_PACKET socket filters on network devices. Enter parameters are
// staged in a BPF hash map keyed by (pid, tid) and merged with the exit
// parameters kernel-side; completed records stream to user space through
// per-CPU perf buffers.
#pragma once

#include <string>

#include "common/fault.h"
#include "ebpf/event.h"
#include "ebpf/loader.h"
#include "ebpf/map.h"
#include "ebpf/perf_buffer.h"

namespace deepflow::agent {

struct CollectorConfig {
  u32 cpu_count = 4;
  size_t perf_ring_capacity = 16384;   // records per CPU ring
  size_t enter_map_entries = 65536;    // (pid,tid) staging map
  bool use_tracepoints = false;  // kprobes by default, tracepoints optional
  /// Optional fault injector consulted at the perf-ring submit site
  /// (non-owning; models overflow drops under burst).
  FaultInjector* fault_injector = nullptr;
};

class Collector {
 public:
  Collector(kernelsim::Kernel* kernel, CollectorConfig config = {});

  /// Load and attach the enter/exit programs for all ten kernel ABIs.
  /// Returns false (with `error()` set) if any program fails verification.
  bool deploy_syscall_programs();

  /// Load and attach SSL_read/SSL_write uprobe programs (TLS plaintext).
  bool deploy_ssl_programs();

  /// Attach a packet-capture socket filter to one device.
  bool deploy_nic_capture(netsim::Device* device);

  /// Detach every program (agent shutdown / on-demand monitoring stop).
  void undeploy();

  ebpf::PerfBuffer<ebpf::SyscallEventRecord>& syscall_events() {
    return syscall_events_;
  }
  const ebpf::PerfBuffer<ebpf::SyscallEventRecord>& syscall_events() const {
    return syscall_events_;
  }
  ebpf::PerfBuffer<ebpf::PacketEventRecord>& packet_events() {
    return packet_events_;
  }
  const ebpf::PerfBuffer<ebpf::PacketEventRecord>& packet_events() const {
    return packet_events_;
  }

  const std::string& error() const { return error_; }
  u64 records_emitted() const { return records_emitted_; }
  u64 enter_map_overflows() const {
    return enter_map_.stats().full_failures;
  }
  /// Exit-side records silently dropped because their enter parameters
  /// were missing from the staging map (the map overflowed between enter
  /// and exit). The record-level mirror of enter_map_overflows(): an
  /// overflow loses an update, this counts the message it cost.
  u64 enter_map_record_drops() const { return enter_map_record_drops_; }

 private:
  /// (pid,tid) -> staged enter-side parameters.
  struct EnterInfo {
    TimestampNs enter_ts = 0;
    TcpSeq tcp_seq = 0;
  };

  u32 cpu_of(Tid tid) const;
  void on_enter(const kernelsim::HookContext& ctx);
  void on_exit(const kernelsim::HookContext& ctx, bool is_uprobe_pair);
  void on_packet(const netsim::TapContext& ctx);

  kernelsim::Kernel* kernel_;
  CollectorConfig config_;
  ebpf::Loader loader_;
  ebpf::BpfHashMap<u64, EnterInfo> enter_map_;
  ebpf::PerfBuffer<ebpf::SyscallEventRecord> syscall_events_;
  ebpf::PerfBuffer<ebpf::PacketEventRecord> packet_events_;
  std::vector<ebpf::Link> links_;
  std::string error_;
  u64 records_emitted_ = 0;
  u64 enter_map_record_drops_ = 0;
};

}  // namespace deepflow::agent
