// Struct-of-arrays span batches: the zero-copy ingest hot path (§3.4 spirit:
// per-record cost is what makes zero-code tracing viable at scale).
//
// The historical pipeline moved every span as an individually heap-allocated
// `Span` full of std::strings through parse → transport → dedup → metrics →
// store. A SpanBatch replaces that with one columnar container per drain
// cycle:
//
//   * numeric fields (ids, timestamps, kinds, sequences, tuples) live in
//     contiguous per-field vectors — the metrics fold and dedup walk flat
//     arrays instead of chasing per-span heap nodes;
//   * low-cardinality strings (host, device name, method, endpoint) are
//     replaced at append time by dense u32 handles from a shared
//     StringInterner (the same registry class the server's low-cardinality
//     tag encoder builds its dictionaries on) — a handful of distinct
//     values per cluster, interned once, compared as integers forever;
//   * high-cardinality strings (X-Request-ID, third-party trace id) are
//     copied once into the batch's bump Arena and travel as string_views —
//     interning them would grow the registry without bound, and they are
//     only ever read, never compared against a dictionary.
//
// Lifecycle: a batch is owned by one agent, filled serially by the span
// builder, handed BY REFERENCE to the batch sink (the server consumes the
// columns synchronously and must not retain views past the call), then
// clear()ed — which keeps every vector's capacity and every arena block, so
// a warm batch refills with zero heap allocations (pinned by the
// allocation-regression suite). The only per-span allocation left in the
// whole pipeline is the store-boundary materialize() that builds the
// permanent SpanRow.
#pragma once

#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "agent/span.h"
#include "common/arena.h"
#include "common/interner.h"

namespace deepflow::agent {

class SpanBatch {
 public:
  /// Handle-space split for the low-cardinality columns: handles with this
  /// bit set index the batch-local overflow table instead of the shared
  /// interner. Set when the interner's cardinality cap bounced the string
  /// (StringInterner::set_max_entries); the string then lives in this batch's
  /// arena like the high-cardinality fields — a cardinality explosion costs
  /// per-batch copies, never unbounded shared growth.
  static constexpr u32 kOverflowBit = 0x80000000u;

  // flags_ bit layout.
  static constexpr u8 kFromServerSide = 1u << 0;
  static constexpr u8 kOk = 1u << 1;
  static constexpr u8 kIncomplete = 1u << 2;
  static constexpr u8 kLostPlaceholder = 1u << 3;

  /// Everything needed to append one span without owning any string: the
  /// views may point at parser/session storage (or anywhere); push() copies
  /// the high-cardinality ones into the arena and interns the rest.
  struct Draft {
    u64 span_id = 0;
    SpanKind kind = SpanKind::kSystem;
    SystraceId systrace_id = kInvalidSystraceId;
    PseudoThreadId pseudo_thread_id = 0;
    std::string_view x_request_id;
    std::string_view otel_trace_id;
    TcpSeq req_tcp_seq = 0;
    TcpSeq resp_tcp_seq = 0;
    std::string_view host;
    bool from_server_side = false;
    u32 device_id = 0;
    std::string_view device_name;
    Pid pid = 0;
    Tid tid = 0;
    TimestampNs start_ts = 0;
    TimestampNs end_ts = 0;
    protocols::L7Protocol protocol = protocols::L7Protocol::kUnknown;
    std::string_view method;
    std::string_view endpoint;
    u32 status_code = 0;
    bool ok = true;
    bool incomplete = false;
    bool lost_placeholder = false;
    FiveTuple tuple;
    AgentIntTags int_tags;
    u64 parent_span_id = 0;
  };

  /// `interner` must outlive the batch; batches of one deployment share one
  /// interner so handles agree across agents and the server.
  explicit SpanBatch(std::shared_ptr<StringInterner> interner,
                     size_t reserve_spans = 0);

  SpanBatch(SpanBatch&&) = default;
  SpanBatch& operator=(SpanBatch&&) = default;

  /// Append one span. Steady-state cost: column stores + two arena copies +
  /// four interner probes — no heap allocation once capacity is warm.
  void push(const Draft& draft);

  /// Convenience append from a materialized Span (benches, tests, shims).
  /// Pre-expanded tags — rare; spans built by the agent carry none — go to a
  /// sparse side channel so the columns stay fixed-width.
  void push_span(const Span& span);

  size_t size() const { return span_ids_.size(); }
  bool empty() const { return span_ids_.empty(); }

  /// Forget contents, KEEP capacity (vectors and arena blocks) — the
  /// reset-reuse half of the zero-allocation contract.
  void clear();

  void reserve(size_t spans);

  /// Rebuild the full Span for row `i` — the store-boundary conversion shim.
  /// Allocates (string copies + the Span itself); everything upstream of the
  /// store must read columns instead.
  Span materialize(size_t i) const;

  const StringInterner& interner() const { return *interner_; }
  const std::shared_ptr<StringInterner>& interner_ptr() const {
    return interner_;
  }

  // -- Column access (the batch consumers: dedup, metrics fold, store). ----
  const std::vector<u64>& span_ids() const { return span_ids_; }
  const std::vector<SpanKind>& kinds() const { return kinds_; }
  const std::vector<SystraceId>& systrace_ids() const { return systrace_ids_; }
  const std::vector<PseudoThreadId>& pseudo_thread_ids() const {
    return pseudo_thread_ids_;
  }
  const std::vector<TcpSeq>& req_tcp_seqs() const { return req_tcp_seqs_; }
  const std::vector<TcpSeq>& resp_tcp_seqs() const { return resp_tcp_seqs_; }
  const std::vector<Pid>& pids() const { return pids_; }
  const std::vector<Tid>& tids() const { return tids_; }
  const std::vector<TimestampNs>& start_ts() const { return start_ts_; }
  const std::vector<TimestampNs>& end_ts() const { return end_ts_; }
  const std::vector<u8>& flags() const { return flags_; }
  const std::vector<FiveTuple>& tuples() const { return tuples_; }
  const std::vector<AgentIntTags>& int_tags() const { return int_tags_; }
  const std::vector<u32>& status_codes() const { return status_codes_; }
  const std::vector<protocols::L7Protocol>& protocols() const {
    return protocols_;
  }

  bool from_server_side(size_t i) const {
    return (flags_[i] & kFromServerSide) != 0;
  }
  bool ok(size_t i) const { return (flags_[i] & kOk) != 0; }
  bool incomplete(size_t i) const { return (flags_[i] & kIncomplete) != 0; }
  DurationNs duration(size_t i) const {
    return end_ts_[i] >= start_ts_[i] ? end_ts_[i] - start_ts_[i] : 0;
  }

  // Arena-backed views (valid until clear()).
  std::string_view x_request_id(size_t i) const { return x_request_ids_[i]; }
  std::string_view otel_trace_id(size_t i) const { return otel_trace_ids_[i]; }
  // Interned handles and their resolved views. Handles with kOverflowBit
  // resolve against the batch-local overflow table (cardinality-cap
  // fallback); plain handles resolve against the shared interner.
  u32 host_handle(size_t i) const { return hosts_[i]; }
  std::string_view resolve(u32 handle) const {
    if ((handle & kOverflowBit) != 0 &&
        handle != StringInterner::kInvalidHandle) {
      return overflow_strings_[handle & ~kOverflowBit];
    }
    return interner_->lookup(handle);
  }
  std::string_view host(size_t i) const { return resolve(hosts_[i]); }
  std::string_view device_name(size_t i) const {
    return resolve(device_names_[i]);
  }
  std::string_view method(size_t i) const { return resolve(methods_[i]); }
  std::string_view endpoint(size_t i) const { return resolve(endpoints_[i]); }
  /// Strings bounced into this batch by the interner cap (telemetry/tests).
  size_t overflow_strings_size() const { return overflow_strings_.size(); }

  /// Arena occupancy (bench/telemetry).
  size_t arena_used_bytes() const { return arena_.used_bytes(); }
  size_t arena_capacity_bytes() const { return arena_.capacity_bytes(); }

 private:
  /// intern() with the cardinality-cap fallback: on kInvalidHandle the
  /// string is copied into the arena and an overflow handle is returned.
  u32 intern_or_inline(std::string_view text);

  std::shared_ptr<StringInterner> interner_;
  Arena arena_;
  /// Arena-backed views for cap-bounced strings; indexed by the low bits of
  /// overflow handles. Cleared (capacity kept) with the rest of the batch.
  std::vector<std::string_view> overflow_strings_;

  std::vector<u64> span_ids_;
  std::vector<SpanKind> kinds_;
  std::vector<SystraceId> systrace_ids_;
  std::vector<PseudoThreadId> pseudo_thread_ids_;
  std::vector<std::string_view> x_request_ids_;  // arena-backed
  std::vector<std::string_view> otel_trace_ids_; // arena-backed
  std::vector<TcpSeq> req_tcp_seqs_;
  std::vector<TcpSeq> resp_tcp_seqs_;
  std::vector<u32> hosts_;         // interner handles
  std::vector<u32> device_ids_;
  std::vector<u32> device_names_;  // interner handles
  std::vector<Pid> pids_;
  std::vector<Tid> tids_;
  std::vector<TimestampNs> start_ts_;
  std::vector<TimestampNs> end_ts_;
  std::vector<protocols::L7Protocol> protocols_;
  std::vector<u32> methods_;       // interner handles
  std::vector<u32> endpoints_;     // interner handles
  std::vector<u32> status_codes_;
  std::vector<u8> flags_;
  std::vector<FiveTuple> tuples_;
  std::vector<AgentIntTags> int_tags_;
  std::vector<u64> parent_span_ids_;
  /// Pre-expanded tag sets, sparse by row index (agent-built spans never
  /// carry any; only push_span of query-side spans does).
  std::vector<std::pair<u32, std::vector<Tag>>> extra_tags_;
};

}  // namespace deepflow::agent
