// Intra-component causal association (§3.3.2, Figure 7): assign a globally
// unique systrace_id to messages that belong to the same request flow inside
// one component, using only thread identity, time sequence, and the
// scheduling insight that computation does not yield but network I/O does.
//
// Rules implemented (per pseudo-thread):
//   (a) messages on the same pseudo-thread share the current systrace_id;
//   (b) thread reuse partitions the trace: receiving a *new* inbound request
//       starts a fresh systrace_id (time-sequence partition, Fig 7(b));
//   (c) consecutive messages of different ingress/egress types on different
//       sockets stay associated (multiple requests/responses, Fig 7(c)).
#pragma once

#include <atomic>
#include <unordered_map>

#include "agent/message_data.h"
#include "common/types.h"

namespace deepflow::agent {

class SystraceAssigner {
 public:
  /// Stamp `message` (mutates systrace_id and pseudo_thread_id). Messages of
  /// one pseudo-thread must arrive in per-thread causal order, which the
  /// per-CPU perf rings guarantee.
  void assign(MessageData& message);

  u64 ids_issued() const { return ids_issued_; }

 private:
  struct ThreadState {
    SystraceId current = kInvalidSystraceId;
    SocketId last_socket = 0;
    kernelsim::Direction last_direction = kernelsim::Direction::kIngress;
    bool handling = false;  // between inbound request and outbound response
  };

  static u64 thread_key(Pid pid, PseudoThreadId ptid) {
    return (static_cast<u64>(pid) << 32) ^ ptid;
  }

  SystraceId next_id();

  std::unordered_map<u64, ThreadState> threads_;
  u64 ids_issued_ = 0;

  // Globally unique across every agent in the process, like the paper's
  // globally unique systrace_id.
  static std::atomic<SystraceId> global_next_;
};

}  // namespace deepflow::agent
