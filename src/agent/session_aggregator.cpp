#include "agent/session_aggregator.h"

namespace deepflow::agent {

void SessionAggregator::remove_from_flow(const Entry& entry, u64 token) {
  const auto flow_it = flows_.find(entry.flow_key);
  if (flow_it == flows_.end()) return;
  FlowState& flow = flow_it->second;
  const TimestampNs ts = entry.message.record.enter_ts;
  auto erase_ts = [token, ts](std::multimap<TimestampNs, u64>& map) {
    for (auto [it, end] = map.equal_range(ts); it != end; ++it) {
      if (it->second == token) {
        map.erase(it);
        return;
      }
    }
  };
  if (entry.message.mode == protocols::SessionMatchMode::kParallel) {
    const u64 stream = entry.message.parsed.stream_id;
    auto& map = entry.message.is_request() ? flow.requests_by_stream
                                           : flow.responses_by_stream;
    if (const auto it = map.find(stream);
        it != map.end() && it->second == token) {
      map.erase(it);
    }
  } else {
    erase_ts(entry.message.is_request() ? flow.requests_by_ts
                                        : flow.responses_by_ts);
  }
}

void SessionAggregator::emit_pair(u64 flow_key, u64 request_token,
                                  u64 response_token,
                                  const SessionSink& sink) {
  auto req_it = staged_.find(request_token);
  auto resp_it = staged_.find(response_token);
  if (req_it == staged_.end() || resp_it == staged_.end()) return;
  ++matched_;
  Session session;
  session.flow_key = flow_key;
  session.request = std::move(req_it->second.message);
  session.response = std::move(resp_it->second.message);
  staged_.erase(req_it);
  staged_.erase(resp_it);
  sink(std::move(session));
}

void SessionAggregator::drain_pipeline_pairs(u64 flow_key, FlowState& flow,
                                             const SessionSink& sink,
                                             bool force) {
  // FIFO pairing over capture timestamps. Pairing is deferred until the
  // drain watermark has passed both heads by the configured slack: only
  // then is it certain that no earlier-stamped message is still sitting in
  // a per-CPU ring (the cross-CPU disorder of §3.3.1). At flush (force),
  // everything has drained, so heads pair immediately and a response older
  // than every request is a true orphan.
  while (!flow.requests_by_ts.empty() && !flow.responses_by_ts.empty()) {
    const auto req_head = flow.requests_by_ts.begin();
    const auto resp_head = flow.responses_by_ts.begin();
    if (resp_head->first < req_head->first) {
      if (!force) break;
      const u64 orphan = resp_head->second;
      flow.responses_by_ts.erase(resp_head);
      if (const auto it = staged_.find(orphan); it != staged_.end()) {
        if (stragglers_) {
          ++forwarded_;
          stragglers_(std::move(it->second.message));
        } else {
          ++dropped_orphans_;
        }
        staged_.erase(it);
      }
      continue;
    }
    if (!force) {
      const TimestampNs newest = std::max(req_head->first, resp_head->first);
      if (newest + config_.pairing_slack_ns > watermark()) break;
    }
    const u64 request_token = req_head->second;
    const u64 response_token = resp_head->second;
    flow.requests_by_ts.erase(req_head);
    flow.responses_by_ts.erase(resp_head);
    emit_pair(flow_key, request_token, response_token, sink);
  }
}

void SessionAggregator::stage(u64 flow_key, MessageData&& message,
                              const SessionSink& sink) {
  const TimestampNs ts = message.record.enter_ts;
  const bool is_request = message.is_request();
  const bool parallel = message.mode == protocols::SessionMatchMode::kParallel;
  const u64 stream = message.parsed.stream_id;
  const u32 cpu = message.record.cpu;
  if (cpu >= cpu_last_ts_.size()) cpu_last_ts_.resize(cpu + 1, kCpuUnseen);
  TimestampNs& last = cpu_last_ts_[cpu];
  if (last == kCpuUnseen || ts > last) last = ts;

  const u64 token = next_token_++;
  staged_.emplace(token, Entry{flow_key, std::move(message)});
  FlowState& flow = flows_[flow_key];

  if (parallel) {
    // Exact correlation: the embedded stream/transaction id (§3.3.1's
    // "embedded distinguishing attributes") is immune to drain disorder.
    auto& opposite =
        is_request ? flow.responses_by_stream : flow.requests_by_stream;
    if (const auto match = opposite.find(stream); match != opposite.end()) {
      const u64 other = match->second;
      opposite.erase(match);
      if (is_request) {
        emit_pair(flow_key, token, other, sink);
      } else {
        emit_pair(flow_key, other, token, sink);
      }
      return;
    }
    auto& own = is_request ? flow.requests_by_stream : flow.responses_by_stream;
    // Stream-id reuse before the previous one matched: expire the stale one.
    if (const auto stale = own.find(stream); stale != own.end()) {
      expire_token(stale->second, sink);
    }
    own[stream] = token;
  } else {
    auto& own = is_request ? flow.requests_by_ts : flow.responses_by_ts;
    own.emplace(ts, token);
    drain_pipeline_pairs(flow_key, flow, sink, /*force=*/false);
    mark_ready(flow_key, flow);
  }
  drain_ready(sink);

  // Expiry bookkeeping: the window advancing evicts old tokens; eviction of
  // an already-paired token is a no-op (checked against staged_).
  expiry_.insert(ts, token, [this, &sink](u64&& expired) {
    expire_token(expired, sink);
  });
}

void SessionAggregator::expire_token(u64 token, const SessionSink& sink) {
  const auto it = staged_.find(token);
  if (it == staged_.end()) return;  // already paired
  Entry entry = std::move(it->second);
  staged_.erase(it);
  remove_from_flow(entry, token);
  if (stragglers_) {
    ++forwarded_;
    stragglers_(std::move(entry.message));
    return;
  }
  if (entry.message.is_request()) {
    ++expired_requests_;
    Session session;
    session.flow_key = entry.flow_key;
    session.request = std::move(entry.message);
    session.response = std::nullopt;
    sink(std::move(session));
  } else {
    ++dropped_orphans_;
  }
}

void SessionAggregator::mark_ready(u64 flow_key, FlowState& flow) {
  if (flow.requests_by_ts.empty() || flow.responses_by_ts.empty()) return;
  const TimestampNs ready_ts = std::max(flow.requests_by_ts.begin()->first,
                                        flow.responses_by_ts.begin()->first);
  // One live ready_ entry per flow: a drain at the armed timestamp covers
  // every later readiness too (draining pairs all it can), so arming again
  // at >= armed_ts would only repeat the same no-op work. Only an EARLIER
  // readiness (an older head arrived) re-arms; the later entry goes stale
  // and drain_ready skips it.
  if (flow.armed_ts != 0 && flow.armed_ts <= ready_ts) return;
  ready_.emplace(ready_ts, flow_key);
  flow.armed_ts = ready_ts;
}

void SessionAggregator::drain_ready(const SessionSink& sink) {
  if (ready_.empty()) return;
  const TimestampNs mark = watermark();
  while (!ready_.empty()) {
    const auto head = ready_.begin();
    if (head->first + config_.pairing_slack_ns > mark) break;
    const TimestampNs armed = head->first;
    const u64 flow_key = head->second;
    ready_.erase(head);
    const auto flow_it = flows_.find(flow_key);
    if (flow_it == flows_.end()) continue;
    FlowState& flow = flow_it->second;
    // Stale entry: the flow re-armed at an earlier timestamp (which already
    // popped and drained, covering this readiness) or was fully drained.
    if (flow.armed_ts != armed) continue;
    flow.armed_ts = 0;
    drain_pipeline_pairs(flow_key, flow, sink, /*force=*/false);
    // Heads may remain (a blocking older response waits for expiry, or the
    // new heads are still inside the slack); re-arm only when the readiness
    // timestamp moved forward, so a blocked flow cannot spin.
    if (!flow.requests_by_ts.empty() && !flow.responses_by_ts.empty()) {
      const TimestampNs ready_ts =
          std::max(flow.requests_by_ts.begin()->first,
                   flow.responses_by_ts.begin()->first);
      if (ready_ts + config_.pairing_slack_ns > mark) {
        ready_.emplace(ready_ts, flow_key);
        flow.armed_ts = ready_ts;
      }
    }
  }
}

TimestampNs SessionAggregator::watermark() const {
  // Conservative drain progress: the slowest CPU bounds what may still
  // arrive. CPUs never seen contribute nothing (their rings were empty).
  TimestampNs low = kCpuUnseen;
  for (const TimestampNs ts : cpu_last_ts_) {
    if (ts != kCpuUnseen) low = std::min(low, ts);
  }
  return low == kCpuUnseen ? 0 : low;
}

void SessionAggregator::offer(u64 flow_key, MessageData message,
                              const SessionSink& sink) {
  if (!message.is_request() && !message.is_response()) return;
  stage(flow_key, std::move(message), sink);
}

void SessionAggregator::flush(const SessionSink& sink) {
  // Everything has drained: final forced pairing per flow, then expire the
  // leftovers (requests -> incomplete sessions, responses -> orphans).
  for (auto& [flow_key, flow] : flows_) {
    drain_pipeline_pairs(flow_key, flow, sink, /*force=*/true);
  }
  std::multimap<TimestampNs, u64> by_ts;
  for (const auto& [token, entry] : staged_) {
    by_ts.emplace(entry.message.record.enter_ts, token);
  }
  for (const auto& [ts, token] : by_ts) expire_token(token, sink);
  expiry_.flush([](u64&&) {});
  flows_.clear();
}

}  // namespace deepflow::agent
