// The span model shared by the agent (producer) and server (store/assembler).
//
// A DeepFlow span is a *session*: one request paired with one response
// (§3.3.1). It carries every association attribute Algorithm 1 searches on —
// systrace id, pseudo-thread id, X-Request-ID, TCP sequences, third-party
// trace id — plus the semantic fields parsed from the payload and the tag
// set used for correlation.
#pragma once

#include <string>
#include <vector>

#include "common/five_tuple.h"
#include "common/types.h"
#include "protocols/message.h"

namespace deepflow::agent {

/// Origin of a span, which also determines its role in parent assignment.
enum class SpanKind : u8 {
  kSystem,      // eBPF syscall capture (sys span)
  kApplication, // uprobe capture above TLS (app span)
  kNetwork,     // cBPF/AF_PACKET device capture (net span)
  kThirdParty,  // integrated from OpenTelemetry-style frameworks
};

std::string_view span_kind_name(SpanKind kind);

/// Uniform key/value tag (pre-encoding form).
struct Tag {
  std::string key;
  std::string value;

  bool operator==(const Tag&) const = default;
};

/// Integer tags the agent injects during the smart-encoding collection
/// phase (§3.4): only VPC and IP identifiers travel with the span; the
/// server expands them into resource tags at ingest time.
struct AgentIntTags {
  u32 vpc_id = 0;
  u32 client_ip = 0;  // Ipv4::addr of the client endpoint
  u32 server_ip = 0;  // Ipv4::addr of the server endpoint
};

struct Span {
  u64 span_id = 0;
  SpanKind kind = SpanKind::kSystem;

  // -- Association attributes (Algorithm 1 search keys).
  SystraceId systrace_id = kInvalidSystraceId;
  PseudoThreadId pseudo_thread_id = 0;
  std::string x_request_id;
  std::string otel_trace_id;   // third-party trace context, "" when absent
  TcpSeq req_tcp_seq = 0;      // sequence of the request message
  TcpSeq resp_tcp_seq = 0;     // sequence of the response message (0: none)

  // -- Collection location.
  std::string host;            // agent hostname
  bool from_server_side = false;  // session observed at the serving process
  u32 device_id = 0;           // net spans: capturing device
  std::string device_name;     // net spans: capturing device name
  Pid pid = 0;
  Tid tid = 0;

  // -- Timing.
  TimestampNs start_ts = 0;    // request observed
  TimestampNs end_ts = 0;      // response observed (start_ts if missing)

  // -- Semantics.
  protocols::L7Protocol protocol = protocols::L7Protocol::kUnknown;
  std::string method;
  std::string endpoint;
  u32 status_code = 0;
  bool ok = true;
  /// True when the request never got a response inside the aggregation
  /// window — the paper treats this as an unexpected execution termination.
  bool incomplete = false;
  /// True only on synthetic spans the assembler fabricates to stand in for
  /// a span that was lost in delivery: orphaned children hang off such a
  /// placeholder instead of surfacing as spurious trace roots. Never set
  /// on stored spans.
  bool lost_placeholder = false;
  FiveTuple tuple;             // client-perspective five-tuple

  // -- Correlation tags.
  AgentIntTags int_tags;       // smart-encoding phase-one tags
  std::vector<Tag> tags;       // expanded/self-defined tags (query side)

  DurationNs duration() const {
    return end_ts >= start_ts ? end_ts - start_ts : 0;
  }

  u64 parent_span_id = 0;      // assigned by the trace assembler (0 = root)
};

/// Approximate resident bytes of one span: the struct plus its owned string
/// payloads and tag vector. Deterministic in the span's VALUES (uses size(),
/// never capacity()), so the overload governor's add/sub pairs always cancel
/// even when a span is copied or moved between accounting points.
inline size_t approx_span_bytes(const Span& span) {
  size_t bytes = sizeof(Span);
  bytes += span.x_request_id.size() + span.otel_trace_id.size();
  bytes += span.host.size() + span.device_name.size();
  bytes += span.method.size() + span.endpoint.size();
  for (const Tag& tag : span.tags) {
    bytes += sizeof(Tag) + tag.key.size() + tag.value.size();
  }
  return bytes;
}

}  // namespace deepflow::agent
