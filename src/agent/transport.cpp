#include "agent/transport.h"

#include <algorithm>

#include "common/hash.h"

namespace deepflow::agent {

namespace {
/// Per-lane jitter stream: the shared lane keeps the historical seed
/// untouched; a real lane mixes it in so every link jitters independently.
u64 jitter_seed_for(const TransportConfig& config) {
  if (config.lane == kFaultSharedLane) return config.jitter_seed;
  return mix64(config.jitter_seed ^ mix64(config.lane + 1));
}
}  // namespace

SpanTransport::SpanTransport(TransportConfig config, BatchSink sink,
                             FaultInjector* faults)
    : SpanTransport(
          config,
          VerdictBatchSink(
              sink ? VerdictBatchSink([s = std::move(sink)](
                                          std::vector<Span>& spans) {
                s(std::move(spans));
                return SinkVerdict::accepted();
              })
                   : VerdictBatchSink()),
          faults) {}

SpanTransport::SpanTransport(TransportConfig config, FailableBatchSink sink,
                             FaultInjector* faults)
    : SpanTransport(
          config,
          VerdictBatchSink(
              sink ? VerdictBatchSink([s = std::move(sink)](
                                          std::vector<Span>& spans) {
                return s(spans) ? SinkVerdict::accepted()
                                : SinkVerdict::refused();
              })
                   : VerdictBatchSink()),
          faults) {}

SpanTransport::SpanTransport(TransportConfig config, VerdictBatchSink sink,
                             FaultInjector* faults)
    : config_(config),
      sink_(std::move(sink)),
      faults_(faults),
      jitter_(jitter_seed_for(config)) {
  if (config_.batch_spans == 0) config_.batch_spans = 1;
  if (config_.max_attempts == 0) config_.max_attempts = 1;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  if (config_.overload_max_attempts == 0) config_.overload_max_attempts = 1;
}

void SpanTransport::account_add(size_t bytes) {
  if (config_.governor != nullptr) {
    config_.governor->add_bytes(GovernorAccount::kTransportQueue, bytes);
  }
}

void SpanTransport::account_sub(size_t bytes) {
  if (config_.governor != nullptr) {
    config_.governor->sub_bytes(GovernorAccount::kTransportQueue, bytes);
  }
}

int SpanTransport::priority_of(const Span& span) {
  switch (span.kind) {
    case SpanKind::kNetwork:
      return 0;  // cheapest to lose: the path is re-derivable from metrics
    case SpanKind::kSystem:
      return 1;
    case SpanKind::kApplication:
    case SpanKind::kThirdParty:
      return 2;  // closest to business semantics: shed last
  }
  return 1;
}

bool SpanTransport::shed_for(const Span& incoming) {
  // Admission under overflow: evict the OLDEST span of the LOWEST priority
  // class present, but only if that class is strictly lower-priority than
  // the incoming span; otherwise the incoming span itself is shed. Equal
  // priorities keep the older span — it is closer to delivery.
  int lowest = 3;
  size_t victim = queue_.size();
  for (size_t i = 0; i < queue_.size(); ++i) {
    const int p = priority_of(queue_[i]);
    if (p < lowest) {
      lowest = p;
      victim = i;
      if (lowest == 0) break;  // cannot do better
    }
  }
  const Span* shed = &incoming;
  if (victim < queue_.size() && lowest < priority_of(incoming)) {
    shed = &queue_[victim];
  }
  switch (priority_of(*shed)) {
    case 0:
      ++stats_.shed_net;
      break;
    case 1:
      ++stats_.shed_sys;
      break;
    default:
      ++stats_.shed_app;
      break;
  }
  if (shed != &incoming) {
    const size_t bytes = approx_span_bytes(queue_[victim]);
    queue_bytes_ -= bytes;
    account_sub(bytes);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(victim));
    return true;
  }
  return false;
}

void SpanTransport::offer(Span&& span) {
  ++stats_.offered;
  if (config_.direct) {
    std::vector<Span> one;
    one.push_back(std::move(span));
    if (deliver(one).status != SinkStatus::kAccepted) {
      // Direct mode has no queue to fall back to: a refused span is lost.
      ++stats_.sink_rejected_batches;
      ++stats_.sink_rejected_spans;
      ++stats_.gave_up_batches;
      ++stats_.gave_up_spans;
    }
    return;
  }
  if (config_.governor != nullptr &&
      config_.governor->level() >= OverloadLevel::kShed &&
      priority_of(span) == 0) {
    // Ladder rung 3: under system-wide shed pressure, net spans (the class
    // the queue would evict first anyway) are refused admission outright —
    // queue slots go to sys/app spans that cannot be re-derived.
    ++stats_.shed_net;
    ++stats_.governor_shed_net;
    config_.governor->note_shed_net();
    return;
  }
  const size_t incoming_bytes = approx_span_bytes(span);
  // Admission: evict under the priority ladder until the incoming span fits
  // the count bound (one eviction, legacy semantics) and the optional byte
  // bound (possibly several small victims for one large span), or the
  // incoming span itself loses the priority contest and is shed.
  while (queue_.size() >= config_.queue_capacity ||
         (config_.queue_budget_bytes != 0 &&
          queue_bytes_ + incoming_bytes > config_.queue_budget_bytes)) {
    if (!shed_for(span)) return;  // incoming span was the victim
  }
  queue_bytes_ += incoming_bytes;
  account_add(incoming_bytes);
  queue_.push_back(std::move(span));
  stats_.queue_high_watermark =
      std::max<u64>(stats_.queue_high_watermark, queue_.size());
}

void SpanTransport::offer_batch(const SpanBatch& batch) {
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) offer(batch.materialize(i));
}

u64 SpanTransport::backoff_ticks(u32 attempt) {
  // attempt is the count of sends already made (>= 1 when retrying).
  u64 backoff = config_.backoff_base_ticks;
  for (u32 i = 1; i < attempt && backoff < config_.backoff_cap_ticks; ++i) {
    backoff <<= 1;
  }
  backoff = std::min<u64>(backoff, config_.backoff_cap_ticks);
  if (config_.jitter_ticks > 0) {
    backoff += jitter_.between(0, config_.jitter_ticks);
  }
  return backoff;
}

SinkVerdict SpanTransport::deliver(std::vector<Span>& spans) {
  const size_t n = spans.size();
  if (sink_) {
    const SinkVerdict verdict = sink_(spans);
    if (verdict.status != SinkStatus::kAccepted) return verdict;
  }
  ++stats_.delivered_batches;
  stats_.delivered_spans += n;
  return SinkVerdict::accepted();
}

size_t SpanTransport::finish_delivery(PendingBatch&& batch) {
  const size_t n = batch.spans.size();
  const SinkVerdict verdict = deliver(batch.spans);
  if (verdict.status == SinkStatus::kAccepted) {
    account_sub(batch.bytes);
    return n;
  }
  if (verdict.status == SinkStatus::kOverloaded) {
    // The receiver is alive but at its refusal rung: honor the retry-after
    // hint, pause fresh sends (backpressure into the bounded queue), and
    // retry on the overload budget — a long overload must not be misread
    // as a dead node, nor burn the channel attempt budget.
    ++stats_.overload_refused_batches;
    stats_.overload_refused_spans += n;
    const u64 wait =
        std::max<u64>(verdict.retry_after_ticks, backoff_ticks(batch.attempts));
    pause_until_tick_ = std::max(pause_until_tick_, tick_ + wait);
    ++batch.overload_attempts;
    if (config_.retries &&
        batch.overload_attempts < config_.overload_max_attempts) {
      ++stats_.overload_retries;
      batch.due_tick = tick_ + wait;
      retry_.push_back(std::move(batch));
    } else {
      ++stats_.overload_gave_up_batches;
      stats_.overload_gave_up_spans += n;
      ++stats_.gave_up_batches;
      stats_.gave_up_spans += n;
      account_sub(batch.bytes);
    }
    return 0;
  }
  // The receiver refused (dead node / partition on its side). Same retry
  // semantics as a channel drop: at-least-once across short outages.
  ++stats_.sink_rejected_batches;
  stats_.sink_rejected_spans += n;
  if (config_.retries && batch.attempts < config_.max_attempts) {
    ++stats_.retries;
    batch.due_tick = tick_ + backoff_ticks(batch.attempts);
    retry_.push_back(std::move(batch));
  } else {
    ++stats_.gave_up_batches;
    stats_.gave_up_spans += n;
    account_sub(batch.bytes);
  }
  return 0;
}

size_t SpanTransport::send(PendingBatch&& batch) {
  ++batch.attempts;
  ++stats_.batches_sent;
  stats_.spans_sent += batch.spans.size();

  FaultDecision fate;
  if (faults_ != nullptr && faults_->enabled(FaultSite::kTransportSend)) {
    fate = faults_->decide(FaultSite::kTransportSend, kFaultAll, config_.lane);
  }

  if (fate.drop) {
    ++stats_.send_drops;
    if (config_.retries && batch.attempts < config_.max_attempts) {
      ++stats_.retries;
      batch.due_tick = tick_ + backoff_ticks(batch.attempts);
      retry_.push_back(std::move(batch));
    } else {
      ++stats_.gave_up_batches;
      stats_.gave_up_spans += batch.spans.size();
      account_sub(batch.bytes);
    }
    return 0;
  }

  if (fate.ts_skew_ns != 0) {
    // Clock fault: the whole flight carries one skew, like an agent whose
    // clock drifted between syncs. Guard the subtraction at zero.
    for (Span& span : batch.spans) {
      const i64 skew = fate.ts_skew_ns;
      span.start_ts = skew >= 0 || span.start_ts > static_cast<u64>(-skew)
                          ? span.start_ts + static_cast<u64>(skew)
                          : 0;
      span.end_ts = skew >= 0 || span.end_ts > static_cast<u64>(-skew)
                        ? span.end_ts + static_cast<u64>(skew)
                        : 0;
    }
    stats_.ts_corrupted_spans += batch.spans.size();
  }

  if (fate.delay_ticks > 0) {
    // Held in flight: later batches overtake it (reordering). Delivered
    // as-is when due — the channel consulted fate for this flight already.
    ++stats_.delayed_batches;
    batch.due_tick = tick_ + fate.delay_ticks;
    delayed_.push_back(std::move(batch));
    return 0;
  }

  size_t delivered = 0;
  if (fate.duplicate) {
    // The duplicate copy rides the same delivery: a receiver refusing the
    // batch refuses its echo too (no retry for the copy — at-least-once
    // needs only the primary).
    std::vector<Span> copy = batch.spans;
    if (deliver(copy).status == SinkStatus::kAccepted) {
      ++stats_.duplicated_batches;
      delivered += batch.spans.size();
    }
  }
  return delivered + finish_delivery(std::move(batch));
}

size_t SpanTransport::pump() {
  ++tick_;
  size_t delivered = 0;

  // Due delayed flights deliver first (they were sent before anything
  // queued now).
  for (size_t i = 0; i < delayed_.size();) {
    if (delayed_[i].due_tick <= tick_) {
      PendingBatch batch = std::move(delayed_[i]);
      delayed_.erase(delayed_.begin() + static_cast<std::ptrdiff_t>(i));
      delivered += finish_delivery(std::move(batch));
    } else {
      ++i;
    }
  }

  // Due retries re-enter the channel (and may drop again).
  for (size_t i = 0; i < retry_.size();) {
    if (retry_[i].due_tick <= tick_) {
      PendingBatch batch = std::move(retry_[i]);
      retry_.erase(retry_.begin() + static_cast<std::ptrdiff_t>(i));
      delivered += send(std::move(batch));
    } else {
      ++i;
    }
  }

  // Fresh sends: every full batch leaves this tick — unless an overloaded
  // receiver asked us to wait (retry-after); then full batches stay queued
  // and admission pressure climbs toward the priority shedder.
  while (tick_ >= pause_until_tick_ &&
         queue_.size() >= config_.batch_spans) {
    PendingBatch batch;
    batch.spans.reserve(config_.batch_spans);
    for (size_t i = 0; i < config_.batch_spans; ++i) {
      batch.bytes += approx_span_bytes(queue_.front());
      batch.spans.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    queue_bytes_ -= batch.bytes;
    delivered += send(std::move(batch));
  }
  return delivered;
}

void SpanTransport::flush() {
  if (config_.direct) return;
  // Send the partial tail, then keep ticking until nothing is queued,
  // delayed or awaiting retry. Terminates: attempts per batch are bounded
  // and due ticks are finite.
  if (!queue_.empty()) {
    PendingBatch batch;
    batch.spans.reserve(queue_.size());
    while (!queue_.empty() && batch.spans.size() < config_.batch_spans) {
      batch.bytes += approx_span_bytes(queue_.front());
      batch.spans.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    queue_bytes_ -= batch.bytes;
    send(std::move(batch));
  }
  while (!queue_.empty() || !retry_.empty() || !delayed_.empty()) {
    pump();
    if (!queue_.empty() && queue_.size() < config_.batch_spans) {
      PendingBatch batch;
      batch.spans.reserve(queue_.size());
      while (!queue_.empty()) {
        batch.bytes += approx_span_bytes(queue_.front());
        batch.spans.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_bytes_ -= batch.bytes;
      send(std::move(batch));
    }
  }
}

size_t SpanTransport::backlog() const {
  size_t n = queue_.size();
  for (const PendingBatch& b : retry_) n += b.spans.size();
  for (const PendingBatch& b : delayed_) n += b.spans.size();
  return n;
}

}  // namespace deepflow::agent
