// MessageData: the paper's term for one merged enter/exit syscall record
// after user-space protocol parsing (§3.3.1, Figure 6). This is the unit
// session aggregation and systrace assignment operate on.
#pragma once

#include <string>

#include "common/hash.h"
#include "ebpf/event.h"
#include "protocols/message.h"

namespace deepflow::agent {

/// Capture origin of a message: kernel syscall hooks, TLS-library uprobes,
/// or device packet taps. Determines the span kind downstream.
enum class CaptureOrigin : u8 { kSyscall, kSslUprobe, kPacketTap };

struct MessageData {
  ebpf::SyscallEventRecord record;
  protocols::ParsedMessage parsed;
  protocols::SessionMatchMode mode = protocols::SessionMatchMode::kPipeline;
  CaptureOrigin origin = CaptureOrigin::kSyscall;
  /// Packet-tap messages: capturing device (syscall messages: zero/empty).
  u32 device_id = 0;
  std::string device_name;
  /// Pseudo-thread id resolved from the record (coroutine root or tid).
  PseudoThreadId pseudo_thread_id = 0;
  /// Assigned by the systrace assigner before session aggregation.
  SystraceId systrace_id = kInvalidSystraceId;

  bool is_request() const {
    return parsed.type == protocols::MessageType::kRequest;
  }
  bool is_response() const {
    return parsed.type == protocols::MessageType::kResponse;
  }
};

/// Canonical aggregation flow key of a message. Socket ids are globally
/// unique across kernels and SSL-uprobe traffic aggregates separately from
/// the ciphertext syscalls of the same socket; packet-tap flows key on
/// (device, canonical tuple). Shared by the agent pipeline and the server's
/// re-aggregation of out-of-window stragglers.
inline u64 flow_key_of(const MessageData& message) {
  switch (message.origin) {
    case CaptureOrigin::kSyscall:
      return message.record.socket_id;
    case CaptureOrigin::kSslUprobe:
      return hash_combine(message.record.socket_id, 0x55Eu);
    case CaptureOrigin::kPacketTap:
      return hash_combine(message.device_id,
                          message.record.tuple.canonical().hash()) |
             1u;
  }
  return 0;
}

}  // namespace deepflow::agent
