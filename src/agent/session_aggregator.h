// Session aggregation (§3.3.1, phase three): pair one request with one
// response from the same flow.
//
// Pipeline protocols preserve request/response ordering on a connection, so
// the k-th request pairs with the k-th response. The perf-buffer drain,
// however, interleaves CPUs and delivers messages out of global order; the
// aggregator therefore stages messages per flow in capture-timestamp order
// and pairs heads only when the order is provably right (oldest response
// not older than oldest request). Parallel protocols match on the embedded
// stream/transaction id instead.
//
// A time-window array bounds staging: messages older than the window
// horizon are surfaced — requests as incomplete sessions (the paper's
// unexpected terminations), responses as orphan drops.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "agent/message_data.h"
#include "common/time_window.h"

namespace deepflow::agent {

/// One aggregated session: the request always exists; the response is
/// missing for expired (unexpectedly terminated) requests.
struct Session {
  u64 flow_key = 0;
  MessageData request;
  std::optional<MessageData> response;
};

struct SessionAggregatorConfig {
  /// Time-slot duration (the paper's production setting is 60 s).
  DurationNs slot_ns = 60 * kSecond;
  /// Retained slots; the expiry horizon is slot_ns * slot_count.
  size_t slot_count = 3;
  /// Pipeline pairing waits until the drain watermark — the minimum, over
  /// all CPUs seen so far, of the newest capture timestamp drained from
  /// that CPU — has passed a head by this slack. That guarantees no
  /// earlier-stamped record is still sitting in a per-CPU ring (modulo the
  /// bounded skew of one handler segment, which the slack absorbs).
  DurationNs pairing_slack_ns = 200 * kMillisecond;
};

class SessionAggregator {
 public:
  using SessionSink = std::function<void(Session&&)>;
  /// Receives messages that fell out of the aggregation window (or stayed
  /// unpaired at flush). When installed, such messages are forwarded for
  /// server-side re-aggregation (§3.3.1: "Messages received outside of the
  /// time period are uploaded to the DeepFlow Server, where they can be
  /// aggregated again using the same technique") instead of surfacing as
  /// incomplete sessions / dropped orphans locally.
  using StragglerSink = std::function<void(MessageData&&)>;

  explicit SessionAggregator(SessionAggregatorConfig config = {})
      : config_(config), expiry_(config.slot_ns, config.slot_count) {}

  /// Feed one parsed message belonging to flow `flow_key`. Completed and
  /// expired sessions are handed to `sink` (possibly several per call when
  /// the window advances).
  void offer(u64 flow_key, MessageData message, const SessionSink& sink);

  /// End-of-run: flush every pending request as an incomplete session.
  void flush(const SessionSink& sink);

  void set_straggler_sink(StragglerSink sink) {
    stragglers_ = std::move(sink);
  }

  u64 matched_sessions() const { return matched_; }
  u64 forwarded_stragglers() const { return forwarded_; }
  u64 expired_requests() const { return expired_requests_; }
  u64 dropped_orphan_responses() const { return dropped_orphans_; }
  size_t pending_count() const { return staged_.size(); }

 private:
  struct Entry {
    u64 flow_key = 0;
    MessageData message;
  };
  struct FlowState {
    // Pipeline: staged messages ordered by capture timestamp.
    std::multimap<TimestampNs, u64> requests_by_ts;
    std::multimap<TimestampNs, u64> responses_by_ts;
    // Parallel: staged messages keyed by stream id.
    std::unordered_map<u64, u64> requests_by_stream;
    std::unordered_map<u64, u64> responses_by_stream;
    // Readiness dedup: the timestamp of this flow's live ready_ entry
    // (0 = none). One armed entry per flow suffices — draining a flow is
    // idempotent, so the historical one-entry-per-message scheme did the
    // same pairing work per flow up to 20x over. Entries whose key no
    // longer matches armed_ts are stale and skipped on pop.
    TimestampNs armed_ts = 0;
  };

  void stage(u64 flow_key, MessageData&& message, const SessionSink& sink);
  /// Pair as many (request, response) heads as ordering allows. With
  /// `force` (flush time: every record has drained) the watermark guard is
  /// skipped and blocking orphan responses are discarded.
  void drain_pipeline_pairs(u64 flow_key, FlowState& flow,
                            const SessionSink& sink, bool force);
  void emit_pair(u64 flow_key, u64 request_token, u64 response_token,
                 const SessionSink& sink);
  void expire_token(u64 token, const SessionSink& sink);
  void remove_from_flow(const Entry& entry, u64 token);
  /// Note a pipeline flow as pairing-ready (both heads staged) and drain
  /// every ready flow the watermark has passed.
  void mark_ready(u64 flow_key, FlowState& flow);
  void drain_ready(const SessionSink& sink);

  SessionAggregatorConfig config_;
  std::unordered_map<u64, Entry> staged_;      // token -> staged message
  std::unordered_map<u64, FlowState> flows_;
  TimestampNs watermark() const;

  TimeWindowArray<u64> expiry_;                // tokens by capture timestamp
  /// Newest capture timestamp drained per CPU, indexed by cpu id (the id
  /// space is dense and tiny — one slot per simulated CPU). watermark() is
  /// computed per staged message, so this is a flat scan, not a hash walk.
  static constexpr TimestampNs kCpuUnseen = ~TimestampNs{0};
  std::vector<TimestampNs> cpu_last_ts_;
  /// Pipeline flows whose heads are staged and waiting for the watermark:
  /// (ready timestamp, flow key). Popped as the watermark advances.
  std::multimap<TimestampNs, u64> ready_;
  StragglerSink stragglers_;
  u64 next_token_ = 1;
  u64 matched_ = 0;
  u64 forwarded_ = 0;
  u64 expired_requests_ = 0;
  u64 dropped_orphans_ = 0;
};

}  // namespace deepflow::agent
