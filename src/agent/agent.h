// The DeepFlow Agent (Figure 4): deployed per node, it owns the eBPF
// collection programs, the user-space parsing/aggregation pipeline, and the
// transport of finished spans (plus network metrics) to the server.
// Deployment is zero-code: attaching requires no change to any monitored
// process.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "agent/collector.h"
#include "agent/flow_inference.h"
#include "agent/session_aggregator.h"
#include "agent/span_builder.h"
#include "agent/systrace.h"
#include "netsim/fabric.h"

namespace deepflow::agent {

struct AgentConfig {
  CollectorConfig collector;
  SessionAggregatorConfig session;
  FlowInferenceConfig inference;
  /// Attach SSL_read/SSL_write uprobes (plaintext above TLS).
  bool enable_ssl_uprobes = true;
  /// Attach cBPF/AF_PACKET capture to this node's devices (net spans).
  bool enable_nic_capture = true;
};

/// Where finished spans go (the agent -> server transport).
using SpanSink = std::function<void(Span&&)>;

struct AgentStats {
  u64 syscall_records = 0;
  u64 packet_records = 0;
  u64 spans_emitted = 0;
  u64 unparseable_messages = 0;
  u64 perf_lost = 0;
  u64 matched_sessions = 0;
  u64 expired_requests = 0;
};

class Agent {
 public:
  Agent(kernelsim::Kernel* kernel, const netsim::ResourceRegistry* registry,
        AgentConfig config, SpanSink sink);

  /// Attach every collection program. `node_devices` are this node's
  /// devices for NIC capture (ignored when nic capture is disabled).
  /// Returns false with error() on verifier rejection.
  bool deploy(const std::vector<netsim::Device*>& node_devices = {});

  /// Stop tracing (on-demand monitoring can detach at any time).
  void undeploy();

  /// Forward out-of-window messages to the server for re-aggregation
  /// instead of surfacing them locally as incomplete sessions (§3.3.1).
  void set_straggler_sink(SessionAggregator::StragglerSink sink);

  /// Drain up to `budget` records from the perf buffers through the
  /// pipeline; emits spans to the sink. Returns records processed.
  size_t poll(size_t budget = 65536);

  /// End-of-run: drain everything and flush incomplete sessions.
  void finish();

  const std::string& error() const { return error_; }
  AgentStats stats() const;
  const Collector& collector() const { return collector_; }

 private:
  void handle_syscall_record(ebpf::SyscallEventRecord&& record);
  void handle_packet_record(ebpf::PacketEventRecord&& record);
  void emit_session(Session&& session);

  kernelsim::Kernel* kernel_;
  AgentConfig config_;
  Collector collector_;
  protocols::ProtocolRegistry registry_;
  FlowProtocolCache sys_flows_;
  FlowProtocolCache net_flows_;
  SystraceAssigner systrace_;
  SessionAggregator sys_sessions_;
  SessionAggregator net_sessions_;
  SpanBuilder builder_;
  SpanSink sink_;
  std::string error_;
  u64 syscall_records_ = 0;
  u64 packet_records_ = 0;
  u64 spans_emitted_ = 0;
  u64 unparseable_ = 0;
};

}  // namespace deepflow::agent
