// The DeepFlow Agent (Figure 4): deployed per node, it owns the eBPF
// collection programs, the user-space parsing/aggregation pipeline, and the
// transport of finished spans (plus network metrics) to the server.
// Deployment is zero-code: attaching requires no change to any monitored
// process.
//
// Drain pipeline. With drain_workers == 1 (default) poll() runs the
// historical serial path: round-robin perf-ring drain, parse, aggregate —
// byte-for-byte deterministic. With drain_workers == N > 1 the pipeline
// splits in two stages, mirroring the production agent's per-CPU drain
// threads:
//   stage 1 (parallel)  N workers own disjoint per-CPU perf rings
//                       (cpu % N == worker) and run protocol
//                       inference + parsing with worker-local flow caches;
//                       parsed messages flush to per-worker staging rings
//                       in batches.
//   stage 2 (serial)    the poll() caller drains the staging rings and runs
//                       the order-sensitive stages — pseudo-thread
//                       resolution, systrace assignment, session
//                       aggregation, span building — exactly as in serial
//                       mode. Per-CPU record order is preserved end to end,
//                       which is the order guarantee those stages need.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "agent/collector.h"
#include "agent/flow_inference.h"
#include "common/governor.h"
#include "agent/session_aggregator.h"
#include "agent/span_builder.h"
#include "agent/systrace.h"
#include "common/mpsc_ring.h"
#include "common/thread_pool.h"
#include "netsim/fabric.h"

namespace deepflow::agent {

struct AgentConfig {
  CollectorConfig collector;
  SessionAggregatorConfig session;
  FlowInferenceConfig inference;
  /// Attach SSL_read/SSL_write uprobes (plaintext above TLS).
  bool enable_ssl_uprobes = true;
  /// Attach cBPF/AF_PACKET capture to this node's devices (net spans).
  bool enable_nic_capture = true;
  /// Parallel drain workers for the parse stage. 1 = serial (deterministic
  /// default); N > 1 shards the per-CPU perf rings across N pool threads.
  u32 drain_workers = 1;
  /// Staging-ring capacity per worker, in batches.
  size_t staging_ring_batches = 256;
  /// Records per staging batch before a flush.
  size_t staging_batch_records = 128;
  /// Spans per columnar SpanBatch flight when a batch sink is installed
  /// (set_batch_sink): the batch ships when it reaches this size and at
  /// every poll()/finish() boundary. Ignored on the per-span sink path.
  size_t emit_batch_spans = 256;
  /// Batch-arena backpressure: ship the pending SpanBatch early whenever
  /// its arena grows past this many bytes (0 = size-triggered shipping
  /// only). Bounds the agent-side arena footprint under tag/cardinality
  /// explosions without dropping anything.
  size_t batch_arena_budget_bytes = 0;
};

/// Where finished spans go (the agent -> server transport).
using SpanSink = std::function<void(Span&&)>;
/// Columnar flavour: the agent hands over a filled SpanBatch by reference.
/// The sink must consume it synchronously (ingest or materialize) and must
/// not retain views into it — the agent clears and refills the same batch
/// every flight, which is what keeps the hot path allocation-free.
using BatchSink = std::function<void(SpanBatch&)>;

struct AgentStats {
  u64 syscall_records = 0;
  u64 packet_records = 0;
  u64 spans_emitted = 0;
  u64 unparseable_messages = 0;
  u64 perf_lost = 0;
  u64 matched_sessions = 0;
  u64 expired_requests = 0;
  // Parallel-drain telemetry (zero in serial mode).
  u64 drain_batches = 0;        // staging batches flushed by drain workers
  u64 drain_batch_records = 0;  // records carried by those batches
  u64 staging_ring_waits = 0;   // producer stalls on a full staging ring
  // Loss visibility (the failure-model counters):
  /// Per-CPU perf loss (syscall + packet rings, natural + injected) —
  /// shard-imbalanced loss is invisible in the perf_lost sum alone.
  std::vector<u64> perf_lost_per_cpu;
  /// Exit records dropped because the enter map had overflowed (the
  /// collector's silent `if (!staged) return` made countable).
  u64 enter_map_record_drops = 0;
};

class Agent {
 public:
  Agent(kernelsim::Kernel* kernel, const netsim::ResourceRegistry* registry,
        AgentConfig config, SpanSink sink);

  /// Attach every collection program. `node_devices` are this node's
  /// devices for NIC capture (ignored when nic capture is disabled).
  /// Returns false with error() on verifier rejection.
  bool deploy(const std::vector<netsim::Device*>& node_devices = {});

  /// Stop tracing (on-demand monitoring can detach at any time).
  void undeploy();

  /// Forward out-of-window messages to the server for re-aggregation
  /// instead of surfacing them locally as incomplete sessions (§3.3.1).
  void set_straggler_sink(SessionAggregator::StragglerSink sink);

  /// Switch span emission to the zero-copy columnar path: sessions append
  /// straight into an arena-backed SpanBatch (SpanBuilder::build_into) and
  /// ship in flights of config.emit_batch_spans. Replaces the per-span
  /// SpanSink for ordinary emission. `interner` is the string registry the
  /// batch encodes against (shared across agents and with the server's tag
  /// dictionaries); nullptr creates a private one.
  void set_batch_sink(BatchSink sink,
                      std::shared_ptr<StringInterner> interner = nullptr);

  /// Report this agent's batch-arena capacity to `governor`'s kArena
  /// account (growth deltas pushed after every shipped flight; the arena
  /// keeps its blocks across flights, so capacity only grows). nullptr
  /// detaches, releasing the accounted bytes.
  void set_governor(ResourceGovernor* governor);

  /// Drain up to `budget` records from the perf buffers through the
  /// pipeline; emits spans to the sink. Returns records processed.
  size_t poll(size_t budget = 65536);

  /// End-of-run: drain everything and flush incomplete sessions.
  void finish();

  const std::string& error() const { return error_; }
  AgentStats stats() const;
  const Collector& collector() const { return collector_; }
  u32 drain_workers() const { return config_.drain_workers; }

 private:
  /// A parsed message staged between the parallel parse stage and the
  /// serial aggregation stage.
  struct StagedRecord {
    u64 flow_key = 0;
    MessageData message;
  };
  using StagedBatch = std::vector<StagedRecord>;

  /// Per-worker state: flow caches are worker-local so the parse stage
  /// shares nothing mutable (inference is deterministic per payload, so
  /// worker-local verdicts match the serial ones).
  struct WorkerState {
    WorkerState(const protocols::ProtocolRegistry* registry,
                FlowInferenceConfig config)
        : sys_flows(registry, config), net_flows(registry, config) {}
    FlowProtocolCache sys_flows;
    FlowProtocolCache net_flows;
    // Cumulative counters, merged into AgentStats by stats().
    u64 syscall_records = 0;
    u64 packet_records = 0;
    u64 unparseable = 0;
    u64 batches = 0;
    u64 batch_records = 0;
    u64 ring_waits = 0;
  };

  // Parse stage (thread-safe: touches only the passed flow cache and
  // immutable agent state).
  std::optional<StagedRecord> parse_syscall(ebpf::SyscallEventRecord&& record,
                                            FlowProtocolCache& flows);
  std::optional<StagedRecord> parse_packet(ebpf::PacketEventRecord&& record,
                                           FlowProtocolCache& flows);
  // Aggregation stage (single-threaded: pseudo-thread resolution, systrace
  // assignment, session pairing, span emission).
  void finish_message(StagedRecord&& staged);
  void emit_session(Session&& session);
  /// Hand the pending batch (if any) to the batch sink and recycle it.
  void ship_batch();

  size_t poll_serial(size_t budget);
  size_t poll_parallel(size_t budget);
  /// Stage-1 body for worker `w`: drain owned CPU rings, parse, stage.
  size_t drain_worker(u32 w, size_t budget);

  kernelsim::Kernel* kernel_;
  AgentConfig config_;
  Collector collector_;
  protocols::ProtocolRegistry registry_;
  FlowProtocolCache sys_flows_;
  FlowProtocolCache net_flows_;
  SystraceAssigner systrace_;
  SessionAggregator sys_sessions_;
  SessionAggregator net_sessions_;
  SpanBuilder builder_;
  SpanSink sink_;
  BatchSink batch_sink_;
  std::unique_ptr<SpanBatch> batch_;  // reused flight, only on the batch path
  ResourceGovernor* governor_ = nullptr;
  size_t arena_accounted_ = 0;  // kArena bytes currently reported
  std::string error_;
  u64 syscall_records_ = 0;
  u64 packet_records_ = 0;
  u64 spans_emitted_ = 0;
  u64 unparseable_ = 0;

  // Parallel drain machinery (null in serial mode).
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<MpscRingArray<StagedBatch>> staging_;
  std::vector<std::unique_ptr<WorkerState>> worker_states_;
};

}  // namespace deepflow::agent
