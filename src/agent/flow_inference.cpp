#include "agent/flow_inference.h"

namespace deepflow::agent {

const protocols::ProtocolParser* FlowProtocolCache::parser_for(
    u64 flow_key, std::string_view payload) {
  if (config_.reinfer_every_message) {
    ++inference_runs_;
    return registry_->infer(payload);
  }
  FlowState& state = flows_[flow_key];
  if (state.parser != nullptr) {
    ++cache_hits_;
    return state.parser;
  }
  if (state.gave_up) {
    ++cache_hits_;
    return nullptr;
  }
  ++inference_runs_;
  state.parser = registry_->infer(payload);
  if (state.parser == nullptr && ++state.attempts >= config_.max_attempts) {
    state.gave_up = true;
  }
  return state.parser;
}

}  // namespace deepflow::agent
