#include "agent/span_builder.h"

namespace deepflow::agent {

std::atomic<u64> SpanBuilder::global_span_id_{1};

std::string_view span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kSystem: return "sys";
    case SpanKind::kApplication: return "app";
    case SpanKind::kNetwork: return "net";
    case SpanKind::kThirdParty: return "otel";
  }
  return "?";
}

Span SpanBuilder::build(const Session& session) const {
  const MessageData& request = session.request;
  Span span;
  span.span_id = global_span_id_.fetch_add(1, std::memory_order_relaxed);

  switch (request.origin) {
    case CaptureOrigin::kSyscall: span.kind = SpanKind::kSystem; break;
    case CaptureOrigin::kSslUprobe: span.kind = SpanKind::kApplication; break;
    case CaptureOrigin::kPacketTap: span.kind = SpanKind::kNetwork; break;
  }

  // Association attributes. The pseudo-thread id is only a search key for
  // coroutine runtimes (one root coroutine per logical request); exposing a
  // plain kernel tid here would false-link unrelated requests that merely
  // reused the same pool thread.
  span.systrace_id = request.systrace_id;
  span.pseudo_thread_id =
      request.record.coroutine_id != 0 ? request.pseudo_thread_id : 0;
  span.x_request_id = !request.parsed.x_request_id.empty()
                          ? request.parsed.x_request_id
                          : (session.response.has_value()
                                 ? session.response->parsed.x_request_id
                                 : std::string{});
  span.otel_trace_id = protocols::extract_trace_id(request.parsed.trace_context);
  span.req_tcp_seq = request.record.tcp_seq;
  span.resp_tcp_seq =
      session.response.has_value() ? session.response->record.tcp_seq : 0;

  // Location.
  span.host = host_;
  span.from_server_side =
      request.origin != CaptureOrigin::kPacketTap &&
      request.record.direction == kernelsim::Direction::kIngress;
  span.device_id = request.device_id;
  span.device_name = request.device_name;
  span.pid = request.record.pid;
  span.tid = request.record.tid;

  // Timing: request brackets the start, response the end. Expired sessions
  // keep the request's own window and are flagged incomplete.
  span.start_ts = request.record.enter_ts;
  if (session.response.has_value()) {
    span.end_ts = session.response->record.exit_ts;
  } else {
    span.end_ts = request.record.exit_ts;
    span.incomplete = true;
    span.ok = false;
  }

  // Semantics.
  span.protocol = request.parsed.protocol;
  span.method = request.parsed.method;
  span.endpoint = request.parsed.endpoint;
  if (session.response.has_value()) {
    span.status_code = session.response->parsed.status_code;
    span.ok = session.response->parsed.ok;
  }
  // The request message always travels client -> server, so its tuple is
  // already in client perspective.
  span.tuple = request.record.tuple;

  // Phase-one integer tags (smart-encoding): VPC + both endpoint IPs.
  if (registry_ != nullptr) {
    const netsim::ResourceInfo client_info =
        registry_->resolve(span.tuple.src_ip);
    const netsim::ResourceInfo server_info =
        registry_->resolve(span.tuple.dst_ip);
    span.int_tags.vpc_id =
        client_info.vpc != 0 ? client_info.vpc : server_info.vpc;
    span.int_tags.client_ip = span.tuple.src_ip.addr;
    span.int_tags.server_ip = span.tuple.dst_ip.addr;
  }

  ++spans_built_;
  return span;
}

}  // namespace deepflow::agent
