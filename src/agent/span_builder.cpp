#include "agent/span_builder.h"

namespace deepflow::agent {

std::atomic<u64> SpanBuilder::global_span_id_{1};

std::string_view span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kSystem: return "sys";
    case SpanKind::kApplication: return "app";
    case SpanKind::kNetwork: return "net";
    case SpanKind::kThirdParty: return "otel";
  }
  return "?";
}

Span SpanBuilder::build(const Session& session) const {
  const MessageData& request = session.request;
  Span span;
  span.span_id = global_span_id_.fetch_add(1, std::memory_order_relaxed);

  switch (request.origin) {
    case CaptureOrigin::kSyscall: span.kind = SpanKind::kSystem; break;
    case CaptureOrigin::kSslUprobe: span.kind = SpanKind::kApplication; break;
    case CaptureOrigin::kPacketTap: span.kind = SpanKind::kNetwork; break;
  }

  // Association attributes. The pseudo-thread id is only a search key for
  // coroutine runtimes (one root coroutine per logical request); exposing a
  // plain kernel tid here would false-link unrelated requests that merely
  // reused the same pool thread.
  span.systrace_id = request.systrace_id;
  span.pseudo_thread_id =
      request.record.coroutine_id != 0 ? request.pseudo_thread_id : 0;
  span.x_request_id = !request.parsed.x_request_id.empty()
                          ? request.parsed.x_request_id
                          : (session.response.has_value()
                                 ? session.response->parsed.x_request_id
                                 : std::string{});
  span.otel_trace_id = protocols::extract_trace_id(request.parsed.trace_context);
  span.req_tcp_seq = request.record.tcp_seq;
  span.resp_tcp_seq =
      session.response.has_value() ? session.response->record.tcp_seq : 0;

  // Location.
  span.host = host_;
  span.from_server_side =
      request.origin != CaptureOrigin::kPacketTap &&
      request.record.direction == kernelsim::Direction::kIngress;
  span.device_id = request.device_id;
  span.device_name = request.device_name;
  span.pid = request.record.pid;
  span.tid = request.record.tid;

  // Timing: request brackets the start, response the end. Expired sessions
  // keep the request's own window and are flagged incomplete.
  span.start_ts = request.record.enter_ts;
  if (session.response.has_value()) {
    span.end_ts = session.response->record.exit_ts;
  } else {
    span.end_ts = request.record.exit_ts;
    span.incomplete = true;
    span.ok = false;
  }

  // Semantics.
  span.protocol = request.parsed.protocol;
  span.method = request.parsed.method;
  span.endpoint = request.parsed.endpoint;
  if (session.response.has_value()) {
    span.status_code = session.response->parsed.status_code;
    span.ok = session.response->parsed.ok;
  }
  // The request message always travels client -> server, so its tuple is
  // already in client perspective.
  span.tuple = request.record.tuple;

  // Phase-one integer tags (smart-encoding): VPC + both endpoint IPs.
  // resolve_ids, not resolve: only the VPC id is needed, and the full
  // resolve copies ~8 strings per call — twice per span, it dominated the
  // build cost.
  if (registry_ != nullptr) {
    const u32 client_vpc = registry_->resolve_ids(span.tuple.src_ip).vpc;
    span.int_tags.vpc_id = client_vpc != 0
                               ? client_vpc
                               : registry_->resolve_ids(span.tuple.dst_ip).vpc;
    span.int_tags.client_ip = span.tuple.src_ip.addr;
    span.int_tags.server_ip = span.tuple.dst_ip.addr;
  }

  ++spans_built_;
  return span;
}

void SpanBuilder::build_into(const Session& session, SpanBatch& batch) const {
  const MessageData& request = session.request;
  SpanBatch::Draft d;
  d.span_id = global_span_id_.fetch_add(1, std::memory_order_relaxed);

  switch (request.origin) {
    case CaptureOrigin::kSyscall: d.kind = SpanKind::kSystem; break;
    case CaptureOrigin::kSslUprobe: d.kind = SpanKind::kApplication; break;
    case CaptureOrigin::kPacketTap: d.kind = SpanKind::kNetwork; break;
  }

  // Field-for-field the same decisions as build(); the strings stay views
  // into the session until batch.push copies them into arena/interner.
  d.systrace_id = request.systrace_id;
  d.pseudo_thread_id =
      request.record.coroutine_id != 0 ? request.pseudo_thread_id : 0;
  d.x_request_id = !request.parsed.x_request_id.empty()
                       ? std::string_view(request.parsed.x_request_id)
                       : (session.response.has_value()
                              ? std::string_view(
                                    session.response->parsed.x_request_id)
                              : std::string_view{});
  d.otel_trace_id =
      protocols::extract_trace_id_view(request.parsed.trace_context);
  d.req_tcp_seq = request.record.tcp_seq;
  d.resp_tcp_seq =
      session.response.has_value() ? session.response->record.tcp_seq : 0;

  d.host = host_;
  d.from_server_side =
      request.origin != CaptureOrigin::kPacketTap &&
      request.record.direction == kernelsim::Direction::kIngress;
  d.device_id = request.device_id;
  d.device_name = request.device_name;
  d.pid = request.record.pid;
  d.tid = request.record.tid;

  d.start_ts = request.record.enter_ts;
  if (session.response.has_value()) {
    d.end_ts = session.response->record.exit_ts;
  } else {
    d.end_ts = request.record.exit_ts;
    d.incomplete = true;
    d.ok = false;
  }

  d.protocol = request.parsed.protocol;
  d.method = request.parsed.method;
  d.endpoint = request.parsed.endpoint;
  if (session.response.has_value()) {
    d.status_code = session.response->parsed.status_code;
    d.ok = session.response->parsed.ok;
  }
  d.tuple = request.record.tuple;

  if (registry_ != nullptr) {
    const u32 client_vpc = registry_->resolve_ids(d.tuple.src_ip).vpc;
    d.int_tags.vpc_id = client_vpc != 0
                            ? client_vpc
                            : registry_->resolve_ids(d.tuple.dst_ip).vpc;
    d.int_tags.client_ip = d.tuple.src_ip.addr;
    d.int_tags.server_ip = d.tuple.dst_ip.addr;
  }

  ++spans_built_;
  batch.push(d);
}

}  // namespace deepflow::agent
