// Agent -> server span transport (the Figure 4 upload path, made fallible).
//
// The historical hot path handed every finished span to the server through
// a perfect in-process call. SpanTransport replaces that wire with the
// delivery model a production agent actually faces:
//
//   * a BOUNDED send queue — when the server cannot keep up, the queue
//     sheds load by span value: net spans are shed first, then sys spans,
//     and app spans last (the paper's spans closest to business semantics
//     are the most expensive to lose);
//   * BATCHED sends — spans leave in flights of `batch_spans` through a
//     lossy simulated channel (the FaultInjector's kTransportSend site),
//     which may drop, duplicate, delay (reorder) or timestamp-skew a batch;
//   * RETRY with capped exponential backoff + deterministic jitter —
//     dropped batches are re-sent up to `max_attempts` times, giving
//     AT-LEAST-ONCE delivery; the server's idempotent ingest (dedup by
//     span id) upgrades that to exactly-once storage.
//
// Time is modeled in pump ticks, not wall clock: pump() is called once per
// agent poll cycle, delivers due retries and delayed batches, then sends
// everything queued. flush() pumps until the transport is empty, so
// end-of-run semantics are "everything delivered or explicitly given up"
// — never silently stuck in a queue.
//
// Threading: offer()/pump()/flush() are called from the agent's poll
// thread only (stage 2 of the drain pipeline is serial by design). The
// delivery sink may be called multiple times per pump; with no faults
// configured and retries on, delivery order equals offer order.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "agent/span.h"
#include "agent/span_batch.h"
#include "common/fault.h"
#include "common/governor.h"
#include "common/rand.h"

namespace deepflow::agent {

/// How a receiver disposed of a delivered batch. kRefused models a dead or
/// partitioned node (PR 3/6 fault semantics: retried against the channel
/// attempt budget). kOverloaded is DISTINCT: the receiver is alive but its
/// governor is at the refusal rung — the transport honors the retry-after
/// hint, pauses fresh sends (so backpressure propagates into the bounded
/// queue and from there into priority shedding), and retries on a separate
/// attempt budget so a long overload is not misread as a dead node.
enum class SinkStatus : u8 {
  kAccepted = 0,
  kRefused = 1,
  kOverloaded = 2,
};

struct SinkVerdict {
  SinkStatus status = SinkStatus::kAccepted;
  /// For kOverloaded: receiver's suggested wait before the next attempt.
  u32 retry_after_ticks = 0;

  static SinkVerdict accepted() { return {SinkStatus::kAccepted, 0}; }
  static SinkVerdict refused() { return {SinkStatus::kRefused, 0}; }
  static SinkVerdict overloaded(u32 retry_after) {
    return {SinkStatus::kOverloaded, retry_after};
  }
};

struct TransportConfig {
  /// Pass-through mode: offer() delivers each span immediately as a
  /// single-span batch — no queue, no batching, no channel faults, no
  /// retries. Byte-identical to the historical direct sink.
  bool direct = false;
  /// Bounded send-queue capacity in spans; overflow sheds by priority.
  size_t queue_capacity = 8192;
  /// Spans per send batch. Partial batches wait for flush().
  size_t batch_spans = 128;
  /// Re-send dropped batches (at-least-once). Off = fire-and-forget.
  bool retries = true;
  /// Total attempts per batch including the first (>= 1).
  u32 max_attempts = 6;
  /// Backoff before attempt k is base * 2^(k-1) ticks, capped, plus
  /// uniform jitter in [0, jitter_ticks].
  u32 backoff_base_ticks = 1;
  u32 backoff_cap_ticks = 32;
  u32 jitter_ticks = 2;
  /// Seed of the (deterministic) jitter stream.
  u64 jitter_seed = 0x7a695eed;
  /// Retry budget for kOverloaded refusals, separate from max_attempts: an
  /// overloaded-but-alive receiver deserves more patience than a dead one.
  u32 overload_max_attempts = 16;
  /// Optional queue byte ceiling (0 = spans-count bound only). When the
  /// queued bytes would exceed it, admission sheds by the same net>sys>app
  /// ladder until the incoming span fits or is itself shed.
  size_t queue_budget_bytes = 0;
  /// Optional overload governor. When set, queued/in-flight bytes are
  /// pushed to its kTransportQueue account, and at the kShed rung or above
  /// incoming net spans are shed at admission (ladder rung 3).
  ResourceGovernor* governor = nullptr;
  /// Fault/jitter lane. kFaultSharedLane (the default) keeps the historical
  /// behaviour: every transport draws channel fates from the shared
  /// kTransportSend stream and jitter from jitter_seed. A federated
  /// deployment runs one transport per (agent, server) link and assigns
  /// each its own lane, so creating a new link (replication fan-out,
  /// failover re-routing) cannot perturb the draw schedule of any existing
  /// link — the same isolation the per-site streams give across sites.
  u64 lane = kFaultSharedLane;
};

struct TransportStats {
  u64 offered = 0;            // spans handed to offer()
  u64 shed_net = 0;           // net spans shed on queue overflow
  u64 shed_sys = 0;           // sys spans shed on queue overflow
  u64 shed_app = 0;           // app/third-party spans shed on overflow
  u64 batches_sent = 0;       // send attempts, retries included
  u64 spans_sent = 0;         // spans carried by those attempts
  u64 send_drops = 0;         // attempts the channel dropped
  u64 retries = 0;            // re-sends scheduled after a drop
  u64 gave_up_batches = 0;    // batches abandoned after max_attempts
  u64 gave_up_spans = 0;      // spans lost with them
  u64 duplicated_batches = 0; // batches the channel delivered twice
  u64 delayed_batches = 0;    // batches the channel held back (reordering)
  u64 ts_corrupted_spans = 0; // spans delivered with skewed timestamps
  u64 delivered_batches = 0;  // sink invocations
  u64 delivered_spans = 0;    // spans that reached the sink (dups included)
  u64 sink_rejected_batches = 0;  // deliveries the receiver refused (node down)
  u64 sink_rejected_spans = 0;    // spans carried by those attempts
  u64 overload_refused_batches = 0;  // kOverloaded verdicts (receiver alive)
  u64 overload_refused_spans = 0;    // spans carried by those attempts
  u64 overload_retries = 0;          // re-sends scheduled after kOverloaded
  u64 overload_gave_up_batches = 0;  // batches abandoned after the overload
  u64 overload_gave_up_spans = 0;    //   attempt budget ran out
  u64 governor_shed_net = 0;  // net spans shed at admission by rung 3
  u64 queue_high_watermark = 0;

  u64 shed_total() const { return shed_net + shed_sys + shed_app; }
};

class SpanTransport {
 public:
  /// Spans are delivered to `sink` in batches (possibly of size 1 in
  /// direct mode). `faults` may be nullptr: a perfect channel.
  using BatchSink = std::function<void(std::vector<Span>&&)>;
  /// Fallible receiver: returns false to refuse the batch (a dead or
  /// partitioned server), in which case it MUST leave the vector intact —
  /// the transport re-queues the same spans for retry (or gives up after
  /// max_attempts, exactly like a channel drop).
  using FailableBatchSink = std::function<bool(std::vector<Span>&)>;
  /// Full-verdict receiver: may also answer kOverloaded with a retry-after
  /// hint (DeepFlowServer::try_ingest_batch). Refused/overloaded deliveries
  /// MUST leave the vector intact for retry.
  using VerdictBatchSink = std::function<SinkVerdict(std::vector<Span>&)>;

  SpanTransport(TransportConfig config, BatchSink sink,
                FaultInjector* faults = nullptr);
  SpanTransport(TransportConfig config, FailableBatchSink sink,
                FaultInjector* faults = nullptr);
  SpanTransport(TransportConfig config, VerdictBatchSink sink,
                FaultInjector* faults = nullptr);

  /// Producer side: enqueue one finished span (or deliver it immediately
  /// in direct mode). Sheds by priority when the queue is full.
  void offer(Span&& span);

  /// Columnar producer side: decompose a SpanBatch flight into per-span
  /// offers (the queue holds Span rows, so shed/priority/retry semantics
  /// are byte-identical to per-span offers of the same stream). The caller
  /// keeps ownership of the batch.
  void offer_batch(const SpanBatch& batch);

  /// One transport tick: deliver due delayed batches and due retries, then
  /// send every full batch in the queue. Returns spans delivered to the
  /// sink this tick.
  size_t pump();

  /// End of run: send the partial tail batch and pump until the queue,
  /// retry schedule and delay schedule are all empty. Every span is then
  /// either delivered or counted in gave_up_spans.
  void flush();

  /// Spans currently queued, in flight (delayed) or awaiting retry.
  size_t backlog() const;

  const TransportStats& stats() const { return stats_; }
  const TransportConfig& config() const { return config_; }

  /// Spans currently sitting in the send queue (excludes in-flight/retry).
  size_t queued_bytes() const { return queue_bytes_; }

 private:
  struct PendingBatch {
    std::vector<Span> spans;
    size_t bytes = 0;          // approx_span_bytes sum (governor account)
    u32 attempts = 0;          // channel send attempts so far
    u32 overload_attempts = 0; // kOverloaded bounces so far
    u64 due_tick = 0;          // earliest tick this batch may (re-)send
  };

  /// Shed priority class: lower = shed first.
  static int priority_of(const Span& span);
  /// Evict one span to admit `incoming`. Returns false when the incoming
  /// span itself was the victim (caller must not enqueue it).
  bool shed_for(const Span& incoming);
  /// Run one batch through the channel. Returns spans delivered.
  size_t send(PendingBatch&& batch);
  /// Hand a batch that cleared the channel to the sink; a refusal re-queues
  /// it for retry (or gives up). Returns spans delivered.
  size_t finish_delivery(PendingBatch&& batch);
  SinkVerdict deliver(std::vector<Span>& spans);
  u64 backoff_ticks(u32 attempt);
  void account_add(size_t bytes);
  void account_sub(size_t bytes);

  TransportConfig config_;
  VerdictBatchSink sink_;
  FaultInjector* faults_;
  Rng jitter_;
  u64 tick_ = 0;
  /// Fresh sends wait until this tick after a kOverloaded verdict — the
  /// backpressure half of the retry-after contract.
  u64 pause_until_tick_ = 0;

  std::deque<Span> queue_;             // bounded by queue_capacity
  size_t queue_bytes_ = 0;             // approx bytes held by queue_
  std::deque<PendingBatch> retry_;     // dropped batches awaiting re-send
  std::deque<PendingBatch> delayed_;   // channel-delayed batches in flight
  TransportStats stats_;
};

}  // namespace deepflow::agent
