// Session -> Span conversion: the final step of span construction. A
// session's request marks the start and its response the end (Figure 1);
// association attributes and parsed semantics are carried over, and the
// agent's phase-one integer tags (VPC + IPs) are attached for
// smart-encoding.
#pragma once

#include <atomic>
#include <string>

#include "agent/session_aggregator.h"
#include "agent/span.h"
#include "agent/span_batch.h"
#include "netsim/resource.h"

namespace deepflow::agent {

class SpanBuilder {
 public:
  SpanBuilder(std::string host, const netsim::ResourceRegistry* registry)
      : host_(std::move(host)), registry_(registry) {}

  /// Build the span for one aggregated session (any capture origin).
  Span build(const Session& session) const;

  /// Zero-allocation flavour: append the session's span directly to a
  /// columnar batch (string fields go in as views over session/parser
  /// storage; the batch arena/interner take the only copies). Field-for-field
  /// identical to build() — batch.materialize(i) == build(session) — pinned
  /// by the span-builder suite.
  void build_into(const Session& session, SpanBatch& batch) const;

  u64 spans_built() const { return spans_built_; }

 private:
  std::string host_;
  const netsim::ResourceRegistry* registry_;
  mutable u64 spans_built_ = 0;

  static std::atomic<u64> global_span_id_;
};

}  // namespace deepflow::agent
