// Per-flow protocol inference cache (§3.3.1, phase two): DeepFlow runs the
// protocol signature scan once per newly established connection and caches
// the verdict, instead of re-inferring on every message. The ablation bench
// quantifies what that caching buys.
#pragma once

#include <string_view>
#include <unordered_map>

#include "common/types.h"
#include "protocols/parser.h"

namespace deepflow::agent {

struct FlowInferenceConfig {
  /// Give up on a flow after this many failed signature scans (ciphertext
  /// or unsupported protocols never match).
  u32 max_attempts = 5;
  /// Ablation switch: re-run inference on every message (no caching).
  bool reinfer_every_message = false;
};

class FlowProtocolCache {
 public:
  FlowProtocolCache(const protocols::ProtocolRegistry* registry,
                    FlowInferenceConfig config = {})
      : registry_(registry), config_(config) {}

  /// Parser for the flow identified by `flow_key`, inferring from `payload`
  /// when the flow is new. Returns null while the protocol is unknown.
  const protocols::ProtocolParser* parser_for(u64 flow_key,
                                              std::string_view payload);

  u64 inference_runs() const { return inference_runs_; }
  u64 cache_hits() const { return cache_hits_; }
  size_t tracked_flows() const { return flows_.size(); }

 private:
  struct FlowState {
    const protocols::ProtocolParser* parser = nullptr;
    u32 attempts = 0;
    bool gave_up = false;
  };

  const protocols::ProtocolRegistry* registry_;
  FlowInferenceConfig config_;
  std::unordered_map<u64, FlowState> flows_;
  u64 inference_runs_ = 0;
  u64 cache_hits_ = 0;
};

}  // namespace deepflow::agent
