#include "agent/systrace.h"

namespace deepflow::agent {

std::atomic<SystraceId> SystraceAssigner::global_next_{1};

SystraceId SystraceAssigner::next_id() {
  ++ids_issued_;
  return global_next_.fetch_add(1, std::memory_order_relaxed);
}

void SystraceAssigner::assign(MessageData& message) {
  const auto& record = message.record;
  ThreadState& state = threads_[thread_key(record.pid,
                                           message.pseudo_thread_id)];

  const bool ingress =
      record.direction == kernelsim::Direction::kIngress;
  const bool is_request = message.is_request();

  if (ingress && is_request) {
    // A server-side component picked up a new inbound request. Whether the
    // thread is fresh or reused, this begins a new causal flow (Fig 7(b):
    // time-sequence partition on thread reuse).
    state.current = next_id();
    state.handling = true;
  } else if (!ingress && is_request) {
    // Outbound call to a downstream component. If this thread is currently
    // handling an inbound request, the call inherits its systrace_id
    // (Fig 7(a)). A pure client thread (no inbound request being handled,
    // e.g. a load generator) starts a fresh flow per outbound call — the
    // time-sequence partition of Fig 7(b): consecutive messages of the SAME
    // type on a reused thread belong to different flows.
    if (!state.handling) state.current = next_id();
  } else if (ingress && !is_request) {
    // Response returning from a downstream call: stays on the current flow.
    if (state.current == kInvalidSystraceId) state.current = next_id();
  } else {
    // Outbound response: completes the inbound request's flow.
    if (state.current == kInvalidSystraceId) state.current = next_id();
    state.handling = false;
  }

  message.systrace_id = state.current;
  state.last_socket = record.socket_id;
  state.last_direction = record.direction;
}

}  // namespace deepflow::agent
