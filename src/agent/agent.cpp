#include "agent/agent.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/hash.h"
#include "common/logging.h"

namespace deepflow::agent {

Agent::Agent(kernelsim::Kernel* kernel,
             const netsim::ResourceRegistry* registry, AgentConfig config,
             SpanSink sink)
    : kernel_(kernel),
      config_(config),
      collector_(kernel, config.collector),
      registry_(protocols::ProtocolRegistry::with_builtin()),
      sys_flows_(&registry_, config.inference),
      net_flows_(&registry_, config.inference),
      sys_sessions_(config.session),
      net_sessions_(config.session),
      builder_(kernel != nullptr ? kernel->hostname() : "unknown", registry),
      sink_(std::move(sink)) {
  if (config_.drain_workers > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.drain_workers);
    staging_ = std::make_unique<MpscRingArray<StagedBatch>>(
        config_.drain_workers, config_.staging_ring_batches);
    worker_states_.reserve(config_.drain_workers);
    for (u32 w = 0; w < config_.drain_workers; ++w) {
      worker_states_.push_back(
          std::make_unique<WorkerState>(&registry_, config_.inference));
    }
  }
}

bool Agent::deploy(const std::vector<netsim::Device*>& node_devices) {
  if (!collector_.deploy_syscall_programs()) {
    error_ = collector_.error();
    return false;
  }
  if (config_.enable_ssl_uprobes && !collector_.deploy_ssl_programs()) {
    error_ = collector_.error();
    return false;
  }
  if (config_.enable_nic_capture) {
    for (netsim::Device* device : node_devices) {
      if (!collector_.deploy_nic_capture(device)) {
        error_ = collector_.error();
        return false;
      }
    }
  }
  return true;
}

void Agent::undeploy() { collector_.undeploy(); }

void Agent::set_straggler_sink(SessionAggregator::StragglerSink sink) {
  sys_sessions_.set_straggler_sink(sink);
  net_sessions_.set_straggler_sink(std::move(sink));
}

void Agent::set_batch_sink(BatchSink sink,
                           std::shared_ptr<StringInterner> interner) {
  batch_sink_ = std::move(sink);
  if (interner == nullptr) interner = std::make_shared<StringInterner>();
  batch_ = std::make_unique<SpanBatch>(std::move(interner),
                                       config_.emit_batch_spans);
}

void Agent::set_governor(ResourceGovernor* governor) {
  if (governor_ != nullptr && arena_accounted_ > 0) {
    governor_->sub_bytes(GovernorAccount::kArena, arena_accounted_);
    arena_accounted_ = 0;
  }
  governor_ = governor;
  if (governor_ != nullptr && batch_ != nullptr) {
    arena_accounted_ = batch_->arena_capacity_bytes();
    governor_->add_bytes(GovernorAccount::kArena, arena_accounted_);
  }
}

void Agent::emit_session(Session&& session) {
  ++spans_emitted_;
  if (batch_sink_) {
    // Columnar path: session strings go straight into the batch's
    // arena/interner; no Span object, no per-span sink dispatch.
    builder_.build_into(session, *batch_);
    if (batch_->size() >= config_.emit_batch_spans ||
        (config_.batch_arena_budget_bytes != 0 &&
         batch_->arena_used_bytes() > config_.batch_arena_budget_bytes)) {
      ship_batch();
    }
    return;
  }
  Span span = builder_.build(session);
  if (sink_) sink_(std::move(span));
}

void Agent::ship_batch() {
  if (batch_ == nullptr || batch_->empty()) return;
  batch_sink_(*batch_);
  batch_->clear();  // keeps arena blocks and column capacity warm
  if (governor_ != nullptr) {
    // Arena blocks persist across flights, so capacity is monotone; push
    // only the growth since the last flight.
    const size_t capacity = batch_->arena_capacity_bytes();
    if (capacity > arena_accounted_) {
      governor_->add_bytes(GovernorAccount::kArena,
                           capacity - arena_accounted_);
      arena_accounted_ = capacity;
    }
  }
}

std::optional<Agent::StagedRecord> Agent::parse_syscall(
    ebpf::SyscallEventRecord&& record, FlowProtocolCache& flows) {
  StagedRecord staged;
  MessageData& message = staged.message;
  message.record = record;
  message.origin = record.abi == kernelsim::SyscallAbi::kSslRead ||
                           record.abi == kernelsim::SyscallAbi::kSslWrite
                       ? CaptureOrigin::kSslUprobe
                       : CaptureOrigin::kSyscall;

  // Protocol inference is cached per socket; SSL and plain flows of the
  // same socket infer independently (ciphertext never matches a parser, so
  // TLS sockets only yield app spans — exactly the real behaviour).
  staged.flow_key = flow_key_of(message);
  const protocols::ProtocolParser* parser =
      flows.parser_for(staged.flow_key, record.payload_view());
  if (parser == nullptr) return std::nullopt;
  auto parsed = parser->parse(record.payload_view());
  if (!parsed.has_value()) {
    DF_LOG_DEBUG("unparseable sys msg proto=%d abi=%s payload[0..8]=%02x %02x %02x %02x %02x %02x %02x %02x len=%zu",
                 (int)parser->protocol(), std::string(kernelsim::abi_name(record.abi)).c_str(),
                 (unsigned)(unsigned char)record.payload[0], (unsigned)(unsigned char)record.payload[1],
                 (unsigned)(unsigned char)record.payload[2], (unsigned)(unsigned char)record.payload[3],
                 (unsigned)(unsigned char)record.payload[4], (unsigned)(unsigned char)record.payload[5],
                 (unsigned)(unsigned char)record.payload[6], (unsigned)(unsigned char)record.payload[7],
                 (size_t)record.payload_len);
    return std::nullopt;
  }
  message.parsed = std::move(*parsed);
  message.mode = parser->match_mode();
  return staged;
}

std::optional<Agent::StagedRecord> Agent::parse_packet(
    ebpf::PacketEventRecord&& record, FlowProtocolCache& flows) {
  StagedRecord staged;
  MessageData& message = staged.message;
  message.origin = CaptureOrigin::kPacketTap;
  message.device_id = record.device_id;
  message.device_name.assign(record.device_name);
  message.record.tuple = record.tuple;
  message.record.tcp_seq = record.tcp_seq;
  message.record.enter_ts = record.timestamp;
  message.record.exit_ts = record.timestamp;
  message.record.total_bytes = record.total_bytes;
  message.record.cpu = record.cpu;
  message.record.set_payload(record.payload_view());

  staged.flow_key = flow_key_of(message);
  const protocols::ProtocolParser* parser =
      flows.parser_for(staged.flow_key, record.payload_view());
  if (parser == nullptr) return std::nullopt;
  auto parsed = parser->parse(record.payload_view());
  if (!parsed.has_value()) return std::nullopt;
  message.parsed = std::move(*parsed);
  message.mode = parser->match_mode();
  return staged;
}

void Agent::finish_message(StagedRecord&& staged) {
  MessageData& message = staged.message;
  if (message.origin == CaptureOrigin::kPacketTap) {
    net_sessions_.offer(staged.flow_key, std::move(message),
                        [this](Session&& s) { emit_session(std::move(s)); });
    return;
  }
  // Pseudo-thread: coroutine lineage root, or the kernel thread itself.
  message.pseudo_thread_id =
      message.record.coroutine_id != 0
          ? kernel_->tasks().pseudo_thread_root(message.record.coroutine_id)
          : message.record.tid;
  systrace_.assign(message);
  sys_sessions_.offer(staged.flow_key, std::move(message),
                      [this](Session&& s) { emit_session(std::move(s)); });
}

size_t Agent::poll(size_t budget) {
  const size_t processed = config_.drain_workers > 1 ? poll_parallel(budget)
                                                     : poll_serial(budget);
  // A partial batch never straddles a poll call: callers that query the
  // server between polls observe the same spans as on the per-span path.
  ship_batch();
  return processed;
}

size_t Agent::poll_serial(size_t budget) {
  size_t processed = 0;
  processed += collector_.syscall_events().drain(
      budget, [this](ebpf::SyscallEventRecord&& record) {
        ++syscall_records_;
        auto staged = parse_syscall(std::move(record), sys_flows_);
        if (staged.has_value()) {
          finish_message(std::move(*staged));
        } else {
          ++unparseable_;
        }
      });
  if (processed < budget) {
    processed += collector_.packet_events().drain(
        budget - processed, [this](ebpf::PacketEventRecord&& record) {
          ++packet_records_;
          auto staged = parse_packet(std::move(record), net_flows_);
          if (staged.has_value()) {
            finish_message(std::move(*staged));
          } else {
            ++unparseable_;
          }
        });
  }
  return processed;
}

size_t Agent::drain_worker(u32 w, size_t budget) {
  WorkerState& ws = *worker_states_[w];
  const u32 workers = config_.drain_workers;
  auto& sys_buf = collector_.syscall_events();
  auto& pkt_buf = collector_.packet_events();

  StagedBatch batch;
  batch.reserve(config_.staging_batch_records);
  const auto flush = [&] {
    if (batch.empty()) return;
    ++ws.batches;
    ws.batch_records += batch.size();
    // Bounded backpressure instead of loss: the lane has one producer, so
    // once full(w) clears, the push below cannot fail.
    while (staging_->full(w)) {
      ++ws.ring_waits;
      std::this_thread::yield();
    }
    staging_->push(w, std::move(batch));
    batch = StagedBatch{};
    batch.reserve(config_.staging_batch_records);
  };
  const auto stage = [&](std::optional<StagedRecord>&& staged) {
    if (!staged.has_value()) {
      ++ws.unparseable;
      return;
    }
    batch.push_back(std::move(*staged));
    if (batch.size() >= config_.staging_batch_records) flush();
  };

  // Same round-robin shape as the serial drain, restricted to the CPU rings
  // this worker owns; per-CPU pop order is preserved.
  size_t drained = 0;
  bool any = true;
  while (drained < budget && any) {
    any = false;
    for (u32 cpu = w; cpu < sys_buf.cpu_count(); cpu += workers) {
      if (drained >= budget) break;
      if (auto record = sys_buf.pop_cpu(cpu)) {
        ++ws.syscall_records;
        ++drained;
        any = true;
        stage(parse_syscall(std::move(*record), ws.sys_flows));
      }
    }
    for (u32 cpu = w; cpu < pkt_buf.cpu_count(); cpu += workers) {
      if (drained >= budget) break;
      if (auto record = pkt_buf.pop_cpu(cpu)) {
        ++ws.packet_records;
        ++drained;
        any = true;
        stage(parse_packet(std::move(*record), ws.net_flows));
      }
    }
  }
  flush();
  return drained;
}

size_t Agent::poll_parallel(size_t budget) {
  const u32 workers = config_.drain_workers;
  const size_t worker_budget = budget / workers + 1;
  std::atomic<size_t> drained_total{0};
  std::atomic<u32> active{workers};
  for (u32 w = 0; w < workers; ++w) {
    pool_->submit([this, w, worker_budget, &drained_total, &active] {
      drained_total.fetch_add(drain_worker(w, worker_budget),
                              std::memory_order_relaxed);
      active.fetch_sub(1, std::memory_order_release);
    });
  }

  // Stage 2 on this thread: consume staged batches while workers produce.
  for (;;) {
    size_t got = 0;
    for (u32 w = 0; w < workers; ++w) {
      while (auto batch = staging_->pop_from(w)) {
        for (StagedRecord& staged : *batch) {
          finish_message(std::move(staged));
        }
        ++got;
      }
    }
    if (got == 0) {
      if (active.load(std::memory_order_acquire) == 0 &&
          staging_->pending() == 0) {
        break;
      }
      std::this_thread::yield();
    }
  }
  pool_->wait_idle();
  return drained_total.load(std::memory_order_relaxed);
}

void Agent::finish() {
  while (poll() > 0) {
  }
  sys_sessions_.flush([this](Session&& s) { emit_session(std::move(s)); });
  net_sessions_.flush([this](Session&& s) { emit_session(std::move(s)); });
  ship_batch();
}

AgentStats Agent::stats() const {
  AgentStats stats;
  stats.syscall_records = syscall_records_;
  stats.packet_records = packet_records_;
  stats.spans_emitted = spans_emitted_;
  stats.unparseable_messages = unparseable_;
  for (const auto& ws : worker_states_) {
    stats.syscall_records += ws->syscall_records;
    stats.packet_records += ws->packet_records;
    stats.unparseable_messages += ws->unparseable;
    stats.drain_batches += ws->batches;
    stats.drain_batch_records += ws->batch_records;
    stats.staging_ring_waits += ws->ring_waits;
  }
  stats.perf_lost =
      collector_.syscall_events().lost() + collector_.packet_events().lost();
  const std::vector<u64> sys_lost = collector_.syscall_events().lost_per_cpu();
  const std::vector<u64> pkt_lost = collector_.packet_events().lost_per_cpu();
  stats.perf_lost_per_cpu.resize(std::max(sys_lost.size(), pkt_lost.size()));
  for (size_t cpu = 0; cpu < sys_lost.size(); ++cpu) {
    stats.perf_lost_per_cpu[cpu] += sys_lost[cpu];
  }
  for (size_t cpu = 0; cpu < pkt_lost.size(); ++cpu) {
    stats.perf_lost_per_cpu[cpu] += pkt_lost[cpu];
  }
  stats.enter_map_record_drops = collector_.enter_map_record_drops();
  stats.matched_sessions =
      sys_sessions_.matched_sessions() + net_sessions_.matched_sessions();
  stats.expired_requests =
      sys_sessions_.expired_requests() + net_sessions_.expired_requests();
  return stats;
}

}  // namespace deepflow::agent
