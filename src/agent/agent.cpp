#include "agent/agent.h"
#include "common/logging.h"

#include "common/hash.h"

namespace deepflow::agent {

Agent::Agent(kernelsim::Kernel* kernel,
             const netsim::ResourceRegistry* registry, AgentConfig config,
             SpanSink sink)
    : kernel_(kernel),
      config_(config),
      collector_(kernel, config.collector),
      registry_(protocols::ProtocolRegistry::with_builtin()),
      sys_flows_(&registry_, config.inference),
      net_flows_(&registry_, config.inference),
      sys_sessions_(config.session),
      net_sessions_(config.session),
      builder_(kernel != nullptr ? kernel->hostname() : "unknown", registry),
      sink_(std::move(sink)) {}

bool Agent::deploy(const std::vector<netsim::Device*>& node_devices) {
  if (!collector_.deploy_syscall_programs()) {
    error_ = collector_.error();
    return false;
  }
  if (config_.enable_ssl_uprobes && !collector_.deploy_ssl_programs()) {
    error_ = collector_.error();
    return false;
  }
  if (config_.enable_nic_capture) {
    for (netsim::Device* device : node_devices) {
      if (!collector_.deploy_nic_capture(device)) {
        error_ = collector_.error();
        return false;
      }
    }
  }
  return true;
}

void Agent::undeploy() { collector_.undeploy(); }

void Agent::set_straggler_sink(SessionAggregator::StragglerSink sink) {
  sys_sessions_.set_straggler_sink(sink);
  net_sessions_.set_straggler_sink(std::move(sink));
}

void Agent::emit_session(Session&& session) {
  Span span = builder_.build(session);
  ++spans_emitted_;
  if (sink_) sink_(std::move(span));
}

void Agent::handle_syscall_record(ebpf::SyscallEventRecord&& record) {
  ++syscall_records_;
  MessageData message;
  message.record = record;
  message.origin = record.abi == kernelsim::SyscallAbi::kSslRead ||
                           record.abi == kernelsim::SyscallAbi::kSslWrite
                       ? CaptureOrigin::kSslUprobe
                       : CaptureOrigin::kSyscall;

  // Protocol inference is cached per socket; SSL and plain flows of the
  // same socket infer independently (ciphertext never matches a parser, so
  // TLS sockets only yield app spans — exactly the real behaviour).
  const u64 flow_key = flow_key_of(message);
  const protocols::ProtocolParser* parser =
      sys_flows_.parser_for(flow_key, record.payload_view());
  if (parser == nullptr) {
    ++unparseable_;
    return;
  }
  auto parsed = parser->parse(record.payload_view());
  if (!parsed.has_value()) {
    ++unparseable_;
    DF_LOG_DEBUG("unparseable sys msg proto=%d abi=%s payload[0..8]=%02x %02x %02x %02x %02x %02x %02x %02x len=%zu",
                 (int)parser->protocol(), std::string(kernelsim::abi_name(record.abi)).c_str(),
                 (unsigned)(unsigned char)record.payload[0], (unsigned)(unsigned char)record.payload[1],
                 (unsigned)(unsigned char)record.payload[2], (unsigned)(unsigned char)record.payload[3],
                 (unsigned)(unsigned char)record.payload[4], (unsigned)(unsigned char)record.payload[5],
                 (unsigned)(unsigned char)record.payload[6], (unsigned)(unsigned char)record.payload[7],
                 (size_t)record.payload_len);
    return;
  }
  message.parsed = std::move(*parsed);
  message.mode = parser->match_mode();

  // Pseudo-thread: coroutine lineage root, or the kernel thread itself.
  message.pseudo_thread_id =
      record.coroutine_id != 0
          ? kernel_->tasks().pseudo_thread_root(record.coroutine_id)
          : record.tid;

  systrace_.assign(message);
  sys_sessions_.offer(flow_key, std::move(message),
                      [this](Session&& s) { emit_session(std::move(s)); });
}

void Agent::handle_packet_record(ebpf::PacketEventRecord&& record) {
  ++packet_records_;
  MessageData message;
  message.origin = CaptureOrigin::kPacketTap;
  message.device_id = record.device_id;
  message.device_name.assign(record.device_name);
  message.record.tuple = record.tuple;
  message.record.tcp_seq = record.tcp_seq;
  message.record.enter_ts = record.timestamp;
  message.record.exit_ts = record.timestamp;
  message.record.total_bytes = record.total_bytes;
  message.record.cpu = record.cpu;
  message.record.set_payload(record.payload_view());

  const u64 flow_key = flow_key_of(message);
  const protocols::ProtocolParser* parser =
      net_flows_.parser_for(flow_key, record.payload_view());
  if (parser == nullptr) {
    ++unparseable_;
    return;
  }
  auto parsed = parser->parse(record.payload_view());
  if (!parsed.has_value()) {
    ++unparseable_;
    return;
  }
  message.parsed = std::move(*parsed);
  message.mode = parser->match_mode();

  net_sessions_.offer(flow_key, std::move(message),
                      [this](Session&& s) { emit_session(std::move(s)); });
}

size_t Agent::poll(size_t budget) {
  size_t processed = 0;
  processed += collector_.syscall_events().drain(
      budget, [this](ebpf::SyscallEventRecord&& record) {
        handle_syscall_record(std::move(record));
      });
  if (processed < budget) {
    processed += collector_.packet_events().drain(
        budget - processed, [this](ebpf::PacketEventRecord&& record) {
          handle_packet_record(std::move(record));
        });
  }
  return processed;
}

void Agent::finish() {
  while (poll() > 0) {
  }
  sys_sessions_.flush([this](Session&& s) { emit_session(std::move(s)); });
  net_sessions_.flush([this](Session&& s) { emit_session(std::move(s)); });
}

AgentStats Agent::stats() const {
  AgentStats stats;
  stats.syscall_records = syscall_records_;
  stats.packet_records = packet_records_;
  stats.spans_emitted = spans_emitted_;
  stats.unparseable_messages = unparseable_;
  stats.perf_lost =
      collector_.syscall_events().lost() + collector_.packet_events().lost();
  stats.matched_sessions =
      sys_sessions_.matched_sessions() + net_sessions_.matched_sessions();
  stats.expired_requests =
      sys_sessions_.expired_requests() + net_sessions_.expired_requests();
  return stats;
}

}  // namespace deepflow::agent
