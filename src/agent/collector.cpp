#include "agent/collector.h"

#include "common/hash.h"

namespace deepflow::agent {

namespace {
u64 task_key(Pid pid, Tid tid) {
  return (static_cast<u64>(pid) << 32) | tid;
}
}  // namespace

Collector::Collector(kernelsim::Kernel* kernel, CollectorConfig config)
    : kernel_(kernel),
      config_(config),
      loader_(kernel),
      enter_map_(config.enter_map_entries),
      syscall_events_(config.cpu_count, config.perf_ring_capacity),
      packet_events_(config.cpu_count, config.perf_ring_capacity) {
  if (config_.fault_injector != nullptr) {
    syscall_events_.set_fault_injector(config_.fault_injector,
                                       FaultSite::kPerfRingSubmit);
    packet_events_.set_fault_injector(config_.fault_injector,
                                      FaultSite::kPerfRingSubmit);
  }
}

u32 Collector::cpu_of(Tid tid) const {
  // A thread runs on one CPU at a time; hashing tid models the scheduler's
  // placement while keeping per-thread event order intact.
  return static_cast<u32>(mix64(tid) % config_.cpu_count);
}

void Collector::on_enter(const kernelsim::HookContext& ctx) {
  // Stage enter parameters; overwritten (not duplicated) if the map already
  // holds a stale entry for this task.
  enter_map_.update(task_key(ctx.pid, ctx.tid),
                    EnterInfo{ctx.timestamp, ctx.tcp_seq});
}

void Collector::on_exit(const kernelsim::HookContext& ctx,
                        bool is_uprobe_pair) {
  // Only the first syscall of a message produces a record (§3.3.1: "we only
  // process the first system call for a message").
  if (!ctx.is_first_syscall_of_message) {
    enter_map_.erase(task_key(ctx.pid, ctx.tid));
    return;
  }
  const auto staged = enter_map_.lookup_and_delete(task_key(ctx.pid, ctx.tid));
  if (!staged) {
    // Lost enter (map overflow): the record is dropped, and — like perf
    // loss — the drop must be surfaced, not silent.
    ++enter_map_record_drops_;
    return;
  }

  ebpf::SyscallEventRecord record;
  record.pid = ctx.pid;
  record.tid = ctx.tid;
  record.coroutine_id = ctx.coroutine_id;
  record.set_comm(ctx.comm);
  record.socket_id = ctx.socket_id;
  record.tuple = ctx.tuple;
  record.tcp_seq = staged->tcp_seq;
  record.enter_ts = staged->enter_ts;
  record.exit_ts = ctx.timestamp;
  record.direction = ctx.direction;
  record.abi = ctx.abi;
  record.total_bytes = ctx.total_bytes;
  record.set_payload(ctx.payload);
  record.is_first_of_message = ctx.is_first_syscall_of_message;
  record.cpu = cpu_of(ctx.tid);
  (void)is_uprobe_pair;

  if (syscall_events_.submit(record.cpu, record)) ++records_emitted_;
}

void Collector::on_packet(const netsim::TapContext& ctx) {
  ebpf::PacketEventRecord record;
  record.device_id = ctx.device->id;
  record.device_kind = ctx.device->kind;
  record.set_device_name(ctx.device->name);
  record.node_id = ctx.device->node_id;
  record.tuple = ctx.message->tuple;
  record.tcp_seq = ctx.message->tcp_seq;
  record.total_bytes = ctx.message->total_bytes;
  record.timestamp = ctx.timestamp;
  record.is_retransmission = ctx.is_retransmission;
  record.cpu = ctx.device->id % config_.cpu_count;
  record.set_payload(std::string_view(ctx.message->payload)
                         .substr(0, std::min(ctx.message->payload.size(),
                                             ebpf::kPayloadLen)));
  if (packet_events_.submit(record.cpu, record)) ++records_emitted_;
}

bool Collector::deploy_syscall_programs() {
  using kernelsim::SyscallAbi;
  const ebpf::ProgramType enter_type = config_.use_tracepoints
                                           ? ebpf::ProgramType::kTracepoint
                                           : ebpf::ProgramType::kKprobe;
  const ebpf::ProgramType exit_type = config_.use_tracepoints
                                          ? ebpf::ProgramType::kTracepointExit
                                          : ebpf::ProgramType::kKretprobe;
  for (const auto& abis : {kernelsim::kIngressAbis, kernelsim::kEgressAbis}) {
    for (const SyscallAbi abi : abis) {
      ebpf::Program enter;
      enter.spec.name =
          "df_enter_" + std::string(kernelsim::abi_name(abi));
      enter.spec.type = enter_type;
      enter.spec.instruction_count = 96;
      enter.spec.stack_bytes = 128;
      enter.spec.helpers = {ebpf::Helper::kGetCurrentPidTgid,
                            ebpf::Helper::kKtimeGetNs,
                            ebpf::Helper::kMapUpdate};
      enter.on_hook = [this](const kernelsim::HookContext& ctx) {
        on_enter(ctx);
      };
      auto enter_result = loader_.load_syscall(std::move(enter), abi);
      if (!enter_result.ok) {
        error_ = enter_result.error;
        return false;
      }
      links_.push_back(enter_result.link);

      ebpf::Program exit;
      exit.spec.name = "df_exit_" + std::string(kernelsim::abi_name(abi));
      exit.spec.type = exit_type;
      exit.spec.instruction_count = 512;
      exit.spec.stack_bytes = 384;
      exit.spec.helpers = {ebpf::Helper::kGetCurrentPidTgid,
                           ebpf::Helper::kKtimeGetNs,
                           ebpf::Helper::kMapLookup, ebpf::Helper::kMapDelete,
                           ebpf::Helper::kProbeRead,
                           ebpf::Helper::kPerfEventOutput};
      exit.on_hook = [this](const kernelsim::HookContext& ctx) {
        on_exit(ctx, /*is_uprobe_pair=*/false);
      };
      auto exit_result = loader_.load_syscall(std::move(exit), abi);
      if (!exit_result.ok) {
        error_ = exit_result.error;
        return false;
      }
      links_.push_back(exit_result.link);
    }
  }
  return true;
}

bool Collector::deploy_ssl_programs() {
  for (const std::string symbol : {"SSL_read", "SSL_write"}) {
    ebpf::Program enter;
    enter.spec.name = "df_uprobe_" + symbol;
    enter.spec.type = ebpf::ProgramType::kUprobe;
    enter.spec.instruction_count = 80;
    enter.spec.stack_bytes = 128;
    enter.spec.helpers = {ebpf::Helper::kGetCurrentPidTgid,
                          ebpf::Helper::kKtimeGetNs, ebpf::Helper::kMapUpdate};
    enter.on_hook = [this](const kernelsim::HookContext& ctx) {
      on_enter(ctx);
    };
    auto enter_result = loader_.load_uprobe(std::move(enter), symbol);
    if (!enter_result.ok) {
      error_ = enter_result.error;
      return false;
    }
    links_.push_back(enter_result.link);

    ebpf::Program exit;
    exit.spec.name = "df_uretprobe_" + symbol;
    exit.spec.type = ebpf::ProgramType::kUretprobe;
    exit.spec.instruction_count = 448;
    exit.spec.stack_bytes = 384;
    exit.spec.helpers = {ebpf::Helper::kGetCurrentPidTgid,
                         ebpf::Helper::kKtimeGetNs, ebpf::Helper::kMapLookup,
                         ebpf::Helper::kMapDelete, ebpf::Helper::kProbeRead,
                         ebpf::Helper::kPerfEventOutput};
    exit.on_hook = [this](const kernelsim::HookContext& ctx) {
      on_exit(ctx, /*is_uprobe_pair=*/true);
    };
    auto exit_result = loader_.load_uprobe(std::move(exit), symbol);
    if (!exit_result.ok) {
      error_ = exit_result.error;
      return false;
    }
    links_.push_back(exit_result.link);
  }
  return true;
}

bool Collector::deploy_nic_capture(netsim::Device* device) {
  ebpf::Program prog;
  prog.spec.name = "df_cbpf_" + (device != nullptr ? device->name : "null");
  prog.spec.type = ebpf::ProgramType::kSocketFilter;
  prog.spec.instruction_count = 64;
  prog.spec.stack_bytes = 64;
  prog.spec.helpers = {ebpf::Helper::kSkbLoadBytes,
                       ebpf::Helper::kPerfEventOutput};
  prog.on_packet = [this](const netsim::TapContext& ctx) { on_packet(ctx); };
  auto result = loader_.load_socket_filter(std::move(prog), device);
  if (!result.ok) {
    error_ = result.error;
    return false;
  }
  links_.push_back(result.link);
  return true;
}

void Collector::undeploy() {
  for (const ebpf::Link& link : links_) loader_.unload(link);
  links_.clear();
}

}  // namespace deepflow::agent
