#include "core/deployment.h"

#include <algorithm>

#include "otelsim/tracer.h"

namespace deepflow::core {

namespace {
/// Config of the member single server. In federated mode that object is an
/// unused stub (the federation constructs the real node servers from the
/// template), so its heavyweight planes are switched off.
server::ServerConfig single_server_config(const DeploymentConfig& config) {
  if (config.federation.nodes == 0) return config.server;
  server::ServerConfig stub;
  stub.metrics.enabled = false;
  return stub;
}
}  // namespace

Deployment::Deployment(netsim::Cluster* cluster, DeploymentConfig config)
    : cluster_(cluster),
      config_(config),
      server_(&cluster->registry(), single_server_config(config)) {}

bool Deployment::deploy() {
  if (deployed_) return true;
  agent::AgentConfig agent_config = config_.agent;
  agent_config.enable_nic_capture = config_.capture_devices;

  if (config_.faults.any()) {
    injector_ = std::make_unique<FaultInjector>(config_.faults.seed);
    injector_->configure(FaultSite::kPerfRingSubmit, config_.faults.perf_ring);
    injector_->configure(FaultSite::kTransportSend,
                         config_.faults.transport_send);
    injector_->configure(FaultSite::kNodeCrash, config_.faults.node_crash);
    injector_->configure(FaultSite::kLinkPartition,
                         config_.faults.link_partition);
    agent_config.collector.fault_injector = injector_.get();
  }
  if (federated()) {
    federation_ = std::make_unique<cluster::Federation>(
        &cluster_->registry(), config_.federation, config_.server,
        injector_.get());
  }

  if (!federated()) {
    // Single-server mode: the server's governor watches the transport
    // queues (byte accounting + rung-3 net shedding + kOverloaded
    // backpressure). Federated links keep their own refusal semantics.
    config_.transport.governor = &server_.governor();
    if (config_.server.streaming.enabled) {
      // Attach the streaming assembler before any traffic flows so that
      // every ingested span is observed (the hook is install-once).
      streaming_ = std::make_unique<assembly::StreamingAssembler>(
          config_.server.streaming, &server_.mutable_store(),
          &server_.trace_assembler(), &server_.governor());
      server_.attach_streaming(streaming_.get());
    }
  }

  u32 agent_index = 0;
  for (const netsim::NodeId node : cluster_->nodes()) {
    kernelsim::Kernel* kernel = cluster_->kernel_of(node);
    const std::string host = kernel->hostname();
    agent::SpanSink sink;
    if (federated()) {
      // One transport link per pinned owner of this agent's partition,
      // each on its own fault/jitter lane; the span sink fans every span
      // out to all links (replicated ingest).
      std::vector<agent::SpanTransport*> links;
      for (const u32 owner : federation_->register_agent(host)) {
        agent::TransportConfig link_config = config_.transport;
        link_config.lane = cluster::Federation::link_lane(agent_index, owner);
        const u64 lane = link_config.lane;
        transports_.push_back(std::make_unique<agent::SpanTransport>(
            link_config,
            agent::SpanTransport::FailableBatchSink(
                [this, owner, host, lane](std::vector<agent::Span>& spans) {
                  return federation_->deliver(owner, host, spans, lane);
                }),
            injector_.get()));
        links.push_back(transports_.back().get());
      }
      sink = [links](agent::Span&& span) {
        for (size_t k = 0; k + 1 < links.size(); ++k) {
          links[k]->offer(agent::Span(span));
        }
        links.back()->offer(std::move(span));
      };
    } else if (config_.transport.direct) {
      // Historical perfect wire: one in-process call per span.
      sink = [this](agent::Span&& span) { server_.ingest(std::move(span)); };
    } else {
      // Verdict-aware sink: under a quiescent governor try_ingest_batch is
      // exactly ingest_batch + kAccepted; at kRefuse it bounces the batch
      // with kOverloaded and the transport backs off (retry-after hint).
      transports_.push_back(std::make_unique<agent::SpanTransport>(
          config_.transport,
          agent::SpanTransport::VerdictBatchSink(
              [this](std::vector<agent::Span>& batch) {
                return server_.try_ingest_batch(batch);
              }),
          injector_.get()));
      agent::SpanTransport* transport = transports_.back().get();
      sink = [transport](agent::Span&& span) {
        transport->offer(std::move(span));
      };
    }
    auto a = std::make_unique<agent::Agent>(kernel, &cluster_->registry(),
                                            agent_config, std::move(sink));
    if (config_.columnar_batching && !federated()) {
      // Zero-copy hot path: sessions append into a columnar batch that
      // ships whole into the server (direct) or decomposes at the transport
      // queue boundary. The per-span sink above stays installed but idle.
      if (interner_ == nullptr) {
        interner_ = std::make_shared<StringInterner>();
        // This interner feeds SpanBatch handle columns (which have an
        // arena-overflow fallback), never an encoder blob — capping is
        // safe here and only here.
        interner_->set_max_entries(config_.interner_max_entries);
        interner_->set_governor(&server_.governor());
        server_.set_shared_interner(interner_);
      }
      if (config_.transport.direct) {
        a->set_batch_sink(
            [this](agent::SpanBatch& batch) {
              server_.ingest_span_batch(batch);
            },
            interner_);
      } else {
        agent::SpanTransport* transport = transports_.back().get();
        a->set_batch_sink(
            [transport](agent::SpanBatch& batch) {
              transport->offer_batch(batch);
            },
            interner_);
      }
    }
    if (!federated()) a->set_governor(&server_.governor());
    if (config_.forward_stragglers) {
      if (federated()) {
        a->set_straggler_sink([this, host](agent::MessageData&& message) {
          federation_->deliver_straggler(host, std::move(message));
        });
      } else {
        a->set_straggler_sink([this, host](agent::MessageData&& message) {
          server_.ingest_straggler(host, std::move(message));
        });
      }
    }

    // This node's devices; fabric-shared devices (node_id 0, e.g. the ToR
    // mirror port of Appendix A) are handled by the first node's agent.
    std::vector<netsim::Device*> devices;
    if (config_.capture_devices) {
      const bool first_node = node == cluster_->nodes().front();
      for (const auto& device : cluster_->fabric().devices()) {
        if (device->node_id == node ||
            (first_node && device->node_id == 0)) {
          devices.push_back(device.get());
        }
      }
    }
    if (!a->deploy(devices)) {
      error_ = a->error();
      return false;
    }
    agents_.push_back(std::move(a));
    ++agent_index;
  }
  deployed_ = true;
  return true;
}

void Deployment::undeploy() {
  for (auto& a : agents_) a->undeploy();
  agents_.clear();
  transports_.clear();
  deployed_ = false;
}

size_t Deployment::poll() {
  size_t n = 0;
  for (auto& a : agents_) n += a->poll();
  // One transport tick per poll cycle: due retries/delays first, then the
  // batches this cycle filled.
  for (auto& t : transports_) t->pump();
  // One failure-detector round per poll cycle: crash draws, heartbeats,
  // suspicion transitions.
  if (federation_ != nullptr) federation_->tick();
  return n;
}

void Deployment::finish() {
  for (auto& a : agents_) a->finish();
  // Drain the transports before the server closes its window: every span
  // is then delivered or explicitly counted as given up / shed.
  for (auto& t : transports_) t->flush();
  if (federation_ != nullptr) {
    federation_->finalize();
    federation_->note_agent_drain(aggregate_stats());
    for (const auto& [tuple, metrics] : cluster_->fabric().flows()) {
      federation_->ingest_flow_metrics(tuple, metrics);
    }
    for (const auto& device : cluster_->fabric().devices()) {
      federation_->ingest_device_metrics(device->name, device->metrics);
    }
    return;
  }
  server_.finalize();
  // End of run closes every still-open assembly window: traces that were
  // waiting out the disorder window finalize and become index-servable.
  if (streaming_ != nullptr) streaming_->flush();
  // Ingest self-telemetry: fold the agents' drain-pipeline counters into
  // the server's view (records/sec, batch sizes, ring pressure).
  server_.note_agent_drain(aggregate_stats());
  // Metric integration (§3.4): flow and device counters become queryable
  // alongside the traces they correlate with.
  for (const auto& [tuple, metrics] : cluster_->fabric().flows()) {
    server_.ingest_flow_metrics(tuple, metrics);
  }
  for (const auto& device : cluster_->fabric().devices()) {
    server_.ingest_device_metrics(device->name, device->metrics);
  }
}

otelsim::ExportSink Deployment::third_party_sink() {
  if (federated()) {
    return [this](agent::Span&& span) {
      federation_->deliver_third_party(std::move(span));
    };
  }
  return [this](agent::Span&& span) {
    server_.ingest_third_party(std::move(span));
  };
}

agent::AgentStats Deployment::aggregate_stats() const {
  agent::AgentStats total;
  for (const auto& a : agents_) {
    const agent::AgentStats s = a->stats();
    total.syscall_records += s.syscall_records;
    total.packet_records += s.packet_records;
    total.spans_emitted += s.spans_emitted;
    total.unparseable_messages += s.unparseable_messages;
    total.perf_lost += s.perf_lost;
    total.matched_sessions += s.matched_sessions;
    total.expired_requests += s.expired_requests;
    total.drain_batches += s.drain_batches;
    total.drain_batch_records += s.drain_batch_records;
    total.staging_ring_waits += s.staging_ring_waits;
    if (total.perf_lost_per_cpu.size() < s.perf_lost_per_cpu.size()) {
      total.perf_lost_per_cpu.resize(s.perf_lost_per_cpu.size());
    }
    for (size_t cpu = 0; cpu < s.perf_lost_per_cpu.size(); ++cpu) {
      total.perf_lost_per_cpu[cpu] += s.perf_lost_per_cpu[cpu];
    }
    total.enter_map_record_drops += s.enter_map_record_drops;
  }
  return total;
}

agent::TransportStats Deployment::aggregate_transport_stats() const {
  agent::TransportStats total;
  for (const auto& t : transports_) {
    const agent::TransportStats& s = t->stats();
    total.offered += s.offered;
    total.shed_net += s.shed_net;
    total.shed_sys += s.shed_sys;
    total.shed_app += s.shed_app;
    total.batches_sent += s.batches_sent;
    total.spans_sent += s.spans_sent;
    total.send_drops += s.send_drops;
    total.retries += s.retries;
    total.gave_up_batches += s.gave_up_batches;
    total.gave_up_spans += s.gave_up_spans;
    total.duplicated_batches += s.duplicated_batches;
    total.delayed_batches += s.delayed_batches;
    total.ts_corrupted_spans += s.ts_corrupted_spans;
    total.delivered_batches += s.delivered_batches;
    total.delivered_spans += s.delivered_spans;
    total.sink_rejected_batches += s.sink_rejected_batches;
    total.sink_rejected_spans += s.sink_rejected_spans;
    total.queue_high_watermark =
        std::max(total.queue_high_watermark, s.queue_high_watermark);
  }
  return total;
}

}  // namespace deepflow::core
