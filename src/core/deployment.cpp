#include "core/deployment.h"

#include "otelsim/tracer.h"

namespace deepflow::core {

Deployment::Deployment(netsim::Cluster* cluster, DeploymentConfig config)
    : cluster_(cluster),
      config_(config),
      server_(&cluster->registry(), config.server) {}

bool Deployment::deploy() {
  if (deployed_) return true;
  agent::AgentConfig agent_config = config_.agent;
  agent_config.enable_nic_capture = config_.capture_devices;

  for (const netsim::NodeId node : cluster_->nodes()) {
    kernelsim::Kernel* kernel = cluster_->kernel_of(node);
    auto a = std::make_unique<agent::Agent>(
        kernel, &cluster_->registry(), agent_config,
        [this](agent::Span&& span) { server_.ingest(std::move(span)); });
    if (config_.forward_stragglers) {
      const std::string host = kernel->hostname();
      a->set_straggler_sink([this, host](agent::MessageData&& message) {
        server_.ingest_straggler(host, std::move(message));
      });
    }

    // This node's devices; fabric-shared devices (node_id 0, e.g. the ToR
    // mirror port of Appendix A) are handled by the first node's agent.
    std::vector<netsim::Device*> devices;
    if (config_.capture_devices) {
      const bool first_node = node == cluster_->nodes().front();
      for (const auto& device : cluster_->fabric().devices()) {
        if (device->node_id == node ||
            (first_node && device->node_id == 0)) {
          devices.push_back(device.get());
        }
      }
    }
    if (!a->deploy(devices)) {
      error_ = a->error();
      return false;
    }
    agents_.push_back(std::move(a));
  }
  deployed_ = true;
  return true;
}

void Deployment::undeploy() {
  for (auto& a : agents_) a->undeploy();
  agents_.clear();
  deployed_ = false;
}

size_t Deployment::poll() {
  size_t n = 0;
  for (auto& a : agents_) n += a->poll();
  return n;
}

void Deployment::finish() {
  for (auto& a : agents_) a->finish();
  server_.finalize();
  // Ingest self-telemetry: fold the agents' drain-pipeline counters into
  // the server's view (records/sec, batch sizes, ring pressure).
  server_.note_agent_drain(aggregate_stats());
  // Metric integration (§3.4): flow and device counters become queryable
  // alongside the traces they correlate with.
  for (const auto& [tuple, metrics] : cluster_->fabric().flows()) {
    server_.ingest_flow_metrics(tuple, metrics);
  }
  for (const auto& device : cluster_->fabric().devices()) {
    server_.ingest_device_metrics(device->name, device->metrics);
  }
}

otelsim::ExportSink Deployment::third_party_sink() {
  return [this](agent::Span&& span) {
    server_.ingest_third_party(std::move(span));
  };
}

agent::AgentStats Deployment::aggregate_stats() const {
  agent::AgentStats total;
  for (const auto& a : agents_) {
    const agent::AgentStats s = a->stats();
    total.syscall_records += s.syscall_records;
    total.packet_records += s.packet_records;
    total.spans_emitted += s.spans_emitted;
    total.unparseable_messages += s.unparseable_messages;
    total.perf_lost += s.perf_lost;
    total.matched_sessions += s.matched_sessions;
    total.expired_requests += s.expired_requests;
    total.drain_batches += s.drain_batches;
    total.drain_batch_records += s.drain_batch_records;
    total.staging_ring_waits += s.staging_ring_waits;
  }
  return total;
}

}  // namespace deepflow::core
