// deepflow::core::Deployment — the out-of-the-box entry point (Figure 4):
// one Agent per node, one cluster-level Server, wired together. Deploying
// requires zero changes to any monitored workload; it can be attached to a
// cluster that is already serving traffic ("on-the-fly", §4.1.1) and
// detached again.
//
//   netsim::Cluster cluster;                 // or a workloads::Topology
//   ...build apps...
//   core::Deployment deepflow(&cluster);
//   deepflow.deploy();
//   ...run traffic...
//   deepflow.finish();
//   auto spans = deepflow.server().query_span_list(t0, t1);
//   auto trace = deepflow.server().query_trace(spans[0].span_id);
#pragma once

#include <memory>
#include <vector>

#include "agent/agent.h"
#include "agent/transport.h"
#include "assembly/streaming_assembler.h"
#include "cluster/federation.h"
#include "common/fault.h"
#include "netsim/cluster.h"
#include "otelsim/tracer.h"
#include "server/server.h"

namespace deepflow::core {

/// Deployment-wide fault plan: one seeded injector shared by every agent,
/// with a profile per delivery hop. The default (all-zero profiles) means
/// no injector is created at all — a byte-exact perfect pipeline.
struct FaultPlan {
  u64 seed = 1;
  FaultProfile perf_ring;       // kernel -> agent (drop only)
  FaultProfile transport_send;  // agent -> server batch channel
  FaultProfile node_crash;      // federated: per-(node, tick) crash draw
  FaultProfile link_partition;  // federated: agent<->server link / heartbeat
  bool any() const {
    return perf_ring.any() || transport_send.any() || node_crash.any() ||
           link_partition.any();
  }
};

struct DeploymentConfig {
  agent::AgentConfig agent;
  server::ServerConfig server;
  /// Agent -> server span transport. The default (direct = true) keeps the
  /// historical perfect in-process call; direct = false routes spans
  /// through a per-agent SpanTransport (bounded queue, batching, retries)
  /// feeding DeepFlowServer::ingest_batch.
  agent::TransportConfig transport{.direct = true};
  /// Fault injection across the delivery hops (chaos testing).
  FaultPlan faults;
  /// Multi-server federation. `nodes == 0` (the default) keeps the
  /// historical single in-process server; `nodes >= 1` replaces it with a
  /// consistent-hash cluster of that many servers — each agent opens one
  /// transport link per pinned owner of its partition, and queries go
  /// through Deployment::federation(). The `server` config above is the
  /// per-node template in that mode.
  cluster::ClusterConfig federation{.nodes = 0};
  /// Columnar span emission (the zero-copy hot path): agents append spans
  /// into arena-backed SpanBatch flights (agent.emit_batch_spans each) that
  /// ship whole to the server (direct mode) or decompose into the transport
  /// queue. false restores the historical per-span sink — the equivalence
  /// suites compare the two byte for byte. Federated deployments always use
  /// the per-span fan-out path regardless of this flag.
  bool columnar_batching = true;
  /// Attach cBPF/AF_PACKET capture to every infrastructure device (pod
  /// veths, vswitches, pNICs, the ToR) — the full network-coverage mode.
  bool capture_devices = true;
  /// Upload out-of-window messages to the server for re-aggregation
  /// (§3.3.1) instead of emitting them as incomplete sessions at the agent.
  bool forward_stragglers = true;
  /// Cardinality cap for the deployment-wide shared string interner (the
  /// SpanBatch dictionary). Past the cap new strings overflow to the
  /// per-batch arena path (full fidelity, just not interned) and the
  /// deepflow_interner_overflow counter ticks. 0 = unlimited. Encoder-side
  /// interners are never capped — their handles are written into encoded
  /// tag blobs with no overflow representation.
  size_t interner_max_entries = 0;
};

class Deployment {
 public:
  explicit Deployment(netsim::Cluster* cluster, DeploymentConfig config = {});

  /// Attach an agent to every node. Returns false (with error()) if any
  /// collection program fails verification.
  bool deploy();

  /// Detach all agents (on-demand monitoring can stop at any time).
  void undeploy();

  /// Drain all agents' perf buffers once.
  size_t poll();

  /// End of run: drain everything, flush aggregation windows, and upload
  /// network metrics (per-flow and per-device) to the server.
  void finish();

  /// The single server (historical mode). In federated mode this object is
  /// an inert stub — query through federation() instead.
  server::DeepFlowServer& server() { return server_; }
  const server::DeepFlowServer& server() const { return server_; }

  bool federated() const { return config_.federation.nodes > 0; }
  /// The cluster (nullptr before deploy(), or in single-server mode).
  cluster::Federation* federation() { return federation_.get(); }
  const cluster::Federation* federation() const { return federation_.get(); }

  /// Export sink for third-party (OpenTelemetry) tracers: spans flow into
  /// the same store and participate in trace assembly.
  otelsim::ExportSink third_party_sink();

  /// The deployment-wide shared SpanBatch interner (nullptr before deploy()
  /// or when columnar batching is off/federated).
  const StringInterner* shared_interner() const { return interner_.get(); }

  /// The streaming trace assembler (nullptr unless
  /// server.streaming.enabled and single-server — federation assembles at
  /// the query plane across partitions, which streaming does not cover yet).
  assembly::StreamingAssembler* streaming() { return streaming_.get(); }
  const assembly::StreamingAssembler* streaming() const {
    return streaming_.get();
  }

  agent::AgentStats aggregate_stats() const;
  /// Summed transport counters across agents (all-zero in direct mode).
  agent::TransportStats aggregate_transport_stats() const;
  /// The shared injector; nullptr when the fault plan is empty.
  const FaultInjector* fault_injector() const { return injector_.get(); }
  const std::string& error() const { return error_; }
  size_t agent_count() const { return agents_.size(); }

 private:
  netsim::Cluster* cluster_;
  DeploymentConfig config_;
  server::DeepFlowServer server_;
  /// Declared after server_ (destroyed first): the assembler borrows the
  /// server's store/assembler/governor and detaches its governor bytes in
  /// its destructor.
  std::unique_ptr<assembly::StreamingAssembler> streaming_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<cluster::Federation> federation_;
  std::vector<std::unique_ptr<agent::Agent>> agents_;
  // Span transports, pumped by poll() and flushed by finish(). Single
  // server: one per agent (non-direct mode only). Federated: one per
  // (agent, owner) link, each on its own fault/jitter lane.
  std::vector<std::unique_ptr<agent::SpanTransport>> transports_;
  /// String registry shared by every agent's SpanBatch (one dictionary of
  /// hosts/devices/methods/endpoints across the deployment).
  std::shared_ptr<StringInterner> interner_;
  std::string error_;
  bool deployed_ = false;
};

}  // namespace deepflow::core
