#include "netsim/cluster.h"

namespace deepflow::netsim {

Cluster::Cluster(u64 seed, kernelsim::KernelConfig kernel_config)
    : fabric_(loop_, seed), kernel_config_(kernel_config) {}

NodeId Cluster::add_node(const std::string& name) {
  if (vpc_ == 0) {
    vpc_ = registry_.create_vpc("vpc-default");
    tor_ = fabric_.create_device(DeviceKind::kTorSwitch, "tor-1", 0,
                                 /*base_latency_ns=*/5'000);
  }
  const NodeId id = registry_.create_node(vpc_, name);
  auto infra = std::make_unique<NodeInfra>();
  infra->id = id;
  infra->kernel =
      std::make_unique<kernelsim::Kernel>(loop_, name, &fabric_, kernel_config_);
  infra->vswitch = fabric_.create_device(DeviceKind::kVSwitch,
                                         name + "/vswitch", id, 8'000);
  infra->pnic =
      fabric_.create_device(DeviceKind::kPhysicalNic, name + "/pnic", id, 4'000);
  // Node IP: 192.168.0.<node>
  registry_.register_node_ip(id, Ipv4{(192u << 24) | (168u << 16) | id});
  node_ids_.push_back(id);
  node_infra_.push_back(std::move(infra));
  return id;
}

Cluster::NodeInfra* Cluster::infra_of(NodeId node) {
  for (auto& infra : node_infra_) {
    if (infra->id == node) return infra.get();
  }
  return nullptr;
}

kernelsim::Kernel* Cluster::kernel_of(NodeId node) {
  NodeInfra* infra = infra_of(node);
  return infra != nullptr ? infra->kernel.get() : nullptr;
}

Device* Cluster::vswitch_of(NodeId node) {
  NodeInfra* infra = infra_of(node);
  return infra != nullptr ? infra->vswitch : nullptr;
}

Device* Cluster::pnic_of(NodeId node) {
  NodeInfra* infra = infra_of(node);
  return infra != nullptr ? infra->pnic : nullptr;
}

ServiceId Cluster::add_service(const std::string& name) {
  if (vpc_ == 0) add_node("node-auto-1");
  return registry_.create_service(vpc_, name);
}

PodHandle Cluster::add_pod(NodeId node, const std::string& name,
                           const std::string& comm, ServiceId service,
                           std::vector<Label> labels) {
  NodeInfra* infra = infra_of(node);
  if (infra == nullptr) return {};
  // Pod IP: 10.0.<node>.<pod-index>
  const Ipv4 ip{(10u << 24) | (node << 8) | ++infra->pod_index};
  const PodId pod =
      registry_.create_pod(node, name, ip, service, std::move(labels));
  PodHandle handle;
  handle.pod = pod;
  handle.node = node;
  handle.ip = ip;
  handle.kernel = infra->kernel.get();
  handle.pid = infra->kernel->tasks().create_process(comm);
  handle.veth = fabric_.create_device(DeviceKind::kVeth, name + "/veth", node,
                                      2'000);
  return handle;
}

ConnectionHandle Cluster::connect(const PodHandle& client,
                                  const PodHandle& server, u16 server_port,
                                  bool tls, std::vector<Device*> extra_middle) {
  const u16 client_port = next_ephemeral_port_++;
  FiveTuple tuple{client.ip, server.ip, client_port, server_port,
                  L4Proto::kTcp};

  const SocketId client_sock =
      client.kernel->open_socket(client.pid, tuple, L4Proto::kTcp, tls);
  const SocketId server_sock = server.kernel->open_socket(
      server.pid, tuple.reversed(), L4Proto::kTcp, tls);

  // Build the client -> server device path.
  std::vector<Device*> path;
  path.push_back(client.veth);
  NodeInfra* client_infra = infra_of(client.node);
  NodeInfra* server_infra = infra_of(server.node);
  if (client.node == server.node) {
    path.push_back(client_infra->vswitch);
    for (Device* d : extra_middle) path.push_back(d);
  } else {
    path.push_back(client_infra->vswitch);
    path.push_back(client_infra->pnic);
    for (Device* d : extra_middle) path.push_back(d);
    path.push_back(tor_);
    path.push_back(server_infra->pnic);
    path.push_back(server_infra->vswitch);
  }
  path.push_back(server.veth);

  fabric_.register_connection(client.kernel, client_sock, server.kernel,
                              server_sock, std::move(path));

  ConnectionHandle handle;
  handle.client_socket = client_sock;
  handle.server_socket = server_sock;
  handle.client_kernel = client.kernel;
  handle.server_kernel = server.kernel;
  handle.tuple = tuple;
  return handle;
}

}  // namespace deepflow::netsim
