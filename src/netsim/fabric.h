// The network fabric: implements kernelsim::NetworkBackend, moving wire
// messages between kernels across chains of devices with per-hop latency,
// capture taps, fault injection, and per-flow metric accounting.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/five_tuple.h"
#include "common/rand.h"
#include "common/sim_clock.h"
#include "kernelsim/kernel.h"
#include "netsim/device.h"

namespace deepflow::netsim {

/// Per-flow (canonical five-tuple) counters, the flow-granular network
/// metrics DeepFlow attaches to traces via tags.
struct FlowMetrics {
  u64 packets = 0;
  u64 bytes = 0;
  u64 retransmissions = 0;
  u64 resets = 0;
  DurationNs rtt_sum = 0;   // sum of one-way transit times (proxy for RTT/2)
  u64 rtt_samples = 0;

  DurationNs avg_transit() const {
    return rtt_samples ? rtt_sum / rtt_samples : 0;
  }
};

/// Delivered-message callback registered by the receiving side's workload
/// engine: (message, arrival time).
using DeliveryHandler =
    std::function<void(const kernelsim::WireMessage&, TimestampNs)>;
/// Connection-reset callback: (timestamp).
using ResetHandler = std::function<void(TimestampNs)>;

class Fabric : public kernelsim::NetworkBackend {
 public:
  explicit Fabric(EventLoop& loop, u64 seed = 42);

  /// Create a device owned by the fabric; the pointer stays valid for the
  /// fabric's lifetime.
  Device* create_device(DeviceKind kind, std::string name, u32 node_id = 0,
                        DurationNs base_latency_ns = 20'000);

  /// Register a bidirectional connection between two sockets. `path` lists
  /// the devices traversed from `a` to `b`; the reverse direction uses the
  /// reversed path. Both sockets must already exist in their kernels.
  void register_connection(kernelsim::Kernel* kernel_a, SocketId a,
                           kernelsim::Kernel* kernel_b, SocketId b,
                           std::vector<Device*> path);

  /// Install the receiving-side handler for messages arriving at `socket`.
  void set_delivery_handler(SocketId socket, DeliveryHandler handler);
  /// Install a handler invoked when a fault resets the connection under
  /// `socket` (both ends are notified and the sockets are closed).
  void set_reset_handler(SocketId socket, ResetHandler handler);

  // kernelsim::NetworkBackend:
  void transmit(kernelsim::Kernel& source, const kernelsim::Socket& socket,
                kernelsim::WireMessage message) override;

  /// Flow metrics for the canonical form of `tuple` (zeroed record if the
  /// flow has never carried traffic).
  const FlowMetrics& flow_metrics(const FiveTuple& tuple) const;

  const std::vector<std::unique_ptr<Device>>& devices() const {
    return devices_;
  }

  /// All per-flow metric records (canonical tuple -> counters).
  const std::unordered_map<FiveTuple, FlowMetrics, FiveTupleHash>& flows()
      const {
    return flows_;
  }

  /// Total messages transmitted end-to-end (excluding resets).
  u64 delivered_count() const { return delivered_count_; }
  u64 reset_count() const { return reset_count_; }

 private:
  struct Route {
    kernelsim::Kernel* peer_kernel = nullptr;
    SocketId peer_socket = 0;
    kernelsim::Kernel* local_kernel = nullptr;
    std::vector<Device*> path;  // in travel order for this direction
  };

  EventLoop& loop_;
  Rng rng_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unordered_map<SocketId, Route> routes_;  // keyed by sending socket
  std::unordered_map<SocketId, DeliveryHandler> delivery_;
  std::unordered_map<SocketId, ResetHandler> reset_;
  std::unordered_map<FiveTuple, FlowMetrics, FiveTupleHash> flows_;
  std::unordered_map<FiveTuple, bool, FiveTupleHash> flow_seen_;  // ARP bookkeeping
  FlowMetrics zero_flow_;
  u64 delivered_count_ = 0;
  u64 reset_count_ = 0;
  u32 next_device_id_ = 1;
};

}  // namespace deepflow::netsim
