#include "netsim/fabric.h"

#include "common/logging.h"

namespace deepflow::netsim {

std::string_view device_kind_name(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kVeth: return "veth";
    case DeviceKind::kVirtualNic: return "vnic";
    case DeviceKind::kVSwitch: return "vswitch";
    case DeviceKind::kPhysicalNic: return "pnic";
    case DeviceKind::kTorSwitch: return "tor";
    case DeviceKind::kL4Gateway: return "l4-gw";
    case DeviceKind::kL7Gateway: return "l7-gw";
    case DeviceKind::kMiddleware: return "middleware";
  }
  return "?";
}

Fabric::Fabric(EventLoop& loop, u64 seed) : loop_(loop), rng_(seed) {}

Device* Fabric::create_device(DeviceKind kind, std::string name, u32 node_id,
                              DurationNs base_latency_ns) {
  auto device = std::make_unique<Device>();
  device->id = next_device_id_++;
  device->kind = kind;
  device->name = std::move(name);
  device->node_id = node_id;
  device->base_latency_ns = base_latency_ns;
  devices_.push_back(std::move(device));
  return devices_.back().get();
}

void Fabric::register_connection(kernelsim::Kernel* kernel_a, SocketId a,
                                 kernelsim::Kernel* kernel_b, SocketId b,
                                 std::vector<Device*> path) {
  std::vector<Device*> reversed(path.rbegin(), path.rend());
  routes_[a] = Route{kernel_b, b, kernel_a, std::move(path)};
  routes_[b] = Route{kernel_a, a, kernel_b, std::move(reversed)};
}

void Fabric::set_delivery_handler(SocketId socket, DeliveryHandler handler) {
  delivery_[socket] = std::move(handler);
}

void Fabric::set_reset_handler(SocketId socket, ResetHandler handler) {
  reset_[socket] = std::move(handler);
}

void Fabric::transmit(kernelsim::Kernel& source,
                      const kernelsim::Socket& socket,
                      kernelsim::WireMessage message) {
  const auto route_it = routes_.find(socket.id);
  if (route_it == routes_.end()) {
    DF_LOG_WARN("fabric: no route for socket %llu, message dropped",
                static_cast<unsigned long long>(socket.id));
    return;
  }
  const Route& route = route_it->second;
  (void)source;

  const FiveTuple canonical = message.tuple.canonical();
  FlowMetrics& flow = flows_[canonical];
  const bool new_flow = !flow_seen_[canonical];
  flow_seen_[canonical] = true;

  // Shared ownership: the message outlives this call inside scheduled tap
  // and delivery events.
  auto shared = std::make_shared<kernelsim::WireMessage>(std::move(message));

  TimestampNs cursor = shared->send_ts;
  bool retransmitted = false;
  bool reset = false;

  for (Device* device : route.path) {
    cursor += device->base_latency_ns + device->fault.extra_latency_ns;

    // New-flow ARP bookkeeping: every L2-adjacent device resolves the next
    // hop once per flow; a faulty NIC (case §4.1.2) storms extra requests.
    if (new_flow) {
      device->metrics.arp_requests += device->fault.arp_anomaly ? 4 : 1;
    }

    if (device->fault.reset_probability > 0.0 &&
        rng_.chance(device->fault.reset_probability)) {
      device->metrics.resets += 1;
      flow.resets += 1;
      ++reset_count_;
      reset = true;
      const TimestampNs reset_ts = cursor;
      // Notify both endpoints and close the sockets.
      kernelsim::Kernel* local = route.local_kernel;
      kernelsim::Kernel* peer = route.peer_kernel;
      const SocketId local_sock = socket.id;
      const SocketId peer_sock = route.peer_socket;
      loop_.schedule_at(reset_ts, [this, local, peer, local_sock, peer_sock,
                                   reset_ts] {
        if (local != nullptr) local->close_socket(local_sock);
        if (peer != nullptr) peer->close_socket(peer_sock);
        if (const auto h = reset_.find(local_sock); h != reset_.end()) {
          h->second(reset_ts);
        }
        if (const auto h = reset_.find(peer_sock); h != reset_.end()) {
          h->second(reset_ts);
        }
      });
      break;
    }

    bool hop_retransmit = false;
    if (device->fault.drop_probability > 0.0 &&
        rng_.chance(device->fault.drop_probability)) {
      // The dropped segment is recovered by the sender's RTO: charge the
      // timeout to the delivery latency and count the retransmission.
      device->metrics.retransmissions += 1;
      flow.retransmissions += 1;
      cursor += device->fault.retransmit_timeout_ns;
      hop_retransmit = true;
      retransmitted = true;
    }

    device->metrics.packets += 1;
    device->metrics.bytes += shared->total_bytes;
    device->metrics.total_transit_ns +=
        device->base_latency_ns + device->fault.extra_latency_ns;

    // Fire this device's taps at the traversal instant.
    Device* captured_device = device;
    const TimestampNs tap_ts = cursor;
    const bool tap_retx = hop_retransmit;
    loop_.schedule_at(tap_ts, [captured_device, shared, tap_ts, tap_retx] {
      TapContext ctx;
      ctx.device = captured_device;
      ctx.message = shared.get();
      ctx.timestamp = tap_ts;
      ctx.is_retransmission = tap_retx;
      captured_device->fire_taps(ctx);
    });
  }

  if (reset) return;

  flow.packets += 1;
  flow.bytes += shared->total_bytes;
  flow.rtt_sum += cursor - shared->send_ts;
  flow.rtt_samples += 1;
  if (retransmitted) {
    // RTO inflation is visible in the flow's transit statistics.
  }

  const SocketId dest = route.peer_socket;
  const TimestampNs arrive_ts = cursor;
  loop_.schedule_at(arrive_ts, [this, dest, shared, arrive_ts] {
    ++delivered_count_;
    if (const auto h = delivery_.find(dest); h != delivery_.end()) {
      h->second(*shared, arrive_ts);
    } else {
      DF_LOG_WARN("fabric: no delivery handler for socket %llu",
                  static_cast<unsigned long long>(dest));
    }
  });
}

const FlowMetrics& Fabric::flow_metrics(const FiveTuple& tuple) const {
  const auto it = flows_.find(tuple.canonical());
  return it == flows_.end() ? zero_flow_ : it->second;
}

}  // namespace deepflow::netsim
