// Cluster builder: assembles kernels, devices, resources and the fabric into
// a Kubernetes-like testbed. This is the "three-node cluster with standard
// configurations" of the paper's §5 evaluation, in simulator form.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "kernelsim/kernel.h"
#include "netsim/fabric.h"
#include "netsim/resource.h"

namespace deepflow::netsim {

/// A pod plus the simulated process backing it.
struct PodHandle {
  PodId pod = 0;
  NodeId node = 0;
  Ipv4 ip;
  kernelsim::Kernel* kernel = nullptr;
  Pid pid = 0;
  Device* veth = nullptr;
};

/// One established connection (socket pair) between two pods.
struct ConnectionHandle {
  SocketId client_socket = 0;
  SocketId server_socket = 0;
  kernelsim::Kernel* client_kernel = nullptr;
  kernelsim::Kernel* server_kernel = nullptr;
  FiveTuple tuple;  // client perspective
};

class Cluster {
 public:
  explicit Cluster(u64 seed = 42, kernelsim::KernelConfig kernel_config = {});

  EventLoop& loop() { return loop_; }
  Fabric& fabric() { return fabric_; }
  ResourceRegistry& registry() { return registry_; }

  /// Add a node (creating a default VPC on first use). Each node gets its
  /// own kernel, a vswitch and a physical NIC; all nodes share one ToR.
  NodeId add_node(const std::string& name);

  /// Add a pod on `node` running a process named `comm`.
  PodHandle add_pod(NodeId node, const std::string& name,
                    const std::string& comm, ServiceId service = 0,
                    std::vector<Label> labels = {});

  ServiceId add_service(const std::string& name);

  /// Establish a TCP connection from `client` to `server`:`server_port`.
  /// The device path is derived from placement (same-node traffic stays on
  /// the vswitch; cross-node traffic crosses pNICs and the ToR). Extra
  /// devices (gateways, middleware) are spliced into the middle of the path.
  ConnectionHandle connect(const PodHandle& client, const PodHandle& server,
                           u16 server_port, bool tls = false,
                           std::vector<Device*> extra_middle = {});

  kernelsim::Kernel* kernel_of(NodeId node);
  Device* vswitch_of(NodeId node);
  Device* pnic_of(NodeId node);
  Device* tor() { return tor_; }

  const std::vector<NodeId>& nodes() const { return node_ids_; }

 private:
  struct NodeInfra {
    NodeId id = 0;
    std::unique_ptr<kernelsim::Kernel> kernel;
    Device* vswitch = nullptr;
    Device* pnic = nullptr;
    u8 pod_index = 0;
  };

  NodeInfra* infra_of(NodeId node);

  EventLoop loop_;
  Fabric fabric_;
  ResourceRegistry registry_;
  kernelsim::KernelConfig kernel_config_;
  VpcId vpc_ = 0;
  Device* tor_ = nullptr;
  std::vector<std::unique_ptr<NodeInfra>> node_infra_;
  std::vector<NodeId> node_ids_;
  u16 next_ephemeral_port_ = 40'000;
};

}  // namespace deepflow::netsim
