// Cluster resource model: VPCs, nodes, pods, services, and their tags.
//
// This stands in for the Kubernetes API server and the cloud provider's
// resource inventory. The resource registry resolves an IP (plus VPC) to the
// full resource identity — exactly the lookup DeepFlow's smart-encoding
// performs server-side when it expands integer VPC/IP tags into integer
// resource tags (§3.4, Figure 8).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/five_tuple.h"
#include "common/types.h"

namespace deepflow::netsim {

using VpcId = u32;
using NodeId = u32;
using PodId = u32;
using ServiceId = u32;

/// One key=value label, e.g. K8s "version"="v2" or cloud "region"="east-1".
struct Label {
  std::string key;
  std::string value;

  bool operator==(const Label&) const = default;
};

/// Full identity of an IP endpoint as known to the control plane.
struct ResourceInfo {
  VpcId vpc = 0;
  NodeId node = 0;
  PodId pod = 0;          // 0 when the IP is a bare node/VM address
  ServiceId service = 0;  // 0 when not behind a Service
  std::string vpc_name;
  std::string node_name;
  std::string pod_name;
  std::string service_name;
  std::string region;
  std::string availability_zone;
  std::vector<Label> custom_labels;  // user self-defined labels
};

/// Integer-only identity of an IP endpoint: what the ingest hot path needs.
/// resolve() copies ~8 strings plus a label vector per call, which dominated
/// span building and smart encoding (both resolve twice per span); the id
/// lookup walks the same maps but touches no string.
struct ResourceIds {
  VpcId vpc = 0;
  NodeId node = 0;
  PodId pod = 0;
  ServiceId service = 0;
};

/// Authoritative registry of cluster resources, queried by agents (tag
/// collection phase) and by the server (smart-encoding expansion phase).
class ResourceRegistry {
 public:
  VpcId create_vpc(std::string name, std::string region = "region-1");
  NodeId create_node(VpcId vpc, std::string name,
                     std::string availability_zone = "az-1");
  PodId create_pod(NodeId node, std::string name, Ipv4 ip,
                   ServiceId service = 0,
                   std::vector<Label> labels = {});
  ServiceId create_service(VpcId vpc, std::string name);

  /// Register a bare (non-pod) address, e.g. a node IP or gateway VIP.
  void register_node_ip(NodeId node, Ipv4 ip);

  /// Resolve an IP to its resource identity. Unknown IPs resolve to an
  /// empty-identity record (all ids zero) rather than failing: production
  /// traffic routinely includes external endpoints.
  ResourceInfo resolve(Ipv4 ip) const;

  /// Integer-only resolve for the ingest hot path: same map walk, zero
  /// string copies. Agrees with resolve() field-for-field on the ids.
  ResourceIds resolve_ids(Ipv4 ip) const;

  /// Name lookups for rendering; empty string for unknown ids.
  const std::string& vpc_name(VpcId id) const;
  const std::string& node_name(NodeId id) const;
  const std::string& pod_name(PodId id) const;
  const std::string& service_name(ServiceId id) const;

  size_t pod_count() const { return pods_.size(); }
  size_t node_count() const { return nodes_.size(); }

  /// Monotonic mutation counter: bumped by every create_* /
  /// register_node_ip call. Consumers that cache resolve() output (e.g. the
  /// span store's decoded-tag cache) compare versions to detect staleness.
  u64 version() const { return version_; }

  /// All pods of a service, for load-balancer style fan-out in workloads.
  std::vector<PodId> pods_of_service(ServiceId service) const;
  std::optional<Ipv4> pod_ip(PodId pod) const;

 private:
  struct Vpc {
    std::string name;
    std::string region;
  };
  struct Node {
    VpcId vpc = 0;
    std::string name;
    std::string az;
  };
  struct Pod {
    NodeId node = 0;
    std::string name;
    Ipv4 ip;
    ServiceId service = 0;
    std::vector<Label> labels;
  };
  struct Service {
    VpcId vpc = 0;
    std::string name;
  };

  std::unordered_map<VpcId, Vpc> vpcs_;
  std::unordered_map<NodeId, Node> nodes_;
  std::unordered_map<PodId, Pod> pods_;
  std::unordered_map<ServiceId, Service> services_;
  std::unordered_map<u32, PodId> ip_to_pod_;     // keyed by Ipv4::addr
  std::unordered_map<u32, NodeId> ip_to_node_;
  VpcId next_vpc_ = 1;
  NodeId next_node_ = 1;
  PodId next_pod_ = 1;
  ServiceId next_service_ = 1;
  u64 version_ = 0;
  std::string empty_;
};

}  // namespace deepflow::netsim
